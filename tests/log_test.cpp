// Tests for the rate-limited logging primitives (src/util/log.h):
// LogRateState ordinal semantics (deterministic single-threaded, exact
// counts under concurrency), and the BATE_LOG_EVERY_N / BATE_LOG_FIRST_N
// macros observed through a captured stderr stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.h"

namespace bate {
namespace {

TEST(LogRateState, EveryNPassesOrdinalMultiples) {
  LogRateState state;
  int passed = 0;
  for (int i = 0; i < 10; ++i) {
    if (state.tick_every(4)) ++passed;
  }
  EXPECT_EQ(passed, 3);  // ordinals 0, 4, 8
  EXPECT_EQ(state.count(), 10);
}

TEST(LogRateState, EveryNWithSmallNPassesEverything) {
  LogRateState one;
  LogRateState zero;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(one.tick_every(1));
    EXPECT_TRUE(zero.tick_every(0));
  }
}

TEST(LogRateState, FirstNPassesExactlyTheFirstN) {
  LogRateState state;
  int passed = 0;
  for (int i = 0; i < 10; ++i) {
    if (state.tick_first(3)) ++passed;
  }
  EXPECT_EQ(passed, 3);
  EXPECT_EQ(state.count(), 10);
}

// The fetch_add hands every occurrence a distinct ordinal, so the pass
// counts are EXACT under concurrency, not approximate: ceil(total/n) for
// EVERY_N and min(total, n) for FIRST_N.
TEST(LogRateState, ConcurrentTicksPassExactCounts) {
  constexpr int kThreads = 8;
  constexpr int kTicks = 10000;
  constexpr std::int64_t kTotal =
      static_cast<std::int64_t>(kThreads) * kTicks;

  LogRateState every;
  LogRateState first;
  std::vector<std::int64_t> every_passed(kThreads, 0);
  std::vector<std::int64_t> first_passed(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTicks; ++i) {
        if (every.tick_every(10)) ++every_passed[t];
        if (first.tick_first(100)) ++first_passed[t];
      }
    });
  }
  for (auto& w : workers) w.join();

  std::int64_t every_total = 0;
  std::int64_t first_total = 0;
  for (int t = 0; t < kThreads; ++t) {
    every_total += every_passed[t];
    first_total += first_passed[t];
  }
  EXPECT_EQ(every.count(), kTotal);
  EXPECT_EQ(every_total, kTotal / 10);  // ordinals 0,10,...,79990
  EXPECT_EQ(first_total, 100);
}

/// Captures std::cerr (the Logger sink) for a scope and counts emitted
/// lines containing a marker.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(captured_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  CerrCapture(const CerrCapture&) = delete;
  CerrCapture& operator=(const CerrCapture&) = delete;

  int lines_containing(const std::string& marker) const {
    int n = 0;
    std::istringstream in(captured_.str());
    std::string line;
    while (std::getline(in, line)) {
      if (line.find(marker) != std::string::npos) ++n;
    }
    return n;
  }

 private:
  std::ostringstream captured_;
  std::streambuf* old_;
};

/// Restores the process-global log level on scope exit.
class LevelGuard {
 public:
  LevelGuard() : saved_(Logger::instance().level()) {}
  ~LevelGuard() { Logger::instance().set_level(saved_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  LogLevel saved_;
};

TEST(LogMacros, EveryNSuppressesBetweenMultiples) {
  LevelGuard level;
  Logger::instance().set_level(LogLevel::kWarn);
  CerrCapture capture;
  for (int i = 0; i < 7; ++i) {
    BATE_LOG_EVERY_N(kWarn, "log_test", 3) << "every3-marker i=" << i;
  }
  // Ordinals 0, 3, 6 pass.
  EXPECT_EQ(capture.lines_containing("every3-marker"), 3);
  // The emitted lines are the right occurrences, not arbitrary ones.
  EXPECT_EQ(capture.lines_containing("every3-marker i=0"), 1);
  EXPECT_EQ(capture.lines_containing("every3-marker i=3"), 1);
  EXPECT_EQ(capture.lines_containing("every3-marker i=1"), 0);
}

TEST(LogMacros, FirstNStopsAfterN) {
  LevelGuard level;
  Logger::instance().set_level(LogLevel::kWarn);
  CerrCapture capture;
  for (int i = 0; i < 9; ++i) {
    BATE_LOG_FIRST_N(kWarn, "log_test", 2) << "first-n-marker i=" << i;
  }
  EXPECT_EQ(capture.lines_containing("first-n-marker"), 2);
  EXPECT_EQ(capture.lines_containing("first-n-marker i=0"), 1);
  EXPECT_EQ(capture.lines_containing("first-n-marker i=1"), 1);
}

TEST(LogMacros, LevelFilterShortCircuitsBeforeTicking) {
  LevelGuard level;
  Logger::instance().set_level(LogLevel::kError);
  CerrCapture capture;
  // Below the level: nothing is emitted, and — because the counter only
  // ticks after the filter passes — the rate state is untouched, so
  // raising the level later still emits the "first" occurrence.
  for (int i = 0; i < 5; ++i) {
    BATE_LOG_EVERY_N(kWarn, "log_test", 1000) << "filtered-marker";
  }
  EXPECT_EQ(capture.lines_containing("filtered-marker"), 0);
  Logger::instance().set_level(LogLevel::kWarn);
  BATE_LOG_EVERY_N(kWarn, "log_test", 1000) << "filtered-marker now-on";
  // This call site's state saw its FIRST tick just now (ordinal 0 passes).
  EXPECT_EQ(capture.lines_containing("filtered-marker now-on"), 1);
}

TEST(LogMacros, ComposesWithDanglingElse) {
  LevelGuard level;
  Logger::instance().set_level(LogLevel::kWarn);
  CerrCapture capture;
  int fallthrough = 0;
  for (int i = 0; i < 4; ++i) {
    // The macros must parse as a single statement: the else below binds to
    // this if, not to one hidden inside the macro expansion.
    if (i % 2 == 0)
      BATE_LOG_EVERY_N(kWarn, "log_test", 1) << "dangling-marker i=" << i;
    else
      ++fallthrough;
  }
  EXPECT_EQ(capture.lines_containing("dangling-marker"), 2);
  EXPECT_EQ(fallthrough, 2);
}

}  // namespace
}  // namespace bate
