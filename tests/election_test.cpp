// Tests for the Paxos master election (Sec 4): role-level behaviour, the
// safety property (at most one master chosen) under message loss,
// duplication, reordering and duelling proposers, and liveness of a clean
// run.
#include <gtest/gtest.h>

#include <algorithm>

#include "system/election.h"
#include "util/rng.h"

namespace bate {
namespace {

TEST(Ballot, TotalOrder) {
  EXPECT_LT((Ballot{0, 1}), (Ballot{1, 0}));
  EXPECT_LT((Ballot{1, 0}), (Ballot{1, 2}));
  EXPECT_EQ((Ballot{2, 3}), (Ballot{2, 3}));
  EXPECT_FALSE(Ballot{}.valid());
  EXPECT_TRUE((Ballot{0, 0}).valid());
}

TEST(Acceptor, PromisesMonotonically) {
  PaxosAcceptor acceptor(0);
  EXPECT_TRUE(acceptor.on_prepare({Ballot{1, 0}}).has_value());
  EXPECT_FALSE(acceptor.on_prepare({Ballot{0, 5}}).has_value());  // stale
  EXPECT_TRUE(acceptor.on_prepare({Ballot{1, 0}}).has_value());   // same ok
  EXPECT_TRUE(acceptor.on_prepare({Ballot{2, 0}}).has_value());
  EXPECT_EQ(acceptor.promised(), (Ballot{2, 0}));
}

TEST(Acceptor, RejectsStaleAccepts) {
  PaxosAcceptor acceptor(0);
  acceptor.on_prepare({Ballot{3, 1}});
  EXPECT_FALSE(acceptor.on_accept({Ballot{2, 9}, 7}).has_value());
  const auto accepted = acceptor.on_accept({Ballot{3, 1}, 7});
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->value, 7);
  EXPECT_EQ(acceptor.accepted_value(), 7);
}

TEST(Acceptor, PromiseCarriesPriorAccept) {
  PaxosAcceptor acceptor(0);
  acceptor.on_prepare({Ballot{1, 0}});
  acceptor.on_accept({Ballot{1, 0}, 42});
  const auto promise = acceptor.on_prepare({Ballot{2, 1}});
  ASSERT_TRUE(promise.has_value());
  EXPECT_EQ(promise->accepted_ballot, (Ballot{1, 0}));
  EXPECT_EQ(promise->accepted_value, 42);
}

TEST(Proposer, NeedsQuorumOfPromises) {
  PaxosProposer proposer(0, 5);  // quorum = 3
  const PrepareMsg prepare = proposer.start(0);
  PromiseMsg promise;
  promise.ballot = prepare.ballot;
  promise.from = 0;
  EXPECT_FALSE(proposer.on_promise(promise).has_value());
  promise.from = 1;
  EXPECT_FALSE(proposer.on_promise(promise).has_value());
  promise.from = 1;  // duplicate: must not count twice
  EXPECT_FALSE(proposer.on_promise(promise).has_value());
  promise.from = 2;
  const auto accept = proposer.on_promise(promise);
  ASSERT_TRUE(accept.has_value());
  EXPECT_EQ(accept->value, 0);
  // Further promises do not re-emit the accept.
  promise.from = 3;
  EXPECT_FALSE(proposer.on_promise(promise).has_value());
}

TEST(Proposer, AdoptsHighestPriorValue) {
  PaxosProposer proposer(2, 3);  // quorum = 2
  const PrepareMsg prepare = proposer.start(2);
  PromiseMsg a;
  a.ballot = prepare.ballot;
  a.from = 0;
  a.accepted_ballot = Ballot{0, 1};
  a.accepted_value = 9;
  PromiseMsg b;
  b.ballot = prepare.ballot;
  b.from = 1;
  EXPECT_FALSE(proposer.on_promise(a).has_value());
  const auto accept = proposer.on_promise(b);
  ASSERT_TRUE(accept.has_value());
  EXPECT_EQ(accept->value, 9);  // adopted, not its own preference (2)
}

TEST(Proposer, DecidesOnQuorumOfAccepts) {
  PaxosProposer proposer(0, 3);
  const PrepareMsg prepare = proposer.start(0);
  for (int from : {0, 1}) {
    PromiseMsg p;
    p.ballot = prepare.ballot;
    p.from = from;
    proposer.on_promise(p);
  }
  AcceptedMsg acc;
  acc.ballot = prepare.ballot;
  acc.value = 0;
  acc.from = 0;
  EXPECT_FALSE(proposer.on_accepted(acc).has_value());
  acc.from = 2;
  const auto decided = proposer.on_accepted(acc);
  ASSERT_TRUE(decided.has_value());
  EXPECT_EQ(*decided, 0);
}

// --- Randomized safety harness --------------------------------------------
//
// A tiny message-passing simulator: every replica proposes itself as
// master; messages are dropped/duplicated/reordered at random. Safety: any
// two decisions (across all proposers, across all rounds) must agree.

struct Harness {
  std::vector<ElectionInstance> nodes;
  std::vector<MasterId> decisions;
  Rng rng;

  explicit Harness(int n, std::uint64_t seed) : rng(seed) {
    for (int i = 0; i < n; ++i) nodes.emplace_back(i, n);
  }

  /// Runs `rounds` proposal rounds with lossy delivery.
  void run(int rounds, double drop_prob) {
    const int n = static_cast<int>(nodes.size());
    for (int round = 0; round < rounds; ++round) {
      const int proposer = rng.uniform_int(0, n - 1);
      const PrepareMsg prepare =
          nodes[static_cast<std::size_t>(proposer)].proposer().start(proposer);

      std::vector<PromiseMsg> promises;
      for (auto& node : nodes) {
        if (rng.bernoulli(drop_prob)) continue;  // lost prepare
        if (auto p = node.acceptor().on_prepare(prepare)) {
          promises.push_back(*p);
          if (rng.bernoulli(0.2)) promises.push_back(*p);  // duplicate
        }
      }
      std::shuffle(promises.begin(), promises.end(), rng.engine());

      std::optional<AcceptMsg> accept;
      for (const PromiseMsg& p : promises) {
        if (rng.bernoulli(drop_prob)) continue;  // lost promise
        if (auto a = nodes[static_cast<std::size_t>(proposer)]
                         .proposer()
                         .on_promise(p)) {
          accept = a;
        }
      }
      if (!accept) continue;

      std::vector<AcceptedMsg> accepteds;
      for (auto& node : nodes) {
        if (rng.bernoulli(drop_prob)) continue;  // lost accept
        if (auto a = node.acceptor().on_accept(*accept)) {
          accepteds.push_back(*a);
        }
      }
      std::shuffle(accepteds.begin(), accepteds.end(), rng.engine());
      for (const AcceptedMsg& a : accepteds) {
        if (rng.bernoulli(drop_prob)) continue;  // lost accepted
        if (auto master = nodes[static_cast<std::size_t>(proposer)]
                              .proposer()
                              .on_accepted(a)) {
          decisions.push_back(*master);
          nodes[static_cast<std::size_t>(proposer)].learn(*master);
        }
      }
    }
  }
};

class PaxosSafety : public ::testing::TestWithParam<int> {};

TEST_P(PaxosSafety, AtMostOneMasterUnderLossyNetwork) {
  Harness harness(3 + GetParam() % 3, 8800 + static_cast<std::uint64_t>(GetParam()));
  harness.run(30, 0.3);
  for (std::size_t i = 1; i < harness.decisions.size(); ++i) {
    EXPECT_EQ(harness.decisions[i], harness.decisions[0])
        << "conflicting masters chosen (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosSafety, ::testing::Range(0, 30));

TEST(PaxosLiveness, CleanRunElectsProposer) {
  Harness harness(5, 1);
  harness.run(1, 0.0);
  ASSERT_FALSE(harness.decisions.empty());
  // With no prior accepts, the proposer's own id is chosen.
  EXPECT_GE(harness.decisions[0], 0);
  EXPECT_LT(harness.decisions[0], 5);
}

TEST(PaxosLiveness, LaterRoundsPreserveEarlierDecision) {
  Harness harness(5, 2);
  harness.run(40, 0.0);
  ASSERT_GE(harness.decisions.size(), 2u);
  for (MasterId m : harness.decisions) {
    EXPECT_EQ(m, harness.decisions[0]);
  }
}

}  // namespace
}  // namespace bate
