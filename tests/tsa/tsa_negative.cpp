// Negative-compile probe for the Clang Thread Safety Analysis wiring
// (tests/CMakeLists.txt try_compile): reads a BATE_GUARDED_BY field without
// holding its mutex. Under clang with -Werror=thread-safety this file MUST
// fail to compile; if it ever compiles, the annotation plumbing in
// util/mutex.h has gone dead (e.g. a macro eaten by an #ifdef) and the
// tier-1 ctest bate_tsa_negative_compile fails loudly.
//
// Never added to any real target.
#include "util/mutex.h"

namespace {

struct Guarded {
  bate::Mutex mu{bate::LockRank::kSolver, "tsa probe"};
  int value BATE_GUARDED_BY(mu) = 0;
};

int unguarded_read(Guarded& g) {
  return g.value;  // no lock held: thread-safety error under clang
}

}  // namespace

int tsa_negative_entry() {
  Guarded g;
  return unguarded_read(g);
}
