// Positive-compile companion to tsa_negative.cpp: the same guarded access
// done correctly (MutexLock scope). Compiling this first proves the
// try_compile harness itself works — include paths, flags, C++ standard —
// so a tsa_negative.cpp failure can only mean the TSA diagnostic fired,
// not that the harness is broken.
//
// Never added to any real target.
#include "util/mutex.h"

namespace {

struct Guarded {
  bate::Mutex mu{bate::LockRank::kSolver, "tsa probe"};
  int value BATE_GUARDED_BY(mu) = 0;
};

int guarded_read(Guarded& g) {
  bate::MutexLock lock(g.mu);
  return g.value;
}

}  // namespace

int tsa_positive_entry() {
  Guarded g;
  return guarded_read(g);
}
