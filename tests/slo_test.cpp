// Tests for the availability-SLO ledger stack (src/obs/availability.h,
// src/obs/slo.h, src/obs/timeseries.h): the shared availability arithmetic
// and its equivalence with the offline simulator's per-second counters, the
// demand lifecycle state machine (degrade/recover windows, withdraw
// finalization, invalid transitions, transition-log caps), error-budget
// burn math, the ring-buffer time-series store, and registry reset
// scoping.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/availability.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "sim/metrics.h"

namespace bate::obs {
namespace {

constexpr std::int64_t kSec = 1'000'000;  // microseconds

// ---------------------------------------------------------------- shared
// availability arithmetic

TEST(Availability, IntervalSatisfiedFloor) {
  EXPECT_TRUE(interval_satisfied(1.0));
  EXPECT_TRUE(interval_satisfied(0.99));  // the paper's 1% tolerance, exact
  EXPECT_FALSE(interval_satisfied(0.9899999));
  EXPECT_FALSE(interval_satisfied(0.0));
}

TEST(Availability, RatioNeverActiveIsPerfect) {
  EXPECT_DOUBLE_EQ(availability_ratio(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(availability_ratio(3, 4), 0.75);
  EXPECT_DOUBLE_EQ(availability_ratio(0, 4), 0.0);
}

TEST(Availability, TargetMetTolerance) {
  EXPECT_TRUE(availability_target_met(0.99, 0.99));
  // Within kAvailabilityTol below the target still counts as met.
  EXPECT_TRUE(availability_target_met(0.99 - 1e-13, 0.99));
  EXPECT_FALSE(availability_target_met(0.99 - 1e-9, 0.99));
}

// The headline equivalence: one outage schedule fed through (a) the
// simulator's per-second counters and (b) the live meter's time-weighted
// transitions must produce the IDENTICAL availability double. The real
// quotients are equal (the meter's totals are the second counts scaled by
// exactly 1e6), so correctly-rounded division yields bit-equal results.
TEST(Availability, MeterMatchesSimulatorCounters) {
  // 600 active seconds, unsatisfied during [120,180) and [300,420).
  const auto unsat = [](long s) {
    return (s >= 120 && s < 180) || (s >= 300 && s < 420);
  };

  DemandOutcome outcome;
  outcome.admitted = true;
  outcome.availability_target = 0.9;
  for (long s = 0; s < 600; ++s) {
    ++outcome.active_seconds;
    if (!unsat(s)) ++outcome.satisfied_seconds;
  }
  ASSERT_EQ(outcome.active_seconds, 600);
  ASSERT_EQ(outcome.satisfied_seconds, 420);

  // Feed the meter the same schedule one second at a time (exercising the
  // same-state no-op path), starting at an arbitrary epoch.
  const std::int64_t t0 = 7 * kSec;
  AvailabilityMeter meter;
  meter.start(t0, !unsat(0));
  for (long s = 1; s < 600; ++s) meter.set_satisfied(t0 + s * kSec, !unsat(s));
  meter.finalize(t0 + 600 * kSec);

  EXPECT_EQ(meter.active_us(), 600 * kSec);
  EXPECT_EQ(meter.satisfied_us(), 420 * kSec);
  const std::int64_t end = t0 + 600 * kSec;
  // Bit-equal, not approximately equal: shared arithmetic is the contract.
  EXPECT_EQ(meter.availability_at(end), outcome.achieved_availability());
  EXPECT_EQ(availability_target_met(meter.availability_at(end), 0.9),
            outcome.target_met());
}

// ---------------------------------------------------------------- meter

TEST(AvailabilityMeter, OpenIntervalAccruesUnderCurrentState) {
  AvailabilityMeter m;
  EXPECT_FALSE(m.started());
  // Reads before start() see an inactive meter.
  EXPECT_EQ(m.active_us_at(50), 0);
  EXPECT_DOUBLE_EQ(m.availability_at(50), 1.0);

  m.start(100, true);
  EXPECT_EQ(m.active_us_at(100), 0);
  EXPECT_EQ(m.active_us_at(160), 60);
  EXPECT_EQ(m.satisfied_us_at(160), 60);

  m.set_satisfied(200, false);  // 100 satisfied us banked
  EXPECT_EQ(m.active_us(), 100);
  EXPECT_EQ(m.satisfied_us(), 100);
  EXPECT_EQ(m.satisfied_us_at(260), 100);  // open interval is unsatisfied
  EXPECT_EQ(m.unsatisfied_us_at(260), 60);
}

TEST(AvailabilityMeter, RepeatedStartIsIgnored) {
  AvailabilityMeter m;
  m.start(100, true);
  m.start(500, false);  // ignored: the clock is already running
  EXPECT_TRUE(m.satisfied());
  EXPECT_EQ(m.active_us_at(200), 100);
}

TEST(AvailabilityMeter, OutOfOrderTimestampClampsToZeroInterval) {
  AvailabilityMeter m;
  m.start(1000, true);
  m.set_satisfied(500, false);  // earlier than last seen: zero-length interval
  EXPECT_EQ(m.active_us(), 0);
  EXPECT_FALSE(m.satisfied());  // the state switch still happens
  m.finalize(1500);
  EXPECT_EQ(m.active_us(), 500);
  EXPECT_EQ(m.satisfied_us(), 0);
}

TEST(AvailabilityMeter, FinalizeFreezes) {
  AvailabilityMeter m;
  m.start(0, true);
  m.set_satisfied(300, false);
  m.finalize(400);
  EXPECT_TRUE(m.finalized());
  EXPECT_EQ(m.active_us(), 400);
  EXPECT_EQ(m.satisfied_us(), 300);
  // Neither further transitions nor the passage of time change the totals.
  m.set_satisfied(1000, true);
  m.finalize(2000);
  EXPECT_EQ(m.active_us_at(9999), 400);
  EXPECT_EQ(m.satisfied_us_at(9999), 300);
  EXPECT_DOUBLE_EQ(m.availability_at(9999), 0.75);
}

TEST(AvailabilityMeter, BudgetBurnMath) {
  // 1000s active, 30s unsatisfied, beta 0.99 => allowed 10s, burn 3.0.
  AvailabilityMeter m;
  m.start(0, true);
  m.set_satisfied(970 * kSec, false);
  m.finalize(1000 * kSec);
  const std::int64_t end = 1000 * kSec;
  EXPECT_NEAR(m.budget_burn_at(0.99, end), 3.0, 1e-9);
  // Burn rate: 3.0 burned over 1000/3600 active hours.
  EXPECT_NEAR(m.burn_per_hour_at(0.99, end), 3.0 / (1000.0 / 3600.0), 1e-6);
  // A looser promise has a bigger budget: beta 0.9 allows 100s, burn 0.3.
  EXPECT_NEAR(m.budget_burn_at(0.9, end), 0.3, 1e-9);
  // beta 1.0 allows zero downtime: any unsatisfied time is infinite burn.
  EXPECT_DOUBLE_EQ(m.budget_burn_at(1.0, end), AvailabilityMeter::kInfiniteBurn);
}

TEST(AvailabilityMeter, NoBurnWhileFullySatisfied) {
  AvailabilityMeter m;
  m.start(0, true);
  EXPECT_DOUBLE_EQ(m.budget_burn_at(1.0, 500 * kSec), 0.0);
  EXPECT_DOUBLE_EQ(m.budget_burn_at(0.99, 500 * kSec), 0.0);
  EXPECT_DOUBLE_EQ(m.burn_per_hour_at(0.99, 500 * kSec), 0.0);
}

// ---------------------------------------------------------------- ledger

TEST(SloLedger, LifecycleWindowsAccrue) {
  SloLedger ledger;
  ledger.admit(7, 3, 0.99, 0);
  EXPECT_EQ(ledger.live_demands(), 1u);
  ledger.allocate(7, 10 * kSec);
  ledger.degrade(7, 100 * kSec);
  ledger.recover(7, 130 * kSec);

  const auto snap = ledger.snapshot(200 * kSec);
  ASSERT_EQ(snap.demands.size(), 1u);
  const auto& row = snap.demands[0];
  EXPECT_EQ(row.id, 7);
  EXPECT_EQ(row.tenant, 3);
  EXPECT_DOUBLE_EQ(row.beta, 0.99);
  EXPECT_EQ(row.state, DemandState::kRecovered);
  EXPECT_EQ(row.admitted_us, 0);
  EXPECT_EQ(row.active_us, 200 * kSec);
  EXPECT_EQ(row.satisfied_us, 170 * kSec);  // 30s degraded window
  EXPECT_DOUBLE_EQ(row.availability, 170.0 / 200.0);
  // allowed = 0.01 * 200s = 2s; burned 30s => burn 15.
  EXPECT_NEAR(row.budget_burn, 15.0, 1e-9);
  EXPECT_FALSE(row.target_met);
  // admitted -> allocated -> degraded -> recovered, in order.
  ASSERT_EQ(row.transitions.size(), 4u);
  EXPECT_EQ(row.transitions[0].state, DemandState::kAdmitted);
  EXPECT_EQ(row.transitions[1].state, DemandState::kAllocated);
  EXPECT_EQ(row.transitions[2].state, DemandState::kDegraded);
  EXPECT_EQ(row.transitions[3].state, DemandState::kRecovered);
  EXPECT_EQ(row.transitions[2].t_us, 100 * kSec);
  EXPECT_EQ(row.dropped_transitions, 0);
  EXPECT_EQ(ledger.invalid_transitions(), 0);
}

TEST(SloLedger, SetSatisfiedIsEdgeTriggered) {
  SloLedger ledger;
  ledger.admit(1, 0, 0.9, 0);
  ledger.allocate(1, 0);
  // Repeating the current satisfied bit must not append transitions.
  for (int i = 1; i <= 5; ++i) ledger.set_satisfied(1, true, i * kSec);
  ledger.set_satisfied(1, false, 10 * kSec);
  for (int i = 11; i <= 15; ++i) ledger.set_satisfied(1, false, i * kSec);
  ledger.set_satisfied(1, true, 20 * kSec);

  const auto snap = ledger.snapshot(20 * kSec);
  ASSERT_EQ(snap.demands.size(), 1u);
  const auto& row = snap.demands[0];
  // admitted, allocated, degraded, recovered — nothing else.
  ASSERT_EQ(row.transitions.size(), 4u);
  EXPECT_EQ(row.satisfied_us, 10 * kSec);
  EXPECT_EQ(row.active_us, 20 * kSec);
  EXPECT_EQ(ledger.invalid_transitions(), 0);
}

TEST(SloLedger, WithdrawFreezesTheRow) {
  SloLedger ledger;
  ledger.admit(5, 1, 0.5, 0);
  ledger.degrade(5, 60 * kSec);
  ledger.withdraw(5, 100 * kSec);
  EXPECT_EQ(ledger.live_demands(), 0u);

  const auto at_withdraw = ledger.snapshot(100 * kSec);
  const auto much_later = ledger.snapshot(5000 * kSec);
  ASSERT_EQ(at_withdraw.demands.size(), 1u);
  ASSERT_EQ(much_later.demands.size(), 1u);
  EXPECT_EQ(at_withdraw.demands[0].state, DemandState::kWithdrawn);
  // Availability is frozen at finalize time; later snapshots agree exactly.
  EXPECT_EQ(much_later.demands[0].active_us, 100 * kSec);
  EXPECT_EQ(much_later.demands[0].satisfied_us, 60 * kSec);
  EXPECT_DOUBLE_EQ(at_withdraw.demands[0].availability,
                   much_later.demands[0].availability);
  EXPECT_DOUBLE_EQ(much_later.demands[0].availability, 0.6);
}

TEST(SloLedger, InvalidTransitionsAreCountedNotFatal) {
  SloLedger ledger;
  ledger.admit(1, 0, 0.9, 0);
  EXPECT_EQ(ledger.invalid_transitions(), 0);

  ledger.admit(1, 0, 0.9, kSec);     // duplicate admit
  ledger.allocate(99, kSec);         // unknown id
  // A recover while already satisfied is a duplicate report, NOT an error.
  ledger.recover(1, 2 * kSec);
  ledger.withdraw(1, 3 * kSec);      // fine (terminal)
  ledger.withdraw(1, 4 * kSec);      // already withdrawn
  ledger.degrade(1, 5 * kSec);       // withdrawn demand
  EXPECT_EQ(ledger.invalid_transitions(), 4);
  // The valid history is intact.
  const auto snap = ledger.snapshot(6 * kSec);
  ASSERT_EQ(snap.demands.size(), 1u);
  EXPECT_EQ(snap.demands[0].state, DemandState::kWithdrawn);
}

TEST(SloLedger, TransitionLogCapDropsOldest) {
  SloLedger ledger(SloLedger::Config{/*max_transitions=*/4,
                                     /*max_withdrawn=*/1024});
  ledger.admit(1, 0, 0.9, 0);
  for (int i = 1; i <= 10; ++i) {
    ledger.set_satisfied(1, i % 2 == 0, i * kSec);
  }
  const auto snap = ledger.snapshot(11 * kSec);
  ASSERT_EQ(snap.demands.size(), 1u);
  const auto& row = snap.demands[0];
  EXPECT_EQ(row.transitions.size(), 4u);
  // 11 transitions total (admit + 10 flips), 4 retained.
  EXPECT_EQ(row.dropped_transitions, 7);
  // The retained prefix is the EARLIEST history: admit + the first 3 flips.
  EXPECT_EQ(row.transitions.front().state, DemandState::kAdmitted);
  EXPECT_EQ(row.transitions.back().t_us, 3 * kSec);
  for (std::size_t i = 1; i < row.transitions.size(); ++i) {
    EXPECT_LE(row.transitions[i - 1].t_us, row.transitions[i].t_us);
  }
  // The meter is unaffected by the log cap: 5 degraded seconds
  // ([1,2),[3,4),[5,6),[7,8),[9,10)).
  EXPECT_EQ(row.active_us, 11 * kSec);
  EXPECT_EQ(row.satisfied_us, 6 * kSec);
}

TEST(SloLedger, WithdrawnRetentionCapEvictsOldest) {
  SloLedger ledger(SloLedger::Config{/*max_transitions=*/64,
                                     /*max_withdrawn=*/2});
  for (std::int64_t id = 1; id <= 3; ++id) {
    ledger.admit(id, 0, 0.9, 0);
    ledger.withdraw(id, id * kSec);
  }
  EXPECT_EQ(ledger.live_demands(), 0u);
  const auto snap = ledger.snapshot(10 * kSec);
  // Oldest retirement (id 1) evicted; 2 and 3 retained, sorted by id.
  ASSERT_EQ(snap.demands.size(), 2u);
  EXPECT_EQ(snap.demands[0].id, 2);
  EXPECT_EQ(snap.demands[1].id, 3);
}

TEST(SloLedger, TenantAggregation) {
  SloLedger ledger;
  // Tenant 1: one healthy demand, one violating (beta 0.99, 50% down).
  ledger.admit(1, 1, 0.99, 0);
  ledger.admit(2, 1, 0.99, 0);
  ledger.degrade(2, 50 * kSec);
  // Tenant 2: one healthy demand.
  ledger.admit(3, 2, 0.9, 0);

  const auto snap = ledger.snapshot(100 * kSec);
  ASSERT_EQ(snap.tenants.size(), 2u);
  const auto& t1 = snap.tenants[0];
  EXPECT_EQ(t1.tenant, 1);
  EXPECT_EQ(t1.demands, 2);
  EXPECT_EQ(t1.violating, 1);
  // Demand 2: 50s burned of the allowed 1s => burn 50.
  EXPECT_NEAR(t1.worst_burn, 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(t1.min_availability, 0.5);
  const auto& t2 = snap.tenants[1];
  EXPECT_EQ(t2.tenant, 2);
  EXPECT_EQ(t2.demands, 1);
  EXPECT_EQ(t2.violating, 0);
  EXPECT_DOUBLE_EQ(t2.min_availability, 1.0);
}

TEST(SloLedger, SnapshotJsonShape) {
  SloLedger ledger;
  ledger.admit(42, 9, 0.99, 0);
  ledger.degrade(42, 10 * kSec);
  const std::string json = ledger.snapshot(20 * kSec).to_json();
  EXPECT_NE(json.find("\"now_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"demands\":["), std::string::npos);
  EXPECT_NE(json.find("\"tenants\":["), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"budget_burn\":"), std::string::npos);
  EXPECT_NE(json.find("\"transitions\":["), std::string::npos);
}

TEST(SloLedger, ClearForgetsEverything) {
  SloLedger ledger;
  ledger.admit(1, 0, 0.9, 0);
  ledger.allocate(99, 0);  // one invalid
  ledger.clear();
  EXPECT_EQ(ledger.live_demands(), 0u);
  EXPECT_EQ(ledger.invalid_transitions(), 0);
  EXPECT_TRUE(ledger.snapshot(kSec).demands.empty());
}

TEST(SloLedgerStrings, StateNames) {
  EXPECT_STREQ(to_string(DemandState::kAdmitted), "admitted");
  EXPECT_STREQ(to_string(DemandState::kAllocated), "allocated");
  EXPECT_STREQ(to_string(DemandState::kDegraded), "degraded");
  EXPECT_STREQ(to_string(DemandState::kRecovered), "recovered");
  EXPECT_STREQ(to_string(DemandState::kWithdrawn), "withdrawn");
}

// ---------------------------------------------------------------- ring

TEST(TimeSeriesRing, WrapsKeepingNewest) {
  TimeSeries ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 10; ++i) ring.push(i * kSec, i);
  EXPECT_EQ(ring.size(), 4u);
  const auto pts = ring.points();
  ASSERT_EQ(pts.size(), 4u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].first, static_cast<std::int64_t>(6 + i) * kSec);
    EXPECT_DOUBLE_EQ(pts[i].second, 6.0 + static_cast<double>(i));
  }
}

TEST(TimeSeriesRing, WindowReduction) {
  TimeSeries ring(16);
  // Counter-ish series: value 10*t at t = 0..9 seconds.
  for (int t = 0; t < 10; ++t) ring.push(t * kSec, 10.0 * t);
  // Window [5s, 9s]: points 5..9.
  const WindowStats w = ring.window(9 * kSec, 4 * kSec);
  EXPECT_EQ(w.count, 5);
  EXPECT_DOUBLE_EQ(w.min, 50.0);
  EXPECT_DOUBLE_EQ(w.max, 90.0);
  EXPECT_DOUBLE_EQ(w.avg, 70.0);
  // (90 - 50) / 4s elapsed.
  EXPECT_DOUBLE_EQ(w.rate_per_sec, 10.0);
  EXPECT_EQ(w.first_t_us, 5 * kSec);
  EXPECT_EQ(w.last_t_us, 9 * kSec);
}

TEST(TimeSeriesRing, WindowEdgeCases) {
  TimeSeries ring(8);
  EXPECT_EQ(ring.window(kSec, kSec).count, 0);  // empty series
  ring.push(5 * kSec, 7.0);
  const WindowStats one = ring.window(5 * kSec, kSec);
  EXPECT_EQ(one.count, 1);
  EXPECT_DOUBLE_EQ(one.rate_per_sec, 0.0);  // rate needs two points
  // Window entirely before the data.
  EXPECT_EQ(ring.window(3 * kSec, kSec).count, 0);
}

// ---------------------------------------------------------------- store

TEST(TimeSeriesStore, SampleRecordsCountersGaugesAndQuantiles) {
  Registry registry;
  registry.counter("bate_test_ticks_total").inc(5);
  registry.gauge("bate_test_depth").set(3.5);
  for (int i = 1; i <= 100; ++i) {
    registry.histogram("bate_test_latency_us").record(i);
  }

  TimeSeriesStore store;
  store.sample(registry.snapshot(), 10 * kSec);
  registry.counter("bate_test_ticks_total").inc(15);
  store.sample(registry.snapshot(), 20 * kSec);

  // counter + gauge + histogram _p50/_p99.
  EXPECT_EQ(store.series_count(), 4u);
  const WindowStats ticks =
      store.window("bate_test_ticks_total", 20 * kSec, 60 * kSec);
  EXPECT_EQ(ticks.count, 2);
  EXPECT_DOUBLE_EQ(ticks.min, 5.0);
  EXPECT_DOUBLE_EQ(ticks.max, 20.0);
  EXPECT_DOUBLE_EQ(ticks.rate_per_sec, 1.5);  // (20-5)/10s

  EXPECT_EQ(store.window("bate_test_depth", 20 * kSec, 60 * kSec).count, 2);
  EXPECT_GT(
      store.window("bate_test_latency_us_p50", 20 * kSec, 60 * kSec).count, 0);
  EXPECT_GT(
      store.window("bate_test_latency_us_p99", 20 * kSec, 60 * kSec).count, 0);
  // p99 estimate must sit above p50 for a spread sample.
  const double p50 =
      store.window("bate_test_latency_us_p50", 20 * kSec, 60 * kSec).max;
  const double p99 =
      store.window("bate_test_latency_us_p99", 20 * kSec, 60 * kSec).max;
  EXPECT_GT(p99, p50);

  // Unknown series reduce to zero stats rather than throwing.
  EXPECT_EQ(store.window("no_such_series", 20 * kSec, 60 * kSec).count, 0);

  const std::string json = store.to_json(20 * kSec, 60 * kSec);
  EXPECT_NE(json.find("\"bate_test_ticks_total\""), std::string::npos);
  EXPECT_NE(json.find("\"bate_test_latency_us_p99\""), std::string::npos);
  EXPECT_NE(json.find("\"rate_per_sec\""), std::string::npos);

  store.clear();
  EXPECT_EQ(store.series_count(), 0u);
}

// ---------------------------------------------------------------- reset
// scoping

TEST(ScopedReset, PrefixScopedResetOnEntryAndExit) {
  Registry registry;
  registry.counter("bate_slo_x_total").inc(10);
  registry.counter("bate_other_y_total").inc(10);
  {
    ScopedRegistryReset scoped(registry, "bate_slo_");
    // Entry reset: only the matching prefix was zeroed.
    EXPECT_EQ(registry.counter("bate_slo_x_total").value(), 0);
    EXPECT_EQ(registry.counter("bate_other_y_total").value(), 10);
    registry.counter("bate_slo_x_total").inc(7);
  }
  // Exit reset: the scope's own increments do not leak out.
  EXPECT_EQ(registry.counter("bate_slo_x_total").value(), 0);
  EXPECT_EQ(registry.counter("bate_other_y_total").value(), 10);
}

TEST(ScopedReset, EmptyPrefixResetsEverything) {
  Registry registry;
  registry.counter("a_total").inc(1);
  registry.gauge("b").set(2.0);
  registry.histogram("c_us").record(3);
  {
    ScopedRegistryReset scoped(registry);
    EXPECT_EQ(registry.counter("a_total").value(), 0);
    EXPECT_DOUBLE_EQ(registry.gauge("b").value(), 0.0);
    EXPECT_EQ(registry.histogram("c_us").count(), 0);
  }
}

}  // namespace
}  // namespace bate::obs
