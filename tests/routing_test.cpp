// Tests for the routing substrate: Dijkstra, Yen's KSP (cross-checked with
// brute-force path enumeration), edge-disjoint paths, oblivious-style
// selection and the tunnel catalog.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "routing/edge_disjoint.h"
#include "routing/ksp.h"
#include "routing/oblivious.h"
#include "routing/tunnels.h"
#include "topology/catalog.h"
#include "topology/generator.h"

namespace bate {
namespace {

bool is_simple_path(const Topology& topo, NodeId src, NodeId dst,
                    const std::vector<LinkId>& path) {
  if (path.empty()) return false;
  std::set<NodeId> seen{src};
  NodeId cur = src;
  for (LinkId id : path) {
    if (topo.link(id).src != cur) return false;
    cur = topo.link(id).dst;
    if (!seen.insert(cur).second) return false;
  }
  return cur == dst;
}

/// All simple paths from src to dst by DFS, sorted by (length, links).
std::vector<std::vector<LinkId>> all_simple_paths(const Topology& topo,
                                                  NodeId src, NodeId dst) {
  std::vector<std::vector<LinkId>> result;
  std::vector<LinkId> cur;
  std::vector<char> visited(static_cast<std::size_t>(topo.node_count()), 0);
  std::function<void(NodeId)> dfs = [&](NodeId u) {
    if (u == dst) {
      result.push_back(cur);
      return;
    }
    visited[static_cast<std::size_t>(u)] = 1;
    for (LinkId id : topo.out_links(u)) {
      const NodeId v = topo.link(id).dst;
      if (visited[static_cast<std::size_t>(v)]) continue;
      cur.push_back(id);
      dfs(v);
      cur.pop_back();
    }
    visited[static_cast<std::size_t>(u)] = 0;
  };
  dfs(src);
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return result;
}

TEST(ShortestPath, FindsDirectPath) {
  const Topology t = testbed6();
  const auto path = shortest_path(t, 0, 3, unit_weight);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);  // DC1-DC4 is a direct link
}

TEST(ShortestPath, RespectsBans) {
  const Topology t = toy4();
  std::vector<char> banned(static_cast<std::size_t>(t.link_count()), 0);
  banned[static_cast<std::size_t>(t.find_link(0, 1))] = 1;  // kill e1
  const auto path = shortest_path(t, 0, 3, unit_weight, banned);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), t.find_link(0, 2));  // must go via DC3
}

TEST(ShortestPath, ReturnsNulloptWhenDisconnected) {
  Topology t;
  t.add_node();
  t.add_node();
  EXPECT_FALSE(shortest_path(t, 0, 1, unit_weight).has_value());
}

TEST(ShortestPath, ThrowsOnNonPositiveWeight) {
  const Topology t = toy4();
  EXPECT_THROW(
      shortest_path(t, 0, 3, [](const Link&) { return 0.0; }),
      std::invalid_argument);
}

TEST(Ksp, PathsAreSimpleAndSorted) {
  const Topology t = testbed6();
  const auto paths = k_shortest_paths(t, 0, 2, 4, unit_weight);
  ASSERT_GE(paths.size(), 2u);
  for (const auto& p : paths) EXPECT_TRUE(is_simple_path(t, 0, 2, p));
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].size(), paths[i].size());
  }
  // All distinct.
  std::set<std::vector<LinkId>> uniq(paths.begin(), paths.end());
  EXPECT_EQ(uniq.size(), paths.size());
}

class KspVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(KspVsBruteForce, MatchesEnumerationOnRandomGraphs) {
  GeneratorConfig cfg;
  cfg.nodes = 6;
  cfg.directed_links = 16;
  cfg.seed = 500 + static_cast<std::uint64_t>(GetParam());
  const Topology t = generate_topology(cfg, "rnd");

  const NodeId src = GetParam() % t.node_count();
  const NodeId dst = (src + 1 + GetParam() % (t.node_count() - 1)) %
                     t.node_count();
  if (src == dst) GTEST_SKIP();

  const auto expected = all_simple_paths(t, src, dst);
  const int k = static_cast<int>(std::min<std::size_t>(4, expected.size()));
  const auto got = k_shortest_paths(t, src, dst, k, unit_weight);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(k));
  // Hop counts must match the k shortest enumerated ones.
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].size(),
              expected[static_cast<std::size_t>(i)].size())
        << "path rank " << i;
    EXPECT_TRUE(is_simple_path(t, src, dst, got[static_cast<std::size_t>(i)]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KspVsBruteForce, ::testing::Range(0, 20));

TEST(EdgeDisjoint, PathsShareNoLinks) {
  const Topology t = testbed6();
  const auto paths = edge_disjoint_paths(t, 0, 4, 4);
  ASSERT_GE(paths.size(), 2u);
  std::set<LinkId> used;
  for (const auto& p : paths) {
    for (LinkId id : p) EXPECT_TRUE(used.insert(id).second);
  }
}

TEST(Oblivious, ProducesDistinctSimplePaths) {
  const Topology t = testbed6();
  const auto paths = oblivious_paths(t, 0, 2, 3);
  ASSERT_GE(paths.size(), 2u);
  std::set<std::vector<LinkId>> uniq(paths.begin(), paths.end());
  EXPECT_EQ(uniq.size(), paths.size());
  for (const auto& p : paths) EXPECT_TRUE(is_simple_path(t, 0, 2, p));
}

TEST(Tunnel, AvailabilityIsLinkProduct) {
  const Topology t = toy4();
  Tunnel tn{0, 3, {t.find_link(0, 1), t.find_link(1, 3)}};
  EXPECT_NEAR(tn.availability(t), 0.96 * 0.999999, 1e-9);
  EXPECT_TRUE(tn.uses(t.find_link(0, 1)));
  EXPECT_FALSE(tn.uses(t.find_link(0, 2)));
  EXPECT_EQ(tn.to_string(t), "DC1->DC2->DC4");
}

TEST(TunnelCatalog, BuildsForRequestedPairs) {
  const Topology t = testbed6();
  const std::vector<SdPair> pairs = {{0, 2}, {0, 3}, {0, 4}};
  const auto catalog = TunnelCatalog::build(t, pairs, 4);
  EXPECT_EQ(catalog.pair_count(), 3);
  for (int k = 0; k < 3; ++k) {
    EXPECT_GE(catalog.tunnels(k).size(), 1u);
    EXPECT_LE(catalog.tunnels(k).size(), 4u);
  }
  EXPECT_EQ(catalog.pair_index({0, 3}), 1);
  EXPECT_EQ(catalog.pair_index({5, 0}), -1);
}

TEST(TunnelCatalog, AllPairsCoversEveryOrderedPair) {
  const Topology t = toy4();
  // toy4 is not strongly connected in both directions (links are one-way),
  // so restrict to the reachable pairs.
  const std::vector<SdPair> pairs = {{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}};
  const auto catalog = TunnelCatalog::build(t, pairs, 2);
  EXPECT_EQ(catalog.pair_count(), 5);
  EXPECT_EQ(catalog.tunnels(catalog.pair_index({0, 3})).size(), 2u);
}

TEST(TunnelCatalog, ThrowsOnDisconnectedPair) {
  const Topology t = toy4();
  const std::vector<SdPair> pairs = {{3, 0}};  // no reverse links in toy4
  EXPECT_THROW(TunnelCatalog::build(t, pairs, 2), std::runtime_error);
}

TEST(TunnelCatalog, SchemesProduceValidTunnels) {
  const Topology t = ibm();
  const std::vector<SdPair> pairs = {{0, 5}, {3, 9}};
  for (auto scheme : {RoutingScheme::kKsp, RoutingScheme::kEdgeDisjoint,
                      RoutingScheme::kOblivious}) {
    const auto catalog = TunnelCatalog::build(t, pairs, 4, scheme);
    for (int k = 0; k < catalog.pair_count(); ++k) {
      for (const Tunnel& tn : catalog.tunnels(k)) {
        EXPECT_TRUE(is_simple_path(t, tn.src, tn.dst, tn.links));
      }
    }
  }
}

}  // namespace
}  // namespace bate
