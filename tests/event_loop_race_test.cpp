// TSan stress tests for the EventLoop threading contract (event_loop.h):
// cross-thread add_reader()/remove() while the loop thread is polling, a
// callback removing itself, and the sticky-stop() guarantee. Under
// -fsanitize=thread these tests fail on any data race between the loop
// thread's watcher map and outside mutators; under plain builds they still
// exercise the deferred-mutation queue end to end.
#include "net/event_loop.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace bate {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_end() const { return fds[0]; }
  void poke() const {
    const char byte = 'x';
    ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  }
  void drain() const {
    char byte = 0;
    ASSERT_EQ(::read(fds[0], &byte, 1), 1);
  }
};

TEST(EventLoopRace, CrossThreadAddRemoveWhileRunning) {
  EventLoop loop;
  std::thread runner([&] { loop.run(5); });

  constexpr int kRounds = 200;
  std::array<Pipe, 4> pipes;
  std::array<std::atomic<int>, 4> fired{};

  for (int round = 0; round < kRounds; ++round) {
    // Register all watchers from this (non-loop) thread...
    for (std::size_t i = 0; i < pipes.size(); ++i) {
      loop.add_reader(pipes[i].read_end(), [&, i] {
        pipes[i].drain();
        fired[i].fetch_add(1, std::memory_order_relaxed);
      });
    }
    pipes[round % pipes.size()].poke();
    // ... and tear them down again while the loop is dispatching.
    for (std::size_t i = 0; i < pipes.size(); ++i) {
      if (i != round % pipes.size()) loop.remove(pipes[i].read_end());
    }
  }

  // The final round leaves the poked pipe's watcher installed with data
  // pending, so the loop must dispatch it eventually. (Earlier pokes may
  // be lost when their watcher is removed; the contract only promises no
  // races and no lost *retained* watchers.)
  auto total = [&] {
    int sum = 0;
    for (const auto& f : fired) sum += f.load();
    return sum;
  };
  for (int spin = 0; spin < 800 && total() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  loop.stop();
  runner.join();
  EXPECT_GT(total(), 0);
}

TEST(EventLoopRace, ConcurrentMutatorsFromManyThreads) {
  EventLoop loop;
  std::thread runner([&] { loop.run(2); });

  constexpr int kThreads = 4;
  constexpr int kIterations = 100;
  std::vector<std::thread> mutators;
  std::atomic<int> fired{0};
  std::vector<std::unique_ptr<Pipe>> pipes;
  pipes.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) pipes.push_back(std::make_unique<Pipe>());

  for (int t = 0; t < kThreads; ++t) {
    mutators.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        loop.add_reader(pipes[static_cast<std::size_t>(t)]->read_end(), [&, t] {
          pipes[static_cast<std::size_t>(t)]->drain();
          fired.fetch_add(1, std::memory_order_relaxed);
        });
        if (i % 3 == 0 && i + 1 < kIterations) {
          loop.remove(pipes[static_cast<std::size_t>(t)]->read_end());
        }
      }
      // The loop above always ends in the "added" state, so this poke must
      // be observed.
      pipes[static_cast<std::size_t>(t)]->poke();
    });
  }
  for (std::thread& m : mutators) m.join();
  // Every thread's final state is "added", so every poke must be seen.
  for (int spin = 0; spin < 800 && fired.load() < kThreads; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  loop.stop();
  runner.join();
  EXPECT_EQ(fired.load(), kThreads);
}

TEST(EventLoopRace, CallbackRemovesItself) {
  EventLoop loop;
  Pipe pipe;
  int calls = 0;
  loop.add_reader(pipe.read_end(), [&] {
    pipe.drain();
    ++calls;
    loop.remove(pipe.read_end());  // immediate: we are on the loop thread
  });
  pipe.poke();
  EXPECT_EQ(loop.run_once(100), 1);
  pipe.poke();
  EXPECT_EQ(loop.run_once(50), 0);  // watcher is gone
  EXPECT_EQ(calls, 1);
}

TEST(EventLoopRace, StopIsStickyAcrossThreadStart) {
  // Regression: stop() issued before the loop thread reached run() used to
  // be overwritten by run()'s entry, hanging join(). stop() is now sticky.
  for (int i = 0; i < 50; ++i) {
    EventLoop loop;
    std::thread runner([&] { loop.run(1); });
    loop.stop();  // may land before run() begins polling
    runner.join();
    EXPECT_TRUE(loop.stopped());
  }
}

TEST(EventLoopRace, AddBeforeRunIsDeliveredAfterStart) {
  EventLoop loop;
  Pipe pipe;
  std::atomic<bool> fired{false};
  loop.add_reader(pipe.read_end(), [&] {
    pipe.drain();
    fired.store(true);
  });
  pipe.poke();
  std::thread runner([&] { loop.run(5); });
  for (int spin = 0; spin < 400 && !fired.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  loop.stop();
  runner.join();
  EXPECT_TRUE(fired.load());
}

TEST(EventLoopRace, RemoveCancelsQueuedAdd) {
  // add(fd) then remove(fd) from outside the loop must not leave a stale
  // watcher regardless of how the queue is drained.
  EventLoop loop;
  Pipe pipe;
  std::atomic<int> fired{0};
  loop.add_reader(pipe.read_end(), [&] {
    pipe.drain();
    fired.fetch_add(1);
  });
  loop.remove(pipe.read_end());
  pipe.poke();
  EXPECT_EQ(loop.run_once(50), 0);
  EXPECT_EQ(fired.load(), 0);
}

}  // namespace
}  // namespace bate
