// Tests for the repetition-campaign helper (paper Sec 5.2 error bars).
#include <gtest/gtest.h>

#include "sim/campaign.h"

namespace bate {
namespace {

TEST(Campaign, CollectsSeededRepetitions) {
  std::vector<std::uint64_t> seeds;
  const Campaign c = Campaign::run(5, 100, [&](std::uint64_t seed) {
    seeds.push_back(seed);
    return static_cast<double>(seed - 100);
  });
  EXPECT_EQ(c.reps(), 5u);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
  EXPECT_DOUBLE_EQ(c.min(), 0.0);
  EXPECT_DOUBLE_EQ(c.max(), 4.0);
}

TEST(Campaign, RendersErrorBarCell) {
  const Campaign c =
      Campaign::run(3, 0,
                    [](std::uint64_t s) { return 10.0 * static_cast<double>(s); });
  EXPECT_EQ(c.cell(0), "10 [0, 20]");
  EXPECT_EQ(c.cell(1), "10.0 [0.0, 20.0]");
}

}  // namespace
}  // namespace bate
