// Tests for the LP/MILP solver substrate: hand-checked LPs, bound handling,
// infeasibility/unboundedness detection, randomized cross-checks against
// brute-force vertex enumeration, and branch & bound vs exhaustive search.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "solver/branch_bound.h"
#include "solver/model.h"
#include "solver/simplex.h"

namespace bate {
namespace {

constexpr double kTol = 1e-6;

TEST(Model, RejectsBadVariable) {
  Model m;
  EXPECT_THROW(m.add_variable(1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(m.add_variable(0.0, std::nan(""), 0.0), std::invalid_argument);
}

TEST(Model, AccumulatesDuplicateTerms) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  m.add_constraint({{x, 1.0}, {x, 2.0}}, Relation::kLessEqual, 6.0);
  ASSERT_EQ(m.constraint(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(0).terms[0].coef, 3.0);
}

TEST(Model, RejectsUnknownVariableInConstraint) {
  Model m;
  m.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Relation::kEqual, 0.0),
               std::out_of_range);
}

TEST(Simplex, SolvesTextbookMax) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), obj 36.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_variable(0.0, kInfinity, 3.0);
  const int y = m.add_variable(0.0, kInfinity, 5.0);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 6.0, kTol);
}

TEST(Simplex, SolvesMinWithGreaterEqual) {
  // min 2x + 3y st x + y >= 10, x >= 2, y >= 1  => x=9? No: cost favors x
  // (2<3), so y at its lower bound 1, x = 9; obj = 21.
  Model m;
  const int x = m.add_variable(2.0, kInfinity, 2.0);
  const int y = m.add_variable(1.0, kInfinity, 3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 10.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 21.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 9.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 1.0, kTol);
}

TEST(Simplex, HandlesEqualityRows) {
  // min x + y st x + 2y = 4, x - y = 1  => x=2, y=1, obj 3.
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kEqual, 4.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 1.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleSystem) {
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 0.0);
  const int y = m.add_variable(0.0, kInfinity, 0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 0.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLessEqual, 1.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, DetectsUnboundedAfterPivots) {
  // Regression for the ratio-test unboundedness check (the old code carried
  // an unreachable second branch): the unbounded ray only appears after the
  // profitable bounded column has been pivoted in, and both the fast path
  // and the reference mode must report it.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int z = m.add_variable(0.0, kInfinity, 10.0);
  const int x = m.add_variable(0.0, kInfinity, 0.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_constraint({{z, 1.0}}, Relation::kLessEqual, 3.0);
  m.add_constraint({{y, 1.0}, {x, -1.0}}, Relation::kLessEqual, 0.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
  SimplexOptions ref;
  ref.reference_mode = true;
  EXPECT_EQ(solve_lp(m, ref).status, SolveStatus::kUnbounded);
}

TEST(Simplex, RespectsUpperBounds) {
  // max x + y with x <= 2, y <= 3 (bounds), x + y <= 4.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_variable(0.0, 2.0, 1.0);
  const int y = m.add_variable(0.0, 3.0, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, kTol);
  EXPECT_LE(s.x[static_cast<std::size_t>(x)], 2.0 + kTol);
  EXPECT_LE(s.x[static_cast<std::size_t>(y)], 3.0 + kTol);
}

TEST(Simplex, NonzeroLowerBounds) {
  // min x + y with x in [3,10], y in [4,10], x + y >= 9 => obj 9 at (5,4)
  // or (3,6): either way obj 9... actually min is max(9, 3+4)=9? x+y >= 9
  // binds above 7, so obj = 9.
  Model m;
  const int x = m.add_variable(3.0, 10.0, 1.0);
  const int y = m.add_variable(4.0, 10.0, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 9.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, kTol);
}

TEST(Simplex, FixedVariables) {
  Model m;
  const int x = m.add_variable(2.5, 2.5, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 4.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.5, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 1.5, kTol);
}

TEST(Simplex, EmptyModelNoConstraints) {
  Model m;
  const int x = m.add_variable(1.0, 5.0, -2.0);  // min -2x => x at ub
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 5.0, kTol);
}

TEST(Simplex, DegenerateProblem) {
  // Classic degenerate LP (multiple constraints through one vertex).
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 1.0);
  m.add_constraint({{y, 1.0}}, Relation::kLessEqual, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 2.0);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 3.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

// --- Randomized cross-check against brute-force vertex enumeration -------
//
// For small LPs max c'x st Ax <= b, x in [0, u], the optimum (when it
// exists) lies at an intersection of n active constraints (rows or bounds).
// We enumerate all candidate points from constraint pairs in 2D.

struct Dense2D {
  // rows: a1 x + a2 y <= b
  std::vector<std::array<double, 3>> rows;
  double ux, uy;
  double c1, c2;
};

double brute_force_2d(const Dense2D& p) {
  std::vector<std::array<double, 3>> all = p.rows;
  all.push_back({1.0, 0.0, p.ux});
  all.push_back({0.0, 1.0, p.uy});
  all.push_back({-1.0, 0.0, 0.0});
  all.push_back({0.0, -1.0, 0.0});
  double best = -1e300;
  auto feasible = [&](double x, double y) {
    for (const auto& r : all) {
      if (r[0] * x + r[1] * y > r[2] + 1e-9) return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const double det = all[i][0] * all[j][1] - all[i][1] * all[j][0];
      if (std::abs(det) < 1e-12) continue;
      const double x = (all[i][2] * all[j][1] - all[i][1] * all[j][2]) / det;
      const double y = (all[i][0] * all[j][2] - all[i][2] * all[j][0]) / det;
      if (feasible(x, y)) best = std::max(best, p.c1 * x + p.c2 * y);
    }
  }
  return best;
}

class SimplexRandom2D : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom2D, MatchesBruteForce) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> coef(-2.0, 4.0);
  std::uniform_real_distribution<double> rhs(1.0, 8.0);

  Dense2D p;
  p.ux = rhs(rng);
  p.uy = rhs(rng);
  p.c1 = coef(rng);
  p.c2 = coef(rng);
  const int nrows = 2 + static_cast<int>(rng() % 4);
  for (int i = 0; i < nrows; ++i) {
    p.rows.push_back({coef(rng), coef(rng), rhs(rng)});
  }
  const double expected = brute_force_2d(p);

  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_variable(0.0, p.ux, p.c1);
  const int y = m.add_variable(0.0, p.uy, p.c2);
  for (const auto& r : p.rows) {
    m.add_constraint({{x, r[0]}, {y, r[1]}}, Relation::kLessEqual, r[2]);
  }
  const Solution s = solve_lp(m);
  // x=y=0 is always feasible here, so the LP must be solvable.
  ASSERT_EQ(s.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(s.objective, expected, 1e-5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom2D, ::testing::Range(0, 40));

// Random feasibility-consistency check in higher dimension: generate a
// feasible point first, then verify the solver's optimum is no worse and
// feasible.
class SimplexRandomND : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomND, OptimalIsFeasibleAndNoWorse) {
  std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> coef(0.0, 3.0);
  const int n = 4 + static_cast<int>(rng() % 5);
  const int rows = 3 + static_cast<int>(rng() % 6);

  // Feasible point z in [0,2]^n.
  std::vector<double> z(static_cast<std::size_t>(n));
  for (auto& v : z) v = coef(rng) / 1.5;

  Model m;
  m.set_sense(Sense::kMaximize);
  std::vector<int> vars;
  for (int j = 0; j < n; ++j) {
    vars.push_back(m.add_variable(0.0, 5.0, coef(rng) - 1.0));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = coef(rng) - 1.0;
      terms.push_back({vars[static_cast<std::size_t>(j)], a});
      activity += a * z[static_cast<std::size_t>(j)];
    }
    // rhs with slack so z stays strictly feasible.
    m.add_constraint(std::move(terms), Relation::kLessEqual,
                     activity + coef(rng) + 0.1);
  }
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_TRUE(m.feasible(s.x, 1e-5)) << "seed " << GetParam();
  EXPECT_GE(s.objective, m.objective_value(z) - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomND, ::testing::Range(0, 40));

// --- Branch & bound -------------------------------------------------------

TEST(BranchBound, SolvesKnapsack) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary => a+c (17) vs b+c (20).
  Model m;
  m.set_sense(Sense::kMaximize);
  const int a = m.add_binary(10.0);
  const int b = m.add_binary(13.0);
  const int c = m.add_binary(7.0);
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Relation::kLessEqual, 6.0);
  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 20.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(b)], 1.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(c)], 1.0, kTol);
}

TEST(BranchBound, MixedIntegerContinuous) {
  // max y + 0.5 x st y integer, y <= 2.5, x <= 1.2, x + y <= 3.1.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_variable(0.0, 1.2, 0.5);
  const int y = m.add_variable(0.0, 2.5, 1.0);
  m.set_integer(y);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 3.1);
  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0, kTol);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 1.1, 1e-5);
}

TEST(BranchBound, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 with x integer: LP feasible, MILP infeasible.
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  m.set_integer(x);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 0.4);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 0.6);
  EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
}

class BnbRandomKnapsack : public ::testing::TestWithParam<int> {};

TEST_P(BnbRandomKnapsack, MatchesExhaustive) {
  std::mt19937_64 rng(2000 + static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> u(0.5, 5.0);
  const int n = 6 + static_cast<int>(rng() % 5);  // up to 10 binaries

  std::vector<double> value(static_cast<std::size_t>(n));
  std::vector<double> weight(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    value[static_cast<std::size_t>(j)] = u(rng);
    weight[static_cast<std::size_t>(j)] = u(rng);
  }
  const double capacity = u(rng) * n / 3.0;

  Model m;
  m.set_sense(Sense::kMaximize);
  std::vector<Term> row;
  for (int j = 0; j < n; ++j) {
    const int v = m.add_binary(value[static_cast<std::size_t>(j)]);
    row.push_back({v, weight[static_cast<std::size_t>(j)]});
  }
  m.add_constraint(std::move(row), Relation::kLessEqual, capacity);
  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  double best = 0.0;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    double w = 0.0;
    double v = 0.0;
    for (int j = 0; j < n; ++j) {
      if ((mask >> j) & 1u) {
        w += weight[static_cast<std::size_t>(j)];
        v += value[static_cast<std::size_t>(j)];
      }
    }
    if (w <= capacity + 1e-12) best = std::max(best, v);
  }
  EXPECT_NEAR(s.objective, best, 1e-5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbRandomKnapsack, ::testing::Range(0, 25));

}  // namespace
}  // namespace bate

namespace bate {
namespace {

// Shadow-price property of the duals: perturbing a constraint's rhs by a
// small eps changes the optimum by ~dual * eps (for non-degenerate rows).
class DualShadowPrice : public ::testing::TestWithParam<int> {};

TEST_P(DualShadowPrice, DualsPredictRhsPerturbation) {
  std::mt19937_64 rng(4000 + static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> coef(0.2, 2.0);
  const bool maximize = GetParam() % 2 == 0;
  const int n = 3 + static_cast<int>(rng() % 3);

  Model m;
  m.set_sense(maximize ? Sense::kMaximize : Sense::kMinimize);
  std::vector<int> vars;
  for (int j = 0; j < n; ++j) {
    vars.push_back(m.add_variable(0.0, 10.0, coef(rng)));
  }
  // Rows through a random interior-ish point keep the LP feasible.
  const int rows = 2 + static_cast<int>(rng() % 3);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) terms.push_back({vars[static_cast<std::size_t>(j)], coef(rng)});
    m.add_constraint(std::move(terms),
                     maximize ? Relation::kLessEqual : Relation::kGreaterEqual,
                     coef(rng) * n);
  }
  const Solution base = solve_lp(m);
  ASSERT_EQ(base.status, SolveStatus::kOptimal) << "seed " << GetParam();
  ASSERT_EQ(base.duals.size(), static_cast<std::size_t>(rows));

  const double eps = 1e-5;
  for (int r = 0; r < rows; ++r) {
    Model perturbed = m;
    // Rebuild the row with rhs + eps (Model has no rhs setter by design).
    Constraint c = m.constraint(r);
    Model shifted;
    shifted.set_sense(m.sense());
    for (int j = 0; j < n; ++j) {
      const Variable& v = m.variable(j);
      shifted.add_variable(v.lower, v.upper, v.objective);
    }
    for (int rr = 0; rr < rows; ++rr) {
      Constraint row = m.constraint(rr);
      shifted.add_constraint(row.terms, row.relation,
                             row.rhs + (rr == r ? eps : 0.0));
    }
    const Solution moved = solve_lp(shifted);
    ASSERT_EQ(moved.status, SolveStatus::kOptimal);
    const double predicted = base.duals[static_cast<std::size_t>(r)] * eps;
    EXPECT_NEAR(moved.objective - base.objective, predicted, 1e-7)
        << "row " << r << " seed " << GetParam();
    (void)perturbed;
    (void)c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualShadowPrice, ::testing::Range(0, 16));

}  // namespace
}  // namespace bate
