// ThreadPool: work distribution, exactly-once execution, exception
// propagation, reuse across loops, and nested submit(). These tests run
// under the tsan preset (CMakePresets.json test filter) to validate the
// locking protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace bate {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPool, SlotWritesAreOrderedDeterministically) {
  ThreadPool pool(4);
  constexpr int kN = 200;
  std::vector<double> slots(kN, 0.0);
  pool.parallel_for(kN, [&](int i) { slots[static_cast<std::size_t>(i)] = i * 2.0; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(slots[static_cast<std::size_t>(i)], i * 2.0);
  }
}

TEST(ThreadPool, EmptyAndSingleElementLoops) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](int i) {
                          executed++;
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Every index was claimed (some may have been skipped after the failure,
  // but the loop still terminated cleanly).
  EXPECT_LE(executed.load(), 100);
}

TEST(ThreadPool, ReusableAcrossLoops) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(50, [&](int i) { total += i; });
  }
  EXPECT_EQ(total.load(), 20L * (49L * 50L / 2L));
}

TEST(ThreadPool, SubmitFromWorker) {
  // Atomics declared before the pool: the fire-and-forget inner tasks may
  // still be draining when the destructor joins, so they must outlive it.
  std::atomic<int> inner{0};
  std::atomic<int> outer_done{0};
  ThreadPool pool(2);
  pool.parallel_for(4, [&](int) {
    pool.submit([&] { inner++; });
    outer_done++;
  });
  EXPECT_EQ(outer_done.load(), 4);
  // Drain the fire-and-forget inner tasks with a barrier loop.
  pool.parallel_for(8, [](int) {});
  // Inner tasks were enqueued; they complete before pool destruction at the
  // latest. Join via destructor.
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> n{0};
  pool.parallel_for(64, [&](int) { n++; });
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().thread_count(), 1);
}

TEST(ThreadPool, CurrentWorkerIdentity) {
  ThreadPool pool(3);
  // The external (calling) thread is not a worker.
  EXPECT_EQ(pool.current_worker(), -1);
  Mutex mu{LockRank::kSolver, "test seen"};
  std::set<int> seen;
  pool.parallel_for(64, [&](int) {
    const int w = pool.current_worker();
    MutexLock lock(mu);
    seen.insert(w);
  });
  // Indices ran either on the caller (-1) or on workers [0, 3).
  for (int w : seen) {
    EXPECT_GE(w, -1);
    EXPECT_LT(w, 3);
  }
  // Workers of a different pool are not workers of this one.
  ThreadPool other(1);
  other.parallel_for(2, [&](int) {
    if (other.current_worker() >= 0) {
      EXPECT_EQ(pool.current_worker(), -1);
    }
  });
}

TEST(ThreadPool, RunOneDrainsPendingTask) {
  ThreadPool pool(1);
  // Occupy the only worker so submitted tasks stay queued.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  // Wait until the worker has claimed the blocker, then queue real work.
  while (!started.load()) std::this_thread::yield();
  pool.submit([&] { ran++; });
  pool.submit([&] { ran++; });
  // The external thread drains the queue cooperatively.
  int drained = 0;
  while (drained < 2) {
    if (pool.run_one()) ++drained;
  }
  EXPECT_EQ(ran.load(), 2);
  EXPECT_FALSE(pool.run_one());  // queue empty now
  release.store(true);
}

}  // namespace
}  // namespace bate
