// Cross-cutting integration and equivalence tests.
//
//  * The pattern-projected scheduling LP must match the paper's LITERAL
//    formulation (one B^z variable per enumerated scenario z, eqs. 1-7)
//    on small networks — the projection is claimed to be exact.
//  * An end-to-end pipeline run: workload -> admission -> scheduling ->
//    failure -> recovery -> profit, with BATE dominating TEAVAR on
//    satisfaction under identical demands.
#include <gtest/gtest.h>

#include "baselines/teavar.h"
#include "core/admission.h"
#include "core/bate_scheme.h"
#include "core/pricing.h"
#include "core/recovery.h"
#include "core/scheduling.h"
#include "scenario/scenario.h"
#include "sim/experiment.h"
#include "solver/simplex.h"
#include "topology/catalog.h"
#include "topology/generator.h"
#include "workload/demand_gen.h"

namespace bate {
namespace {

/// The paper's literal scheduling LP over an enumerated scenario set:
/// minimize sum f, s.t. (1) full bandwidth, (3) B^z <= R^z_dk per scenario,
/// (4) sum_z p_z B^z >= beta, (6) capacity. Returns the optimal objective.
double literal_scenario_lp(const Topology& topo, const TunnelCatalog& catalog,
                           std::span<const Demand> demands, int y) {
  const auto scenarios = ScenarioSet::enumerate(topo, y);
  Model model;
  model.set_sense(Sense::kMinimize);

  std::vector<int> first_var(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    first_var[i] = model.variable_count();
    const auto& tunnels = catalog.tunnels(d.pairs[0].pair);
    std::vector<Term> full;
    for (std::size_t t = 0; t < tunnels.size(); ++t) {
      full.push_back({model.add_variable(0.0, kInfinity, d.pairs[0].mbps), 1.0});
    }
    model.add_constraint(std::move(full), Relation::kGreaterEqual, 1.0);
  }
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    if (d.availability_target <= 0.0) continue;
    const auto& tunnels = catalog.tunnels(d.pairs[0].pair);
    std::vector<Term> avail;
    const double scale = availability_row_scale(d.availability_target);
    for (const Scenario& z : scenarios.scenarios()) {
      const int b = model.add_variable(0.0, 1.0, 0.0);
      avail.push_back({b, z.prob * scale});
      std::vector<Term> row{{b, 1.0}};
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        if (z.tunnel_up(tunnels[t])) {
          row.push_back({first_var[i] + static_cast<int>(t), -1.0});
        }
      }
      model.add_constraint(std::move(row), Relation::kLessEqual, 0.0);
    }
    model.add_constraint(std::move(avail), Relation::kGreaterEqual,
                         d.availability_target * scale);
  }
  std::vector<std::vector<Term>> rows(
      static_cast<std::size_t>(topo.link_count()));
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    const auto& tunnels = catalog.tunnels(d.pairs[0].pair);
    for (std::size_t t = 0; t < tunnels.size(); ++t) {
      for (LinkId e : tunnels[t].links) {
        rows[static_cast<std::size_t>(e)].push_back(
            {first_var[i] + static_cast<int>(t), d.pairs[0].mbps});
      }
    }
  }
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    auto& row = rows[static_cast<std::size_t>(e)];
    if (row.empty()) continue;
    for (Term& term : row) term.coef /= topo.link(e).capacity;
    model.add_constraint(std::move(row), Relation::kLessEqual, 1.0);
  }
  const Solution sol = solve_lp(model);
  EXPECT_EQ(sol.status, SolveStatus::kOptimal);
  double total = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& tunnels = catalog.tunnels(demands[i].pairs[0].pair);
    for (std::size_t t = 0; t < tunnels.size(); ++t) {
      total += sol.x[static_cast<std::size_t>(first_var[i] +
                                              static_cast<int>(t))] *
               demands[i].pairs[0].mbps;
    }
  }
  return total;
}

Demand make_demand(DemandId id, int pair, double mbps, double beta) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = beta;
  d.charge = mbps;
  d.refund_fraction = 0.25;
  return d;
}

class ProjectionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionEquivalence, ProjectedLpMatchesLiteralScenarioLp) {
  GeneratorConfig cfg;
  cfg.nodes = 5;
  cfg.directed_links = 14;
  cfg.seed = 7700 + static_cast<std::uint64_t>(GetParam() / 2);
  const Topology topo = generate_topology(cfg, "tiny");
  const std::vector<SdPair> pairs = {{0, 2}, {1, 3}};
  const auto catalog = TunnelCatalog::build(topo, pairs, 3);

  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  std::vector<Demand> demands;
  for (int i = 0; i < 3; ++i) {
    demands.push_back(make_demand(i, i % 2, rng.uniform(100.0, 600.0),
                                  rng.uniform(0.5, 0.95)));
  }
  const int y = 1 + GetParam() % 2;

  // Projected LP, with the tie-break and repair disabled so both sides
  // solve the identical mathematical program.
  SchedulerConfig sc;
  sc.max_failures = y;
  sc.reliability_epsilon = 0.0;
  sc.hard_repair = false;
  const TrafficScheduler scheduler(topo, catalog, sc);
  const auto projected = scheduler.schedule(demands);
  if (!projected.feasible) GTEST_SKIP();

  const double literal = literal_scenario_lp(topo, catalog, demands, y);
  EXPECT_NEAR(projected.total_allocated_mbps, literal,
              1e-4 * std::max(1.0, literal))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionEquivalence, ::testing::Range(0, 10));

TEST(Pipeline, EndToEndBateFlow) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  const TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});
  AdmissionController admission(scheduler, AdmissionStrategy::kBate);

  WorkloadConfig wl;
  wl.arrival_rate_per_min = 2.0;
  wl.horizon_min = 10.0;
  wl.mean_duration_min = 30.0;
  wl.bw_min_mbps = 80.0;
  wl.bw_max_mbps = 300.0;
  wl.services = testbed_services();
  wl.seed = 77;
  const auto demands = generate_demands(catalog, wl);

  int admitted = 0;
  for (const Demand& d : demands) admitted += admission.offer(d).admitted;
  ASSERT_GT(admitted, 0);
  ASSERT_TRUE(admission.reschedule());

  // Every admitted demand meets its hard availability target.
  const auto& set = admission.admitted();
  const auto& allocs = admission.allocations();
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_GE(scheduler.achieved_availability(set[i], allocs[i]) + 1e-9,
              set[i].availability_target)
        << "demand " << set[i].id;
  }

  // Fail the flakiest link; recovery must keep capacity bounds and profit
  // at least at the refunded floor.
  const LinkId failed[] = {testbed_link(topo, "L4")};
  const auto rec = recover_greedy(topo, catalog, set, failed);
  double floor = 0.0;
  for (const Demand& d : set) floor += (1.0 - d.refund_fraction) * d.charge;
  EXPECT_GE(rec.profit + 1e-9, floor);
  EXPECT_LE(rec.profit, full_profit(set) + 1e-9);
}

TEST(Pipeline, BateDominatesTeavarOnHeterogeneousTargets) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  const TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});
  const BateScheme bate(scheduler);
  const TeavarScheme teavar(topo, catalog, 0.999);

  WorkloadConfig wl;
  wl.arrival_rate_per_min = 3.0;
  wl.horizon_min = 30.0;
  wl.mean_duration_min = 10.0;
  wl.bw_min_mbps = 80.0;
  wl.bw_max_mbps = 300.0;
  wl.seed = 88;
  auto demands = steady_state_snapshot(catalog, wl, 15.0);
  if (demands.size() > 15) demands.resize(15);
  ASSERT_FALSE(demands.empty());

  const auto eb = evaluate_te(topo, bate, demands, true);
  const auto et = evaluate_te(topo, teavar, demands, false);
  EXPECT_GE(eb.satisfaction_fraction + 1e-9, et.satisfaction_fraction);
}

}  // namespace
}  // namespace bate
