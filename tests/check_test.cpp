// Contract-assertion layer (util/check.h): BATE_ASSERT aborts in every
// build type, BATE_DCHECK compiles away under NDEBUG, and the solver entry
// points abort on inconsistent input instead of returning garbage.
#include "util/check.h"

#include <gtest/gtest.h>

#include "core/admission.h"
#include "core/recovery.h"
#include "solver/simplex.h"
#include "topology/catalog.h"

namespace bate {
namespace {

TEST(Check, AssertPassesOnTrueCondition) {
  BATE_ASSERT(1 + 1 == 2);
  BATE_ASSERT_MSG(true, "never shown");
  SUCCEED();
}

TEST(CheckDeathTest, AssertAbortsOnViolation) {
  EXPECT_DEATH(BATE_ASSERT(1 + 1 == 3), "assertion failed: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, AssertMsgCarriesMessage) {
  EXPECT_DEATH(BATE_ASSERT_MSG(false, "tableau drifted"), "tableau drifted");
}

TEST(Check, DcheckMatchesBuildType) {
#if BATE_DCHECK_IS_ON
  EXPECT_DEATH(BATE_DCHECK(false), "assertion failed");
#else
  // Release: DCHECK is a no-op and must not evaluate into an abort.
  BATE_DCHECK(false);
  BATE_DCHECK_MSG(false, "unused");
  SUCCEED();
#endif
}

TEST(Check, DcheckConditionNotRequiredToBeEvaluatedInRelease) {
#if !BATE_DCHECK_IS_ON
  int evaluations = 0;
  BATE_DCHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 0);
#else
  GTEST_SKIP() << "DCHECK active in this build";
#endif
}

TEST(CheckDeathTest, HandlerRunsBeforeAbort) {
  // The failure handler fires before abort; the default logs through
  // util/log.h to stderr, which is what EXPECT_DEATH matches above. A
  // custom handler that returns is still followed by abort().
  static bool handler_ran = false;
  const auto previous = set_check_failure_handler(
      +[](const char*, int, const char*, const char*) { handler_ran = true; });
  EXPECT_DEATH(BATE_ASSERT(false), "");
  set_check_failure_handler(previous);
  // handler_ran stays false in this process: the death happened in the
  // forked child. The point of the round-trip is the API contract.
  EXPECT_FALSE(handler_ran);
}

// --- Solver invariants abort instead of returning garbage -------------------

TEST(CheckDeathTest, SimplexAbortsOnDanglingVariableReference) {
  Model m;
  m.add_variable(0.0, 10.0, 1.0);
  // Row references variable 7 which was never declared: before the contract
  // layer this indexed the column store out of bounds (UB).
  Model inconsistent = m;
  // Model::add_constraint cannot produce this; corrupt the row directly the
  // way a buggy caller (or memory error) would.
  inconsistent.add_constraint({{0, 1.0}}, Relation::kLessEqual, 1.0);
  const_cast<Constraint&>(inconsistent.constraint(0)).terms[0].var = 7;
  EXPECT_DEATH(solve_lp(inconsistent), "unknown variable");
}

TEST(CheckDeathTest, SimplexAbortsOnNaNCoefficient) {
  Model m;
  m.add_variable(0.0, 10.0, 1.0);
  m.add_constraint({{0, 1.0}}, Relation::kLessEqual, 1.0);
  const_cast<Constraint&>(m.constraint(0)).terms[0].coef =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(solve_lp(m), "non-finite constraint coefficient");
}

TEST(CheckDeathTest, BranchBoundRejectsNonsenseOptions) {
  Model m;
  m.add_binary(1.0);
  BranchBoundOptions opt;
  opt.node_limit = 0;
  EXPECT_DEATH(solve_milp(m, opt), "node_limit");
}

TEST(CheckDeathTest, AdmissionAbortsOnUnknownPair) {
  const Topology topo = testbed6();
  const TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  const TrafficScheduler scheduler(topo, catalog);
  Demand d;
  d.id = 1;
  d.pairs = {{catalog.pair_count() + 3, 100.0}};  // unknown pair index
  d.availability_target = 0.99;
  AdmissionController admission(scheduler, AdmissionStrategy::kBate);
  EXPECT_DEATH(admission.offer(d), "unknown pair");
}

TEST(CheckDeathTest, AdmissionAbortsOnNegativeBandwidth) {
  const Topology topo = testbed6();
  const TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  const TrafficScheduler scheduler(topo, catalog);
  Demand d;
  d.id = 1;
  d.pairs = {{0, -5.0}};
  AdmissionController admission(scheduler, AdmissionStrategy::kBate);
  EXPECT_DEATH(admission.offer(d), "negative or non-finite bandwidth");
}

TEST(CheckDeathTest, SchedulerAbortsOnMismatchedCapacityOverride) {
  const Topology topo = testbed6();
  const TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  const TrafficScheduler scheduler(topo, catalog);
  Demand d;
  d.id = 1;
  d.pairs = {{0, 100.0}};
  d.availability_target = 0.9;
  const std::vector<Demand> demands{d};
  const std::vector<double> short_caps(2, 1000.0);  // topology has more links
  EXPECT_DEATH(scheduler.schedule(demands, short_caps),
               "capacity override does not match topology");
}

TEST(CheckDeathTest, RecoveryAbortsOnForeignLink) {
  const Topology topo = testbed6();
  const TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  Demand d;
  d.id = 1;
  d.pairs = {{0, 100.0}};
  const std::vector<Demand> demands{d};
  const std::vector<LinkId> failed{topo.link_count() + 1};
  EXPECT_DEATH(recover_greedy(topo, catalog, demands, failed),
               "failed link outside topology");
}

TEST(Check, ValidDemandPassesValidation) {
  const Topology topo = testbed6();
  const TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  Demand d;
  d.id = 1;
  d.pairs = {{0, 100.0}};
  d.availability_target = 0.999;
  d.refund_fraction = 0.1;
  validate_demand(catalog, d);  // must not abort
  SUCCEED();
}

}  // namespace
}  // namespace bate
