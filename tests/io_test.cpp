// Tests for the topology text format: round-trips, parse errors, comments,
// and file helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "topology/catalog.h"
#include "topology/io.h"

namespace bate {
namespace {

TEST(TopologyIo, RoundTripsEveryCatalogTopology) {
  for (const Topology& original :
       {toy4(), square4(), testbed6(), b4(), fiti()}) {
    const Topology parsed = from_text(to_text(original));
    ASSERT_EQ(parsed.node_count(), original.node_count()) << original.name();
    ASSERT_EQ(parsed.link_count(), original.link_count()) << original.name();
    EXPECT_EQ(parsed.name(), original.name());
    for (LinkId e = 0; e < original.link_count(); ++e) {
      EXPECT_EQ(parsed.link(e).src, original.link(e).src);
      EXPECT_EQ(parsed.link(e).dst, original.link(e).dst);
      EXPECT_DOUBLE_EQ(parsed.link(e).capacity, original.link(e).capacity);
      EXPECT_DOUBLE_EQ(parsed.link(e).failure_prob,
                       original.link(e).failure_prob);
    }
  }
}

TEST(TopologyIo, ParsesCommentsAndBlankLines) {
  const Topology t = from_text(
      "# a WAN\n"
      "topology demo\n"
      "\n"
      "node A\n"
      "node B   # the second DC\n"
      "bilink A B 1000 0.001\n");
  EXPECT_EQ(t.name(), "demo");
  EXPECT_EQ(t.node_count(), 2);
  EXPECT_EQ(t.link_count(), 2);
  EXPECT_DOUBLE_EQ(t.link(0).failure_prob, 0.001);
}

TEST(TopologyIo, RejectsMalformedInput) {
  EXPECT_THROW(from_text("frobnicate X\n"), std::invalid_argument);
  EXPECT_THROW(from_text("node A\nnode A\n"), std::invalid_argument);
  EXPECT_THROW(from_text("node A\nlink A B 10 0.1\n"), std::invalid_argument);
  EXPECT_THROW(from_text("node A\nnode B\nlink A B ten 0.1\n"),
               std::invalid_argument);
  EXPECT_THROW(from_text("node A\nnode B\nlink A B 10 1.5\n"),
               std::invalid_argument);
  // Error message carries the line number.
  try {
    from_text("node A\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TopologyIo, FileHelpers) {
  const auto path =
      std::filesystem::temp_directory_path() / "bate_topology_io_test.txt";
  const Topology original = testbed6();
  save_topology(original, path.string());
  const Topology loaded = load_topology(path.string());
  EXPECT_EQ(loaded.link_count(), original.link_count());
  EXPECT_EQ(loaded.name(), original.name());
  std::filesystem::remove(path);
  EXPECT_THROW(load_topology("/nonexistent/nowhere.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace bate
