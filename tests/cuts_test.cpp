// Property tests for the root cutting planes (solver/cuts.h): on seeded
// random knapsack and admission-style instances, no Gomory or cover cut may
// ever cut off an integer-feasible point — checked by full enumeration on
// pure-binary instances and against the reference-mode branch & bound
// optimum on mixed ones — and the full solver with cuts and pseudo-cost
// branching enabled must reproduce the reference verdicts exactly.
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "solver/branch_bound.h"
#include "solver/cuts.h"
#include "solver/model.h"
#include "solver/simplex.h"

namespace bate {
namespace {

/// Random knapsack / admission-style MILP: binary items, mostly <= capacity
/// rows with positive weights (the admission availability knapsack), plus
/// occasional mixed-sign and >= / = rows to exercise cover complementing
/// and both canonical directions. `continuous` adds fractional columns so
/// Gomory separation sees genuinely mixed rows.
Model random_instance(std::uint64_t seed, bool continuous) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> nbin_d(4, continuous ? 8 : 10);
  std::uniform_real_distribution<double> coef_d(0.5, 5.0);
  std::uniform_real_distribution<double> unit_d(0.0, 1.0);

  Model m;
  m.set_sense(Sense::kMaximize);
  const int nb = nbin_d(rng);
  for (int j = 0; j < nb; ++j) m.add_binary(coef_d(rng));
  int n = nb;
  if (continuous) {
    const int nc = 1 + static_cast<int>(rng() % 3);
    for (int j = 0; j < nc; ++j) {
      m.add_variable(0.0, coef_d(rng), 0.3 * coef_d(rng));
    }
    n += nc;
  }
  const int rows = 1 + static_cast<int>(rng() % 4);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (unit_d(rng) < 0.75) {
        double c = coef_d(rng);
        if (unit_d(rng) < 0.15) c = -c;  // exercise complementing
        terms.push_back({j, c});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double roll = unit_d(rng);
    const Relation rel = roll < 0.8    ? Relation::kLessEqual
                         : roll < 0.95 ? Relation::kGreaterEqual
                                       : Relation::kEqual;
    m.add_constraint(std::move(terms), rel, coef_d(rng) * n / 2.5);
  }
  return m;
}

double cut_activity(const Cut& cut, const std::vector<double>& x) {
  double act = 0.0;
  for (const Term& t : cut.terms) {
    act += t.coef * x[static_cast<std::size_t>(t.var)];
  }
  return act;
}

bool cut_satisfied(const Cut& cut, const std::vector<double>& x, double tol) {
  const double act = cut_activity(cut, x);
  return cut.relation == Relation::kLessEqual ? act <= cut.rhs + tol
                                              : act >= cut.rhs - tol;
}

/// Separates both families at the relaxation optimum of `m` (presolve off,
/// so the basis matches the model shape) and returns them; empty when the
/// relaxation is already integral or not optimal.
std::vector<Cut> separate_at_root(const Model& m) {
  SimplexOptions lp;
  lp.presolve = false;
  WarmStart root_basis;
  const Solution relax = solve_lp(m, lp, &root_basis);
  if (relax.status != SolveStatus::kOptimal) return {};
  std::vector<Cut> cuts = separate_gomory(m, root_basis.basis, relax.x);
  std::vector<Cut> cover = separate_cover(m, relax.x);
  cuts.insert(cuts.end(), cover.begin(), cover.end());
  // Every emitted cut must actually be violated at the separating point by
  // the violation it reports (positive, beyond the filter floor).
  for (const Cut& cut : cuts) {
    EXPECT_GE(cut.violation, 1e-4);
    EXPECT_FALSE(cut_satisfied(cut, relax.x, 1e-9));
  }
  return cuts;
}

TEST(CutsProperty, NeverCutAnyIntegerPointOnBinaryInstances) {
  // Full enumeration: every 0/1 assignment that satisfies the model must
  // survive every cut. 60 seeded instances, up to 2^10 points each.
  long points_checked = 0;
  long cuts_checked = 0;
  for (std::uint64_t seed = 5000; seed < 5060; ++seed) {
    const Model m = random_instance(seed, /*continuous=*/false);
    const std::vector<Cut> cuts = separate_at_root(m);
    if (cuts.empty()) continue;
    cuts_checked += static_cast<long>(cuts.size());
    const int n = m.variable_count();
    std::vector<double> x(static_cast<std::size_t>(n));
    for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
      for (int j = 0; j < n; ++j) {
        x[static_cast<std::size_t>(j)] = (mask >> j) & 1ull ? 1.0 : 0.0;
      }
      if (!m.feasible(x, 1e-9)) continue;
      ++points_checked;
      for (const Cut& cut : cuts) {
        ASSERT_TRUE(cut_satisfied(cut, x, 1e-6))
            << "seed " << seed << " mask " << mask << " cut rhs " << cut.rhs;
      }
    }
  }
  // The suite must actually exercise the property, not vacuously pass.
  EXPECT_GT(points_checked, 1000);
  EXPECT_GT(cuts_checked, 30);
}

TEST(CutsProperty, ReferenceOptimumSurvivesCutsOnMixedInstances) {
  // Mixed binary/continuous instances: the reference-mode branch & bound
  // optimum is integer-feasible, so every cut must keep it.
  int optima_checked = 0;
  for (std::uint64_t seed = 6000; seed < 6060; ++seed) {
    const Model m = random_instance(seed, /*continuous=*/true);
    BranchBoundOptions ref;
    ref.lp.reference_mode = true;
    const Solution best = solve_milp(m, ref);
    if (best.status != SolveStatus::kOptimal) continue;
    for (const Cut& cut : separate_at_root(m)) {
      ASSERT_TRUE(cut_satisfied(cut, best.x, 1e-6)) << "seed " << seed;
    }
    ++optima_checked;
  }
  EXPECT_GT(optima_checked, 40);
}

TEST(CutsProperty, SolverWithCutsMatchesReferenceVerdicts) {
  // End to end: default options (cuts + pseudo-cost branching + dual warm
  // restarts) against the reference oracle on both suites — verdicts always
  // identical, objectives equal on optimal instances.
  for (std::uint64_t seed = 5000; seed < 5060; ++seed) {
    for (const bool continuous : {false, true}) {
      const Model m = random_instance(seed + (continuous ? 1000 : 0),
                                      continuous);
      BranchBoundOptions ref;
      ref.lp.reference_mode = true;
      BranchBoundOptions opt;  // defaults: root cuts + pseudo-costs on
      const Solution want = solve_milp(m, ref);
      BranchBoundStats st;
      const Solution got = solve_milp(m, opt, nullptr, &st);
      ASSERT_EQ(got.status, want.status)
          << "seed " << seed << " continuous " << continuous;
      if (want.status == SolveStatus::kOptimal) {
        EXPECT_NEAR(got.objective, want.objective, 1e-6)
            << "seed " << seed << " continuous " << continuous;
        EXPECT_TRUE(st.proven);
        EXPECT_EQ(st.mip_gap, 0.0);
        EXPECT_NEAR(st.best_bound, want.objective, 1e-6);
      }
    }
  }
}

TEST(CutPool, FiltersViolationParallelismAndCapacity) {
  CutPool pool(/*capacity=*/3, /*min_violation=*/1e-3,
               /*max_parallelism=*/0.95);

  Cut weak;
  weak.terms = {{0, 1.0}, {1, 1.0}};
  weak.relation = Relation::kLessEqual;
  weak.rhs = 1.0;
  weak.violation = 1e-5;
  EXPECT_FALSE(pool.add(weak));  // below the violation floor

  Cut a = weak;
  a.violation = 0.3;
  EXPECT_TRUE(pool.add(a));

  Cut parallel = a;  // same direction, scaled: normalized dot is 1
  parallel.terms = {{0, 2.0}, {1, 2.0}};
  parallel.rhs = 2.0;
  EXPECT_FALSE(pool.add(parallel));

  Cut b;
  b.terms = {{0, 1.0}, {1, -1.0}};  // orthogonal to a
  b.relation = Relation::kLessEqual;
  b.rhs = 0.5;
  b.violation = 0.2;
  EXPECT_TRUE(pool.add(b));

  Cut c;
  c.terms = {{2, 1.0}};
  c.relation = Relation::kGreaterEqual;
  c.rhs = 0.25;
  c.violation = 0.1;
  EXPECT_TRUE(pool.add(c));

  Cut d;
  d.terms = {{3, 1.0}};
  d.relation = Relation::kLessEqual;
  d.rhs = 0.5;
  d.violation = 0.4;
  EXPECT_FALSE(pool.add(d));  // capacity reached
  EXPECT_EQ(pool.cuts().size(), 3u);
}

TEST(CutPool, DrainHandsOutEachCutOnce) {
  CutPool pool(8, 1e-4, 0.95);
  Cut a;
  a.terms = {{0, 1.0}};
  a.relation = Relation::kLessEqual;
  a.rhs = 0.5;
  a.violation = 0.5;
  ASSERT_TRUE(pool.add(a));
  EXPECT_EQ(pool.drain().size(), 1u);
  EXPECT_TRUE(pool.drain().empty());  // nothing new since the last drain

  Cut b;
  b.terms = {{1, 1.0}};
  b.relation = Relation::kLessEqual;
  b.rhs = 0.5;
  b.violation = 0.5;
  ASSERT_TRUE(pool.add(b));
  const std::vector<Cut> fresh = pool.drain();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh.front().terms.front().var, 1);
  EXPECT_EQ(pool.cuts().size(), 2u);  // all accepted cuts stay visible
}

}  // namespace
}  // namespace bate
