// Capability-annotated mutex wrappers (util/mutex.h): the runtime lock-rank
// checker turns ordering violations and double acquires into deterministic
// aborts (observed here as gtest death tests), try_lock stays exempt, the
// held stack survives MutexLock relock cycles and is per-thread, shared
// locks overlap, and CondVar wait/notify keeps the checker bookkeeping
// exact. The suite runs under the tsan preset (CMakePresets.json filter) so
// the wrapper itself is TSan-validated.
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace bate {
namespace {

TEST(LockRank, InOrderAcquisitionIsClean) {
  Mutex high(LockRank::kBroker, "high");
  Mutex low(LockRank::kObsRegistry, "low");
  MutexLock outer(high);
  MutexLock inner(low);  // descending rank: allowed
  SUCCEED();
}

TEST(LockRank, HeldDepthTracksScopes) {
  EXPECT_EQ(lock_rank::held_depth(), 0);
  Mutex high(LockRank::kController, "high");
  Mutex mid(LockRank::kEventLoop, "mid");
  {
    MutexLock a(high);
    EXPECT_EQ(lock_rank::held_depth(), 1);
    {
      MutexLock b(mid);
      EXPECT_EQ(lock_rank::held_depth(), 2);
    }
    EXPECT_EQ(lock_rank::held_depth(), 1);
  }
  EXPECT_EQ(lock_rank::held_depth(), 0);
}

TEST(LockRank, TryLockIsExemptFromOrdering) {
  Mutex low(LockRank::kObsRegistry, "low");
  Mutex high(LockRank::kBroker, "high");
  MutexLock lock(low);
  // Ascending order would abort for a blocking lock(); try_lock cannot
  // deadlock and is allowed through (and still joins the held stack).
  ASSERT_TRUE(high.try_lock());
  EXPECT_EQ(lock_rank::held_depth(), 2);
  high.unlock();
  EXPECT_EQ(lock_rank::held_depth(), 1);
}

TEST(LockRank, FailedTryLockLeavesNoTrace) {
  Mutex mu(LockRank::kSolver, "contended");
  MutexLock lock(mu);
  std::thread t([&] {
    EXPECT_FALSE(mu.try_lock());
    EXPECT_EQ(lock_rank::held_depth(), 0);
  });
  t.join();
}

TEST(LockRank, RelockKeepsStackExact) {
  Mutex mu(LockRank::kSolver, "relock");
  MutexLock lock(mu);
  EXPECT_EQ(lock_rank::held_depth(), 1);
  lock.unlock();
  EXPECT_EQ(lock_rank::held_depth(), 0);
  lock.lock();
  EXPECT_EQ(lock_rank::held_depth(), 1);
}

TEST(LockRank, ThreadsHaveIndependentStacks) {
  // Two threads each holding their own same-rank lock is not a violation:
  // the held stack is thread-local.
  Mutex a(LockRank::kBroker, "a");
  Mutex b(LockRank::kBroker, "b");
  std::atomic<int> in{0};
  std::thread ta([&] {
    MutexLock lock(a);
    ++in;
    while (in.load() < 2) std::this_thread::yield();
  });
  std::thread tb([&] {
    MutexLock lock(b);
    ++in;
    while (in.load() < 2) std::this_thread::yield();
  });
  ta.join();
  tb.join();
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low(LockRank::kObsRegistry, "registry-like");
  Mutex high(LockRank::kBroker, "broker-like");
  EXPECT_DEATH(
      {
        MutexLock a(low);
        MutexLock b(high);  // ascending rank
      },
      "lock rank violation");
}

TEST(LockRankDeathTest, EqualRankAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Equal ranks may never nest: equality is reserved for locks proven
  // disjoint (broker write_mu_/mu_, pool/queue).
  Mutex a(LockRank::kThreadPool, "pool-a");
  Mutex b(LockRank::kThreadPool, "pool-b");
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
      },
      "lock rank violation");
}

TEST(LockRankDeathTest, DoubleAcquireAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(LockRank::kSolver, "twice");
  EXPECT_DEATH(
      {
        MutexLock a(mu);
        mu.lock();  // same mutex, same thread: non-recursive
      },
      "double acquire");
}

TEST(Mutex, SharedReadersOverlap) {
  Mutex mu(LockRank::kScheduler, "snapshot");
  std::atomic<int> readers{0};
  auto reader = [&] {
    ReaderMutexLock lock(mu);
    ++readers;
    // Both readers must be inside the lock at once; an exclusive
    // implementation would deadlock this spin.
    while (readers.load() < 2) std::this_thread::yield();
  };
  std::thread a(reader);
  std::thread b(reader);
  a.join();
  b.join();
  EXPECT_EQ(readers.load(), 2);
}

TEST(CondVar, WaitNotifySmoke) {
  Mutex mu(LockRank::kSolver, "cv");
  CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
    // The wait reacquired through Mutex::lock, so the checker still sees
    // exactly one held lock.
    EXPECT_EQ(lock_rank::held_depth(), 1);
  }
  producer.join();
}

TEST(CondVar, WaitForTimesOut) {
  Mutex mu(LockRank::kSolver, "cv-timeout");
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.wait_for(mu, std::chrono::milliseconds(5)));
  EXPECT_EQ(lock_rank::held_depth(), 1);
}

TEST(CondVar, WaitUntilDeadlinePasses) {
  Mutex mu(LockRank::kSolver, "cv-deadline");
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  while (cv.wait_until(mu, deadline)) {
    // Spurious wakeups loop until the deadline definitely passed.
  }
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

}  // namespace
}  // namespace bate
