// Parallel Campaign::run must be BIT-identical to the serial overload: each
// rep owns its seed, results are collected into slots indexed by rep, and
// the Summary is reduced in rep order — so mean/min/max/stddev match to the
// last bit regardless of which thread ran which rep. Runs under the tsan
// preset (CMakePresets.json test filter).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "sim/campaign.h"
#include "util/thread_pool.h"

namespace bate {
namespace {

/// A deliberately ill-conditioned metric: summing these in a different
/// order WOULD change the floating-point result, so bit-equality of the
/// stats below proves the reduction order is fixed.
double jagged_metric(std::uint64_t seed) {
  const double s = static_cast<double>(seed);
  return std::sin(s) * 1e12 + std::cos(s * 0.7) * 1e-9 + s;
}

TEST(CampaignParallel, BitIdenticalToSerial) {
  const Campaign serial = Campaign::run(64, 1234, jagged_metric);
  ThreadPool pool(4);
  const Campaign parallel = Campaign::run(64, 1234, jagged_metric, pool);

  EXPECT_EQ(serial.reps(), parallel.reps());
  // Bit-identical, not just approximately equal.
  EXPECT_EQ(serial.mean(), parallel.mean());
  EXPECT_EQ(serial.min(), parallel.min());
  EXPECT_EQ(serial.max(), parallel.max());
  EXPECT_EQ(serial.cell(6), parallel.cell(6));
}

TEST(CampaignParallel, BitIdenticalOnSharedPool) {
  const Campaign serial = Campaign::run(40, 777, jagged_metric);
  const Campaign parallel =
      Campaign::run(40, 777, jagged_metric, ThreadPool::shared());
  EXPECT_EQ(serial.mean(), parallel.mean());
  EXPECT_EQ(serial.min(), parallel.min());
  EXPECT_EQ(serial.max(), parallel.max());
}

TEST(CampaignParallel, ZeroAndOneRep) {
  ThreadPool pool(2);
  const Campaign none = Campaign::run(0, 5, jagged_metric, pool);
  EXPECT_EQ(none.reps(), 0u);
  const Campaign one = Campaign::run(1, 5, jagged_metric, pool);
  EXPECT_EQ(one.reps(), 1u);
  EXPECT_EQ(one.mean(), jagged_metric(5));
}

}  // namespace
}  // namespace bate
