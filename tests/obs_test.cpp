// Unit tests for the observability subsystem (src/obs): metric semantics,
// log-linear histogram bucket boundaries, snapshot consistency under
// concurrent writers (the tsan preset runs every Obs* suite), trace-ring
// wraparound, and golden checks of both exposition formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bate::obs {
namespace {

TEST(ObsCounter, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(5);
  EXPECT_EQ(c.value(), 6);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kIncs);
}

TEST(ObsGauge, SetAddMax) {
  Gauge g;
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.max_of(2.0);  // lower: no-op
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.max_of(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketBoundaries) {
  // The linear head: one bucket per value 0..3, upper bounds 1..4.
  for (std::int64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_upper(static_cast<int>(v)), v + 1);
  }
  // First octave [4,8): 4 sub-buckets of width 1.
  EXPECT_EQ(Histogram::bucket_index(4), 4);
  EXPECT_EQ(Histogram::bucket_index(7), 7);
  EXPECT_EQ(Histogram::bucket_upper(4), 5);
  EXPECT_EQ(Histogram::bucket_upper(7), 8);
  // Octave [8,16): width-2 sub-buckets.
  EXPECT_EQ(Histogram::bucket_index(8), 8);
  EXPECT_EQ(Histogram::bucket_index(9), 8);
  EXPECT_EQ(Histogram::bucket_upper(8), 10);

  // Invariants over a broad sample: every value lands in exactly the
  // bucket whose half-open range [upper(i-1), upper(i)) contains it, and
  // the index is monotone in the value.
  int prev_idx = -1;
  for (std::int64_t v = 0; v < 100000; v = v < 64 ? v + 1 : v + v / 7) {
    const int idx = Histogram::bucket_index(v);
    ASSERT_GE(idx, prev_idx) << "v=" << v;
    ASSERT_LT(v, Histogram::bucket_upper(idx)) << "v=" << v;
    if (idx > 0) {
      ASSERT_GE(v, Histogram::bucket_upper(idx - 1)) << "v=" << v;
    }
    prev_idx = idx;
  }
  // Relative error of the bucket bound stays within one sub-bucket (25%).
  for (std::int64_t v = 4; v < (std::int64_t{1} << 40); v *= 3) {
    const int idx = Histogram::bucket_index(v);
    if (idx == Histogram::kBuckets - 1) break;  // overflow bucket
    const double upper = static_cast<double>(Histogram::bucket_upper(idx));
    EXPECT_LE(upper / static_cast<double>(v), 1.25) << "v=" << v;
  }
  // Out-of-range samples: negatives clamp to 0, huge values overflow into
  // the last (+Inf) bucket.
  Histogram h;
  h.record(-7);
  EXPECT_EQ(h.bucket_count(0), 1);
  h.record(std::int64_t{1} << 45);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1);
  EXPECT_EQ(h.count(), 2);
}

TEST(ObsHistogram, RecordAndAccessors) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 10);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(0)), 1);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(5)), 2);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
}

TEST(ObsHistogram, QuantileEstimates) {
  Registry reg;
  Histogram& h = reg.histogram("bate_test_obs_q_us");
  // 1000 uniform samples over [0, 1000): the quantile estimate must land
  // within one bucket width (<= 25% relative error) of the exact order
  // statistic.
  for (int i = 0; i < 1000; ++i) h.record(i);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0].second;
  EXPECT_NEAR(hs.quantile(0.5), 500.0, 125.0);
  EXPECT_NEAR(hs.quantile(0.99), 990.0, 250.0);
  EXPECT_NEAR(hs.quantile(0.0), 0.0, 1.0);
  // q=1 must not exceed the populated range's bucket bound.
  EXPECT_LE(hs.quantile(1.0), 1024.0);
  EXPECT_GE(hs.quantile(1.0), 999.0 * 0.75);
  // Monotone in q.
  EXPECT_LE(hs.quantile(0.25), hs.quantile(0.75));
}

TEST(ObsHistogram, QuantileEdgeCases) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // A spike: every sample identical. All quantiles land inside that one
  // bucket.
  Registry reg;
  Histogram& h = reg.histogram("bate_test_obs_spike_us");
  for (int i = 0; i < 100; ++i) h.record(5000);
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot& hs = snap.histograms[0].second;
  const int idx = Histogram::bucket_index(5000);
  const double lo = static_cast<double>(Histogram::bucket_upper(idx - 1));
  const double hi = static_cast<double>(Histogram::bucket_upper(idx));
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_GE(hs.quantile(q), lo);
    EXPECT_LE(hs.quantile(q), hi);
  }
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_GE(hs.quantile(-1.0), lo);
  EXPECT_LE(hs.quantile(2.0), hi);
}

TEST(ObsRegistry, SnapshotWhileIncrementing) {
  // Writers hammer a counter and a histogram while the main thread takes
  // snapshots: every snapshot must be internally consistent (histogram
  // count equals the +Inf cumulative, cumulative counts non-decreasing),
  // and the final totals exact. Doubles as the tsan gate for the registry.
  Registry reg;
  Counter& c = reg.counter("bate_test_obs_ops_total");
  Histogram& h = reg.histogram("bate_test_obs_lat_us");
  constexpr int kThreads = 4;
  constexpr int kIncs = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncs; ++i) {
        c.inc();
        h.record(i & 1023);
      }
    });
  }
  for (int probe = 0; probe < 50; ++probe) {
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistogramSnapshot& hs = snap.histograms[0].second;
    std::int64_t prev = 0;
    for (const auto& b : hs.buckets) {
      ASSERT_GE(b.cumulative, prev);
      prev = b.cumulative;
    }
    if (!hs.buckets.empty()) {
      ASSERT_TRUE(hs.buckets.back().infinite);
      ASSERT_EQ(hs.count, hs.buckets.back().cumulative);
    }
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kIncs);
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kIncs);
}

TEST(ObsRegistry, HandlesAreStableAndShared) {
  Registry reg;
  Counter& a = reg.counter("bate_test_obs_x_total");
  Counter& b = reg.counter("bate_test_obs_x_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3);
  reg.reset();
  EXPECT_EQ(a.value(), 0);
}

TEST(ObsRegistry, PrometheusGolden) {
  Registry reg;
  reg.counter("bate_test_ops_total").inc(3);
  reg.gauge("bate_test_depth").set(2.5);
  Histogram& h = reg.histogram("bate_test_lat_us");
  h.record(0);  // bucket le="1"
  h.record(5);  // bucket le="6"
  const std::string expected =
      "# TYPE bate_test_ops_total counter\n"
      "bate_test_ops_total 3\n"
      "# TYPE bate_test_depth gauge\n"
      "bate_test_depth 2.5\n"
      "# TYPE bate_test_lat_us histogram\n"
      "bate_test_lat_us_bucket{le=\"1\"} 1\n"
      "bate_test_lat_us_bucket{le=\"6\"} 2\n"
      "bate_test_lat_us_bucket{le=\"+Inf\"} 2\n"
      "bate_test_lat_us_sum 5\n"
      "bate_test_lat_us_count 2\n";
  EXPECT_EQ(reg.dump("prometheus"), expected);
}

TEST(ObsRegistry, JsonGolden) {
  Registry reg;
  reg.counter("bate_test_ops_total").inc(3);
  reg.gauge("bate_test_depth").set(2.5);
  Histogram& h = reg.histogram("bate_test_lat_us");
  h.record(0);
  h.record(5);
  const std::string expected =
      "{\"counters\":{\"bate_test_ops_total\":3},"
      "\"gauges\":{\"bate_test_depth\":2.5},"
      "\"histograms\":{\"bate_test_lat_us\":{\"count\":2,\"sum\":5,"
      "\"buckets\":[{\"le\":1,\"cumulative\":1},"
      "{\"le\":6,\"cumulative\":2},"
      "{\"le\":\"+Inf\",\"cumulative\":2}]}}}";
  EXPECT_EQ(reg.dump("json"), expected);
}

TEST(ObsTraceRing, RecordsAndWraps) {
  TraceRing ring(8, 42);
  for (std::int64_t i = 0; i < 20; ++i) {
    ring.push("obs_test.wrap", 100 + i, 1);
  }
  EXPECT_EQ(ring.total(), 20u);
  EXPECT_EQ(ring.capacity(), 8u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, and only the newest 8 survive: ts 112..119.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_us, 112 + static_cast<std::int64_t>(i));
    EXPECT_EQ(events[i].tid, 42u);
  }
  ring.clear();
  EXPECT_TRUE(ring.events().empty());
}

TEST(ObsTraceRing, CapacityRoundsToPowerOfTwo) {
  TraceRing ring(5, 0);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(ObsTrace, ChromeJsonGolden) {
  const std::vector<TraceEventCopy> events = {
      {"solver.presolve", 10, 5, 0},
      {"solver.simplex", 16, 40, 0},
  };
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"solver.presolve\",\"cat\":\"bate\",\"ph\":\"X\","
      "\"ts\":10,\"dur\":5,\"pid\":1,\"tid\":0},"
      "{\"name\":\"solver.simplex\",\"cat\":\"bate\",\"ph\":\"X\","
      "\"ts\":16,\"dur\":40,\"pid\":1,\"tid\":0}"
      "]}";
  EXPECT_EQ(chrome_trace_json(events), expected);
}

TEST(ObsTrace, SpansLandInThreadRings) {
  const std::uint64_t before = Tracer::global().thread_ring().total();
  {
    BATE_TRACE_SPAN("obs_test.outer");
    BATE_TRACE_SPAN("obs_test.inner");
  }
  EXPECT_EQ(Tracer::global().thread_ring().total(), before + 2);
  // A second thread gets its own ring; its span must appear in the global
  // export alongside ours.
  std::thread([] { BATE_TRACE_SPAN("obs_test.worker"); }).join();
  const std::string json = Tracer::global().chrome_json();
  EXPECT_NE(json.find("obs_test.outer"), std::string::npos);
  EXPECT_NE(json.find("obs_test.worker"), std::string::npos);
  EXPECT_GE(Tracer::global().ring_count(), 2u);
}

TEST(ObsTrace, NestedSpansParentUnderAmbientContext) {
  TraceRing& ring = Tracer::global().thread_ring();
  const std::uint64_t before = ring.total();
  SpanContext outer_ctx;
  SpanContext inner_ctx;
  {
    Span outer("obs_test.parent_outer");
    outer_ctx = outer.context();
    EXPECT_TRUE(outer_ctx.valid());
    // The open span is the thread's ambient context.
    EXPECT_EQ(current_context().span_id, outer_ctx.span_id);
    {
      Span inner("obs_test.parent_inner");
      inner_ctx = inner.context();
      EXPECT_EQ(current_context().span_id, inner_ctx.span_id);
    }
    // Closing the inner span restores the outer ambient.
    EXPECT_EQ(current_context().span_id, outer_ctx.span_id);
  }
  // Same trace, distinct spans, inner parented under outer.
  EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);
  EXPECT_NE(inner_ctx.span_id, outer_ctx.span_id);

  const auto events = ring.events();
  ASSERT_GE(ring.total(), before + 2);
  const TraceEventCopy* outer_ev = nullptr;
  const TraceEventCopy* inner_ev = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.parent_outer") outer_ev = &e;
    if (std::string(e.name) == "obs_test.parent_inner") inner_ev = &e;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  EXPECT_EQ(outer_ev->parent_id, 0u);  // root of its trace
  EXPECT_EQ(inner_ev->parent_id, outer_ev->span_id);
  EXPECT_EQ(inner_ev->trace_id, outer_ev->trace_id);
}

TEST(ObsTrace, ScopedContextAdoptsRemoteParent) {
  // A context "received over the wire" becomes the parent of local spans —
  // the cross-process stitching the frame header exists for.
  const SpanContext remote{/*trace_id=*/987654321u, /*span_id=*/1234u};
  SpanContext local_ctx;
  {
    ScopedTraceContext adopt(remote);
    EXPECT_EQ(current_context().trace_id, remote.trace_id);
    Span local("obs_test.adopted_child");
    local_ctx = local.context();
  }
  EXPECT_EQ(local_ctx.trace_id, remote.trace_id);
  // The ambient context does not leak past the adopting scope.
  EXPECT_NE(current_context().trace_id, remote.trace_id);

  const auto events = Tracer::global().thread_ring().events();
  const TraceEventCopy* child = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.adopted_child") child = &e;
  }
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, remote.trace_id);
  EXPECT_EQ(child->parent_id, remote.span_id);
}

TEST(ObsTrace, InvalidContextAdoptionIsNoOp) {
  const SpanContext before = current_context();
  ScopedTraceContext adopt(SpanContext{});  // trace_id 0: nothing to adopt
  EXPECT_EQ(current_context().trace_id, before.trace_id);
  EXPECT_EQ(current_context().span_id, before.span_id);
}

TEST(ObsTrace, RecordSpanWritesExplicitIdentity) {
  TraceRing& ring = Tracer::global().thread_ring();
  const SpanContext ctx{555u, 666u};
  record_span("obs_test.retro", 1000, 250, ctx, /*parent_id=*/444u);
  const auto events = ring.events();
  const TraceEventCopy* retro = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.retro" && e.ts_us == 1000) retro = &e;
  }
  ASSERT_NE(retro, nullptr);
  EXPECT_EQ(retro->dur_us, 250);
  EXPECT_EQ(retro->trace_id, 555u);
  EXPECT_EQ(retro->span_id, 666u);
  EXPECT_EQ(retro->parent_id, 444u);
}

TEST(ObsTrace, ChromeJsonEmitsIdentityArgsOnlyForContextSpans) {
  const std::vector<TraceEventCopy> events = {
      // Id-less event: must render the exact legacy shape (no "args").
      {"solver.presolve", 10, 5, 0},
      // Context-carrying event: identity rides in "args".
      {"controller.batch", 20, 7, 0, /*trace_id=*/3, /*span_id=*/4,
       /*parent_id=*/2},
  };
  const std::string json = chrome_trace_json(events);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"solver.presolve\",\"cat\":\"bate\",\"ph\":\"X\","
      "\"ts\":10,\"dur\":5,\"pid\":1,\"tid\":0},"
      "{\"name\":\"controller.batch\",\"cat\":\"bate\",\"ph\":\"X\","
      "\"ts\":20,\"dur\":7,\"pid\":1,\"tid\":0,"
      "\"args\":{\"trace\":3,\"span\":4,\"parent\":2}}"
      "]}";
  EXPECT_EQ(json, expected);
}

TEST(ObsTrace, DisabledSpansHaveNoIdentity) {
  ASSERT_TRUE(enabled()) << "tests assume BATE_OBS_OFF is not set";
  const std::uint64_t before = Tracer::global().thread_ring().total();
  set_enabled(false);
  {
    Span s("obs_test.disabled");
    EXPECT_FALSE(s.context().valid());
    EXPECT_FALSE(current_context().valid());
  }
  set_enabled(true);
  EXPECT_EQ(Tracer::global().thread_ring().total(), before);
}

TEST(ObsEnabled, DisableMakesMetricsNoOps) {
  ASSERT_TRUE(enabled()) << "tests assume BATE_OBS_OFF is not set";
  Counter c;
  Histogram h;
  Gauge g;
  set_enabled(false);
  c.inc();
  h.record(7);
  g.set(1.0);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  c.inc();
  EXPECT_EQ(c.value(), 1);
}

}  // namespace
}  // namespace bate::obs
