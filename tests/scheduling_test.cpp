// Tests for BATE traffic scheduling (Sec 3.3): the Fig 2 motivating example
// as an acceptance test, capacity/feasibility behaviour, pruning
// monotonicity, hard-repair, and property checks over random workloads.
#include <gtest/gtest.h>

#include "core/scheduling.h"
#include "topology/catalog.h"
#include "topology/generator.h"
#include "workload/demand_gen.h"

namespace bate {
namespace {

Demand make_demand(DemandId id, int pair, double mbps, double beta) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = beta;
  d.charge = mbps;
  return d;
}

struct Toy4Fixture {
  Topology topo = toy4();
  TunnelCatalog catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{0, 3}}, 2);
  // Tunnel order: KSP returns both 2-hop paths; identify which is which.
  int via_dc2 = -1;  // e1,e2 path (availability ~0.96)
  int via_dc3 = -1;  // e3,e4 path (availability ~0.999)

  Toy4Fixture() {
    const auto& tunnels = catalog.tunnels(0);
    for (std::size_t t = 0; t < tunnels.size(); ++t) {
      if (tunnels[t].uses(topo.find_link(0, 1))) via_dc2 = static_cast<int>(t);
      if (tunnels[t].uses(topo.find_link(0, 2))) via_dc3 = static_cast<int>(t);
    }
  }
};

TEST(Scheduling, Fig2MotivatingExample) {
  Toy4Fixture fx;
  ASSERT_GE(fx.via_dc2, 0);
  ASSERT_GE(fx.via_dc3, 0);

  TrafficScheduler scheduler(fx.topo, fx.catalog, SchedulerConfig{});
  // user1: 6 Gbps at 99 %; user2: 12 Gbps at 90 %.
  const std::vector<Demand> demands = {make_demand(0, 0, 6000.0, 0.99),
                                       make_demand(1, 0, 12000.0, 0.90)};
  const ScheduleResult r = scheduler.schedule(demands);
  ASSERT_TRUE(r.feasible);

  // Fig 2(d): user1 entirely on the reliable path via DC3; user2 10G via
  // DC2 + 2G via DC3. Availability targets must hold in the HARD sense.
  const double a1 = scheduler.achieved_availability(demands[0], r.alloc[0]);
  const double a2 = scheduler.achieved_availability(demands[1], r.alloc[1]);
  EXPECT_GE(a1 + 1e-9, 0.99) << "user1 availability " << a1;
  EXPECT_GE(a2 + 1e-9, 0.90) << "user2 availability " << a2;

  // user1 gets its 6G on the DC3 path (the only way to reach 99 %).
  EXPECT_NEAR(r.alloc[0][0][static_cast<std::size_t>(fx.via_dc3)], 6000.0,
              1.0);
  EXPECT_NEAR(r.alloc[0][0][static_cast<std::size_t>(fx.via_dc2)], 0.0, 1.0);
  // user2 must span both paths for its 12G (the paper's Fig 2d shows
  // 10G + 2G; any split summing to 12G with both paths in use is an
  // equivalent optimum of the LP).
  const double u2_dc2 = r.alloc[1][0][static_cast<std::size_t>(fx.via_dc2)];
  const double u2_dc3 = r.alloc[1][0][static_cast<std::size_t>(fx.via_dc3)];
  EXPECT_NEAR(u2_dc2 + u2_dc3, 12000.0, 1.0);
  EXPECT_GE(u2_dc2, 2000.0 - 1.0);  // DC3 path can spare at most 4G
  EXPECT_LE(u2_dc3, 4000.0 + 1.0);
  // Total allocation matches the paper's 18G (no overprovisioning).
  EXPECT_NEAR(r.total_allocated_mbps, 18000.0, 2.0);
}

TEST(Scheduling, InfeasibleWhenCapacityExceeded) {
  Toy4Fixture fx;
  TrafficScheduler scheduler(fx.topo, fx.catalog, SchedulerConfig{});
  const std::vector<Demand> demands = {make_demand(0, 0, 25000.0, 0.5)};
  const ScheduleResult r = scheduler.schedule(demands);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
}

TEST(Scheduling, InfeasibleWhenAvailabilityUnreachable) {
  Toy4Fixture fx;
  TrafficScheduler scheduler(fx.topo, fx.catalog, SchedulerConfig{});
  // 99.9999% target: even both paths together only reach ~0.99994.
  const std::vector<Demand> demands = {make_demand(0, 0, 100.0, 0.999999)};
  const ScheduleResult r = scheduler.schedule(demands);
  EXPECT_FALSE(r.feasible);
}

TEST(Scheduling, BestEffortDemandGetsBandwidthOnly) {
  Toy4Fixture fx;
  TrafficScheduler scheduler(fx.topo, fx.catalog, SchedulerConfig{});
  const std::vector<Demand> demands = {make_demand(0, 0, 5000.0, 0.0)};
  const ScheduleResult r = scheduler.schedule(demands);
  ASSERT_TRUE(r.feasible);
  double total = 0.0;
  for (double f : r.alloc[0][0]) total += f;
  EXPECT_GE(total, 5000.0 - 1.0);
}

TEST(Scheduling, RespectsCapacityOverride) {
  Toy4Fixture fx;
  TrafficScheduler scheduler(fx.topo, fx.catalog, SchedulerConfig{});
  std::vector<double> residual(static_cast<std::size_t>(fx.topo.link_count()),
                               1000.0);
  const std::vector<Demand> demands = {make_demand(0, 0, 1500.0, 0.5)};
  const ScheduleResult r = scheduler.schedule(demands, residual);
  ASSERT_TRUE(r.feasible);  // 1500 fits across two 1000-capacity paths
  const auto usage =
      link_usage(fx.topo, fx.catalog, demands, r.alloc);
  for (LinkId e = 0; e < fx.topo.link_count(); ++e) {
    EXPECT_LE(usage[static_cast<std::size_t>(e)], 1000.0 + 1e-6);
  }
}

TEST(Scheduling, HardRepairClosesRelaxationGap) {
  Toy4Fixture fx;
  // Without the reliability tie-break and repair, the LP may split user1
  // across both paths and violate the hard guarantee.
  SchedulerConfig loose;
  loose.reliability_epsilon = 0.0;
  loose.hard_repair = false;
  SchedulerConfig strict;  // defaults: tie-break + repair on

  const std::vector<Demand> demands = {make_demand(0, 0, 6000.0, 0.99)};
  TrafficScheduler strict_sched(fx.topo, fx.catalog, strict);
  const ScheduleResult r = strict_sched.schedule(demands);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(strict_sched.achieved_availability(demands[0], r.alloc[0]) + 1e-9,
            0.99);
}

TEST(Scheduling, PrunedAllocatesNoLessThanExact) {
  // Pruning treats the residual as unqualified, so the pruned LP must
  // allocate at least as much bandwidth as the exact one (Fig 16's loss).
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build(
      topo, std::vector<SdPair>{{0, 2}, {0, 3}, {0, 4}}, 4);
  std::vector<Demand> demands = {make_demand(0, 0, 400.0, 0.995),
                                 make_demand(1, 1, 300.0, 0.999),
                                 make_demand(2, 2, 500.0, 0.95)};

  SchedulerConfig exact_cfg;
  exact_cfg.exact = true;
  SchedulerConfig pruned_cfg;
  pruned_cfg.max_failures = 1;

  TrafficScheduler exact_s(topo, catalog, exact_cfg);
  TrafficScheduler pruned_s(topo, catalog, pruned_cfg);
  const auto exact_r = exact_s.schedule(demands);
  const auto pruned_r = pruned_s.schedule(demands);
  ASSERT_TRUE(exact_r.feasible);
  ASSERT_TRUE(pruned_r.feasible);
  EXPECT_GE(pruned_r.total_allocated_mbps + 1e-6,
            exact_r.total_allocated_mbps);
}

TEST(Scheduling, MultiPairDemand) {
  const Topology topo = testbed6();
  const auto catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{0, 2}, {0, 4}}, 3);
  Demand d;
  d.id = 0;
  d.pairs = {{0, 300.0}, {1, 200.0}};
  d.availability_target = 0.99;
  TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});
  const std::vector<Demand> demands = {d};
  const ScheduleResult r = scheduler.schedule(demands);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.alloc[0].size(), 2u);
  double p0 = 0.0;
  double p1 = 0.0;
  for (double f : r.alloc[0][0]) p0 += f;
  for (double f : r.alloc[0][1]) p1 += f;
  EXPECT_GE(p0, 300.0 - 1e-3);
  EXPECT_GE(p1, 200.0 - 1e-3);
  EXPECT_GE(scheduler.achieved_availability(d, r.alloc[0]) + 1e-9, 0.99);
}

TEST(Scheduling, ThrowsOnUnknownPair) {
  Toy4Fixture fx;
  TrafficScheduler scheduler(fx.topo, fx.catalog, SchedulerConfig{});
  const std::vector<Demand> demands = {make_demand(0, 7, 100.0, 0.9)};
  EXPECT_THROW(scheduler.schedule(demands), std::out_of_range);
}

// Property sweep: on random workloads the schedule must satisfy capacity
// and deliver full bandwidth for every demand; hard availability must meet
// the target whenever the LP+repair report feasibility and repair succeeds.
class SchedulingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulingProperty, CapacityAndBandwidthInvariants) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);

  WorkloadConfig wcfg;
  wcfg.arrival_rate_per_min = 1.0;
  wcfg.horizon_min = 10.0;
  wcfg.mean_duration_min = 20.0;
  wcfg.bw_min_mbps = 10.0;
  wcfg.bw_max_mbps = 60.0;
  wcfg.seed = 3000 + static_cast<std::uint64_t>(GetParam());
  auto demands = generate_demands(catalog, wcfg);
  if (demands.size() > 10) demands.resize(10);
  if (demands.empty()) GTEST_SKIP();

  TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});
  const ScheduleResult r = scheduler.schedule(demands);
  if (!r.feasible) GTEST_SKIP();  // availability targets can be unreachable

  const auto usage = link_usage(topo, catalog, demands, r.alloc);
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    EXPECT_LE(usage[static_cast<std::size_t>(e)],
              topo.link(e).capacity + 1e-4);
  }
  for (std::size_t i = 0; i < demands.size(); ++i) {
    for (std::size_t p = 0; p < demands[i].pairs.size(); ++p) {
      double total = 0.0;
      for (double f : r.alloc[i][p]) total += f;
      EXPECT_GE(total + 1e-4, demands[i].pairs[p].mbps)
          << "demand " << i << " pair " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace bate
