// Tests for failure recovery (Sec 3.4, Appendix D): the Fig 4 backup
// example, optimal MILP vs greedy (2-approximation property, exact on
// knapsack-like single-bottleneck instances), and the backup planner.
#include <gtest/gtest.h>

#include "core/pricing.h"
#include "core/recovery.h"
#include "core/scheduling.h"
#include "topology/catalog.h"
#include "util/rng.h"
#include "workload/demand_gen.h"

namespace bate {
namespace {

Demand make_demand(DemandId id, int pair, double mbps, double charge,
                   double refund) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = 0.99;
  d.charge = charge;
  d.refund_fraction = refund;
  return d;
}

TEST(Pricing, RefundModel) {
  Demand d;
  d.charge = 100.0;
  d.refund_fraction = 0.25;
  EXPECT_DOUBLE_EQ(demand_profit(d, true), 100.0);
  EXPECT_DOUBLE_EQ(demand_profit(d, false), 75.0);
}

TEST(Recovery, Fig4BackupAllocation) {
  // Fig 4: square, unit capacities; one demand DC1->DC2 (1 unit), one
  // demand DC1->DC4 (1 unit). When link DC2->DC4 fails... the example in
  // the paper fails DC2->DC4 and reroutes DC1->DC4 over DC3. Here both
  // demands must keep full profit after the failure.
  const Topology topo = square4();
  const auto catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{0, 1}, {0, 3}}, 3);
  const std::vector<Demand> demands = {make_demand(0, 0, 1.0, 1.0, 0.1),
                                       make_demand(1, 1, 1.0, 1.0, 0.1)};
  const LinkId failed[] = {topo.find_link(1, 3)};  // DC2->DC4
  const RecoveryResult greedy =
      recover_greedy(topo, catalog, demands, failed);
  ASSERT_TRUE(greedy.solved);
  EXPECT_EQ(greedy.full_profit[0], 1);
  EXPECT_EQ(greedy.full_profit[1], 1);
  EXPECT_DOUBLE_EQ(greedy.profit, 2.0);
  // The rerouted DC1->DC4 demand must not traverse the failed link.
  const auto& tunnels = catalog.tunnels(1);
  for (std::size_t t = 0; t < tunnels.size(); ++t) {
    if (greedy.alloc[1][0][t] > 0.0) {
      EXPECT_FALSE(tunnels[t].uses(failed[0]));
    }
  }
}

TEST(Recovery, OptimalMatchesGreedyOnEasyCase) {
  const Topology topo = square4();
  const auto catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{0, 1}, {0, 3}}, 3);
  const std::vector<Demand> demands = {make_demand(0, 0, 1.0, 1.0, 0.5),
                                       make_demand(1, 1, 1.0, 1.0, 0.5)};
  const LinkId failed[] = {topo.find_link(1, 3)};
  const auto opt = recover_optimal(topo, catalog, demands, failed);
  const auto greedy = recover_greedy(topo, catalog, demands, failed);
  ASSERT_TRUE(opt.solved);
  EXPECT_NEAR(opt.profit, greedy.profit, 1e-6);
}

TEST(Recovery, OptimalPrefersHighRefundDemands) {
  // One unit of bottleneck capacity, two demands; only one can be made
  // whole. The optimal recovery must protect the one whose refund is
  // larger (mu * g dominates the objective).
  Topology topo("line");
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  topo.add_link(a, b, 1.0, 0.001);
  const auto catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{a, b}}, 1);
  std::vector<Demand> demands = {make_demand(0, 0, 1.0, 10.0, 0.1),
                                 make_demand(1, 0, 1.0, 10.0, 0.9)};
  const RecoveryResult opt = recover_optimal(topo, catalog, demands, {});
  ASSERT_TRUE(opt.solved);
  EXPECT_EQ(opt.full_profit[1], 1);  // the mu=0.9 demand keeps full profit
  EXPECT_EQ(opt.full_profit[0], 0);
  EXPECT_NEAR(opt.profit, 10.0 + 9.0, 1e-6);
}

TEST(Recovery, GreedyIsTwoApproxOnKnapsackInstances) {
  // Single bottleneck link (the regime of the Lemma-2 proof) with mu = 1:
  // profit reduces to the all-or-nothing knapsack value.
  Topology topo("line");
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  topo.add_link(a, b, 10.0, 0.001);
  const auto catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{a, b}}, 1);

  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Demand> demands;
    const int n = 3 + rng.uniform_int(0, 4);
    for (int i = 0; i < n; ++i) {
      demands.push_back(make_demand(i, 0, rng.uniform(1.0, 6.0),
                                    rng.uniform(1.0, 10.0), 1.0));
    }
    const auto opt = recover_optimal(topo, catalog, demands, {});
    const auto greedy = recover_greedy(topo, catalog, demands, {});
    ASSERT_TRUE(opt.solved);
    EXPECT_GE(greedy.profit * 2.0 + 1e-6, opt.profit)
        << "trial " << trial << ": greedy " << greedy.profit << " opt "
        << opt.profit;
  }
}

class RecoveryRatio : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryRatio, GreedyStaysWithinTwoOfOptimalOnTestbed) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);

  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 1.5;
  cfg.horizon_min = 6.0;
  cfg.mean_duration_min = 60.0;
  cfg.bw_min_mbps = 50.0;
  cfg.bw_max_mbps = 300.0;
  cfg.services = testbed_services();
  cfg.seed = 5000 + static_cast<std::uint64_t>(GetParam());
  auto demands = generate_demands(catalog, cfg);
  if (demands.size() > 7) demands.resize(7);
  if (demands.empty()) GTEST_SKIP();

  const LinkId failed[] = {
      testbed_link(topo, GetParam() % 2 == 0 ? "L4" : "L1")};
  BranchBoundOptions bnb;
  bnb.node_limit = 20000;
  const auto opt = recover_optimal(topo, catalog, demands, failed, bnb);
  const auto greedy = recover_greedy(topo, catalog, demands, failed);
  if (!opt.solved) GTEST_SKIP();
  EXPECT_GE(greedy.profit * 2.0 + 1e-6, opt.profit) << "seed " << GetParam();
  EXPECT_LE(greedy.profit, opt.profit + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryRatio, ::testing::Range(0, 12));

TEST(Recovery, AllocationsAvoidFailedLinksAndCapacity) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 2.0;
  cfg.horizon_min = 5.0;
  cfg.mean_duration_min = 60.0;
  cfg.seed = 8;
  auto demands = generate_demands(catalog, cfg);
  if (demands.size() > 10) demands.resize(10);
  const LinkId failed[] = {testbed_link(topo, "L4"),
                           testbed_link(topo, "L6")};
  const auto rec = recover_greedy(topo, catalog, demands, failed);

  const auto usage = link_usage(topo, catalog, demands, rec.alloc);
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    EXPECT_LE(usage[static_cast<std::size_t>(e)],
              topo.link(e).capacity + 1e-6);
  }
  EXPECT_NEAR(usage[static_cast<std::size_t>(failed[0])], 0.0, 1e-9);
  EXPECT_NEAR(usage[static_cast<std::size_t>(failed[1])], 0.0, 1e-9);
}

TEST(BackupPlanner, PrecomputesPlansForLoadedLinks) {
  const Topology topo = square4();
  const auto catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{0, 1}, {0, 3}}, 3);
  const std::vector<Demand> demands = {make_demand(0, 0, 1.0, 1.0, 0.1),
                                       make_demand(1, 1, 1.0, 1.0, 0.1)};
  TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});
  const auto r = scheduler.schedule(demands);
  ASSERT_TRUE(r.feasible);

  BackupPlanner planner(topo, catalog);
  planner.precompute(demands, r.alloc);
  EXPECT_GT(planner.plan_count(), 0u);
  // Every loaded link must have a plan; unloaded links must not.
  const auto usage = link_usage(topo, catalog, demands, r.alloc);
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    if (usage[static_cast<std::size_t>(e)] > 1e-9) {
      EXPECT_NE(planner.plan(e), nullptr) << "link " << e;
    } else {
      EXPECT_EQ(planner.plan(e), nullptr) << "link " << e;
    }
  }
}

}  // namespace
}  // namespace bate
