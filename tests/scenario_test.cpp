// Tests for the failure-scenario substrate: enumeration probabilities,
// pruning residuals, Poisson-binomial DP, pattern projection (exact and
// pruned) cross-checked against brute-force scenario enumeration, and the
// Monte-Carlo samplers.
#include <gtest/gtest.h>

#include <cmath>

#include "routing/tunnels.h"
#include "scenario/pattern.h"
#include "scenario/sampler.h"
#include "scenario/scenario.h"
#include "topology/catalog.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace bate {
namespace {

TEST(ScenarioCount, MatchesBinomialSums) {
  EXPECT_DOUBLE_EQ(scenario_count(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(scenario_count(4, 1), 5.0);
  EXPECT_DOUBLE_EQ(scenario_count(4, 2), 11.0);
  EXPECT_DOUBLE_EQ(scenario_count(4, 4), 16.0);
  EXPECT_DOUBLE_EQ(scenario_count(38, 1), 39.0);
  EXPECT_DOUBLE_EQ(scenario_count(38, 2), 39.0 + 703.0);
}

TEST(ScenarioSet, FullEnumerationSumsToOne) {
  const Topology t = toy4();
  const auto set = ScenarioSet::enumerate(t, t.link_count());
  double total = 0.0;
  for (const Scenario& z : set.scenarios()) total += z.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(set.residual_prob(), 0.0, 1e-12);
  EXPECT_EQ(set.scenarios().size(), 16u);
}

TEST(ScenarioSet, PaperExampleProbability) {
  // Sec 3.1: z = {1,1,0,1} on the toy topology has p ~= 0.000959998.
  const Topology t = toy4();
  const auto set = ScenarioSet::enumerate(t, 1);
  const LinkId e3 = 2;  // DC1->DC3, failure prob 0.1%
  double found = -1.0;
  for (const Scenario& z : set.scenarios()) {
    if (z.failed == std::vector<LinkId>{e3}) found = z.prob;
  }
  ASSERT_GE(found, 0.0);
  EXPECT_NEAR(found, 0.96 * 0.999999 * 0.001 * 0.999999, 1e-9);
}

TEST(ScenarioSet, PrunedResidualMatchesComplement) {
  const Topology t = testbed6();
  const auto pruned = ScenarioSet::enumerate(t, 1);
  double total = 0.0;
  for (const Scenario& z : pruned.scenarios()) total += z.prob;
  EXPECT_NEAR(pruned.residual_prob(), 1.0 - total, 1e-12);
  // Fig 3 count: 1 + |E| scenarios at y=1.
  EXPECT_EQ(pruned.scenarios().size(),
            1u + static_cast<std::size_t>(t.link_count()));
}

TEST(ScenarioSet, ResidualShrinksWithY) {
  const Topology t = b4();
  double prev = 1.0;
  for (int y = 0; y <= 3; ++y) {
    const auto set = ScenarioSet::enumerate(t, y);
    EXPECT_LT(set.residual_prob(), prev);
    prev = set.residual_prob();
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(ScenarioSet, EnumerationGuard) {
  const Topology t = att();
  EXPECT_THROW(ScenarioSet::enumerate(t, 4, 1000), std::invalid_argument);
}

TEST(Scenario, TunnelUpSemantics) {
  const Topology t = toy4();
  Tunnel tn{0, 3, {0, 1}};
  Scenario all_up{{}, 1.0};
  EXPECT_TRUE(all_up.tunnel_up(tn));
  Scenario z{{1}, 0.1};
  EXPECT_FALSE(z.tunnel_up(tn));
  EXPECT_TRUE(z.link_up(0));
  EXPECT_FALSE(z.link_up(1));
}

TEST(FailureCountDistribution, MatchesBruteForce) {
  const Topology t = toy4();
  const auto dist = failure_count_distribution(t, 4);
  // Brute force over 2^4 states.
  std::vector<double> expected(5, 0.0);
  for (unsigned mask = 0; mask < 16; ++mask) {
    double p = 1.0;
    int count = 0;
    for (int e = 0; e < 4; ++e) {
      const double x = t.link(e).failure_prob;
      if ((mask >> e) & 1u) {
        p *= x;
        ++count;
      } else {
        p *= 1.0 - x;
      }
    }
    expected[static_cast<std::size_t>(count)] += p;
  }
  for (int k = 0; k <= 4; ++k) {
    EXPECT_NEAR(dist[static_cast<std::size_t>(k)],
                expected[static_cast<std::size_t>(k)], 1e-12);
  }
}

TEST(FailureCountDistribution, SkipsMarkedLinks) {
  const Topology t = toy4();
  std::vector<char> skip(4, 0);
  skip[0] = 1;  // exclude the 4% link
  const auto dist = failure_count_distribution(t, 1, skip);
  // P(0 failures among remaining three links).
  EXPECT_NEAR(dist[0], 0.999999 * 0.999 * 0.999999, 1e-12);
}

// --- Pattern projection ---------------------------------------------------

std::vector<Tunnel> toy_tunnels(const Topology& t) {
  return {Tunnel{0, 3, {t.find_link(0, 1), t.find_link(1, 3)}},
          Tunnel{0, 3, {t.find_link(0, 2), t.find_link(2, 3)}}};
}

TEST(Pattern, ExactMatchesHandComputation) {
  const Topology t = toy4();
  const auto tunnels = toy_tunnels(t);
  const auto dist = exact_patterns(t, tunnels);
  ASSERT_EQ(dist.prob.size(), 4u);
  const double pa = 0.96 * 0.999999;   // tunnel A availability
  const double pb = 0.999 * 0.999999;  // tunnel B availability
  EXPECT_NEAR(dist.prob[0b11], pa * pb, 1e-9);
  EXPECT_NEAR(dist.prob[0b01], pa * (1 - pb), 1e-9);
  EXPECT_NEAR(dist.prob[0b10], (1 - pa) * pb, 1e-9);
  EXPECT_NEAR(dist.prob[0b00], (1 - pa) * (1 - pb), 1e-9);
  EXPECT_NEAR(dist.residual(), 0.0, 1e-12);
}

TEST(Pattern, ExactHandlesSharedLinks) {
  // Two tunnels sharing a link are NOT independent; the projection must
  // capture the correlation. Build a diamond where both tunnels use a
  // common first hop.
  Topology t("shared");
  const NodeId s = t.add_node();
  const NodeId m = t.add_node();
  const NodeId a = t.add_node();
  const NodeId d = t.add_node();
  const LinkId sm = t.add_link(s, m, 1.0, 0.1);
  const LinkId ma = t.add_link(m, a, 1.0, 0.2);
  const LinkId ad = t.add_link(a, d, 1.0, 0.0001);
  const LinkId md = t.add_link(m, d, 1.0, 0.3);
  const std::vector<Tunnel> tunnels = {Tunnel{s, d, {sm, md}},
                                       Tunnel{s, d, {sm, ma, ad}}};
  const auto dist = exact_patterns(t, tunnels);
  // Both tunnels down whenever sm fails: P(00) >= 0.1.
  EXPECT_GE(dist.prob[0b00], 0.1 - 1e-9);
  // Probabilities sum to 1.
  double total = 0.0;
  for (double p : dist.prob) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

/// Brute-force pattern distribution over the pruned scenario set.
PatternDistribution brute_pruned(const Topology& t,
                                 std::span<const Tunnel> tunnels, int y) {
  PatternDistribution dist;
  dist.tunnel_count = static_cast<int>(tunnels.size());
  dist.prob.assign(1ull << tunnels.size(), 0.0);
  for_each_scenario(t, y, [&](std::span<const LinkId> failed, double prob) {
    Scenario z{{failed.begin(), failed.end()}, prob};
    PatternMask s = 0;
    for (std::size_t i = 0; i < tunnels.size(); ++i) {
      if (z.tunnel_up(tunnels[i])) s |= 1u << i;
    }
    dist.prob[s] += prob;
  });
  return dist;
}

class PrunedPatternCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(PrunedPatternCrossCheck, MatchesScenarioEnumeration) {
  GeneratorConfig cfg;
  cfg.nodes = 6;
  cfg.directed_links = 16;
  cfg.seed = 900 + static_cast<std::uint64_t>(GetParam() / 3);
  const Topology t = generate_topology(cfg, "rnd");
  const std::vector<SdPair> pairs = {{0, 3}};
  const auto catalog = TunnelCatalog::build(t, pairs, 3);
  const auto& tunnels = catalog.tunnels(0);

  const int y = 1 + GetParam() % 3;
  const auto fast = pruned_patterns(t, tunnels, y);
  const auto slow = brute_pruned(t, tunnels, y);
  ASSERT_EQ(fast.prob.size(), slow.prob.size());
  for (std::size_t s = 0; s < fast.prob.size(); ++s) {
    EXPECT_NEAR(fast.prob[s], slow.prob[s], 1e-10) << "pattern " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedPatternCrossCheck,
                         ::testing::Range(0, 18));

TEST(Pattern, PrunedConvergesToExact) {
  const Topology t = testbed6();
  const auto catalog =
      TunnelCatalog::build(t, std::vector<SdPair>{{0, 4}}, 4);
  const auto exact = exact_patterns(t, catalog.tunnels(0));
  const auto pruned = pruned_patterns(t, catalog.tunnels(0), 6);
  for (std::size_t s = 0; s < exact.prob.size(); ++s) {
    EXPECT_NEAR(exact.prob[s], pruned.prob[s], 1e-6);
  }
}

TEST(Pattern, AvailabilityOfAllocation) {
  const Topology t = toy4();
  const auto tunnels = toy_tunnels(t);
  const auto dist = exact_patterns(t, tunnels);
  const double pa = 0.96 * 0.999999;
  const double pb = 0.999 * 0.999999;
  // All bandwidth on tunnel B: available whenever B is up.
  EXPECT_NEAR(dist.availability(std::vector<double>{0.0, 6000.0}, 6000.0), pb,
              1e-9);
  // Split across both: needs both up.
  EXPECT_NEAR(dist.availability(std::vector<double>{3000.0, 3000.0}, 6000.0),
              pa * pb, 1e-9);
  // Over-provisioned split: either tunnel alone suffices.
  EXPECT_NEAR(
      dist.availability(std::vector<double>{6000.0, 6000.0}, 6000.0),
      pa + pb - pa * pb, 1e-9);
}

TEST(Pattern, ReferenceFallsBackForLargeUnions) {
  const Topology t = att();
  const auto catalog =
      TunnelCatalog::build(t, std::vector<SdPair>{{0, 12}}, 4);
  // Must not throw regardless of union size.
  const auto dist = reference_patterns_for(t, catalog.tunnels(0));
  EXPECT_EQ(dist.tunnel_count,
            static_cast<int>(catalog.tunnels(0).size()));
  double total = 0.0;
  for (double p : dist.prob) total += p;
  EXPECT_GT(total, 0.999);  // quasi-exact: tiny residual allowed
  EXPECT_LE(total, 1.0 + 1e-9);
}

// --- Samplers --------------------------------------------------------------

TEST(Sampler, TimelineRepairsAfterConfiguredTime) {
  Topology t("one");
  t.add_node();
  t.add_node();
  t.add_link(0, 1, 1.0, 0.5);  // fails often
  Rng rng(3);
  const FailureTimeline tl(t, 200, 3.0, rng);
  // After any failure second, the link stays down exactly 3 more seconds.
  for (int s = 0; s + 4 < 200; ++s) {
    const bool down_now = !tl.link_up(s, 0);
    const bool down_prev = s > 0 && !tl.link_up(s - 1, 0);
    if (down_now && !down_prev) {
      EXPECT_FALSE(tl.link_up(s + 1, 0));
      EXPECT_FALSE(tl.link_up(s + 2, 0));
      EXPECT_FALSE(tl.link_up(s + 3, 0));
    }
  }
}

TEST(Sampler, FailureCountsMatchProbabilities) {
  const Topology t = testbed6();
  Rng rng(17);
  const FailureTimeline tl(t, 20000, 0.0, rng);
  const auto& counts = tl.failure_counts();
  // L4 (1 % per second) must fail at least an order of magnitude more often
  // than L1 (0.001 %).
  const int l4 = counts[static_cast<std::size_t>(testbed_link(t, "L4"))];
  const int l1 = counts[static_cast<std::size_t>(testbed_link(t, "L1"))];
  EXPECT_GT(l4, 100);
  EXPECT_LT(l1, 10);
}

TEST(Sampler, IidScenarioDraw) {
  const Topology t = testbed6();
  Rng rng(21);
  int l4_downs = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto failed = sample_down_links(t, rng);
    for (LinkId e : failed) {
      if (e == testbed_link(t, "L4")) ++l4_downs;
    }
  }
  EXPECT_NEAR(static_cast<double>(l4_downs) / 5000.0, 0.01, 0.005);
}

TEST(Sampler, RejectsBadArguments) {
  const Topology t = toy4();
  Rng rng(1);
  EXPECT_THROW(FailureTimeline(t, 0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(FailureTimeline(t, 10, -1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace bate
