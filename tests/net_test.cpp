// Tests for the networking substrate: codec round-trips, framing (including
// split/partial/oversized frames), sockets over loopback, and the event
// loop.
#include <gtest/gtest.h>

#include <thread>

#include "net/codec.h"
#include "net/event_loop.h"
#include "net/framing.h"
#include "net/socket.h"

namespace bate {
namespace {

TEST(Codec, RoundTripsScalars) {
  BufferWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f64(3.14159);
  w.str("hello");
  w.f64_vec({1.5, -2.5, 0.0});

  BufferReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, ThrowsOnTruncation) {
  BufferWriter w;
  w.u32(7);
  BufferReader r(w.bytes());
  r.u32();
  EXPECT_THROW(r.u8(), std::out_of_range);
}

TEST(Codec, ThrowsOnTruncatedString) {
  BufferWriter w;
  w.u32(100);  // announces a 100-byte string with no payload
  BufferReader r(w.bytes());
  EXPECT_THROW(r.str(), std::out_of_range);
}

TEST(Framing, EncodeThenDecode) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto framed = encode_frame(payload);
  ASSERT_EQ(framed.size(), 9u);
  FrameReader reader;
  reader.feed(framed);
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Framing, HandlesByteAtATimeDelivery) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto framed = encode_frame(payload);
  FrameReader reader;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    EXPECT_FALSE(reader.next().has_value());
    reader.feed({&framed[i], 1});
  }
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST(Framing, HandlesMultipleFramesInOneFeed) {
  auto a = encode_frame(std::vector<std::uint8_t>{1});
  const auto b = encode_frame(std::vector<std::uint8_t>{2, 2});
  a.insert(a.end(), b.begin(), b.end());
  FrameReader reader;
  reader.feed(a);
  EXPECT_EQ(reader.next()->size(), 1u);
  EXPECT_EQ(reader.next()->size(), 2u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Framing, EmptyPayloadIsValid) {
  const auto framed = encode_frame({});
  FrameReader reader;
  reader.feed(framed);
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Framing, RejectsOversizedFrames) {
  FrameReader reader;
  // Announce a 1 GiB frame.
  const std::uint8_t evil[] = {0x00, 0x00, 0x00, 0x40};
  EXPECT_THROW(reader.feed(evil), std::length_error);
}

TEST(Socket, LoopbackEcho) {
  TcpListener listener(0);
  std::thread server([&] {
    auto conn = listener.accept();
    ASSERT_TRUE(conn.has_value());
    std::uint8_t buf[16];
    const long n = conn->read_some(buf);
    ASSERT_GT(n, 0);
    conn->write_all({buf, static_cast<std::size_t>(n)});
  });

  Socket client = connect_tcp(listener.port());
  const std::uint8_t msg[] = {'p', 'i', 'n', 'g'};
  client.write_all(msg);
  std::uint8_t buf[16];
  const long n = client.read_some(buf);
  server.join();
  ASSERT_EQ(n, 4);
  EXPECT_EQ(std::memcmp(buf, msg, 4), 0);
}

TEST(Socket, MoveTransfersOwnership) {
  TcpListener listener(0);
  Socket a = connect_tcp(listener.port());
  const int fd = a.fd();
  Socket b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.fd(), fd);
}

TEST(Socket, NonblockingReadReturnsWouldBlock) {
  TcpListener listener(0);
  Socket client = connect_tcp(listener.port());
  client.set_nonblocking(true);
  std::uint8_t buf[8];
  EXPECT_EQ(client.read_some(buf), -1);
}

TEST(EventLoop, DispatchesReadEvents) {
  TcpListener listener(0);
  listener.set_nonblocking(true);
  Socket client = connect_tcp(listener.port());

  EventLoop loop;
  int accepted = 0;
  loop.add_reader(listener.fd(), [&] {
    while (listener.accept()) ++accepted;
  });
  // The pending connection should wake the loop.
  for (int i = 0; i < 50 && accepted == 0; ++i) loop.run_once(20);
  EXPECT_EQ(accepted, 1);
  loop.remove(listener.fd());
}

TEST(EventLoop, RunStopsOnRequest) {
  EventLoop loop;
  int ticks = 0;
  loop.run(1, [&] {
    if (++ticks >= 3) loop.stop();
  });
  EXPECT_GE(ticks, 3);
}

}  // namespace
}  // namespace bate
