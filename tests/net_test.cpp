// Tests for the networking substrate: codec round-trips, framing (including
// split/partial/oversized frames), sockets over loopback, and the event
// loop.
#include <gtest/gtest.h>

#include <thread>

#include "net/codec.h"
#include "net/event_loop.h"
#include "net/framing.h"
#include "net/socket.h"

namespace bate {
namespace {

TEST(Codec, RoundTripsScalars) {
  BufferWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f64(3.14159);
  w.str("hello");
  w.f64_vec({1.5, -2.5, 0.0});

  BufferReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, ThrowsOnTruncation) {
  BufferWriter w;
  w.u32(7);
  BufferReader r(w.bytes());
  r.u32();
  EXPECT_THROW(r.u8(), std::out_of_range);
}

TEST(Codec, ThrowsOnTruncatedString) {
  BufferWriter w;
  w.u32(100);  // announces a 100-byte string with no payload
  BufferReader r(w.bytes());
  EXPECT_THROW(r.str(), std::out_of_range);
}

TEST(Framing, EncodeThenDecode) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto framed = encode_frame(payload);
  ASSERT_EQ(framed.size(), 9u);
  FrameReader reader;
  reader.feed(framed);
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Framing, HandlesByteAtATimeDelivery) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto framed = encode_frame(payload);
  FrameReader reader;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    EXPECT_FALSE(reader.next().has_value());
    reader.feed({&framed[i], 1});
  }
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST(Framing, HandlesMultipleFramesInOneFeed) {
  auto a = encode_frame(std::vector<std::uint8_t>{1});
  const auto b = encode_frame(std::vector<std::uint8_t>{2, 2});
  a.insert(a.end(), b.begin(), b.end());
  FrameReader reader;
  reader.feed(a);
  EXPECT_EQ(reader.next()->size(), 1u);
  EXPECT_EQ(reader.next()->size(), 2u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Framing, EmptyPayloadIsValid) {
  const auto framed = encode_frame({});
  FrameReader reader;
  reader.feed(framed);
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Framing, RejectsOversizedFrames) {
  FrameReader reader;
  // Announce a 1 GiB frame.
  const std::uint8_t evil[] = {0x00, 0x00, 0x00, 0x40};
  EXPECT_THROW(reader.feed(evil), std::length_error);
}

TEST(Framing, TraceContextRoundTrips) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const FrameContext ctx{0xAABBCCDD11223344ull, 0x42u};
  const auto framed = encode_frame(payload, ctx);
  // 4-byte length word + 16-byte context + payload.
  ASSERT_EQ(framed.size(), 4u + 16u + payload.size());
  // Bit 31 of the length word flags the context; the low bits still carry
  // the payload length only.
  const std::uint32_t word = static_cast<std::uint32_t>(framed[0]) |
                             (static_cast<std::uint32_t>(framed[1]) << 8) |
                             (static_cast<std::uint32_t>(framed[2]) << 16) |
                             (static_cast<std::uint32_t>(framed[3]) << 24);
  EXPECT_EQ(word & kFrameTraceFlag, kFrameTraceFlag);
  EXPECT_EQ(word & ~kFrameTraceFlag, payload.size());

  FrameReader reader;
  reader.feed(framed);
  const auto frame = reader.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
  EXPECT_TRUE(frame->context.valid());
  EXPECT_EQ(frame->context.trace_id, ctx.trace_id);
  EXPECT_EQ(frame->context.span_id, ctx.span_id);
}

TEST(Framing, PlainFrameDecodesToInvalidContext) {
  const auto framed = encode_frame(std::vector<std::uint8_t>{9});
  // No context: byte-identical to the pre-context format.
  ASSERT_EQ(framed.size(), 5u);
  FrameReader reader;
  reader.feed(framed);
  const auto frame = reader.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->context.valid());
  EXPECT_EQ(frame->context.trace_id, 0u);
}

TEST(Framing, ZeroContextIsNotEncoded) {
  // An invalid (zero trace_id) context must not set the flag — old readers
  // keep working against new writers that have nothing to say.
  const auto with_default = encode_frame(std::vector<std::uint8_t>{7});
  const auto with_zero_ctx =
      encode_frame(std::vector<std::uint8_t>{7}, FrameContext{});
  EXPECT_EQ(with_default, with_zero_ctx);
}

TEST(Framing, LegacyNextDiscardsTraceContext) {
  const std::vector<std::uint8_t> payload = {5, 6};
  FrameReader reader;
  reader.feed(encode_frame(payload, FrameContext{77, 88}));
  // next() (the context-unaware accessor) still yields the bare payload.
  const auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST(Framing, MixedBatchRoundTrips) {
  FrameBatch batch;
  batch.add(std::vector<std::uint8_t>{1});                          // plain
  batch.add(std::vector<std::uint8_t>{2, 2}, FrameContext{10, 20});  // traced
  batch.add(std::vector<std::uint8_t>{3, 3, 3});                    // plain
  EXPECT_EQ(batch.frame_count(), 3u);

  FrameReader reader;
  reader.feed(batch.bytes());
  const auto a = reader.next_frame();
  const auto b = reader.next_frame();
  const auto c = reader.next_frame();
  ASSERT_TRUE(a && b && c);
  EXPECT_FALSE(a->context.valid());
  EXPECT_EQ(a->payload.size(), 1u);
  EXPECT_TRUE(b->context.valid());
  EXPECT_EQ(b->context.trace_id, 10u);
  EXPECT_EQ(b->context.span_id, 20u);
  EXPECT_FALSE(c->context.valid());
  EXPECT_EQ(c->payload.size(), 3u);
  EXPECT_FALSE(reader.next_frame().has_value());
}

TEST(Framing, TracedFrameSurvivesByteAtATimeDelivery) {
  const std::vector<std::uint8_t> payload = {4, 5, 6, 7};
  const auto framed = encode_frame(payload, FrameContext{123, 456});
  FrameReader reader;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    EXPECT_FALSE(reader.next_frame().has_value());
    reader.feed({&framed[i], 1});
  }
  const auto frame = reader.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(frame->context.trace_id, 123u);
}

TEST(Framing, RejectsOversizedTracedFrames) {
  FrameReader reader;
  // The trace flag must not let an oversized length sneak past the cap:
  // 1 GiB with bit 31 set.
  const std::uint8_t evil[] = {0x00, 0x00, 0x00, 0xC0};
  EXPECT_THROW(reader.feed(evil), std::length_error);
}

TEST(Socket, LoopbackEcho) {
  TcpListener listener(0);
  std::thread server([&] {
    auto conn = listener.accept();
    ASSERT_TRUE(conn.has_value());
    std::uint8_t buf[16];
    const long n = conn->read_some(buf);
    ASSERT_GT(n, 0);
    conn->write_all({buf, static_cast<std::size_t>(n)});
  });

  Socket client = connect_tcp(listener.port());
  const std::uint8_t msg[] = {'p', 'i', 'n', 'g'};
  client.write_all(msg);
  std::uint8_t buf[16];
  const long n = client.read_some(buf);
  server.join();
  ASSERT_EQ(n, 4);
  EXPECT_EQ(std::memcmp(buf, msg, 4), 0);
}

TEST(Socket, MoveTransfersOwnership) {
  TcpListener listener(0);
  Socket a = connect_tcp(listener.port());
  const int fd = a.fd();
  Socket b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.fd(), fd);
}

TEST(Socket, NonblockingReadReturnsWouldBlock) {
  TcpListener listener(0);
  Socket client = connect_tcp(listener.port());
  client.set_nonblocking(true);
  std::uint8_t buf[8];
  EXPECT_EQ(client.read_some(buf), -1);
}

TEST(EventLoop, DispatchesReadEvents) {
  TcpListener listener(0);
  listener.set_nonblocking(true);
  Socket client = connect_tcp(listener.port());

  EventLoop loop;
  int accepted = 0;
  loop.add_reader(listener.fd(), [&] {
    while (listener.accept()) ++accepted;
  });
  // The pending connection should wake the loop.
  for (int i = 0; i < 50 && accepted == 0; ++i) loop.run_once(20);
  EXPECT_EQ(accepted, 1);
  loop.remove(listener.fd());
}

TEST(EventLoop, RunStopsOnRequest) {
  EventLoop loop;
  int ticks = 0;
  loop.run(1, [&] {
    if (++ticks >= 3) loop.stop();
  });
  EXPECT_GE(ticks, 3);
}

}  // namespace
}  // namespace bate
