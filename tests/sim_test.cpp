// Tests for the simulation layer: metric accounting, the testbed-style
// per-second engine (admission, rescaling, backup activation, loss), and
// the post-processing experiment harness.
#include <gtest/gtest.h>

#include "baselines/ffc.h"
#include "baselines/teavar.h"
#include "core/bate_scheme.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "topology/catalog.h"
#include "util/stats.h"

namespace bate {
namespace {

Demand make_demand(DemandId id, int pair, double mbps, double beta,
                   double arrival = 0.0, double duration = 100.0) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = beta;
  d.charge = mbps;
  d.refund_fraction = 0.2;
  d.arrival_minute = arrival;
  d.duration_minutes = duration;
  return d;
}

TEST(Stats, SummaryBasics) {
  Summary s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.quantile(0.5), 2.5, 1e-9);
  EXPECT_THROW(s.quantile(1.5), std::invalid_argument);
}

TEST(Stats, EmpiricalCdfEndsAtOne) {
  const auto cdf = empirical_cdf({5.0, 1.0, 3.0, 2.0, 4.0}, 3);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_LE(cdf.front().fraction, cdf.back().fraction);
}

TEST(Metrics, OutcomeAccounting) {
  DemandOutcome o;
  o.availability_target = 0.99;
  o.charge = 100.0;
  o.refund_fraction = 0.25;
  o.admitted = true;
  o.active_seconds = 100;
  o.satisfied_seconds = 100;
  EXPECT_TRUE(o.target_met());
  EXPECT_DOUBLE_EQ(o.profit(), 100.0);
  o.satisfied_seconds = 90;  // 90% < 99%
  EXPECT_FALSE(o.target_met());
  EXPECT_DOUBLE_EQ(o.profit(), 75.0);
}

TEST(Metrics, AggregateHelpers) {
  SimMetrics m;
  for (int i = 0; i < 4; ++i) {
    DemandOutcome o;
    o.offered = true;
    o.admitted = i < 3;
    o.availability_target = 0.9;
    o.charge = 10.0;
    o.refund_fraction = 0.5;
    o.active_seconds = 10;
    o.satisfied_seconds = (i == 0) ? 5 : 10;  // first admitted one violated
    m.outcomes.push_back(o);
  }
  EXPECT_EQ(m.offered_count(), 4);
  EXPECT_EQ(m.admitted_count(), 3);
  EXPECT_NEAR(m.rejection_ratio(), 0.25, 1e-12);
  EXPECT_NEAR(m.satisfaction_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.total_profit(), 5.0 + 10.0 + 10.0);
  EXPECT_DOUBLE_EQ(m.no_failure_profit(), 30.0);
}

struct EngineFixture {
  Topology topo = testbed6();
  TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  TrafficScheduler scheduler{topo, catalog, SchedulerConfig{}};
  BateScheme bate{scheduler};
};

TEST(Engine, NoFailuresMeansFullSatisfaction) {
  EngineFixture fx;
  // A failure-free timeline: zero out probabilities via a clone topology.
  Topology quiet("quiet");
  for (int i = 0; i < fx.topo.node_count(); ++i) quiet.add_node();
  for (const Link& l : fx.topo.links()) {
    quiet.add_link(l.src, l.dst, l.capacity, 0.0);
  }
  Rng rng(1);
  const FailureTimeline timeline(quiet, 10 * 60, 3.0, rng);

  const std::vector<Demand> demands = {make_demand(0, 0, 200.0, 0.99, 0.0, 8.0),
                                       make_demand(1, 4, 300.0, 0.95, 1.0, 6.0)};
  SimPolicy policy{"BATE", AdmissionStrategy::kBate, &fx.bate,
                   RescalePolicy::kBackup};
  TestbedSimConfig cfg;
  cfg.horizon_min = 10.0;
  const SimMetrics m =
      run_testbed_sim(fx.scheduler, policy, demands, timeline, cfg);

  EXPECT_EQ(m.admitted_count(), 2);
  for (const auto& o : m.outcomes) {
    EXPECT_GT(o.active_seconds, 0);
    EXPECT_EQ(o.satisfied_seconds, o.active_seconds) << "demand " << o.id;
  }
  EXPECT_NEAR(m.satisfaction_fraction(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.total_profit(), m.no_failure_profit());
}

TEST(Engine, AdmissionRejectsOverload) {
  EngineFixture fx;
  Rng rng(2);
  const FailureTimeline timeline(fx.topo, 5 * 60, 3.0, rng);
  std::vector<Demand> demands;
  for (int i = 0; i < 6; ++i) {
    demands.push_back(make_demand(i, 0, 900.0, 0.0, 0.0, 30.0));
  }
  SimPolicy policy{"BATE", AdmissionStrategy::kBate, &fx.bate,
                   RescalePolicy::kBackup};
  TestbedSimConfig cfg;
  cfg.horizon_min = 5.0;
  const SimMetrics m =
      run_testbed_sim(fx.scheduler, policy, demands, timeline, cfg);
  // DC1->DC2 pair can carry at most ~3 x 900 via disjoint-ish tunnels.
  EXPECT_LT(m.admitted_count(), 6);
  EXPECT_GT(m.admitted_count(), 0);
  EXPECT_GT(m.admission_delay_s.count(), 0u);
}

TEST(Engine, LossIsBoundedAndRecorded) {
  EngineFixture fx;
  Rng rng(3);
  const FailureTimeline timeline(fx.topo, 5 * 60, 3.0, rng);
  const std::vector<Demand> demands = {make_demand(0, 3, 500.0, 0.95, 0.0, 5.0)};
  TeavarScheme teavar(fx.topo, fx.catalog, 0.999);
  SimPolicy policy{"TEAVAR", std::nullopt, &teavar,
                   RescalePolicy::kProportional};
  TestbedSimConfig cfg;
  cfg.horizon_min = 5.0;
  const SimMetrics m =
      run_testbed_sim(fx.scheduler, policy, demands, timeline, cfg);
  EXPECT_FALSE(m.per_second_loss_ratio.empty());
  for (double loss : m.per_second_loss_ratio) {
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, 1.0);
  }
}

TEST(Engine, SharedTimelineIsFairAcrossPolicies) {
  EngineFixture fx;
  Rng rng(4);
  const FailureTimeline timeline(fx.topo, 3 * 60, 3.0, rng);
  const std::vector<Demand> demands = {make_demand(0, 0, 100.0, 0.9, 0.0, 3.0)};
  FfcScheme ffc(fx.topo, fx.catalog, 1);
  SimPolicy a{"BATE", AdmissionStrategy::kBate, &fx.bate,
              RescalePolicy::kBackup};
  SimPolicy b{"FFC", std::nullopt, &ffc, RescalePolicy::kProportional};
  TestbedSimConfig cfg;
  cfg.horizon_min = 3.0;
  const SimMetrics ma = run_testbed_sim(fx.scheduler, a, demands, timeline, cfg);
  const SimMetrics mb = run_testbed_sim(fx.scheduler, b, demands, timeline, cfg);
  // Identical failure processes: the recorded link failure counts match.
  EXPECT_EQ(ma.link_failure_counts, mb.link_failure_counts);
}

TEST(Experiment, EvaluatorMatchesSchedulerAvailability) {
  EngineFixture fx;
  const std::vector<Demand> demands = {make_demand(0, 0, 200.0, 0.99)};
  const auto r = fx.scheduler.schedule(demands);
  ASSERT_TRUE(r.feasible);
  const AvailabilityEvaluator eval(fx.topo, fx.catalog);
  EXPECT_NEAR(eval.availability(demands[0], r.alloc[0]),
              fx.scheduler.achieved_availability(demands[0], r.alloc[0]),
              1e-9);
  EXPECT_TRUE(eval.satisfied(demands[0], r.alloc[0]));
}

TEST(Experiment, EvaluateTeProducesSaneNumbers) {
  EngineFixture fx;
  const std::vector<Demand> demands = {make_demand(0, 0, 200.0, 0.99),
                                       make_demand(1, 7, 300.0, 0.95)};
  const TeEvaluation eval = evaluate_te(fx.topo, fx.bate, demands, true);
  EXPECT_EQ(eval.demand_count, 2);
  EXPECT_GE(eval.satisfaction_fraction, 0.0);
  EXPECT_LE(eval.satisfaction_fraction, 1.0);
  EXPECT_GT(eval.mean_link_utilization, 0.0);
  EXPECT_GT(eval.post_failure_profit_fraction, 0.5);
  EXPECT_LE(eval.post_failure_profit_fraction, 1.0 + 1e-9);
}

TEST(Experiment, AdmissionSimTracksDecisions) {
  EngineFixture fx;
  std::vector<Demand> demands;
  for (int i = 0; i < 8; ++i) {
    demands.push_back(
        make_demand(i, i % 5, 400.0, 0.9, static_cast<double>(i), 50.0));
  }
  const AdmissionSimResult r =
      run_admission_sim(fx.scheduler, AdmissionStrategy::kBate, demands);
  EXPECT_EQ(r.offered, 8);
  EXPECT_EQ(r.decisions.size(), 8u);
  EXPECT_GT(r.admitted, 0);
  EXPECT_GT(r.link_utilization.count(), 0u);
}

TEST(Experiment, SteadyStateSnapshotRespectsLifetime) {
  EngineFixture fx;
  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 3.0;
  cfg.horizon_min = 100.0;
  cfg.mean_duration_min = 10.0;
  cfg.seed = 5;
  const auto snapshot = steady_state_snapshot(fx.catalog, cfg, 50.0);
  EXPECT_GT(snapshot.size(), 5u);   // ~30 expected
  EXPECT_LT(snapshot.size(), 120u);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].id, static_cast<DemandId>(i));
  }
}

}  // namespace
}  // namespace bate
