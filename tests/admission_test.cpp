// Tests for BATE admission control (Sec 3.2): Algorithm 1, the Theorem-1
// no-false-positive property (conjecture admits => a hard-feasible
// allocation exists), the optimal MILP check, and the FCFS controller.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/admission.h"
#include "topology/catalog.h"
#include "workload/demand_gen.h"

namespace bate {
namespace {

Demand make_demand(DemandId id, int pair, double mbps, double beta) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = beta;
  d.charge = mbps;
  return d;
}

struct TestbedFixture {
  Topology topo = testbed6();
  TunnelCatalog catalog = TunnelCatalog::build(
      topo, std::vector<SdPair>{{0, 2}, {0, 3}, {0, 4}}, 4);
  TrafficScheduler scheduler{topo, catalog, SchedulerConfig{}};
};

TEST(AdmissionConjecture, AcceptsEasyDemands) {
  TestbedFixture fx;
  const std::vector<Demand> demands = {make_demand(0, 0, 100.0, 0.99),
                                       make_demand(1, 1, 100.0, 0.99)};
  EXPECT_TRUE(admission_conjecture(fx.scheduler, demands));
}

TEST(AdmissionConjecture, RejectsOverCapacity) {
  TestbedFixture fx;
  // DC1 has three outgoing links of 1000 each: 3000 total egress.
  const std::vector<Demand> demands = {make_demand(0, 0, 1500.0, 0.5),
                                       make_demand(1, 1, 1500.0, 0.5),
                                       make_demand(2, 2, 1500.0, 0.5)};
  EXPECT_FALSE(admission_conjecture(fx.scheduler, demands));
}

TEST(AdmissionConjecture, RejectsUnreachableAvailability) {
  TestbedFixture fx;
  // Twelve nines: even with full redundancy across every tunnel, the
  // probability that all paths die simultaneously exceeds 1e-12 on the
  // testbed, so no allocation can reach this target.
  const std::vector<Demand> demands = {
      make_demand(0, 0, 100.0, 0.999999999999)};
  EXPECT_FALSE(admission_conjecture(fx.scheduler, demands));
}

TEST(AdmissionConjecture, EmptySetIsAccepted) {
  TestbedFixture fx;
  EXPECT_TRUE(admission_conjecture(fx.scheduler, {}));
}

// Theorem 1 (no false positives): whenever Algorithm 1 admits a demand set,
// the scheduling LP (which the paper proves is a relaxation of hard
// feasibility) must be feasible for that set.
class Theorem1Property : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Property, ConjectureImpliesFeasibleSchedule) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});

  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 2.0;
  cfg.horizon_min = 6.0;
  cfg.mean_duration_min = 30.0;
  cfg.bw_min_mbps = 50.0;
  cfg.bw_max_mbps = 400.0;
  cfg.availability_targets = {0.9, 0.95, 0.99, 0.999};
  cfg.seed = 4000 + static_cast<std::uint64_t>(GetParam());
  auto demands = generate_demands(catalog, cfg);
  if (demands.size() > 8) demands.resize(8);
  if (demands.empty()) GTEST_SKIP();

  if (!admission_conjecture(scheduler, demands)) GTEST_SKIP();
  const ScheduleResult r = scheduler.schedule(demands);
  EXPECT_TRUE(r.feasible) << "Theorem 1 violated for seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Property, ::testing::Range(0, 20));

TEST(GreedyAllocate, ConsumesResidualOnSuccess) {
  TestbedFixture fx;
  std::vector<double> residual(static_cast<std::size_t>(fx.topo.link_count()),
                               1000.0);
  const Demand d = make_demand(0, 0, 300.0, 0.9);
  const auto alloc = greedy_allocate(fx.topo, fx.catalog, d, residual);
  ASSERT_TRUE(alloc.has_value());
  double total = 0.0;
  for (double f : (*alloc)[0]) total += f;
  EXPECT_NEAR(total, 300.0, 1e-6);
  // Some link lost 300 of headroom.
  double min_resid = 1e18;
  for (double rc : residual) min_resid = std::min(min_resid, rc);
  EXPECT_NEAR(min_resid, 700.0, 1e-6);
}

TEST(GreedyAllocate, FailsWithoutTouchingResidual) {
  TestbedFixture fx;
  std::vector<double> residual(static_cast<std::size_t>(fx.topo.link_count()),
                               10.0);
  const Demand d = make_demand(0, 0, 300.0, 0.9);
  const auto before = residual;
  EXPECT_FALSE(greedy_allocate(fx.topo, fx.catalog, d, residual).has_value());
  EXPECT_EQ(residual, before);
}

TEST(GreedyAllocatePartial, PlacesWhatFits) {
  TestbedFixture fx;
  std::vector<double> residual(static_cast<std::size_t>(fx.topo.link_count()),
                               50.0);
  const Demand d = make_demand(0, 0, 300.0, 0.9);
  const auto alloc =
      greedy_allocate_partial(fx.topo, fx.catalog, d, residual);
  double total = 0.0;
  for (double f : alloc[0]) total += f;
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, 300.0);
}

TEST(OptimalAdmission, AcceptsAndRejectsCorrectly) {
  TestbedFixture fx;
  const std::vector<Demand> ok = {make_demand(0, 0, 200.0, 0.99)};
  EXPECT_TRUE(optimal_admission_check(fx.scheduler, ok));
  const std::vector<Demand> too_big = {make_demand(0, 0, 5000.0, 0.5)};
  EXPECT_FALSE(optimal_admission_check(fx.scheduler, too_big));
  const std::vector<Demand> too_strict = {
      make_demand(0, 0, 100.0, 0.99999999)};
  EXPECT_FALSE(optimal_admission_check(fx.scheduler, too_strict));
}

TEST(OptimalAdmission, DominatesConjecture) {
  // Anything the conjecture accepts, the optimal check must accept too
  // (Theorem 1 direction).
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});
  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 1.0;
  cfg.horizon_min = 5.0;
  cfg.mean_duration_min = 60.0;
  cfg.bw_min_mbps = 20.0;
  cfg.bw_max_mbps = 200.0;
  cfg.seed = 99;
  auto demands = generate_demands(catalog, cfg);
  if (demands.size() > 6) demands.resize(6);
  if (demands.empty() || !admission_conjecture(scheduler, demands)) {
    GTEST_SKIP();
  }
  EXPECT_TRUE(optimal_admission_check(scheduler, demands));
}

TEST(AdmissionController, FcfsLifecycle) {
  TestbedFixture fx;
  AdmissionController controller(fx.scheduler, AdmissionStrategy::kBate);

  const Demand d0 = make_demand(0, 0, 300.0, 0.99);
  const Demand d1 = make_demand(1, 1, 400.0, 0.95);
  EXPECT_TRUE(controller.offer(d0).admitted);
  EXPECT_TRUE(controller.offer(d1).admitted);
  EXPECT_EQ(controller.admitted().size(), 2u);
  EXPECT_EQ(controller.allocations().size(), 2u);

  controller.remove(0);
  EXPECT_EQ(controller.admitted().size(), 1u);
  EXPECT_EQ(controller.admitted()[0].id, 1);

  EXPECT_TRUE(controller.reschedule());
}

TEST(AdmissionController, RejectsWhenFull) {
  TestbedFixture fx;
  AdmissionController controller(fx.scheduler, AdmissionStrategy::kBate);
  // Saturate DC1's egress (3 x 1000).
  EXPECT_TRUE(controller.offer(make_demand(0, 0, 900.0, 0.0)).admitted);
  EXPECT_TRUE(controller.offer(make_demand(1, 1, 900.0, 0.0)).admitted);
  EXPECT_TRUE(controller.offer(make_demand(2, 2, 900.0, 0.0)).admitted);
  EXPECT_FALSE(controller.offer(make_demand(3, 0, 900.0, 0.0)).admitted);
}

// --- Batched admission (offer_batch, DESIGN.md Sec 10) ---

/// Deterministic mixed batch keyed on `seed`: sizes and targets chosen so
/// early arrivals fit and later ones contend for the remaining capacity
/// (total demand ~1.3x the 3000-unit source egress).
std::vector<Demand> mixed_batch(std::uint64_t seed, int count = 10) {
  std::vector<Demand> out;
  std::uint64_t x = seed;
  const auto next = [&x] {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(x >> 33);
  };
  const double sizes[] = {150.0, 300.0, 450.0, 700.0};
  const double betas[] = {0.0, 0.9, 0.99};
  for (int i = 0; i < count; ++i) {
    out.push_back(make_demand(i, static_cast<int>(next() % 3),
                              sizes[next() % 4], betas[next() % 3]));
  }
  return out;
}

// kFixed and kBate batch admission IS the serial walk (one incrementally
// maintained residual instead of a recompute per offer), so the verdicts,
// the admitted set, and chunking of the queue must all be invisible.
class BatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BatchEquivalence, MatchesSerialWholeAndChunked) {
  const auto demands = mixed_batch(static_cast<std::uint64_t>(GetParam()));
  for (const AdmissionStrategy strategy :
       {AdmissionStrategy::kFixed, AdmissionStrategy::kBate}) {
    TestbedFixture fx;
    AdmissionController serial(fx.scheduler, strategy);
    std::vector<bool> want;
    for (const Demand& d : demands) want.push_back(serial.offer(d).admitted);

    AdmissionController whole(fx.scheduler, strategy);
    const BatchAdmissionOutcome out = whole.offer_batch(demands);
    ASSERT_EQ(out.outcomes.size(), demands.size());
    EXPECT_EQ(out.first_new_index, 0u);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      EXPECT_EQ(out.outcomes[i].admitted, want[i])
          << "strategy " << static_cast<int>(strategy) << " position " << i;
    }

    // Chunked like the controller's ticks: same verdicts regardless of how
    // arrivals group into batches.
    AdmissionController chunked(fx.scheduler, strategy);
    for (std::size_t off = 0; off < demands.size(); off += 3) {
      const std::span<const Demand> chunk(
          demands.data() + off, std::min<std::size_t>(3, demands.size() - off));
      const BatchAdmissionOutcome o = chunked.offer_batch(chunk);
      ASSERT_EQ(o.outcomes.size(), chunk.size());
      EXPECT_EQ(o.first_new_index, chunked.admitted().size() -
                                       [&] {
                                         std::size_t n = 0;
                                         for (const auto& oc : o.outcomes) {
                                           if (oc.admitted) ++n;
                                         }
                                         return n;
                                       }());
      for (std::size_t j = 0; j < chunk.size(); ++j) {
        EXPECT_EQ(o.outcomes[j].admitted, want[off + j])
            << "strategy " << static_cast<int>(strategy) << " position "
            << off + j;
      }
    }

    ASSERT_EQ(whole.admitted().size(), serial.admitted().size());
    ASSERT_EQ(chunked.admitted().size(), serial.admitted().size());
    for (std::size_t i = 0; i < serial.admitted().size(); ++i) {
      EXPECT_EQ(whole.admitted()[i].id, serial.admitted()[i].id);
      EXPECT_EQ(chunked.admitted()[i].id, serial.admitted()[i].id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalence, ::testing::Range(0, 8));

TEST(BatchOptimal, AllFeasibleMatchesSerial) {
  // When the whole queue is jointly admissible the batched MILP must agree
  // with the serial walk exactly: everyone in, same order.
  TestbedFixture fx;
  const std::vector<Demand> demands = {make_demand(0, 0, 300.0, 0.9),
                                       make_demand(1, 1, 400.0, 0.0),
                                       make_demand(2, 2, 250.0, 0.99)};
  AdmissionController serial(fx.scheduler, AdmissionStrategy::kOptimal);
  AdmissionController batch(fx.scheduler, AdmissionStrategy::kOptimal);
  std::vector<bool> want;
  for (const Demand& d : demands) want.push_back(serial.offer(d).admitted);

  const BatchAdmissionOutcome out = batch.offer_batch(demands);
  ASSERT_EQ(out.outcomes.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_TRUE(want[i]);
    EXPECT_EQ(out.outcomes[i].admitted, want[i]);
  }
  ASSERT_EQ(batch.admitted().size(), serial.admitted().size());
  for (std::size_t i = 0; i < serial.admitted().size(); ++i) {
    EXPECT_EQ(batch.admitted()[i].id, serial.admitted()[i].id);
  }
}

TEST(BatchOptimal, InfeasibleBatchPicksMaxCardinalitySubset) {
  // The documented kOptimal divergence (DESIGN.md Sec 10): d0 = 2000 fills
  // the source egress enough that neither 1200 fits next to it, but the two
  // 1200s fit together. Serial FCFS admits d0 and rejects the rest; the
  // batched MILP maximizes admitted cardinality and inverts that.
  TestbedFixture fx;
  const std::vector<Demand> demands = {make_demand(0, 0, 2000.0, 0.0),
                                       make_demand(1, 1, 1200.0, 0.0),
                                       make_demand(2, 2, 1200.0, 0.0)};
  AdmissionController serial(fx.scheduler, AdmissionStrategy::kOptimal);
  EXPECT_TRUE(serial.offer(demands[0]).admitted);
  EXPECT_FALSE(serial.offer(demands[1]).admitted);
  EXPECT_FALSE(serial.offer(demands[2]).admitted);

  AdmissionController batch(fx.scheduler, AdmissionStrategy::kOptimal);
  const BatchAdmissionOutcome out = batch.offer_batch(demands);
  ASSERT_EQ(out.outcomes.size(), 3u);
  EXPECT_FALSE(out.outcomes[0].admitted);
  EXPECT_TRUE(out.outcomes[1].admitted);
  EXPECT_TRUE(out.outcomes[2].admitted);
  EXPECT_EQ(batch.admitted().size(), 2u);
}

TEST(BatchOptimal, FcfsTieBreakAmongEqualCardinality) {
  // Three identical 1800s, any two over the 3000-unit egress: every
  // maximum-cardinality subset is a singleton, and the FCFS tie-break must
  // pick the earliest arrival — matching the serial walk.
  TestbedFixture fx;
  const std::vector<Demand> demands = {make_demand(0, 0, 1800.0, 0.0),
                                       make_demand(1, 1, 1800.0, 0.0),
                                       make_demand(2, 2, 1800.0, 0.0)};
  AdmissionController batch(fx.scheduler, AdmissionStrategy::kOptimal);
  const BatchAdmissionOutcome out = batch.offer_batch(demands);
  ASSERT_EQ(out.outcomes.size(), 3u);
  EXPECT_TRUE(out.outcomes[0].admitted);
  EXPECT_FALSE(out.outcomes[1].admitted);
  EXPECT_FALSE(out.outcomes[2].admitted);
  ASSERT_EQ(batch.admitted().size(), 1u);
  EXPECT_EQ(batch.admitted()[0].id, 0);
}

TEST(BatchAdmissionModel, StructureAndFcfsWeights) {
  TestbedFixture fx;
  const std::vector<Demand> committed = {make_demand(0, 0, 100.0, 0.9)};
  const std::vector<Demand> candidates = {make_demand(1, 1, 100.0, 0.0),
                                          make_demand(2, 2, 100.0, 0.99)};
  std::vector<int> admit_vars;
  const Model batch = build_batch_admission_model(fx.scheduler, committed,
                                                  candidates, &admit_vars);
  ASSERT_EQ(admit_vars.size(), candidates.size());
  for (const int col : admit_vars) {
    ASSERT_GE(col, 0);
    ASSERT_LT(col, batch.variable_count());
    const Variable& v = batch.variables()[static_cast<std::size_t>(col)];
    EXPECT_TRUE(v.integer);
    EXPECT_DOUBLE_EQ(v.lower, 0.0);
    EXPECT_DOUBLE_EQ(v.upper, 1.0);
    // Minimization model: admitting must pay (reward = negative cost)...
    EXPECT_LT(v.objective, 0.0);
  }
  // ...and the FCFS tie-break makes the earlier candidate pay strictly more.
  EXPECT_LT(batch.variables()[static_cast<std::size_t>(admit_vars[0])].objective,
            batch.variables()[static_cast<std::size_t>(admit_vars[1])].objective);

  // Zero candidates degenerate to the plain committed-only feasibility
  // model: same shape, no admit binaries.
  std::vector<int> none;
  const Model plain = build_admission_model(fx.scheduler, committed);
  const Model degenerate =
      build_batch_admission_model(fx.scheduler, committed, {}, &none);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(degenerate.variable_count(), plain.variable_count());
  EXPECT_EQ(degenerate.constraint_count(), plain.constraint_count());
  // Candidates grow both dimensions.
  EXPECT_GT(batch.variable_count(), plain.variable_count());
  EXPECT_GT(batch.constraint_count(), plain.constraint_count());
}

TEST(BatchAdmissionCheck, ProvenVerdictsPerCandidate) {
  TestbedFixture fx;
  const std::vector<Demand> committed = {make_demand(0, 0, 500.0, 0.9)};
  // One demand that fits and one that can never fit anywhere.
  const std::vector<Demand> candidates = {make_demand(1, 1, 300.0, 0.9),
                                          make_demand(2, 2, 5000.0, 0.0)};
  const BatchAdmissionVerdicts v =
      batch_admission_check(fx.scheduler, committed, candidates);
  ASSERT_TRUE(v.proven);
  ASSERT_EQ(v.admit.size(), 2u);
  EXPECT_TRUE(v.admit[0]);
  EXPECT_FALSE(v.admit[1]);

  const BatchAdmissionVerdicts empty =
      batch_admission_check(fx.scheduler, committed, {});
  EXPECT_TRUE(empty.proven);
  EXPECT_TRUE(empty.admit.empty());
}

TEST(AdmissionController, ConjectureAdmitsWhatFixedRejects) {
  // Construct a state where the fixed strategy's frozen allocations block a
  // newcomer but a reschedule would fit everyone: two 600-unit demands on
  // the same pair, then a third one elsewhere... Use pair DC1->DC3 whose
  // tunnels overlap with DC1->DC4 traffic.
  TestbedFixture fx;
  AdmissionController bate(fx.scheduler, AdmissionStrategy::kBate);
  AdmissionController fixed(fx.scheduler, AdmissionStrategy::kFixed);

  // Fill with best-effort demands that the greedy first-fit spreads badly.
  std::vector<Demand> warmup;
  for (int i = 0; i < 5; ++i) {
    warmup.push_back(make_demand(i, i % 3, 450.0, 0.0));
  }
  int bate_admits = 0;
  int fixed_admits = 0;
  for (const Demand& d : warmup) {
    bate_admits += bate.offer(d).admitted ? 1 : 0;
    fixed_admits += fixed.offer(d).admitted ? 1 : 0;
  }
  // BATE's conjecture path must never admit fewer than fixed.
  EXPECT_GE(bate_admits, fixed_admits);
}

}  // namespace
}  // namespace bate
