// Integration tests for the controller/broker system (Sec 4) over real
// loopback TCP: protocol round-trips, end-to-end demand submission with
// allocation broadcast, withdrawal, and failure reporting with backup
// activation.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "system/broker.h"
#include "system/client.h"
#include "system/controller.h"
#include "system/protocol.h"
#include "topology/catalog.h"

namespace bate {
namespace {

Demand make_demand(DemandId id, int pair, double mbps, double beta) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = beta;
  d.charge = mbps;
  d.refund_fraction = 0.1;
  d.duration_minutes = 10.0;
  return d;
}

// Deadlines are deliberately generous: under parallel ctest with sanitizers
// the controller's scheduling round can stall for seconds at a time, and a
// wait that exits early on a passing condition costs nothing.
constexpr int kWaitMs = 30000;

bool wait_for(const std::function<bool()>& cond, int ms = kWaitMs) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

/// Event-driven variant for conditions over broker state: re-evaluates
/// `cond` after each allocation update the broker receives (no fixed poll
/// interval, no missed-update race: the update count is sampled before the
/// condition, so an update landing in between wakes the next wait at once).
bool wait_for_broker(const Broker& broker, const std::function<bool()>& cond,
                     int ms = kWaitMs) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  for (;;) {
    const int seen = broker.updates_received();
    if (cond()) return true;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return cond();
    broker.wait_updates_past(seen, static_cast<int>(left.count()));
  }
}

TEST(Protocol, RoundTripsEveryMessageType) {
  Demand d = make_demand(7, 2, 123.5, 0.999);
  d.pairs.push_back({4, 55.0});
  d.arrival_minute = 3.25;

  const Message msgs[] = {
      HelloMsg{"broker", 3},
      SubmitDemandMsg{d},
      AdmissionReplyMsg{7, true},
      AllocationUpdateMsg{7, 2, {10.0, 20.5, 0.0}, true},
      WithdrawDemandMsg{9},
      LinkStatusMsg{5, false},
      StatsRequestMsg{"json"},
      StatsReplyMsg{"prometheus", "# TYPE x counter\nx 1\n"},
  };
  for (const Message& msg : msgs) {
    const auto payload = encode_message(msg);
    const Message back = decode_message(payload);
    EXPECT_EQ(back.index(), msg.index());
  }

  const Message reply = decode_message(
      encode_message(StatsReplyMsg{"json", "{\"counters\":{}}"}));
  const auto& sr = std::get<StatsReplyMsg>(reply);
  EXPECT_EQ(sr.format, "json");
  EXPECT_EQ(sr.body, "{\"counters\":{}}");

  const Message back = decode_message(encode_message(SubmitDemandMsg{d}));
  const auto& sd = std::get<SubmitDemandMsg>(back);
  EXPECT_EQ(sd.demand.id, 7);
  ASSERT_EQ(sd.demand.pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(sd.demand.pairs[0].mbps, 123.5);
  EXPECT_DOUBLE_EQ(sd.demand.availability_target, 0.999);
  EXPECT_DOUBLE_EQ(sd.demand.arrival_minute, 3.25);
}

TEST(Protocol, RejectsGarbage) {
  const std::uint8_t garbage[] = {0xFF, 0x01, 0x02};
  EXPECT_THROW(decode_message(garbage), std::invalid_argument);
  EXPECT_THROW(decode_message({}), std::out_of_range);
}

struct SystemFixture : ::testing::Test {
  Topology topo = testbed6();
  TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  std::unique_ptr<Controller> controller;

  void SetUp() override {
    controller = std::make_unique<Controller>(topo, catalog,
                                              SchedulerConfig{},
                                              AdmissionStrategy::kBate);
    controller->start();
  }
  void TearDown() override { controller->stop(); }
};

TEST_F(SystemFixture, SubmitAdmitAndEnforce) {
  Broker broker(0, controller->port());
  broker.start();

  UserClient user(controller->port());
  const Demand d = make_demand(1, 0, 200.0, 0.99);
  EXPECT_TRUE(user.submit(d));

  // The broker must receive the allocation for (demand 1, pair 0) summing
  // to the demanded 200 Mbps.
  EXPECT_TRUE(wait_for_broker(broker, [&] {
    return std::abs(broker.enforced_total(1, 0) - 200.0) < 1.0;
  })) << "enforced " << broker.enforced_total(1, 0);

  // The broker can observe the update (and wake this thread) before the
  // controller thread books it into stats, so the counter gets its own wait.
  EXPECT_TRUE(
      wait_for([&] { return controller->stats().allocation_updates_sent > 0; }));
  const auto stats = controller->stats();
  EXPECT_EQ(stats.demands_offered, 1);
  EXPECT_EQ(stats.demands_admitted, 1);
  broker.stop();
}

TEST_F(SystemFixture, RejectsOversizedDemand) {
  UserClient user(controller->port());
  EXPECT_FALSE(user.submit(make_demand(2, 0, 50000.0, 0.9)));
  const auto stats = controller->stats();
  EXPECT_EQ(stats.demands_admitted, 0);
}

TEST_F(SystemFixture, WithdrawFreesCapacity) {
  UserClient user(controller->port());
  // Saturate the DC1 egress.
  EXPECT_TRUE(user.submit(make_demand(1, 0, 900.0, 0.0)));
  EXPECT_TRUE(user.submit(make_demand(2, 1, 900.0, 0.0)));
  EXPECT_TRUE(user.submit(make_demand(3, 2, 900.0, 0.0)));
  EXPECT_FALSE(user.submit(make_demand(4, 0, 900.0, 0.0)));
  // Withdraw one and retry.
  user.withdraw(1);
  EXPECT_TRUE(wait_for([&] {
    UserClient probe(controller->port());
    return probe.submit(make_demand(5, 0, 900.0, 0.0));
  }));
}

TEST_F(SystemFixture, LinkFailureActivatesBackup) {
  Broker broker(0, controller->port());
  broker.start();
  UserClient user(controller->port());

  ASSERT_TRUE(user.submit(make_demand(1, 0, 300.0, 0.99)));
  ASSERT_TRUE(wait_for_broker(
      broker, [&] { return broker.enforced_total(1, 0) > 0.0; }));

  // Find a link the allocation uses and report it down.
  const auto rates = broker.enforced_rates(1, 0);
  const auto& tunnels = catalog.tunnels(0);
  LinkId used = -1;
  for (std::size_t t = 0; t < rates.size(); ++t) {
    if (rates[t] > 1.0) {
      used = tunnels[t].links.front();
      break;
    }
  }
  ASSERT_NE(used, -1);

  broker.report_link(used, false);
  EXPECT_TRUE(wait_for_broker(broker, [&] { return broker.backup_active(); }));
  const auto stats = controller->stats();
  EXPECT_EQ(stats.link_failures_handled, 1);

  // Repair: normal allocations are re-broadcast.
  broker.report_link(used, true);
  EXPECT_TRUE(
      wait_for_broker(broker, [&] { return !broker.backup_active(); }));
  broker.stop();
}

TEST_F(SystemFixture, EnforcerShapesToUpdatedRates) {
  Broker broker(0, controller->port());
  broker.start();
  UserClient user(controller->port());
  ASSERT_TRUE(user.submit(make_demand(1, 0, 200.0, 0.99)));
  ASSERT_TRUE(wait_for_broker(
      broker, [&] { return broker.enforced_total(1, 0) > 150.0; }));

  // Find the loaded tunnel and hammer it: the admitted volume over one
  // second must approximate the enforced rate.
  const auto rates = broker.enforced_rates(1, 0);
  std::size_t tunnel = 0;
  for (std::size_t t = 0; t < rates.size(); ++t) {
    if (rates[t] > 1.0) tunnel = t;
  }
  double admitted = 0.0;
  for (int tick = 0; tick < 10; ++tick) {
    broker.advance_enforcer(0.1);
    admitted += broker.shape(1, 0, tunnel, 1000.0);
  }
  EXPECT_NEAR(admitted, rates[tunnel], rates[tunnel] * 0.25);
  // Unknown rows drop everything.
  EXPECT_DOUBLE_EQ(broker.shape(42, 0, 0, 10.0), 0.0);
  broker.stop();
}

TEST_F(SystemFixture, StatsRequestReturnsRegistrySnapshot) {
  // Scrape over TCP while a broker is connected: the reply must carry the
  // solver, scheduler, and net-layer metrics populated by the admitted
  // demand's scheduling round.
  Broker broker(0, controller->port());
  broker.start();
  UserClient user(controller->port());
  ASSERT_TRUE(user.submit(make_demand(1, 0, 200.0, 0.99)));
  ASSERT_TRUE(wait_for_broker(
      broker, [&] { return broker.enforced_total(1, 0) > 0.0; }));

  const std::string prom = user.stats();
  EXPECT_NE(prom.find("bate_solver_solves_total"), std::string::npos) << prom;
  EXPECT_NE(prom.find("bate_scheduler_rounds_total"), std::string::npos);
  EXPECT_NE(prom.find("bate_controller_frames_in_total"), std::string::npos);
  EXPECT_NE(prom.find("bate_controller_demands_offered_total"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE bate_solver_solve_us histogram"),
            std::string::npos);

  const std::string json = user.stats("json");
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("bate_scheduler_rounds_total"), std::string::npos);
  broker.stop();
}

TEST_F(SystemFixture, SurvivesMalformedPeers) {
  // A peer that speaks garbage must not take the controller down.
  {
    Socket rogue = connect_tcp(controller->port());
    const std::uint8_t junk[] = {0xFF, 0xFE, 0x01, 0x02, 0x03};
    rogue.write_all(encode_frame(junk));
    // Unframed noise too.
    const std::uint8_t noise[] = {0x00, 0x01};
    rogue.write_all(noise);
  }  // rogue disconnects
  // Regular service continues.
  UserClient user(controller->port());
  EXPECT_TRUE(user.submit(make_demand(1, 0, 100.0, 0.95)));
}

TEST_F(SystemFixture, MultipleBrokersReceiveUpdates) {
  Broker b1(0, controller->port());
  Broker b2(3, controller->port());
  b1.start();
  b2.start();
  UserClient user(controller->port());
  ASSERT_TRUE(user.submit(make_demand(1, 5, 150.0, 0.95)));
  EXPECT_TRUE(wait_for_broker(
      b1, [&] { return b1.enforced_total(1, 5) > 100.0; }));
  EXPECT_TRUE(wait_for_broker(
      b2, [&] { return b2.enforced_total(1, 5) > 100.0; }));
  b1.stop();
  b2.stop();
}

}  // namespace
}  // namespace bate
