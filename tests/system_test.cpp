// Integration tests for the controller/broker system (Sec 4) over real
// loopback TCP: protocol round-trips, end-to-end demand submission with
// allocation broadcast, withdrawal, and failure reporting with backup
// activation.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "net/framing.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "system/broker.h"
#include "system/client.h"
#include "system/controller.h"
#include "system/protocol.h"
#include "topology/catalog.h"

namespace bate {
namespace {

Demand make_demand(DemandId id, int pair, double mbps, double beta) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = beta;
  d.charge = mbps;
  d.refund_fraction = 0.1;
  d.duration_minutes = 10.0;
  return d;
}

// Deadlines are deliberately generous: under parallel ctest with sanitizers
// the controller's scheduling round can stall for seconds at a time, and a
// wait that exits early on a passing condition costs nothing.
constexpr int kWaitMs = 30000;

bool wait_for(const std::function<bool()>& cond, int ms = kWaitMs) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

/// Event-driven variant for conditions over broker state: re-evaluates
/// `cond` after each allocation update the broker receives (no fixed poll
/// interval, no missed-update race: the update count is sampled before the
/// condition, so an update landing in between wakes the next wait at once).
bool wait_for_broker(const Broker& broker, const std::function<bool()>& cond,
                     int ms = kWaitMs) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  for (;;) {
    const int seen = broker.updates_received();
    if (cond()) return true;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return cond();
    broker.wait_updates_past(seen, static_cast<int>(left.count()));
  }
}

TEST(Protocol, RoundTripsEveryMessageType) {
  Demand d = make_demand(7, 2, 123.5, 0.999);
  d.pairs.push_back({4, 55.0});
  d.arrival_minute = 3.25;

  const Message msgs[] = {
      HelloMsg{"broker", 3},
      SubmitDemandMsg{d, 42},
      AdmissionReplyMsg{42, 7, AdmissionStatus::kAdmitted, 0.0},
      AllocationUpdateMsg{7, 2, {10.0, 20.5, 0.0}, true},
      WithdrawDemandMsg{9},
      LinkStatusMsg{5, false},
      StatsRequestMsg{"json"},
      StatsReplyMsg{"prometheus", "# TYPE x counter\nx 1\n"},
      SloRequestMsg{"json", "ledger"},
      SloReplyMsg{"json", "{\"ledger\":{}}"},
  };
  for (const Message& msg : msgs) {
    const auto payload = encode_message(msg);
    const Message back = decode_message(payload);
    EXPECT_EQ(back.index(), msg.index());
  }

  const Message reply = decode_message(
      encode_message(StatsReplyMsg{"json", "{\"counters\":{}}"}));
  const auto& sr = std::get<StatsReplyMsg>(reply);
  EXPECT_EQ(sr.format, "json");
  EXPECT_EQ(sr.body, "{\"counters\":{}}");

  const Message back =
      decode_message(encode_message(SubmitDemandMsg{d, 9001}));
  const auto& sd = std::get<SubmitDemandMsg>(back);
  EXPECT_EQ(sd.request_id, 9001u);
  EXPECT_EQ(sd.demand.id, 7);
  ASSERT_EQ(sd.demand.pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(sd.demand.pairs[0].mbps, 123.5);
  EXPECT_DOUBLE_EQ(sd.demand.availability_target, 0.999);
  EXPECT_DOUBLE_EQ(sd.demand.arrival_minute, 3.25);

  const Message shed = decode_message(encode_message(
      AdmissionReplyMsg{11, -1, AdmissionStatus::kShed, 12.5}));
  const auto& ar = std::get<AdmissionReplyMsg>(shed);
  EXPECT_EQ(ar.request_id, 11u);
  EXPECT_EQ(ar.id, -1);
  EXPECT_EQ(ar.status, AdmissionStatus::kShed);
  EXPECT_FALSE(ar.admitted());
  EXPECT_DOUBLE_EQ(ar.retry_after_ms, 12.5);

  const Message slo_req =
      decode_message(encode_message(SloRequestMsg{"json", "series"}));
  const auto& sq = std::get<SloRequestMsg>(slo_req);
  EXPECT_EQ(sq.format, "json");
  EXPECT_EQ(sq.selector, "series");
  const Message slo_rep = decode_message(
      encode_message(SloReplyMsg{"json", "{\"demands\":[{\"id\":7}]}"}));
  const auto& sp = std::get<SloReplyMsg>(slo_rep);
  EXPECT_EQ(sp.format, "json");
  EXPECT_EQ(sp.body, "{\"demands\":[{\"id\":7}]}");
}

TEST(Protocol, RejectsGarbage) {
  const std::uint8_t garbage[] = {0xFF, 0x01, 0x02};
  EXPECT_THROW(decode_message(garbage), std::invalid_argument);
  EXPECT_THROW(decode_message({}), std::out_of_range);
}

struct SystemFixture : ::testing::Test {
  Topology topo = testbed6();
  TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  std::unique_ptr<Controller> controller;

  void SetUp() override {
    controller = std::make_unique<Controller>(topo, catalog,
                                              SchedulerConfig{},
                                              AdmissionStrategy::kBate);
    controller->start();
  }
  void TearDown() override { controller->stop(); }
};

TEST_F(SystemFixture, SubmitAdmitAndEnforce) {
  Broker broker(0, controller->port());
  broker.start();

  UserClient user(controller->port());
  const Demand d = make_demand(1, 0, 200.0, 0.99);
  EXPECT_TRUE(user.submit(d));

  // The broker must receive the allocation for (demand 1, pair 0) summing
  // to the demanded 200 Mbps.
  EXPECT_TRUE(wait_for_broker(broker, [&] {
    return std::abs(broker.enforced_total(1, 0) - 200.0) < 1.0;
  })) << "enforced " << broker.enforced_total(1, 0);

  // The broker can observe the update (and wake this thread) before the
  // controller thread books it into stats, so the counter gets its own wait.
  EXPECT_TRUE(
      wait_for([&] { return controller->stats().allocation_updates_sent > 0; }));
  const auto stats = controller->stats();
  EXPECT_EQ(stats.demands_offered, 1);
  EXPECT_EQ(stats.demands_admitted, 1);
  broker.stop();
}

TEST_F(SystemFixture, RejectsOversizedDemand) {
  UserClient user(controller->port());
  EXPECT_FALSE(user.submit(make_demand(2, 0, 50000.0, 0.9)));
  const auto stats = controller->stats();
  EXPECT_EQ(stats.demands_admitted, 0);
}

TEST_F(SystemFixture, WithdrawFreesCapacity) {
  UserClient user(controller->port());
  // Saturate the DC1 egress.
  EXPECT_TRUE(user.submit(make_demand(1, 0, 900.0, 0.0)));
  EXPECT_TRUE(user.submit(make_demand(2, 1, 900.0, 0.0)));
  EXPECT_TRUE(user.submit(make_demand(3, 2, 900.0, 0.0)));
  EXPECT_FALSE(user.submit(make_demand(4, 0, 900.0, 0.0)));
  // Withdraw one and retry.
  user.withdraw(1);
  EXPECT_TRUE(wait_for([&] {
    UserClient probe(controller->port());
    return probe.submit(make_demand(5, 0, 900.0, 0.0));
  }));
}

TEST_F(SystemFixture, LinkFailureActivatesBackup) {
  Broker broker(0, controller->port());
  broker.start();
  UserClient user(controller->port());

  ASSERT_TRUE(user.submit(make_demand(1, 0, 300.0, 0.99)));
  ASSERT_TRUE(wait_for_broker(
      broker, [&] { return broker.enforced_total(1, 0) > 0.0; }));

  // Find a link the allocation uses and report it down.
  const auto rates = broker.enforced_rates(1, 0);
  const auto& tunnels = catalog.tunnels(0);
  LinkId used = -1;
  for (std::size_t t = 0; t < rates.size(); ++t) {
    if (rates[t] > 1.0) {
      used = tunnels[t].links.front();
      break;
    }
  }
  ASSERT_NE(used, -1);

  broker.report_link(used, false);
  EXPECT_TRUE(wait_for_broker(broker, [&] { return broker.backup_active(); }));
  const auto stats = controller->stats();
  EXPECT_EQ(stats.link_failures_handled, 1);

  // Repair: normal allocations are re-broadcast.
  broker.report_link(used, true);
  EXPECT_TRUE(
      wait_for_broker(broker, [&] { return !broker.backup_active(); }));
  broker.stop();
}

TEST_F(SystemFixture, EnforcerShapesToUpdatedRates) {
  Broker broker(0, controller->port());
  broker.start();
  UserClient user(controller->port());
  ASSERT_TRUE(user.submit(make_demand(1, 0, 200.0, 0.99)));
  ASSERT_TRUE(wait_for_broker(
      broker, [&] { return broker.enforced_total(1, 0) > 150.0; }));

  // Find the loaded tunnel and hammer it: the admitted volume over one
  // second must approximate the enforced rate.
  const auto rates = broker.enforced_rates(1, 0);
  std::size_t tunnel = 0;
  for (std::size_t t = 0; t < rates.size(); ++t) {
    if (rates[t] > 1.0) tunnel = t;
  }
  double admitted = 0.0;
  for (int tick = 0; tick < 10; ++tick) {
    broker.advance_enforcer(0.1);
    admitted += broker.shape(1, 0, tunnel, 1000.0);
  }
  EXPECT_NEAR(admitted, rates[tunnel], rates[tunnel] * 0.25);
  // Unknown rows drop everything.
  EXPECT_DOUBLE_EQ(broker.shape(42, 0, 0, 10.0), 0.0);
  broker.stop();
}

TEST_F(SystemFixture, StatsRequestReturnsRegistrySnapshot) {
  // Scrape over TCP while a broker is connected: the reply must carry the
  // solver, scheduler, and net-layer metrics populated by the admitted
  // demand's scheduling round.
  Broker broker(0, controller->port());
  broker.start();
  UserClient user(controller->port());
  ASSERT_TRUE(user.submit(make_demand(1, 0, 200.0, 0.99)));
  ASSERT_TRUE(wait_for_broker(
      broker, [&] { return broker.enforced_total(1, 0) > 0.0; }));

  const std::string prom = user.stats();
  EXPECT_NE(prom.find("bate_solver_solves_total"), std::string::npos) << prom;
  EXPECT_NE(prom.find("bate_scheduler_rounds_total"), std::string::npos);
  EXPECT_NE(prom.find("bate_controller_frames_in_total"), std::string::npos);
  EXPECT_NE(prom.find("bate_controller_demands_offered_total"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE bate_solver_solve_us histogram"),
            std::string::npos);
  // Admission-pipeline metrics (DESIGN.md Sec 10) ride the same scrape.
  EXPECT_NE(prom.find("bate_admission_shed_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE bate_admission_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE bate_admission_batch_size histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE bate_admission_reply_latency_us histogram"),
            std::string::npos);

  const std::string json = user.stats("json");
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("bate_scheduler_rounds_total"), std::string::npos);
  broker.stop();
}

TEST_F(SystemFixture, SurvivesMalformedPeers) {
  // A peer that speaks garbage must not take the controller down.
  {
    Socket rogue = connect_tcp(controller->port());
    const std::uint8_t junk[] = {0xFF, 0xFE, 0x01, 0x02, 0x03};
    rogue.write_all(encode_frame(junk));
    // Unframed noise too.
    const std::uint8_t noise[] = {0x00, 0x01};
    rogue.write_all(noise);
  }  // rogue disconnects
  // Regular service continues.
  UserClient user(controller->port());
  EXPECT_TRUE(user.submit(make_demand(1, 0, 100.0, 0.95)));
}

TEST_F(SystemFixture, PipelinedSubmitManyIndexesVerdicts) {
  // Many in-flight requests on one connection: every verdict must land at
  // the slot of the demand that caused it, regardless of how the controller
  // groups the queue into batches.
  UserClient user(controller->port(), /*tenant=*/7);
  std::vector<Demand> demands;
  for (int i = 0; i < 48; ++i) {
    demands.push_back(make_demand(i + 1, i % catalog.pair_count(), 1.0, 0.0));
  }
  const auto replies = user.submit_many(demands, /*window=*/16);
  ASSERT_EQ(replies.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_EQ(replies[i].id, demands[i].id);
    EXPECT_NE(replies[i].request_id, 0u);
    EXPECT_TRUE(replies[i].admitted()) << "demand " << demands[i].id;
  }
  EXPECT_TRUE(
      wait_for([&] { return controller->stats().demands_offered == 48; }));
  EXPECT_EQ(controller->stats().demands_admitted, 48);
}

TEST_F(SystemFixture, OutOfOrderReplyConsumption) {
  UserClient user(controller->port());
  const std::uint64_t r1 = user.submit_async(make_demand(1, 0, 50.0, 0.9));
  const std::uint64_t r2 = user.submit_async(make_demand(2, 1, 50.0, 0.9));
  // Consume in reverse submission order: wait_reply_for must buffer the
  // stray r1 reply while hunting for r2, then hand it back afterwards.
  const UserClient::Reply second = user.wait_reply_for(r2);
  const UserClient::Reply first = user.wait_reply_for(r1);
  EXPECT_EQ(second.request_id, r2);
  EXPECT_EQ(second.id, 2);
  EXPECT_TRUE(second.admitted());
  EXPECT_EQ(first.request_id, r1);
  EXPECT_EQ(first.id, 1);
  EXPECT_TRUE(first.admitted());
}

/// Reads framed messages off a raw socket until `n` admission replies have
/// arrived (helper for hand-rolled protocol exchanges).
std::vector<AdmissionReplyMsg> read_replies(Socket& sock, std::size_t n) {
  std::vector<AdmissionReplyMsg> out;
  FrameReader reader;
  std::array<std::uint8_t, 4096> buf{};
  while (out.size() < n) {
    if (auto frame = reader.next()) {
      const Message msg = decode_message(*frame);
      if (const auto* reply = std::get_if<AdmissionReplyMsg>(&msg)) {
        out.push_back(*reply);
      }
      continue;
    }
    const long r = sock.read_some(buf);
    if (r == 0) break;
    if (r > 0) reader.feed({buf.data(), static_cast<std::size_t>(r)});
  }
  return out;
}

TEST_F(SystemFixture, DuplicateRequestIdGetsOneVerdict) {
  Socket raw = connect_tcp(controller->port());
  raw.write_all(encode_frame(encode_message(HelloMsg{"user", 9})));
  // Two submits sharing request_id 77 in one segment, so both decode in the
  // same readable callback: the second must bounce as kDuplicate while the
  // first is still queued.
  FrameBatch batch;
  batch.add(encode_message(SubmitDemandMsg{make_demand(1, 0, 10.0, 0.0), 77}));
  batch.add(encode_message(SubmitDemandMsg{make_demand(2, 1, 10.0, 0.0), 77}));
  raw.write_all(batch.bytes());

  const auto replies = read_replies(raw, 2);
  ASSERT_EQ(replies.size(), 2u);
  int duplicates = 0;
  int admitted = 0;
  for (const auto& r : replies) {
    EXPECT_EQ(r.request_id, 77u);
    if (r.status == AdmissionStatus::kDuplicate) {
      ++duplicates;
      EXPECT_EQ(r.id, 2);
    } else if (r.status == AdmissionStatus::kAdmitted) {
      ++admitted;
      EXPECT_EQ(r.id, 1);
    }
  }
  EXPECT_EQ(duplicates, 1);
  EXPECT_EQ(admitted, 1);
}

TEST_F(SystemFixture, QueueOverflowShedsWithRetryHint) {
  // A 2-deep queue against a 256-frame pipelined burst: whatever one epoll
  // round delivers beyond the cap must bounce as kShed carrying a positive
  // retry hint — and the shed verdicts must reach the right slots while
  // their queued neighbours still get admitted.
  ControllerConfig cfg;
  cfg.max_queue = 2;
  Controller small(topo, catalog, SchedulerConfig{}, AdmissionStrategy::kBate,
                   cfg);
  small.start();
  int shed = 0;
  int admitted = 0;
  // A burst can in principle dribble in 2 frames per drain; retry with a
  // fresh burst until one overflows (the first virtually always does).
  for (int round = 0; round < 5 && shed == 0; ++round) {
    std::vector<Demand> burst;
    for (int i = 0; i < 256; ++i) {
      burst.push_back(make_demand(round * 1000 + i + 1,
                                  i % catalog.pair_count(), 0.01, 0.0));
    }
    UserClient user(small.port(), /*tenant=*/1);
    for (const auto& r : user.submit_many(burst, /*window=*/256)) {
      if (r.status == AdmissionStatus::kShed) {
        ++shed;
        EXPECT_GT(r.retry_after_ms, 0.0);
      } else if (r.admitted()) {
        ++admitted;
      }
    }
  }
  EXPECT_GT(shed, 0) << "no burst overflowed a 2-deep queue";
  EXPECT_GT(admitted, 0);
  EXPECT_EQ(small.stats().demands_shed, shed);
  small.stop();
}

TEST_F(SystemFixture, TenantRateLimitSheds) {
  // 0.1 req/s with burst 2: of a 10-request burst exactly the burst depth
  // passes (the next token is 10 wall-clock seconds away, beyond any test
  // timing wobble) and the rest shed with the limiter's backoff hint.
  ControllerConfig cfg;
  cfg.tenant_rate_per_sec = 0.1;
  cfg.tenant_burst = 2.0;
  Controller limited(topo, catalog, SchedulerConfig{}, AdmissionStrategy::kBate,
                     cfg);
  limited.start();
  UserClient user(limited.port(), /*tenant=*/5);
  std::vector<Demand> burst;
  for (int i = 0; i < 10; ++i) {
    burst.push_back(make_demand(i + 1, i % catalog.pair_count(), 0.01, 0.0));
  }
  int shed = 0;
  int admitted = 0;
  for (const auto& r : user.submit_many(burst)) {
    if (r.status == AdmissionStatus::kShed) {
      ++shed;
      EXPECT_GT(r.retry_after_ms, 0.0);
    } else if (r.admitted()) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 2);
  EXPECT_EQ(shed, 8);
  limited.stop();
}

TEST_F(SystemFixture, BrokerReportRateLimitClipsFlapping) {
  Broker broker(0, controller->port(), /*report_rate_per_sec=*/5.0,
                /*report_burst=*/2.0);
  broker.start();
  for (int i = 0; i < 50; ++i) broker.report_link(0, i % 2 == 0);
  EXPECT_GT(broker.reports_dropped(), 0);
  // The clipped flap storm must not wedge the control channel.
  UserClient user(controller->port());
  EXPECT_TRUE(user.submit(make_demand(1, 0, 50.0, 0.9)));
  broker.stop();
}

TEST_F(SystemFixture, MultipleBrokersReceiveUpdates) {
  Broker b1(0, controller->port());
  Broker b2(3, controller->port());
  b1.start();
  b2.start();
  UserClient user(controller->port());
  ASSERT_TRUE(user.submit(make_demand(1, 5, 150.0, 0.95)));
  EXPECT_TRUE(wait_for_broker(
      b1, [&] { return b1.enforced_total(1, 5) > 100.0; }));
  EXPECT_TRUE(wait_for_broker(
      b2, [&] { return b2.enforced_total(1, 5) > 100.0; }));
  b1.stop();
  b2.stop();
}

/// Minimal view of one exported trace event, scraped out of the Chrome
/// trace JSON (the only cross-ring export the Tracer offers).
struct ParsedSpan {
  std::string name;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
};

std::vector<ParsedSpan> parse_spans(const std::string& json) {
  std::vector<ParsedSpan> out;
  const std::string name_key = "{\"name\":\"";
  const std::string args_key = "\"args\":{\"trace\":";
  std::size_t pos = 0;
  while ((pos = json.find(name_key, pos)) != std::string::npos) {
    ParsedSpan ev;
    const std::size_t name_begin = pos + name_key.size();
    const std::size_t name_end = json.find('"', name_begin);
    if (name_end == std::string::npos) break;
    ev.name = json.substr(name_begin, name_end - name_begin);
    const std::size_t next = json.find(name_key, pos + 1);
    const std::size_t args = json.find(args_key, pos);
    if (args != std::string::npos &&
        (next == std::string::npos || args < next)) {
      unsigned long long trace = 0;
      unsigned long long span = 0;
      unsigned long long parent = 0;
      if (std::sscanf(json.c_str() + args,
                      "\"args\":{\"trace\":%llu,\"span\":%llu,\"parent\":%llu",
                      &trace, &span, &parent) == 3) {
        ev.trace = trace;
        ev.span = span;
        ev.parent = parent;
      }
    }
    out.push_back(std::move(ev));
    pos = name_end;
  }
  return out;
}

const ParsedSpan* find_span(const std::vector<ParsedSpan>& spans,
                            const std::string& name, std::uint64_t trace) {
  for (const ParsedSpan& s : spans) {
    if (s.name == name && s.trace == trace) return &s;
  }
  return nullptr;
}

TEST_F(SystemFixture, TraceSpansChainAcrossAllSixStages) {
  // One SubmitDemand must render as ONE trace across client submit ->
  // controller queue wait -> batch admission -> admission offer ->
  // scheduling round -> broadcast -> broker apply, stitched through the
  // frame-header trace context (DESIGN.md Sec 9.6).
  obs::Tracer::global().clear();
  Broker broker(1, controller->port());
  broker.start();
  UserClient user(controller->port());
  ASSERT_TRUE(user.submit(make_demand(1, 0, 150.0, 0.99)));
  ASSERT_TRUE(wait_for_broker(
      broker, [&] { return broker.enforced_total(1, 0) > 0.0; }));

  // The root client.submit span lives in THIS thread's ring.
  std::uint64_t trace_id = 0;
  std::uint64_t submit_span = 0;
  for (const auto& e : obs::Tracer::global().thread_ring().events()) {
    if (std::string(e.name) == "client.submit") {
      trace_id = e.trace_id;
      submit_span = e.span_id;
      EXPECT_EQ(e.parent_id, 0u) << "client.submit must root the trace";
    }
  }
  ASSERT_NE(trace_id, 0u);
  ASSERT_NE(submit_span, 0u);

  // The controller/broker-side spans close on their own threads; wait for
  // the full chain to appear in the global export.
  std::vector<ParsedSpan> spans;
  const char* kStages[] = {"controller.queue_wait",
                           "controller.batch_admission",
                           "admission.offer_batch",
                           "scheduler.schedule",
                           "controller.broadcast",
                           "broker.apply"};
  ASSERT_TRUE(wait_for([&] {
    spans = parse_spans(obs::Tracer::global().chrome_json());
    for (const char* stage : kStages) {
      if (find_span(spans, stage, trace_id) == nullptr) return false;
    }
    return true;
  })) << obs::Tracer::global().chrome_json();

  const ParsedSpan* queue_wait =
      find_span(spans, "controller.queue_wait", trace_id);
  const ParsedSpan* batch =
      find_span(spans, "controller.batch_admission", trace_id);
  const ParsedSpan* offer = find_span(spans, "admission.offer_batch", trace_id);
  const ParsedSpan* schedule =
      find_span(spans, "scheduler.schedule", trace_id);
  const ParsedSpan* broadcast =
      find_span(spans, "controller.broadcast", trace_id);
  const ParsedSpan* apply = find_span(spans, "broker.apply", trace_id);
  ASSERT_TRUE(queue_wait && batch && offer && schedule && broadcast && apply);

  // Parentage: submit -> queue_wait -> batch_admission -> offer_batch;
  // broadcast hangs off the batch span and the broker's apply span parents
  // under the broadcast context that rode the allocation frames.
  EXPECT_EQ(queue_wait->parent, submit_span);
  EXPECT_EQ(batch->parent, queue_wait->span);
  EXPECT_EQ(offer->parent, batch->span);
  EXPECT_EQ(broadcast->parent, batch->span);
  EXPECT_EQ(apply->parent, broadcast->span);
  // The scheduling round runs inside the batch (directly, or from the
  // post-batch reschedule), so it must chain under one of those two spans.
  EXPECT_TRUE(schedule->parent == batch->span ||
              schedule->parent == offer->span)
      << "scheduler.schedule parent " << schedule->parent;
  broker.stop();
}

/// Extracts the first top-level "availability" number from a ledger row
/// ("min_availability" never matches: the key is quoted in full).
double availability_of(const std::string& slo_json) {
  const std::string key = "\"availability\":";
  const std::size_t pos = slo_json.find(key);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(slo_json.c_str() + pos + key.size(), nullptr);
}

TEST_F(SystemFixture, SloLedgerTracksLinkFlapOverRpc) {
  Broker broker(0, controller->port());
  broker.start();
  UserClient user(controller->port());
  ASSERT_TRUE(user.submit(make_demand(1, 0, 300.0, 0.99)));
  ASSERT_TRUE(wait_for_broker(
      broker, [&] { return broker.enforced_total(1, 0) > 0.0; }));

  // Freshly admitted and allocated: a full error budget.
  std::string payload = user.slo("ledger");
  EXPECT_NE(payload.find("\"id\":1"), std::string::npos) << payload;
  EXPECT_NE(payload.find("\"state\":\"allocated\""), std::string::npos);
  EXPECT_DOUBLE_EQ(availability_of(payload), 1.0);

  // Kill every link any tunnel of pair 0 crosses: the backup planner has
  // nowhere to route, so the demand MUST degrade (a single-link failure is
  // healed by the backup plan and never eats budget).
  std::set<LinkId> links;
  for (const Tunnel& t : catalog.tunnels(0)) {
    links.insert(t.links.begin(), t.links.end());
  }
  ASSERT_GE(links.size(), 2u);
  for (const LinkId l : links) broker.report_link(l, false);
  ASSERT_TRUE(wait_for([&] {
    return user.slo("ledger").find("\"state\":\"degraded\"") !=
           std::string::npos;
  }));

  // Repair: the demand recovers with a dented availability in (0, 1).
  for (const LinkId l : links) broker.report_link(l, true);
  ASSERT_TRUE(wait_for([&] {
    payload = user.slo("ledger");
    return payload.find("\"state\":\"recovered\"") != std::string::npos;
  }));
  const double avail = availability_of(payload);
  EXPECT_GT(avail, 0.0);
  EXPECT_LT(avail, 1.0);
  EXPECT_NE(payload.find("\"budget_burn\":"), std::string::npos);

  // Withdraw freezes the row but keeps it for post-mortem snapshots.
  user.withdraw(1);
  ASSERT_TRUE(wait_for([&] {
    return user.slo("ledger").find("\"state\":\"withdrawn\"") !=
           std::string::npos;
  }));

  // The combined payload carries both sections for the dashboard.
  const std::string combined = user.slo();
  EXPECT_NE(combined.find("\"ledger\":"), std::string::npos);
  EXPECT_NE(combined.find("\"series\":"), std::string::npos);
  EXPECT_NE(combined.find("\"tenants\":"), std::string::npos);
  broker.stop();
}

}  // namespace
}  // namespace bate
