// Tests for the token-bucket rate limiters (Sec 4): the broker's bandwidth
// enforcer and the controller's per-tenant request limiter at the admission
// ingress (DESIGN.md Sec 10).
#include <gtest/gtest.h>

#include <cstdint>

#include "system/rate_limiter.h"

namespace bate {
namespace {

TEST(TokenBucket, StartsFullAndRefills) {
  TokenBucket bucket(100.0, 10.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 10.0);
  EXPECT_TRUE(bucket.try_consume(10.0));
  EXPECT_FALSE(bucket.try_consume(0.1));
  bucket.advance(0.05);  // 100 Mbps * 0.05 s = 5 Mb
  EXPECT_NEAR(bucket.tokens(), 5.0, 1e-12);
  EXPECT_TRUE(bucket.try_consume(5.0));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket bucket(100.0, 10.0);
  bucket.advance(100.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 10.0);
}

TEST(TokenBucket, SustainedRateIsClipped) {
  // Offer 200 Mbps against a 100 Mbps bucket for 10 seconds: admitted
  // volume must approach 100 Mbps * 10 s (+ the initial burst).
  TokenBucket bucket(100.0, 10.0);
  double admitted = 0.0;
  for (int tick = 0; tick < 100; ++tick) {
    bucket.advance(0.1);
    admitted += bucket.consume_up_to(20.0);  // 200 Mbps in 0.1 s slices
  }
  // Each 0.1 s tick refills at most 10 Mb (burst-capped), so the admitted
  // volume equals the enforced rate x time; the initial burst is absorbed
  // into the first tick's cap.
  EXPECT_NEAR(admitted, 100.0 * 10.0, 1.0);
}

TEST(TokenBucket, PartialShaping) {
  TokenBucket bucket(10.0, 2.0);
  EXPECT_DOUBLE_EQ(bucket.consume_up_to(5.0), 2.0);
  EXPECT_DOUBLE_EQ(bucket.consume_up_to(5.0), 0.0);
}

TEST(TokenBucket, RejectsBadArguments) {
  EXPECT_THROW(TokenBucket(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, 0.0), std::invalid_argument);
  TokenBucket bucket(1.0, 1.0);
  EXPECT_THROW(bucket.advance(-1.0), std::invalid_argument);
  EXPECT_THROW(bucket.set_rate(-2.0), std::invalid_argument);
}

TEST(RequestRateLimiter, BurstThenBackoffHint) {
  RequestRateLimiter limiter(10.0, 2.0);
  std::int64_t now = 1'000'000;
  EXPECT_DOUBLE_EQ(limiter.acquire(1, now), 0.0);
  EXPECT_DOUBLE_EQ(limiter.acquire(1, now), 0.0);
  // Bucket empty: one token at 10/s is 100 ms away.
  const double retry_ms = limiter.acquire(1, now);
  EXPECT_NEAR(retry_ms, 100.0, 1e-9);
  // Once the hinted backoff elapses the tenant is served again.
  now += static_cast<std::int64_t>(retry_ms * 1e3) + 1;
  EXPECT_DOUBLE_EQ(limiter.acquire(1, now), 0.0);
}

TEST(RequestRateLimiter, TenantsAreIsolated) {
  RequestRateLimiter limiter(1.0);  // burst defaults to max(rate, 1) = 1
  EXPECT_DOUBLE_EQ(limiter.acquire(1, 0), 0.0);
  EXPECT_GT(limiter.acquire(1, 0), 0.0);
  // A fresh tenant starts with its own full bucket, untouched by tenant 1's
  // exhaustion.
  EXPECT_DOUBLE_EQ(limiter.acquire(2, 0), 0.0);
  EXPECT_EQ(limiter.tenant_count(), 2u);
}

TEST(RequestRateLimiter, SustainedRateIsEnforced) {
  // One request per millisecond for a second against 100/s with a one-token
  // bucket: roughly the rate is granted (ten 0.1-token refills sum to just
  // under 1.0 in floating point, so a grant cycle can run one tick long —
  // the limiter clips a little early, never over).
  RequestRateLimiter limiter(100.0, 1.0);
  std::int64_t now = 0;
  int granted = 0;
  for (int i = 0; i < 1000; ++i) {
    if (limiter.acquire(7, now) == 0.0) ++granted;
    now += 1000;
  }
  EXPECT_GE(granted, 90);
  EXPECT_LE(granted, 101);
}

TEST(RequestRateLimiter, ClockMovingBackwardIsTolerated) {
  RequestRateLimiter limiter(10.0, 1.0);
  EXPECT_DOUBLE_EQ(limiter.acquire(1, 1'000'000), 0.0);
  // now < last seen: no refill, no crash — the bucket just stays drained.
  EXPECT_GT(limiter.acquire(1, 500'000), 0.0);
}

TEST(RequestRateLimiter, RejectsBadRate) {
  EXPECT_THROW(RequestRateLimiter(0.0), std::invalid_argument);
  EXPECT_THROW(RequestRateLimiter(-3.0, 1.0), std::invalid_argument);
}

TEST(BandwidthEnforcer, InstallsAndShapesPerTunnel) {
  BandwidthEnforcer enforcer(1.0);  // 1 s burst window
  enforcer.update(7, 2, {100.0, 50.0, 0.0});
  EXPECT_EQ(enforcer.row_count(), 1u);

  // Tunnel 0 admits up to its burst (100 Mb), tunnel 2 admits nothing.
  EXPECT_NEAR(enforcer.shape(7, 2, 0, 250.0), 100.0, 1e-9);
  EXPECT_NEAR(enforcer.shape(7, 2, 2, 10.0), 0.001, 1e-9);  // floor depth
  // Unknown rows drop everything.
  EXPECT_DOUBLE_EQ(enforcer.shape(9, 9, 0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(enforcer.shape(7, 2, 5, 10.0), 0.0);
}

TEST(BandwidthEnforcer, UpdateReplacesRates) {
  BandwidthEnforcer enforcer(1.0);
  enforcer.update(1, 0, {10.0});
  EXPECT_NEAR(enforcer.shape(1, 0, 0, 100.0), 10.0, 1e-9);
  enforcer.update(1, 0, {40.0});
  EXPECT_NEAR(enforcer.shape(1, 0, 0, 100.0), 40.0, 1e-9);
  enforcer.remove(1, 0);
  EXPECT_DOUBLE_EQ(enforcer.shape(1, 0, 0, 100.0), 0.0);
}

TEST(BandwidthEnforcer, AdvanceRefillsEveryRow) {
  BandwidthEnforcer enforcer(0.1);
  enforcer.update(1, 0, {100.0});
  enforcer.update(2, 1, {200.0});
  EXPECT_NEAR(enforcer.shape(1, 0, 0, 1000.0), 10.0, 1e-9);   // burst
  EXPECT_NEAR(enforcer.shape(2, 1, 0, 1000.0), 20.0, 1e-9);
  enforcer.advance(0.05);
  EXPECT_NEAR(enforcer.shape(1, 0, 0, 1000.0), 5.0, 1e-9);
  EXPECT_NEAR(enforcer.shape(2, 1, 0, 1000.0), 10.0, 1e-9);
}

}  // namespace
}  // namespace bate
