// Tests for the token-bucket bandwidth enforcer (Sec 4).
#include <gtest/gtest.h>

#include "system/rate_limiter.h"

namespace bate {
namespace {

TEST(TokenBucket, StartsFullAndRefills) {
  TokenBucket bucket(100.0, 10.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 10.0);
  EXPECT_TRUE(bucket.try_consume(10.0));
  EXPECT_FALSE(bucket.try_consume(0.1));
  bucket.advance(0.05);  // 100 Mbps * 0.05 s = 5 Mb
  EXPECT_NEAR(bucket.tokens(), 5.0, 1e-12);
  EXPECT_TRUE(bucket.try_consume(5.0));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket bucket(100.0, 10.0);
  bucket.advance(100.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 10.0);
}

TEST(TokenBucket, SustainedRateIsClipped) {
  // Offer 200 Mbps against a 100 Mbps bucket for 10 seconds: admitted
  // volume must approach 100 Mbps * 10 s (+ the initial burst).
  TokenBucket bucket(100.0, 10.0);
  double admitted = 0.0;
  for (int tick = 0; tick < 100; ++tick) {
    bucket.advance(0.1);
    admitted += bucket.consume_up_to(20.0);  // 200 Mbps in 0.1 s slices
  }
  // Each 0.1 s tick refills at most 10 Mb (burst-capped), so the admitted
  // volume equals the enforced rate x time; the initial burst is absorbed
  // into the first tick's cap.
  EXPECT_NEAR(admitted, 100.0 * 10.0, 1.0);
}

TEST(TokenBucket, PartialShaping) {
  TokenBucket bucket(10.0, 2.0);
  EXPECT_DOUBLE_EQ(bucket.consume_up_to(5.0), 2.0);
  EXPECT_DOUBLE_EQ(bucket.consume_up_to(5.0), 0.0);
}

TEST(TokenBucket, RejectsBadArguments) {
  EXPECT_THROW(TokenBucket(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, 0.0), std::invalid_argument);
  TokenBucket bucket(1.0, 1.0);
  EXPECT_THROW(bucket.advance(-1.0), std::invalid_argument);
  EXPECT_THROW(bucket.set_rate(-2.0), std::invalid_argument);
}

TEST(BandwidthEnforcer, InstallsAndShapesPerTunnel) {
  BandwidthEnforcer enforcer(1.0);  // 1 s burst window
  enforcer.update(7, 2, {100.0, 50.0, 0.0});
  EXPECT_EQ(enforcer.row_count(), 1u);

  // Tunnel 0 admits up to its burst (100 Mb), tunnel 2 admits nothing.
  EXPECT_NEAR(enforcer.shape(7, 2, 0, 250.0), 100.0, 1e-9);
  EXPECT_NEAR(enforcer.shape(7, 2, 2, 10.0), 0.001, 1e-9);  // floor depth
  // Unknown rows drop everything.
  EXPECT_DOUBLE_EQ(enforcer.shape(9, 9, 0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(enforcer.shape(7, 2, 5, 10.0), 0.0);
}

TEST(BandwidthEnforcer, UpdateReplacesRates) {
  BandwidthEnforcer enforcer(1.0);
  enforcer.update(1, 0, {10.0});
  EXPECT_NEAR(enforcer.shape(1, 0, 0, 100.0), 10.0, 1e-9);
  enforcer.update(1, 0, {40.0});
  EXPECT_NEAR(enforcer.shape(1, 0, 0, 100.0), 40.0, 1e-9);
  enforcer.remove(1, 0);
  EXPECT_DOUBLE_EQ(enforcer.shape(1, 0, 0, 100.0), 0.0);
}

TEST(BandwidthEnforcer, AdvanceRefillsEveryRow) {
  BandwidthEnforcer enforcer(0.1);
  enforcer.update(1, 0, {100.0});
  enforcer.update(2, 1, {200.0});
  EXPECT_NEAR(enforcer.shape(1, 0, 0, 1000.0), 10.0, 1e-9);   // burst
  EXPECT_NEAR(enforcer.shape(2, 1, 0, 1000.0), 20.0, 1e-9);
  enforcer.advance(0.05);
  EXPECT_NEAR(enforcer.shape(1, 0, 0, 1000.0), 5.0, 1e-9);
  EXPECT_NEAR(enforcer.shape(2, 1, 0, 1000.0), 10.0, 1e-9);
}

}  // namespace
}  // namespace bate
