// Equivalence of the fast simplex path (partial pricing, cached reduced
// costs, eta-file basis) against the reference mode (full Dantzig pricing
// over exact reduced costs, refactorization every iteration — the
// pre-overhaul behaviour kept as SimplexOptions::reference_mode).
//
// Both paths must agree on the feasibility verdict on every instance and,
// when optimal, on the objective to tight relative tolerance. Iteration
// counts may differ (different pivot sequences are fine; the optimum is
// unique in value, not in basis).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>

#include "core/admission.h"
#include "core/recovery.h"
#include "core/scheduling.h"
#include "routing/tunnels.h"
#include "solver/branch_bound.h"
#include "solver/presolve.h"
#include "solver/simplex.h"
#include "topology/catalog.h"
#include "util/thread_pool.h"
#include "workload/demand.h"

namespace bate {
namespace {

constexpr double kRelTol = 1e-6;

void expect_equivalent(const Model& model, const std::string& what) {
  SimplexOptions fast;
  SimplexOptions ref;
  ref.reference_mode = true;
  const Solution a = solve_lp(model, fast);
  const Solution b = solve_lp(model, ref);
  ASSERT_EQ(a.status, b.status) << what;
  if (a.status == SolveStatus::kOptimal) {
    const double denom = std::max(1.0, std::abs(b.objective));
    EXPECT_LE(std::abs(a.objective - b.objective) / denom, kRelTol) << what;
  }
}

/// Random bounded LP with a mix of row relations, bound shapes and senses.
/// Constructed so that all three verdicts (optimal / infeasible / unbounded)
/// occur across the seed range.
Model random_lp(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> nvars_d(2, 12);
  std::uniform_int_distribution<int> nrows_d(1, 14);
  std::uniform_real_distribution<double> coef_d(-4.0, 4.0);
  std::uniform_real_distribution<double> unit_d(0.0, 1.0);

  Model m;
  if (unit_d(rng) < 0.5) m.set_sense(Sense::kMaximize);
  const int n = nvars_d(rng);
  for (int j = 0; j < n; ++j) {
    const double lo = unit_d(rng) < 0.3 ? coef_d(rng) * 0.5 : 0.0;
    double hi = kInfinity;
    if (unit_d(rng) < 0.6) hi = lo + std::abs(coef_d(rng)) * 3.0;
    m.add_variable(std::min(lo, hi), hi, coef_d(rng));
  }
  const int rows = nrows_d(rng);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (unit_d(rng) < 0.5) terms.push_back({j, coef_d(rng)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double roll = unit_d(rng);
    const Relation rel = roll < 0.6   ? Relation::kLessEqual
                         : roll < 0.85 ? Relation::kGreaterEqual
                                       : Relation::kEqual;
    m.add_constraint(std::move(terms), rel, coef_d(rng) * 2.0);
  }
  return m;
}

class SimplexEquivalenceRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexEquivalenceRandom, FastMatchesReference) {
  const int seed = GetParam();
  // 10 instances per ctest shard x 20 shards = 200 seeded random LPs.
  for (int k = 0; k < 10; ++k) {
    const std::uint64_t s =
        9000u + static_cast<std::uint64_t>(seed) * 10u +
        static_cast<std::uint64_t>(k);
    expect_equivalent(random_lp(s), "random_lp seed " + std::to_string(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexEquivalenceRandom,
                         ::testing::Range(0, 20));

/// A small-topology demand set with mixed availability targets, the same
/// shape the schedulers produce in production.
std::vector<Demand> small_demands(const TunnelCatalog& catalog,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pair_d(0, catalog.pair_count() - 1);
  std::uniform_real_distribution<double> mbps_d(5.0, 60.0);
  std::uniform_real_distribution<double> unit_d(0.0, 1.0);
  std::vector<Demand> demands;
  for (int i = 0; i < 8; ++i) {
    Demand d;
    d.id = i;
    d.pairs.push_back({pair_d(rng), mbps_d(rng)});
    if (unit_d(rng) < 0.25) d.pairs.push_back({pair_d(rng), mbps_d(rng)});
    const double roll = unit_d(rng);
    d.availability_target = roll < 0.3 ? 0.0 : (roll < 0.7 ? 0.99 : 0.999);
    demands.push_back(std::move(d));
  }
  return demands;
}

TEST(SimplexEquivalence, SchedulingModels) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto demands = small_demands(catalog, seed);
    expect_equivalent(sched.build_schedule_model(demands),
                      "schedule seed " + std::to_string(seed));
  }
}

TEST(SimplexEquivalence, AdmissionModels) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const auto demands = small_demands(catalog, seed);
    // The admission MILP's LP relaxation (integrality markers ignored by
    // solve_lp).
    expect_equivalent(build_admission_model(sched, demands),
                      "admission seed " + std::to_string(seed));
  }
}

// --- Warm-started re-solves (solve_lp WarmStart API) ----------------------

Solution reference_solve(const Model& model) {
  SimplexOptions ref;
  ref.reference_mode = true;
  return solve_lp(model, ref);
}

void expect_matches_reference(const Solution& got, const Model& model,
                              const std::string& what) {
  const Solution want = reference_solve(model);
  ASSERT_EQ(got.status, want.status) << what;
  if (want.status == SolveStatus::kOptimal) {
    const double denom = std::max(1.0, std::abs(want.objective));
    EXPECT_LE(std::abs(got.objective - want.objective) / denom, kRelTol)
        << what;
  }
}

TEST(SimplexWarmStart, SameModelResolveReusesBasis) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  const Model model = sched.build_schedule_model(small_demands(catalog, 31));

  WarmStart warm;
  const Solution cold = solve_lp(model, {}, &warm);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_FALSE(warm.used);  // nothing to reuse on the first solve
  ASSERT_TRUE(warm.basis.compatible_with(model));

  const Solution hot = solve_lp(model, {}, &warm);
  EXPECT_TRUE(warm.used);
  ASSERT_EQ(hot.status, SolveStatus::kOptimal);
  // Restarting from the final basis of the identical model converges
  // without re-doing the cold solve's pivoting work.
  EXPECT_LE(hot.pivots, cold.pivots);
  expect_matches_reference(hot, model, "same-model warm resolve");
}

TEST(SimplexWarmStart, PerturbedResolvesMatchReference) {
  // The production pattern: period t+1 re-solves a model with the same
  // shape but drifted objective/bounds, warm-started from period t's basis.
  int used = 0;
  for (std::uint64_t seed = 9100; seed < 9130; ++seed) {
    Model model = random_lp(seed);
    WarmStart warm;
    solve_lp(model, {}, &warm);
    ASSERT_TRUE(warm.basis.compatible_with(model)) << seed;

    Model drifted = model;
    std::mt19937_64 rng(seed ^ 0xabcdefull);
    std::uniform_real_distribution<double> jitter(-0.2, 0.2);
    for (int j = 0; j < drifted.variable_count(); ++j) {
      Variable& v = drifted.variable(j);
      v.objective += jitter(rng);
      v.lower -= std::abs(jitter(rng));  // widen: keeps lower <= upper
      if (v.upper != kInfinity) v.upper += std::abs(jitter(rng));
    }
    const Solution hot = solve_lp(drifted, {}, &warm);
    if (warm.used) ++used;
    expect_matches_reference(hot, drifted,
                             "perturbed seed " + std::to_string(seed));
  }
  // The warm path must actually engage on same-shape re-solves, not
  // silently fall back cold across the whole suite.
  EXPECT_GT(used, 15);
}

TEST(SimplexWarmStart, StaleBasisFallsBackCold) {
  Model a = random_lp(9200);
  WarmStart warm;
  solve_lp(a, {}, &warm);

  Model b = random_lp(9201);
  if (b.variable_count() == a.variable_count() &&
      b.constraint_count() == a.constraint_count()) {
    b.add_variable(0.0, 1.0, 0.0);  // force a shape mismatch
  }
  ASSERT_FALSE(warm.basis.compatible_with(b));
  const Solution sol = solve_lp(b, {}, &warm);
  EXPECT_FALSE(warm.used);
  // The stale basis was replaced by b's final basis.
  EXPECT_TRUE(warm.basis.compatible_with(b));
  expect_matches_reference(sol, b, "stale-basis fallback");
}

TEST(SimplexWarmStart, ReferenceModeIgnoresWarmStart) {
  const Model model = random_lp(9210);
  WarmStart warm;
  solve_lp(model, {}, &warm);
  ASSERT_TRUE(warm.basis.compatible_with(model));

  SimplexOptions ref;
  ref.reference_mode = true;
  const Solution sol = solve_lp(model, ref, &warm);
  EXPECT_FALSE(warm.used);  // reference mode never takes the warm path
  ASSERT_EQ(sol.status, reference_solve(model).status);
}

// --- Branch & bound: warm-started nodes and the parallel driver -----------

/// Random bounded feasible MILP (binaries plus a few continuous vars, all
/// coefficients positive, <= rows): x = 0 is always feasible, so every
/// instance has a unique optimal objective both drivers must reach.
Model random_milp(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> nbin_d(3, 8);
  std::uniform_int_distribution<int> ncont_d(0, 3);
  std::uniform_real_distribution<double> coef_d(0.5, 5.0);
  std::uniform_real_distribution<double> unit_d(0.0, 1.0);

  Model m;
  m.set_sense(Sense::kMaximize);
  const int nb = nbin_d(rng);
  const int nc = ncont_d(rng);
  for (int j = 0; j < nb; ++j) m.add_binary(coef_d(rng));
  for (int j = 0; j < nc; ++j) {
    m.add_variable(0.0, coef_d(rng), 0.3 * coef_d(rng));
  }
  const int n = nb + nc;
  const int rows = 2 + static_cast<int>(rng() % 4);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (unit_d(rng) < 0.7) terms.push_back({j, coef_d(rng)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    m.add_constraint(std::move(terms), Relation::kLessEqual,
                     coef_d(rng) * n / 2.5);
  }
  return m;
}

TEST(SimplexWarmStart, DualSimplexServesBoundTightenedResolves) {
  // The branch & bound child pattern: the parent's optimal basis with one
  // variable bound tightened past its LP value is primal-infeasible but
  // dual-feasible. The dual simplex must take those restarts (dual_pivots
  // engages across the suite) and land on exactly the reference answer.
  SimplexOptions opt;
  opt.presolve = false;  // keep the child model the same shape as the parent
  long dual_pivots = 0;
  int tightened = 0;
  for (std::uint64_t seed = 9300; seed < 9340; ++seed) {
    const Model model = random_milp(seed);  // bounded feasible relaxations
    WarmStart warm;
    const Solution relax = solve_lp(model, opt, &warm);
    if (relax.status != SolveStatus::kOptimal) continue;

    int var = -1;
    double slack = 0.05;  // headroom above the lower bound needed to tighten
    for (int j = 0; j < model.variable_count(); ++j) {
      const double room =
          relax.x[static_cast<std::size_t>(j)] - model.variable(j).lower;
      if (room > slack) {
        slack = room;
        var = j;
      }
    }
    if (var < 0) continue;
    Model child = model;
    child.variable(var).upper =
        relax.x[static_cast<std::size_t>(var)] - 0.5 * slack;  // cuts off x*
    ++tightened;

    const Solution hot = solve_lp(child, opt, &warm);
    EXPECT_TRUE(warm.used) << "seed " << seed;
    dual_pivots += hot.dual_pivots;
    EXPECT_LE(hot.dual_pivots, hot.pivots) << "seed " << seed;
    expect_matches_reference(hot, child,
                             "dual-restart seed " + std::to_string(seed));
  }
  // The suite must actually exercise the dual path, not fall back to the
  // composite repair everywhere.
  ASSERT_GT(tightened, 10);
  EXPECT_GT(dual_pivots, 0);
}

TEST(BranchBound, WarmStartedNodesMatchColdAndReference) {
  long warm_nodes = 0;
  for (int k = 0; k < 100; ++k) {
    const std::uint64_t s = 31000u + static_cast<std::uint64_t>(k);
    const Model m = random_milp(s);

    BranchBoundOptions warm_opt;  // warm_start_nodes defaults to true
    BranchBoundOptions cold_opt;
    cold_opt.warm_start_nodes = false;
    BranchBoundOptions ref_opt;
    ref_opt.warm_start_nodes = false;
    ref_opt.lp.reference_mode = true;

    BranchBoundStats warm_st;
    const Solution a = solve_milp(m, warm_opt, nullptr, &warm_st);
    const Solution b = solve_milp(m, cold_opt);
    const Solution r = solve_milp(m, ref_opt);
    warm_nodes += warm_st.warm_started_nodes;

    ASSERT_EQ(a.status, SolveStatus::kOptimal) << "seed " << s;
    ASSERT_EQ(b.status, SolveStatus::kOptimal) << "seed " << s;
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << s;
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << s;
    EXPECT_NEAR(a.objective, r.objective, 1e-6) << "seed " << s;
    ASSERT_EQ(a.x.size(), b.x.size()) << "seed " << s;
    for (std::size_t j = 0; j < a.x.size(); ++j) {
      EXPECT_NEAR(a.x[j], b.x[j], 1e-5) << "seed " << s << " var " << j;
    }
  }
  // Parent bases must actually seed child relaxations across the suite.
  EXPECT_GT(warm_nodes, 0);
}

TEST(BranchBound, NodeMemoryStaysDeltaSized) {
  // Every node beyond the root carries exactly one bound delta; a full
  // bound-vector copy per node (the pre-warm-start implementation) would
  // blow this count up by the tree depth. The static_assert on sizeof(Node)
  // in branch_bound.cpp is the compile-time half of this guard.
  long branched_instances = 0;
  for (int k = 0; k < 20; ++k) {
    const Model m = random_milp(31500u + static_cast<std::uint64_t>(k));
    BranchBoundStats st;
    const Solution sol = solve_milp(m, {}, nullptr, &st);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal) << k;
    EXPECT_EQ(st.bound_deltas_allocated, st.nodes_created - 1) << k;
    if (st.nodes_created > 1) ++branched_instances;
  }
  // The suite must contain instances that actually branch.
  EXPECT_GT(branched_instances, 0);
}

TEST(BranchBound, RootWarmStartRoundTrip) {
  const Model m = random_milp(31007);
  WarmStart warm;
  const Solution a = solve_milp(m, {}, &warm);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  EXPECT_FALSE(warm.used);  // first root relaxation had no basis
  ASSERT_TRUE(warm.basis.compatible_with(m));

  const Solution b = solve_milp(m, {}, &warm);
  EXPECT_TRUE(warm.used);  // second root relaxation accepted the basis
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(BranchBoundParallel, MatchesSerialOnSeededSuite) {
  ThreadPool pool(4);
  for (int k = 0; k < 100; ++k) {
    const std::uint64_t s = 32000u + static_cast<std::uint64_t>(k);
    const Model m = random_milp(s);

    BranchBoundOptions serial_opt;
    BranchBoundOptions par_opt;
    par_opt.pool = &pool;
    par_opt.parallel_min_rows = 0;  // force the parallel driver: these
                                    // instances sit below the serial cutoff

    BranchBoundStats par_st;
    const Solution a = solve_milp(m, serial_opt);
    const Solution b = solve_milp(m, par_opt, nullptr, &par_st);
    EXPECT_TRUE(par_st.used_parallel) << "seed " << s;
    ASSERT_EQ(a.status, SolveStatus::kOptimal) << "seed " << s;
    ASSERT_EQ(b.status, SolveStatus::kOptimal) << "seed " << s;
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << s;
    ASSERT_EQ(a.x.size(), b.x.size()) << "seed " << s;
    for (std::size_t j = 0; j < a.x.size(); ++j) {
      EXPECT_NEAR(a.x[j], b.x[j], 1e-5) << "seed " << s << " var " << j;
    }
  }
}

TEST(BranchBoundParallel, NestedCallFallsBackToSerial) {
  // solve_milp invoked from inside the same pool (a Campaign worker calling
  // admission checks, say) must not recurse into run_parallel; the nested
  // call detects it is on a pool worker and runs serially.
  ThreadPool pool(2);
  const Model m = random_milp(32050);
  const Solution want = solve_milp(m);
  ASSERT_EQ(want.status, SolveStatus::kOptimal);

  std::atomic<int> ok{0};
  pool.parallel_for(4, [&](int) {
    BranchBoundOptions opt;
    opt.pool = &pool;
    opt.parallel_min_rows = 0;  // the nested-call guard, not the size
                                // cutoff, must be what keeps this serial
    const Solution got = solve_milp(m, opt);
    if (got.status == SolveStatus::kOptimal &&
        std::abs(got.objective - want.objective) < 1e-6) {
      ok++;
    }
  });
  EXPECT_EQ(ok.load(), 4);
}

TEST(SimplexEquivalence, SolutionCarriesWorkCounters) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  const auto demands = small_demands(catalog, 21);
  const Solution sol = solve_lp(sched.build_schedule_model(demands), {});
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_GT(sol.iterations, 0);
  EXPECT_GT(sol.pivots, 0);
  EXPECT_LE(sol.pivots, sol.iterations);
}

// --- Presolve: reductions must be invisible in every result --------------

/// Verifies the recovered duals certify optimality of `sol` on the FULL
/// model: row duals sign-valid for their relation, reduced costs sign-valid
/// for the bound they price, and the dual objective (y'b plus bound
/// contributions of the reduced costs) equal to the primal optimum. This is
/// strong duality checked directly — a presolved solve has to reconstruct
/// duals for rows the simplex never saw, and this catches any wrong
/// reconstruction.
void expect_strong_duality(const Model& model, const Solution& sol,
                           const std::string& what) {
  const int n = model.variable_count();
  const int m = model.constraint_count();
  ASSERT_EQ(sol.duals.size(), static_cast<std::size_t>(m)) << what;
  const bool maximize = model.sense() == Sense::kMaximize;

  // Work in min sense (flip objective and duals together for max models).
  std::vector<double> y(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    y[static_cast<std::size_t>(i)] =
        maximize ? -sol.duals[static_cast<std::size_t>(i)]
                 : sol.duals[static_cast<std::size_t>(i)];
    switch (model.constraint(i).relation) {
      case Relation::kLessEqual:
        EXPECT_LE(y[static_cast<std::size_t>(i)], 1e-6)
            << what << " row " << i;
        break;
      case Relation::kGreaterEqual:
        EXPECT_GE(y[static_cast<std::size_t>(i)], -1e-6)
            << what << " row " << i;
        break;
      case Relation::kEqual:
        break;  // any sign
    }
  }
  std::vector<double> d(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double c = model.variable(j).objective;
    d[static_cast<std::size_t>(j)] = maximize ? -c : c;
  }
  double dual_obj = 0.0;
  for (int i = 0; i < m; ++i) {
    const Constraint& c = model.constraint(i);
    dual_obj += y[static_cast<std::size_t>(i)] * c.rhs;
    for (const Term& t : c.terms) {
      d[static_cast<std::size_t>(t.var)] -=
          y[static_cast<std::size_t>(i)] * t.coef;
    }
  }
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    const double dj = d[static_cast<std::size_t>(j)];
    if (dj > 0.0) {
      dual_obj += dj * v.lower;  // lower bounds are finite by contract
    } else if (dj < 0.0) {
      if (v.upper == kInfinity) {
        // A strictly negative reduced cost on an unbounded column would
        // mean the certificate is broken (beyond simplex tolerance noise).
        EXPECT_LE(-dj, 1e-6) << what << " var " << j;
      } else {
        dual_obj += dj * v.upper;
      }
    }
  }
  const double prim = maximize ? -sol.objective : sol.objective;
  EXPECT_NEAR(dual_obj, prim, 1e-5 * (1.0 + std::abs(prim))) << what;
}

void expect_presolve_equivalent(const Model& model, const std::string& what) {
  const Solution ref = reference_solve(model);
  const Solution fast = solve_lp(model);  // presolve on by default
  ASSERT_EQ(fast.status, ref.status) << what;
  if (ref.status != SolveStatus::kOptimal) return;
  const double denom = std::max(1.0, std::abs(ref.objective));
  EXPECT_LE(std::abs(fast.objective - ref.objective) / denom, kRelTol) << what;
  // The expanded primal point must be feasible for the FULL model, not just
  // the reduction the simplex saw.
  EXPECT_TRUE(model.feasible(fast.x, 1e-6)) << what;
  expect_strong_duality(model, fast, what);
}

class PresolveEquivalenceRandom : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalenceRandom, MatchesReferenceWithValidDuals) {
  // The same 200 seeded LPs as the fast-path equivalence suite, but now
  // also checking full-model primal feasibility and the recovered dual
  // certificate on every optimal instance.
  const int seed = GetParam();
  for (int k = 0; k < 10; ++k) {
    const std::uint64_t s =
        9000u + static_cast<std::uint64_t>(seed) * 10u +
        static_cast<std::uint64_t>(k);
    expect_presolve_equivalent(random_lp(s),
                               "presolve random_lp seed " + std::to_string(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalenceRandom,
                         ::testing::Range(0, 20));

TEST(PresolveEquivalence, NonDefaultOptionsMatchReference) {
  // Geometric-mean scaling and LP-mode lower-bound lifting are off by
  // default (presolve.h explains the measurements); this keeps both code
  // paths — and their postsolve transfers — under the same equivalence
  // bar as the default configuration.
  PresolveOptions popt;
  popt.scale = true;
  popt.tighten_lower = true;
  for (std::uint64_t s = 9600; s < 9660; ++s) {
    const std::string what =
        "presolve all-options random_lp seed " + std::to_string(s);
    const Model model = random_lp(s);
    const Solution ref = reference_solve(model);
    const auto pre = presolve_model(model, popt);
    Solution fast;
    if (pre.infeasible) {
      fast.status = SolveStatus::kInfeasible;
    } else {
      SimplexOptions off;
      off.presolve = false;
      fast = pre.post.expand(model, solve_lp(pre.reduced, off));
    }
    ASSERT_EQ(fast.status, ref.status) << what;
    if (ref.status != SolveStatus::kOptimal) continue;
    const double denom = std::max(1.0, std::abs(ref.objective));
    EXPECT_LE(std::abs(fast.objective - ref.objective) / denom, kRelTol)
        << what;
    EXPECT_TRUE(model.feasible(fast.x, 1e-6)) << what;
    expect_strong_duality(model, fast, what);
  }
}

TEST(PresolveEquivalence, BuilderModels) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto demands = small_demands(catalog, seed);
    expect_presolve_equivalent(sched.build_schedule_model(demands),
                               "presolve schedule seed " +
                                   std::to_string(seed));
    expect_presolve_equivalent(build_admission_model(sched, demands),
                               "presolve admission seed " +
                                   std::to_string(seed));
    const std::vector<LinkId> failed = {0};
    expect_presolve_equivalent(
        build_recovery_model(topo, catalog, demands, failed),
        "presolve recovery seed " + std::to_string(seed));
  }
}

TEST(PresolveEquivalence, AllVariablesFixed) {
  // Presolve substitutes every variable; no simplex runs at all.
  Model m;
  m.set_sense(Sense::kMaximize);
  m.add_variable(2.0, 2.0, 3.0);
  m.add_variable(-1.0, -1.0, 5.0);
  m.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0);
  const Solution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_EQ(sol.iterations, 0);
  EXPECT_NEAR(sol.objective, 1.0, 1e-12);
  ASSERT_EQ(sol.x.size(), 2u);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-12);
  EXPECT_NEAR(sol.x[1], -1.0, 1e-12);
  expect_strong_duality(m, sol, "all-fixed");
  expect_presolve_equivalent(m, "all-fixed vs reference");
}

TEST(PresolveEquivalence, EmptyConstraintRows) {
  // A termless row is satisfied or violated by its rhs alone; presolve
  // drops the satisfied one and proves the violated one infeasible.
  Model ok;
  ok.add_variable(0.0, 5.0, 1.0);
  ok.add_constraint({}, Relation::kLessEqual, 1.0);
  ok.add_constraint({{0, 1.0}}, Relation::kGreaterEqual, 2.0);
  expect_presolve_equivalent(ok, "empty satisfied row");

  Model bad;
  bad.add_variable(0.0, 5.0, 1.0);
  bad.add_constraint({}, Relation::kLessEqual, -1.0);
  const Solution sol = solve_lp(bad);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
  expect_presolve_equivalent(bad, "empty violated row");
}

TEST(PresolveEquivalence, FreeSlackColumnAbsorbsRow) {
  // A zero-cost unbounded column alone in one >= row acts as a free
  // surplus: the row is dropped and postsolve reconstructs the column's
  // value from the row it absorbed.
  Model m;
  m.add_variable(0.0, kInfinity, 1.0);   // x0, minimized
  m.add_variable(0.0, kInfinity, 0.0);   // s, free slack
  m.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 2.0);
  const Solution sol = solve_lp(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
  ASSERT_EQ(sol.x.size(), 2u);
  // x0 = 0 is optimal; the reconstructed s must make the row feasible.
  EXPECT_GE(sol.x[0] + sol.x[1], 2.0 - 1e-9);
  expect_presolve_equivalent(m, "free slack");
}

TEST(PresolveEquivalence, InfeasibleByPropagation) {
  // Bound propagation proves the row unsatisfiable; the verdict arrives
  // with zero simplex iterations.
  Model m;
  m.add_variable(0.0, 1.0, 1.0);
  m.add_variable(0.0, 1.0, 1.0);
  m.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 5.0);
  const Solution sol = solve_lp(m);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
  EXPECT_EQ(sol.iterations, 0);
  expect_presolve_equivalent(m, "infeasible by propagation");
}

TEST(PresolveEquivalence, MilpVerdictsMatchPresolveOff) {
  for (int k = 0; k < 50; ++k) {
    const std::uint64_t s = 33000u + static_cast<std::uint64_t>(k);
    const Model m = random_milp(s);
    BranchBoundOptions off;
    off.lp.presolve = false;
    const Solution a = solve_milp(m, {});
    const Solution b = solve_milp(m, off);
    ASSERT_EQ(a.status, b.status) << "seed " << s;
    if (a.status != SolveStatus::kOptimal) continue;
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << s;
    EXPECT_TRUE(m.feasible(a.x, 1e-6)) << "seed " << s;
  }
}

TEST(PresolveEquivalence, SolutionCarriesPresolveCounters) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  const Model model = sched.build_schedule_model(small_demands(catalog, 21));

  const Solution on = solve_lp(model);
  ASSERT_EQ(on.status, SolveStatus::kOptimal);
  EXPECT_GT(on.rows_removed, 0);
  EXPECT_GT(on.cols_removed, 0);
  EXPECT_GE(on.presolve_us, 0);

  SimplexOptions off_opt;
  off_opt.presolve = false;
  const Solution off = solve_lp(model, off_opt);
  EXPECT_EQ(off.rows_removed, 0);
  EXPECT_EQ(off.cols_removed, 0);
  EXPECT_EQ(off.presolve_us, 0);
}

}  // namespace
}  // namespace bate
