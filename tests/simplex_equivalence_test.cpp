// Equivalence of the fast simplex path (partial pricing, cached reduced
// costs, eta-file basis) against the reference mode (full Dantzig pricing
// over exact reduced costs, refactorization every iteration — the
// pre-overhaul behaviour kept as SimplexOptions::reference_mode).
//
// Both paths must agree on the feasibility verdict on every instance and,
// when optimal, on the objective to tight relative tolerance. Iteration
// counts may differ (different pivot sequences are fine; the optimum is
// unique in value, not in basis).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/admission.h"
#include "core/scheduling.h"
#include "routing/tunnels.h"
#include "solver/simplex.h"
#include "topology/catalog.h"
#include "workload/demand.h"

namespace bate {
namespace {

constexpr double kRelTol = 1e-6;

void expect_equivalent(const Model& model, const std::string& what) {
  SimplexOptions fast;
  SimplexOptions ref;
  ref.reference_mode = true;
  const Solution a = solve_lp(model, fast);
  const Solution b = solve_lp(model, ref);
  ASSERT_EQ(a.status, b.status) << what;
  if (a.status == SolveStatus::kOptimal) {
    const double denom = std::max(1.0, std::abs(b.objective));
    EXPECT_LE(std::abs(a.objective - b.objective) / denom, kRelTol) << what;
  }
}

/// Random bounded LP with a mix of row relations, bound shapes and senses.
/// Constructed so that all three verdicts (optimal / infeasible / unbounded)
/// occur across the seed range.
Model random_lp(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> nvars_d(2, 12);
  std::uniform_int_distribution<int> nrows_d(1, 14);
  std::uniform_real_distribution<double> coef_d(-4.0, 4.0);
  std::uniform_real_distribution<double> unit_d(0.0, 1.0);

  Model m;
  if (unit_d(rng) < 0.5) m.set_sense(Sense::kMaximize);
  const int n = nvars_d(rng);
  for (int j = 0; j < n; ++j) {
    const double lo = unit_d(rng) < 0.3 ? coef_d(rng) * 0.5 : 0.0;
    double hi = kInfinity;
    if (unit_d(rng) < 0.6) hi = lo + std::abs(coef_d(rng)) * 3.0;
    m.add_variable(std::min(lo, hi), hi, coef_d(rng));
  }
  const int rows = nrows_d(rng);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (unit_d(rng) < 0.5) terms.push_back({j, coef_d(rng)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double roll = unit_d(rng);
    const Relation rel = roll < 0.6   ? Relation::kLessEqual
                         : roll < 0.85 ? Relation::kGreaterEqual
                                       : Relation::kEqual;
    m.add_constraint(std::move(terms), rel, coef_d(rng) * 2.0);
  }
  return m;
}

class SimplexEquivalenceRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexEquivalenceRandom, FastMatchesReference) {
  const int seed = GetParam();
  // 10 instances per ctest shard x 20 shards = 200 seeded random LPs.
  for (int k = 0; k < 10; ++k) {
    const std::uint64_t s =
        9000u + static_cast<std::uint64_t>(seed) * 10u +
        static_cast<std::uint64_t>(k);
    expect_equivalent(random_lp(s), "random_lp seed " + std::to_string(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexEquivalenceRandom,
                         ::testing::Range(0, 20));

/// A small-topology demand set with mixed availability targets, the same
/// shape the schedulers produce in production.
std::vector<Demand> small_demands(const TunnelCatalog& catalog,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pair_d(0, catalog.pair_count() - 1);
  std::uniform_real_distribution<double> mbps_d(5.0, 60.0);
  std::uniform_real_distribution<double> unit_d(0.0, 1.0);
  std::vector<Demand> demands;
  for (int i = 0; i < 8; ++i) {
    Demand d;
    d.id = i;
    d.pairs.push_back({pair_d(rng), mbps_d(rng)});
    if (unit_d(rng) < 0.25) d.pairs.push_back({pair_d(rng), mbps_d(rng)});
    const double roll = unit_d(rng);
    d.availability_target = roll < 0.3 ? 0.0 : (roll < 0.7 ? 0.99 : 0.999);
    demands.push_back(std::move(d));
  }
  return demands;
}

TEST(SimplexEquivalence, SchedulingModels) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto demands = small_demands(catalog, seed);
    expect_equivalent(sched.build_schedule_model(demands),
                      "schedule seed " + std::to_string(seed));
  }
}

TEST(SimplexEquivalence, AdmissionModels) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const auto demands = small_demands(catalog, seed);
    // The admission MILP's LP relaxation (integrality markers ignored by
    // solve_lp).
    expect_equivalent(build_admission_model(sched, demands),
                      "admission seed " + std::to_string(seed));
  }
}

TEST(SimplexEquivalence, SolutionCarriesWorkCounters) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 3);
  TrafficScheduler sched(topo, catalog);
  const auto demands = small_demands(catalog, 21);
  const Solution sol = solve_lp(sched.build_schedule_model(demands), {});
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_GT(sol.iterations, 0);
  EXPECT_GT(sol.pivots, 0);
  EXPECT_LE(sol.pivots, sol.iterations);
}

}  // namespace
}  // namespace bate
