// Tests for the topology substrate: graph invariants, catalog networks
// (Table 4 / Fig 2 / Fig 6 shapes), and the synthetic generator.
#include <gtest/gtest.h>

#include <set>

#include "topology/catalog.h"
#include "topology/generator.h"
#include "topology/graph.h"
#include "util/rng.h"

namespace bate {
namespace {

TEST(Graph, AddNodesAndLinks) {
  Topology t("t");
  const NodeId a = t.add_node("A");
  const NodeId b = t.add_node("B");
  const LinkId l = t.add_link(a, b, 100.0, 0.01);
  EXPECT_EQ(t.node_count(), 2);
  EXPECT_EQ(t.link_count(), 1);
  EXPECT_EQ(t.link(l).src, a);
  EXPECT_EQ(t.link(l).dst, b);
  EXPECT_EQ(t.find_link(a, b), l);
  EXPECT_EQ(t.find_link(b, a), -1);
}

TEST(Graph, RejectsInvalidLinks) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  EXPECT_THROW(t.add_link(a, a, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, b, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, b, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, b, 1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, 7, 1.0, 0.0), std::out_of_range);
}

TEST(Graph, BidirectionalAddsBothDirections) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  t.add_bidirectional(a, b, 10.0, 0.001);
  EXPECT_EQ(t.link_count(), 2);
  EXPECT_NE(t.find_link(a, b), -1);
  EXPECT_NE(t.find_link(b, a), -1);
}

TEST(Graph, StronglyConnectedDetection) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const NodeId c = t.add_node();
  t.add_link(a, b, 1.0, 0.0);
  t.add_link(b, c, 1.0, 0.0);
  EXPECT_FALSE(t.strongly_connected());
  t.add_link(c, a, 1.0, 0.0);
  EXPECT_TRUE(t.strongly_connected());
}

TEST(Catalog, Toy4MatchesFig2) {
  const Topology t = toy4();
  EXPECT_EQ(t.node_count(), 4);
  EXPECT_EQ(t.link_count(), 4);
  // e1: DC1->DC2 at 4%, e3: DC1->DC3 at 0.1%.
  EXPECT_NEAR(t.link(t.find_link(0, 1)).failure_prob, 0.04, 1e-12);
  EXPECT_NEAR(t.link(t.find_link(0, 2)).failure_prob, 0.001, 1e-12);
  for (const Link& l : t.links()) EXPECT_DOUBLE_EQ(l.capacity, 10000.0);
}

TEST(Catalog, Testbed6MatchesFig6) {
  const Topology t = testbed6();
  EXPECT_EQ(t.node_count(), 6);
  EXPECT_EQ(t.link_count(), 16);  // 8 bidirectional pairs
  EXPECT_TRUE(t.strongly_connected());
  // L4 (DC4-DC5) carries the highest failure probability: 1%.
  const LinkId l4 = testbed_link(t, "L4");
  EXPECT_NEAR(t.link(l4).failure_prob, 0.01, 1e-12);
  for (const Link& l : t.links()) {
    EXPECT_LE(l.failure_prob, 0.01 + 1e-12);
    EXPECT_DOUBLE_EQ(l.capacity, 1000.0);  // 1 Gbps testbed links
  }
  EXPECT_THROW(testbed_link(t, "L9"), std::invalid_argument);
}

TEST(Catalog, Table4Counts) {
  struct Expect {
    Topology topo;
    int nodes;
    int links;
  };
  Expect cases[] = {
      {b4(), 12, 38}, {ibm(), 18, 48}, {att(), 25, 112}, {fiti(), 14, 32}};
  for (auto& c : cases) {
    EXPECT_EQ(c.topo.node_count(), c.nodes) << c.topo.name();
    EXPECT_EQ(c.topo.link_count(), c.links) << c.topo.name();
    EXPECT_TRUE(c.topo.strongly_connected()) << c.topo.name();
  }
}

TEST(Catalog, TopologiesAreDeterministic) {
  const Topology a = b4();
  const Topology b = b4();
  ASSERT_EQ(a.link_count(), b.link_count());
  for (LinkId e = 0; e < a.link_count(); ++e) {
    EXPECT_EQ(a.link(e).src, b.link(e).src);
    EXPECT_EQ(a.link(e).dst, b.link(e).dst);
    EXPECT_DOUBLE_EQ(a.link(e).failure_prob, b.link(e).failure_prob);
  }
}

TEST(Generator, RespectsExactCounts) {
  GeneratorConfig cfg;
  cfg.nodes = 9;
  cfg.directed_links = 26;
  cfg.seed = 42;
  const Topology t = generate_topology(cfg, "g");
  EXPECT_EQ(t.node_count(), 9);
  EXPECT_EQ(t.link_count(), 26);
  EXPECT_TRUE(t.strongly_connected());
}

TEST(Generator, RejectsInfeasibleConfigs) {
  GeneratorConfig cfg;
  cfg.nodes = 5;
  cfg.directed_links = 7;  // odd
  EXPECT_THROW(generate_topology(cfg, "g"), std::invalid_argument);
  cfg.directed_links = 6;  // fewer than a ring
  EXPECT_THROW(generate_topology(cfg, "g"), std::invalid_argument);
  cfg.directed_links = 42;  // more than complete graph (5*4 = 20)
  EXPECT_THROW(generate_topology(cfg, "g"), std::invalid_argument);
}

TEST(Generator, FailureProbabilitiesAreHeavyTailed) {
  // Across many draws the spread should exceed two orders of magnitude
  // (Fig 1b) and stay within [0, 0.05].
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double p = sample_failure_prob(rng, 8.0, 0.6);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 0.05);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi / std::max(lo, 1e-12), 100.0);
}

TEST(Generator, LinksComeInBidirectionalPairs) {
  const Topology t = fiti();
  std::set<std::pair<NodeId, NodeId>> dirs;
  for (const Link& l : t.links()) dirs.insert({l.src, l.dst});
  for (const Link& l : t.links()) {
    EXPECT_TRUE(dirs.count({l.dst, l.src})) << l.name;
  }
}

}  // namespace
}  // namespace bate
