// Tests for the workload substrate: SLA catalogs, traffic matrices, and the
// Poisson demand generator.
#include <gtest/gtest.h>

#include <cmath>

#include "topology/catalog.h"
#include "workload/demand_gen.h"
#include "workload/sla.h"
#include "workload/traffic_matrix.h"

namespace bate {
namespace {

TEST(Sla, AzureCatalogHasTenServices) {
  const auto& services = azure_services();
  EXPECT_EQ(services.size(), 10u);
  for (const auto& s : services) {
    EXPECT_FALSE(s.tiers.empty()) << s.name;
    EXPECT_GT(s.base_refund(), 0.0) << s.name;
    // Tiers sorted by descending threshold.
    for (std::size_t i = 1; i < s.tiers.size(); ++i) {
      EXPECT_LT(s.tiers[i].below, s.tiers[i - 1].below) << s.name;
    }
  }
}

TEST(Sla, RefundTiersApplyWorstMatch) {
  const SlaService vm = azure_services()[5];  // Virtual Machines
  EXPECT_DOUBLE_EQ(vm.refund_for(0.99995), 0.0);
  EXPECT_DOUBLE_EQ(vm.refund_for(0.9995), 0.10);
  EXPECT_DOUBLE_EQ(vm.refund_for(0.995), 0.25);
  EXPECT_DOUBLE_EQ(vm.refund_for(0.90), 1.00);
}

TEST(Sla, TestbedServicesAreRedisCdnVm) {
  const auto services = testbed_services();
  ASSERT_EQ(services.size(), 3u);
  EXPECT_EQ(services[0].name, "Azure Cache for Redis");
  EXPECT_EQ(services[1].name, "Content Delivery Network");
  EXPECT_EQ(services[2].name, "Virtual Machines");
}

TEST(Sla, B4TargetsMatchTable1) {
  const auto& targets = b4_targets();
  ASSERT_EQ(targets.size(), 5u);
  EXPECT_DOUBLE_EQ(targets[0].availability, 0.9999);
  EXPECT_DOUBLE_EQ(targets[3].availability, 0.99);
  EXPECT_DOUBLE_EQ(targets[4].availability, 0.0);  // bulk: N/A
}

TEST(TrafficMatrix, GeneratesRequestedCount) {
  const Topology topo = b4();
  const auto tms = generate_traffic_matrices(topo, 5);
  EXPECT_EQ(tms.size(), 5u);
  for (const auto& tm : tms) {
    EXPECT_EQ(tm.size(), static_cast<std::size_t>(topo.node_count()));
    for (int i = 0; i < topo.node_count(); ++i) {
      EXPECT_DOUBLE_EQ(tm[static_cast<std::size_t>(i)]
                         [static_cast<std::size_t>(i)], 0.0);
    }
  }
}

TEST(TrafficMatrix, MeanEntryTracksLoadFraction) {
  const Topology topo = b4();
  TrafficMatrixConfig cfg;
  cfg.load_fraction = 0.25;
  const auto tms = generate_traffic_matrices(topo, 3, cfg);
  const double target = mean_link_capacity(topo) * 0.25;
  for (const auto& tm : tms) {
    double sum = 0.0;
    int n = 0;
    for (const auto& row : tm) {
      for (double v : row) {
        if (v > 0.0) {
          sum += v;
          ++n;
        }
      }
    }
    EXPECT_NEAR(sum / n, target, target * 0.05);
  }
}

TEST(DemandGen, ArrivalsSortedAndWithinHorizon) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 3.0;
  cfg.horizon_min = 50.0;
  cfg.seed = 5;
  const auto demands = generate_demands(catalog, cfg);
  EXPECT_GT(demands.size(), 50u);  // ~150 expected
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    EXPECT_EQ(d.id, static_cast<DemandId>(i));
    EXPECT_GE(d.arrival_minute, 0.0);
    EXPECT_LT(d.arrival_minute, 50.0);
    EXPECT_GT(d.duration_minutes, 0.0);
    EXPECT_GE(d.pairs[0].mbps, cfg.bw_min_mbps);
    EXPECT_LE(d.pairs[0].mbps, cfg.bw_max_mbps);
    EXPECT_DOUBLE_EQ(d.charge, d.pairs[0].mbps);  // unit price
    if (i > 0) {
      EXPECT_GE(d.arrival_minute, demands[i - 1].arrival_minute);
    }
  }
}

TEST(DemandGen, PoissonRateIsRespected) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 4.0;
  cfg.horizon_min = 500.0;
  cfg.seed = 11;
  const auto demands = generate_demands(catalog, cfg);
  const double rate = static_cast<double>(demands.size()) / cfg.horizon_min;
  EXPECT_NEAR(rate, 4.0, 0.5);
}

TEST(DemandGen, PerPairArrivalsMultiplyVolume) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 0.2;
  cfg.horizon_min = 100.0;
  cfg.seed = 13;
  const auto global = generate_demands(catalog, cfg);
  cfg.per_pair_arrivals = true;
  const auto per_pair = generate_demands(catalog, cfg);
  // 30 ordered pairs => ~30x the demand volume.
  EXPECT_GT(per_pair.size(), global.size() * 10);
}

TEST(DemandGen, RefundsComeFromServices) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  WorkloadConfig cfg;
  cfg.services = testbed_services();
  cfg.horizon_min = 30.0;
  cfg.seed = 17;
  const auto demands = generate_demands(catalog, cfg);
  for (const Demand& d : demands) {
    EXPECT_GT(d.refund_fraction, 0.0);
    EXPECT_LE(d.refund_fraction, 1.0);
  }
}

TEST(DemandGen, TrafficMatrixDrivenBandwidths) {
  const Topology topo = b4();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  WorkloadConfig cfg;
  cfg.matrices = generate_traffic_matrices(topo, 4);
  cfg.tm_scale_down = 5.0;
  cfg.horizon_min = 20.0;
  cfg.arrival_rate_per_min = 5.0;
  cfg.seed = 23;
  const auto demands = generate_demands(catalog, cfg);
  ASSERT_GT(demands.size(), 20u);
  for (const Demand& d : demands) EXPECT_GE(d.pairs[0].mbps, 1.0);
}

TEST(DemandGen, ActiveAtFiltersByLifetime) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  WorkloadConfig cfg;
  cfg.horizon_min = 60.0;
  cfg.mean_duration_min = 5.0;
  cfg.seed = 29;
  const auto demands = generate_demands(catalog, cfg);
  const auto active = active_at(demands, 30.0);
  for (const Demand& d : active) {
    EXPECT_LE(d.arrival_minute, 30.0);
    EXPECT_GT(d.end_minute(), 30.0);
  }
}

TEST(DemandGen, RejectsBadConfig) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  WorkloadConfig cfg;
  cfg.availability_targets = {};
  EXPECT_THROW(generate_demands(catalog, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace bate
