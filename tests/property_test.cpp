// Cross-component property suites tying the algorithms to their claimed
// guarantees:
//   * Conjecture soundness vs the optimal MILP (Theorem 1 direction).
//   * Guaranteed greedy allocations really meet their hard targets.
//   * Scheduling monotonicity: more pruning (smaller y) never allocates
//     less bandwidth.
//   * Simplex vs brute force on random equality-constrained LPs.
//   * Recovery never exceeds pre-failure profit and respects the refund
//     floor.
#include <gtest/gtest.h>

#include <cmath>

#include "core/admission.h"
#include "core/pricing.h"
#include "core/recovery.h"
#include "core/scheduling.h"
#include "solver/simplex.h"
#include "topology/catalog.h"
#include "topology/generator.h"
#include "util/rng.h"
#include "workload/demand_gen.h"

namespace bate {
namespace {

struct RandomCase {
  Topology topo;
  TunnelCatalog catalog;
  std::vector<Demand> demands;
};

RandomCase make_case(std::uint64_t seed, int max_demands) {
  GeneratorConfig cfg;
  cfg.nodes = 6;
  cfg.directed_links = 18;
  cfg.seed = seed;
  RandomCase c{generate_topology(cfg, "prop"), {}, {}};
  c.catalog = TunnelCatalog::build_all_pairs(c.topo, 3);

  WorkloadConfig wl;
  wl.arrival_rate_per_min = 2.0;
  wl.horizon_min = 8.0;
  wl.mean_duration_min = 60.0;
  wl.bw_min_mbps = 50.0;
  wl.bw_max_mbps = 800.0;
  wl.availability_targets = {0.0, 0.9, 0.99, 0.999};
  wl.services = testbed_services();
  wl.seed = seed * 31 + 7;
  c.demands = generate_demands(c.catalog, wl);
  if (static_cast<int>(c.demands.size()) > max_demands) {
    c.demands.resize(static_cast<std::size_t>(max_demands));
  }
  return c;
}

class ConjectureSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ConjectureSoundness, ConjectureAdmitImpliesOptimalAdmit) {
  const RandomCase c = make_case(9000 + GetParam(), 6);
  if (c.demands.empty()) GTEST_SKIP();
  const TrafficScheduler scheduler(c.topo, c.catalog, SchedulerConfig{});
  if (!admission_conjecture(scheduler, c.demands)) GTEST_SKIP();
  EXPECT_TRUE(optimal_admission_check(scheduler, c.demands))
      << "Theorem 1 violated (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConjectureSoundness, ::testing::Range(0, 12));

class GuaranteedAllocation : public ::testing::TestWithParam<int> {};

TEST_P(GuaranteedAllocation, MeetsHardTargetAndCapacity) {
  const RandomCase c = make_case(9100 + GetParam(), 10);
  const TrafficScheduler scheduler(c.topo, c.catalog, SchedulerConfig{});
  std::vector<double> residual(static_cast<std::size_t>(c.topo.link_count()));
  for (LinkId e = 0; e < c.topo.link_count(); ++e) {
    residual[static_cast<std::size_t>(e)] = c.topo.link(e).capacity;
  }
  for (const Demand& d : c.demands) {
    const auto before = residual;
    const auto alloc = greedy_allocate_guaranteed(scheduler, d, residual);
    if (!alloc) {
      EXPECT_EQ(before, residual);  // failure leaves residual untouched
      continue;
    }
    // Full bandwidth on every pair.
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      double total = 0.0;
      for (double f : (*alloc)[p]) total += f;
      EXPECT_GE(total + 1e-6, d.pairs[p].mbps);
    }
    // Hard availability under the scheduler's model.
    double avail = 1.0;
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      avail *= scheduler.lp_patterns(d.pairs[p].pair)
                   .availability((*alloc)[p], d.pairs[p].mbps);
    }
    EXPECT_GE(avail + 1e-9, d.availability_target);
    // Residual only decreased and never negative.
    for (std::size_t e = 0; e < residual.size(); ++e) {
      EXPECT_LE(residual[e], before[e] + 1e-9);
      EXPECT_GE(residual[e], -1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuaranteedAllocation, ::testing::Range(0, 12));

class PruningMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(PruningMonotonicity, SmallerYNeverAllocatesLess) {
  const RandomCase c = make_case(9200 + GetParam(), 8);
  if (c.demands.empty()) GTEST_SKIP();
  double prev = kInfinity;  // allocation at smaller y (upper bound)
  bool any = false;
  for (int y = 1; y <= 3; ++y) {
    SchedulerConfig cfg;
    cfg.max_failures = y;
    cfg.hard_repair = false;  // compare the pure LP optima
    cfg.reliability_epsilon = 0.0;
    const TrafficScheduler scheduler(c.topo, c.catalog, cfg);
    const auto r = scheduler.schedule(c.demands);
    if (!r.feasible) continue;
    if (any) {
      EXPECT_LE(r.total_allocated_mbps, prev + 1e-3)
          << "y=" << y << " seed " << GetParam();
    }
    prev = r.total_allocated_mbps;
    any = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningMonotonicity, ::testing::Range(0, 10));

class RecoveryProfitBounds : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryProfitBounds, GreedyWithinFloorAndCeiling) {
  const RandomCase c = make_case(9300 + GetParam(), 12);
  if (c.demands.empty()) GTEST_SKIP();
  Rng rng(77 + static_cast<std::uint64_t>(GetParam()));
  const LinkId failed[] = {
      static_cast<LinkId>(rng.uniform_int(0, c.topo.link_count() - 1))};
  const auto rec = recover_greedy(c.topo, c.catalog, c.demands, failed);
  double floor = 0.0;
  for (const Demand& d : c.demands) {
    floor += (1.0 - d.refund_fraction) * d.charge;
  }
  EXPECT_GE(rec.profit + 1e-9, floor);
  EXPECT_LE(rec.profit, full_profit(c.demands) + 1e-9);
  // full_profit flags must be consistent with the reported profit.
  double recomputed = 0.0;
  for (std::size_t i = 0; i < c.demands.size(); ++i) {
    recomputed += demand_profit(c.demands[i], rec.full_profit[i] != 0);
  }
  EXPECT_NEAR(rec.profit, recomputed, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryProfitBounds, ::testing::Range(0, 15));

// Random equality-constrained LPs: min c'x st Ax = b, 0 <= x <= u with a
// known feasible point; the simplex optimum must be feasible and no worse.
class EqualitySimplex : public ::testing::TestWithParam<int> {};

TEST_P(EqualitySimplex, OptimumFeasibleAndDominatesWitness) {
  Rng rng(9400 + static_cast<std::uint64_t>(GetParam()));
  const int n = 5 + rng.uniform_int(0, 4);
  const int m = 2 + rng.uniform_int(0, 2);

  std::vector<double> witness(static_cast<std::size_t>(n));
  for (auto& v : witness) v = rng.uniform(0.2, 2.0);

  Model model;
  std::vector<int> vars;
  for (int j = 0; j < n; ++j) {
    vars.push_back(model.add_variable(0.0, 4.0, rng.uniform(-2.0, 2.0)));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<Term> terms;
    double rhs = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = rng.uniform(-1.0, 2.0);
      terms.push_back({vars[static_cast<std::size_t>(j)], a});
      rhs += a * witness[static_cast<std::size_t>(j)];
    }
    model.add_constraint(std::move(terms), Relation::kEqual, rhs);
  }
  const Solution sol = solve_lp(model);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_TRUE(model.feasible(sol.x, 1e-5)) << "seed " << GetParam();
  EXPECT_LE(sol.objective, model.objective_value(witness) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqualitySimplex, ::testing::Range(0, 30));

}  // namespace
}  // namespace bate
