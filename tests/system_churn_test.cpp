// Start/stop churn for the controller/broker processes (Sec 4). The point is
// shutdown ordering: Broker::stop() must shut the socket down before joining
// the receive thread, Controller::stop() must stop the loop before tearing
// peers down, and report_link() after stop() must be dropped, not written to
// a closed fd. Run under the tsan preset these tests double as the
// data-race gate for the whole system layer.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>

#include "system/broker.h"
#include "system/client.h"
#include "system/controller.h"
#include "topology/catalog.h"

namespace bate {
namespace {

Demand churn_demand(DemandId id, int pair, double mbps) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = 0.9;
  d.charge = mbps;
  return d;
}

struct ChurnFixture : ::testing::Test {
  Topology topo = testbed6();
  TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
};

TEST_F(ChurnFixture, ControllerStartStopChurn) {
  for (int round = 0; round < 8; ++round) {
    Controller controller(topo, catalog, SchedulerConfig{},
                          AdmissionStrategy::kBate);
    controller.start();
    if (round % 2 == 0) {
      UserClient user(controller.port());
      EXPECT_TRUE(user.submit(churn_demand(round + 1, 0, 50.0)));
    }
    controller.stop();
  }
}

TEST_F(ChurnFixture, BrokerStartStopChurn) {
  Controller controller(topo, catalog, SchedulerConfig{},
                        AdmissionStrategy::kBate);
  controller.start();
  for (int round = 0; round < 8; ++round) {
    Broker broker(0, controller.port());
    broker.start();
    if (round % 2 == 0) {
      // Give the broker's hello a chance to race the stop below: sometimes
      // it lands before stop(), sometimes after the peer is gone.
      std::this_thread::sleep_for(std::chrono::milliseconds(round * 3));
    }
    broker.stop();
  }
  controller.stop();
}

TEST_F(ChurnFixture, ReportAfterStopIsDropped) {
  Controller controller(topo, catalog, SchedulerConfig{},
                        AdmissionStrategy::kBate);
  controller.start();
  Broker broker(0, controller.port());
  broker.start();
  broker.stop();
  // Must not crash or write to the closed socket; the frame is dropped.
  broker.report_link(0, false);
  broker.report_link(0, true);
  controller.stop();
}

TEST_F(ChurnFixture, BrokerOutlivesController) {
  // Tear the controller down while a broker is still connected: the broker's
  // receive loop must observe EOF and park until its own stop().
  std::optional<Broker> broker;
  {
    Controller controller(topo, catalog, SchedulerConfig{},
                          AdmissionStrategy::kBate);
    controller.start();
    broker.emplace(0, controller.port());
    broker->start();
    UserClient user(controller.port());
    EXPECT_TRUE(user.submit(churn_demand(1, 0, 100.0)));
    controller.stop();
  }
  broker->report_link(1, false);  // connection is gone; must not crash
  broker->stop();
}

TEST_F(ChurnFixture, ConcurrentReportersDuringStop) {
  Controller controller(topo, catalog, SchedulerConfig{},
                        AdmissionStrategy::kBate);
  controller.start();
  Broker broker(0, controller.port());
  broker.start();

  std::thread reporter([&] {
    for (int i = 0; i < 200; ++i) {
      broker.report_link(i % 4, i % 2 == 0);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  broker.stop();  // races the reporter by design
  reporter.join();
  controller.stop();
}

}  // namespace
}  // namespace bate
