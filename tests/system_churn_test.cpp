// Start/stop churn for the controller/broker processes (Sec 4). The point is
// shutdown ordering: Broker::stop() must shut the socket down before joining
// the receive thread, Controller::stop() must stop the loop before tearing
// peers down, and report_link() after stop() must be dropped, not written to
// a closed fd. Run under the tsan preset these tests double as the
// data-race gate for the whole system layer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>

#include "net/framing.h"
#include "net/socket.h"
#include "system/broker.h"
#include "system/client.h"
#include "system/controller.h"
#include "system/protocol.h"
#include "topology/catalog.h"

namespace bate {
namespace {

Demand churn_demand(DemandId id, int pair, double mbps) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = 0.9;
  d.charge = mbps;
  return d;
}

struct ChurnFixture : ::testing::Test {
  Topology topo = testbed6();
  TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
};

TEST_F(ChurnFixture, ControllerStartStopChurn) {
  for (int round = 0; round < 8; ++round) {
    Controller controller(topo, catalog, SchedulerConfig{},
                          AdmissionStrategy::kBate);
    controller.start();
    if (round % 2 == 0) {
      UserClient user(controller.port());
      EXPECT_TRUE(user.submit(churn_demand(round + 1, 0, 50.0)));
    }
    controller.stop();
  }
}

TEST_F(ChurnFixture, BrokerStartStopChurn) {
  Controller controller(topo, catalog, SchedulerConfig{},
                        AdmissionStrategy::kBate);
  controller.start();
  for (int round = 0; round < 8; ++round) {
    Broker broker(0, controller.port());
    broker.start();
    if (round % 2 == 0) {
      // Give the broker's hello a chance to race the stop below: sometimes
      // it lands before stop(), sometimes after the peer is gone.
      std::this_thread::sleep_for(std::chrono::milliseconds(round * 3));
    }
    broker.stop();
  }
  controller.stop();
}

TEST_F(ChurnFixture, ReportAfterStopIsDropped) {
  Controller controller(topo, catalog, SchedulerConfig{},
                        AdmissionStrategy::kBate);
  controller.start();
  Broker broker(0, controller.port());
  broker.start();
  broker.stop();
  // Must not crash or write to the closed socket; the frame is dropped.
  broker.report_link(0, false);
  broker.report_link(0, true);
  controller.stop();
}

TEST_F(ChurnFixture, BrokerOutlivesController) {
  // Tear the controller down while a broker is still connected: the broker's
  // receive loop must observe EOF and park until its own stop().
  std::optional<Broker> broker;
  {
    Controller controller(topo, catalog, SchedulerConfig{},
                          AdmissionStrategy::kBate);
    controller.start();
    broker.emplace(0, controller.port());
    broker->start();
    UserClient user(controller.port());
    EXPECT_TRUE(user.submit(churn_demand(1, 0, 100.0)));
    controller.stop();
  }
  broker->report_link(1, false);  // connection is gone; must not crash
  broker->stop();
}

TEST_F(ChurnFixture, ConcurrentReportersDuringStop) {
  Controller controller(topo, catalog, SchedulerConfig{},
                        AdmissionStrategy::kBate);
  controller.start();
  Broker broker(0, controller.port());
  broker.start();

  std::thread reporter([&] {
    for (int i = 0; i < 200; ++i) {
      broker.report_link(i % 4, i % 2 == 0);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  broker.stop();  // races the reporter by design
  reporter.join();
  controller.stop();
}

/// Value of an un-labelled prometheus sample line ("name value"), or -1.
/// Skips "# TYPE name ..." lines by requiring the name at start-of-line.
double prom_value(const std::string& body, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = body.find(name, pos)) != std::string::npos) {
    const bool at_line_start = pos == 0 || body[pos - 1] == '\n';
    const std::size_t after = pos + name.size();
    if (at_line_start && after < body.size() && body[after] == ' ') {
      const std::size_t eol = body.find('\n', after);
      return std::stod(body.substr(after + 1, eol - after - 1));
    }
    pos = after;
  }
  return -1.0;
}

TEST_F(ChurnFixture, DisconnectWithQueuedSubmitsDropsThem) {
  // A client that pipelines a burst and vanishes must have its queued
  // submits purged (bate_admission_dropped_dead_total), not solved: beyond
  // wasting the batch on a dead requester, the kernel reuses fds, so a
  // stale queue entry could reply to a different peer.
  Controller controller(topo, catalog, SchedulerConfig{},
                        AdmissionStrategy::kBate);
  controller.start();

  const auto dropped = [&] {
    UserClient probe(controller.port());
    return prom_value(probe.stats(), "bate_admission_dropped_dead_total");
  };
  const double before = dropped();
  ASSERT_GE(before, 0.0);

  // The burst and the FIN usually land in one readable round (enqueue all,
  // then purge); when the controller wins the race and drains first, retry.
  bool observed = false;
  for (int attempt = 0; attempt < 10 && !observed; ++attempt) {
    {
      Socket doomed = connect_tcp(controller.port());
      doomed.write_all(encode_frame(encode_message(HelloMsg{"user", 3})));
      FrameBatch batch;
      for (int i = 0; i < 64; ++i) {
        batch.add(encode_message(
            SubmitDemandMsg{churn_demand(attempt * 100 + i + 1, 0, 0.01),
                            static_cast<std::uint64_t>(i + 1)}));
      }
      doomed.write_all(batch.bytes());
    }  // disconnects with the burst (at best) still queued
    observed = dropped() > before;
  }
  EXPECT_TRUE(observed)
      << "no queued submit was dropped across 10 disconnect attempts";

  // The controller keeps serving the living.
  UserClient user(controller.port());
  EXPECT_TRUE(user.submit(churn_demand(9999, 1, 10.0)));
  controller.stop();
}

}  // namespace
}  // namespace bate
