// Tests for the label-based forwarding scheme (Sec 4): VxLAN label codec,
// switch flow/group tables, rule compilation from allocations, and label
// tracing along tunnels.
#include <gtest/gtest.h>

#include "core/scheduling.h"
#include "core/recovery.h"
#include "system/labels.h"
#include "topology/catalog.h"

namespace bate {
namespace {

TEST(VxlanLabel, EncodeDecodeRoundTrip) {
  for (std::uint16_t d : {std::uint16_t{0}, std::uint16_t{1},
                          std::uint16_t{2047}, std::uint16_t{4095}}) {
    for (std::uint16_t t :
         {std::uint16_t{0}, std::uint16_t{7}, std::uint16_t{4095}}) {
      const VxlanLabel label{d, t};
      const VxlanLabel back = VxlanLabel::decode(label.encode());
      EXPECT_EQ(back.demand, d);
      EXPECT_EQ(back.tunnel, t);
    }
  }
}

TEST(VxlanLabel, FieldLayoutMatchesPaper) {
  // First 12 bits = demand, last 12 bits = tunnel.
  const VxlanLabel label{0x0ABC, 0x0123};
  EXPECT_EQ(label.encode(), 0xABC123u);
}

TEST(VxlanLabel, RejectsOversizedFields) {
  EXPECT_THROW((VxlanLabel{4096, 0}).encode(), std::invalid_argument);
  EXPECT_THROW((VxlanLabel{0, 4096}).encode(), std::invalid_argument);
  EXPECT_THROW(VxlanLabel::decode(0x1000000), std::invalid_argument);
}

TEST(SwitchTable, InstallLookupRemove) {
  SwitchTable table;
  const VxlanLabel label{5, 2};
  EXPECT_FALSE(table.lookup(label).has_value());
  table.install({label, 7});
  ASSERT_TRUE(table.lookup(label).has_value());
  EXPECT_EQ(*table.lookup(label), 7);
  table.install({label, 9});  // overwrite
  EXPECT_EQ(*table.lookup(label), 9);
  table.remove(label);
  EXPECT_FALSE(table.lookup(label).has_value());
  table.remove(label);  // idempotent
}

TEST(SwitchTable, GroupBuckets) {
  SwitchTable table;
  table.set_group(3, {{VxlanLabel{3, 0}, 0.25}, {VxlanLabel{3, 1}, 0.75}});
  const auto* group = table.group(3);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 2u);
  EXPECT_DOUBLE_EQ((*group)[1].weight, 0.75);
  EXPECT_EQ(table.group(4), nullptr);
  EXPECT_THROW(table.set_group(5000, {}), std::invalid_argument);
}

struct CompileFixture {
  Topology topo = testbed6();
  TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
  TrafficScheduler scheduler{topo, catalog, SchedulerConfig{}};
};

TEST(CompileForwarding, RulesFollowTunnelsAndWeightsSumToOne) {
  CompileFixture fx;
  std::vector<Demand> demands(2);
  demands[0].id = 1;
  demands[0].pairs = {{fx.catalog.pair_index({0, 2}), 400.0}};
  demands[0].availability_target = 0.99;
  demands[1].id = 2;
  demands[1].pairs = {{fx.catalog.pair_index({0, 4}), 900.0}};
  demands[1].availability_target = 0.95;
  const auto r = fx.scheduler.schedule(demands);
  ASSERT_TRUE(r.feasible);

  const auto plan =
      compile_forwarding(fx.topo, fx.catalog, demands, r.alloc);
  EXPECT_GT(plan.rules_installed, 0);
  EXPECT_EQ(plan.groups_installed, 2);

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    const auto& tunnels = fx.catalog.tunnels(d.pairs[0].pair);
    const NodeId ingress = tunnels[0].src;
    const auto* group = plan.switches[static_cast<std::size_t>(ingress)]
                            .group(static_cast<std::uint16_t>(d.id));
    ASSERT_NE(group, nullptr) << "demand " << d.id;
    double weight = 0.0;
    for (const GroupBucket& bucket : *group) {
      weight += bucket.weight;
      // Tracing the bucket's label reproduces exactly the tunnel's links.
      const auto path =
          trace_label(fx.topo, plan, ingress, bucket.label);
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(*path, tunnels[bucket.label.tunnel].links);
    }
    EXPECT_NEAR(weight, 1.0, 1e-9);
  }
}

TEST(CompileForwarding, RejectsOversizedDemandIds) {
  CompileFixture fx;
  std::vector<Demand> demands(1);
  demands[0].id = 5000;  // > 4095
  demands[0].pairs = {{0, 100.0}};
  std::vector<Allocation> allocs = {
      Allocation{std::vector<double>(fx.catalog.tunnels(0).size(), 10.0)}};
  EXPECT_THROW(
      compile_forwarding(fx.topo, fx.catalog, demands, allocs),
      std::invalid_argument);
}

TEST(TraceLabel, DetectsMissingRule) {
  CompileFixture fx;
  ForwardingPlan plan;
  plan.switches.resize(static_cast<std::size_t>(fx.topo.node_count()));
  EXPECT_FALSE(trace_label(fx.topo, plan, 0, VxlanLabel{1, 0}).has_value());
}

TEST(TraceLabel, DetectsLoops) {
  CompileFixture fx;
  ForwardingPlan plan;
  plan.switches.resize(static_cast<std::size_t>(fx.topo.node_count()));
  // Install a 2-node loop DC1 -> DC2 -> DC1.
  const VxlanLabel label{9, 0};
  plan.switches[0].install({label, fx.topo.find_link(0, 1)});
  plan.switches[1].install({label, fx.topo.find_link(1, 0)});
  EXPECT_FALSE(trace_label(fx.topo, plan, 0, label).has_value());
}

TEST(BackupPlannerExtension, ConcurrentPairPlansAreUsed) {
  CompileFixture fx;
  std::vector<Demand> demands(2);
  demands[0].id = 1;
  demands[0].pairs = {{fx.catalog.pair_index({0, 2}), 400.0}};
  demands[0].availability_target = 0.99;
  demands[0].charge = 400.0;
  demands[1].id = 2;
  demands[1].pairs = {{fx.catalog.pair_index({0, 4}), 500.0}};
  demands[1].availability_target = 0.95;
  demands[1].charge = 500.0;
  const auto r = fx.scheduler.schedule(demands);
  ASSERT_TRUE(r.feasible);

  BackupPlanner single(fx.topo, fx.catalog, 0);
  BackupPlanner pairs(fx.topo, fx.catalog, 8);
  single.precompute(demands, r.alloc);
  pairs.precompute(demands, r.alloc);
  EXPECT_GT(pairs.plan_count(), single.plan_count());

  // plan_for: exact pair match where planned, single-link fallback else.
  std::vector<LinkId> loaded;
  const auto usage = link_usage(fx.topo, fx.catalog, demands, r.alloc);
  for (LinkId e = 0; e < fx.topo.link_count(); ++e) {
    if (usage[static_cast<std::size_t>(e)] > 1e-9) loaded.push_back(e);
  }
  ASSERT_GE(loaded.size(), 2u);
  const LinkId two[] = {loaded[0], loaded[1]};
  EXPECT_NE(pairs.plan_for(two), nullptr);
  EXPECT_NE(single.plan_for(two), nullptr);  // falls back to single plan
  EXPECT_EQ(single.plan_for({}), nullptr);
}

}  // namespace
}  // namespace bate
