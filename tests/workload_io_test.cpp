// Tests for the demand-file format (workload/io.h).
#include <gtest/gtest.h>

#include <filesystem>

#include "topology/catalog.h"
#include "workload/demand_gen.h"
#include "workload/io.h"

namespace bate {
namespace {

struct Fixture {
  Topology topo = testbed6();
  TunnelCatalog catalog = TunnelCatalog::build_all_pairs(topo, 4);
};

TEST(DemandIo, RoundTripsGeneratedWorkload) {
  Fixture fx;
  WorkloadConfig cfg;
  cfg.horizon_min = 20.0;
  cfg.services = testbed_services();
  cfg.seed = 3;
  const auto demands = generate_demands(fx.catalog, cfg);
  ASSERT_FALSE(demands.empty());

  const auto text = demands_to_text(fx.topo, fx.catalog, demands);
  const auto parsed = demands_from_text(fx.topo, fx.catalog, text);
  ASSERT_EQ(parsed.size(), demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_EQ(parsed[i].id, demands[i].id);
    ASSERT_EQ(parsed[i].pairs.size(), demands[i].pairs.size());
    EXPECT_EQ(parsed[i].pairs[0].pair, demands[i].pairs[0].pair);
    EXPECT_DOUBLE_EQ(parsed[i].pairs[0].mbps, demands[i].pairs[0].mbps);
    EXPECT_DOUBLE_EQ(parsed[i].availability_target,
                     demands[i].availability_target);
    EXPECT_DOUBLE_EQ(parsed[i].charge, demands[i].charge);
    EXPECT_DOUBLE_EQ(parsed[i].refund_fraction, demands[i].refund_fraction);
    EXPECT_DOUBLE_EQ(parsed[i].arrival_minute, demands[i].arrival_minute);
    EXPECT_DOUBLE_EQ(parsed[i].duration_minutes,
                     demands[i].duration_minutes);
  }
}

TEST(DemandIo, MultiPairDemandsGroupById) {
  Fixture fx;
  const auto demands = demands_from_text(
      fx.topo, fx.catalog,
      "demand 7 DC1 DC3 100 0.99\n"
      "demand 7 DC1 DC5 200 0.99\n");
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_EQ(demands[0].pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(demands[0].charge, 300.0);  // unit-price default
}

TEST(DemandIo, DefaultsAndOptions) {
  Fixture fx;
  const auto demands = demands_from_text(
      fx.topo, fx.catalog,
      "demand 1 DC1 DC2 150 0.95 charge=999 refund=0.5 arrival=3 "
      "duration=42\n");
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_DOUBLE_EQ(demands[0].charge, 999.0);
  EXPECT_DOUBLE_EQ(demands[0].refund_fraction, 0.5);
  EXPECT_DOUBLE_EQ(demands[0].arrival_minute, 3.0);
  EXPECT_DOUBLE_EQ(demands[0].duration_minutes, 42.0);
}

TEST(DemandIo, RejectsMalformedInput) {
  Fixture fx;
  const char* bad[] = {
      "flow 1 DC1 DC2 10 0.9\n",              // unknown directive
      "demand 1 DC1 DC9 10 0.9\n",            // unknown node
      "demand 1 DC1 DC2 -5 0.9\n",            // bad bandwidth
      "demand 1 DC1 DC2 10 1.5\n",            // bad availability
      "demand 1 DC1 DC2 10 0.9 bogus\n",      // malformed option
      "demand 1 DC1 DC2 10 0.9 charge=abc\n"  // bad number
  };
  for (const char* text : bad) {
    EXPECT_THROW(demands_from_text(fx.topo, fx.catalog, text),
                 std::invalid_argument)
        << text;
  }
  // Conflicting availability across lines of one demand.
  EXPECT_THROW(demands_from_text(fx.topo, fx.catalog,
                                 "demand 1 DC1 DC2 10 0.9\n"
                                 "demand 1 DC1 DC3 10 0.95\n"),
               std::invalid_argument);
}

TEST(DemandIo, FileHelpers) {
  Fixture fx;
  const auto path =
      std::filesystem::temp_directory_path() / "bate_demand_io_test.txt";
  std::vector<Demand> demands(1);
  demands[0].id = 1;
  demands[0].pairs = {{fx.catalog.pair_index({0, 2}), 123.0}};
  demands[0].availability_target = 0.99;
  demands[0].charge = 123.0;
  save_demands(fx.topo, fx.catalog, demands, path.string());
  const auto loaded = load_demands(fx.topo, fx.catalog, path.string());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].pairs[0].mbps, 123.0);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace bate
