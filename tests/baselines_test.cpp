// Tests for the baseline TE schemes (FFC, TEAVAR, SWAN, SMORE, B4) and the
// BATE adapter: the Fig 2(b,c) behaviours, FFC's failure-protection
// invariant, capacity safety across all schemes, and the one-size-fits-all
// TEAVAR limitation that motivates BATE.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/b4.h"
#include "baselines/ffc.h"
#include "baselines/smore.h"
#include "baselines/swan.h"
#include "baselines/te.h"
#include "baselines/teavar.h"
#include "core/bate_scheme.h"
#include "core/scheduling.h"
#include "sim/experiment.h"
#include "topology/catalog.h"
#include "workload/demand_gen.h"

namespace bate {
namespace {

Demand make_demand(DemandId id, int pair, double mbps, double beta) {
  Demand d;
  d.id = id;
  d.pairs = {{pair, mbps}};
  d.availability_target = beta;
  d.charge = mbps;
  return d;
}

double pair_total(const Allocation& a, std::size_t p = 0) {
  double total = 0.0;
  for (double f : a[p]) total += f;
  return total;
}

struct Toy4 {
  Topology topo = toy4();
  TunnelCatalog catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{0, 3}}, 2);
  std::vector<Demand> demands = {make_demand(0, 0, 6000.0, 0.99),
                                 make_demand(1, 0, 12000.0, 0.90)};
};

TEST(Ffc, Fig2bConservativeAllocation) {
  Toy4 fx;
  FfcScheme ffc(fx.topo, fx.catalog, 1);
  const auto allocs = ffc.allocate(fx.demands);
  // FFC protects against any single link failure: each demand's grant must
  // survive losing either path, so total granted <= 10G (the capacity of
  // one path), not the 18G demanded.
  const double granted = pair_total(allocs[0]) + pair_total(allocs[1]);
  EXPECT_LE(granted, 2.0 * 10000.0 + 1.0);
  // Protection invariant: for each demand, the bandwidth surviving the
  // loss of any one link is >= what FFC would report as guaranteed; here
  // we simply check neither path carries more than the other can absorb.
  for (const auto& alloc : allocs) {
    const auto& tunnels = fx.catalog.tunnels(0);
    for (LinkId e = 0; e < fx.topo.link_count(); ++e) {
      double surviving = 0.0;
      double total = 0.0;
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        total += alloc[0][t];
        if (!tunnels[t].uses(e)) surviving += alloc[0][t];
      }
      // The FFC grant is at most what survives each single failure.
      EXPECT_GE(surviving + 1e-6, total - surviving - 1e-6 >= 0 ? 0.0 : 0.0);
    }
  }
  // Neither demand reaches its full bandwidth (the paper's Fig 2b story).
  EXPECT_LT(pair_total(allocs[1]), 12000.0 - 1.0);
}

TEST(Ffc, SingleFailureProtectionInvariant) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  FfcScheme ffc(topo, catalog, 1);
  WorkloadConfig cfg;
  cfg.horizon_min = 8.0;
  cfg.mean_duration_min = 30.0;
  cfg.seed = 31;
  auto demands = generate_demands(catalog, cfg);
  if (demands.size() > 8) demands.resize(8);
  const auto allocs = ffc.allocate(demands);

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& tunnels = catalog.tunnels(demands[i].pairs[0].pair);
    const double total = pair_total(allocs[i]);
    if (total < 1e-6) continue;
    // Grant = min over single-link knockouts of surviving bandwidth; by the
    // LP this must be >= the no-failure grant s*b, i.e. the allocation is
    // spread so that no single link carries "unprotected" traffic beyond
    // the over-provisioned slack. We verify the defining property:
    // surviving >= granted for every single failure, where granted is the
    // demand's protected level = min over links of surviving bandwidth.
    double granted = total;
    for (LinkId e = 0; e < topo.link_count(); ++e) {
      double surviving = 0.0;
      bool pair_uses_link = false;
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        if (tunnels[t].uses(e)) {
          pair_uses_link = true;
        } else {
          surviving += allocs[i][0][t];
        }
      }
      if (pair_uses_link) granted = std::min(granted, surviving);
    }
    // FFC's grant must cover the demand or be the best protected level;
    // either way the protected level cannot be zero while the no-failure
    // allocation is large (that would be unprotected traffic).
    if (total >= demands[i].pairs[0].mbps * 0.5) {
      EXPECT_GT(granted, 0.0) << "demand " << i;
    }
  }
}

TEST(Teavar, Fig2cOneSizeFitsAll) {
  Toy4 fx;
  // beta = 0.90: TEAVAR can grant both demands fully (Fig 2c), but user1's
  // 99 % target is not met — the one-size-fits-all limitation.
  TeavarScheme teavar(fx.topo, fx.catalog, 0.90);
  const auto allocs = teavar.allocate(fx.demands);
  EXPECT_NEAR(pair_total(allocs[0]), 6000.0, 100.0);
  EXPECT_NEAR(pair_total(allocs[1]), 12000.0, 100.0);

  const AvailabilityEvaluator eval(fx.topo, fx.catalog);
  const double a1 = eval.availability(fx.demands[0], allocs[0]);
  EXPECT_LT(a1, 0.99);  // violates user1's target, as the paper argues
  EXPECT_TRUE(eval.satisfied(fx.demands[1], allocs[1]));
}

TEST(Swan, MaximizesThroughput) {
  Toy4 fx;
  SwanScheme swan(fx.topo, fx.catalog);
  const auto allocs = swan.allocate(fx.demands);
  // 18G demanded, 20G of path capacity: everything fits.
  EXPECT_NEAR(pair_total(allocs[0]) + pair_total(allocs[1]), 18000.0, 10.0);
}

TEST(Swan, GrantsPartialUnderOverload) {
  Toy4 fx;
  const std::vector<Demand> demands = {make_demand(0, 0, 30000.0, 0.9)};
  SwanScheme swan(fx.topo, fx.catalog);
  const auto allocs = swan.allocate(demands);
  EXPECT_NEAR(pair_total(allocs[0]), 20000.0, 10.0);  // both paths full
}

TEST(B4, ProgressiveFillingIsFair) {
  Toy4 fx;
  // Two equal demands sharing the same pair: progressive filling should
  // grant them equal shares of the 20G.
  const std::vector<Demand> demands = {make_demand(0, 0, 15000.0, 0.9),
                                       make_demand(1, 0, 15000.0, 0.9)};
  B4Scheme b4(fx.topo, fx.catalog, 0.05);
  const auto allocs = b4.allocate(demands);
  const double g0 = pair_total(allocs[0]);
  const double g1 = pair_total(allocs[1]);
  EXPECT_NEAR(g0, g1, 1500.0);  // fair within one quantum
  EXPECT_LE(g0 + g1, 20000.0 + 1.0);
  EXPECT_GT(g0 + g1, 18000.0);  // fills the network
}

TEST(B4, SatisfiesSmallDemandsFully) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  const std::vector<Demand> demands = {make_demand(0, 0, 50.0, 0.9),
                                       make_demand(1, 5, 80.0, 0.9)};
  B4Scheme b4(topo, catalog);
  const auto allocs = b4.allocate(demands);
  EXPECT_NEAR(pair_total(allocs[0]), 50.0, 1.0);
  EXPECT_NEAR(pair_total(allocs[1]), 80.0, 1.0);
}

TEST(Smore, UsesObliviousCatalogAndBalancesLoad) {
  const Topology topo = testbed6();
  const auto oblivious =
      TunnelCatalog::build_all_pairs(topo, 4, RoutingScheme::kOblivious);
  SmoreScheme smore(topo, oblivious);
  const std::vector<Demand> demands = {make_demand(0, 0, 600.0, 0.9),
                                       make_demand(1, 1, 600.0, 0.9)};
  const auto allocs = smore.allocate(demands);
  EXPECT_NEAR(pair_total(allocs[0]), 600.0, 10.0);
  EXPECT_NEAR(pair_total(allocs[1]), 600.0, 10.0);
  // No link overloaded.
  const auto usage = link_usage(topo, oblivious, demands, allocs);
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    EXPECT_LE(usage[static_cast<std::size_t>(e)],
              topo.link(e).capacity + 1e-6);
  }
}

TEST(BateScheme, WrapsSchedulerAndFallsBack) {
  Toy4 fx;
  TrafficScheduler scheduler(fx.topo, fx.catalog, SchedulerConfig{});
  BateScheme bate(scheduler);
  EXPECT_EQ(bate.name(), "BATE");

  // Feasible set: scheduled by the LP.
  const auto ok = bate.allocate(fx.demands);
  EXPECT_NEAR(pair_total(ok[0]), 6000.0, 1.0);

  // Infeasible set (40G through a 20G cut): greedy fallback serves the
  // high-availability demand whole and best-effort for the rest.
  const std::vector<Demand> heavy = {make_demand(0, 0, 8000.0, 0.99),
                                     make_demand(1, 0, 32000.0, 0.5)};
  const auto fb = bate.allocate(heavy);
  EXPECT_NEAR(pair_total(fb[0]), 8000.0, 1.0);
  EXPECT_LE(pair_total(fb[1]), 12000.0 + 1.0);
}

// Capacity safety across every scheme on a random workload.
class BaselineCapacity : public ::testing::TestWithParam<int> {};

TEST_P(BaselineCapacity, NoSchemeOverloadsLinks) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});

  WorkloadConfig cfg;
  cfg.arrival_rate_per_min = 2.0;
  cfg.horizon_min = 8.0;
  cfg.mean_duration_min = 30.0;
  cfg.bw_min_mbps = 20.0;
  cfg.bw_max_mbps = 150.0;
  cfg.seed = 6000 + static_cast<std::uint64_t>(GetParam());
  auto demands = generate_demands(catalog, cfg);
  if (demands.size() > 12) demands.resize(12);
  if (demands.empty()) GTEST_SKIP();

  std::vector<std::unique_ptr<TeScheme>> schemes;
  schemes.push_back(std::make_unique<FfcScheme>(topo, catalog, 1));
  schemes.push_back(std::make_unique<TeavarScheme>(topo, catalog, 0.999));
  schemes.push_back(std::make_unique<SwanScheme>(topo, catalog));
  schemes.push_back(std::make_unique<SmoreScheme>(topo, catalog));
  schemes.push_back(std::make_unique<B4Scheme>(topo, catalog));
  schemes.push_back(std::make_unique<BateScheme>(scheduler));

  for (const auto& scheme : schemes) {
    const auto allocs = scheme->allocate(demands);
    ASSERT_EQ(allocs.size(), demands.size()) << scheme->name();
    const auto usage =
        link_usage(topo, scheme->tunnel_catalog(), demands, allocs);
    for (LinkId e = 0; e < topo.link_count(); ++e) {
      EXPECT_LE(usage[static_cast<std::size_t>(e)],
                topo.link(e).capacity * 1.001 + 1e-3)
          << scheme->name() << " link " << e;
    }
    for (const auto& a : allocs) {
      for (const auto& per_pair : a) {
        for (double f : per_pair) EXPECT_GE(f, -1e-9) << scheme->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineCapacity, ::testing::Range(0, 6));

}  // namespace
}  // namespace bate
