// Equivalence and accounting for the batched lockstep LP backend
// (src/solver/batch.h) against per-instance solve_lp.
//
// The batched engine's contract is exactness: every lane retires either at
// a verified dense optimum or through the solve_lp fallback, so statuses
// must match per-instance solve_lp bit-for-bit and objectives to 1e-6.
// The random sweep covers both engine modes — bounds/rhs-only batches take
// the hot-start dual-repair path (one template factorization shared by all
// lanes), cost-edited batches take the slack-basis primal path — plus
// infeasible and unbounded instances mixed into otherwise-optimal batches
// (those verdicts need certificates and must route through the fallback).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "core/recovery.h"
#include "core/scheduling.h"
#include "obs/metrics.h"
#include "scenario/pattern.h"
#include "solver/batch.h"
#include "solver/simplex.h"
#include "topology/catalog.h"
#include "workload/demand.h"

namespace bate {
namespace {

constexpr double kRelTol = 1e-6;

/// Random bounded template LP with a mix of row relations, bound shapes
/// and senses (same family as simplex_equivalence_test).
Model random_template(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> nvars_d(2, 10);
  std::uniform_int_distribution<int> nrows_d(1, 12);
  std::uniform_real_distribution<double> coef_d(-4.0, 4.0);
  std::uniform_real_distribution<double> unit_d(0.0, 1.0);

  Model m;
  if (unit_d(rng) < 0.5) m.set_sense(Sense::kMaximize);
  const int n = nvars_d(rng);
  for (int j = 0; j < n; ++j) {
    const double lo = unit_d(rng) < 0.3 ? coef_d(rng) * 0.5 : 0.0;
    double hi = kInfinity;
    if (unit_d(rng) < 0.6) hi = lo + std::abs(coef_d(rng)) * 3.0;
    m.add_variable(std::min(lo, hi), hi, coef_d(rng));
  }
  const int rows = nrows_d(rng);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (unit_d(rng) < 0.5) terms.push_back({j, coef_d(rng)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double roll = unit_d(rng);
    const Relation rel = roll < 0.6    ? Relation::kLessEqual
                         : roll < 0.85 ? Relation::kGreaterEqual
                                       : Relation::kEqual;
    m.add_constraint(std::move(terms), rel, coef_d(rng) * 2.0);
  }
  return m;
}

/// Random per-instance edit. Bound deltas fix variables or shrink their
/// boxes (the scheduler/recovery shape: a failed tunnel is a variable fixed
/// to zero), rhs deltas perturb capacities, and — only when `allow_costs`
/// — cost deltas reprice variables, which disables the shared hot start.
InstanceDelta random_delta(const Model& tmpl, std::mt19937_64& rng,
                           bool allow_costs) {
  std::uniform_real_distribution<double> unit_d(0.0, 1.0);
  std::uniform_real_distribution<double> coef_d(-4.0, 4.0);
  InstanceDelta d;
  for (int j = 0; j < tmpl.variable_count(); ++j) {
    const double roll = unit_d(rng);
    if (roll < 0.15) {
      d.bounds.push_back({j, 0.0, 0.0});  // failed-tunnel shape
    } else if (roll < 0.35) {
      const double lo = coef_d(rng) * 0.5;
      const double hi =
          unit_d(rng) < 0.7 ? lo + std::abs(coef_d(rng)) * 2.0 : kInfinity;
      d.bounds.push_back({j, lo, hi});
    }
    if (allow_costs && unit_d(rng) < 0.25) {
      d.costs.push_back({j, coef_d(rng)});
    }
  }
  for (int r = 0; r < tmpl.constraint_count(); ++r) {
    if (unit_d(rng) < 0.3) d.rhs.push_back({r, coef_d(rng) * 2.0});
  }
  return d;
}

/// Batched results must match per-instance solve_lp on status and, when
/// optimal, objective to relative 1e-6.
void expect_batch_equivalent(const Model& tmpl,
                             const std::vector<InstanceDelta>& deltas,
                             const std::string& what,
                             BatchStats* stats = nullptr) {
  SimplexOptions batched;
  batched.backend = SolveBackend::kBatched;
  const auto got = solve_lp_batch(tmpl, deltas, batched, stats);
  ASSERT_EQ(got.size(), deltas.size()) << what;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const Solution want = solve_lp(apply_delta(tmpl, deltas[i]));
    ASSERT_EQ(got[i].status, want.status) << what << " instance " << i;
    if (want.status == SolveStatus::kOptimal) {
      const double denom = std::max(1.0, std::abs(want.objective));
      EXPECT_LE(std::abs(got[i].objective - want.objective) / denom, kRelTol)
          << what << " instance " << i;
    }
  }
}

class BatchEquivalenceRandom : public ::testing::TestWithParam<int> {};

TEST_P(BatchEquivalenceRandom, BatchedMatchesSerial) {
  const int shard = GetParam();
  // 10 batches per ctest shard x 20 shards = 200 seeded template+delta
  // batches, 8 instances each. Even shards are bounds/rhs-only (hot-start
  // dual path); odd shards include cost deltas (slack-basis primal path).
  const bool allow_costs = (shard % 2) == 1;
  for (int k = 0; k < 10; ++k) {
    const std::uint64_t s = 77000u + static_cast<std::uint64_t>(shard) * 10u +
                            static_cast<std::uint64_t>(k);
    const Model tmpl = random_template(s);
    std::mt19937_64 rng(s ^ 0x9e3779b97f4a7c15ull);
    std::vector<InstanceDelta> deltas;
    for (int i = 0; i < 8; ++i) {
      deltas.push_back(random_delta(tmpl, rng, allow_costs));
    }
    expect_batch_equivalent(tmpl, deltas, "batch seed " + std::to_string(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchEquivalenceRandom,
                         ::testing::Range(0, 20));

TEST(Batch, MixedVerdictsAndFallbackAccounting) {
  // max x0 + x1  s.t.  x0 + x1 <= 4,  x0 in [0,3], x1 in [0,3].
  Model tmpl;
  tmpl.set_sense(Sense::kMaximize);
  tmpl.add_variable(0.0, 3.0, 1.0);
  tmpl.add_variable(0.0, 3.0, 1.0);
  tmpl.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0);

  std::vector<InstanceDelta> deltas(5);
  // [0] untouched template: optimal at 4.
  // [1] infeasible: both variables fixed to 3 but the row caps the sum at 4.
  deltas[1].bounds = {{0, 3.0, 3.0}, {1, 3.0, 3.0}};
  // [2] infeasible by rhs: x0 + x1 <= -1 with x >= 0.
  deltas[2].rhs = {{0, -1.0}};
  // [3] tightened rhs: optimal at 2.
  deltas[3].rhs = {{0, 2.0}};
  // [4] repriced (cost delta): minimize-direction flip on x1.
  deltas[4].costs = {{1, -2.0}};

  BatchStats stats;
  expect_batch_equivalent(tmpl, deltas, "mixed verdicts", &stats);
  EXPECT_EQ(stats.instances, 5);
  EXPECT_EQ(stats.lanes, 5);
  // Every lane retires exactly once, as a verified optimum or a fallback.
  EXPECT_EQ(stats.batched_optimal + stats.fallbacks, stats.lanes);
  // The two infeasible instances need certificates, which the dense engine
  // never produces itself.
  EXPECT_GE(stats.fallbacks, 2);
}

TEST(Batch, UnboundedRoutesThroughFallback) {
  // max x0 with x0 free above: unbounded; sibling instance caps it.
  Model tmpl;
  tmpl.set_sense(Sense::kMaximize);
  tmpl.add_variable(0.0, kInfinity, 1.0);
  tmpl.add_variable(0.0, 5.0, 0.0);
  tmpl.add_constraint({{1, 1.0}}, Relation::kLessEqual, 5.0);

  std::vector<InstanceDelta> deltas(2);
  deltas[1].bounds = {{0, 0.0, 7.0}};

  BatchStats stats;
  expect_batch_equivalent(tmpl, deltas, "unbounded", &stats);
  EXPECT_GE(stats.fallbacks, 1);
}

TEST(Batch, SerialBackendBypassesLanes) {
  const Model tmpl = random_template(4242);
  std::mt19937_64 rng(4242);
  std::vector<InstanceDelta> deltas;
  for (int i = 0; i < 4; ++i) deltas.push_back(random_delta(tmpl, rng, true));

  BatchStats stats;
  SimplexOptions serial;  // default backend
  const auto got = solve_lp_batch(tmpl, deltas, serial, &stats);
  ASSERT_EQ(got.size(), deltas.size());
  EXPECT_EQ(stats.instances, 4);
  EXPECT_EQ(stats.lanes, 0);
  EXPECT_EQ(stats.lockstep_iterations, 0);
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const Solution want = solve_lp(apply_delta(tmpl, deltas[i]));
    EXPECT_EQ(got[i].status, want.status);
  }
}

TEST(Batch, ReferenceModeForcesSerialPath) {
  const Model tmpl = random_template(999);
  std::mt19937_64 rng(999);
  std::vector<InstanceDelta> deltas = {random_delta(tmpl, rng, false),
                                       random_delta(tmpl, rng, false)};
  BatchStats stats;
  SimplexOptions opt;
  opt.backend = SolveBackend::kBatched;
  opt.reference_mode = true;
  solve_lp_batch(tmpl, deltas, opt, &stats);
  EXPECT_EQ(stats.lanes, 0);
}

TEST(Batch, ObsCountersFlushPerSolve) {
  auto& reg = obs::Registry::global();
  const long i0 = reg.counter("bate_batch_instances_total").value();
  const long s0 = reg.counter("bate_batch_solves_total").value();

  const Model tmpl = random_template(31337);
  std::mt19937_64 rng(31337);
  std::vector<InstanceDelta> deltas = {random_delta(tmpl, rng, false),
                                       random_delta(tmpl, rng, false),
                                       random_delta(tmpl, rng, false)};
  SimplexOptions batched;
  batched.backend = SolveBackend::kBatched;
  solve_lp_batch(tmpl, deltas, batched);

  EXPECT_EQ(reg.counter("bate_batch_instances_total").value() - i0, 3);
  EXPECT_EQ(reg.counter("bate_batch_solves_total").value() - s0, 1);
}

TEST(Batch, SchedulerCapabilityTableMatchesSerial) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  std::vector<PatternDistribution> dists;
  for (int p = 0; p < catalog.pair_count(); ++p) {
    dists.push_back(pruned_patterns(topo, catalog.tunnels(p), 3));
  }

  const SimplexOptions serial_lp;
  SimplexOptions batch_lp;
  batch_lp.backend = SolveBackend::kBatched;
  const auto want =
      precompute_pattern_capabilities(topo, catalog, dists, serial_lp);
  BatchStats stats;
  const auto got =
      precompute_pattern_capabilities(topo, catalog, dists, batch_lp, &stats);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t p = 0; p < want.size(); ++p) {
    ASSERT_EQ(got[p].size(), want[p].size()) << "pair " << p;
    for (std::size_t s = 0; s < want[p].size(); ++s) {
      const double denom =
          std::max({1.0, std::abs(want[p][s]), std::abs(got[p][s])});
      EXPECT_LE(std::abs(want[p][s] - got[p][s]) / denom, kRelTol)
          << "pair " << p << " pattern " << s;
    }
  }
  EXPECT_GT(stats.lanes, 0);
}

TEST(Batch, BackupPlannerPlansMatchSerial) {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);

  std::vector<Demand> demands;
  for (int i = 0; i < 10; ++i) {
    Demand d;
    d.id = i;
    d.pairs = {{i % catalog.pair_count(), 40.0 + 13.0 * (i % 4)}};
    d.availability_target = 0.99;
    d.charge = 10.0 + static_cast<double>(i);
    d.refund_fraction = 0.2 + 0.15 * static_cast<double>(i % 5);
    demands.push_back(std::move(d));
  }
  std::vector<Allocation> current;
  for (const Demand& d : demands) {
    Allocation a;
    for (const auto& pr : d.pairs) {
      const auto tunnels = catalog.tunnels(pr.pair);
      a.emplace_back(tunnels.size(),
                     pr.mbps / static_cast<double>(tunnels.size()));
    }
    current.push_back(std::move(a));
  }

  BackupPlanner sp(topo, catalog, 4);
  sp.use_optimal_plans(BranchBoundOptions{});
  sp.precompute(demands, current);

  BranchBoundOptions batch_opt;
  batch_opt.lp.backend = SolveBackend::kBatched;
  BackupPlanner bp(topo, catalog, 4);
  bp.use_optimal_plans(batch_opt);
  bp.precompute(demands, current);

  ASSERT_EQ(sp.plan_count(), bp.plan_count());
  ASSERT_GT(sp.plan_count(), 0u);
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    const RecoveryResult* a = sp.plan(e);
    const RecoveryResult* b = bp.plan(e);
    ASSERT_EQ(a == nullptr, b == nullptr) << "link " << e;
    if (a != nullptr) {
      EXPECT_EQ(a->solved, b->solved) << "link " << e;
      const double denom = std::max(1.0, std::abs(a->profit));
      EXPECT_LE(std::abs(a->profit - b->profit) / denom, kRelTol)
          << "link " << e;
    }
  }
}

TEST(Batch, ApplyDeltaValidatesIndices) {
  Model tmpl;
  tmpl.add_variable(0.0, 1.0, 1.0);
  tmpl.add_constraint({{0, 1.0}}, Relation::kLessEqual, 1.0);

  InstanceDelta bad_var;
  bad_var.bounds = {{3, 0.0, 1.0}};
  EXPECT_THROW(apply_delta(tmpl, bad_var), std::invalid_argument);

  InstanceDelta bad_row;
  bad_row.rhs = {{7, 1.0}};
  EXPECT_THROW(apply_delta(tmpl, bad_row), std::invalid_argument);

  InstanceDelta crossed;
  crossed.bounds = {{0, 2.0, 1.0}};
  EXPECT_THROW(apply_delta(tmpl, crossed), std::invalid_argument);
}

TEST(BatchStatsTest, MergeAccumulates) {
  BatchStats a;
  a.instances = 3;
  a.lanes = 3;
  a.lockstep_iterations = 17;
  a.batched_optimal = 2;
  a.fallbacks = 1;
  BatchStats b = a;
  b.merge(a);
  EXPECT_EQ(b.instances, 6);
  EXPECT_EQ(b.lanes, 6);
  EXPECT_EQ(b.lockstep_iterations, 34);
  EXPECT_EQ(b.batched_optimal, 4);
  EXPECT_EQ(b.fallbacks, 2);
}

}  // namespace
}  // namespace bate
