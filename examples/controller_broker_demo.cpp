// The BATE system (Sec 4) running for real: a controller and three brokers
// exchange protocol messages over loopback TCP. Users submit demands, the
// brokers receive bandwidth-enforcement updates, a broker reports a link
// failure and the pre-computed backup plan is pushed out immediately.
//
// Build & run:  ./build/examples/controller_broker_demo
#include <chrono>
#include <cstdio>
#include <thread>

#include "system/broker.h"
#include "system/client.h"
#include "system/controller.h"
#include "topology/catalog.h"

using namespace bate;

namespace {

void wait_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

int main() {
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);

  Controller controller(topo, catalog, SchedulerConfig{},
                        AdmissionStrategy::kBate);
  controller.start();
  std::printf("controller listening on 127.0.0.1:%u\n", controller.port());

  Broker brokers[] = {Broker(0, controller.port()),
                      Broker(2, controller.port()),
                      Broker(4, controller.port())};
  for (auto& b : brokers) b.start();
  std::printf("3 brokers connected (DC1, DC3, DC5)\n\n");

  UserClient user(controller.port());
  struct Request {
    DemandId id;
    int pair;
    double mbps;
    double beta;
  };
  const Request requests[] = {
      {1, catalog.pair_index({0, 2}), 300.0, 0.9995},
      {2, catalog.pair_index({0, 3}), 450.0, 0.999},
      {3, catalog.pair_index({0, 4}), 700.0, 0.95},
      {4, catalog.pair_index({0, 2}), 4000.0, 0.99},  // too big: rejected
  };
  for (const Request& r : requests) {
    Demand d;
    d.id = r.id;
    d.pairs = {{r.pair, r.mbps}};
    d.availability_target = r.beta;
    d.charge = r.mbps;
    d.refund_fraction = 0.25;
    const bool admitted = user.submit(d);
    std::printf("submit demand %d (%.0f Mbps @ %.4f%%): %s\n", r.id, r.mbps,
                r.beta * 100.0, admitted ? "admitted" : "rejected");
  }

  wait_ms(200);  // let allocation broadcasts drain
  std::printf("\nbandwidth enforcer view (broker at DC1):\n");
  for (const Request& r : requests) {
    const double rate = brokers[0].enforced_total(r.id, r.pair);
    if (rate > 0.0) {
      std::printf("  demand %d enforced at %.0f Mbps\n", r.id, rate);
    }
  }

  // A broker's network agent notices L4 (DC4-DC5, the flaky 1% link) died.
  const LinkId l4 = testbed_link(topo, "L4");
  std::printf("\nbroker at DC5 reports %s DOWN\n", topo.link(l4).name.c_str());
  brokers[2].report_link(l4, false);
  wait_ms(300);
  std::printf("backup plan active at brokers: %s\n",
              brokers[0].backup_active() ? "yes" : "no");

  std::printf("link repaired; normal allocation restored\n");
  brokers[2].report_link(l4, true);
  wait_ms(300);
  std::printf("backup plan active at brokers: %s\n",
              brokers[0].backup_active() ? "yes" : "no");

  const ControllerStats stats = controller.stats();
  std::printf(
      "\ncontroller stats: %d offered, %d admitted, %d failures handled, "
      "%d allocation updates sent\n",
      stats.demands_offered, stats.demands_admitted,
      stats.link_failures_handled, stats.allocation_updates_sent);

  for (auto& b : brokers) b.stop();
  controller.stop();
  return 0;
}
