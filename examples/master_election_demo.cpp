// Controller replication (Sec 4): "controller failures can be remedied by
// using multiple replications, where the master controller is elected by
// the Paxos algorithm." Five controller replicas run single-decree Paxos;
// the elected master starts the real controller; a broker connects to it.
//
// Build & run:  ./build/examples/master_election_demo
#include <cstdio>
#include <vector>

#include "system/broker.h"
#include "system/client.h"
#include "system/controller.h"
#include "system/election.h"
#include "topology/catalog.h"

using namespace bate;

int main() {
  constexpr int kReplicas = 5;
  std::vector<ElectionInstance> replicas;
  for (int i = 0; i < kReplicas; ++i) replicas.emplace_back(i, kReplicas);

  // Replica 2 notices there is no master and proposes itself. (In
  // production the proposal is triggered by lease expiry; the protocol is
  // identical.)
  const int candidate = 2;
  std::printf("replica %d proposes itself as master\n", candidate);
  const PrepareMsg prepare = replicas[candidate].proposer().start(candidate);

  std::vector<PromiseMsg> promises;
  for (auto& r : replicas) {
    if (auto p = r.acceptor().on_prepare(prepare)) promises.push_back(*p);
  }
  std::printf("phase 1: %zu/%d promises\n", promises.size(), kReplicas);

  std::optional<AcceptMsg> accept;
  for (const PromiseMsg& p : promises) {
    if (auto a = replicas[candidate].proposer().on_promise(p)) accept = a;
  }
  if (!accept) {
    std::printf("no quorum; election failed\n");
    return 1;
  }

  std::optional<MasterId> master;
  for (auto& r : replicas) {
    if (auto accepted = r.acceptor().on_accept(*accept)) {
      if (auto m = replicas[candidate].proposer().on_accepted(*accepted)) {
        master = m;
      }
    }
  }
  if (!master) {
    std::printf("no accept quorum; election failed\n");
    return 1;
  }
  for (auto& r : replicas) r.learn(*master);
  std::printf("phase 2: replica %d elected master by quorum\n\n", *master);

  // The master starts the actual controller service.
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  Controller controller(topo, catalog);
  controller.start();
  std::printf("master controller (replica %d) serving on port %u\n", *master,
              controller.port());

  Broker broker(0, controller.port());
  broker.start();
  UserClient user(controller.port());
  Demand d;
  d.id = 1;
  d.pairs = {{catalog.pair_index({0, 3}), 250.0}};
  d.availability_target = 0.999;
  d.charge = 250.0;
  std::printf("demand submitted to elected master: %s\n",
              user.submit(d) ? "admitted" : "rejected");

  broker.stop();
  controller.stop();

  // A second election round cannot change the decision (Paxos safety).
  const PrepareMsg retry = replicas[4].proposer().start(4);
  std::vector<PromiseMsg> retry_promises;
  for (auto& r : replicas) {
    if (auto p = r.acceptor().on_prepare(retry)) retry_promises.push_back(*p);
  }
  std::optional<AcceptMsg> retry_accept;
  for (const PromiseMsg& p : retry_promises) {
    if (auto a = replicas[4].proposer().on_promise(p)) retry_accept = a;
  }
  std::printf("\nreplica 4 retries the election; Paxos forces it to adopt "
              "the existing master: value=%d (still replica %d)\n",
              retry_accept ? retry_accept->value : -1, *master);
  return 0;
}
