// Quickstart: the BATE pipeline end to end on the paper's testbed topology.
//
//   1. Build a WAN topology and pre-compute tunnels (offline routing).
//   2. Create the traffic scheduler (pruned failure model, y = 2).
//   3. Offer BA demands to the admission controller.
//   4. Inspect the scheduled allocations and their hard availability.
//   5. Fail a link and watch the greedy recovery protect profit.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/admission.h"
#include "core/pricing.h"
#include "core/recovery.h"
#include "core/scheduling.h"
#include "topology/catalog.h"
#include "util/table.h"

using namespace bate;

int main() {
  // 1. Topology + offline routing (4-shortest-path tunnels, as in Sec 5.1).
  const Topology topo = testbed6();
  const auto catalog = TunnelCatalog::build_all_pairs(topo, 4);
  std::printf("Topology %s: %d DCs, %d directed links, %d tunnels\n",
              topo.name().c_str(), topo.node_count(), topo.link_count(),
              catalog.total_tunnels());

  // 2. Scheduler with the paper's pruning (at most 2 concurrent failures).
  SchedulerConfig cfg;
  cfg.max_failures = 2;
  const TrafficScheduler scheduler(topo, catalog, cfg);

  // 3. Admission control (BATE strategy: fixed check, then Algorithm 1).
  AdmissionController admission(scheduler, AdmissionStrategy::kBate);

  auto offer = [&](DemandId id, const char* from, const char* to, double mbps,
                   double beta) {
    Demand d;
    d.id = id;
    SdPair pair;
    for (NodeId n = 0; n < topo.node_count(); ++n) {
      if (topo.node_label(n) == from) pair.src = n;
      if (topo.node_label(n) == to) pair.dst = n;
    }
    d.pairs = {{catalog.pair_index(pair), mbps}};
    d.availability_target = beta;
    d.charge = mbps;          // unit price per Mbps (Sec 5.1)
    d.refund_fraction = 0.25;  // Azure-style refund tier
    const AdmissionOutcome outcome = admission.offer(d);
    std::printf("demand %d: %s->%s %.0f Mbps @ %.4f%%  ->  %s%s\n", id, from,
                to, mbps, beta * 100.0,
                outcome.admitted ? "ADMITTED" : "REJECTED",
                outcome.via_conjecture ? " (via Algorithm-1 conjecture)" : "");
    return outcome.admitted;
  };

  offer(1, "DC1", "DC3", 400.0, 0.9995);  // photo service class (Table 1)
  offer(2, "DC1", "DC4", 500.0, 0.999);   // ads database replication
  offer(3, "DC1", "DC5", 800.0, 0.95);    // bulk-ish, low target
  offer(4, "DC2", "DC6", 600.0, 0.99);    // search index copies
  offer(5, "DC1", "DC3", 5000.0, 0.99);   // oversized: should be rejected

  // 4. Periodic traffic scheduling (Sec 3.3) and the resulting allocations.
  admission.reschedule();
  Table table({"demand", "tunnel", "Mbps", "hard availability", "target"});
  const auto& demands = admission.admitted();
  const auto& allocs = admission.allocations();
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const double avail =
        scheduler.achieved_availability(demands[i], allocs[i]);
    const auto& tunnels = catalog.tunnels(demands[i].pairs[0].pair);
    for (std::size_t t = 0; t < tunnels.size(); ++t) {
      if (allocs[i][0][t] <= 0.5) continue;
      table.add_row({std::to_string(demands[i].id),
                     tunnels[t].to_string(topo), fmt(allocs[i][0][t], 0),
                     fmt(avail * 100.0, 4) + "%",
                     fmt(demands[i].availability_target * 100.0, 2) + "%"});
    }
  }
  std::printf("\n%s", table.to_string("Scheduled allocations").c_str());

  // 5. Fail the testbed's flakiest link (L4, 1%) and recover (Sec 3.4).
  const LinkId l4 = testbed_link(topo, "L4");
  std::printf("\nFailing link %s ...\n", topo.link(l4).name.c_str());
  const LinkId failed[] = {l4};
  const RecoveryResult rec =
      recover_greedy(topo, catalog, demands, failed);
  const double before = full_profit(demands);
  std::printf("profit without failure: %.0f; after greedy recovery: %.0f "
              "(%.1f%% retained)\n",
              before, rec.profit, 100.0 * rec.profit / before);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (!rec.full_profit[i]) {
      std::printf("  demand %d violated its BA target -> refunding %.0f%%\n",
                  demands[i].id, demands[i].refund_fraction * 100.0);
    }
  }
  return 0;
}
