// The paper's motivating example (Sec 2.2, Fig 2): two users from DC1 to
// DC4 over a 4-DC toy WAN — user1 wants 6 Gbps at 99 %, user2 wants
// 12 Gbps at 90 %. FFC under-provisions, TEAVAR applies one availability
// level to everyone, BATE matches users to paths whose failure
// probabilities fit their targets.
//
// Build & run:  ./build/examples/motivating_example
#include <cstdio>
#include <memory>

#include "baselines/ffc.h"
#include "baselines/teavar.h"
#include "core/bate_scheme.h"
#include "core/scheduling.h"
#include "sim/experiment.h"
#include "topology/catalog.h"
#include "util/table.h"

using namespace bate;

int main() {
  const Topology topo = toy4();
  const auto catalog =
      TunnelCatalog::build(topo, std::vector<SdPair>{{0, 3}}, 2);

  std::printf("Fig 2(a): DC1->DC4 over two 10 Gbps paths\n");
  for (const auto& tunnel : catalog.tunnels(0)) {
    std::printf("  %-22s availability %.6f%%\n",
                tunnel.to_string(topo).c_str(),
                tunnel.availability(topo) * 100.0);
  }

  Demand user1;
  user1.id = 1;
  user1.pairs = {{0, 6000.0}};
  user1.availability_target = 0.99;
  user1.charge = 6000.0;
  Demand user2;
  user2.id = 2;
  user2.pairs = {{0, 12000.0}};
  user2.availability_target = 0.90;
  user2.charge = 12000.0;
  const std::vector<Demand> demands = {user1, user2};

  const TrafficScheduler scheduler(topo, catalog, SchedulerConfig{});
  const BateScheme bate(scheduler);
  const FfcScheme ffc(topo, catalog, 1);
  const TeavarScheme teavar(topo, catalog, 0.90);
  const AvailabilityEvaluator evaluator(topo, catalog);

  const TeScheme* schemes[] = {&ffc, &teavar, &bate};
  Table table({"scheme", "user", "via DC2 (Mbps)", "via DC3 (Mbps)",
               "availability", "target", "met?"});
  for (const TeScheme* scheme : schemes) {
    const auto allocs = scheme->allocate(demands);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const double avail = evaluator.availability(demands[i], allocs[i]);
      const bool met = evaluator.satisfied(demands[i], allocs[i]);
      // Identify which tunnel goes via DC2.
      double via_dc2 = 0.0;
      double via_dc3 = 0.0;
      for (std::size_t t = 0; t < catalog.tunnels(0).size(); ++t) {
        if (catalog.tunnels(0)[t].uses(topo.find_link(0, 1))) {
          via_dc2 = allocs[i][0][t];
        } else {
          via_dc3 = allocs[i][0][t];
        }
      }
      table.add_row({scheme->name(), "user" + std::to_string(demands[i].id),
                     fmt(via_dc2, 0), fmt(via_dc3, 0),
                     fmt(avail * 100.0, 4) + "%",
                     fmt(demands[i].availability_target * 100.0, 2) + "%",
                     met ? "yes" : "NO"});
    }
  }
  std::printf("\n%s", table.to_string("Fig 2(b,c,d): allocations").c_str());
  std::printf(
      "\nFFC (l=1) protects against any single failure and cannot grant the"
      "\nfull 18G; TEAVAR grants everything but at one availability level,"
      "\nviolating user1's 99%% target; BATE satisfies both (Fig 2d).\n");
  return 0;
}
