// Failure recovery walk-through (Sec 3.4, Fig 4): backup allocations are
// pre-computed per link; when DC2->DC4 fails, traffic shifts to the
// surviving square side immediately. Also demonstrates the profit-aware
// greedy vs optimal recovery on a contended scenario.
//
// Build & run:  ./build/examples/failure_recovery_demo
#include <cstdio>

#include "core/pricing.h"
#include "core/recovery.h"
#include "core/scheduling.h"
#include "topology/catalog.h"
#include "util/table.h"

using namespace bate;

namespace {

void print_allocation(const Topology& topo, const TunnelCatalog& catalog,
                      const std::vector<Demand>& demands,
                      const std::vector<Allocation>& allocs,
                      const char* title) {
  Table table({"demand", "tunnel", "rate"});
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& tunnels = catalog.tunnels(demands[i].pairs[0].pair);
    for (std::size_t t = 0; t < tunnels.size(); ++t) {
      if (allocs[i][0][t] <= 1e-9) continue;
      table.add_row({std::to_string(demands[i].id),
                     tunnels[t].to_string(topo), fmt(allocs[i][0][t], 2)});
    }
  }
  std::printf("%s", table.to_string(title).c_str());
}

}  // namespace

int main() {
  // --- Part 1: the Fig 4 example --------------------------------------
  const Topology square = square4();
  const auto catalog =
      TunnelCatalog::build(square, std::vector<SdPair>{{0, 1}, {0, 3}}, 3);

  Demand to_dc2;
  to_dc2.id = 1;
  to_dc2.pairs = {{0, 1.0}};
  to_dc2.availability_target = 0.99;
  to_dc2.charge = 1.0;
  to_dc2.refund_fraction = 0.25;
  Demand to_dc4 = to_dc2;
  to_dc4.id = 2;
  to_dc4.pairs = {{1, 1.0}};
  const std::vector<Demand> demands = {to_dc2, to_dc4};

  // Fig 4(a)'s split allocation: each demand carries 0.5 on each of its
  // two paths.
  std::vector<Allocation> fig4a(2);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& tunnels = catalog.tunnels(demands[i].pairs[0].pair);
    fig4a[i].resize(1);
    fig4a[i][0].assign(tunnels.size(), 0.0);
    int placed = 0;
    for (std::size_t t = 0; t < tunnels.size() && placed < 2; ++t) {
      fig4a[i][0][t] = 0.5;
      ++placed;
    }
  }
  print_allocation(square, catalog, demands, fig4a,
                   "Fig 4(a): original allocation");

  // Pre-compute backups for every loaded link (what the online scheduler
  // does each round), then fail DC2->DC4 as in the paper.
  BackupPlanner planner(square, catalog);
  planner.precompute(demands, fig4a);
  std::printf("\nbackup plans pre-computed for %zu links\n",
              planner.plan_count());

  const LinkId failed_link = square.find_link(1, 3);  // DC2->DC4
  std::printf("link %s fails!\n", square.link(failed_link).name.c_str());
  const RecoveryResult* plan = planner.plan(failed_link);
  if (plan != nullptr) {
    print_allocation(square, catalog, demands, plan->alloc,
                     "Fig 4(b): pre-computed backup allocation");
    std::printf("retained profit: %.2f of %.2f\n", plan->profit,
                full_profit(demands));
  }

  // --- Part 2: profit-aware recovery under contention ------------------
  std::printf("\n--- economically-guided recovery (testbed, L4 fails) ---\n");
  const Topology testbed = testbed6();
  const auto tcat = TunnelCatalog::build_all_pairs(testbed, 4);
  std::vector<Demand> mixed;
  const double charges[] = {900.0, 500.0, 700.0, 400.0};
  const double refunds[] = {0.10, 1.00, 0.25, 0.10};
  for (int i = 0; i < 4; ++i) {
    Demand d;
    d.id = i + 1;
    d.pairs = {{tcat.pair_index({0, 3 + (i % 2)}), 600.0}};
    d.availability_target = 0.99;
    d.charge = charges[i];
    d.refund_fraction = refunds[i];
    mixed.push_back(d);
  }
  const LinkId l4[] = {testbed_link(testbed, "L4")};
  const RecoveryResult greedy = recover_greedy(testbed, tcat, mixed, l4);
  const RecoveryResult optimal = recover_optimal(testbed, tcat, mixed, l4);
  Table cmp({"algorithm", "profit", "fraction of no-failure",
             "demands kept whole"});
  for (const auto& [name, result] :
       {std::pair<const char*, const RecoveryResult&>{"greedy (Alg 2)",
                                                      greedy},
        std::pair<const char*, const RecoveryResult&>{"optimal (MILP)",
                                                      optimal}}) {
    int whole = 0;
    for (char c : result.full_profit) whole += c != 0;
    cmp.add_row({name, fmt(result.profit, 1),
                 fmt(result.profit / full_profit(mixed), 3),
                 std::to_string(whole) + "/4"});
  }
  std::printf("%s", cmp.to_string().c_str());
  std::printf("greedy/optimal profit ratio: %.3f (2-approximation bound)\n",
              optimal.profit / std::max(greedy.profit, 1e-9));
  return 0;
}
