// Plain-text BA-demand serialization, companion to topology/io.h, so a
// deployment can feed its demand book to the planner tools without code.
//
// Format (line oriented, '#' comments):
//   demand <id> <src-label> <dst-label> <mbps> <availability>
//          [charge=<x>] [refund=<f>] [arrival=<min>] [duration=<min>]
// (options may follow on the same line)
#pragma once

#include <string>
#include <vector>

#include "routing/tunnels.h"
#include "topology/graph.h"
#include "workload/demand.h"

namespace bate {

/// Serializes demands; pair indices are rendered as node labels via the
/// catalog, so the text is topology-relative and human readable.
std::string demands_to_text(const Topology& topo, const TunnelCatalog& catalog,
                            std::span<const Demand> demands);

/// Parses the text format against a topology/catalog. Throws
/// std::invalid_argument with a line number on malformed input, unknown
/// node labels, or pairs absent from the catalog.
std::vector<Demand> demands_from_text(const Topology& topo,
                                      const TunnelCatalog& catalog,
                                      const std::string& text);

void save_demands(const Topology& topo, const TunnelCatalog& catalog,
                  std::span<const Demand> demands, const std::string& path);
std::vector<Demand> load_demands(const Topology& topo,
                                 const TunnelCatalog& catalog,
                                 const std::string& path);

}  // namespace bate
