#include "workload/io.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace bate {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("demand text, line " + std::to_string(line) +
                              ": " + message);
}

}  // namespace

std::string demands_to_text(const Topology& topo, const TunnelCatalog& catalog,
                            std::span<const Demand> demands) {
  std::ostringstream out;
  out.precision(17);
  for (const Demand& d : demands) {
    for (const PairDemand& p : d.pairs) {
      const SdPair& pair = catalog.pair(p.pair);
      out << "demand " << d.id << ' ' << topo.node_label(pair.src) << ' '
          << topo.node_label(pair.dst) << ' ' << p.mbps << ' '
          << d.availability_target << " charge=" << d.charge
          << " refund=" << d.refund_fraction << " arrival=" << d.arrival_minute
          << " duration=" << d.duration_minutes << '\n';
    }
  }
  return out.str();
}

std::vector<Demand> demands_from_text(const Topology& topo,
                                      const TunnelCatalog& catalog,
                                      const std::string& text) {
  std::map<std::string, NodeId> labels;
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    labels[topo.node_label(n)] = n;
  }

  // Demands may span several lines (multi-pair); group by id.
  std::map<DemandId, Demand> by_id;
  std::vector<DemandId> order;
  std::set<DemandId> explicit_charge;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream fields(raw);
    std::string directive;
    if (!(fields >> directive)) continue;
    if (directive != "demand") fail(line_no, "unknown directive");

    DemandId id = -1;
    std::string src;
    std::string dst;
    double mbps = 0.0;
    double availability = 0.0;
    if (!(fields >> id >> src >> dst >> mbps >> availability)) {
      fail(line_no,
           "expected: demand <id> <src> <dst> <mbps> <availability>");
    }
    if (labels.count(src) == 0) fail(line_no, "unknown node '" + src + "'");
    if (labels.count(dst) == 0) fail(line_no, "unknown node '" + dst + "'");
    const int pair = catalog.pair_index({labels[src], labels[dst]});
    if (pair < 0) {
      fail(line_no, "pair " + src + "->" + dst + " not in the tunnel catalog");
    }
    if (mbps <= 0.0) fail(line_no, "bandwidth must be positive");
    if (availability < 0.0 || availability >= 1.0 + 1e-12) {
      fail(line_no, "availability must be in [0, 1]");
    }

    Demand& d = by_id[id];
    if (d.id < 0) {
      d.id = id;
      d.availability_target = availability;
      order.push_back(id);
    } else if (std::abs(d.availability_target - availability) > 1e-12) {
      fail(line_no, "conflicting availability for demand " +
                        std::to_string(id));
    }
    d.pairs.push_back({pair, mbps});

    std::string option;
    while (fields >> option) {
      const auto eq = option.find('=');
      if (eq == std::string::npos) fail(line_no, "bad option '" + option + "'");
      const std::string key = option.substr(0, eq);
      double value = 0.0;
      try {
        value = std::stod(option.substr(eq + 1));
      } catch (const std::exception&) {
        fail(line_no, "bad number in option '" + option + "'");
      }
      if (key == "charge") {
        d.charge = value;
        explicit_charge.insert(id);
      } else if (key == "refund") {
        d.refund_fraction = value;
      } else if (key == "arrival") {
        d.arrival_minute = value;
      } else if (key == "duration") {
        d.duration_minutes = value;
      } else {
        fail(line_no, "unknown option '" + key + "'");
      }
    }
  }

  std::vector<Demand> demands;
  demands.reserve(order.size());
  for (DemandId id : order) {
    Demand& d = by_id[id];
    // Unit-price default applies once the full pair list is known.
    if (explicit_charge.count(id) == 0 && d.charge == 0.0) {
      d.charge = d.total_mbps();
    }
    demands.push_back(d);
  }
  return demands;
}

void save_demands(const Topology& topo, const TunnelCatalog& catalog,
                  std::span<const Demand> demands, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << demands_to_text(topo, catalog, demands);
}

std::vector<Demand> load_demands(const Topology& topo,
                                 const TunnelCatalog& catalog,
                                 const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return demands_from_text(topo, catalog, buffer.str());
}

}  // namespace bate
