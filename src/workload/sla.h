// SLA economics: the B4 availability-target catalog (Table 1) and the ten
// Azure services whose refunding ratios the paper samples (Sec 5.2, fn. 8).
#pragma once

#include <string>
#include <vector>

#include "workload/demand.h"

namespace bate {

struct SlaService {
  std::string name;
  /// Tiers sorted by descending `below`; the last matching tier applies.
  std::vector<RefundTier> tiers;

  /// Refund fraction owed for an achieved availability (0 when the SLA met).
  double refund_for(double achieved_availability) const;
  /// The paper's simple model uses a single mu_d per demand: the refund of
  /// the first (mildest) violated tier.
  double base_refund() const { return tiers.empty() ? 0.0 : tiers.front().fraction; }
};

/// The 10 Azure services cited by the paper (API Management, App
/// Configuration, Application Gateway, Application Insights, Automation,
/// Virtual Machines, BareMetal Infrastructure, Redis, CDN, Storage).
const std::vector<SlaService>& azure_services();

/// The 3 services used in the testbed experiments (Redis, CDN, VMs).
std::vector<SlaService> testbed_services();

/// Table 1: B4 availability targets per service class.
struct AvailabilityTarget {
  std::string service;
  double availability;  // 0 means best-effort (bulk transfer, "N/A")
};
const std::vector<AvailabilityTarget>& b4_targets();

/// The availability-target sets the evaluation samples from.
const std::vector<double>& testbed_target_set();     // Sec 5.1
const std::vector<double>& simulation_target_set();  // Sec 5.2

}  // namespace bate
