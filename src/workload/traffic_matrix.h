// Gravity-model traffic matrices.
//
// The paper draws demand bandwidths from 200 measured traffic matrices per
// topology (from the TEAVAR authors / FITI measurement) with a scale-down
// factor of 5 so several demands fit per pair. Those matrices are not
// released; we synthesize gravity-model matrices (node masses ~ exponential,
// entry ~ mass_s * mass_d, normalized to a target utilization of the
// topology's capacity), which reproduces the skewed pair-load structure the
// evaluation depends on. See DESIGN.md Sec 3.
#pragma once

#include <vector>

#include "topology/graph.h"
#include "util/rng.h"

namespace bate {

/// Dense |V| x |V| matrix in Mbps; diagonal is zero.
using TrafficMatrix = std::vector<std::vector<double>>;

struct TrafficMatrixConfig {
  /// Average per-pair demand as a fraction of the mean link capacity.
  double load_fraction = 0.5;
  /// Multiplicative jitter applied per entry, uniform in [1-j, 1+j].
  double jitter = 0.3;
  std::uint64_t seed = 7;
};

/// Generates `count` matrices (the paper collected 200 per topology).
std::vector<TrafficMatrix> generate_traffic_matrices(
    const Topology& topo, int count, const TrafficMatrixConfig& cfg = {});

/// Mean link capacity of a topology (normalization helper).
double mean_link_capacity(const Topology& topo);

}  // namespace bate
