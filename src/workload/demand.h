// Bandwidth-availability (BA) demand model (Sec 3.1).
//
// A demand d = (b_d, beta_d, t^s_d, t^e_d) asks for bandwidth b_d — a vector
// over s-d pairs — with availability target beta_d over its life time. The
// pricing fields carry the paper's SLA economics: g_d is the charge for
// serving d, mu_d the refunded fraction when the BA target is violated.
#pragma once

#include <vector>

namespace bate {

using DemandId = int;

/// One SLA refund tier: if achieved availability < `below`, refund
/// `fraction` of the charge (see workload/sla.h for the Azure catalog).
struct RefundTier {
  double below;     // availability threshold, e.g. 0.999
  double fraction;  // refunded fraction of the charge, e.g. 0.10
};

/// One component of the demand vector b_d: `mbps` on pair `pair`
/// (an index into the TunnelCatalog's pair list).
struct PairDemand {
  int pair = -1;
  double mbps = 0.0;
};

struct Demand {
  DemandId id = -1;
  std::vector<PairDemand> pairs;
  double availability_target = 0.0;  // beta_d, in [0,1]
  double charge = 0.0;               // g_d
  double refund_fraction = 0.0;      // mu_d, in [0,1] (flat model, Sec 3.4)
  /// Tiered refund schedule (the Azure-style SLAs of Sec 5); when
  /// non-empty, per-second accounting refunds by the worst violated tier
  /// instead of the flat mu_d.
  std::vector<RefundTier> refund_tiers;
  double arrival_minute = 0.0;       // t^s_d
  double duration_minutes = 0.0;     // t^e_d - t^s_d

  double end_minute() const { return arrival_minute + duration_minutes; }
  double total_mbps() const {
    double total = 0.0;
    for (const PairDemand& p : pairs) total += p.mbps;
    return total;
  }
  /// Refund owed for an achieved availability: the worst violated tier
  /// when a tier table is present, else the flat mu_d on any violation.
  double refund_for(double achieved_availability) const {
    if (refund_tiers.empty()) {
      return achieved_availability + 1e-12 >= availability_target
                 ? 0.0
                 : refund_fraction;
    }
    double refund = 0.0;
    for (const RefundTier& tier : refund_tiers) {
      if (achieved_availability < tier.below) refund = tier.fraction;
    }
    // The SLA also never refunds when the negotiated target is met.
    if (achieved_availability + 1e-12 >= availability_target) return 0.0;
    return refund;
  }

  /// The admission-ordering key of Algorithm 1: sum_k b^k_d * beta_d.
  double admission_weight() const {
    return total_mbps() * availability_target;
  }
};

/// Per-demand, per-tunnel bandwidth allocation f^t_d. Indexed as
/// alloc[pair_position][tunnel_index] where pair_position follows
/// Demand::pairs order.
using Allocation = std::vector<std::vector<double>>;

}  // namespace bate
