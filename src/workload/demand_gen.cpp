#include "workload/demand_gen.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace bate {

namespace {

/// Arrival times of a Poisson process with the given per-minute rate.
std::vector<double> poisson_arrivals(Rng& rng, double rate_per_min,
                                     double horizon_min) {
  std::vector<double> times;
  if (rate_per_min <= 0.0) return times;
  double t = rng.exponential_mean(1.0 / rate_per_min);
  while (t < horizon_min) {
    times.push_back(t);
    t += rng.exponential_mean(1.0 / rate_per_min);
  }
  return times;
}

}  // namespace

std::vector<Demand> generate_demands(const TunnelCatalog& catalog,
                                     const WorkloadConfig& cfg) {
  if (catalog.pair_count() == 0) {
    throw std::invalid_argument("generate_demands: empty catalog");
  }
  if (cfg.availability_targets.empty()) {
    throw std::invalid_argument("generate_demands: no availability targets");
  }
  Rng rng(cfg.seed);

  // Pair-selection weights from traffic-matrix volume, when available.
  std::vector<double> pair_weight(static_cast<std::size_t>(catalog.pair_count()),
                                  1.0);
  if (!cfg.matrices.empty()) {
    for (int k = 0; k < catalog.pair_count(); ++k) {
      const SdPair& p = catalog.pair(k);
      double vol = 0.0;
      for (const TrafficMatrix& tm : cfg.matrices) {
        vol += tm[static_cast<std::size_t>(p.src)]
                 [static_cast<std::size_t>(p.dst)];
      }
      pair_weight[static_cast<std::size_t>(k)] = vol + 1e-9;
    }
  }

  struct Raw {
    double arrival;
    int pair;
  };
  std::vector<Raw> raws;
  if (cfg.per_pair_arrivals) {
    for (int k = 0; k < catalog.pair_count(); ++k) {
      for (double t :
           poisson_arrivals(rng, cfg.arrival_rate_per_min, cfg.horizon_min)) {
        raws.push_back({t, k});
      }
    }
  } else {
    for (double t :
         poisson_arrivals(rng, cfg.arrival_rate_per_min, cfg.horizon_min)) {
      raws.push_back({t, static_cast<int>(rng.weighted_index(pair_weight))});
    }
  }
  std::sort(raws.begin(), raws.end(),
            [](const Raw& a, const Raw& b) { return a.arrival < b.arrival; });

  std::vector<Demand> demands;
  demands.reserve(raws.size());
  for (const Raw& raw : raws) {
    Demand d;
    d.id = static_cast<DemandId>(demands.size());
    d.arrival_minute = raw.arrival;
    d.duration_minutes = rng.exponential_mean(cfg.mean_duration_min);

    double mbps;
    if (!cfg.matrices.empty()) {
      const auto& tm =
          cfg.matrices[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(cfg.matrices.size()) - 1))];
      const SdPair& p = catalog.pair(raw.pair);
      mbps = tm[static_cast<std::size_t>(p.src)]
               [static_cast<std::size_t>(p.dst)] /
             cfg.tm_scale_down;
      mbps *= rng.uniform(0.5, 1.5);
      mbps = std::max(mbps, 1.0);
    } else {
      mbps = rng.uniform(cfg.bw_min_mbps, cfg.bw_max_mbps);
    }
    d.pairs = {{raw.pair, mbps}};

    d.availability_target =
        cfg.availability_targets[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(cfg.availability_targets.size()) - 1))];
    d.charge = cfg.unit_price_per_mbps * mbps;
    if (!cfg.services.empty()) {
      const auto& svc = cfg.services[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(cfg.services.size()) - 1))];
      d.refund_fraction = svc.base_refund();
      d.refund_tiers = svc.tiers;
    }
    demands.push_back(std::move(d));
  }
  return demands;
}

std::vector<Demand> active_at(const std::vector<Demand>& demands,
                              double minute) {
  std::vector<Demand> active;
  for (const Demand& d : demands) {
    if (d.arrival_minute <= minute && minute < d.end_minute()) {
      active.push_back(d);
    }
  }
  return active;
}

}  // namespace bate
