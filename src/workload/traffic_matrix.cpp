#include "workload/traffic_matrix.h"

#include <stdexcept>

namespace bate {

double mean_link_capacity(const Topology& topo) {
  if (topo.link_count() == 0) return 0.0;
  double total = 0.0;
  for (const Link& l : topo.links()) total += l.capacity;
  return total / topo.link_count();
}

std::vector<TrafficMatrix> generate_traffic_matrices(
    const Topology& topo, int count, const TrafficMatrixConfig& cfg) {
  if (count <= 0) throw std::invalid_argument("traffic matrices: count");
  Rng rng(cfg.seed);
  const int n = topo.node_count();
  const double target_mean = mean_link_capacity(topo) * cfg.load_fraction;

  std::vector<TrafficMatrix> matrices;
  matrices.reserve(static_cast<std::size_t>(count));
  for (int m = 0; m < count; ++m) {
    // Node masses: exponential => a few hot DCs dominate, like real WANs.
    std::vector<double> mass(static_cast<std::size_t>(n));
    for (double& w : mass) w = rng.exponential_mean(1.0) + 0.05;

    TrafficMatrix tm(static_cast<std::size_t>(n),
                     std::vector<double>(static_cast<std::size_t>(n), 0.0));
    double sum = 0.0;
    int entries = 0;
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        if (s == d) continue;
        const double jitter = rng.uniform(1.0 - cfg.jitter, 1.0 + cfg.jitter);
        tm[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            mass[static_cast<std::size_t>(s)] *
            mass[static_cast<std::size_t>(d)] * jitter;
        sum += tm[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)];
        ++entries;
      }
    }
    const double scale = target_mean / (sum / entries);
    for (auto& row : tm) {
      for (double& v : row) v *= scale;
    }
    matrices.push_back(std::move(tm));
  }
  return matrices;
}

}  // namespace bate
