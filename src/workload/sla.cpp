#include "workload/sla.h"

namespace bate {

double SlaService::refund_for(double achieved_availability) const {
  double refund = 0.0;
  for (const RefundTier& tier : tiers) {
    if (achieved_availability < tier.below) refund = tier.fraction;
  }
  return refund;
}

const std::vector<SlaService>& azure_services() {
  // Tier structures follow the public Azure SLA pages the paper cites:
  // typically 10 % below the headline availability, 25 % below 99 %, and
  // 100 % below 95 %.
  static const std::vector<SlaService> services = {
      {"API Management", {{0.9995, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
      {"App Configuration", {{0.999, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
      {"Application Gateway", {{0.9995, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
      {"Application Insights", {{0.999, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
      {"Automation", {{0.999, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
      {"Virtual Machines", {{0.9999, 0.10}, {0.999, 0.25}, {0.95, 1.00}}},
      {"BareMetal Infrastructure", {{0.999, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
      {"Azure Cache for Redis", {{0.999, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
      {"Content Delivery Network", {{0.999, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
      {"Storage Accounts", {{0.999, 0.10}, {0.99, 0.25}, {0.95, 1.00}}},
  };
  return services;
}

std::vector<SlaService> testbed_services() {
  const auto& all = azure_services();
  return {all[7], all[8], all[5]};  // Redis, CDN, Virtual Machines
}

const std::vector<AvailabilityTarget>& b4_targets() {
  static const std::vector<AvailabilityTarget> targets = {
      {"Search ads, DNS, WWW", 0.9999},
      {"Photo service, backend, Email", 0.9995},
      {"Ads database replication", 0.999},
      {"Search index copies, logs", 0.99},
      {"Bulk transfer", 0.0},
  };
  return targets;
}

const std::vector<double>& testbed_target_set() {
  static const std::vector<double> set = {0.95, 0.99, 0.999, 0.9995, 0.9999};
  return set;
}

const std::vector<double>& simulation_target_set() {
  static const std::vector<double> set = {0.0,   0.90,   0.95,  0.99,
                                          0.999, 0.9995, 0.9999};
  return set;
}

}  // namespace bate
