// Demand workload generator (Sec 5.1 testbed / Sec 5.2 simulation models):
// Poisson arrivals, exponential durations, bandwidths either uniform
// (testbed: 10-50 Mbps) or drawn from traffic matrices with a scale-down
// factor (simulations), availability targets and refund ratios sampled from
// the SLA catalogs.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/tunnels.h"
#include "workload/demand.h"
#include "workload/sla.h"
#include "workload/traffic_matrix.h"

namespace bate {

struct WorkloadConfig {
  /// Mean demand arrivals per minute. With per_pair_arrivals the rate
  /// applies to every s-d pair independently (testbed model), otherwise it
  /// is the network-wide rate (simulation model).
  double arrival_rate_per_min = 2.0;
  bool per_pair_arrivals = false;

  double mean_duration_min = 5.0;
  double horizon_min = 100.0;

  /// Uniform bandwidth range, used when `matrices` is empty.
  double bw_min_mbps = 10.0;
  double bw_max_mbps = 50.0;

  /// Optional traffic matrices: pair choice is weighted by matrix volume and
  /// the bandwidth is the matrix entry divided by `tm_scale_down` (the
  /// paper's factor-5 scale-down, fn. 12).
  std::vector<TrafficMatrix> matrices;
  double tm_scale_down = 5.0;

  /// Availability targets sampled uniformly (see sla.h target sets).
  std::vector<double> availability_targets = {0.95, 0.99, 0.999, 0.9995,
                                              0.9999};
  /// Services whose refund ratio is sampled; empty => no refunds.
  std::vector<SlaService> services;
  /// Charge g_d = unit price * requested Mbps ("a unit price is charged for
  /// 1 Mbps", Sec 5.1).
  double unit_price_per_mbps = 1.0;

  std::uint64_t seed = 11;
};

/// Generates the arrival-ordered demand sequence for the given tunnel
/// catalog (demands target its pairs). Ids are assigned 0..n-1 in arrival
/// order.
std::vector<Demand> generate_demands(const TunnelCatalog& catalog,
                                     const WorkloadConfig& cfg);

/// Demands whose lifetime covers the given minute.
std::vector<Demand> active_at(const std::vector<Demand>& demands,
                              double minute);

}  // namespace bate
