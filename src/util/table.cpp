#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace bate {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.push_back(std::string(widths[c], '-'));
  }
  emit(rule);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

}  // namespace bate
