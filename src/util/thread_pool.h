// Small work-stealing thread pool for embarrassingly parallel loops.
//
// Each worker owns a deque guarded by its own mutex: the owner pushes and
// pops at the back (LIFO, cache-warm), thieves steal from the front (FIFO,
// oldest first). Tasks are type-erased std::function<void()>; submission
// round-robins across workers so a single producer still fills every queue.
//
// Threading contract (DESIGN.md "Solver performance"):
//  * submit() may be called from any thread, including from inside a task.
//  * parallel_for(n, body) blocks the caller until all n indices ran; the
//    caller participates in draining, so nesting parallel_for inside a task
//    can deadlock only if every worker blocks on an outer loop — don't nest.
//  * body(i) runs exactly once per index, on an unspecified thread, in an
//    unspecified order. Bit-identical reductions are the CALLER's job:
//    write results into a pre-sized slot array indexed by i and reduce
//    serially afterwards (see Campaign::run).
//  * The first exception thrown by any body is rethrown on the caller;
//    remaining indices are skipped (claimed but not executed).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace bate {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least 1). With 1 worker the pool still works — parallel_for then
  /// runs mostly on the caller.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Never blocks (beyond the queue mutex).
  void submit(std::function<void()> task);

  /// Runs body(0..n-1) across the pool and the calling thread; returns when
  /// all indices completed. Rethrows the first body exception.
  void parallel_for(int n, const std::function<void(int)>& body);

  /// Index of the calling thread if it is one of THIS pool's workers, else
  /// -1 (external threads, and workers of other pools). Lets callers detect
  /// they are already inside the pool and avoid nesting parallel_for.
  int current_worker() const;

  /// Pops and runs one pending task on the calling thread, if any. Returns
  /// whether a task ran. Safe from any thread; idle waiters (e.g. a branch &
  /// bound worker with an empty open-node queue) use it to keep draining the
  /// pool instead of holding a worker hostage.
  bool run_one();

  /// Process-wide shared pool (lazily constructed, never destroyed before
  /// exit). Use for library-internal parallelism so layers don't each spawn
  /// their own thread herd.
  static ThreadPool& shared();

 private:
  // Pool lock and per-worker queue locks share rank kThreadPool: they are
  // never nested (submit/try_pop take them strictly in sequence), and tasks
  // themselves run with no pool lock held.
  struct Queue {
    Mutex mu{LockRank::kThreadPool, "pool queue"};
    std::deque<std::function<void()>> tasks BATE_GUARDED_BY(mu);
  };

  void worker_loop(int self);
  bool try_pop(int self, std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  Mutex mu_{LockRank::kThreadPool, "pool"};
  CondVar cv_;
  // queued-but-unclaimed tasks
  int pending_ BATE_GUARDED_BY(mu_) = 0;
  bool stopping_ BATE_GUARDED_BY(mu_) = false;
  // round-robin submit cursor
  std::size_t next_queue_ BATE_GUARDED_BY(mu_) = 0;
};

}  // namespace bate
