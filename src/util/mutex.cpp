#include "util/mutex.h"

#include <cstdio>
#include <string>

#include "util/check.h"

namespace bate::lock_rank {

#if !defined(BATE_MUTEX_NO_RANK_CHECKS)

namespace {

// Held-lock stack. A fixed trivially-destructible array, NOT a vector: the
// checker must stay usable during thread/process teardown (static
// destructors — e.g. ThreadPool::shared() joining its workers — run after
// non-trivial thread_local destructors would already have fired).
constexpr int kMaxHeld = 16;

struct Held {
  const void* mu;
  int rank;
  const char* name;
};

thread_local Held tl_held[kMaxHeld];
thread_local int tl_depth = 0;

// Once a violation is detected the stack is no longer trustworthy and the
// failure handler itself takes locks (the logger's), so checking stops on
// this thread. check_failed aborts, making this permanent-off moot except
// for custom handlers installed by death tests.
thread_local bool tl_off = false;

}  // namespace

void note_acquire(const void* mu, int rank, const char* name, bool blocking) {
  if (tl_off) return;
  int min_rank = 0;
  const char* min_name = nullptr;
  for (int i = 0; i < tl_depth; ++i) {
    if (tl_held[i].mu == mu) {
      tl_off = true;
      check_failed(__FILE__, __LINE__, "lock_rank: double acquire",
                   std::string("mutex \"") + name +
                       "\" is already held by this thread (non-recursive)");
    }
    if (min_name == nullptr || tl_held[i].rank < min_rank) {
      min_rank = tl_held[i].rank;
      min_name = tl_held[i].name;
    }
  }
  if (blocking && min_name != nullptr && rank >= min_rank) {
    tl_off = true;
    char msg[256];
    std::snprintf(msg, sizeof msg,
                  "lock rank violation: acquiring \"%s\" (rank %d) while "
                  "holding \"%s\" (rank %d); the hierarchy in util/mutex.h "
                  "requires strictly descending acquisition",
                  name, rank, min_name, min_rank);
    check_failed(__FILE__, __LINE__, "lock_rank: out-of-order acquisition",
                 msg);
  }
  if (tl_depth >= kMaxHeld) {
    tl_off = true;
    check_failed(__FILE__, __LINE__, "lock_rank: held-lock stack overflow",
                 std::string("more than 16 locks held while acquiring \"") +
                     name + "\"");
  }
  tl_held[tl_depth++] = Held{mu, rank, name};
}

void note_release(const void* mu) {
  if (tl_off) return;
  for (int i = tl_depth - 1; i >= 0; --i) {
    if (tl_held[i].mu != mu) continue;
    for (int j = i; j + 1 < tl_depth; ++j) tl_held[j] = tl_held[j + 1];
    --tl_depth;
    return;
  }
  // Releasing a lock the checker never saw acquired: tolerated (a custom
  // failure handler in a death test may have survived a violation, leaving
  // the stack out of sync on that thread).
}

int held_depth() { return tl_depth; }

#else  // BATE_MUTEX_NO_RANK_CHECKS

void note_acquire(const void*, int, const char*, bool) {}
void note_release(const void*) {}
int held_depth() { return 0; }

#endif

}  // namespace bate::lock_rank
