// Fixed-width console table printer used by the bench harnesses so every
// figure/table reproduction prints aligned, greppable rows.
#pragma once

#include <string>
#include <vector>

namespace bate {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 3);

  /// Render with column alignment; `title` printed above if non-empty.
  std::string to_string(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for mixed rows).
std::string fmt(double v, int precision = 3);

}  // namespace bate
