// Small statistics helpers shared by the simulator, metrics and benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bate {

/// Accumulates scalar samples and reports summary statistics.
class Summary {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// A point of an empirical CDF.
struct CdfPoint {
  double value;
  double fraction;  // P[X <= value]
};

/// Empirical CDF of the samples, thinned to at most max_points points.
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points = 64);

/// Render a CDF as "value fraction" lines for bench output.
std::string format_cdf(const std::vector<CdfPoint>& cdf);

}  // namespace bate
