// Contract assertions for solver and system invariants.
//
// BATE's availability guarantee (Sec 3.2 Theorem 1) is only as strong as the
// solver state it is computed from: a corrupted simplex tableau or an
// inconsistent admission precondition must abort loudly rather than return a
// plausible-looking allocation. BATE_ASSERT is always on (all build types);
// BATE_DCHECK compiles away under NDEBUG unless BATE_ENABLE_DCHECKS is
// defined, so hot solver loops can carry cheap debug-only checks.
//
// A violation routes through the installed failure handler, which logs the
// expression, location and optional message, then aborts. Tests exercise the
// abort path with gtest death tests (tests/check_test.cpp).
#pragma once

#include <string>

namespace bate {

/// Invoked on assertion failure. Must not return; the default logs through
/// util/log.h and calls std::abort().
using CheckFailureHandler = void (*)(const char* file, int line,
                                     const char* expr, const char* message);

/// Installs a custom failure handler (must not return); returns the previous
/// one. Intended for tests and embedders that need to flush state first.
CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler);

/// Routes a failed check through the installed handler and aborts. Marked
/// noreturn: even a misbehaving handler that returns is followed by abort().
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& message = {});

}  // namespace bate

/// Hard invariant: enabled in every build type. `msg` is evaluated lazily
/// (only on failure) and may be any expression convertible to std::string.
#define BATE_ASSERT(cond)                                       \
  do {                                                          \
    if (!(cond)) {                                              \
      ::bate::check_failed(__FILE__, __LINE__, #cond);          \
    }                                                           \
  } while (false)

#define BATE_ASSERT_MSG(cond, msg)                              \
  do {                                                          \
    if (!(cond)) {                                              \
      ::bate::check_failed(__FILE__, __LINE__, #cond, (msg));   \
    }                                                           \
  } while (false)

/// Debug-only invariant: compiled out under NDEBUG (the default
/// RelWithDebInfo build) unless BATE_ENABLE_DCHECKS is defined. The
/// condition must be side-effect free.
#if !defined(NDEBUG) || defined(BATE_ENABLE_DCHECKS)
#define BATE_DCHECK_IS_ON 1
#define BATE_DCHECK(cond) BATE_ASSERT(cond)
#define BATE_DCHECK_MSG(cond, msg) BATE_ASSERT_MSG(cond, msg)
#else
#define BATE_DCHECK_IS_ON 0
#define BATE_DCHECK(cond) \
  do {                    \
  } while (false)
#define BATE_DCHECK_MSG(cond, msg) \
  do {                             \
  } while (false)
#endif
