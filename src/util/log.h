// Minimal leveled logger. The controller/broker system logs through this so
// integration tests can silence or capture output.
//
// Call sites should use the BATE_LOG macro, which checks the level filter
// BEFORE any message formatting runs — a dropped line costs one load and a
// branch, not a string build:
//
//   BATE_LOG(kInfo, "controller") << "listening on port " << port;
//
// Lines carry an ISO-8601 UTC timestamp and the OS thread id:
//
//   2026-08-07T12:34:56.789Z [INFO] controller tid=12345: listening on ...
//
// The startup level honors the BATE_LOG_LEVEL environment variable
// (debug|info|warn|error|off, case-insensitive; default warn);
// Logger::set_level overrides it at runtime.
#pragma once

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <sstream>
#include <string>

#include "util/mutex.h"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <thread>
#endif

namespace bate {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  void log(LogLevel level, const std::string& component,
           const std::string& message) {
    if (level < this->level()) return;
    char stamp[40];
    format_timestamp(stamp, sizeof stamp);
    MutexLock lock(mu_);
    std::cerr << stamp << " [" << name(level) << "] " << component
              << " tid=" << thread_id() << ": " << message << '\n';
  }

 private:
  Logger() : level_(level_from_env()) {}

  static LogLevel level_from_env() {
    // Runs once inside the Logger singleton constructor, before any second
    // thread can exist in the logger's lifetime; nothing calls setenv.
    const char* v = std::getenv("BATE_LOG_LEVEL");  // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr) return LogLevel::kWarn;
    std::string s;
    for (const char* p = v; *p != '\0'; ++p) {
      s += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
    }
    if (s == "debug") return LogLevel::kDebug;
    if (s == "info") return LogLevel::kInfo;
    if (s == "warn" || s == "warning") return LogLevel::kWarn;
    if (s == "error") return LogLevel::kError;
    if (s == "off" || s == "none") return LogLevel::kOff;
    return LogLevel::kWarn;
  }

  static void format_timestamp(char* buf, std::size_t n) {
    std::timespec ts{};
    std::timespec_get(&ts, TIME_UTC);
    std::tm tm{};
    gmtime_r(&ts.tv_sec, &tm);
    const std::size_t len = std::strftime(buf, n, "%FT%T", &tm);
    std::snprintf(buf + len, n - len, ".%03ldZ", ts.tv_nsec / 1000000L);
  }

  static long thread_id() {
#if defined(__linux__)
    return static_cast<long>(::syscall(SYS_gettid));
#else
    return static_cast<long>(std::hash<std::thread::id>{}(
                                 std::this_thread::get_id()) &
                             0x7fffffffL);
#endif
  }

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

  std::atomic<LogLevel> level_;
  // kLogger ranks just above kObsRegistry: check-failure handlers log while
  // holding almost any subsystem lock, so the sink must be near the bottom
  // of the hierarchy.
  Mutex mu_{LockRank::kLogger, "logger"};
};

/// Builds one log line in a stream and emits it on destruction. Only
/// constructed by BATE_LOG after the level check passed.
class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

/// Per-call-site occurrence counter backing BATE_LOG_EVERY_N /
/// BATE_LOG_FIRST_N. Thread-safe: fetch_add hands every occurrence a
/// distinct ordinal, so exactly ceil(total/n) (EVERY_N) or min(total, n)
/// (FIRST_N) occurrences pass even under concurrent callers.
class LogRateState {
 public:
  /// Occurrences 0, n, 2n, ... pass. n <= 1 passes everything.
  bool tick_every(std::int64_t n) noexcept {
    const std::int64_t c = count_.fetch_add(1, std::memory_order_relaxed);
    return n <= 1 || c % n == 0;
  }
  /// The first n occurrences pass.
  bool tick_first(std::int64_t n) noexcept {
    return count_.fetch_add(1, std::memory_order_relaxed) < n;
  }
  /// Occurrences observed so far (passed or suppressed).
  std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
};

// Level filter runs before any << formatting: the else-arm (and every
// stream operand) is skipped entirely when the line is dropped.
#define BATE_LOG(lvl, component)                                    \
  if (::bate::LogLevel::lvl < ::bate::Logger::instance().level())   \
    ;                                                               \
  else ::bate::LogLine(::bate::LogLevel::lvl, component).stream()

// Rate-limited variants for hot-path warn sites (shed, duplicate,
// dropped-dead): a 100k/s overload emits one line per N occurrences
// (EVERY_N) or only the first N (FIRST_N) instead of melting the logger.
// The occurrence counter is per call site (the lambda's static lives in a
// distinct closure type per expansion) and only ticks once the level
// filter passes, so a silenced logger costs one load and a branch.
#define BATE_LOG_EVERY_N(lvl, component, n)                           \
  if (::bate::LogLevel::lvl < ::bate::Logger::instance().level())     \
    ;                                                                 \
  else if ([](std::int64_t bate_log_n) {                              \
             static ::bate::LogRateState bate_log_state;              \
             return !bate_log_state.tick_every(bate_log_n);           \
           }(n))                                                      \
    ;                                                                 \
  else ::bate::LogLine(::bate::LogLevel::lvl, component).stream()

#define BATE_LOG_FIRST_N(lvl, component, n)                           \
  if (::bate::LogLevel::lvl < ::bate::Logger::instance().level())     \
    ;                                                                 \
  else if ([](std::int64_t bate_log_n) {                              \
             static ::bate::LogRateState bate_log_state;              \
             return !bate_log_state.tick_first(bate_log_n);           \
           }(n))                                                      \
    ;                                                                 \
  else ::bate::LogLine(::bate::LogLevel::lvl, component).stream()

// Legacy helpers; prefer BATE_LOG (these build `msg` even when dropped).
inline void log_info(const std::string& component, const std::string& msg) {
  Logger::instance().log(LogLevel::kInfo, component, msg);
}
inline void log_warn(const std::string& component, const std::string& msg) {
  Logger::instance().log(LogLevel::kWarn, component, msg);
}
inline void log_error(const std::string& component, const std::string& msg) {
  Logger::instance().log(LogLevel::kError, component, msg);
}

}  // namespace bate
