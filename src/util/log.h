// Minimal leveled logger. The controller/broker system logs through this so
// integration tests can silence or capture output.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace bate {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& component,
           const std::string& message) {
    if (level < level_) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::cerr << '[' << name(level) << "] " << component << ": " << message
              << '\n';
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

inline void log_info(const std::string& component, const std::string& msg) {
  Logger::instance().log(LogLevel::kInfo, component, msg);
}
inline void log_warn(const std::string& component, const std::string& msg) {
  Logger::instance().log(LogLevel::kWarn, component, msg);
}
inline void log_error(const std::string& component, const std::string& msg) {
  Logger::instance().log(LogLevel::kError, component, msg);
}

}  // namespace bate
