// Seeded random-number utilities.
//
// Every stochastic component in this repository draws from an explicitly
// seeded Rng so that simulations, tests and benches are bit-reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace bate {

/// Deterministic random source. Thin wrapper over std::mt19937_64 with the
/// distributions the workload and failure models need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential variate with the given mean (not rate).
  double exponential_mean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Poisson variate with the given mean.
  int poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Weibull variate with shape k and scale lambda. The paper fits link
  /// failure probabilities with Weibull(k=8, lambda=0.6) (Fig. 1b, Sec 5.2).
  double weibull(double shape, double scale) {
    return std::weibull_distribution<double>(shape, scale)(engine_);
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  /// Derive an independent child stream (for per-component seeding).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bate
