// Capability-annotated mutex wrappers: the ONLY sanctioned synchronization
// primitives in this repository (bate_lint `raw-mutex` rule).
//
// Two independent defenses against the two concurrency bug classes a
// centralized TE controller cannot afford (DESIGN.md Sec 8.5):
//
//  1. Clang Thread Safety Analysis. Every Mutex is a TSA capability and
//     every guarded field carries a real BATE_GUARDED_BY attribute, so an
//     unguarded access is a *compile error* under clang
//     (-Werror=thread-safety, the `tsa` preset; plain -Wthread-safety is on
//     for every clang build so local builds see findings immediately). The
//     macros expand to nothing on GCC — annotations never cost anything at
//     runtime and the GCC build stays identical.
//
//  2. A runtime lock-rank checker. TSA is per-TU and cannot see a
//     cross-module A->B / B->A deadlock cycle. Every Mutex is constructed
//     with a LockRank from the documented global hierarchy below; a
//     thread-local stack of held locks aborts (through the util/check.h
//     failure handler, so tests can observe it) the moment any thread
//     acquires out of order — turning a once-in-a-month production hang
//     into a deterministic unit-test failure. The checker is on in every
//     build (one thread-local array walk per acquisition, far cheaper than
//     the lock itself); -DBATE_MUTEX_NO_RANK_CHECKS compiles it out for
//     maximal-performance builds.
//
// Lock-rank hierarchy (acquire strictly downward; full rationale table in
// DESIGN.md Sec 8.5):
//
//   kController > kBroker > kEventLoop > kScheduler > kSolver
//               > kThreadPool > kLogger > kObsLedger > kObsRegistry
//
// A thread may acquire a Mutex only while every lock it already holds has a
// strictly GREATER rank. try_lock() is exempt from the ordering check (it
// cannot block, hence cannot deadlock) but still joins the held stack.
#pragma once

#include <chrono>
#include <condition_variable>  // bate-lint: allow(raw-mutex)
#include <shared_mutex>        // bate-lint: allow(raw-mutex)

// --- Clang Thread Safety Analysis attribute macros --------------------------
// GNU-attribute spellings per https://clang.llvm.org/docs/ThreadSafetyAnalysis
// (the modern capability-based names). Empty on every non-clang compiler.

#if defined(__clang__)
#define BATE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BATE_THREAD_ANNOTATION(x)
#endif

#define BATE_CAPABILITY(x) BATE_THREAD_ANNOTATION(capability(x))
#define BATE_SCOPED_CAPABILITY BATE_THREAD_ANNOTATION(scoped_lockable)
#define BATE_GUARDED_BY(x) BATE_THREAD_ANNOTATION(guarded_by(x))
#define BATE_PT_GUARDED_BY(x) BATE_THREAD_ANNOTATION(pt_guarded_by(x))
#define BATE_ACQUIRED_BEFORE(...) \
  BATE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BATE_ACQUIRED_AFTER(...) \
  BATE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define BATE_REQUIRES(...) \
  BATE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BATE_REQUIRES_SHARED(...) \
  BATE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define BATE_ACQUIRE(...) \
  BATE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BATE_ACQUIRE_SHARED(...) \
  BATE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BATE_RELEASE(...) \
  BATE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BATE_RELEASE_SHARED(...) \
  BATE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define BATE_RELEASE_GENERIC(...) \
  BATE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define BATE_TRY_ACQUIRE(...) \
  BATE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BATE_TRY_ACQUIRE_SHARED(...) \
  BATE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define BATE_EXCLUDES(...) BATE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define BATE_ASSERT_CAPABILITY(x) BATE_THREAD_ANNOTATION(assert_capability(x))
#define BATE_RETURN_CAPABILITY(x) BATE_THREAD_ANNOTATION(lock_returned(x))
#define BATE_NO_THREAD_SAFETY_ANALYSIS \
  BATE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bate {

/// Global lock hierarchy, highest first. Acquisition must proceed strictly
/// downward in rank on any one thread; two locks of EQUAL rank may never be
/// held together (the broker's write_mu_/mu_ and the thread pool's
/// pool/queue locks are same-rank precisely because they are proven
/// disjoint). Ranks are spaced so future layers can slot in between.
enum class LockRank : int {
  kObsRegistry = 10,  // obs metric/tracer registration; callable under any lock
  kObsLedger = 12,    // SLO ledger + time-series store (src/obs); may register
                      // metrics (kObsRegistry) but never log under the lock
  kLogger = 15,       // util/log.h sink; check-failure paths log under locks
  kThreadPool = 20,   // pool + per-worker queue locks; tasks run lock-free
  kSolver = 30,       // parallel branch & bound shared search state
  kScheduler = 35,    // scheduler joint-pattern cache
  kEventLoop = 40,    // cross-thread watcher-mutation queue
  kBroker = 50,       // broker enforcer state + socket write ordering
  kController = 60,   // reserved: controller replication state (ROADMAP 3/4)
};

namespace lock_rank {

/// Records an acquisition on the calling thread's held-lock stack; aborts
/// via check_failed on a double acquire, or (when `blocking`) on an
/// out-of-rank acquisition.
void note_acquire(const void* mu, int rank, const char* name, bool blocking);
/// Forgets a held lock (search from the top of the stack).
void note_release(const void* mu);
/// Locks currently held by the calling thread (test hook).
int held_depth();

}  // namespace lock_rank

/// Exclusive + shared mutex carrying a TSA capability and a lock rank.
/// Wraps std::shared_mutex so const read paths (registry snapshots, broker
/// getters) can overlap; CondVar waits require the exclusive side.
class BATE_CAPABILITY("mutex") Mutex {
 public:
  /// `name` appears in rank-violation aborts; use a string literal.
  explicit Mutex(LockRank rank, const char* name = "mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BATE_ACQUIRE() {
    lock_rank::note_acquire(this, static_cast<int>(rank_), name_,
                            /*blocking=*/true);
    mu_.lock();
  }
  void unlock() BATE_RELEASE() {
    mu_.unlock();
    lock_rank::note_release(this);
  }
  /// Non-blocking, hence exempt from the rank-order check (a failed try
  /// cannot deadlock); a successful try still joins the held stack.
  bool try_lock() BATE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::note_acquire(this, static_cast<int>(rank_), name_,
                            /*blocking=*/false);
    return true;
  }

  void lock_shared() BATE_ACQUIRE_SHARED() {
    lock_rank::note_acquire(this, static_cast<int>(rank_), name_,
                            /*blocking=*/true);
    mu_.lock_shared();
  }
  void unlock_shared() BATE_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank::note_release(this);
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;  // bate-lint: allow(raw-mutex)
  const LockRank rank_;
  const char* const name_;
};

/// Scoped exclusive lock. Relockable (unlock()/lock()) so wait-loop code
/// that drops the lock around expensive work keeps RAII safety: the
/// destructor releases only if currently held.
class BATE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BATE_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() BATE_RELEASE_GENERIC() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() BATE_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void lock() BATE_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Scoped shared (reader) lock for const snapshot paths.
class BATE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(Mutex& mu) BATE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() BATE_RELEASE_GENERIC() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex (exclusive side). No predicate overloads
/// on purpose: callers write explicit `while (!cond) cv.wait(mu);` loops,
/// which keeps every guarded-field read inside the annotated function where
/// TSA can see it (a predicate lambda would be analyzed lock-blind).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, blocks, reacquires. The release/reacquire
  /// runs through Mutex::unlock/lock, so the rank checker's held stack
  /// stays exact across the wait.
  void wait(Mutex& mu) BATE_REQUIRES(mu) {
    Reacquire scope{mu};
    cv_.wait(scope);
  }

  /// Returns false when `timeout` elapsed without a notification (callers
  /// loop: a true return may be a spurious wakeup).
  template <class Rep, class Period>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      BATE_REQUIRES(mu) {
    Reacquire scope{mu};
    return cv_.wait_for(scope, timeout) == std::cv_status::no_timeout;
  }

  /// Returns false once `deadline` has passed (steady clock).
  bool wait_until(Mutex& mu,
                  std::chrono::steady_clock::time_point deadline)
      BATE_REQUIRES(mu) {
    Reacquire scope{mu};
    return cv_.wait_until(scope, deadline) == std::cv_status::no_timeout;
  }

 private:
  /// BasicLockable adapter handed to condition_variable_any: forwards to
  /// the Mutex wrapper (not the raw std::shared_mutex) so the wait's
  /// release/reacquire maintains the rank-checker bookkeeping.
  struct Reacquire {
    Mutex& mu;
    void lock() BATE_ACQUIRE(mu) { mu.lock(); }
    void unlock() BATE_RELEASE(mu) { mu.unlock(); }
  };

  std::condition_variable_any cv_;  // bate-lint: allow(raw-mutex)
};

}  // namespace bate
