#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "util/check.h"

namespace bate {

namespace {
// Worker identity for current_worker(): which pool this thread belongs to
// (if any) and its index there. Plain thread_locals — no synchronization
// needed, each thread only reads/writes its own copy.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t q;
  {
    MutexLock lock(mu_);
    BATE_ASSERT_MSG(!stopping_, "thread_pool: submit after shutdown");
    q = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  {
    MutexLock lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_pop(int self, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  const std::size_t me = static_cast<std::size_t>(self);
  // Own queue first, back (LIFO): most recently pushed work is cache-warm.
  {
    Queue& q = *queues_[me];
    MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal from the front (FIFO) of the other queues, starting after self so
  // thieves spread out instead of all hammering queue 0.
  for (std::size_t off = 1; off < n; ++off) {
    Queue& q = *queues_[(me + off) % n];
    MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

int ThreadPool::current_worker() const {
  return tl_pool == this ? tl_worker : -1;
}

bool ThreadPool::run_one() {
  {
    MutexLock lock(mu_);
    if (pending_ == 0) return false;
    --pending_;
  }
  std::function<void()> task;
  const int self = current_worker();
  if (!try_pop(self >= 0 ? self : 0, task)) {
    // Lost the race to a worker; return the claim.
    MutexLock lock(mu_);
    ++pending_;
    return false;
  }
  task();
  return true;
}

void ThreadPool::worker_loop(int self) {
  tl_pool = this;
  tl_worker = self;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (pending_ == 0 && !stopping_) cv_.wait(mu_);
      if (pending_ == 0 && stopping_) return;
      // Claim optimistically; if another worker raced us to the actual
      // task, try_pop fails and we go back to sleep without a claim.
      if (pending_ == 0) continue;
      --pending_;
    }
    if (!try_pop(self, task)) {
      // Lost the race; return the claim.
      MutexLock lock(mu_);
      ++pending_;
      continue;
    }
    task();
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  // Shared loop state outlives this frame only if a straggler worker is
  // still finishing its last index while the caller returns — hence the
  // shared_ptr. `next` hands out indices; `done` counts completed ones.
  struct LoopState {
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // written once, guarded by `failed` CAS
    Mutex done_mu{LockRank::kThreadPool, "parallel_for done"};
    CondVar done_cv;
    int n = 0;
    const std::function<void(int)>* body = nullptr;
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->body = &body;

  auto run_chunk = [state] {
    for (;;) {
      const int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      if (!state->failed.load(std::memory_order_acquire)) {
        try {
          (*state->body)(i);
        } catch (...) {
          bool expected = false;
          if (state->failed.compare_exchange_strong(expected, true)) {
            state->error = std::current_exception();
          }
        }
      }
      // Skipped-after-failure indices still count: done must reach n.
      const int finished = 1 + state->done.fetch_add(1);
      if (finished == state->n) {
        MutexLock lock(state->done_mu);
        state->done_cv.notify_all();
      }
    }
  };

  // One helper task per worker; each drains indices until exhausted.
  const int helpers =
      std::min(static_cast<int>(workers_.size()), n - 1);
  for (int h = 0; h < helpers; ++h) submit(run_chunk);

  // The caller drains too, then waits for stragglers mid-index.
  run_chunk();
  {
    MutexLock lock(state->done_mu);
    while (state->done.load() < state->n) state->done_cv.wait(state->done_mu);
  }
  if (state->failed.load()) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;  // leaked-at-exit by design (joined in ~ThreadPool)
  return pool;
}

}  // namespace bate
