#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bate {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Summary::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Summary::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double Summary::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points) {
  std::vector<CdfPoint> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Sample index chosen so the last point is the max with fraction 1.
    const std::size_t idx =
        (points == 1) ? n - 1 : (i * (n - 1)) / (points - 1);
    cdf.push_back({samples[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return cdf;
}

std::string format_cdf(const std::vector<CdfPoint>& cdf) {
  std::ostringstream out;
  for (const auto& p : cdf) out << p.value << ' ' << p.fraction << '\n';
  return out.str();
}

}  // namespace bate
