#include "util/check.h"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "util/log.h"

namespace bate {

namespace {

void default_handler(const char* file, int line, const char* expr,
                     const char* message) {
  std::ostringstream out;
  out << "assertion failed: " << expr << " at " << file << ':' << line;
  if (message != nullptr && message[0] != '\0') out << " — " << message;
  Logger::instance().log(LogLevel::kError, "check", out.str());
}

std::atomic<CheckFailureHandler> g_handler{&default_handler};

}  // namespace

CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &default_handler);
}

void check_failed(const char* file, int line, const char* expr,
                  const std::string& message) {
  g_handler.load()(file, line, expr, message.c_str());
  std::abort();
}

}  // namespace bate
