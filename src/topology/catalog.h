// Topology catalog: every network the paper evaluates on.
//
//  * toy4():      Fig 2 motivating example (4 DCs, 4 directed links).
//  * square4():   Fig 4 failure-recovery example (4 DCs, unit capacities).
//  * testbed6():  Fig 6 testbed (6 DCs, 8 bidirectional links L1..L8, 1 Gbps).
//  * b4/ibm/att/fiti(): Table 4 simulation topologies, synthesized with the
//    exact node/link counts (see generator.h for the substitution rationale).
#pragma once

#include <string>
#include <vector>

#include "topology/graph.h"

namespace bate {

Topology toy4();
Topology square4();
Topology testbed6();

Topology b4();    // 12 nodes, 38 links
Topology ibm();   // 18 nodes, 48 links
Topology att();   // 25 nodes, 112 links
Topology fiti();  // 14 nodes, 32 links

/// All four Table-4 topologies, in the paper's order.
std::vector<Topology> simulation_topologies();

/// Link index by testbed label L1..L8 (Fig 6 / Fig 10); returns the id of the
/// forward direction link.
LinkId testbed_link(const Topology& testbed, const std::string& label);

}  // namespace bate
