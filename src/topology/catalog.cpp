#include "topology/catalog.h"

#include <map>
#include <stdexcept>

#include "topology/generator.h"

namespace bate {

Topology toy4() {
  // Fig 2(a): capacities 10 Gbps, failure probabilities annotated per link.
  // Demands flow DC1 -> DC4 over DC2 (upper) or DC3 (lower).
  Topology t("toy4");
  const NodeId dc1 = t.add_node("DC1");
  const NodeId dc2 = t.add_node("DC2");
  const NodeId dc3 = t.add_node("DC3");
  const NodeId dc4 = t.add_node("DC4");
  t.add_link(dc1, dc2, 10000.0, 0.04, "e1");       // 4%
  t.add_link(dc2, dc4, 10000.0, 0.000001, "e2");   // 0.0001%
  t.add_link(dc1, dc3, 10000.0, 0.001, "e3");      // 0.1%
  t.add_link(dc3, dc4, 10000.0, 0.000001, "e4");   // 0.0001%
  return t;
}

Topology square4() {
  // Fig 4: 4 DCs in a square, unit capacity everywhere. Probabilities are
  // not used by the example; a small uniform value is assigned.
  Topology t("square4");
  const NodeId dc1 = t.add_node("DC1");
  const NodeId dc2 = t.add_node("DC2");
  const NodeId dc3 = t.add_node("DC3");
  const NodeId dc4 = t.add_node("DC4");
  t.add_bidirectional(dc1, dc2, 1.0, 0.001);
  t.add_bidirectional(dc1, dc3, 1.0, 0.001);
  t.add_bidirectional(dc2, dc4, 1.0, 0.001);
  t.add_bidirectional(dc3, dc4, 1.0, 0.001);
  return t;
}

namespace {

struct TestbedEdge {
  const char* label;
  int a;
  int b;
  double failure_prob;
};

// Fig 6 adjacency, reconstructed from the figure and the Table-3 path lists:
// the eight bidirectional links and their failure probabilities. L4
// (DC4-DC5) carries the highest probability (1%), which is the link the
// paper calls out in the Table-3 discussion.
constexpr TestbedEdge kTestbedEdges[] = {
    {"L1", 0, 1, 0.00001},  // DC1-DC2, 0.001%
    {"L2", 1, 2, 0.00002},  // DC2-DC3, 0.002%
    {"L3", 2, 3, 0.00001},  // DC3-DC4, 0.001%
    {"L4", 3, 4, 0.01},     // DC4-DC5, 1%
    {"L5", 0, 3, 0.0001},   // DC1-DC4, 0.01%
    {"L6", 1, 4, 0.0002},   // DC2-DC5, 0.02%
    {"L7", 4, 5, 0.0002},   // DC5-DC6, 0.02%
    {"L8", 0, 5, 0.0001},   // DC1-DC6, 0.01%
};

}  // namespace

Topology testbed6() {
  Topology t("testbed6");
  for (int i = 0; i < 6; ++i) t.add_node("DC" + std::to_string(i + 1));
  for (const auto& e : kTestbedEdges) {
    t.add_bidirectional(e.a, e.b, 1000.0, e.failure_prob);  // 1 Gbps links
  }
  return t;
}

LinkId testbed_link(const Topology& /*testbed*/, const std::string& label) {
  for (std::size_t i = 0; i < std::size(kTestbedEdges); ++i) {
    if (label == kTestbedEdges[i].label) {
      return static_cast<LinkId>(2 * i);  // forward direction of the pair
    }
  }
  throw std::invalid_argument("unknown testbed link label: " + label);
}

Topology b4() {
  GeneratorConfig cfg;
  cfg.nodes = 12;
  cfg.directed_links = 38;
  cfg.seed = 0xB4;
  return generate_topology(cfg, "B4");
}

Topology ibm() {
  GeneratorConfig cfg;
  cfg.nodes = 18;
  cfg.directed_links = 48;
  cfg.seed = 0x1B;
  return generate_topology(cfg, "IBM");
}

Topology att() {
  GeneratorConfig cfg;
  cfg.nodes = 25;
  cfg.directed_links = 112;
  cfg.seed = 0xA7;
  return generate_topology(cfg, "ATT");
}

Topology fiti() {
  GeneratorConfig cfg;
  cfg.nodes = 14;
  cfg.directed_links = 32;
  cfg.seed = 0xF1;
  return generate_topology(cfg, "FITI");
}

std::vector<Topology> simulation_topologies() {
  std::vector<Topology> topos;
  topos.push_back(ibm());
  topos.push_back(b4());
  topos.push_back(att());
  topos.push_back(fiti());
  return topos;
}

}  // namespace bate
