// Deterministic synthetic WAN generator.
//
// The paper's simulation topologies (B4, IBM, ATT from the TEAVAR authors,
// FITI from direct measurement) are not publicly released as files. We
// synthesize strongly-connected topologies with the exact node/link counts of
// Table 4 and heavy-tailed per-link failure probabilities derived from the
// Weibull(k=8, lambda=0.6) fit the paper itself uses for its simulations
// (Sec 5.2, Fig 1b). See DESIGN.md Sec 3 for the substitution rationale.
#pragma once

#include <cstdint>

#include "topology/graph.h"
#include "util/rng.h"

namespace bate {

struct GeneratorConfig {
  int nodes = 12;
  /// Number of *directed* links; must be even (links are added in
  /// bidirectional pairs) and at least 2*nodes (a ring keeps it connected).
  int directed_links = 38;
  double min_capacity_mbps = 2000.0;
  double max_capacity_mbps = 10000.0;
  /// Weibull parameters for the failure-probability model.
  double weibull_shape = 8.0;
  double weibull_scale = 0.6;
  std::uint64_t seed = 1;
};

/// Draws a per-link failure probability from the heavy-tailed model:
/// W ~ Weibull(shape, scale), p = min(W^6 / 10, 0.05). Raising the Weibull
/// variate to the 6th power stretches its spread to >2 orders of magnitude,
/// matching the empirical distribution of Fig 1(b) where a small set of
/// links contributes most failures.
double sample_failure_prob(Rng& rng, double shape, double scale);

/// Generates a strongly connected topology with exactly cfg.directed_links
/// links (cfg.directed_links/2 bidirectional pairs). Throws
/// std::invalid_argument when counts are infeasible.
Topology generate_topology(const GeneratorConfig& cfg, std::string name);

}  // namespace bate
