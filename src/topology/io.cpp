#include "topology/io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace bate {

std::string to_text(const Topology& topo) {
  std::ostringstream out;
  out << "topology " << (topo.name().empty() ? "unnamed" : topo.name())
      << '\n';
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    out << "node " << topo.node_label(n) << '\n';
  }
  out.precision(17);  // max_digits10: exact double round-trip
  for (const Link& l : topo.links()) {
    out << "link " << topo.node_label(l.src) << ' ' << topo.node_label(l.dst)
        << ' ' << l.capacity << ' ' << l.failure_prob << '\n';
  }
  return out.str();
}

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("topology text, line " + std::to_string(line) +
                              ": " + message);
}

}  // namespace

Topology from_text(const std::string& text) {
  Topology topo;
  std::map<std::string, NodeId> labels;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;

  auto node_of = [&](const std::string& label, int line) {
    const auto it = labels.find(label);
    if (it == labels.end()) fail(line, "unknown node '" + label + "'");
    return it->second;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream fields(raw);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank/comment line

    if (directive == "topology") {
      std::string name;
      if (!(fields >> name)) fail(line_no, "missing topology name");
      topo.set_name(name);
    } else if (directive == "node") {
      std::string label;
      if (!(fields >> label)) fail(line_no, "missing node label");
      if (labels.count(label) != 0) {
        fail(line_no, "duplicate node '" + label + "'");
      }
      labels[label] = topo.add_node(label);
    } else if (directive == "link" || directive == "bilink") {
      std::string a;
      std::string b;
      double capacity = 0.0;
      double prob = 0.0;
      if (!(fields >> a >> b >> capacity >> prob)) {
        fail(line_no, "expected: " + directive +
                          " <src> <dst> <capacity> <failure-prob>");
      }
      try {
        if (directive == "link") {
          topo.add_link(node_of(a, line_no), node_of(b, line_no), capacity,
                        prob);
        } else {
          topo.add_bidirectional(node_of(a, line_no), node_of(b, line_no),
                                 capacity, prob);
        }
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }
  return topo;
}

void save_topology(const Topology& topo, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << to_text(topo);
}

Topology load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

}  // namespace bate
