// Plain-text topology serialization, so downstream users can run BATE on
// their own WANs without writing code.
//
// Format (line oriented, '#' comments):
//   topology <name>
//   node <label>
//   link <src-label> <dst-label> <capacity-mbps> <failure-prob>
//   bilink <a-label> <b-label> <capacity-mbps> <failure-prob>
#pragma once

#include <iosfwd>
#include <string>

#include "topology/graph.h"

namespace bate {

/// Serializes a topology to the text format.
std::string to_text(const Topology& topo);

/// Parses the text format. Throws std::invalid_argument with a line number
/// on malformed input (unknown directive, unknown node label, bad numbers,
/// duplicate node labels).
Topology from_text(const std::string& text);

/// File helpers; throw std::runtime_error when the file cannot be opened.
void save_topology(const Topology& topo, const std::string& path);
Topology load_topology(const std::string& path);

}  // namespace bate
