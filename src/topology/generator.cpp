#include "topology/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace bate {

double sample_failure_prob(Rng& rng, double shape, double scale) {
  const double w = rng.weibull(shape, scale);
  return std::min(std::pow(w, 6) / 10.0, 0.05);
}

Topology generate_topology(const GeneratorConfig& cfg, std::string name) {
  if (cfg.nodes < 3) throw std::invalid_argument("generator: need >=3 nodes");
  if (cfg.directed_links % 2 != 0) {
    throw std::invalid_argument("generator: directed_links must be even");
  }
  const int pairs = cfg.directed_links / 2;
  if (pairs < cfg.nodes) {
    throw std::invalid_argument(
        "generator: need at least one bidirectional pair per node (ring)");
  }
  const int max_pairs = cfg.nodes * (cfg.nodes - 1) / 2;
  if (pairs > max_pairs) {
    throw std::invalid_argument("generator: too many links for node count");
  }

  Rng rng(cfg.seed);
  Topology topo(std::move(name));
  for (int i = 0; i < cfg.nodes; ++i) topo.add_node();

  auto capacity = [&]() {
    // Capacities drawn from a small set of realistic WAN tiers within range.
    const double tiers[] = {1.0, 2.0, 4.0};
    const double base = tiers[rng.uniform_int(0, 2)];
    const double cap = cfg.min_capacity_mbps * base;
    return std::min(cap, cfg.max_capacity_mbps);
  };

  std::set<std::pair<NodeId, NodeId>> used;
  auto add_pair = [&](NodeId a, NodeId b) {
    topo.add_bidirectional(
        a, b, capacity(),
        sample_failure_prob(rng, cfg.weibull_shape, cfg.weibull_scale));
    used.insert({std::min(a, b), std::max(a, b)});
  };

  // Ring over a random node permutation guarantees strong connectivity.
  std::vector<NodeId> order(static_cast<std::size_t>(cfg.nodes));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (int i = 0; i < cfg.nodes; ++i) {
    add_pair(order[static_cast<std::size_t>(i)],
             order[static_cast<std::size_t>((i + 1) % cfg.nodes)]);
  }

  // Random chords up to the requested link count.
  while (static_cast<int>(used.size()) < pairs) {
    const NodeId a = rng.uniform_int(0, cfg.nodes - 1);
    const NodeId b = rng.uniform_int(0, cfg.nodes - 1);
    if (a == b) continue;
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (used.count(key) != 0) continue;
    add_pair(a, b);
  }
  return topo;
}

}  // namespace bate
