#include "topology/graph.h"

#include <queue>
#include <stdexcept>

namespace bate {

NodeId Topology::add_node(std::string label) {
  const NodeId id = node_count();
  if (label.empty()) label = "DC" + std::to_string(id + 1);
  node_labels_.push_back(std::move(label));
  out_links_.emplace_back();
  in_links_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, double capacity_mbps,
                          double failure_prob, std::string name) {
  if (src < 0 || src >= node_count() || dst < 0 || dst >= node_count()) {
    throw std::out_of_range("add_link: unknown endpoint");
  }
  if (src == dst) throw std::invalid_argument("add_link: self loop");
  if (capacity_mbps <= 0.0) {
    throw std::invalid_argument("add_link: capacity must be positive");
  }
  if (failure_prob < 0.0 || failure_prob >= 1.0) {
    throw std::invalid_argument("add_link: failure_prob must be in [0,1)");
  }
  const LinkId id = link_count();
  if (name.empty()) {
    name = node_labels_[static_cast<std::size_t>(src)] + "->" +
           node_labels_[static_cast<std::size_t>(dst)];
  }
  links_.push_back(
      {id, src, dst, capacity_mbps, failure_prob, std::move(name)});
  out_links_[static_cast<std::size_t>(src)].push_back(id);
  in_links_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

LinkId Topology::add_bidirectional(NodeId a, NodeId b, double capacity_mbps,
                                   double failure_prob) {
  const LinkId forward = add_link(a, b, capacity_mbps, failure_prob);
  add_link(b, a, capacity_mbps, failure_prob);
  return forward;
}

LinkId Topology::find_link(NodeId src, NodeId dst) const {
  if (src < 0 || src >= node_count()) return -1;
  for (LinkId id : out_links_[static_cast<std::size_t>(src)]) {
    if (links_[static_cast<std::size_t>(id)].dst == dst) return id;
  }
  return -1;
}

namespace {

// BFS reachability over either direction.
int reachable_count(const Topology& topo, NodeId start, bool forward) {
  std::vector<char> seen(static_cast<std::size_t>(topo.node_count()), 0);
  std::queue<NodeId> frontier;
  frontier.push(start);
  seen[static_cast<std::size_t>(start)] = 1;
  int count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    const auto& edges = forward ? topo.out_links(u) : topo.in_links(u);
    for (LinkId id : edges) {
      const Link& l = topo.link(id);
      const NodeId v = forward ? l.dst : l.src;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count;
}

}  // namespace

bool Topology::strongly_connected() const {
  if (node_count() == 0) return true;
  return reachable_count(*this, 0, true) == node_count() &&
         reachable_count(*this, 0, false) == node_count();
}

}  // namespace bate
