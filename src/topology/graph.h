// Directed inter-DC WAN graph: nodes are datacenters, links carry a capacity
// and an independent failure probability (the paper's G(V,E) model, Sec 3.1).
#pragma once

#include <string>
#include <vector>

namespace bate {

using NodeId = int;
using LinkId = int;

struct Link {
  LinkId id = -1;
  NodeId src = -1;
  NodeId dst = -1;
  double capacity = 0.0;      // in Mbps throughout this repo
  double failure_prob = 0.0;  // probability the link is down in a scenario
  std::string name;
};

/// An (ordered) source-destination DC pair, the paper's k in K.
struct SdPair {
  NodeId src = -1;
  NodeId dst = -1;
  friend bool operator==(const SdPair&, const SdPair&) = default;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::string name) : name_(std::move(name)) {}

  /// Adds a node; returns its id (dense, starting at 0).
  NodeId add_node(std::string label = "");

  /// Adds a directed link. Throws std::out_of_range for unknown endpoints and
  /// std::invalid_argument for non-positive capacity or probability outside
  /// [0,1).
  LinkId add_link(NodeId src, NodeId dst, double capacity_mbps,
                  double failure_prob, std::string name = "");

  /// Adds a pair of directed links (src->dst and dst->src) with identical
  /// capacity and failure probability; returns the forward link id.
  LinkId add_bidirectional(NodeId a, NodeId b, double capacity_mbps,
                           double failure_prob);

  int node_count() const { return static_cast<int>(node_labels_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }

  const Link& link(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }
  const std::vector<Link>& links() const { return links_; }
  const std::string& node_label(NodeId id) const {
    return node_labels_.at(static_cast<std::size_t>(id));
  }

  /// Outgoing link ids of a node.
  const std::vector<LinkId>& out_links(NodeId id) const {
    return out_links_.at(static_cast<std::size_t>(id));
  }
  /// Incoming link ids of a node.
  const std::vector<LinkId>& in_links(NodeId id) const {
    return in_links_.at(static_cast<std::size_t>(id));
  }

  /// Looks up a directed link; returns -1 if absent.
  LinkId find_link(NodeId src, NodeId dst) const;

  /// True when every node can reach every other node.
  bool strongly_connected() const;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 private:
  std::string name_;
  std::vector<std::string> node_labels_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
};

}  // namespace bate
