// Network failure scenarios (Sec 3.1) and the pruning method (Sec 3.3,
// Fig 3): enumerate scenarios with at most y concurrent link failures; all
// remaining scenarios are aggregated into one special unqualified scenario
// whose probability is the residual mass.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "routing/tunnels.h"
#include "topology/graph.h"

namespace bate {

/// One network scenario z: the (sparse) set of failed links and p_z.
struct Scenario {
  std::vector<LinkId> failed;  // sorted link ids that are down
  double prob = 0.0;

  bool link_up(LinkId id) const;
  /// v^z_t: a tunnel is available iff all of its links are up.
  bool tunnel_up(const Tunnel& tunnel) const;
};

/// Enumerated, pruned scenario set. scenarios()[0] is always the all-up
/// scenario. residual_prob() is the probability mass of everything pruned
/// (the aggregated unqualified scenario).
class ScenarioSet {
 public:
  /// Enumerates every scenario with at most `max_failures` failed links.
  /// Throws std::invalid_argument when the count would exceed `limit`
  /// (guards against accidental 2^|E| blowups).
  static ScenarioSet enumerate(const Topology& topo, int max_failures,
                               std::size_t limit = 20'000'000);

  const std::vector<Scenario>& scenarios() const { return scenarios_; }
  double residual_prob() const { return residual_; }
  int max_failures() const { return max_failures_; }

 private:
  std::vector<Scenario> scenarios_;
  double residual_ = 0.0;
  int max_failures_ = 0;
};

/// Streaming enumeration (no storage): calls visit(failed_links, prob) for
/// every scenario with at most max_failures failures, in increasing failure
/// count. Used by tests and by benches that only need aggregates.
void for_each_scenario(
    const Topology& topo, int max_failures,
    const std::function<void(std::span<const LinkId>, double)>& visit);

/// Number of scenarios with at most y failures over m links: sum_{i<=y} C(m,i).
/// Saturates instead of overflowing. (Fig 3 reports these counts.)
double scenario_count(int links, int max_failures);

/// P(k links down for each k in 0..max_k) over an arbitrary subset of links,
/// by Poisson-binomial dynamic programming. `skip` marks links to exclude.
std::vector<double> failure_count_distribution(const Topology& topo,
                                               int max_k,
                                               std::span<const char> skip = {});

}  // namespace bate
