#include "scenario/sampler.h"

#include <stdexcept>

namespace bate {

FailureTimeline::FailureTimeline(const Topology& topo, int seconds,
                                 double repair_seconds, Rng& rng)
    : seconds_(seconds), links_(topo.link_count()) {
  if (seconds <= 0) throw std::invalid_argument("FailureTimeline: seconds");
  if (repair_seconds < 0.0) {
    throw std::invalid_argument("FailureTimeline: repair_seconds");
  }
  down_.assign(static_cast<std::size_t>(seconds_) *
                   static_cast<std::size_t>(links_),
               0);
  failure_counts_.assign(static_cast<std::size_t>(links_), 0);

  std::vector<double> repair_left(static_cast<std::size_t>(links_), 0.0);
  double last_failure_time = -1.0;
  for (int s = 0; s < seconds_; ++s) {
    for (int l = 0; l < links_; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if (repair_left[li] > 0.0) {
        down_[static_cast<std::size_t>(s) * static_cast<std::size_t>(links_) +
              li] = 1;
        repair_left[li] -= 1.0;
        continue;
      }
      if (rng.bernoulli(topo.link(l).failure_prob)) {
        down_[static_cast<std::size_t>(s) * static_cast<std::size_t>(links_) +
              li] = 1;
        repair_left[li] = repair_seconds;
        ++failure_counts_[li];
        if (last_failure_time >= 0.0) {
          intervals_.push_back(static_cast<double>(s) - last_failure_time);
        }
        last_failure_time = static_cast<double>(s);
      }
    }
  }
}

bool FailureTimeline::link_up(int second, LinkId id) const {
  if (second < 0 || second >= seconds_ || id < 0 || id >= links_) {
    throw std::out_of_range("FailureTimeline::link_up");
  }
  return down_[static_cast<std::size_t>(second) *
                   static_cast<std::size_t>(links_) +
               static_cast<std::size_t>(id)] == 0;
}

std::vector<LinkId> FailureTimeline::failed_at(int second) const {
  std::vector<LinkId> failed;
  for (LinkId l = 0; l < links_; ++l) {
    if (!link_up(second, l)) failed.push_back(l);
  }
  return failed;
}

bool FailureTimeline::all_up(int second) const {
  return failed_at(second).empty();
}

std::vector<LinkId> sample_down_links(const Topology& topo, Rng& rng) {
  std::vector<LinkId> failed;
  for (const Link& l : topo.links()) {
    if (rng.bernoulli(l.failure_prob)) failed.push_back(l.id);
  }
  return failed;
}

}  // namespace bate
