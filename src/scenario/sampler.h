// Monte-Carlo failure processes.
//
// FailureTimeline emulates the paper's testbed failure injection (Sec 5.1):
// every second each up link fails with its failure probability; a failed
// link is repaired after `repair_seconds` (default 3 s, varied in Fig 20).
// It records per-link failure counts (Fig 10), failure intervals (Fig 1a)
// and the per-second down set used by the data-plane accounting.
//
// sample_down_links draws an i.i.d. scenario per slot, the methodology of
// the paper's post-processing simulations (Sec 5.2, following TEAVAR).
#pragma once

#include <vector>

#include "topology/graph.h"
#include "util/rng.h"

namespace bate {

class FailureTimeline {
 public:
  FailureTimeline(const Topology& topo, int seconds, double repair_seconds,
                  Rng& rng);

  int seconds() const { return seconds_; }
  bool link_up(int second, LinkId id) const;
  /// Sorted failed links at a given second.
  std::vector<LinkId> failed_at(int second) const;
  /// True when no link is down at the given second.
  bool all_up(int second) const;

  /// Failure events per link over the whole timeline (Fig 10).
  const std::vector<int>& failure_counts() const { return failure_counts_; }
  /// Seconds between consecutive failure events, network-wide (Fig 1a).
  const std::vector<double>& failure_intervals() const { return intervals_; }

 private:
  int seconds_;
  int links_;
  std::vector<char> down_;  // seconds_ x links_, row-major
  std::vector<int> failure_counts_;
  std::vector<double> intervals_;
};

/// One i.i.d. scenario draw: each link down independently with its failure
/// probability. Returns the sorted failed link set.
std::vector<LinkId> sample_down_links(const Topology& topo, Rng& rng);

}  // namespace bate
