// Tunnel-pattern projection of failure scenarios.
//
// For one s-d pair k with tunnels T_k, the scheduling LP (Sec 3.3) only sees
// a scenario z through which of the pair's tunnels are up (v^z_t). We
// therefore project the scenario distribution onto "patterns": bitmasks over
// T_k where bit t set means tunnel t is available. There are at most
// 2^|T_k| <= 16 patterns, independent of |E|.
//
// Two distributions are provided:
//  * exact_patterns  — the true pattern distribution (equivalent to the
//    unpruned 2^|E| scenario set); computed by enumerating only the link
//    union of the pair's tunnels.
//  * pruned_patterns — the distribution restricted to the paper's pruned set
//    "at most y concurrent link failures" (Fig 3); the pruned residual is
//    treated as unqualified, exactly matching the paper's aggregation rule.
//    Computed in closed form with a Poisson-binomial DP over links outside
//    the union, so no scenario enumeration is needed even for y=4 on ATT.
//
// Both are exact transformations of the paper's LP; see DESIGN.md Sec 5.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "routing/tunnels.h"
#include "topology/graph.h"

namespace bate {

using PatternMask = std::uint32_t;  // bit t set => tunnel t up

struct PatternDistribution {
  int tunnel_count = 0;
  /// prob[S] = P(pattern S [and <= y total failures for the pruned form]).
  /// Size 2^tunnel_count. Sums to 1 (exact) or <= 1 (pruned).
  std::vector<double> prob;

  double residual() const;
  /// Probability-weighted availability of a concrete allocation: the sum of
  /// prob[S] over patterns S where the up tunnels carry at least `demand`.
  double availability(std::span<const double> alloc, double demand) const;
};

/// Sorted union of all link ids used by the tunnels.
std::vector<LinkId> tunnel_link_union(std::span<const Tunnel> tunnels);

/// Exact pattern distribution. Throws std::invalid_argument when the link
/// union exceeds `max_union_links` (2^|U| enumeration guard).
PatternDistribution exact_patterns(const Topology& topo,
                                   std::span<const Tunnel> tunnels,
                                   int max_union_links = 24);

/// Pattern distribution over the pruned scenario set (<= max_failures
/// concurrent link failures across the whole network).
PatternDistribution pruned_patterns(const Topology& topo,
                                    std::span<const Tunnel> tunnels,
                                    int max_failures);

/// Exact distribution where the link union is tractable, otherwise a
/// quasi-exact pruned distribution (<= 6 concurrent failures; residual mass
/// is negligible for realistic link failure probabilities).
PatternDistribution reference_patterns_for(const Topology& topo,
                                           std::span<const Tunnel> tunnels);

}  // namespace bate
