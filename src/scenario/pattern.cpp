#include "scenario/pattern.h"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

#include "scenario/scenario.h"

namespace bate {

double PatternDistribution::residual() const {
  double total = 0.0;
  for (double p : prob) total += p;
  return std::max(0.0, 1.0 - total);
}

double PatternDistribution::availability(std::span<const double> alloc,
                                         double demand) const {
  if (static_cast<int>(alloc.size()) != tunnel_count) {
    throw std::invalid_argument("availability: alloc size mismatch");
  }
  double avail = 0.0;
  const auto patterns = static_cast<PatternMask>(prob.size());
  for (PatternMask s = 0; s < patterns; ++s) {
    double carried = 0.0;
    for (int t = 0; t < tunnel_count; ++t) {
      if ((s >> t) & 1u) carried += alloc[static_cast<std::size_t>(t)];
    }
    // Small tolerance so that exact-demand allocations qualify.
    if (carried + 1e-9 >= demand) avail += prob[s];
  }
  return avail;
}

std::vector<LinkId> tunnel_link_union(std::span<const Tunnel> tunnels) {
  std::set<LinkId> links;
  for (const Tunnel& t : tunnels) links.insert(t.links.begin(), t.links.end());
  return {links.begin(), links.end()};
}

namespace {

/// Bitmask over the union describing, per tunnel, which union links it uses.
std::vector<std::uint64_t> tunnel_union_masks(
    std::span<const Tunnel> tunnels, const std::vector<LinkId>& uni) {
  std::vector<std::uint64_t> masks;
  masks.reserve(tunnels.size());
  for (const Tunnel& t : tunnels) {
    std::uint64_t mask = 0;
    for (LinkId id : t.links) {
      const auto it = std::lower_bound(uni.begin(), uni.end(), id);
      mask |= 1ull << static_cast<unsigned>(it - uni.begin());
    }
    masks.push_back(mask);
  }
  return masks;
}

PatternMask pattern_of(const std::vector<std::uint64_t>& tunnel_masks,
                       std::uint64_t down_mask) {
  PatternMask s = 0;
  for (std::size_t t = 0; t < tunnel_masks.size(); ++t) {
    if ((tunnel_masks[t] & down_mask) == 0) s |= 1u << t;
  }
  return s;
}

}  // namespace

PatternDistribution exact_patterns(const Topology& topo,
                                   std::span<const Tunnel> tunnels,
                                   int max_union_links) {
  if (tunnels.size() > 20) {
    throw std::invalid_argument("exact_patterns: too many tunnels");
  }
  const auto uni = tunnel_link_union(tunnels);
  if (static_cast<int>(uni.size()) > max_union_links) {
    throw std::invalid_argument("exact_patterns: link union too large");
  }
  const auto tunnel_masks = tunnel_union_masks(tunnels, uni);

  PatternDistribution dist;
  dist.tunnel_count = static_cast<int>(tunnels.size());
  dist.prob.assign(1ull << tunnels.size(), 0.0);

  const auto u = uni.size();
  for (std::uint64_t down = 0; down < (1ull << u); ++down) {
    double p = 1.0;
    for (std::size_t i = 0; i < u; ++i) {
      const double x = topo.link(uni[i]).failure_prob;
      p *= ((down >> i) & 1ull) ? x : 1.0 - x;
    }
    dist.prob[pattern_of(tunnel_masks, down)] += p;
  }
  return dist;
}

PatternDistribution pruned_patterns(const Topology& topo,
                                    std::span<const Tunnel> tunnels,
                                    int max_failures) {
  if (max_failures < 0) {
    throw std::invalid_argument("pruned_patterns: max_failures must be >= 0");
  }
  if (tunnels.size() > 20) {
    throw std::invalid_argument("pruned_patterns: too many tunnels");
  }
  const auto uni = tunnel_link_union(tunnels);
  const auto tunnel_masks = tunnel_union_masks(tunnels, uni);
  const auto u = uni.size();

  // P(exactly k failures among links outside the union), k = 0..max_failures.
  std::vector<char> skip(static_cast<std::size_t>(topo.link_count()), 0);
  for (LinkId id : uni) skip[static_cast<std::size_t>(id)] = 1;
  const auto outside = failure_count_distribution(topo, max_failures, skip);
  // Cumulative: P(<= k failures outside).
  std::vector<double> outside_cum(outside.size());
  double acc = 0.0;
  for (std::size_t k = 0; k < outside.size(); ++k) {
    acc += outside[k];
    outside_cum[k] = acc;
  }

  PatternDistribution dist;
  dist.tunnel_count = static_cast<int>(tunnels.size());
  dist.prob.assign(1ull << tunnels.size(), 0.0);

  // Enumerate failure subsets inside the union with at most max_failures
  // links down; the rest of the failure budget may be spent outside.
  for (std::uint64_t down = 0; down < (1ull << u); ++down) {
    const int down_count = std::popcount(down);
    if (down_count > max_failures) continue;
    double p = 1.0;
    for (std::size_t i = 0; i < u; ++i) {
      const double x = topo.link(uni[i]).failure_prob;
      p *= ((down >> i) & 1ull) ? x : 1.0 - x;
    }
    p *= outside_cum[static_cast<std::size_t>(max_failures - down_count)];
    dist.prob[pattern_of(tunnel_masks, down)] += p;
  }
  return dist;
}

PatternDistribution reference_patterns_for(const Topology& topo,
                                           std::span<const Tunnel> tunnels) {
  try {
    return exact_patterns(topo, tunnels);
  } catch (const std::invalid_argument&) {
    return pruned_patterns(topo, tunnels, std::min(6, topo.link_count()));
  }
}

}  // namespace bate
