#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bate {

bool Scenario::link_up(LinkId id) const {
  return !std::binary_search(failed.begin(), failed.end(), id);
}

bool Scenario::tunnel_up(const Tunnel& tunnel) const {
  for (LinkId id : tunnel.links) {
    if (!link_up(id)) return false;
  }
  return true;
}

void for_each_scenario(
    const Topology& topo, int max_failures,
    const std::function<void(std::span<const LinkId>, double)>& visit) {
  const int m = topo.link_count();
  double all_up = 1.0;
  for (const Link& l : topo.links()) all_up *= 1.0 - l.failure_prob;

  // Odds ratio x/(1-x) per link lets us derive any scenario's probability
  // from the all-up probability by multiplication.
  std::vector<double> odds(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const double x = topo.link(i).failure_prob;
    odds[static_cast<std::size_t>(i)] = x / (1.0 - x);
  }

  std::vector<LinkId> failed;
  // Recursive enumeration of failure subsets by increasing size.
  std::function<void(int, int, double)> recurse = [&](int start, int remaining,
                                                      double prob) {
    if (remaining == 0) return;
    for (int i = start; i < m; ++i) {
      const double p = prob * odds[static_cast<std::size_t>(i)];
      failed.push_back(i);
      visit(failed, p);
      recurse(i + 1, remaining - 1, p);
      failed.pop_back();
    }
  };
  visit(failed, all_up);  // the all-up scenario
  recurse(0, max_failures, all_up);
}

ScenarioSet ScenarioSet::enumerate(const Topology& topo, int max_failures,
                                   std::size_t limit) {
  if (max_failures < 0) {
    throw std::invalid_argument("ScenarioSet: max_failures must be >= 0");
  }
  const double expected = scenario_count(topo.link_count(), max_failures);
  if (expected > static_cast<double>(limit)) {
    throw std::invalid_argument("ScenarioSet: enumeration too large");
  }
  ScenarioSet set;
  set.max_failures_ = max_failures;
  double total = 0.0;
  for_each_scenario(topo, max_failures,
                    [&](std::span<const LinkId> failed, double prob) {
                      set.scenarios_.push_back(
                          {{failed.begin(), failed.end()}, prob});
                      total += prob;
                    });
  set.residual_ = std::max(0.0, 1.0 - total);
  return set;
}

double scenario_count(int links, int max_failures) {
  double total = 0.0;
  double binom = 1.0;  // C(links, 0)
  for (int i = 0; i <= max_failures && i <= links; ++i) {
    total += binom;
    binom = binom * static_cast<double>(links - i) / static_cast<double>(i + 1);
    if (total > 1e18) return 1e18;
  }
  return total;
}

std::vector<double> failure_count_distribution(const Topology& topo, int max_k,
                                               std::span<const char> skip) {
  std::vector<double> dist(static_cast<std::size_t>(max_k) + 1, 0.0);
  dist[0] = 1.0;
  for (const Link& l : topo.links()) {
    if (static_cast<std::size_t>(l.id) < skip.size() &&
        skip[static_cast<std::size_t>(l.id)] != 0) {
      continue;
    }
    const double x = l.failure_prob;
    for (int k = max_k; k >= 0; --k) {
      const auto kk = static_cast<std::size_t>(k);
      dist[kk] *= 1.0 - x;
      if (k > 0) dist[kk] += dist[kk - 1] * x;
    }
  }
  return dist;
}

}  // namespace bate
