#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace bate::obs {

namespace {

std::size_t round_pow2(std::size_t n) {
  if (n < 2) return 2;
  return std::bit_ceil(n);
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

/// The thread's ambient span context (innermost open Span or adopted wire
/// context). Plain thread_local: only the owning thread touches it.
thread_local SpanContext g_ambient{};

}  // namespace

SpanContext current_context() noexcept { return g_ambient; }

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid)
    : cap_(round_pow2(capacity)),
      tid_(tid),
      slots_(std::make_unique<Slot[]>(cap_)) {}

void TraceRing::push(const char* name, std::int64_t ts_us,
                     std::int64_t dur_us, std::uint64_t trace_id,
                     std::uint64_t span_id, std::uint64_t parent_id) noexcept {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[h & (cap_ - 1)];
  // Null the name first so a concurrent reader skips the slot instead of
  // pairing the old name with the new timestamps.
  s.name.store(nullptr, std::memory_order_relaxed);
  s.ts_us.store(ts_us, std::memory_order_relaxed);
  s.dur_us.store(dur_us, std::memory_order_relaxed);
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.span_id.store(span_id, std::memory_order_relaxed);
  s.parent_id.store(parent_id, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEventCopy> TraceRing::events() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(h, cap_);
  std::vector<TraceEventCopy> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = h - n; i < h; ++i) {
    const Slot& s = slots_[i & (cap_ - 1)];
    const char* name = s.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;  // mid-rewrite by a wrapping writer
    out.push_back({name, s.ts_us.load(std::memory_order_relaxed),
                   s.dur_us.load(std::memory_order_relaxed), tid_,
                   s.trace_id.load(std::memory_order_relaxed),
                   s.span_id.load(std::memory_order_relaxed),
                   s.parent_id.load(std::memory_order_relaxed)});
  }
  return out;
}

void TraceRing::clear() noexcept {
  // Intended for quiescent rings (tests / between capture windows); a
  // concurrent writer only costs dropped events, never a crash.
  for (std::size_t i = 0; i < cap_; ++i) {
    slots_[i].name.store(nullptr, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_release);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

TraceRing& Tracer::thread_ring() {
  // Per-thread cache of this thread's ring. Tracer is a singleton, so the
  // thread_local cannot alias rings of a different instance.
  thread_local TraceRing* ring = [this] {
    MutexLock lock(mu_);
    rings_.push_back(std::make_unique<TraceRing>(
        TraceRing::kDefaultCapacity, static_cast<std::uint32_t>(rings_.size())));
    return rings_.back().get();
  }();
  return *ring;
}

std::string chrome_trace_json(const std::vector<TraceEventCopy>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEventCopy& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"bate\",\"ph\":\"X\",\"ts\":";
    append_i64(out, e.ts_us);
    out += ",\"dur\":";
    append_i64(out, e.dur_us);
    out += ",\"pid\":1,\"tid\":";
    append_i64(out, e.tid);
    // Identity args only for context-carrying spans; id-less events keep
    // the exact pre-context JSON shape (golden-tested).
    if (e.span_id != 0) {
      out += ",\"args\":{\"trace\":";
      append_u64(out, e.trace_id);
      out += ",\"span\":";
      append_u64(out, e.span_id);
      out += ",\"parent\":";
      append_u64(out, e.parent_id);
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Tracer::chrome_json() const {
  std::vector<TraceEventCopy> all;
  {
    ReaderMutexLock lock(mu_);
    for (const auto& ring : rings_) {
      auto ev = ring->events();
      all.insert(all.end(), ev.begin(), ev.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEventCopy& a, const TraceEventCopy& b) {
                     return a.ts_us < b.ts_us;
                   });
  return chrome_trace_json(all);
}

void Tracer::clear() {
  MutexLock lock(mu_);
  for (const auto& ring : rings_) ring->clear();
}

std::size_t Tracer::ring_count() const {
  ReaderMutexLock lock(mu_);
  return rings_.size();
}

void record_span(const char* name, std::int64_t ts_us, std::int64_t dur_us,
                 const SpanContext& ctx, std::uint64_t parent_id) noexcept {
  if (!enabled()) return;
  Tracer::global().thread_ring().push(name, ts_us, dur_us, ctx.trace_id,
                                      ctx.span_id, parent_id);
}

Span::Span(const char* name) noexcept {
  if (!enabled()) return;
  name_ = name;
  start_ = now_us();
  prev_ambient_ = g_ambient;
  span_ = next_span_id();
  parent_ = prev_ambient_.span_id;
  // Join the ambient trace, or root a fresh one.
  trace_ = prev_ambient_.valid() ? prev_ambient_.trace_id : next_span_id();
  g_ambient = SpanContext{trace_, span_};
}

Span::~Span() {
  if (name_ == nullptr) return;
  g_ambient = prev_ambient_;
  Tracer::global().thread_ring().push(name_, start_, now_us() - start_,
                                      trace_, span_, parent_);
}

ScopedTraceContext::ScopedTraceContext(const SpanContext& ctx) noexcept {
  if (!ctx.valid() || !enabled()) return;
  adopted_ = true;
  prev_ = g_ambient;
  g_ambient = ctx;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (adopted_) g_ambient = prev_;
}

}  // namespace bate::obs
