// Fixed-memory ring-buffer time-series store over registry metrics
// (DESIGN.md Sec 9.5). The registry answers "what is the counter NOW"; an
// operator dashboard needs "what happened over the last minute" —
// admissions/sec, p99 trend, queue-depth min/max — without unbounded
// memory on a controller that runs for months. Each series is a
// fixed-capacity ring of (t_us, value) points; sample() appends one point
// per counter, gauge, and histogram quantile from a MetricsSnapshot, and
// window() reduces the points inside [now - window, now] to
// min/max/avg/rate.
//
// Threading: one Mutex at rank kObsLedger (same rank as the SLO ledger;
// the two locks are never held together). The controller loop samples at a
// configured period; the stats RPC path reads windows.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"

namespace bate::obs {

struct MetricsSnapshot;

/// Reduction of one series over a time window.
struct WindowStats {
  std::int64_t count = 0;  // points inside the window
  double min = 0.0;
  double max = 0.0;
  double avg = 0.0;
  /// (last - first) / elapsed seconds — the per-second rate for counters;
  /// 0 with fewer than two points or zero elapsed time.
  double rate_per_sec = 0.0;
  std::int64_t first_t_us = 0;
  std::int64_t last_t_us = 0;
};

/// Fixed-capacity ring of (t_us, value) points; push overwrites the oldest
/// once full. Timestamps are expected non-decreasing (push order is kept,
/// not re-sorted).
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 256);

  void push(std::int64_t t_us, double value);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return points_.size(); }

  /// Points in push order, oldest first (test/inspection helper).
  std::vector<std::pair<std::int64_t, double>> points() const;

  /// Reduces the points with t in [now_us - window_us, now_us].
  WindowStats window(std::int64_t now_us, std::int64_t window_us) const;

 private:
  struct Point {
    std::int64_t t_us = 0;
    double value = 0.0;
  };
  std::vector<Point> points_;
  std::size_t head_ = 0;  // index of the oldest point
  std::size_t size_ = 0;
};

/// Named series, sampled from the metrics registry on a fixed period.
class TimeSeriesStore {
 public:
  struct Config {
    std::size_t capacity_per_series = 256;
    /// Histogram quantiles recorded as "<name>_p50" / "<name>_p99".
    double quantile_lo = 0.50;
    double quantile_hi = 0.99;
  };

  TimeSeriesStore() : TimeSeriesStore(Config{}) {}
  explicit TimeSeriesStore(const Config& config) : config_(config) {}
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Appends one point to the named series (created on first use).
  void record(std::string_view name, std::int64_t t_us, double value);

  /// Records every counter, gauge, and histogram quantile pair from a
  /// registry snapshot at time t_us. One call per sampling tick.
  void sample(const MetricsSnapshot& snap, std::int64_t t_us);

  std::size_t series_count() const;

  /// Window over one series; zero stats when the series is unknown.
  WindowStats window(std::string_view name, std::int64_t now_us,
                     std::int64_t window_us) const;

  /// {"window_us":W,"now_us":N,"series":{"name":{count,min,max,avg,
  /// rate_per_sec},...}} for every known series.
  std::string to_json(std::int64_t now_us, std::int64_t window_us) const;

  /// Drops every series (bench/test isolation).
  void clear();

 private:
  const Config config_;
  mutable Mutex mu_{LockRank::kObsLedger, "timeseries store"};
  std::map<std::string, TimeSeries, std::less<>> series_ BATE_GUARDED_BY(mu_);
};

}  // namespace bate::obs
