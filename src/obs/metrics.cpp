#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace bate::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  // Read BATE_OBS_OFF exactly once, on first use, so the switch is settled
  // before any metric is touched.
  static std::atomic<bool> flag([] {
    // Guarded by the magic-static initialisation (runs exactly once);
    // nothing in the process calls setenv.
    const char* v = std::getenv("BATE_OBS_OFF");  // NOLINT(concurrency-mt-unsafe)
    return !(v != nullptr && v[0] == '1' && v[1] == '\0');
  }());
  return flag;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::int64_t now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

unsigned Counter::shard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

int Histogram::bucket_index(std::int64_t v) noexcept {
  if (v < kSub) return static_cast<int>(v);
  const int e = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
  if (e > kMaxExp) return kBuckets - 1;
  const int sub = static_cast<int>((v >> (e - 2)) & (kSub - 1));
  return kSub + (e - 2) * kSub + sub;
}

std::int64_t Histogram::bucket_upper(int i) noexcept {
  if (i < kSub) return i + 1;
  const int octave = (i - kSub) / kSub;
  const int sub = (i - kSub) % kSub;
  const int e = octave + 2;
  return (std::int64_t{1} << e) + (sub + 1) * (std::int64_t{1} << (e - 2));
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count <= 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the wanted sample (1-based), then the first bucket whose
  // cumulative count covers it.
  const double rank = q * static_cast<double>(count);
  std::int64_t prev_cum = 0;
  std::int64_t prev_upper = 0;
  for (const Bucket& b : buckets) {
    if (static_cast<double>(b.cumulative) >= rank) {
      if (b.infinite) return static_cast<double>(prev_upper);
      // The snapshot holds only non-empty buckets, so prev_upper may sit
      // far below this bucket; recover the true lower bound from the fixed
      // layout instead of interpolating across the empty gap.
      const int idx = Histogram::bucket_index(b.upper - 1);
      const std::int64_t lower =
          idx > 0 ? Histogram::bucket_upper(idx - 1) : 0;
      const std::int64_t in_bucket = b.cumulative - prev_cum;
      if (in_bucket <= 0) return static_cast<double>(b.upper);
      const double frac = (rank - static_cast<double>(prev_cum)) /
                          static_cast<double>(in_bucket);
      return static_cast<double>(lower) +
             frac * static_cast<double>(b.upper - lower);
    }
    prev_cum = b.cumulative;
    prev_upper = b.upper;
  }
  return static_cast<double>(prev_upper);
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    append_int(out, v);
    out += "\n";
  }
  for (const auto& [name, v] : gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    append_double(out, v);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += "# TYPE " + name + " histogram\n";
    for (const auto& b : h.buckets) {
      out += name + "_bucket{le=\"";
      if (b.infinite) {
        out += "+Inf";
      } else {
        append_int(out, b.upper);
      }
      out += "\"} ";
      append_int(out, b.cumulative);
      out += "\n";
    }
    out += name + "_sum ";
    append_int(out, h.sum);
    out += "\n";
    out += name + "_count ";
    append_int(out, h.count);
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    append_int(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    append_double(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":";
    append_int(out, h.count);
    out += ",\"sum\":";
    append_int(out, h.sum);
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& b : h.buckets) {
      if (!bfirst) out += ",";
      bfirst = false;
      out += "{\"le\":";
      if (b.infinite) {
        out += "\"+Inf\"";
      } else {
        append_int(out, b.upper);
      }
      out += ",\"cumulative\":";
      append_int(out, b.cumulative);
      out += "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  // Shared lock: a snapshot only reads the maps (metric values are
  // atomics), so concurrent snapshots — the stats RPC and a test — overlap.
  ReaderMutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.sum = h->sum();
    std::int64_t cum = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::int64_t n = h->bucket_count(i);
      if (n == 0) continue;
      cum += n;
      hs.buckets.push_back({Histogram::bucket_upper(i),
                            i == Histogram::kBuckets - 1, cum});
    }
    // Prometheus requires the +Inf bucket and h_count == cumulative(+Inf);
    // derive both from the bucket walk so the snapshot is self-consistent
    // even while writers race.
    hs.count = cum;
    if (cum > 0 && (hs.buckets.empty() || !hs.buckets.back().infinite)) {
      hs.buckets.push_back({0, true, cum});
    }
    snap.histograms.emplace_back(name, std::move(hs));
  }
  return snap;
}

std::string Registry::dump(std::string_view format) const {
  const MetricsSnapshot snap = snapshot();
  if (format == "json") return snap.to_json();
  return snap.to_prometheus();
}

void Registry::reset() { reset(std::string_view{}); }

void Registry::reset(std::string_view prefix) {
  const auto matches = [prefix](const std::string& name) {
    return prefix.empty() ||
           std::string_view(name).substr(0, prefix.size()) == prefix;
  };
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) {
    if (matches(name)) c->reset();
  }
  for (auto& [name, g] : gauges_) {
    if (matches(name)) g->reset();
  }
  for (auto& [name, h] : histograms_) {
    if (matches(name)) h->reset();
  }
}

}  // namespace bate::obs
