// Low-overhead metrics registry: monotonic counters, gauges, and fixed-
// bucket log-linear histograms, exposed as Prometheus text or JSON.
//
// Contract (DESIGN.md Sec 9):
//  * Increments are wait-free and never touch a registry lock. Counters
//    stripe across cache-line-padded shards indexed by a thread-local slot,
//    so solver worker threads and the epoll thread never contend on the
//    same line; aggregation happens lazily at snapshot() time.
//  * Metric handles returned by Registry::counter()/gauge()/histogram()
//    are valid for the registry's lifetime; call sites cache them in a
//    function-local static so the name lookup (which does lock) runs once.
//  * Names follow bate_<layer>_<name>{_total|_us}: _total for counters,
//    _us for microsecond histograms. snapshot() emits names sorted, so
//    exposition output is deterministic for golden tests.
//  * The whole subsystem is disabled by BATE_OBS_OFF=1 in the environment
//    (or set_enabled(false)): increments become cheap early-outs and
//    snapshots observe frozen values. The ci.sh obs-overhead gate compares
//    bench_solver medians across this switch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace bate::obs {

/// Global on/off switch. Initialised once from BATE_OBS_OFF (=1 disables)
/// on first use; set_enabled overrides it (benches toggle it for A/B).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic steady-clock microseconds. The single sanctioned timing source
/// for src/solver / src/core hot paths (bate_lint `timing` rule).
std::int64_t now_us() noexcept;

/// Monotonically increasing counter. inc() is a relaxed fetch_add on one of
/// kShards cache-line-padded cells picked by a thread-local slot.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::int64_t n = 1) noexcept {
    if (!enabled()) return;
    cells_[shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Lazy aggregation: sums the shards. Safe to call concurrently with
  /// inc(); the result is some value between the sums before and after.
  std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kShards = 8;  // power of two
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  static unsigned shard() noexcept;
  std::array<Cell, kShards> cells_;
};

/// Last-write-wins floating-point gauge (queue depths, fan-out latency).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to v if v is larger (peak tracking).
  void max_of(double v) noexcept {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket log-linear histogram over non-negative integer samples
/// (microseconds by convention). Buckets 0..3 are linear with upper bounds
/// 1,2,3,4; above that each power-of-two octave splits into 4 linear
/// sub-buckets (relative error <= 25%), up to 2^31us (~36 min); the last
/// bucket is the overflow (+Inf). Bucket boundaries are a pure function of
/// the index — nothing is allocated or configured at record() time.
class Histogram {
 public:
  static constexpr int kSub = 4;  // sub-buckets per octave, power of two
  static constexpr int kMaxExp = 31;
  static constexpr int kBuckets = kSub + (kMaxExp - 1) * kSub;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::int64_t v) noexcept {
    if (!enabled()) return;
    if (v < 0) v = 0;
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Index of the bucket holding v (v >= 0). Exposed for the bucket-
  /// boundary unit tests.
  static int bucket_index(std::int64_t v) noexcept;
  /// Exclusive upper bound of bucket i; the final bucket reports the
  /// largest representable bound and is treated as +Inf by exposition.
  static std::int64_t bucket_upper(int i) noexcept;

  std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::int64_t bucket_count(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  struct Bucket {
    std::int64_t upper = 0;  // exclusive; infinite == true for the +Inf one
    bool infinite = false;
    std::int64_t cumulative = 0;
  };
  /// Non-empty buckets in ascending order, cumulative counts, always
  /// terminated by the +Inf bucket when count > 0.
  std::vector<Bucket> buckets;

  /// Prometheus-style quantile estimate (q in [0,1]): finds the bucket
  /// holding the q-th sample and interpolates linearly inside it, so the
  /// error is bounded by the bucket width (<= 25% for the log-linear
  /// layout). Returns 0 for an empty histogram; the +Inf bucket reports its
  /// finite lower bound.
  double quantile(double q) const;
};

/// Point-in-time copy of every metric, names sorted. Taken under the
/// registry lock but without stopping writers (counters may keep moving;
/// each value is internally consistent).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Prometheus text exposition (# TYPE lines, _bucket{le=...} series).
  std::string to_prometheus() const;
  /// JSON object {"counters":{},"gauges":{},"histograms":{}}.
  std::string to_json() const;
};

/// Name -> metric map. Instantiable for tests; production code uses
/// Registry::global(). Lookup locks; the returned references are stable
/// for the registry's lifetime, so cache them.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  /// snapshot() rendered as "prometheus" (default) or "json".
  std::string dump(std::string_view format = "prometheus") const;
  /// Zeroes every registered metric (bench/test isolation). Handles stay
  /// valid.
  void reset();
  /// Zeroes only metrics whose name starts with `prefix` (namespace-scoped
  /// isolation: e.g. "bate_slo_" between ledger tests). "" matches all.
  void reset(std::string_view prefix);

 private:
  // kObsRegistry is the bottom of the lock hierarchy: metric registration
  // (the function-local-static handle lookups) may run under any other
  // subsystem lock.
  mutable Mutex mu_{LockRank::kObsRegistry, "metrics registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      BATE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      BATE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      BATE_GUARDED_BY(mu_);
};

/// RAII registry hygiene for tests and bench reps: resets the matching
/// metrics (all, or a name prefix) on construction AND destruction, so a
/// scope neither observes earlier process-global counter state nor leaks
/// its own into later cases. The registry itself stays process-global —
/// handles cached in function-local statics remain valid.
class ScopedRegistryReset {
 public:
  explicit ScopedRegistryReset(Registry& registry = Registry::global(),
                               std::string_view prefix = "")
      : registry_(registry), prefix_(prefix) {
    registry_.reset(prefix_);
  }
  ~ScopedRegistryReset() { registry_.reset(prefix_); }
  ScopedRegistryReset(const ScopedRegistryReset&) = delete;
  ScopedRegistryReset& operator=(const ScopedRegistryReset&) = delete;

 private:
  Registry& registry_;
  std::string prefix_;
};

}  // namespace bate::obs
