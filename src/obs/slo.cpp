#include "obs/slo.h"

#include <cstdio>

#include "obs/metrics.h"

namespace bate::obs {

namespace {

/// Ledger metric handles, registered once. inc() is wait-free and gated on
/// obs::enabled() internally; ledger BOOKKEEPING is never gated — the SLO
/// answer must stay correct even with metrics disabled.
struct LedgerMetrics {
  Counter& transitions;
  Counter& invalid;
  Gauge& live;
  static LedgerMetrics& get() {
    static LedgerMetrics m{
        Registry::global().counter("bate_slo_transitions_total"),
        Registry::global().counter("bate_slo_invalid_transitions_total"),
        Registry::global().gauge("bate_slo_demands_live"),
    };
    return m;
  }
};

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

}  // namespace

const char* to_string(DemandState s) noexcept {
  switch (s) {
    case DemandState::kAdmitted: return "admitted";
    case DemandState::kAllocated: return "allocated";
    case DemandState::kDegraded: return "degraded";
    case DemandState::kRecovered: return "recovered";
    case DemandState::kWithdrawn: return "withdrawn";
  }
  return "?";
}

void SloLedger::note_transition(Entry& e, DemandState s, std::int64_t t_us) {
  e.state = s;  // bate-lint: allow(slo-ledger)
  if (e.transitions.size() >= config_.max_transitions) {
    ++e.dropped_transitions;
  } else {
    e.transitions.push_back(Transition{t_us, s});
  }
  LedgerMetrics::get().transitions.inc();
}

void SloLedger::admit(std::int64_t id, std::int64_t tenant, double beta,
                      std::int64_t t_us) {
  MutexLock lock(mu_);
  auto [it, inserted] = demands_.try_emplace(id);
  if (!inserted) {
    ++invalid_;
    LedgerMetrics::get().invalid.inc();
    return;
  }
  Entry& e = it->second;
  e.tenant = tenant;
  e.beta = beta;
  e.admitted_us = t_us;
  e.meter.start(t_us, /*satisfied=*/true);
  note_transition(e, DemandState::kAdmitted, t_us);
  LedgerMetrics::get().live.set(static_cast<double>(demands_.size()));
}

void SloLedger::allocate(std::int64_t id, std::int64_t t_us) {
  MutexLock lock(mu_);
  auto it = demands_.find(id);
  if (it == demands_.end() || it->second.state == DemandState::kWithdrawn) {
    ++invalid_;
    LedgerMetrics::get().invalid.inc();
    return;
  }
  // Idempotent from any live state: re-broadcasts are routine.
  if (it->second.state != DemandState::kAdmitted) return;
  note_transition(it->second, DemandState::kAllocated, t_us);
}

void SloLedger::degrade(std::int64_t id, std::int64_t t_us) {
  MutexLock lock(mu_);
  auto it = demands_.find(id);
  if (it == demands_.end() || it->second.state == DemandState::kWithdrawn) {
    ++invalid_;
    LedgerMetrics::get().invalid.inc();
    return;
  }
  Entry& e = it->second;
  if (e.state == DemandState::kDegraded) return;
  e.meter.set_satisfied(t_us, false);
  note_transition(e, DemandState::kDegraded, t_us);
}

void SloLedger::recover(std::int64_t id, std::int64_t t_us) {
  MutexLock lock(mu_);
  auto it = demands_.find(id);
  if (it == demands_.end() || it->second.state == DemandState::kWithdrawn) {
    ++invalid_;
    LedgerMetrics::get().invalid.inc();
    return;
  }
  Entry& e = it->second;
  // Recover is only meaningful out of a degradation; a recover while
  // already satisfied is a harmless duplicate report, not an error.
  if (e.state != DemandState::kDegraded) return;
  e.meter.set_satisfied(t_us, true);
  note_transition(e, DemandState::kRecovered, t_us);
}

void SloLedger::set_satisfied(std::int64_t id, bool satisfied,
                              std::int64_t t_us) {
  // Reuses degrade()/recover() edge rules; both treat a report that does
  // not change the satisfied bit as a no-op.
  if (satisfied) {
    recover(id, t_us);
  } else {
    degrade(id, t_us);
  }
}

void SloLedger::withdraw(std::int64_t id, std::int64_t t_us) {
  MutexLock lock(mu_);
  auto it = demands_.find(id);
  if (it == demands_.end() || it->second.state == DemandState::kWithdrawn) {
    ++invalid_;
    LedgerMetrics::get().invalid.inc();
    return;
  }
  Entry& e = it->second;
  e.meter.finalize(t_us);
  note_transition(e, DemandState::kWithdrawn, t_us);
  retire(id);
  std::size_t live = 0;
  for (const auto& [did, de] : demands_) {
    if (de.state != DemandState::kWithdrawn) ++live;
  }
  LedgerMetrics::get().live.set(static_cast<double>(live));
}

void SloLedger::retire(std::int64_t id) {
  withdrawn_order_.push_back(id);
  while (withdrawn_order_.size() > config_.max_withdrawn) {
    demands_.erase(withdrawn_order_.front());
    withdrawn_order_.pop_front();
  }
}

std::int64_t SloLedger::invalid_transitions() const {
  MutexLock lock(mu_);
  return invalid_;
}

std::size_t SloLedger::live_demands() const {
  MutexLock lock(mu_);
  std::size_t live = 0;
  for (const auto& [id, e] : demands_) {
    if (e.state != DemandState::kWithdrawn) ++live;
  }
  return live;
}

void SloLedger::clear() {
  MutexLock lock(mu_);
  demands_.clear();
  withdrawn_order_.clear();
  invalid_ = 0;
  LedgerMetrics::get().live.set(0.0);
}

SloLedger::DemandRow SloLedger::to_row(std::int64_t id, const Entry& e,
                                       std::int64_t now_us) {
  DemandRow row;
  row.id = id;
  row.tenant = e.tenant;
  row.beta = e.beta;
  row.state = e.state;
  row.admitted_us = e.admitted_us;
  row.active_us = e.meter.active_us_at(now_us);
  row.satisfied_us = e.meter.satisfied_us_at(now_us);
  row.availability = e.meter.availability_at(now_us);
  row.budget_burn = e.meter.budget_burn_at(e.beta, now_us);
  row.burn_per_hour = e.meter.burn_per_hour_at(e.beta, now_us);
  row.target_met = availability_target_met(row.availability, e.beta);
  row.transitions = e.transitions;
  row.dropped_transitions = e.dropped_transitions;
  return row;
}

SloLedger::Snapshot SloLedger::snapshot(std::int64_t now_us) const {
  Snapshot snap;
  snap.now_us = now_us;
  std::map<std::int64_t, TenantRow> tenants;
  {
    MutexLock lock(mu_);
    snap.demands.reserve(demands_.size());
    for (const auto& [id, e] : demands_) {
      snap.demands.push_back(to_row(id, e, now_us));
      const DemandRow& row = snap.demands.back();
      TenantRow& t = tenants[e.tenant];
      t.tenant = e.tenant;
      ++t.demands;
      if (row.budget_burn > 1.0) ++t.violating;
      if (row.budget_burn > t.worst_burn) t.worst_burn = row.budget_burn;
      if (row.availability < t.min_availability) {
        t.min_availability = row.availability;
      }
    }
  }
  snap.tenants.reserve(tenants.size());
  for (auto& [tenant, row] : tenants) snap.tenants.push_back(row);
  return snap;
}

std::string SloLedger::Snapshot::to_json() const {
  std::string out = "{\"now_us\":";
  append_int(out, now_us);
  out += ",\"demands\":[";
  bool first = true;
  for (const DemandRow& d : demands) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    append_int(out, d.id);
    out += ",\"tenant\":";
    append_int(out, d.tenant);
    out += ",\"beta\":";
    append_double(out, d.beta);
    out += ",\"state\":\"";
    out += to_string(d.state);
    out += "\",\"admitted_us\":";
    append_int(out, d.admitted_us);
    out += ",\"active_us\":";
    append_int(out, d.active_us);
    out += ",\"satisfied_us\":";
    append_int(out, d.satisfied_us);
    out += ",\"availability\":";
    append_double(out, d.availability);
    out += ",\"budget_burn\":";
    append_double(out, d.budget_burn);
    out += ",\"burn_per_hour\":";
    append_double(out, d.burn_per_hour);
    out += ",\"target_met\":";
    out += d.target_met ? "true" : "false";
    out += ",\"dropped_transitions\":";
    append_int(out, d.dropped_transitions);
    out += ",\"transitions\":[";
    bool tfirst = true;
    for (const Transition& t : d.transitions) {
      if (!tfirst) out += ',';
      tfirst = false;
      out += "{\"t_us\":";
      append_int(out, t.t_us);
      out += ",\"state\":\"";
      out += to_string(t.state);
      out += "\"}";
    }
    out += "]}";
  }
  out += "],\"tenants\":[";
  first = true;
  for (const TenantRow& t : tenants) {
    if (!first) out += ',';
    first = false;
    out += "{\"tenant\":";
    append_int(out, t.tenant);
    out += ",\"demands\":";
    append_int(out, t.demands);
    out += ",\"violating\":";
    append_int(out, t.violating);
    out += ",\"worst_burn\":";
    append_double(out, t.worst_burn);
    out += ",\"min_availability\":";
    append_double(out, t.min_availability);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace bate::obs
