// Live availability-SLO ledger (DESIGN.md Sec 9.4): the controller-side
// answer to "are we keeping the beta_d promise we charged for?".
//
// Each admitted demand advances through a small lifecycle state machine
//
//   admitted -> allocated -> degraded <-> recovered -> withdrawn
//
// driven by admission results, broker link-status reports, and withdrawals.
// Time spent in a satisfied state (everything but kDegraded) accrues to the
// demand's measured availability through the SAME arithmetic the offline
// simulator uses (obs/availability.h), so live and simulated accountings
// agree to the bit on one event log. From the measured availability and the
// promised beta_d the ledger derives per-demand and per-tenant error-budget
// burn: burn 1.0 means the allowed unavailable time is fully consumed and
// the refund clause of the paper's pricing model is about to trigger.
//
// Threading: one Mutex at rank kObsLedger (above kObsRegistry so metric
// handles may register under it, below kLogger so logging under the ledger
// lock is a rank violation — transitions are hot-path). All transition
// methods are O(log n) map updates; snapshot() copies under the lock and
// formats outside it. Invalid transitions (unknown id, withdrawn demand,
// duplicate admit) are counted, never fatal: the ledger observes the
// system, it must not take it down.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/availability.h"
#include "util/mutex.h"

namespace bate::obs {

/// Demand lifecycle states. Transitions MUST go through the SloLedger API
/// (bate_lint `slo-ledger` rule); nothing outside src/obs assigns these.
enum class DemandState : std::uint8_t {
  kAdmitted = 0,   // accepted, allocation not yet confirmed
  kAllocated = 1,  // allocation broadcast; delivering at promised rate
  kDegraded = 2,   // a link failure is eating into the error budget
  kRecovered = 3,  // back above the satisfied floor after a degradation
  kWithdrawn = 4,  // terminal; availability frozen at finalize time
};

const char* to_string(DemandState s) noexcept;

class SloLedger {
 public:
  struct Config {
    /// Per-demand transition-log cap; once full, further transitions keep
    /// updating the meter but are dropped from the log (counted in
    /// dropped_transitions) to keep memory fixed. The retained prefix is
    /// the demand's earliest history — it always includes the admit.
    std::size_t max_transitions = 64;
    /// Withdrawn demands retained for post-mortem snapshots.
    std::size_t max_withdrawn = 1024;
  };

  struct Transition {
    std::int64_t t_us = 0;
    DemandState state = DemandState::kAdmitted;
  };

  struct DemandRow {
    std::int64_t id = 0;
    std::int64_t tenant = 0;
    double beta = 0.0;  // promised availability target
    DemandState state = DemandState::kAdmitted;
    std::int64_t admitted_us = 0;
    std::int64_t active_us = 0;
    std::int64_t satisfied_us = 0;
    double availability = 1.0;
    double budget_burn = 0.0;
    double burn_per_hour = 0.0;
    bool target_met = true;
    std::vector<Transition> transitions;
    std::int64_t dropped_transitions = 0;
  };

  struct TenantRow {
    std::int64_t tenant = 0;
    std::int64_t demands = 0;
    std::int64_t violating = 0;  // demands with burn > 1
    double worst_burn = 0.0;
    double min_availability = 1.0;
  };

  struct Snapshot {
    std::int64_t now_us = 0;
    std::vector<DemandRow> demands;  // sorted by id; withdrawn included
    std::vector<TenantRow> tenants;  // sorted by tenant
    std::string to_json() const;
  };

  SloLedger() : SloLedger(Config{}) {}
  explicit SloLedger(const Config& config) : config_(config) {}
  SloLedger(const SloLedger&) = delete;
  SloLedger& operator=(const SloLedger&) = delete;

  /// Admission accepted: starts the availability clock (satisfied).
  void admit(std::int64_t id, std::int64_t tenant, double beta,
             std::int64_t t_us);
  /// Allocation confirmed/broadcast. Idempotent from any live state.
  void allocate(std::int64_t id, std::int64_t t_us);
  /// Delivered rate dropped below the satisfied floor on some pair.
  void degrade(std::int64_t id, std::int64_t t_us);
  /// Back at/above the floor after a degradation.
  void recover(std::int64_t id, std::int64_t t_us);
  /// Convenience dispatcher used by per-interval refresh loops: degrades or
  /// recovers only when the satisfied bit actually changed.
  void set_satisfied(std::int64_t id, bool satisfied, std::int64_t t_us);
  /// Terminal: freezes the meter; row retained (up to max_withdrawn).
  void withdraw(std::int64_t id, std::int64_t t_us);

  /// Transitions that named an unknown id, a withdrawn demand, or an
  /// illegal edge. Observability must not crash the controller; tests
  /// assert on this instead.
  std::int64_t invalid_transitions() const;

  std::size_t live_demands() const;

  Snapshot snapshot(std::int64_t now_us) const;

  /// Forgets everything (bench/test isolation).
  void clear();

 private:
  struct Entry {
    std::int64_t tenant = 0;
    double beta = 0.0;
    DemandState state = DemandState::kAdmitted;
    std::int64_t admitted_us = 0;
    AvailabilityMeter meter;
    std::vector<Transition> transitions;
    std::int64_t dropped_transitions = 0;
  };

  void note_transition(Entry& e, DemandState s, std::int64_t t_us)
      BATE_REQUIRES(mu_);
  void retire(std::int64_t id) BATE_REQUIRES(mu_);
  static DemandRow to_row(std::int64_t id, const Entry& e,
                          std::int64_t now_us);

  const Config config_;
  // Logging while holding mu_ is a lock-rank violation by design
  // (kLogger 15 > kObsLedger 12): transitions run on the controller loop.
  mutable Mutex mu_{LockRank::kObsLedger, "slo ledger"};
  std::map<std::int64_t, Entry> demands_ BATE_GUARDED_BY(mu_);
  /// Withdrawn ids in retirement order (oldest first), capped.
  std::deque<std::int64_t> withdrawn_order_ BATE_GUARDED_BY(mu_);
  std::int64_t invalid_ BATE_GUARDED_BY(mu_) = 0;
};

}  // namespace bate::obs
