#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace bate::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

TimeSeries::TimeSeries(std::size_t capacity)
    : points_(capacity == 0 ? 1 : capacity) {}

void TimeSeries::push(std::int64_t t_us, double value) {
  const std::size_t cap = points_.size();
  if (size_ < cap) {
    points_[(head_ + size_) % cap] = Point{t_us, value};
    ++size_;
  } else {
    points_[head_] = Point{t_us, value};
    head_ = (head_ + 1) % cap;
  }
}

std::vector<std::pair<std::int64_t, double>> TimeSeries::points() const {
  std::vector<std::pair<std::int64_t, double>> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const Point& p = points_[(head_ + i) % points_.size()];
    out.emplace_back(p.t_us, p.value);
  }
  return out;
}

WindowStats TimeSeries::window(std::int64_t now_us,
                               std::int64_t window_us) const {
  WindowStats w;
  const std::int64_t lo = now_us - window_us;
  double sum = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    const Point& p = points_[(head_ + i) % points_.size()];
    if (p.t_us < lo || p.t_us > now_us) continue;
    if (w.count == 0) {
      w.min = w.max = p.value;
      w.first_t_us = p.t_us;
    } else {
      w.min = std::min(w.min, p.value);
      w.max = std::max(w.max, p.value);
    }
    w.last_t_us = p.t_us;
    sum += p.value;
    ++w.count;
  }
  if (w.count > 0) {
    w.avg = sum / static_cast<double>(w.count);
    const std::int64_t elapsed = w.last_t_us - w.first_t_us;
    if (w.count >= 2 && elapsed > 0) {
      // First/last values come back out of the ring in push order, so this
      // is (newest - oldest) / elapsed — the counter rate.
      double first_v = 0.0;
      double last_v = 0.0;
      bool seen = false;
      for (std::size_t i = 0; i < size_; ++i) {
        const Point& p = points_[(head_ + i) % points_.size()];
        if (p.t_us < lo || p.t_us > now_us) continue;
        if (!seen) {
          first_v = p.value;
          seen = true;
        }
        last_v = p.value;
      }
      w.rate_per_sec = (last_v - first_v) * 1e6 / static_cast<double>(elapsed);
    }
  }
  return w;
}

void TimeSeriesStore::record(std::string_view name, std::int64_t t_us,
                             double value) {
  MutexLock lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::string(name),
                      TimeSeries(config_.capacity_per_series))
             .first;
  }
  it->second.push(t_us, value);
}

void TimeSeriesStore::sample(const MetricsSnapshot& snap, std::int64_t t_us) {
  for (const auto& [name, v] : snap.counters) {
    record(name, t_us, static_cast<double>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    record(name, t_us, v);
  }
  char qname[160];
  for (const auto& [name, h] : snap.histograms) {
    std::snprintf(qname, sizeof qname, "%s_p%02d", name.c_str(),
                  static_cast<int>(config_.quantile_lo * 100));
    record(qname, t_us, h.quantile(config_.quantile_lo));
    std::snprintf(qname, sizeof qname, "%s_p%02d", name.c_str(),
                  static_cast<int>(config_.quantile_hi * 100));
    record(qname, t_us, h.quantile(config_.quantile_hi));
  }
}

std::size_t TimeSeriesStore::series_count() const {
  MutexLock lock(mu_);
  return series_.size();
}

WindowStats TimeSeriesStore::window(std::string_view name,
                                    std::int64_t now_us,
                                    std::int64_t window_us) const {
  MutexLock lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return WindowStats{};
  return it->second.window(now_us, window_us);
}

std::string TimeSeriesStore::to_json(std::int64_t now_us,
                                     std::int64_t window_us) const {
  std::string out = "{\"now_us\":";
  out += std::to_string(now_us);
  out += ",\"window_us\":";
  out += std::to_string(window_us);
  out += ",\"series\":{";
  MutexLock lock(mu_);
  bool first = true;
  for (const auto& [name, series] : series_) {
    const WindowStats w = series.window(now_us, window_us);
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(w.count);
    out += ",\"min\":";
    append_double(out, w.min);
    out += ",\"max\":";
    append_double(out, w.max);
    out += ",\"avg\":";
    append_double(out, w.avg);
    out += ",\"rate_per_sec\":";
    append_double(out, w.rate_per_sec);
    out += '}';
  }
  out += "}}";
  return out;
}

void TimeSeriesStore::clear() {
  MutexLock lock(mu_);
  series_.clear();
}

}  // namespace bate::obs
