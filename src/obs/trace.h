// Scoped tracing spans recorded into lock-free per-thread ring buffers,
// exportable as Chrome trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev).
//
// Contract (DESIGN.md Sec 9):
//  * BATE_TRACE_SPAN("name") never allocates on the hot path: the span
//    holds a string-literal pointer and two int64s; closing it writes one
//    slot of a preallocated ring. The only allocation is the ring itself,
//    created once per thread on its first span and kept for the process
//    lifetime (rings are never freed, so export after a thread exits is
//    safe).
//  * Each ring is single-writer (its owning thread); the exporter reads
//    slots with relaxed atomics, so a concurrent export sees a torn event
//    at worst (a wrapping writer reusing the slot), never a data race.
//  * Rings wrap: a thread that records more than capacity() spans keeps the
//    newest ones. total() keeps counting so tests can observe the drop.
//  * Everything is disabled (spans become no-ops) when obs::enabled() is
//    false (BATE_OBS_OFF=1).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace bate::obs {

/// Identity of a span for cross-process causality: which request (trace)
/// it belongs to and which span it is. Propagated over the wire in the
/// frame header (src/net/framing.h) so client -> controller -> broker
/// renders as ONE trace. trace_id == 0 means "no context".
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const noexcept { return trace_id != 0; }
};

/// The calling thread's ambient span context: the innermost open Span, or
/// whatever a ScopedTraceContext adopted from the wire. New spans parent
/// under it.
SpanContext current_context() noexcept;

/// Process-unique non-zero span/trace id allocator (one atomic counter).
std::uint64_t next_span_id() noexcept;

/// One completed span, as copied out of a ring by the exporter. The id
/// fields default to 0 ("no context") so id-less aggregate initialization
/// and the legacy 3-arg push keep working — and render the exact same JSON
/// as before (args are emitted only when span_id != 0).
struct TraceEventCopy {
  const char* name = nullptr;  // string literal supplied to the span
  std::int64_t ts_us = 0;      // start, obs::now_us() clock
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;  // small ring id, not the OS thread id
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // span_id of the parent; 0 for a root
};

/// Fixed-capacity single-writer ring of completed spans. push() is the
/// only writer and must stay on the owning thread; events()/total() may
/// run anywhere.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;  // power of two

  explicit TraceRing(std::size_t capacity = kDefaultCapacity,
                     std::uint32_t tid = 0);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void push(const char* name, std::int64_t ts_us, std::int64_t dur_us,
            std::uint64_t trace_id = 0, std::uint64_t span_id = 0,
            std::uint64_t parent_id = 0) noexcept;

  /// Events pushed over the ring's lifetime (>= events().size()).
  std::uint64_t total() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const noexcept { return cap_; }
  std::uint32_t tid() const noexcept { return tid_; }

  /// Copies the retained events oldest-first. Concurrency-safe against the
  /// writer (see header comment); skips slots whose name is still null.
  std::vector<TraceEventCopy> events() const;

  /// Forgets all retained events (head keeps counting from 0 again).
  void clear() noexcept;

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int64_t> ts_us{0};
    std::atomic<std::int64_t> dur_us{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> parent_id{0};
  };
  std::size_t cap_;
  std::uint32_t tid_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Owns one ring per thread that ever recorded a span. Singleton; rings
/// live for the process lifetime.
class Tracer {
 public:
  static Tracer& global();

  /// The calling thread's ring, created and registered on first use.
  TraceRing& thread_ring();

  /// All retained events from every ring as Chrome trace_event JSON:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...},...]}.
  std::string chrome_json() const;

  /// Drops retained events from every ring (rings stay registered).
  void clear();

  /// Rings registered so far (== distinct threads that traced).
  std::size_t ring_count() const;

 private:
  Tracer() = default;
  mutable Mutex mu_{LockRank::kObsRegistry, "tracer"};
  std::vector<std::unique_ptr<TraceRing>> rings_ BATE_GUARDED_BY(mu_);
};

/// Renders a flat event list as Chrome trace JSON (exposed for tests and
/// for exporting a single ring).
std::string chrome_trace_json(const std::vector<TraceEventCopy>& events);

/// Records a span retroactively, with explicit timestamps and identity —
/// for spans whose duration is only known after the fact (e.g. the
/// controller's per-demand queue-wait, measured enqueue -> drain).
void record_span(const char* name, std::int64_t ts_us, std::int64_t dur_us,
                 const SpanContext& ctx, std::uint64_t parent_id) noexcept;

/// RAII span: captures now_us() at construction, records into the calling
/// thread's ring at destruction. `name` MUST be a string literal (or
/// otherwise outlive every export).
///
/// Identity: the span allocates its own span_id, parents under the
/// thread's ambient context (current_context()), joins the ambient trace —
/// or starts a new trace when there is none — and becomes the ambient
/// context for its scope, so nested spans chain automatically.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's identity, e.g. to stamp onto an outgoing frame. Zero ids
  /// when tracing is disabled.
  SpanContext context() const noexcept { return SpanContext{trace_, span_}; }

 private:
  const char* name_ = nullptr;
  std::int64_t start_ = 0;
  std::uint64_t trace_ = 0;
  std::uint64_t span_ = 0;
  std::uint64_t parent_ = 0;
  SpanContext prev_ambient_{};
};

/// Adopts a span context received over the wire as the thread's ambient
/// context for a scope: spans opened inside parent under the REMOTE span,
/// stitching the cross-process trace together. A !valid() context is a
/// no-op (the scope keeps its local ambient).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const SpanContext& ctx) noexcept;
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  bool adopted_ = false;
  SpanContext prev_{};
};

}  // namespace bate::obs

#define BATE_OBS_CONCAT_INNER(a, b) a##b
#define BATE_OBS_CONCAT(a, b) BATE_OBS_CONCAT_INNER(a, b)
/// Scoped span covering the rest of the enclosing block.
#define BATE_TRACE_SPAN(name) \
  ::bate::obs::Span BATE_OBS_CONCAT(bate_trace_span_, __LINE__)(name)
