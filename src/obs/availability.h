// Shared availability-accounting arithmetic (the paper's beta_d promise,
// Sec 2/6): ONE implementation of "measured availability" used by both the
// offline simulator (src/sim/metrics.h, per-second counters) and the live
// controller's SLO ledger (src/obs/slo.h, time-weighted transitions), so
// the two accountings can never drift. The equivalence test in
// tests/slo_test.cpp feeds one event sequence through both and asserts
// identical results.
//
// Conventions, fixed here so every consumer agrees:
//  * A second (or interval) is SATISFIED when delivered/demanded >= 0.99 on
//    every pair of the demand — the paper tolerates a <= 1% downward
//    deviation before a second counts against availability.
//  * availability = satisfied_time / active_time, and a demand that was
//    never active is trivially 1.0 (it was never failed).
//  * A target is met with a +1e-12 absolute tolerance, absorbing the
//    satisfied/active division's rounding.
#pragma once

#include <cstdint>

namespace bate::obs {

/// Paper rule (Sec 2): a downward deviation of more than 1% breaks the
/// interval. delivered_ratio = delivered / demanded for one pair.
inline constexpr double kSatisfiedRatioFloor = 0.99;

/// Absolute tolerance for target_met comparisons.
inline constexpr double kAvailabilityTol = 1e-12;

/// True when one pair's delivered/demanded ratio keeps the interval
/// satisfied.
inline bool interval_satisfied(double delivered_ratio) noexcept {
  return delivered_ratio >= kSatisfiedRatioFloor;
}

/// satisfied/active in any common time unit; 1.0 when never active.
inline double availability_ratio(std::int64_t satisfied,
                                 std::int64_t active) noexcept {
  return active == 0 ? 1.0
                     : static_cast<double>(satisfied) /
                           static_cast<double>(active);
}

/// True when the measured availability meets `target` (the promised
/// beta_d), within kAvailabilityTol.
inline bool availability_target_met(double achieved, double target) noexcept {
  return achieved + kAvailabilityTol >= target;
}

/// Time-weighted two-state (satisfied / unsatisfied) accumulator over
/// microsecond timestamps: the live ledger's measured-availability
/// arithmetic. Feeding it transitions at second boundaries reproduces the
/// simulator's per-second counters exactly (scaled by 1e6).
///
/// Timestamps must be monotone non-decreasing; an out-of-order timestamp
/// clamps to the last seen time (the interval contributes zero) rather
/// than corrupting the totals.
class AvailabilityMeter {
 public:
  /// Begins accounting at `t_us`, in the given state. Repeated start is
  /// ignored.
  void start(std::int64_t t_us, bool satisfied = true) noexcept;

  /// Accumulates the elapsed interval under the previous state, then
  /// switches. No-op before start() or after finalize().
  void set_satisfied(std::int64_t t_us, bool satisfied) noexcept;

  /// Accumulates the tail interval and freezes the meter (withdraw).
  void finalize(std::int64_t t_us) noexcept;

  bool started() const noexcept { return started_; }
  bool finalized() const noexcept { return finalized_; }
  bool satisfied() const noexcept { return satisfied_; }

  /// Accumulated totals as of the last transition/finalize.
  std::int64_t active_us() const noexcept { return active_us_; }
  std::int64_t satisfied_us() const noexcept { return satisfied_us_; }

  /// Read-only peek including the open interval up to `now_us` (snapshot
  /// paths): totals as if set_satisfied(now_us, satisfied()) had run.
  std::int64_t active_us_at(std::int64_t now_us) const noexcept;
  std::int64_t satisfied_us_at(std::int64_t now_us) const noexcept;
  std::int64_t unsatisfied_us_at(std::int64_t now_us) const noexcept {
    return active_us_at(now_us) - satisfied_us_at(now_us);
  }

  double availability_at(std::int64_t now_us) const noexcept {
    return availability_ratio(satisfied_us_at(now_us), active_us_at(now_us));
  }

  /// Error-budget burn against a promised availability `beta`: the
  /// fraction of the allowed unavailable time (1 - beta over the active
  /// window) already consumed. > 1 means the SLO is violated; a beta of
  /// 1.0 allows zero unavailability, so any burn reports kInfiniteBurn.
  double budget_burn_at(double beta, std::int64_t now_us) const noexcept;

  /// Burn per active hour (a burn RATE: 1.0 means the whole budget is
  /// consumed every hour at the current pace).
  double burn_per_hour_at(double beta, std::int64_t now_us) const noexcept;

  /// Sentinel burn for a fully-consumed zero budget (kept finite so JSON
  /// renderings stay parseable).
  static constexpr double kInfiniteBurn = 1e12;

 private:
  std::int64_t open_interval_us(std::int64_t now_us) const noexcept;

  bool started_ = false;
  bool finalized_ = false;
  bool satisfied_ = true;
  std::int64_t last_us_ = 0;
  std::int64_t active_us_ = 0;
  std::int64_t satisfied_us_ = 0;
};

}  // namespace bate::obs
