#include "obs/availability.h"

namespace bate::obs {

void AvailabilityMeter::start(std::int64_t t_us, bool satisfied) noexcept {
  if (started_) return;
  started_ = true;
  satisfied_ = satisfied;
  last_us_ = t_us;
}

std::int64_t AvailabilityMeter::open_interval_us(
    std::int64_t now_us) const noexcept {
  if (!started_ || finalized_) return 0;
  return now_us > last_us_ ? now_us - last_us_ : 0;
}

void AvailabilityMeter::set_satisfied(std::int64_t t_us,
                                      bool satisfied) noexcept {
  if (!started_ || finalized_) return;
  const std::int64_t dt = open_interval_us(t_us);
  active_us_ += dt;
  if (satisfied_) satisfied_us_ += dt;
  if (t_us > last_us_) last_us_ = t_us;
  satisfied_ = satisfied;
}

void AvailabilityMeter::finalize(std::int64_t t_us) noexcept {
  if (!started_ || finalized_) return;
  set_satisfied(t_us, satisfied_);
  finalized_ = true;
}

std::int64_t AvailabilityMeter::active_us_at(
    std::int64_t now_us) const noexcept {
  return active_us_ + open_interval_us(now_us);
}

std::int64_t AvailabilityMeter::satisfied_us_at(
    std::int64_t now_us) const noexcept {
  return satisfied_us_ + (satisfied_ ? open_interval_us(now_us) : 0);
}

double AvailabilityMeter::budget_burn_at(double beta,
                                         std::int64_t now_us) const noexcept {
  const std::int64_t active = active_us_at(now_us);
  if (active == 0) return 0.0;
  const double burned =
      static_cast<double>(active - satisfied_us_at(now_us));
  const double allowed = (1.0 - beta) * static_cast<double>(active);
  if (allowed <= 0.0) return burned > 0.0 ? kInfiniteBurn : 0.0;
  return burned / allowed;
}

double AvailabilityMeter::burn_per_hour_at(double beta,
                                           std::int64_t now_us) const noexcept {
  const std::int64_t active = active_us_at(now_us);
  if (active == 0) return 0.0;
  const double hours = static_cast<double>(active) / 3.6e9;
  if (hours <= 0.0) return 0.0;
  const double burn = budget_burn_at(beta, now_us);
  if (burn >= kInfiniteBurn) return kInfiniteBurn;
  return burn / hours;
}

}  // namespace bate::obs
