// Branch & bound for the 0-1 MILPs of the paper: optimal admission control
// (Appendix A) and optimal failure recovery (Sec 3.4). LP relaxations are
// solved with the simplex of simplex.h; node selection is best-bound.
//
// Before the tree search starts, a root preparation pass (DESIGN.md Sec 5.3)
// tightens the relaxation with Gomory mixed-integer and knapsack cover cuts
// (solver/cuts.h) in a bounded cut-and-resolve loop — each round's accepted
// rows are appended to the search model, so every child inherits them — and
// initializes pseudo-costs by strong-branching the most fractional root
// candidates. Branching is then pseudo-cost driven (product score of the
// estimated per-unit bound degradations, refined along each node's ancestor
// chain from observed child bounds); most-fractional remains the fallback
// when pseudo-costs are disabled. The whole pass is skipped in
// `lp.reference_mode`, which stays the plain-relaxation oracle.
//
// Each open node holds one bound delta against its parent (the full bound
// set of a node is its chain to the root) and a shared handle on the
// parent's final simplex basis, so child relaxations warm-start and skip
// Phase 1 on almost every node. With `pool` set, open nodes are explored by
// a parallel best-bound tree search whose incumbent objective is
// deterministic for a fixed seed (DESIGN.md "Solver performance").
#pragma once

#include <cstdint>

#include "solver/model.h"
#include "solver/simplex.h"

namespace bate {

class ThreadPool;

struct BranchBoundOptions {
  int node_limit = 200000;
  /// Wall-clock budget; <= 0 means unlimited. When exhausted the incumbent
  /// (if any) is returned with status kIterationLimit.
  double time_limit_seconds = 0.0;
  double integer_tol = 1e-6;
  /// Relative optimality gap at which the search stops.
  double gap_tol = 1e-9;
  /// Stop as soon as any integer-feasible solution is found (for
  /// feasibility-style MILPs where optimality is irrelevant). With a pool,
  /// *which* feasible point is found first is scheduling-dependent; only
  /// run-to-optimality searches have a deterministic incumbent objective.
  bool stop_at_first_incumbent = false;
  /// Children warm-start from the parent relaxation's final basis. Off
  /// reproduces the PR 2 cold-per-node behaviour (benches, debugging);
  /// either way the incumbent is the same, only the work differs.
  bool warm_start_nodes = true;
  /// Seeds the position-derived node tie-break keys (equal-bound nodes are
  /// popped in seeded key order, never in insertion/scheduling order).
  std::uint64_t tie_break_seed = 0;
  /// Parallel tree search across this pool's workers plus the caller; null
  /// keeps the serial search. A call from inside a pool worker falls back
  /// to serial (nested parallel_for could deadlock — see thread_pool.h).
  ThreadPool* pool = nullptr;
  /// Models with fewer rows than this stay serial even with `pool` set: on
  /// small trees the queue lock and per-worker model copies cost more than
  /// the parallelism returns (the recovery MILPs' parallel_speedup_vs_cold
  /// sat below 1.0 before this cutoff). Set to 0 to force the parallel
  /// driver regardless of size (tests pinning serial/parallel equivalence).
  int parallel_min_rows = 64;
  /// Root cut-and-resolve loop (Gomory + cover, solver/cuts.h). Ignored in
  /// reference mode.
  bool root_cuts = true;
  int max_cut_rounds = 8;   // separation rounds at the root
  int max_cuts = 64;        // total cut rows accepted across all rounds
  /// Tail-off guard: stop the cut loop when a round improves the root
  /// bound by less than this (relative to max(1, |bound|)). Rounds that
  /// barely move the bound still pay for their rows in EVERY node re-solve
  /// below the root, so cutting deep into the tail is a net loss (the
  /// recovery MILPs regressed 2.5x in warm latency before this guard).
  double min_cut_improvement = 1e-4;
  /// Structural gate: skip the cut loop entirely when integer columns make
  /// up less than this fraction of the (presolved) model. GMI cuts derived
  /// from rows dominated by continuous columns carry almost no rounding
  /// strength, and cover cuts need all-binary rows; on the recovery MILPs
  /// (~0.32 integer share) the cut loop moved the root bound but grew the
  /// tree and taxed every re-solve, while the admission MILPs (~0.78) are
  /// where the order-of-magnitude node drops come from (EXPERIMENTS.md).
  double min_cut_integer_share = 0.5;
  /// Pseudo-cost branching, initialized by strong branching at the root.
  /// Off falls back to most-fractional selection. Ignored in reference mode.
  bool pseudo_cost_branching = true;
  /// Fractional root candidates probed by strong branching (two warm child
  /// LPs each) to seed the pseudo-cost tables.
  int strong_branch_candidates = 4;
  SimplexOptions lp;
};

/// Search counters, for tests and benches.
struct BranchBoundStats {
  long nodes_created = 0;   // root + every child pushed
  long nodes_solved = 0;    // relaxations actually solved
  /// Bound deltas allocated across the run — exactly one per non-root node.
  /// tests/branch_bound pins bound_deltas_allocated == nodes_created - 1 so
  /// nodes can never silently grow back to full bound-vector copies.
  long bound_deltas_allocated = 0;
  long warm_started_nodes = 0;  // relaxations that accepted a warm basis
  int max_depth = 0;
  /// Observability counters (obs registry: bate_bnb_*): popped nodes
  /// discarded by the incumbent bound, accepted incumbent improvements,
  /// and the deepest open-queue depth seen during the search.
  long nodes_pruned = 0;
  long incumbent_updates = 0;
  long open_peak = 0;
  /// Root preparation counters: accepted cut rows by family, separation
  /// rounds that added at least one row, and LP solves spent probing strong
  /// branching candidates.
  long gomory_cuts = 0;
  long cover_cuts = 0;
  long cut_rounds = 0;
  long strong_branch_solves = 0;
  /// Nodes whose branching variable was chosen by pseudo-cost score (the
  /// remainder used the most-fractional fallback).
  long pseudo_cost_branches = 0;
  /// Whether the parallel driver actually ran (pool set, not nested, and
  /// the model cleared `parallel_min_rows`).
  bool used_parallel = false;
  /// Bound accounting: `proven` is true when the search closed the tree
  /// (every node explored or pruned — the verdict is exact, not budget
  /// limited). `best_bound` is the strongest proven bound on the optimum in
  /// the model's own sense; `mip_gap` is the relative incumbent/bound gap
  /// (0 when proven, 1 when no incumbent was found).
  bool proven = false;
  double best_bound = 0.0;
  double mip_gap = 1.0;
};

/// Solves the MILP. Returns kIterationLimit when the node budget is
/// exhausted before proving optimality (the incumbent, if any, is returned
/// in that case with its objective).
///
/// `root_warm` (optional) warm-starts the root relaxation — e.g. from a
/// previous solve of the same model's relaxation — and receives the root's
/// final basis back. `stats`, when non-null, receives search counters.
Solution solve_milp(const Model& model, const BranchBoundOptions& options = {},
                    WarmStart* root_warm = nullptr,
                    BranchBoundStats* stats = nullptr);

}  // namespace bate
