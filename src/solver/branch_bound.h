// Branch & bound for the 0-1 MILPs of the paper: optimal admission control
// (Appendix A) and optimal failure recovery (Sec 3.4). LP relaxations are
// solved with the simplex of simplex.h; branching is most-fractional with
// best-bound node selection.
#pragma once

#include "solver/model.h"
#include "solver/simplex.h"

namespace bate {

struct BranchBoundOptions {
  int node_limit = 200000;
  /// Wall-clock budget; <= 0 means unlimited. When exhausted the incumbent
  /// (if any) is returned with status kIterationLimit.
  double time_limit_seconds = 0.0;
  double integer_tol = 1e-6;
  /// Relative optimality gap at which the search stops.
  double gap_tol = 1e-9;
  /// Stop as soon as any integer-feasible solution is found (for
  /// feasibility-style MILPs where optimality is irrelevant).
  bool stop_at_first_incumbent = false;
  SimplexOptions lp;
};

/// Solves the MILP. Returns kIterationLimit when the node budget is
/// exhausted before proving optimality (the incumbent, if any, is returned
/// in that case with its objective).
Solution solve_milp(const Model& model, const BranchBoundOptions& options = {});

}  // namespace bate
