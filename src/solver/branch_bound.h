// Branch & bound for the 0-1 MILPs of the paper: optimal admission control
// (Appendix A) and optimal failure recovery (Sec 3.4). LP relaxations are
// solved with the simplex of simplex.h; branching is most-fractional with
// best-bound node selection.
//
// Each open node holds one bound delta against its parent (the full bound
// set of a node is its chain to the root) and a shared handle on the
// parent's final simplex basis, so child relaxations warm-start and skip
// Phase 1 on almost every node. With `pool` set, open nodes are explored by
// a parallel best-bound tree search whose incumbent objective is
// deterministic for a fixed seed (DESIGN.md "Solver performance").
#pragma once

#include <cstdint>

#include "solver/model.h"
#include "solver/simplex.h"

namespace bate {

class ThreadPool;

struct BranchBoundOptions {
  int node_limit = 200000;
  /// Wall-clock budget; <= 0 means unlimited. When exhausted the incumbent
  /// (if any) is returned with status kIterationLimit.
  double time_limit_seconds = 0.0;
  double integer_tol = 1e-6;
  /// Relative optimality gap at which the search stops.
  double gap_tol = 1e-9;
  /// Stop as soon as any integer-feasible solution is found (for
  /// feasibility-style MILPs where optimality is irrelevant). With a pool,
  /// *which* feasible point is found first is scheduling-dependent; only
  /// run-to-optimality searches have a deterministic incumbent objective.
  bool stop_at_first_incumbent = false;
  /// Children warm-start from the parent relaxation's final basis. Off
  /// reproduces the PR 2 cold-per-node behaviour (benches, debugging);
  /// either way the incumbent is the same, only the work differs.
  bool warm_start_nodes = true;
  /// Seeds the position-derived node tie-break keys (equal-bound nodes are
  /// popped in seeded key order, never in insertion/scheduling order).
  std::uint64_t tie_break_seed = 0;
  /// Parallel tree search across this pool's workers plus the caller; null
  /// keeps the serial search. A call from inside a pool worker falls back
  /// to serial (nested parallel_for could deadlock — see thread_pool.h).
  ThreadPool* pool = nullptr;
  SimplexOptions lp;
};

/// Search counters, for tests and benches.
struct BranchBoundStats {
  long nodes_created = 0;   // root + every child pushed
  long nodes_solved = 0;    // relaxations actually solved
  /// Bound deltas allocated across the run — exactly one per non-root node.
  /// tests/branch_bound pins bound_deltas_allocated == nodes_created - 1 so
  /// nodes can never silently grow back to full bound-vector copies.
  long bound_deltas_allocated = 0;
  long warm_started_nodes = 0;  // relaxations that accepted a warm basis
  int max_depth = 0;
  /// Observability counters (obs registry: bate_bnb_*): popped nodes
  /// discarded by the incumbent bound, accepted incumbent improvements,
  /// and the deepest open-queue depth seen during the search.
  long nodes_pruned = 0;
  long incumbent_updates = 0;
  long open_peak = 0;
};

/// Solves the MILP. Returns kIterationLimit when the node budget is
/// exhausted before proving optimality (the incumbent, if any, is returned
/// in that case with its objective).
///
/// `root_warm` (optional) warm-starts the root relaxation — e.g. from a
/// previous solve of the same model's relaxation — and receives the root's
/// final basis back. `stats`, when non-null, receives search counters.
Solution solve_milp(const Model& model, const BranchBoundOptions& options = {},
                    WarmStart* root_warm = nullptr,
                    BranchBoundStats* stats = nullptr);

}  // namespace bate
