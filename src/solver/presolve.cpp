#include "solver/presolve.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace bate {

namespace {

/// The simplex declares Phase-1 infeasibility above an absolute residual of
/// 1e-6; presolve only declares infeasibility beyond the same margin
/// (rhs-scaled upward, never downward) so the two paths cannot disagree on
/// borderline instances: any violation presolve rejects is at least as large
/// as the minimal Phase-1 residual the simplex would reject too.
constexpr double kFeasEps = 1e-6;

double feas_margin(double rhs) { return kFeasEps * (1.0 + std::abs(rhs)); }

/// Drop-a-row redundancy margin: much tighter than the feasibility margin —
/// a row is only removed when every point of the bound box satisfies it.
double red_margin(double rhs) { return 1e-9 * (1.0 + std::abs(rhs)); }

/// Minimum relative improvement before a tightened bound is recorded.
bool improves_upper(double nb, double hi) {
  if (!std::isfinite(hi)) return std::isfinite(nb);
  return nb < hi - 1e-7 * (1.0 + std::abs(hi));
}
bool improves_lower(double nb, double lo) {
  return nb > lo + 1e-7 * (1.0 + std::abs(lo));
}

/// Activity bound: finite part plus the count of infinite contributions.
struct ActBound {
  double finite = 0.0;
  int inf = 0;
};

}  // namespace

/// The working state of one presolve run. Rows and columns are never
/// compacted mid-run; `row_alive_` / `var_alive_` mask them out and the
/// final `finalize()` builds the compacted reduced model plus the scaling.
///
/// Storage is two flat CSR arenas built once in the constructor: a row
/// arena (`tv_`/`tc_`, segment [row_start_[i], row_start_[i]+row_len_[i]))
/// whose segments shrink in place when a fixed variable is substituted out
/// (swap-with-last, order within a row is irrelevant), and a column arena
/// (`cr_`/`cc_`) listing each column's (row, coefficient) incidences. The
/// column arena is never edited: coefficients of surviving terms never
/// change (substitution only deletes the fixed variable's own term), so an
/// entry is valid exactly while its row is alive and its variable is alive.
///
/// Passes after the first are worklist-driven: a reduction marks the rows /
/// columns whose derived facts it may have changed (bound change -> the
/// column and every row it appears in; substitution -> every row of the
/// column; row drop -> every column of the row), and the next pass visits
/// only the marked set. A fact derivable from unmarked state was already
/// derived by the full first pass, so the fixed point is the same modulo
/// dominated-row pairs whose dominator shrank (deliberately not re-chased;
/// dropping fewer rows is always sound).
class Presolver {
 public:
  Presolver(const Model& model, const PresolveOptions& opt)
      : model_(model), opt_(opt) {
    n_ = model.variable_count();
    m_ = model.constraint_count();
    maximize_ = model.sense() == Sense::kMaximize;
    lo_.resize(static_cast<std::size_t>(n_));
    hi_.resize(static_cast<std::size_t>(n_));
    cmin_.resize(static_cast<std::size_t>(n_));
    integer_.assign(static_cast<std::size_t>(n_), 0);
    var_alive_.assign(static_cast<std::size_t>(n_), 1);
    for (int j = 0; j < n_; ++j) {
      const Variable& v = model.variable(j);
      lo_[idx(j)] = v.lower;
      hi_[idx(j)] = v.upper;
      cmin_[idx(j)] = maximize_ ? -v.objective : v.objective;
      integer_[idx(j)] = v.integer ? 1 : 0;
      if (opt.for_milp && v.integer) {
        lo_[idx(j)] = std::ceil(v.lower - 1e-6);
        hi_[idx(j)] = std::isfinite(v.upper) ? std::floor(v.upper + 1e-6)
                                             : v.upper;
        if (lo_[idx(j)] > hi_[idx(j)]) infeasible_ = true;
      }
    }
    rel_.resize(static_cast<std::size_t>(m_));
    rhs_.resize(static_cast<std::size_t>(m_));
    row_alive_.assign(static_cast<std::size_t>(m_), 1);
    row_start_.resize(static_cast<std::size_t>(m_) + 1);
    row_len_.resize(static_cast<std::size_t>(m_));
    col_count_.assign(static_cast<std::size_t>(n_), 0);
    std::size_t nnz = 0;
    for (int i = 0; i < m_; ++i) nnz += model.constraint(i).terms.size();
    tv_.resize(nnz);
    tc_.resize(nnz);
    int pos = 0;
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model.constraint(i);
      rel_[idx(i)] = c.relation;
      rhs_[idx(i)] = c.rhs;
      row_start_[idx(i)] = pos;
      row_len_[idx(i)] = static_cast<int>(c.terms.size());
      for (const Term& t : c.terms) {
        tv_[idx(pos)] = t.var;
        tc_[idx(pos)] = t.coef;
        ++col_count_[idx(t.var)];
        ++pos;
      }
    }
    row_start_[idx(m_)] = pos;
    col_start_.resize(static_cast<std::size_t>(n_) + 1);
    col_start_[0] = 0;
    for (int j = 0; j < n_; ++j) {
      col_start_[idx(j) + 1] = col_start_[idx(j)] + col_count_[idx(j)];
    }
    cr_.resize(nnz);
    cc_.resize(nnz);
    std::vector<int> fill(col_start_.begin(), col_start_.end() - 1);
    for (int i = 0; i < m_; ++i) {
      const int b = row_start_[idx(i)], e = b + row_len_[idx(i)];
      for (int k = b; k < e; ++k) {
        const int p = fill[idx(tv_[idx(k)])]++;
        cr_[idx(p)] = i;
        cc_[idx(p)] = tc_[idx(k)];
      }
    }
    post_.orig_vars_ = n_;
    post_.orig_rows_ = m_;
    post_.milp_ = opt.for_milp;
    post_.var_map_.assign(static_cast<std::size_t>(n_), -1);
    post_.row_map_.assign(static_cast<std::size_t>(m_), -1);
    post_.fixed_value_.assign(static_cast<std::size_t>(n_), 0.0);
    post_.fixed_status_.assign(static_cast<std::size_t>(n_),
                               VarStatus::kAtLower);
    var_stamp_.assign(static_cast<std::size_t>(n_), 0);
    var_coef_.resize(static_cast<std::size_t>(n_));
    sub_stamp_.assign(static_cast<std::size_t>(n_), 0);
    row_stamp_.assign(static_cast<std::size_t>(m_), 0);
    row_dirty_.assign(static_cast<std::size_t>(m_), 0);
    col_dirty_.assign(static_cast<std::size_t>(n_), 0);
  }

  /// Runs the passes; false means proven infeasible.
  bool run() {
    if (infeasible_) return false;
    std::vector<int> rows_now, cols_now;
    for (int pass = 0; pass < opt_.max_passes; ++pass) {
      const bool full = pass == 0;
      if (!full) {
        if (next_rows_.empty() && next_cols_.empty()) break;
        rows_now.swap(next_rows_);
        cols_now.swap(next_cols_);
        next_rows_.clear();
        next_cols_.clear();
        for (int i : rows_now) row_dirty_[idx(i)] = 0;
        for (int j : cols_now) col_dirty_[idx(j)] = 0;
      }
      ++stats_.passes;
      row_scan(full, rows_now);
      if (infeasible_) return false;
      fix_fixed_vars(full, cols_now);
      if (infeasible_) return false;
      dominated_rows(full, rows_now);
      dual_fix(full, cols_now);
      if (infeasible_) return false;
      free_slack_cols(full, cols_now);
    }
    return true;
  }

  void finalize(PresolveResult& out);

  const PresolveStats& stats() const { return stats_; }

 private:
  static std::size_t idx(int i) { return static_cast<std::size_t>(i); }

  int row_begin(int i) const { return row_start_[idx(i)]; }
  int row_end(int i) const { return row_start_[idx(i)] + row_len_[idx(i)]; }

  void mark_row(int i) {
    if (row_alive_[idx(i)] && !row_dirty_[idx(i)]) {
      row_dirty_[idx(i)] = 1;
      next_rows_.push_back(i);
    }
  }
  void mark_col(int j) {
    if (var_alive_[idx(j)] && !col_dirty_[idx(j)]) {
      col_dirty_[idx(j)] = 1;
      next_cols_.push_back(j);
    }
  }
  /// A bound of column j moved: every fact derived from j's bounds (its
  /// rows' activities and redundancy, its own fixing / dual-fixing state)
  /// must be re-derived.
  void bound_changed(int j) {
    mark_col(j);
    for (int k = col_start_[idx(j)]; k < col_start_[idx(j) + 1]; ++k) {
      mark_row(cr_[idx(k)]);
    }
  }

  /// Min and max activity of a row over the current bounds, in one sweep.
  void activities(int i, ActBound& mn, ActBound& mx) const {
    for (int k = row_begin(i), e = row_end(i); k < e; ++k) {
      const double a = tc_[idx(k)];
      const int j = tv_[idx(k)];
      if (a > 0.0) {
        mn.finite += a * lo_[idx(j)];  // lower bounds are finite
        if (std::isfinite(hi_[idx(j)])) {
          mx.finite += a * hi_[idx(j)];
        } else {
          ++mx.inf;
        }
      } else {
        mx.finite += a * lo_[idx(j)];
        if (std::isfinite(hi_[idx(j)])) {
          mn.finite += a * hi_[idx(j)];
        } else {
          ++mn.inf;
        }
      }
    }
  }

  void drop_row(int i, bool record) {
    for (int k = row_begin(i), e = row_end(i); k < e; ++k) {
      --col_count_[idx(tv_[idx(k)])];
      mark_col(tv_[idx(k)]);
    }
    row_alive_[idx(i)] = 0;
    ++stats_.rows_removed;
    if (record) {
      Postsolve::Action a;
      a.kind = Postsolve::Act::kDropRow;
      a.row = i;
      post_.actions_.push_back(a);
    }
  }

  /// Deletes variable j's term from row i's segment (swap-with-last).
  void remove_term(int i, int j) {
    const int b = row_begin(i);
    int e = row_end(i);
    for (int k = b; k < e; ++k) {
      if (tv_[idx(k)] == j) {
        --e;
        tv_[idx(k)] = tv_[idx(e)];
        tc_[idx(k)] = tc_[idx(e)];
        --row_len_[idx(i)];
        return;
      }
    }
  }

  /// Substitutes variable j out at value v (clamped into its bounds) and
  /// records the action. `kind` distinguishes plain fixing (bounds met /
  /// dual fixing; dual sign-safe without a transfer) from an equality
  /// singleton row fix (postsolve transfers the reduced cost onto `row`).
  void fix_var(int j, double v, Postsolve::Act kind, int row, double coef) {
    v = std::min(std::max(v, lo_[idx(j)]), hi_[idx(j)]);
    if (opt_.for_milp && integer_[idx(j)] &&
        std::abs(v - std::round(v)) > 1e-6) {
      infeasible_ = true;
      return;
    }
    for (int k = col_start_[idx(j)]; k < col_start_[idx(j) + 1]; ++k) {
      const int i = cr_[idx(k)];
      if (!row_alive_[idx(i)]) continue;
      rhs_[idx(i)] -= cc_[idx(k)] * v;
      remove_term(i, j);
      mark_row(i);
    }
    var_alive_[idx(j)] = 0;
    col_count_[idx(j)] = 0;
    post_.fixed_value_[idx(j)] = v;
    post_.fixed_status_[idx(j)] =
        (std::isfinite(hi_[idx(j)]) && hi_[idx(j)] - v <= v - lo_[idx(j)])
            ? VarStatus::kAtUpper
            : VarStatus::kAtLower;
    post_.obj_offset_ += model_.variable(j).objective * v;
    Postsolve::Action a;
    a.kind = kind;
    a.var = j;
    a.row = row;
    a.coef = coef;
    a.new_bound = v;
    post_.actions_.push_back(a);
    ++stats_.cols_removed;
  }

  /// Bound tightening from constraint propagation; records the generating
  /// row so postsolve can transfer the bound's reduced cost onto it.
  void try_tighten(int j, bool upper, double nb, int row, double coef) {
    if (!opt_.tighten_bounds) return;
    // Lower lifts move the simplex cold-start point (x = lower); they are
    // only worth it under branch & bound, where bound boxes prune nodes.
    if (!upper && !opt_.tighten_lower && !opt_.for_milp) return;
    if (!std::isfinite(nb) || std::abs(nb) > 1e12) return;
    if (opt_.for_milp && integer_[idx(j)]) {
      nb = upper ? std::floor(nb + 1e-6) : std::ceil(nb - 1e-6);
    }
    Postsolve::Action a;
    a.kind = Postsolve::Act::kTighten;
    a.var = j;
    a.row = row;
    a.coef = coef;
    a.at_upper = upper;
    if (upper) {
      if (!improves_upper(nb, hi_[idx(j)])) return;
      if (nb < lo_[idx(j)]) return;  // would cross: leave to the row checks
      a.new_bound = nb;
      a.old_bound = hi_[idx(j)];
      hi_[idx(j)] = nb;
    } else {
      if (!improves_lower(nb, lo_[idx(j)])) return;
      if (std::isfinite(hi_[idx(j)]) && nb > hi_[idx(j)]) return;
      a.new_bound = nb;
      a.old_bound = lo_[idx(j)];
      lo_[idx(j)] = nb;
    }
    // MILP mode never recovers duals, so the (rounded, hence no longer
    // row-binding) bound must not be transfer-eligible: drop the row link.
    if (opt_.for_milp) a.row = -1;
    post_.actions_.push_back(a);
    ++stats_.bounds_tightened;
    ++stats_.tightens;
    bound_changed(j);
  }

  void singleton_row(int i) {
    const int j = tv_[idx(row_begin(i))];
    const double a = tc_[idx(row_begin(i))];
    if (std::abs(a) < 1e-9) return;  // numerically void; leave to simplex
    const double margin_v = feas_margin(rhs_[idx(i)]) / std::abs(a);
    const double v = rhs_[idx(i)] / a;
    if (rel_[idx(i)] == Relation::kEqual) {
      if (v < lo_[idx(j)] - margin_v || v > hi_[idx(j)] + margin_v) {
        infeasible_ = true;
        return;
      }
      if (v < lo_[idx(j)] || v > hi_[idx(j)]) return;  // borderline: keep
      if (opt_.for_milp && integer_[idx(j)] &&
          std::abs(v - std::round(v)) > 1e-6) {
        infeasible_ = true;
        return;
      }
      drop_row(i, false);
      fix_var(j, v, Postsolve::Act::kFixedByRow, i, a);
      return;
    }
    const bool upper = (rel_[idx(i)] == Relation::kLessEqual) == (a > 0.0);
    double nb = v;
    if (upper) {
      if (nb < lo_[idx(j)] - margin_v) {
        infeasible_ = true;
        return;
      }
      if (opt_.for_milp && integer_[idx(j)]) {
        nb = std::floor(nb + 1e-6);
        if (nb < lo_[idx(j)] - 1e-6) {
          infeasible_ = true;  // no integer left in [lo, rhs/a]
          return;
        }
      }
      if (nb < lo_[idx(j)]) return;  // borderline: keep the row
      if (!improves_upper(nb, hi_[idx(j)])) {
        drop_row(i, true);  // implied by the existing bound
        return;
      }
      Postsolve::Action act;
      act.kind = Postsolve::Act::kSingletonRow;
      act.at_upper = true;
      act.var = j;
      act.row = opt_.for_milp ? -1 : i;
      act.coef = a;
      act.new_bound = nb;
      act.old_bound = hi_[idx(j)];
      hi_[idx(j)] = nb;
      post_.actions_.push_back(act);
      ++stats_.bounds_tightened;
      drop_row(i, false);
      bound_changed(j);
    } else {
      if (std::isfinite(hi_[idx(j)]) && nb > hi_[idx(j)] + margin_v) {
        infeasible_ = true;
        return;
      }
      if (opt_.for_milp && integer_[idx(j)]) {
        nb = std::ceil(nb - 1e-6);
        if (std::isfinite(hi_[idx(j)]) && nb > hi_[idx(j)] + 1e-6) {
          infeasible_ = true;
          return;
        }
      }
      if (std::isfinite(hi_[idx(j)]) && nb > hi_[idx(j)]) return;
      if (!improves_lower(nb, lo_[idx(j)])) {
        drop_row(i, true);
        return;
      }
      Postsolve::Action act;
      act.kind = Postsolve::Act::kSingletonRow;
      act.at_upper = false;
      act.var = j;
      act.row = opt_.for_milp ? -1 : i;
      act.coef = a;
      act.new_bound = nb;
      act.old_bound = lo_[idx(j)];
      lo_[idx(j)] = nb;
      post_.actions_.push_back(act);
      ++stats_.bounds_tightened;
      drop_row(i, false);
      bound_changed(j);
    }
  }

  void propagate(int i, const ActBound& mn, const ActBound& mx) {
    const double rhs = rhs_[idx(i)];
    const Relation rel = rel_[idx(i)];
    // try_tighten mutates bounds mid-row, which is fine (the tightened
    // bound only makes later derivations in this row weaker or equally
    // valid) — the segment itself is not edited here.
    for (int k = row_begin(i), e = row_end(i); k < e; ++k) {
      const int j = tv_[idx(k)];
      const double a = tc_[idx(k)];
      if (std::abs(a) < 1e-7) continue;
      if (rel != Relation::kGreaterEqual) {  // <= side (also = rows)
        if (a > 0.0) {
          if (mn.inf == 0) {
            const double rest = mn.finite - a * lo_[idx(j)];
            try_tighten(j, /*upper=*/true, (rhs - rest) / a, i, a);
          }
        } else {
          const bool j_inf = !std::isfinite(hi_[idx(j)]);
          if (mn.inf == (j_inf ? 1 : 0)) {
            const double rest =
                mn.finite - (j_inf ? 0.0 : a * hi_[idx(j)]);
            try_tighten(j, /*upper=*/false, (rhs - rest) / a, i, a);
          }
        }
      }
      if (rel != Relation::kLessEqual) {  // >= side (also = rows)
        if (a > 0.0) {
          const bool j_inf = !std::isfinite(hi_[idx(j)]);
          if (mx.inf == (j_inf ? 1 : 0)) {
            const double rest =
                mx.finite - (j_inf ? 0.0 : a * hi_[idx(j)]);
            try_tighten(j, /*upper=*/false, (rhs - rest) / a, i, a);
          }
        } else {
          if (mx.inf == 0) {
            const double rest = mx.finite - a * lo_[idx(j)];
            try_tighten(j, /*upper=*/true, (rhs - rest) / a, i, a);
          }
        }
      }
    }
  }

  void scan_row(int i) {
    const double rhs = rhs_[idx(i)];
    if (row_len_[idx(i)] == 0) {
      const double m = feas_margin(rhs);
      switch (rel_[idx(i)]) {
        case Relation::kLessEqual:
          if (0.0 > rhs + m) infeasible_ = true;
          break;
        case Relation::kGreaterEqual:
          if (0.0 < rhs - m) infeasible_ = true;
          break;
        case Relation::kEqual:
          if (std::abs(rhs) > m) infeasible_ = true;
          break;
      }
      if (!infeasible_) {
        drop_row(i, true);
        ++stats_.redundant_rows;
      }
      return;
    }
    if (row_len_[idx(i)] == 1) {
      const int dropped_before = stats_.rows_removed;
      singleton_row(i);
      if (stats_.rows_removed != dropped_before) ++stats_.singleton_rows;
      return;
    }
    ActBound mn, mx;
    activities(i, mn, mx);
    const double fm = feas_margin(rhs);
    const double rm = red_margin(rhs);
    bool dropped = false;
    switch (rel_[idx(i)]) {
      case Relation::kLessEqual:
        if (mn.inf == 0 && mn.finite > rhs + fm) {
          infeasible_ = true;
        } else if (mx.inf == 0 && mx.finite <= rhs + rm) {
          drop_row(i, true);
          ++stats_.redundant_rows;
          dropped = true;
        }
        break;
      case Relation::kGreaterEqual:
        if (mx.inf == 0 && mx.finite < rhs - fm) {
          infeasible_ = true;
        } else if (mn.inf == 0 && mn.finite >= rhs - rm) {
          drop_row(i, true);
          ++stats_.redundant_rows;
          dropped = true;
        }
        break;
      case Relation::kEqual:
        if ((mn.inf == 0 && mn.finite > rhs + fm) ||
            (mx.inf == 0 && mx.finite < rhs - fm)) {
          infeasible_ = true;
        } else if (mn.inf == 0 && mx.inf == 0 && mx.finite <= rhs + rm &&
                   mn.finite >= rhs - rm) {
          drop_row(i, true);
          ++stats_.redundant_rows;
          dropped = true;
        }
        break;
    }
    if (!infeasible_ && !dropped) propagate(i, mn, mx);
  }

  void row_scan(bool full, const std::vector<int>& list) {
    const int count = full ? m_ : static_cast<int>(list.size());
    for (int k = 0; k < count && !infeasible_; ++k) {
      const int i = full ? k : list[idx(k)];
      if (row_alive_[idx(i)]) scan_row(i);
    }
  }

  void fix_fixed_vars(bool full, const std::vector<int>& list) {
    const int count = full ? n_ : static_cast<int>(list.size());
    for (int k = 0; k < count && !infeasible_; ++k) {
      const int j = full ? k : list[idx(k)];
      if (!var_alive_[idx(j)]) continue;
      if (hi_[idx(j)] - lo_[idx(j)] <= 0.0) {
        fix_var(j, lo_[idx(j)], Postsolve::Act::kFixVar, -1, 0.0);
        ++stats_.fixed_vars;
      }
    }
  }

  /// Row r is dropped when another active row r1 with support(r1) subset of
  /// support(r) and a consistent coefficient ratio lambda bounds r's
  /// activity on the binding side, together with the bound extremes of r's
  /// extra variables. The dropped row gets dual 0 in postsolve: it is
  /// implied by r1 plus the bounds at drop time, both of which the final
  /// solution satisfies.
  void check_dominated(int r) {
    if (!row_alive_[idx(r)] || rel_[idx(r)] == Relation::kEqual) return;
    const int rb = row_begin(r), re = row_end(r);
    if (re - rb < 2) return;
    const bool r_le = rel_[idx(r)] == Relation::kLessEqual;
    ++var_gen_;
    for (int k = rb; k < re; ++k) {
      var_stamp_[idx(tv_[idx(k)])] = var_gen_;
      var_coef_[idx(tv_[idx(k)])] = tc_[idx(k)];
    }
    ++row_gen_;
    row_stamp_[idx(r)] = row_gen_;  // never dominate a row with itself
    // Candidate dominators are searched through the two sparsest columns
    // of r only: a dominator's support lies inside r's, so it appears in
    // some column of r, and sparse columns have the best hit rate per
    // entry visited. (One column is not enough: a column unique to r -
    // e.g. a pattern variable appearing in nothing but r and one other row
    // - is the sparsest yet can never contain a dominator.) Dominators
    // avoiding both probed columns are missed - an acceptable trade
    // (fewer drops is always sound) that makes the scan O(two columns)
    // instead of O(sum of all columns).
    int s0 = tv_[idx(rb)], s1 = -1;
    for (int k = rb + 1; k < re; ++k) {
      const int v = tv_[idx(k)];
      if (col_count_[idx(v)] < col_count_[idx(s0)]) {
        s1 = s0;
        s0 = v;
      } else if (s1 < 0 || col_count_[idx(v)] < col_count_[idx(s1)]) {
        s1 = v;
      }
    }
    int budget = 64;
    for (const int seed : {s0, s1}) {
      if (seed < 0 || budget <= 0) continue;
      for (int p = col_start_[idx(seed)]; p < col_start_[idx(seed) + 1];
           ++p) {
        if (--budget <= 0) break;
        const int r1 = cr_[idx(p)];
        if (!row_alive_[idx(r1)] || row_stamp_[idx(r1)] == row_gen_) {
          continue;
        }
        row_stamp_[idx(r1)] = row_gen_;
        const int b1 = row_begin(r1), e1 = row_end(r1);
        if (b1 == e1 || e1 - b1 > re - rb) continue;
        if (var_stamp_[idx(tv_[idx(b1)])] != var_gen_) continue;
        const double lambda = var_coef_[idx(tv_[idx(b1)])] / tc_[idx(b1)];
        if (std::abs(lambda) < 1e-12) continue;
        const Relation rel1 = rel_[idx(r1)];
        const bool admissible =
            r_le ? ((lambda > 0.0 && rel1 != Relation::kGreaterEqual) ||
                    (lambda < 0.0 && rel1 != Relation::kLessEqual))
                 : ((lambda > 0.0 && rel1 != Relation::kLessEqual) ||
                    (lambda < 0.0 && rel1 != Relation::kGreaterEqual));
        if (!admissible) continue;
        bool ratio_ok = true;
        ++sub_gen_;
        for (int q = b1; q < e1; ++q) {
          const int v1 = tv_[idx(q)];
          if (var_stamp_[idx(v1)] != var_gen_ ||
              std::abs(var_coef_[idx(v1)] - lambda * tc_[idx(q)]) >
                  1e-9 * (1.0 + std::abs(var_coef_[idx(v1)]))) {
            ratio_ok = false;
            break;
          }
          sub_stamp_[idx(v1)] = sub_gen_;
        }
        if (!ratio_ok) continue;
        // Extreme contribution of r's variables outside r1.
        double extras = 0.0;
        bool finite = true;
        for (int q = rb; q < re; ++q) {
          const int v = tv_[idx(q)];
          if (sub_stamp_[idx(v)] == sub_gen_) continue;
          const double a = tc_[idx(q)];
          const double up = hi_[idx(v)];
          if (r_le ? a > 0.0 : a < 0.0) {
            if (!std::isfinite(up)) {
              finite = false;
              break;
            }
            extras += a * up;
          } else {
            extras += a * lo_[idx(v)];
          }
        }
        if (!finite) continue;
        const double bound = lambda * rhs_[idx(r1)] + extras;
        const double rm = red_margin(rhs_[idx(r)]);
        if (r_le ? bound <= rhs_[idx(r)] + rm
                 : bound >= rhs_[idx(r)] - rm) {
          drop_row(r, true);
          ++stats_.dominated_rows;
          return;
        }
      }
    }
  }

  void dominated_rows(bool full, const std::vector<int>& list) {
    const int count = full ? m_ : static_cast<int>(list.size());
    for (int k = 0; k < count; ++k) {
      check_dominated(full ? k : list[idx(k)]);
    }
  }

  /// Dual fixing: when the objective and every active row push a variable
  /// toward the same finite bound, fix it there. Valid for MILPs too (the
  /// move to the bound is feasibility- and cost-monotone, and integer
  /// bounds are integral after the entry rounding). Empty columns are the
  /// vacuous case. Variables in equality rows are skipped.
  void dual_fix(bool full, const std::vector<int>& list) {
    const int count = full ? n_ : static_cast<int>(list.size());
    for (int k = 0; k < count && !infeasible_; ++k) {
      const int j = full ? k : list[idx(k)];
      if (!var_alive_[idx(j)]) continue;
      bool can_lo = cmin_[idx(j)] >= 0.0;
      bool can_hi = cmin_[idx(j)] <= 0.0 && std::isfinite(hi_[idx(j)]);
      if (!can_lo && !can_hi) continue;
      for (int p = col_start_[idx(j)]; p < col_start_[idx(j) + 1]; ++p) {
        const int i = cr_[idx(p)];
        if (!row_alive_[idx(i)]) continue;
        if (rel_[idx(i)] == Relation::kEqual) {
          can_lo = can_hi = false;
          break;
        }
        const double a = cc_[idx(p)];
        const bool le = rel_[idx(i)] == Relation::kLessEqual;
        if (le ? a < 0.0 : a > 0.0) can_lo = false;
        if (le ? a > 0.0 : a < 0.0) can_hi = false;
        if (!can_lo && !can_hi) break;
      }
      if (can_lo) {
        fix_var(j, lo_[idx(j)], Postsolve::Act::kFixVar, -1, 0.0);
        ++stats_.dual_fixed_vars;
      } else if (can_hi) {
        fix_var(j, hi_[idx(j)], Postsolve::Act::kFixVar, -1, 0.0);
        ++stats_.dual_fixed_vars;
      }
    }
  }

  /// A zero-cost continuous column with an infinite upper bound appearing
  /// in exactly one inequality row, oriented so that growing the variable
  /// relaxes the row, absorbs that row entirely: postsolve sets
  /// x = max(lo, (rhs - rest)/a), which satisfies the row at zero cost.
  void free_slack_cols(bool full, const std::vector<int>& list) {
    const int count = full ? n_ : static_cast<int>(list.size());
    for (int k = 0; k < count; ++k) {
      const int j = full ? k : list[idx(k)];
      if (!var_alive_[idx(j)] || col_count_[idx(j)] != 1) continue;
      if (cmin_[idx(j)] != 0.0 || std::isfinite(hi_[idx(j)])) continue;
      if (integer_[idx(j)]) continue;
      int row = -1;
      double a = 0.0;
      for (int p = col_start_[idx(j)]; p < col_start_[idx(j) + 1]; ++p) {
        if (row_alive_[idx(cr_[idx(p)])]) {
          row = cr_[idx(p)];
          a = cc_[idx(p)];
          break;
        }
      }
      if (row < 0 || rel_[idx(row)] == Relation::kEqual) continue;
      const bool absorbs = rel_[idx(row)] == Relation::kLessEqual ? a < 0.0
                                                                  : a > 0.0;
      if (!absorbs || std::abs(a) < 1e-9) continue;
      Postsolve::Action act;
      act.kind = Postsolve::Act::kFreeSlack;
      act.var = j;
      act.row = row;
      act.coef = a;
      act.lo_at_drop = lo_[idx(j)];
      post_.actions_.push_back(act);
      drop_row(row, false);
      var_alive_[idx(j)] = 0;
      col_count_[idx(j)] = 0;
      post_.fixed_value_[idx(j)] = lo_[idx(j)];  // overwritten by postsolve
      post_.fixed_status_[idx(j)] = VarStatus::kAtLower;
      ++stats_.cols_removed;
      ++stats_.free_slack_cols;
    }
  }

  const Model& model_;
  const PresolveOptions& opt_;
  int n_ = 0, m_ = 0;
  bool maximize_ = false;
  bool infeasible_ = false;
  std::vector<double> lo_, hi_, cmin_;
  std::vector<char> integer_, var_alive_, row_alive_;
  // Row arena (segments shrink in place) + immutable column arena.
  std::vector<int> tv_, row_start_, row_len_;
  std::vector<double> tc_;
  std::vector<int> cr_, col_start_, col_count_;
  std::vector<double> cc_;
  std::vector<Relation> rel_;
  std::vector<double> rhs_;
  Postsolve post_;
  PresolveStats stats_;
  // Worklists for the passes after the first.
  std::vector<char> row_dirty_, col_dirty_;
  std::vector<int> next_rows_, next_cols_;
  // Dominance scratch (generation-stamped to avoid per-row clears).
  std::vector<int> var_stamp_, sub_stamp_, row_stamp_;
  std::vector<double> var_coef_;
  int var_gen_ = 0, sub_gen_ = 0, row_gen_ = 0;
};

void Presolver::finalize(PresolveResult& out) {
  // Compaction maps.
  int live_vars = 0, live_rows = 0;
  for (int j = 0; j < n_; ++j) live_vars += var_alive_[idx(j)];
  for (int i = 0; i < m_; ++i) live_rows += row_alive_[idx(i)];
  post_.red_var_.reserve(static_cast<std::size_t>(live_vars));
  post_.red_row_.reserve(static_cast<std::size_t>(live_rows));
  for (int j = 0; j < n_; ++j) {
    if (!var_alive_[idx(j)]) continue;
    post_.var_map_[idx(j)] = static_cast<int>(post_.red_var_.size());
    post_.red_var_.push_back(j);
  }
  for (int i = 0; i < m_; ++i) {
    if (!row_alive_[idx(i)]) continue;
    post_.row_map_[idx(i)] = static_cast<int>(post_.red_row_.size());
    post_.red_row_.push_back(i);
  }
  const int nr = static_cast<int>(post_.red_var_.size());
  const int mr = static_cast<int>(post_.red_row_.size());

  // Geometric-mean scaling (powers of two so the mapping back is exact;
  // integer columns keep scale 1; MILP presolves skip scaling entirely so
  // branch & bound sees the builders' coefficients unchanged).
  std::vector<double> rscale(static_cast<std::size_t>(m_), 1.0);
  std::vector<double> cscale(static_cast<std::size_t>(n_), 1.0);
  bool scaled = false;
  if (opt_.scale && !opt_.for_milp) {
    auto pow2 = [](double g) {
      const double e = std::round(-0.5 * g);
      return std::exp2(std::min(20.0, std::max(-20.0, e)));
    };
    for (int i = 0; i < m_; ++i) {
      if (!row_alive_[idx(i)] || row_len_[idx(i)] == 0) continue;
      double lgmin = 0.0, lgmax = 0.0;
      bool first = true;
      for (int k = row_begin(i), e = row_end(i); k < e; ++k) {
        const double lg = std::log2(std::abs(tc_[idx(k)]));
        lgmin = first ? lg : std::min(lgmin, lg);
        lgmax = first ? lg : std::max(lgmax, lg);
        first = false;
      }
      rscale[idx(i)] = pow2(lgmin + lgmax);
      if (rscale[idx(i)] != 1.0) scaled = true;
    }
    for (int j = 0; j < n_; ++j) {
      if (!var_alive_[idx(j)] || integer_[idx(j)]) continue;
      double lgmin = 0.0, lgmax = 0.0;
      bool first = true;
      for (int p = col_start_[idx(j)]; p < col_start_[idx(j) + 1]; ++p) {
        const int i = cr_[idx(p)];
        if (!row_alive_[idx(i)]) continue;
        const double lg = std::log2(std::abs(cc_[idx(p)]) * rscale[idx(i)]);
        lgmin = first ? lg : std::min(lgmin, lg);
        lgmax = first ? lg : std::max(lgmax, lg);
        first = false;
      }
      if (!first) {
        cscale[idx(j)] = pow2(lgmin + lgmax);
        if (cscale[idx(j)] != 1.0) scaled = true;
      }
    }
  }
  post_.scaled_ = scaled;

  // Build the reduced (scaled) model. Variable names are not carried over:
  // the reduced model is solver-internal and postsolve maps by index.
  Model red;
  red.set_sense(model_.sense());
  post_.col_scale_.reserve(static_cast<std::size_t>(nr));
  post_.row_scale_.reserve(static_cast<std::size_t>(mr));
  post_.red_lo_.reserve(static_cast<std::size_t>(nr));
  post_.red_hi_.reserve(static_cast<std::size_t>(nr));
  for (int jr = 0; jr < nr; ++jr) {
    const int j = post_.red_var_[idx(jr)];
    const double s = cscale[idx(j)];
    const Variable& v = model_.variable(j);
    const double lo = lo_[idx(j)] / s;
    const double hi = std::isfinite(hi_[idx(j)]) ? hi_[idx(j)] / s
                                                 : hi_[idx(j)];
    red.add_variable(lo, hi, v.objective * s);
    if (v.integer) red.set_integer(jr);
    post_.col_scale_.push_back(s);
    post_.red_lo_.push_back(lo);
    post_.red_hi_.push_back(hi);
  }
  for (int ir = 0; ir < mr; ++ir) {
    const int i = post_.red_row_[idx(ir)];
    const double r = rscale[idx(i)];
    std::vector<Term> terms;
    terms.reserve(static_cast<std::size_t>(row_len_[idx(i)]));
    for (int k = row_begin(i), e = row_end(i); k < e; ++k) {
      terms.push_back({post_.var_map_[idx(tv_[idx(k)])],
                       tc_[idx(k)] * r * cscale[idx(tv_[idx(k)])]});
    }
    red.add_constraint(std::move(terms), rel_[idx(i)], rhs_[idx(i)] * r);
    post_.row_scale_.push_back(r);
  }
  out.reduced = std::move(red);
  out.post = std::move(post_);
  out.stats = stats_;
}

namespace {

/// One registry flush per presolve run (never inside the rule loops).
void record_presolve(const PresolveStats& s, bool infeasible) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  static obs::Counter& runs = reg.counter("bate_presolve_runs_total");
  static obs::Counter& passes = reg.counter("bate_presolve_passes_total");
  static obs::Counter& rows = reg.counter("bate_presolve_rows_removed_total");
  static obs::Counter& cols = reg.counter("bate_presolve_cols_removed_total");
  static obs::Counter& bounds =
      reg.counter("bate_presolve_bounds_tightened_total");
  static obs::Counter& redundant =
      reg.counter("bate_presolve_redundant_rows_total");
  static obs::Counter& singleton =
      reg.counter("bate_presolve_singleton_rows_total");
  static obs::Counter& dominated =
      reg.counter("bate_presolve_dominated_rows_total");
  static obs::Counter& fixed = reg.counter("bate_presolve_fixed_vars_total");
  static obs::Counter& dual_fixed =
      reg.counter("bate_presolve_dual_fixed_vars_total");
  static obs::Counter& free_slack =
      reg.counter("bate_presolve_free_slack_cols_total");
  static obs::Counter& tightens = reg.counter("bate_presolve_tightens_total");
  static obs::Counter& infeas =
      reg.counter("bate_presolve_infeasible_total");
  runs.inc();
  passes.inc(s.passes);
  rows.inc(s.rows_removed);
  cols.inc(s.cols_removed);
  bounds.inc(s.bounds_tightened);
  redundant.inc(s.redundant_rows);
  singleton.inc(s.singleton_rows);
  dominated.inc(s.dominated_rows);
  fixed.inc(s.fixed_vars);
  dual_fixed.inc(s.dual_fixed_vars);
  free_slack.inc(s.free_slack_cols);
  tightens.inc(s.tightens);
  if (infeasible) infeas.inc();
}

}  // namespace

PresolveResult presolve_model(const Model& model,
                              const PresolveOptions& options) {
  PresolveResult out;
  Presolver p(model, options);
  if (!p.run()) {
    out.infeasible = true;
    out.stats = p.stats();
    record_presolve(out.stats, /*infeasible=*/true);
    return out;
  }
  p.finalize(out);
  record_presolve(out.stats, /*infeasible=*/false);
  return out;
}

Basis slack_basis(const Model& model) {
  const int n = model.variable_count();
  const int m = model.constraint_count();
  Basis b;
  b.structural_count = n;
  b.constraint_count = m;
  b.basic.resize(static_cast<std::size_t>(m));
  b.status.assign(static_cast<std::size_t>(n + m), VarStatus::kAtLower);
  for (int i = 0; i < m; ++i) {
    b.basic[static_cast<std::size_t>(i)] = n + i;
    b.status[static_cast<std::size_t>(n + i)] = VarStatus::kBasic;
  }
  return b;
}

// ---- Postsolve -----------------------------------------------------------

Solution Postsolve::expand(const Model& original,
                           const Solution& reduced) const {
  BATE_DCHECK_MSG(original.variable_count() == orig_vars_ &&
                      original.constraint_count() == orig_rows_,
                  "postsolve: model is not the one presolved");
  Solution out;
  out.status = reduced.status;
  out.iterations = reduced.iterations;
  out.pivots = reduced.pivots;
  out.dual_pivots = reduced.dual_pivots;
  out.nodes = reduced.nodes;
  const std::size_t n = static_cast<std::size_t>(orig_vars_);
  const std::size_t m = static_cast<std::size_t>(orig_rows_);

  // Primal: kept columns map back (unscaled), removed columns take their
  // recorded values, free-slack columns re-absorb their row's residual in
  // reverse removal order (later removals have values by then).
  out.x.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (var_map_[j] < 0) out.x[j] = fixed_value_[j];
  }
  for (std::size_t jr = 0; jr < red_var_.size(); ++jr) {
    const double s = scaled_ ? col_scale_[jr] : 1.0;
    const double xv =
        jr < reduced.x.size() ? reduced.x[jr] : red_lo_[jr];
    out.x[static_cast<std::size_t>(red_var_[jr])] = xv * s;
  }
  for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) {
    if (it->kind != Act::kFreeSlack) continue;
    const Constraint& c = original.constraint(it->row);
    double rest = 0.0;
    for (const Term& t : c.terms) {
      if (t.var != it->var) rest += t.coef * out.x[static_cast<std::size_t>(t.var)];
    }
    out.x[static_cast<std::size_t>(it->var)] =
        std::max(it->lo_at_drop, (c.rhs - rest) / it->coef);
  }
  out.objective = reduced.objective + obj_offset_;

  // Duals: only recovered for LP solves that produced them (branch & bound
  // returns none, matching the Solution contract).
  const bool has_duals = !milp_ &&
                         reduced.duals.size() == red_row_.size() &&
                         reduced.status == SolveStatus::kOptimal;
  if (!has_duals) return out;

  const bool maximize = original.sense() == Sense::kMaximize;
  // Everything below works in minimization sense; convert on the way out.
  std::vector<double> y(m, 0.0);
  for (std::size_t ir = 0; ir < red_row_.size(); ++ir) {
    const double r = scaled_ ? row_scale_[ir] : 1.0;
    const double ym = reduced.duals[ir] * r;  // model sense, original scale
    y[static_cast<std::size_t>(red_row_[ir])] = maximize ? -ym : ym;
  }
  std::vector<double> d(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double c = original.variable(static_cast<int>(j)).objective;
    d[j] = maximize ? -c : c;
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (y[i] == 0.0) continue;
    for (const Term& t : original.constraint(static_cast<int>(i)).terms) {
      d[static_cast<std::size_t>(t.var)] -= y[i] * t.coef;
    }
  }
  // Reverse transfer walk: a removed bound whose variable ended pinned at it
  // moves the variable's remaining reduced cost onto the generating row
  // (the trigger implies the row is binding and the transfer sign matches
  // the row's dual sign; see DESIGN.md Sec 5 "Presolve & postsolve").
  auto transfer = [&](const Action& a) {
    const double mu = d[static_cast<std::size_t>(a.var)] / a.coef;
    y[static_cast<std::size_t>(a.row)] += mu;
    for (const Term& t : original.constraint(a.row).terms) {
      d[static_cast<std::size_t>(t.var)] -= mu * t.coef;
    }
  };
  for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) {
    switch (it->kind) {
      case Act::kFixedByRow:
        if (std::abs(d[static_cast<std::size_t>(it->var)]) > 1e-12) {
          transfer(*it);  // equality row: dual sign free, always valid
        }
        break;
      case Act::kSingletonRow:
      case Act::kTighten: {
        if (it->row < 0) break;
        const double dv = d[static_cast<std::size_t>(it->var)];
        if (std::abs(dv) <= 1e-9) break;
        const bool pinned = it->at_upper ? dv < 0.0 : dv > 0.0;
        const double xv = out.x[static_cast<std::size_t>(it->var)];
        const bool at_bound =
            std::abs(xv - it->new_bound) <=
            1e-6 * (1.0 + std::abs(it->new_bound));
        if (pinned && at_bound) transfer(*it);
        break;
      }
      case Act::kFixVar:
      case Act::kDropRow:
      case Act::kFreeSlack:
        break;
    }
  }
  out.duals.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.duals[i] = maximize ? -y[i] : y[i];
  }
  return out;
}

Basis Postsolve::to_full(const Basis& reduced,
                         const std::vector<double>& reduced_x) const {
  const int n = orig_vars_;
  const int m = orig_rows_;
  const int nr = static_cast<int>(red_var_.size());
  const int mr = static_cast<int>(red_row_.size());
  Basis full;
  full.structural_count = n;
  full.constraint_count = m;
  full.basic.assign(static_cast<std::size_t>(m), -1);
  full.status.assign(static_cast<std::size_t>(n + m), VarStatus::kAtLower);
  for (int j = 0; j < n; ++j) {
    if (var_map_[static_cast<std::size_t>(j)] < 0) {
      full.status[static_cast<std::size_t>(j)] =
          fixed_status_[static_cast<std::size_t>(j)];
    }
  }
  const bool usable = !reduced.empty() && reduced.structural_count == nr &&
                      reduced.constraint_count == mr;
  if (usable) {
    for (int jr = 0; jr < nr; ++jr) {
      full.status[static_cast<std::size_t>(red_var_[static_cast<std::size_t>(jr)])] =
          reduced.status[static_cast<std::size_t>(jr)];
    }
    for (int ir = 0; ir < mr; ++ir) {
      const int i = red_row_[static_cast<std::size_t>(ir)];
      full.status[static_cast<std::size_t>(n + i)] =
          reduced.status[static_cast<std::size_t>(nr + ir)];
      const int bc = reduced.basic[static_cast<std::size_t>(ir)];
      int mapped = -1;
      if (bc >= 0 && bc < nr) {
        mapped = red_var_[static_cast<std::size_t>(bc)];
      } else if (bc >= nr && bc < nr + mr) {
        mapped = n + red_row_[static_cast<std::size_t>(bc - nr)];
      }
      if (mapped >= 0) full.basic[static_cast<std::size_t>(i)] = mapped;
    }
  } else {
    // No reduced basis (e.g. the reduced model had no rows and solved on
    // bounds alone): synthesize nonbasic statuses from the reduced point.
    for (int jr = 0; jr < nr; ++jr) {
      const std::size_t sjr = static_cast<std::size_t>(jr);
      VarStatus st = VarStatus::kAtLower;
      if (sjr < reduced_x.size() && std::isfinite(red_hi_[sjr]) &&
          std::abs(reduced_x[sjr] - red_hi_[sjr]) <=
              std::abs(reduced_x[sjr] - red_lo_[sjr])) {
        st = VarStatus::kAtUpper;
      }
      full.status[static_cast<std::size_t>(red_var_[sjr])] = st;
    }
  }
  // Removed rows take their own slack: the slack columns are unit vectors
  // in rows no kept basic column occupies, so the full basis is block
  // triangular over the kept basis and always nonsingular.
  for (int i = 0; i < m; ++i) {
    if (full.basic[static_cast<std::size_t>(i)] < 0) {
      full.basic[static_cast<std::size_t>(i)] = n + i;
      full.status[static_cast<std::size_t>(n + i)] = VarStatus::kBasic;
    }
  }
  return full;
}

Basis Postsolve::to_reduced(const Basis& full) const {
  const int n = orig_vars_;
  const int m = orig_rows_;
  const int nr = static_cast<int>(red_var_.size());
  const int mr = static_cast<int>(red_row_.size());
  if (full.structural_count != n || full.constraint_count != m ||
      static_cast<int>(full.basic.size()) != m ||
      static_cast<int>(full.status.size()) != n + m) {
    return Basis{};
  }
  Basis red;
  red.structural_count = nr;
  red.constraint_count = mr;
  red.basic.assign(static_cast<std::size_t>(mr), -1);
  red.status.assign(static_cast<std::size_t>(nr + mr), VarStatus::kAtLower);
  for (int j = 0; j < n; ++j) {
    const int jr = var_map_[static_cast<std::size_t>(j)];
    if (jr >= 0) {
      red.status[static_cast<std::size_t>(jr)] =
          full.status[static_cast<std::size_t>(j)];
    }
  }
  for (int i = 0; i < m; ++i) {
    const int ir = row_map_[static_cast<std::size_t>(i)];
    if (ir < 0) continue;
    red.status[static_cast<std::size_t>(nr + ir)] =
        full.status[static_cast<std::size_t>(n + i)];
    const int bc = full.basic[static_cast<std::size_t>(i)];
    int mapped = -1;
    if (bc >= 0 && bc < n) {
      mapped = var_map_[static_cast<std::size_t>(bc)];
    } else if (bc >= n && bc < n + m) {
      const int rm = row_map_[static_cast<std::size_t>(bc - n)];
      if (rm >= 0) mapped = nr + rm;
    }
    if (mapped >= 0) red.basic[static_cast<std::size_t>(ir)] = mapped;
  }
  // Rows whose full basic column was presolved away restart on their own
  // slack. A duplicate with a slack already basic elsewhere is caught by
  // the warm-start install and falls back cold — correctness is unaffected.
  for (int ir = 0; ir < mr; ++ir) {
    if (red.basic[static_cast<std::size_t>(ir)] < 0) {
      red.basic[static_cast<std::size_t>(ir)] = nr + ir;
      red.status[static_cast<std::size_t>(nr + ir)] = VarStatus::kBasic;
    }
  }
  return red;
}

}  // namespace bate
