// Root-node cutting planes for the branch & bound of branch_bound.h:
// Gomory mixed-integer cuts read off the optimal root basis, and knapsack
// cover cuts separated on the 0-1 rows the admission model produces
// (Appendix A's availability knapsack). Both families are globally valid —
// they cut off fractional vertices of the LP relaxation but never an
// integer-feasible point — so rows accepted at the root are simply appended
// to the search model and inherited by every child re-solve.
//
// Separation is deterministic: candidate order, greedy cover construction
// and the pool's violation/parallelism filters depend only on the model,
// the basis and the fractional point, never on scheduling. cuts_test.cpp
// property-checks validity against reference-mode branch & bound optima on
// seeded random knapsack and admission instances.
#pragma once

#include <vector>

#include "solver/model.h"
#include "solver/simplex.h"

namespace bate {

/// One cutting plane over the model's structural variables:
///   sum(terms) {<=,>=} rhs.
/// `violation` is the amount by which the separating fractional point
/// breaks the cut, normalized by the coefficient L2 norm.
struct Cut {
  std::vector<Term> terms;  // sorted by var, coefficients merged
  Relation relation = Relation::kGreaterEqual;
  double rhs = 0.0;
  double violation = 0.0;
};

struct CutOptions {
  double integer_tol = 1e-6;
  /// Minimum normalized violation for a cut to be worth adding.
  double min_violation = 1e-4;
  /// Gomory source rows need frac(x_B) in [min_fraction, 1 - min_fraction];
  /// nearly-integral rows produce numerically poor cuts.
  double min_fraction = 5e-3;
  /// Reject cuts whose |coef| dynamic range exceeds this (ill-conditioned).
  double max_dynamism = 1e7;
  /// Cap per separation call (most-violated first).
  int max_cuts = 32;
};

/// Gomory mixed-integer cuts from the rows of `basis` whose basic variable
/// is a fractional structural integer. `x` is the relaxation's optimal
/// point for `model` (structural values). The basis must be the one that
/// produced `x` (its row tableau is re-derived from a dense factorization
/// of the basis matrix). Rows whose source data is numerically unsuitable
/// are skipped, never emitted loose.
std::vector<Cut> separate_gomory(const Model& model, const Basis& basis,
                                 const std::vector<double>& x,
                                 const CutOptions& opt = {});

/// Knapsack cover cuts on rows all of whose variables are binary in
/// `model` (bounds {0,1}, integer). Each such row is canonicalized to
/// sum a_j y_j <= b with a_j > 0 by sign-flipping / complementing; a
/// greedy minimal cover violated at `x` is extended with every heavier
/// item and mapped back to x-space.
std::vector<Cut> separate_cover(const Model& model,
                                const std::vector<double>& x,
                                const CutOptions& opt = {});

/// Violation / parallelism / capacity filter over accepted cuts. `add`
/// rejects (returns false) cuts below `min_violation`, near-parallel to an
/// already-accepted cut (normalized coefficient dot beyond
/// `max_parallelism`), or past the `capacity` cap.
class CutPool {
 public:
  CutPool(int capacity, double min_violation, double max_parallelism)
      : capacity_(capacity),
        min_violation_(min_violation),
        max_parallelism_(max_parallelism) {}

  bool add(Cut cut);
  const std::vector<Cut>& cuts() const { return cuts_; }
  /// Cuts accepted since the last drain (the cut-and-resolve loop appends
  /// each round's acceptances to the model and drains).
  std::vector<Cut> drain();

 private:
  int capacity_;
  double min_violation_;
  double max_parallelism_;
  std::vector<Cut> cuts_;          // all accepted (parallelism reference)
  std::vector<double> norms_;      // L2 norm per accepted cut
  std::size_t drained_ = 0;        // cuts_[0, drained_) already handed out
};

}  // namespace bate
