// Bounded-variable revised primal simplex with a dense basis inverse.
//
// Handles the LP classes this repository produces (traffic-scheduling LPs,
// TE baselines, LP relaxations inside branch & bound): minimize or maximize
// c'x subject to rows {<=, >=, =} and variable bounds [l, u] with finite
// lower bounds (all our variables are nonnegative) and possibly infinite
// upper bounds.
//
// Method: rows are normalized to <= / = and given slack columns; an
// infeasible slack basis is repaired with artificial columns minimized in a
// Phase-1 objective; Phase 2 reuses the final Phase-1 basis. Pricing is
// Dantzig with an automatic switch to Bland's rule under degeneracy. The
// basis inverse is maintained explicitly (O(m^2) per pivot) and basic values
// are recomputed periodically to bound numerical drift.
#pragma once

#include "solver/model.h"

namespace bate {

struct SimplexOptions {
  int iteration_limit = 200000;        // across both phases
  double tol = 1e-7;                   // feasibility / optimality tolerance
  double pivot_tol = 1e-9;             // minimum |pivot| magnitude
  int degenerate_switch = 60;          // consecutive degenerate pivots before Bland
  int recompute_every = 256;           // basic-value refresh cadence
};

/// Solves the LP (integrality markers are ignored). Throws
/// std::invalid_argument for models with variables whose lower bound is not
/// finite.
Solution solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace bate
