// Bounded-variable revised primal simplex over a product-form-of-inverse
// (PFI / eta-file) basis representation.
//
// Handles the LP classes this repository produces (traffic-scheduling LPs,
// TE baselines, LP relaxations inside branch & bound): minimize or maximize
// c'x subject to rows {<=, >=, =} and variable bounds [l, u] with finite
// lower bounds (all our variables are nonnegative) and possibly infinite
// upper bounds.
//
// Method: rows are normalized to <= / = and given slack columns; an
// infeasible slack basis is repaired with artificial columns minimized in a
// Phase-1 objective; Phase 2 reuses the final Phase-1 basis. The hot path
// (DESIGN.md "Solver performance"):
//
//  * B^-1 is never formed. Each pivot appends one sparse eta factor; FTRAN /
//    BTRAN stream through the eta file, and the file is rebuilt from the
//    basis columns (reinversion) every `recompute_every` pivots.
//  * Reduced costs are cached for every column and updated from the pivot
//    row after each basis change (d' = d - (d_q / w_r) * alpha_r), instead
//    of recomputing c_j - y'A_j for all columns each iteration.
//  * Pricing is partial: a rotating window of columns is scanned against the
//    cached reduced costs (Dantzig rule inside the window); only when a full
//    rotation prices out are the reduced costs recomputed exactly to either
//    confirm optimality or resume. Bland's rule still takes over under
//    sustained degeneracy (with exact reduced costs, preserving the
//    anti-cycling guarantee).
//
// Warm restarts (the WarmStart handle below) dispatch on the restarted
// basis: primal-feasible bases go straight to the primal Phase 2; a basis
// that is primal-infeasible but dual-feasible — the branch & bound child
// case, the parent's optimal basis with one bound changed — is re-solved
// with bounded-variable dual simplex pivots on the same eta file (leaving
// row = most-violating basic, entering column by the dual ratio test
// min |d_j / alpha_j| over sign-eligible columns); anything else, or a
// stalled dual loop, falls back to the composite-bound Phase-1 repair.
//
// `reference_mode` disables all of these optimizations — full Dantzig
// pricing over freshly computed reduced costs plus a refactorization every
// iteration, no presolve, no warm or dual restarts — and is the
// debug/equivalence baseline the tests compare against
// (tests/simplex_equivalence_test.cpp).
#pragma once

#include <vector>

#include "solver/model.h"

namespace bate {

/// Status of one column (structural variable or row slack) in a basis
/// snapshot. Nonbasic columns sit at one of their bounds; `kAtUpper` on a
/// column with an infinite upper bound is repaired to `kAtLower` on load.
enum class VarStatus : unsigned char { kAtLower = 0, kAtUpper = 1, kBasic = 2 };

/// A simplex basis snapshot: the basic column of every row plus the status
/// of every column (structural columns first, then one slack per row, in row
/// order). Artificial columns are never exported — a basic artificial is
/// swapped for the slack of its row before the snapshot is taken (both are
/// unit columns in the same row, so nonsingularity is preserved).
///
/// A basis is *stale* for a model when the shape differs
/// (structural_count/constraint_count mismatch); stale bases are ignored and
/// the solve falls back to the cold path. See DESIGN.md "Solver
/// performance" for the full warm-start contract.
struct Basis {
  int structural_count = 0;
  int constraint_count = 0;
  std::vector<int> basic;          // per row: basic column index
  std::vector<VarStatus> status;   // per column: structural, then slacks

  bool empty() const { return basic.empty() && status.empty(); }
  /// Shape check only (cheap); content validity is checked on install.
  bool compatible_with(const Model& model) const {
    return structural_count == model.variable_count() &&
           constraint_count == model.constraint_count() &&
           static_cast<int>(basic.size()) == constraint_count &&
           static_cast<int>(status.size()) ==
               structural_count + constraint_count;
  }
};

/// In/out warm-start handle for solve_lp. On input, a non-empty `basis`
/// compatible with the model restarts the solve from that basis (fresh
/// factorization, bound-flip repair of nonbasic statuses, composite Phase 1
/// for any primal infeasibility). On output, `basis` holds the final basis
/// of the solve (cold or warm) so the caller can chain re-solves, and
/// `used` reports whether the input basis was actually accepted.
struct WarmStart {
  Basis basis;
  bool used = false;
};

/// Backend selector for scenario-heavy call sites that go through
/// solve_lp_batch (solver/batch.h). `kSimplex` (the default) solves every
/// instance independently with solve_lp; `kBatched` routes slack-feasible
/// instances through the lockstep dense engine and falls back to solve_lp
/// for anything that stalls or needs a certificate. solve_lp itself never
/// reads this field, and `reference_mode` forces the serial path so the
/// equivalence baseline is untouched.
enum class SolveBackend : unsigned char { kSimplex = 0, kBatched = 1 };

struct SimplexOptions {
  int iteration_limit = 200000;        // across both phases
  double tol = 1e-7;                   // feasibility / optimality tolerance
  double pivot_tol = 1e-9;             // minimum |pivot| magnitude
  int degenerate_switch = 60;          // consecutive degenerate pivots before Bland
  /// Pivots between basis refactorizations (eta-file rebuild; also the
  /// basic-value refresh cadence bounding numerical drift).
  int recompute_every = 256;
  /// Columns scanned per partial-pricing round; 0 picks a size from the
  /// column count. Ignored in reference mode.
  int pricing_window = 0;
  /// Debug / equivalence baseline: full pricing over exact reduced costs and
  /// a refactorization every iteration. Orders of magnitude slower; only for
  /// tests and the bench_solver before/after comparison.
  bool reference_mode = false;
  /// Shrink the model with solver/presolve.h before solving and map the
  /// solution (primal, duals, basis) back afterwards. `reference_mode`
  /// ignores it, the same contract as pricing and warm starts. Branch &
  /// bound presolves once at the root and searches the reduced model.
  bool presolve = true;
  /// Batch backend for solve_lp_batch call sites (solver/batch.h); solve_lp
  /// ignores it.
  SolveBackend backend = SolveBackend::kSimplex;
};

/// Solves the LP (integrality markers are ignored). Throws
/// std::invalid_argument for models with variables whose lower bound is not
/// finite.
///
/// `warm` (optional) carries a basis across related solves: a compatible
/// input basis is restarted from (stale or unusable bases fall back to the
/// cold path — the result is identical either way, only the work differs),
/// and the final basis is written back on return. `reference_mode` ignores
/// warm input so the equivalence baseline is untouched.
Solution solve_lp(const Model& model, const SimplexOptions& options = {},
                  WarmStart* warm = nullptr);

}  // namespace bate
