// Bounded-variable revised primal simplex over a product-form-of-inverse
// (PFI / eta-file) basis representation.
//
// Handles the LP classes this repository produces (traffic-scheduling LPs,
// TE baselines, LP relaxations inside branch & bound): minimize or maximize
// c'x subject to rows {<=, >=, =} and variable bounds [l, u] with finite
// lower bounds (all our variables are nonnegative) and possibly infinite
// upper bounds.
//
// Method: rows are normalized to <= / = and given slack columns; an
// infeasible slack basis is repaired with artificial columns minimized in a
// Phase-1 objective; Phase 2 reuses the final Phase-1 basis. The hot path
// (DESIGN.md "Solver performance"):
//
//  * B^-1 is never formed. Each pivot appends one sparse eta factor; FTRAN /
//    BTRAN stream through the eta file, and the file is rebuilt from the
//    basis columns (reinversion) every `recompute_every` pivots.
//  * Reduced costs are cached for every column and updated from the pivot
//    row after each basis change (d' = d - (d_q / w_r) * alpha_r), instead
//    of recomputing c_j - y'A_j for all columns each iteration.
//  * Pricing is partial: a rotating window of columns is scanned against the
//    cached reduced costs (Dantzig rule inside the window); only when a full
//    rotation prices out are the reduced costs recomputed exactly to either
//    confirm optimality or resume. Bland's rule still takes over under
//    sustained degeneracy (with exact reduced costs, preserving the
//    anti-cycling guarantee).
//
// `reference_mode` disables all three optimizations — full Dantzig pricing
// over freshly computed reduced costs plus a refactorization every
// iteration — and is the debug/equivalence baseline the tests compare
// against (tests/simplex_equivalence_test.cpp).
#pragma once

#include "solver/model.h"

namespace bate {

struct SimplexOptions {
  int iteration_limit = 200000;        // across both phases
  double tol = 1e-7;                   // feasibility / optimality tolerance
  double pivot_tol = 1e-9;             // minimum |pivot| magnitude
  int degenerate_switch = 60;          // consecutive degenerate pivots before Bland
  /// Pivots between basis refactorizations (eta-file rebuild; also the
  /// basic-value refresh cadence bounding numerical drift).
  int recompute_every = 256;
  /// Columns scanned per partial-pricing round; 0 picks a size from the
  /// column count. Ignored in reference mode.
  int pricing_window = 0;
  /// Debug / equivalence baseline: full pricing over exact reduced costs and
  /// a refactorization every iteration. Orders of magnitude slower; only for
  /// tests and the bench_solver before/after comparison.
  bool reference_mode = false;
};

/// Solves the LP (integrality markers are ignored). Throws
/// std::invalid_argument for models with variables whose lower bound is not
/// finite.
Solution solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace bate
