// Batched lockstep LP backend for scenario-heavy solves.
//
// BATE's solver cost is dominated by many near-identical small LPs — one
// per availability pattern in the scheduler's capability precompute, one
// per failure set in BackupPlanner::precompute — not by one big LP. All of
// those instances share a *template* Model and differ only in bound / rhs /
// objective edits (a failed tunnel is a variable fixed to zero; a residual
// capacity is an rhs change), never in constraint coefficients. That shape
// lets a whole batch share one symbolic pattern: the constraint matrix,
// its sparse column structure and the row normalization are built once,
// and only the numeric per-instance state is replicated.
//
// solve_lp_batch takes the template plus per-instance deltas and solves
// every instance. With SimplexOptions::backend == SolveBackend::kBatched
// the instances run through a lockstep dense bounded-variable simplex:
//
//  * Layout is structure-of-arrays, instance-major: every lane (instance)
//    owns contiguous slabs for bounds, costs, rhs, primal values and its
//    dense basis inverse, so the hot inner loops (FTRAN against B^-1 rows,
//    the rank-1 B^-1 pivot update) stream unit-stride memory and
//    auto-vectorize.
//  * The driver advances all live lanes one pivot per sweep (lockstep).
//    Lanes that reach optimality retire from the lane set immediately, so
//    the sweep narrows as the batch converges.
//  * Exactness is preserved by a conservative fallback contract: any lane
//    that stalls (iteration cap, degenerate Bland loop, singular rebuild),
//    starts primal-infeasible (the dense engine has no Phase 1), or ends
//    anywhere other than a verified optimum — including infeasible and
//    unbounded verdicts, which need the certificate machinery — is
//    re-solved with the ordinary solve_lp (presolve + warm start from the
//    lane's last basis when one exists). Verified optima are checked for
//    primal feasibility and dual sign before being trusted.
//
// With the default backend (or reference_mode) every instance goes through
// solve_lp individually — that serial path is also the bench baseline the
// batched path is gated against (tools/ci.sh bench-smoke). See DESIGN.md
// Sec 5.4 for layout, lane retirement and the fallback contract.
#pragma once

#include <span>
#include <vector>

#include "solver/model.h"
#include "solver/simplex.h"

namespace bate {

/// Bound edit of one template variable; both bounds are replaced.
struct BoundDelta {
  int var = -1;
  double lower = 0.0;
  double upper = 0.0;
};

/// Right-hand-side edit of one template constraint (relation unchanged).
struct RhsDelta {
  int row = -1;
  double rhs = 0.0;
};

/// Objective-coefficient edit of one template variable.
struct CostDelta {
  int var = -1;
  double objective = 0.0;
};

/// One instance of a batch: the template Model with these edits applied.
/// Deltas never touch constraint coefficients — that is what lets the
/// whole batch share one symbolic pattern.
struct InstanceDelta {
  std::vector<BoundDelta> bounds;
  std::vector<RhsDelta> rhs;
  std::vector<CostDelta> costs;
};

/// Materializes `base` with `delta` applied — the model the fallback path
/// (and the equivalence tests) hand to solve_lp. Throws
/// std::invalid_argument on out-of-range indices, a non-finite lower bound,
/// or lower > upper, mirroring Model's own construction contract.
Model apply_delta(const Model& base, const InstanceDelta& delta);

/// Per-call batch accounting (also flushed to the obs registry as the
/// bate_batch_* counters).
struct BatchStats {
  /// Instances handed to solve_lp_batch.
  long instances = 0;
  /// Instances that entered the lockstep dense engine (0 on the serial path).
  long lanes = 0;
  /// Total dense pivots + bound flips across all lanes.
  long lockstep_iterations = 0;
  /// Lanes retired at a verified dense optimum.
  long batched_optimal = 0;
  /// Instances re-solved by solve_lp (stall, infeasible start, certificate).
  long fallbacks = 0;

  void merge(const BatchStats& other) {
    instances += other.instances;
    lanes += other.lanes;
    lockstep_iterations += other.lockstep_iterations;
    batched_optimal += other.batched_optimal;
    fallbacks += other.fallbacks;
  }
};

/// Solves every instance (template + delta) and returns the solutions in
/// delta order. Results are exact for every backend: the batched engine
/// only keeps verified optima and routes everything else through solve_lp,
/// so statuses and objectives match per-instance solve_lp up to solver
/// tolerance. `options.backend` selects the engine; `reference_mode`
/// forces the serial path.
std::vector<Solution> solve_lp_batch(const Model& tmpl,
                                     std::span<const InstanceDelta> deltas,
                                     const SimplexOptions& options = {},
                                     BatchStats* stats = nullptr);

}  // namespace bate
