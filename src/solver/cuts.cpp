#include "solver/cuts.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "util/check.h"

namespace bate {

namespace {

std::size_t sz(int i) { return static_cast<std::size_t>(i); }

/// Dense LU with partial pivoting of the m x m basis matrix, used once per
/// Gomory separation round to re-derive tableau rows (rho = B^-T e_r). The
/// search models this runs on are presolve-reduced (a few hundred rows), so
/// the O(m^3) factorization is far below one LP re-solve.
class DenseLU {
 public:
  explicit DenseLU(int m) : m_(m), a_(sz(m) * sz(m), 0.0), piv_(sz(m), 0) {}

  double& at(int i, int j) { return a_[sz(i) * sz(m_) + sz(j)]; }
  double at(int i, int j) const { return a_[sz(i) * sz(m_) + sz(j)]; }
  bool ok() const { return ok_; }

  void factor() {
    for (int k = 0; k < m_; ++k) {
      int p = k;
      double best = std::abs(at(k, k));
      for (int i = k + 1; i < m_; ++i) {
        if (std::abs(at(i, k)) > best) {
          best = std::abs(at(i, k));
          p = i;
        }
      }
      piv_[sz(k)] = p;
      if (p != k) {
        for (int j = 0; j < m_; ++j) std::swap(at(k, j), at(p, j));
      }
      const double d = at(k, k);
      if (std::abs(d) < 1e-11) {
        ok_ = false;  // numerically singular basis snapshot: no cuts today
        return;
      }
      for (int i = k + 1; i < m_; ++i) {
        const double l = at(i, k) / d;
        at(i, k) = l;
        if (l == 0.0) continue;
        for (int j = k + 1; j < m_; ++j) at(i, j) -= l * at(k, j);
      }
    }
  }

  /// v := B^-T v. With P B = L U (row swaps recorded in piv_),
  /// B^T = U^T L^T P, so solve U^T z = v forward, L^T u = z backward, then
  /// undo the row swaps in reverse.
  void solve_transpose(std::vector<double>& v) const {
    for (int i = 0; i < m_; ++i) {
      double s = v[sz(i)];
      for (int j = 0; j < i; ++j) s -= at(j, i) * v[sz(j)];
      v[sz(i)] = s / at(i, i);
    }
    for (int i = m_ - 1; i >= 0; --i) {
      double s = v[sz(i)];
      for (int j = i + 1; j < m_; ++j) s -= at(j, i) * v[sz(j)];
      v[sz(i)] = s;
    }
    for (int k = m_ - 1; k >= 0; --k) std::swap(v[sz(k)], v[sz(piv_[sz(k)])]);
  }

 private:
  int m_;
  std::vector<double> a_;  // row-major; L below the diagonal, U on/above
  std::vector<int> piv_;
  bool ok_ = true;
};

double frac(double v) { return v - std::floor(v); }

/// Finalizes an accumulated >= cut: gathers significant coefficients,
/// conservatively absorbs negligible ones into the rhs (for a >= row a
/// dropped term c*x_j is bounded by its worst feasible value, so the cut
/// only weakens), rejects ill-conditioned rows, and scores the violation.
bool finalize_ge_cut(const Model& model, const std::vector<double>& coef,
                     double rhs, const std::vector<double>& x,
                     const CutOptions& opt, Cut* out) {
  const int n = model.variable_count();
  std::vector<Term> terms;
  double max_c = 0.0, min_c = kInfinity;
  for (int j = 0; j < n; ++j) {
    const double c = coef[sz(j)];
    if (c == 0.0) continue;
    if (std::abs(c) < 1e-11) {
      const Variable& v = model.variable(j);
      const double worst = c > 0.0 ? c * v.upper : c * v.lower;
      if (!std::isfinite(worst)) return false;  // cannot drop safely
      rhs -= worst;
      continue;
    }
    terms.push_back({j, c});
    max_c = std::max(max_c, std::abs(c));
    min_c = std::min(min_c, std::abs(c));
  }
  if (terms.empty() || max_c / min_c > opt.max_dynamism) return false;
  if (!std::isfinite(rhs)) return false;
  double norm = 0.0, act = 0.0;
  for (const Term& t : terms) {
    norm += t.coef * t.coef;
    act += t.coef * x[sz(t.var)];
  }
  norm = std::sqrt(norm);
  const double violation = (rhs - act) / norm;
  if (violation < opt.min_violation) return false;
  out->terms = std::move(terms);
  out->relation = Relation::kGreaterEqual;
  out->rhs = rhs;
  out->violation = violation;
  return true;
}

/// Deterministic most-violated-first order with a structural tie-break.
void sort_and_cap(std::vector<Cut>* cuts, int max_cuts) {
  std::sort(cuts->begin(), cuts->end(), [](const Cut& a, const Cut& b) {
    if (a.violation != b.violation) return a.violation > b.violation;
    if (a.terms.size() != b.terms.size()) return a.terms.size() < b.terms.size();
    return a.terms.front().var < b.terms.front().var;
  });
  if (static_cast<int>(cuts->size()) > max_cuts) {
    cuts->resize(sz(max_cuts));
  }
}

}  // namespace

std::vector<Cut> separate_gomory(const Model& model, const Basis& basis,
                                 const std::vector<double>& x,
                                 const CutOptions& opt) {
  const int m = model.constraint_count();
  const int n = model.variable_count();
  if (m == 0 || !basis.compatible_with(model) ||
      static_cast<int>(x.size()) != n) {
    return {};
  }

  // Normalized-row view, matching the simplex: >= rows flipped to <=, one
  // slack in [0, inf) per inequality row ([0, 0] for equalities).
  std::vector<double> flip(sz(m), 1.0);
  for (int i = 0; i < m; ++i) {
    if (model.constraint(i).relation == Relation::kGreaterEqual) {
      flip[sz(i)] = -1.0;
    }
  }

  // Column adjacency of the structural variables (normalized sign): each
  // entry's `var` is the row index, `coef` the flipped coefficient.
  std::vector<std::vector<Term>> cols(sz(n));
  for (int i = 0; i < m; ++i) {
    for (const Term& t : model.constraint(i).terms) {
      cols[sz(t.var)].push_back({i, flip[sz(i)] * t.coef});
    }
  }

  // Fill B column by column: structural columns carry flip * coef, slack
  // columns are unit vectors in their row.
  DenseLU lu(m);
  for (int r = 0; r < m; ++r) {
    const int col = basis.basic[sz(r)];
    if (col < n) {
      for (const Term& t : cols[sz(col)]) lu.at(t.var, r) = t.coef;
    } else {
      lu.at(col - n, r) = 1.0;
    }
  }
  lu.factor();
  if (!lu.ok()) return {};

  std::vector<double> rho(sz(m), 0.0);
  std::vector<double> coef(sz(n), 0.0);
  std::vector<Cut> out;

  for (int r = 0; r < m; ++r) {
    const int b = basis.basic[sz(r)];
    if (b >= n || !model.variable(b).integer) continue;
    const double f0 = frac(x[sz(b)]);
    if (f0 < opt.min_fraction || f0 > 1.0 - opt.min_fraction) continue;

    std::fill(rho.begin(), rho.end(), 0.0);
    rho[sz(r)] = 1.0;
    lu.solve_transpose(rho);

    std::fill(coef.begin(), coef.end(), 0.0);
    double rhs = f0;
    bool usable = true;

    // Every nonbasic column contributes gamma(alpha) in its bound-shifted
    // space; structural shifts and slack substitutions fold straight back
    // into x-space as we go.
    for (int j = 0; j < n + m && usable; ++j) {
      if (basis.status[sz(j)] == VarStatus::kBasic) continue;
      // alpha_j = rho . A_j over the normalized column; slack columns are
      // unit vectors in their row.
      double alpha;
      if (j < n) {
        alpha = 0.0;
        for (const Term& t : cols[sz(j)]) alpha += rho[sz(t.var)] * t.coef;
      } else {
        alpha = rho[sz(j - n)];
      }

      const bool is_slack = j >= n;
      double lo, hi;
      if (is_slack) {
        const Constraint& c = model.constraint(j - n);
        lo = 0.0;
        hi = c.relation == Relation::kEqual ? 0.0 : kInfinity;
      } else {
        lo = model.variable(j).lower;
        hi = model.variable(j).upper;
      }
      // Shift the nonbasic to its bound: at-upper flips the sign (slacks
      // are never meaningfully at-upper — inf upper, or fixed at 0).
      const bool at_up = !is_slack &&
                         basis.status[sz(j)] == VarStatus::kAtUpper &&
                         std::isfinite(hi) && hi != lo;
      const double shifted = at_up ? -alpha : alpha;

      bool integer_col = !is_slack && model.variable(j).integer;
      if (integer_col) {
        const double bound = at_up ? hi : lo;
        if (std::floor(bound) != bound) integer_col = false;  // keep sound
      }
      double gamma;
      if (integer_col) {
        const double fj = frac(shifted);
        gamma = fj <= f0 + 1e-12 ? fj : f0 * (1.0 - fj) / (1.0 - f0);
      } else {
        gamma = shifted >= 0.0 ? shifted : f0 * (-shifted) / (1.0 - f0);
      }
      if (gamma == 0.0) continue;
      if (!std::isfinite(gamma)) {
        usable = false;
        break;
      }

      if (is_slack) {
        // Substitute s_i = flip*rhs_i - sum flip*a_ij x_j back out.
        const int i = j - n;
        const Constraint& c = model.constraint(i);
        for (const Term& t : c.terms) {
          coef[sz(t.var)] -= gamma * flip[sz(i)] * t.coef;
        }
        rhs -= gamma * flip[sz(i)] * c.rhs;
      } else if (at_up) {
        coef[sz(j)] -= gamma;
        rhs -= gamma * hi;
      } else {
        coef[sz(j)] += gamma;
        rhs += gamma * lo;
      }
    }
    if (!usable) continue;

    Cut cut;
    if (finalize_ge_cut(model, coef, rhs, x, opt, &cut)) {
      out.push_back(std::move(cut));
    }
  }

  sort_and_cap(&out, opt.max_cuts);
  return out;
}

std::vector<Cut> separate_cover(const Model& model,
                                const std::vector<double>& x,
                                const CutOptions& opt) {
  const int n = model.variable_count();
  if (static_cast<int>(x.size()) != n) return {};
  std::vector<Cut> out;

  struct Item {
    int var;
    double a;      // canonical weight (> 0)
    bool comp;     // y = 1 - x instead of y = x
    double y;      // fractional value of y at the separating point
  };

  for (int i = 0; i < model.constraint_count(); ++i) {
    const Constraint& c = model.constraint(i);
    if (c.terms.size() < 2) continue;
    bool all_binary = true;
    for (const Term& t : c.terms) {
      const Variable& v = model.variable(t.var);
      if (!v.integer || v.lower != 0.0 || v.upper != 1.0) {
        all_binary = false;
        break;
      }
    }
    if (!all_binary) continue;

    // A <=-direction knapsack per applicable relation: <= rows directly,
    // >= rows negated; equalities yield both.
    std::vector<double> dirs;
    if (c.relation != Relation::kGreaterEqual) dirs.push_back(1.0);
    if (c.relation != Relation::kLessEqual) dirs.push_back(-1.0);

    for (const double dir : dirs) {
      std::vector<Item> items;
      double b = dir * c.rhs;
      double suma = 0.0;
      for (const Term& t : c.terms) {
        double a = dir * t.coef;
        if (a == 0.0) continue;
        bool comp = false;
        if (a < 0.0) {  // complement: a*x = a - a*(1-x)
          comp = true;
          b += -a;
          a = -a;
        }
        const double y =
            std::clamp(comp ? 1.0 - x[sz(t.var)] : x[sz(t.var)], 0.0, 1.0);
        items.push_back({t.var, a, comp, y});
        suma += a;
      }
      if (items.size() < 2 || b < -1e-9 || suma <= b + 1e-9) continue;

      // Greedy cover: cheapest (1 - y) per unit weight first, so the most
      // fractional heavy items form the cover.
      std::sort(items.begin(), items.end(), [](const Item& p, const Item& q) {
        const double kp = (1.0 - p.y) / p.a;
        const double kq = (1.0 - q.y) / q.a;
        if (kp != kq) return kp < kq;
        if (p.a != q.a) return p.a > q.a;
        return p.var < q.var;
      });
      std::vector<Item> cover;
      double weight = 0.0;
      for (const Item& it : items) {
        cover.push_back(it);
        weight += it.a;
        if (weight > b + 1e-9) break;
      }
      if (weight <= b + 1e-9) continue;

      // Minimalize: dropping an item always increases the violation by
      // (1 - y) >= 0, so drop the least-fractional items while the cover
      // property survives. One pass suffices — the residual weight only
      // shrinks, so an item not removable when visited never becomes so.
      std::sort(cover.begin(), cover.end(),
                [](const Item& p, const Item& q) {
                  if (p.y != q.y) return p.y < q.y;  // largest (1-y) first
                  return p.var < q.var;
                });
      std::vector<Item> minimal;
      for (const Item& it : cover) {
        if (weight - it.a > b + 1e-9) {
          weight -= it.a;
        } else {
          minimal.push_back(it);
        }
      }

      double viol_raw = 1.0 - static_cast<double>(minimal.size());
      double amax = 0.0;
      for (const Item& it : minimal) {
        viol_raw += it.y;
        amax = std::max(amax, it.a);
      }
      if (viol_raw <= opt.min_violation) continue;

      // Extended cover: every item at least as heavy as the heaviest cover
      // member joins the left-hand side at the same rhs.
      std::vector<Item> lhs = minimal;
      for (const Item& it : items) {
        if (it.a >= amax - 1e-12) {
          bool in_cover = false;
          for (const Item& cv : minimal) {
            if (cv.var == it.var) {
              in_cover = true;
              break;
            }
          }
          if (!in_cover) lhs.push_back(it);
        }
      }

      Cut cut;
      cut.relation = Relation::kLessEqual;
      double rhs = static_cast<double>(minimal.size()) - 1.0;
      double act = 0.0;
      for (const Item& it : lhs) {
        if (it.comp) {
          cut.terms.push_back({it.var, -1.0});
          rhs -= 1.0;
          act -= x[sz(it.var)];
        } else {
          cut.terms.push_back({it.var, 1.0});
          act += x[sz(it.var)];
        }
      }
      cut.rhs = rhs;
      std::sort(cut.terms.begin(), cut.terms.end(),
                [](const Term& p, const Term& q) { return p.var < q.var; });
      cut.violation =
          (act - rhs) / std::sqrt(static_cast<double>(cut.terms.size()));
      if (cut.violation < opt.min_violation) continue;
      out.push_back(std::move(cut));
    }
  }

  sort_and_cap(&out, opt.max_cuts);
  return out;
}

bool CutPool::add(Cut cut) {
  if (static_cast<int>(cuts_.size()) >= capacity_) return false;
  if (cut.terms.empty() || cut.violation < min_violation_) return false;
  double norm = 0.0;
  for (const Term& t : cut.terms) norm += t.coef * t.coef;
  norm = std::sqrt(norm);
  if (!(norm > 0.0) || !std::isfinite(norm)) return false;
  // Parallelism filter: sparse normalized dot against every accepted cut of
  // the same relation (terms are sorted by var).
  for (std::size_t k = 0; k < cuts_.size(); ++k) {
    if (cuts_[k].relation != cut.relation) continue;
    double dot = 0.0;
    std::size_t a = 0, b = 0;
    while (a < cut.terms.size() && b < cuts_[k].terms.size()) {
      if (cut.terms[a].var < cuts_[k].terms[b].var) {
        ++a;
      } else if (cut.terms[a].var > cuts_[k].terms[b].var) {
        ++b;
      } else {
        dot += cut.terms[a].coef * cuts_[k].terms[b].coef;
        ++a;
        ++b;
      }
    }
    if (std::abs(dot) / (norm * norms_[k]) > max_parallelism_) return false;
  }
  cuts_.push_back(std::move(cut));
  norms_.push_back(norm);
  return true;
}

std::vector<Cut> CutPool::drain() {
  std::vector<Cut> out(cuts_.begin() + static_cast<std::ptrdiff_t>(drained_),
                       cuts_.end());
  drained_ = cuts_.size();
  return out;
}

}  // namespace bate
