#include "solver/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bate {

int Model::add_variable(double lower, double upper, double objective,
                        std::string name) {
  if (lower > upper) throw std::invalid_argument("Model: lower > upper");
  if (std::isnan(lower) || std::isnan(upper) || std::isnan(objective)) {
    throw std::invalid_argument("Model: NaN in variable definition");
  }
  variables_.push_back({lower, upper, objective, false, std::move(name)});
  return variable_count() - 1;
}

int Model::add_binary(double objective, std::string name) {
  const int v = add_variable(0.0, 1.0, objective, std::move(name));
  variables_.back().integer = true;
  return v;
}

void Model::set_integer(int var) {
  variables_.at(static_cast<std::size_t>(var)).integer = true;
}

void Model::add_constraint(std::vector<Term> terms, Relation rel, double rhs) {
  // Validate indices, then sort + merge duplicates in place and move the
  // vector into the row — the builders call this once per row in tight
  // loops, and the former std::map accumulator allocated a node per term.
  for (const Term& t : terms) {
    if (t.var < 0 || t.var >= variable_count()) {
      throw std::out_of_range("Model: constraint references unknown variable");
    }
  }
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms.size();) {
    const int var = terms[i].var;
    double coef = 0.0;
    for (; i < terms.size() && terms[i].var == var; ++i) coef += terms[i].coef;
    if (coef != 0.0) terms[out++] = {var, coef};
  }
  terms.resize(out);
  constraints_.push_back({std::move(terms), rel, rhs});
}

bool Model::has_integers() const {
  for (const Variable& v : variables_) {
    if (v.integer) return true;
  }
  return false;
}

double Model::row_activity(int row, const std::vector<double>& x) const {
  BATE_DCHECK(row >= 0 && row < constraint_count());
  BATE_DCHECK(x.size() >= variables_.size());
  const Constraint& c = constraints_[static_cast<std::size_t>(row)];
  double a = 0.0;
  for (const Term& t : c.terms) a += t.coef * x[static_cast<std::size_t>(t.var)];
  return a;
}

double Model::objective_value(const std::vector<double>& x) const {
  BATE_DCHECK(x.size() >= variables_.size());
  double obj = 0.0;
  for (int i = 0; i < variable_count(); ++i) {
    obj += variables_[static_cast<std::size_t>(i)].objective *
           x[static_cast<std::size_t>(i)];
  }
  return obj;
}

bool Model::feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != variable_count()) return false;
  for (int i = 0; i < variable_count(); ++i) {
    const Variable& v = variables_[static_cast<std::size_t>(i)];
    const double xi = x[static_cast<std::size_t>(i)];
    if (xi < v.lower - tol || xi > v.upper + tol) return false;
  }
  for (int r = 0; r < constraint_count(); ++r) {
    const double a = row_activity(r, x);
    const Constraint& c = constraints_[static_cast<std::size_t>(r)];
    switch (c.relation) {
      case Relation::kLessEqual:
        if (a > c.rhs + tol) return false;
        break;
      case Relation::kGreaterEqual:
        if (a < c.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::abs(a - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

}  // namespace bate
