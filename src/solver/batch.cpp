#include "solver/batch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace bate {

namespace {

std::size_t sz(long v) { return static_cast<std::size_t>(v); }

void check_delta(const Model& base, const InstanceDelta& delta) {
  for (const BoundDelta& b : delta.bounds) {
    if (b.var < 0 || b.var >= base.variable_count()) {
      throw std::invalid_argument("batch: bound delta variable out of range");
    }
    // Same contract as Model::add_variable / solve_lp: finite lower bound,
    // lower <= upper (NaN fails both comparisons and is rejected too).
    if (!std::isfinite(b.lower) || !(b.lower <= b.upper)) {
      throw std::invalid_argument("batch: bound delta with invalid bounds");
    }
  }
  for (const RhsDelta& r : delta.rhs) {
    if (r.row < 0 || r.row >= base.constraint_count()) {
      throw std::invalid_argument("batch: rhs delta row out of range");
    }
    if (!std::isfinite(r.rhs)) {
      throw std::invalid_argument("batch: rhs delta with non-finite rhs");
    }
  }
  for (const CostDelta& c : delta.costs) {
    if (c.var < 0 || c.var >= base.variable_count()) {
      throw std::invalid_argument("batch: cost delta variable out of range");
    }
    if (!std::isfinite(c.objective)) {
      throw std::invalid_argument("batch: cost delta with non-finite cost");
    }
  }
}

/// One nonzero of a structural column after row normalization.
struct ColEntry {
  int row;
  double coef;
};

/// The shared symbolic pattern of the batch: everything that depends only
/// on the template's coefficients, built once and read by every lane. Rows
/// are normalized exactly like the sparse engine: >= rows are negated to
/// <=, every row gets a slack with bounds [0, inf) (or [0, 0] for =).
struct BatchPattern {
  int n = 0;      // structural columns
  int m = 0;      // rows
  int ncols = 0;  // n + m (structural then one slack per row)
  bool maximize = false;
  std::vector<int> col_start;  // CSC over structural columns, size n + 1
  std::vector<ColEntry> col_entries;
  std::vector<double> row_flip;  // +1 (<=, =) or -1 (>=)
  // Template numeric state in internal form (minimization costs, flipped
  // rhs); lanes copy these slabs and then apply their deltas.
  std::vector<double> tlower, tupper;  // size ncols
  std::vector<double> tcost;           // size ncols (slack costs are 0)
  std::vector<double> trhs;            // size m

  explicit BatchPattern(const Model& tmpl) {
    n = tmpl.variable_count();
    m = tmpl.constraint_count();
    ncols = n + m;
    maximize = tmpl.sense() == Sense::kMaximize;

    tlower.assign(sz(ncols), 0.0);
    tupper.assign(sz(ncols), kInfinity);
    tcost.assign(sz(ncols), 0.0);
    for (int j = 0; j < n; ++j) {
      const Variable& v = tmpl.variable(j);
      if (!std::isfinite(v.lower)) {
        throw std::invalid_argument(
            "batch: variable lower bound must be finite");
      }
      tlower[sz(j)] = v.lower;
      tupper[sz(j)] = v.upper;
      tcost[sz(j)] = maximize ? -v.objective : v.objective;
    }

    row_flip.assign(sz(m), 1.0);
    trhs.assign(sz(m), 0.0);
    std::vector<int> col_count(sz(n), 0);
    for (int r = 0; r < m; ++r) {
      const Constraint& c = tmpl.constraint(r);
      if (c.relation == Relation::kGreaterEqual) row_flip[sz(r)] = -1.0;
      trhs[sz(r)] = c.rhs * row_flip[sz(r)];
      if (c.relation == Relation::kEqual) tupper[sz(n + r)] = 0.0;
      for (const Term& t : c.terms) ++col_count[sz(t.var)];
    }
    col_start.assign(sz(n + 1), 0);
    for (int j = 0; j < n; ++j) {
      col_start[sz(j + 1)] = col_start[sz(j)] + col_count[sz(j)];
    }
    col_entries.resize(sz(col_start[sz(n)]));
    std::vector<int> fill(col_start.begin(), col_start.end() - 1);
    for (int r = 0; r < m; ++r) {
      const Constraint& c = tmpl.constraint(r);
      for (const Term& t : c.terms) {
        col_entries[sz(fill[sz(t.var)]++)] = {r, t.coef * row_flip[sz(r)]};
      }
    }
  }
};

enum class LaneState : unsigned char { kRunning, kOptimal, kFallback };

/// Lockstep dense bounded-variable simplex over a batch of lanes.
///
/// All per-lane numeric state lives in instance-major arenas: lane l's
/// bounds / costs / rhs / primal values / basis inverse occupy one
/// contiguous slab each, so the two hot loops — the FTRAN accumulation
/// against B^-1 rows and the rank-1 B^-1 pivot update — are unit-stride
/// axpys over that slab and auto-vectorize. The driver advances every live
/// lane one pivot per sweep; finished lanes retire from the active set.
class BatchEngine {
 public:
  /// `hot`, when non-null, is a basis of the template (normally its optimal
  /// one) that every lane starts from instead of the slack basis — valid
  /// whenever the deltas never edit costs, because bound and rhs edits
  /// preserve dual feasibility. The shared factorization is built once.
  BatchEngine(const Model& tmpl, std::span<const InstanceDelta> deltas,
              const SimplexOptions& opt, const Basis* hot = nullptr)
      : pat_(tmpl), opt_(opt), lanes_(static_cast<int>(deltas.size())) {
    const int L = lanes_;
    const std::size_t cols = sz(pat_.ncols);
    lower_.resize(sz(L) * cols);
    upper_.resize(sz(L) * cols);
    cost_.resize(sz(L) * cols);
    x_.resize(sz(L) * cols);
    status_.resize(sz(L) * cols);
    rhs_.resize(sz(L) * sz(pat_.m));
    binv_.resize(sz(L) * sz(pat_.m) * sz(pat_.m));
    basis_.resize(sz(L) * sz(pat_.m));
    lane_.resize(sz(L));
    w_.assign(sz(pat_.m), 0.0);
    y_.assign(sz(pat_.m), 0.0);
    scratch_.resize(sz(pat_.m) * 2 * sz(pat_.m));
    // Far above the typical path length of a small dense LP; a lane that
    // needs more than this has stalled and solve_lp is the cheaper answer.
    lane_limit_ = std::min<long>(opt_.iteration_limit,
                                 30L * (pat_.m + pat_.n) + 300);
    rebuild_every_ = std::clamp(opt_.recompute_every, 32, 256);
    for (int l = 0; l < L; ++l) load(l, deltas[sz(l)], hot);
    if (hot != nullptr) hot_init();
  }

  void run() {
    std::vector<int> active;
    for (int l = 0; l < lanes_; ++l) {
      if (lane_[sz(l)].state == LaneState::kRunning) active.push_back(l);
    }
    while (!active.empty()) {
      for (std::size_t i = 0; i < active.size();) {
        if (step(active[i]) == LaneState::kRunning) {
          ++i;
        } else {
          active[i] = active.back();
          active.pop_back();
        }
      }
    }
  }

  bool optimal(int l) const { return lane_[sz(l)].state == LaneState::kOptimal; }
  /// True when the lane made at least one basis change, so its final basis
  /// is worth handing to solve_lp as a warm start.
  bool has_basis(int l) const { return lane_[sz(l)].pivots > 0; }
  long iterations(int l) const { return lane_[sz(l)].iters; }

  Solution take_solution(int l) { return std::move(lane_[sz(l)].solution); }

  Basis export_basis(int l) const {
    Basis b;
    b.structural_count = pat_.n;
    b.constraint_count = pat_.m;
    const int* bas = &basis_[sz(l) * sz(pat_.m)];
    b.basic.assign(bas, bas + pat_.m);
    const VarStatus* st = &status_[sz(l) * sz(pat_.ncols)];
    b.status.assign(st, st + pat_.ncols);
    return b;
  }

 private:
  struct LaneCtl {
    LaneState state = LaneState::kRunning;
    long iters = 0;
    long pivots = 0;
    int degen_streak = 0;
    bool bland = false;
    int until_rebuild = 0;
    Solution solution;
  };

  double* slab(std::vector<double>& v, int l, int stride) {
    return &v[sz(l) * sz(stride)];
  }

  void load(int l, const InstanceDelta& delta, const Basis* hot) {
    const int nc = pat_.ncols;
    double* lo = slab(lower_, l, nc);
    double* up = slab(upper_, l, nc);
    double* co = slab(cost_, l, nc);
    double* xx = slab(x_, l, nc);
    double* rh = slab(rhs_, l, pat_.m);
    VarStatus* st = &status_[sz(l) * sz(nc)];
    std::copy(pat_.tlower.begin(), pat_.tlower.end(), lo);
    std::copy(pat_.tupper.begin(), pat_.tupper.end(), up);
    std::copy(pat_.tcost.begin(), pat_.tcost.end(), co);
    std::copy(pat_.trhs.begin(), pat_.trhs.end(), rh);
    for (const BoundDelta& b : delta.bounds) {
      lo[b.var] = b.lower;
      up[b.var] = b.upper;
    }
    for (const RhsDelta& r : delta.rhs) {
      rh[r.row] = r.rhs * pat_.row_flip[sz(r.row)];
    }
    for (const CostDelta& c : delta.costs) {
      co[c.var] = pat_.maximize ? -c.objective : c.objective;
    }
    if (hot != nullptr) {
      // Hot start: install the shared basis's statuses with this lane's
      // bounds (deltas already applied above, so a nonbasic column lands on
      // its *new* bound). Basic values and the shared factorization are
      // filled in by hot_init().
      for (int j = 0; j < nc; ++j) {
        st[j] = hot->status[sz(j)];
        if (st[j] == VarStatus::kBasic) continue;
        if (st[j] == VarStatus::kAtUpper && up[j] == kInfinity) {
          st[j] = VarStatus::kAtLower;  // bound delta opened the box upward
        }
        xx[j] = st[j] == VarStatus::kAtUpper ? up[j] : lo[j];
      }
      int* hb = &basis_[sz(l) * sz(pat_.m)];
      for (int r = 0; r < pat_.m; ++r) hb[r] = hot->basic[sz(r)];
      return;
    }

    // Slack basis: structural columns at their lower bound, one slack basic
    // per row, B = I.
    for (int j = 0; j < pat_.n; ++j) {
      st[j] = VarStatus::kAtLower;
      xx[j] = lo[j];
    }
    int* bas = &basis_[sz(l) * sz(pat_.m)];
    double* binv = &binv_[sz(l) * sz(pat_.m) * sz(pat_.m)];
    std::fill(binv, binv + sz(pat_.m) * sz(pat_.m), 0.0);
    for (int r = 0; r < pat_.m; ++r) {
      bas[r] = pat_.n + r;
      st[pat_.n + r] = VarStatus::kBasic;
      binv[sz(r) * sz(pat_.m) + sz(r)] = 1.0;
    }
    lane_[sz(l)].until_rebuild = rebuild_every_;
    recompute_basics(l);
    // No Phase 1 in the dense engine: a primal-infeasible slack basis
    // (negative slack on a <= row, nonzero slack on an = row) goes straight
    // to the solve_lp fallback, which has the full repair machinery.
    for (int r = 0; r < pat_.m; ++r) {
      const double s = xx[pat_.n + r];
      const double tol = opt_.tol * (1.0 + std::abs(rh[r]));
      if (s < lo[pat_.n + r] - tol || s > up[pat_.n + r] + tol) {
        lane_[sz(l)].state = LaneState::kFallback;
        return;
      }
    }
  }

  /// Shared hot-start factorization: every lane begins at the same basis,
  /// so B^-1 is built once (lane 0) and copied into the other slabs; each
  /// lane then refreshes its basic values against its own bounds and rhs.
  /// Lanes come out dual feasible but possibly primal infeasible — step()'s
  /// dual-repair phase drives the violations out. A singular hot basis
  /// (impossible for a basis the sparse engine just certified, but defend
  /// anyway) sends every lane to the fallback.
  void hot_init() {
    if (lanes_ == 0) return;
    if (!rebuild(0)) {
      for (int l = 0; l < lanes_; ++l) {
        lane_[sz(l)].state = LaneState::kFallback;
      }
      return;
    }
    const std::size_t bs = sz(pat_.m) * sz(pat_.m);
    for (int l = 1; l < lanes_; ++l) {
      std::copy(binv_.begin(), binv_.begin() + static_cast<std::ptrdiff_t>(bs),
                binv_.begin() + static_cast<std::ptrdiff_t>(sz(l) * bs));
      lane_[sz(l)].until_rebuild = rebuild_every_;
      recompute_basics(l);
    }
  }

  /// Rebuilds B^-1 from the basis columns (Gauss-Jordan with partial
  /// pivoting) and refreshes the basic values — the dense analogue of the
  /// sparse engine's reinversion, bounding numerical drift.
  bool rebuild(int l) {
    const int m = pat_.m;
    if (m == 0) return true;
    double* aug = scratch_.data();  // m x 2m: [B | I] row-reduced in place
    std::fill(aug, aug + sz(m) * 2 * sz(m), 0.0);
    const int* bas = &basis_[sz(l) * sz(m)];
    for (int i = 0; i < m; ++i) {
      const int b = bas[i];
      if (b >= pat_.n) {
        aug[sz(b - pat_.n) * 2 * sz(m) + sz(i)] = 1.0;
      } else {
        for (int e = pat_.col_start[sz(b)]; e < pat_.col_start[sz(b) + 1];
             ++e) {
          aug[sz(pat_.col_entries[sz(e)].row) * 2 * sz(m) + sz(i)] =
              pat_.col_entries[sz(e)].coef;
        }
      }
      aug[sz(i) * 2 * sz(m) + sz(m + i)] = 1.0;
    }
    const std::size_t w = 2 * sz(m);
    for (int c = 0; c < m; ++c) {
      int piv = c;
      for (int r = c + 1; r < m; ++r) {
        if (std::abs(aug[sz(r) * w + sz(c)]) >
            std::abs(aug[sz(piv) * w + sz(c)])) {
          piv = r;
        }
      }
      if (std::abs(aug[sz(piv) * w + sz(c)]) < 1e-11) return false;
      if (piv != c) {
        std::swap_ranges(aug + sz(piv) * w, aug + (sz(piv) + 1) * w,
                         aug + sz(c) * w);
      }
      const double inv = 1.0 / aug[sz(c) * w + sz(c)];
      for (std::size_t k = 0; k < w; ++k) aug[sz(c) * w + k] *= inv;
      for (int r = 0; r < m; ++r) {
        if (r == c) continue;
        const double f = aug[sz(r) * w + sz(c)];
        if (f == 0.0) continue;
        double* dst = aug + sz(r) * w;
        const double* src = aug + sz(c) * w;
        for (std::size_t k = 0; k < w; ++k) dst[k] -= f * src[k];
      }
    }
    double* binv = &binv_[sz(l) * sz(m) * sz(m)];
    for (int r = 0; r < m; ++r) {
      std::copy(aug + sz(r) * w + sz(m), aug + sz(r) * w + w,
                binv + sz(r) * sz(m));
    }
    recompute_basics(l);
    lane_[sz(l)].until_rebuild = rebuild_every_;
    return true;
  }

  /// x_B = B^-1 (b - N x_N) with the nonbasic columns at their stored
  /// bound values.
  void recompute_basics(int l) {
    const int m = pat_.m;
    const int nc = pat_.ncols;
    double* xx = slab(x_, l, nc);
    const double* rh = slab(rhs_, l, m);
    const VarStatus* st = &status_[sz(l) * sz(nc)];
    y_.assign(sz(m), 0.0);  // reuse as the residual workspace
    for (int r = 0; r < m; ++r) y_[sz(r)] = rh[r];
    for (int j = 0; j < pat_.n; ++j) {
      if (st[j] == VarStatus::kBasic || xx[j] == 0.0) continue;
      for (int e = pat_.col_start[sz(j)]; e < pat_.col_start[sz(j) + 1]; ++e) {
        y_[sz(pat_.col_entries[sz(e)].row)] -=
            pat_.col_entries[sz(e)].coef * xx[j];
      }
    }
    for (int r = 0; r < m; ++r) {
      if (st[pat_.n + r] != VarStatus::kBasic && xx[pat_.n + r] != 0.0) {
        y_[sz(r)] -= xx[pat_.n + r];
      }
    }
    const double* binv = &binv_[sz(l) * sz(m) * sz(m)];
    const int* bas = &basis_[sz(l) * sz(m)];
    for (int i = 0; i < m; ++i) {
      double v = 0.0;
      const double* row = binv + sz(i) * sz(m);
      for (int k = 0; k < m; ++k) v += row[k] * y_[sz(k)];
      xx[bas[i]] = v;
    }
  }

  /// Reduced cost of one column against the dual workspace y_.
  double reduced_cost(const double* co, int j) const {
    double d = co[j];
    if (j >= pat_.n) {
      d -= y_[sz(j - pat_.n)];
    } else {
      for (int e = pat_.col_start[sz(j)]; e < pat_.col_start[sz(j) + 1]; ++e) {
        d -= y_[sz(pat_.col_entries[sz(e)].row)] *
             pat_.col_entries[sz(e)].coef;
      }
    }
    return d;
  }

  LaneState fail(int l) {
    lane_[sz(l)].state = LaneState::kFallback;
    return LaneState::kFallback;
  }

  /// FTRAN into w_: w = B^-1 a_j (column j of the flipped constraint
  /// matrix; slack columns are unit vectors, so they read straight out of
  /// B^-1).
  void ftran(const double* binv, int j) {
    const int m = pat_.m;
    if (j >= pat_.n) {
      for (int i = 0; i < m; ++i) {
        w_[sz(i)] = binv[sz(i) * sz(m) + sz(j - pat_.n)];
      }
      return;
    }
    for (int i = 0; i < m; ++i) {
      double v = 0.0;
      const double* row = binv + sz(i) * sz(m);
      for (int e = pat_.col_start[sz(j)]; e < pat_.col_start[sz(j) + 1];
           ++e) {
        v += pat_.col_entries[sz(e)].coef * row[pat_.col_entries[sz(e)].row];
      }
      w_[sz(i)] = v;
    }
  }

  /// Rank-1 B^-1 update after `enter`'s column (already FTRANed into w_)
  /// replaces the basic column of row `leave`: the pivot row is scaled by
  /// 1/pivot and eliminated from every other row — contiguous axpys over
  /// the lane's slab.
  void pivot_update(double* binv, int leave) {
    const int m = pat_.m;
    const double inv = 1.0 / w_[sz(leave)];
    double* prow = binv + sz(leave) * sz(m);
    for (int k = 0; k < m; ++k) prow[k] *= inv;
    for (int i = 0; i < m; ++i) {
      if (i == leave) continue;
      const double f = w_[sz(i)];
      if (f == 0.0) continue;
      double* row = binv + sz(i) * sz(m);
      for (int k = 0; k < m; ++k) row[k] -= f * prow[k];
    }
  }

  /// One dual simplex pivot for lane l: the basic variable of row `r` sits
  /// outside its box at distance |bound - value| in direction `vdir`
  /// (+1: below lower, -1: above upper); it leaves at `bound` and the
  /// entering column is chosen by the dual ratio test over the reduced
  /// costs (computed against y_, which step() just refreshed), so dual
  /// feasibility is preserved. No eligible column means a dual ray — the
  /// instance is primal infeasible, a certificate verdict the lane hands to
  /// the solve_lp fallback rather than certifying with dense arithmetic.
  LaneState dual_step(int l, int r, double bound, double vdir) {
    LaneCtl& ctl = lane_[sz(l)];
    const int m = pat_.m;
    const int nc = pat_.ncols;
    double* lo = slab(lower_, l, nc);
    double* up = slab(upper_, l, nc);
    double* co = slab(cost_, l, nc);
    double* xx = slab(x_, l, nc);
    VarStatus* st = &status_[sz(l) * sz(nc)];
    int* bas = &basis_[sz(l) * sz(m)];
    double* binv = &binv_[sz(l) * sz(m) * sz(m)];
    const double* rho = binv + sz(r) * sz(m);  // row r of B^-1, in place

    int enter = -1;
    double best_ratio = 0.0;
    double best_alpha = 0.0;
    for (int j = 0; j < nc; ++j) {
      if (st[j] == VarStatus::kBasic || lo[j] == up[j]) continue;
      // alpha_j = e_r^T B^-1 a_j.
      double alpha;
      if (j >= pat_.n) {
        alpha = rho[j - pat_.n];
      } else {
        alpha = 0.0;
        for (int e = pat_.col_start[sz(j)]; e < pat_.col_start[sz(j) + 1];
             ++e) {
          alpha += pat_.col_entries[sz(e)].coef * rho[pat_.col_entries[sz(e)].row];
        }
      }
      // Entering from lower moves the leaving value by -t*alpha with t > 0;
      // from upper with t < 0. Keep only columns that move it toward the
      // violated bound.
      double ratio;
      if (st[j] == VarStatus::kAtLower && vdir * alpha < -opt_.pivot_tol) {
        ratio = std::max(reduced_cost(co, j), 0.0) / -(vdir * alpha);
      } else if (st[j] == VarStatus::kAtUpper &&
                 vdir * alpha > opt_.pivot_tol) {
        ratio = std::max(-reduced_cost(co, j), 0.0) / (vdir * alpha);
      } else {
        continue;
      }
      if (ctl.bland) {
        enter = j;
        best_alpha = alpha;
        break;
      }
      if (enter < 0 || ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 &&
           std::abs(alpha) > std::abs(best_alpha))) {
        enter = j;
        best_ratio = ratio;
        best_alpha = alpha;
      }
    }
    if (enter < 0) return fail(l);

    ++ctl.iters;
    if (ctl.iters >= lane_limit_) return fail(l);

    ftran(binv, enter);
    const double piv = w_[sz(r)];  // == alpha_enter up to roundoff
    if (std::abs(piv) <= opt_.pivot_tol) return fail(l);
    const int out = bas[r];
    const double delta_out = bound - xx[out];
    const double t = -delta_out / piv;
    for (int i = 0; i < m; ++i) xx[bas[i]] -= t * w_[sz(i)];
    xx[enter] = (st[enter] == VarStatus::kAtLower ? lo[enter] : up[enter]) + t;
    xx[out] = bound;
    st[out] = vdir > 0.0 ? VarStatus::kAtLower : VarStatus::kAtUpper;
    st[enter] = VarStatus::kBasic;
    bas[r] = enter;
    ++ctl.pivots;
    pivot_update(binv, r);

    // A dual pivot is degenerate when the dual objective stalls (entering
    // reduced cost ~ 0); the primal step t is always bounded away from zero
    // here because the leaving violation is. Bland mode sticks until the
    // dual phase ends — the primal path clears it on real progress.
    if (!ctl.bland) {
      if (best_ratio <= opt_.tol) {
        if (++ctl.degen_streak > opt_.degenerate_switch) ctl.bland = true;
      } else {
        ctl.degen_streak = 0;
      }
    }
    return LaneState::kRunning;
  }

  LaneState step(int l) {
    LaneCtl& ctl = lane_[sz(l)];
    const int m = pat_.m;
    const int nc = pat_.ncols;
    if (--ctl.until_rebuild <= 0 && !rebuild(l)) return fail(l);
    double* lo = slab(lower_, l, nc);
    double* up = slab(upper_, l, nc);
    double* co = slab(cost_, l, nc);
    double* xx = slab(x_, l, nc);
    VarStatus* st = &status_[sz(l) * sz(nc)];
    int* bas = &basis_[sz(l) * sz(m)];
    double* binv = &binv_[sz(l) * sz(m) * sz(m)];

    // Duals of the current basis: y = c_B^T B^-1, accumulated row-wise so
    // each nonzero basic cost streams one contiguous B^-1 row.
    y_.assign(sz(m), 0.0);
    for (int i = 0; i < m; ++i) {
      const double cb = co[bas[i]];
      if (cb == 0.0) continue;
      const double* row = binv + sz(i) * sz(m);
      for (int k = 0; k < m; ++k) y_[sz(k)] += cb * row[k];
    }

    // Dual repair first: a hot-started lane is dual feasible by
    // construction (the template's optimal basis, deltas touching only
    // bounds and rhs), but its deltas can leave basic values outside their
    // boxes. Drive the worst violation out with dual pivots; primal pricing
    // below only runs once the lane is primal feasible. Slack-started lanes
    // are primal feasible from load() and never enter this branch.
    int vrow = -1;
    double viol = 0.0;
    double vbound = 0.0;
    double vdir = 0.0;  // +1: below lower (must rise), -1: above upper
    for (int i = 0; i < m; ++i) {
      const int b = bas[i];
      const double v = xx[b];
      const double ftol = opt_.tol * (1.0 + std::abs(v));
      if (v < lo[b] - ftol && lo[b] - v > viol) {
        viol = lo[b] - v;
        vrow = i;
        vbound = lo[b];
        vdir = 1.0;
      } else if (up[b] != kInfinity && v > up[b] + ftol && v - up[b] > viol) {
        viol = v - up[b];
        vrow = i;
        vbound = up[b];
        vdir = -1.0;
      }
    }
    if (vrow >= 0) return dual_step(l, vrow, vbound, vdir);

    // Pricing: Dantzig over exact reduced costs; Bland (lowest eligible
    // index) under sustained degeneracy for the anti-cycling guarantee.
    int enter = -1;
    double best = opt_.tol;
    double dir = 0.0;
    for (int j = 0; j < nc; ++j) {
      if (st[j] == VarStatus::kBasic || lo[j] == up[j]) continue;
      const double d = reduced_cost(co, j);
      double score = 0.0, jdir = 0.0;
      if (st[j] == VarStatus::kAtLower && d < -opt_.tol) {
        score = -d;
        jdir = 1.0;
      } else if (st[j] == VarStatus::kAtUpper && d > opt_.tol) {
        score = d;
        jdir = -1.0;
      } else {
        continue;
      }
      if (ctl.bland) {
        enter = j;
        dir = jdir;
        break;
      }
      if (score > best) {
        best = score;
        enter = j;
        dir = jdir;
      }
    }
    if (enter < 0) return verify_optimal(l);

    ftran(binv, enter);

    // Bounded ratio test: the entering column moves `t` toward its opposite
    // bound; basic value i changes by -dir * t * w_i.
    const double limit = up[enter] - lo[enter];  // may be +inf
    double best_t = limit;
    int leave = -1;
    double leave_piv = 0.0;
    bool leave_to_upper = false;
    for (int i = 0; i < m; ++i) {
      const double wi = dir * w_[sz(i)];
      if (std::abs(wi) <= opt_.pivot_tol) continue;
      const int b = bas[i];
      double t;
      bool to_upper;
      if (wi > 0.0) {
        t = (xx[b] - lo[b]) / wi;
        to_upper = false;
      } else {
        if (up[b] == kInfinity) continue;
        t = (xx[b] - up[b]) / wi;
        to_upper = true;
      }
      if (t < 0.0) t = 0.0;
      const bool better =
          leave < 0 ? t < best_t
                    : (t < best_t - 1e-12 ||
                       (t < best_t + 1e-12 &&
                        (ctl.bland ? b < bas[leave]
                                   : std::abs(w_[sz(i)]) > std::abs(leave_piv))));
      if (better) {
        best_t = std::min(best_t, t);
        leave = i;
        leave_piv = w_[sz(i)];
        leave_to_upper = to_upper;
      }
    }

    if (leave < 0 && best_t == kInfinity) {
      // Unbounded ray: a verdict that needs the certificate machinery, so
      // hand the lane to solve_lp rather than trust dense arithmetic.
      return fail(l);
    }

    ++ctl.iters;
    if (ctl.iters >= lane_limit_) return fail(l);

    if (leave < 0) {
      // Bound flip: the entering column crosses to its other bound without
      // a basis change.
      for (int i = 0; i < m; ++i) xx[bas[i]] -= dir * limit * w_[sz(i)];
      st[enter] = dir > 0.0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
      xx[enter] = dir > 0.0 ? up[enter] : lo[enter];
      ctl.degen_streak = 0;
      return LaneState::kRunning;
    }

    const double t = best_t;
    for (int i = 0; i < m; ++i) xx[bas[i]] -= dir * t * w_[sz(i)];
    xx[enter] = (dir > 0.0 ? lo[enter] : up[enter]) + dir * t;
    const int out = bas[leave];
    xx[out] = leave_to_upper ? up[out] : lo[out];
    st[out] = leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    st[enter] = VarStatus::kBasic;
    bas[leave] = enter;
    ++ctl.pivots;

    if (std::abs(w_[sz(leave)]) <= opt_.pivot_tol) return fail(l);
    pivot_update(binv, leave);

    if (t <= 1e-10) {
      if (++ctl.degen_streak > opt_.degenerate_switch) ctl.bland = true;
    } else {
      ctl.degen_streak = 0;
      ctl.bland = false;
    }
    return LaneState::kRunning;
  }

  /// Pricing found no eligible column: verify the claimed optimum (primal
  /// feasibility of bounds and rows at 1e-6) before trusting it; anything
  /// off goes to the solve_lp fallback. y_ still holds the optimal duals.
  LaneState verify_optimal(int l) {
    const int m = pat_.m;
    const int nc = pat_.ncols;
    const double* lo = slab(lower_, l, nc);
    const double* up = slab(upper_, l, nc);
    const double* co = slab(cost_, l, nc);
    const double* xx = slab(x_, l, nc);
    const double* rh = slab(rhs_, l, m);
    const double ftol = 1e-6;
    for (int j = 0; j < nc; ++j) {
      const double s = ftol * (1.0 + std::abs(xx[j]));
      if (xx[j] < lo[j] - s || xx[j] > up[j] + s) return fail(l);
    }
    std::vector<double> act(sz(m), 0.0);
    for (int j = 0; j < pat_.n; ++j) {
      if (xx[j] == 0.0) continue;
      for (int e = pat_.col_start[sz(j)]; e < pat_.col_start[sz(j) + 1]; ++e) {
        act[sz(pat_.col_entries[sz(e)].row)] +=
            pat_.col_entries[sz(e)].coef * xx[j];
      }
    }
    for (int r = 0; r < m; ++r) {
      if (std::abs(rh[r] - act[sz(r)] - xx[pat_.n + r]) >
          ftol * (1.0 + std::abs(rh[r]))) {
        return fail(l);
      }
    }

    LaneCtl& ctl = lane_[sz(l)];
    Solution& sol = ctl.solution;
    sol.status = SolveStatus::kOptimal;
    sol.iterations = ctl.iters;
    sol.pivots = ctl.pivots;
    sol.x.assign(xx, xx + pat_.n);
    double obj = 0.0;
    for (int j = 0; j < pat_.n; ++j) obj += co[j] * xx[j];
    sol.objective = pat_.maximize ? -obj : obj;
    sol.duals.assign(sz(m), 0.0);
    for (int r = 0; r < m; ++r) {
      sol.duals[sz(r)] =
          y_[sz(r)] * pat_.row_flip[sz(r)] * (pat_.maximize ? -1.0 : 1.0);
    }
    ctl.state = LaneState::kOptimal;
    return LaneState::kOptimal;
  }

  BatchPattern pat_;
  SimplexOptions opt_;
  int lanes_ = 0;
  long lane_limit_ = 0;
  int rebuild_every_ = 0;

  // Instance-major SoA arenas: lane l's slab is [l * stride, (l+1) * stride).
  std::vector<double> lower_, upper_, cost_, x_;
  std::vector<double> rhs_;
  std::vector<double> binv_;  // stride m*m, row-major within a lane
  std::vector<int> basis_;
  std::vector<VarStatus> status_;
  std::vector<LaneCtl> lane_;
  // Shared per-step workspaces (the engine itself is single-threaded; the
  // call sites parallelize across batches, not within one).
  std::vector<double> w_, y_, scratch_;
};

/// One registry flush per solve_lp_batch call (obs: bate_batch_*).
void record_batch(const BatchStats& s, std::int64_t us) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  static obs::Counter& solves = reg.counter("bate_batch_solves_total");
  static obs::Counter& instances = reg.counter("bate_batch_instances_total");
  static obs::Counter& lanes = reg.counter("bate_batch_lanes_total");
  static obs::Counter& iters =
      reg.counter("bate_batch_lockstep_iterations_total");
  static obs::Counter& fallbacks = reg.counter("bate_batch_fallbacks_total");
  static obs::Histogram& hist = reg.histogram("bate_batch_solve_us");
  solves.inc();
  instances.inc(s.instances);
  lanes.inc(s.lanes);
  iters.inc(s.lockstep_iterations);
  fallbacks.inc(s.fallbacks);
  hist.record(us);
}

}  // namespace

Model apply_delta(const Model& base, const InstanceDelta& delta) {
  check_delta(base, delta);
  Model out = base;
  for (const BoundDelta& b : delta.bounds) {
    out.variable(b.var).lower = b.lower;
    out.variable(b.var).upper = b.upper;
  }
  for (const CostDelta& c : delta.costs) {
    out.variable(c.var).objective = c.objective;
  }
  if (!delta.rhs.empty()) {
    // Constraint rhs has no mutable accessor; rebuild through the public
    // surface only when a row actually changes.
    Model rebuilt;
    rebuilt.set_sense(out.sense());
    for (int j = 0; j < out.variable_count(); ++j) {
      const Variable& v = out.variable(j);
      rebuilt.add_variable(v.lower, v.upper, v.objective, v.name);
      if (v.integer) rebuilt.set_integer(j);
    }
    std::vector<double> rhs(static_cast<std::size_t>(out.constraint_count()));
    for (int r = 0; r < out.constraint_count(); ++r) {
      rhs[static_cast<std::size_t>(r)] = out.constraint(r).rhs;
    }
    for (const RhsDelta& d : delta.rhs) {
      rhs[static_cast<std::size_t>(d.row)] = d.rhs;
    }
    for (int r = 0; r < out.constraint_count(); ++r) {
      const Constraint& c = out.constraint(r);
      rebuilt.add_constraint(c.terms, c.relation,
                             rhs[static_cast<std::size_t>(r)]);
    }
    return rebuilt;
  }
  return out;
}

std::vector<Solution> solve_lp_batch(const Model& tmpl,
                                     std::span<const InstanceDelta> deltas,
                                     const SimplexOptions& options,
                                     BatchStats* stats) {
  BATE_TRACE_SPAN("solver.batch");
  const std::int64_t t0 = obs::now_us();
  BatchStats local;
  local.instances = static_cast<long>(deltas.size());
  std::vector<Solution> out;
  out.reserve(deltas.size());
  if (deltas.empty()) {
    if (stats) stats->merge(local);
    return out;
  }

  const bool serial = options.backend != SolveBackend::kBatched ||
                      options.reference_mode;
  if (serial) {
    // The serial path: every instance through solve_lp. Also the baseline
    // the bench gates the batched path against, so it must not quietly
    // improve.
    // cold-start: instances differ in arbitrary bound/rhs/cost deltas, so
    // no basis relation holds between consecutive ones; chaining would also
    // contaminate the serial baseline the batched path is measured against.
    for (const InstanceDelta& d : deltas) {
      out.push_back(solve_lp(apply_delta(tmpl, d), options));
    }
  } else {
    for (const InstanceDelta& d : deltas) check_delta(tmpl, d);
    // Hot start: when no delta edits costs, the template's optimal basis
    // stays dual feasible for every instance (bound/rhs edits only move
    // primal values), so the whole batch starts from it — one sparse
    // template solve plus one shared factorization — and each lane runs a
    // handful of dual-repair pivots instead of a full primal path from the
    // slack basis. Cost-editing batches (or an infeasible / unbounded
    // template) keep the slack start.
    bool bounds_only = true;
    for (const InstanceDelta& d : deltas) bounds_only &= d.costs.empty();
    Basis hot;
    const Basis* hotp = nullptr;
    if (bounds_only) {
      WarmStart tw;
      const Solution tsol = solve_lp(tmpl, options, &tw);
      if (tsol.status == SolveStatus::kOptimal && !tw.basis.empty() &&
          tw.basis.compatible_with(tmpl)) {
        hot = std::move(tw.basis);
        hotp = &hot;
      }
    }
    BatchEngine engine(tmpl, deltas, options, hotp);
    engine.run();
    local.lanes = static_cast<long>(deltas.size());
    for (int l = 0; l < static_cast<int>(deltas.size()); ++l) {
      local.lockstep_iterations += engine.iterations(l);
      if (engine.optimal(l)) {
        ++local.batched_optimal;
        out.push_back(engine.take_solution(l));
        continue;
      }
      // Fallback contract: stalls, infeasible starts and certificate
      // verdicts are re-solved exactly, warm-started from the lane's last
      // basis when it made progress.
      ++local.fallbacks;
      WarmStart warm;
      if (engine.has_basis(l)) warm.basis = engine.export_basis(l);
      out.push_back(solve_lp(apply_delta(tmpl, deltas[sz(l)]), options,
                             warm.basis.empty() ? nullptr : &warm));
    }
  }

  record_batch(local, obs::now_us() - t0);
  if (stats) stats->merge(local);
  return out;
}

}  // namespace bate
