#include "solver/branch_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/cuts.h"
#include "solver/presolve.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace bate {

namespace {

/// splitmix64 finalizer. Node tie keys are derived from the parent's key
/// and the branch direction, so a node's key depends only on its position
/// in the tree (and the seed) — never on scheduling or insertion order.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One open node: a single bound delta against the parent; the node's full
/// bound set is its chain to the root. Children share the parent
/// relaxation's final basis (one heap copy per expanded node, not per
/// child) for warm starts.
struct Node {
  std::shared_ptr<const Node> parent;
  std::shared_ptr<const Basis> warm;  // parent relaxation's final basis
  double lp_bound = -kInfinity;       // parent bound (minimization sense)
  std::uint64_t tie = 0;              // deterministic order tie-break key
  double lower = 0.0;                 // the delta: var's bounds at this node
  double upper = 0.0;
  /// Signed pseudo-cost step of the branch that created this node: +f for
  /// the down child, -(1 - f) for the up child (f = parent fractionality of
  /// `var`). The observed bound degradation divided by |pc_step| is this
  /// branch's per-unit pseudo-cost sample; the sign encodes the direction.
  double pc_step = 0.0;
  int var = -1;                       // -1: root (no delta)
  int depth = 0;
};

// A node must stay one flat bound delta — no per-node containers. If this
// fires, someone re-introduced accumulated bound copies (the pre-PR 3 Node
// duplicated the whole path's bound vector into every child).
static_assert(sizeof(Node) <= 2 * sizeof(std::shared_ptr<const Node>) + 48,
              "branch_bound: Node grew past a single bound delta");

struct NodeOrder {
  bool operator()(const std::shared_ptr<const Node>& a,
                  const std::shared_ptr<const Node>& b) const {
    if (a->lp_bound != b->lp_bound) {
      return a->lp_bound > b->lp_bound;  // best (smallest) bound first
    }
    return a->tie > b->tie;  // seeded, position-derived: deterministic
  }
};

using OpenQueue =
    std::priority_queue<std::shared_ptr<const Node>,
                        std::vector<std::shared_ptr<const Node>>, NodeOrder>;

/// Root pseudo-cost tables, frozen before the tree search starts (strong
/// branching fills them; `fallback` covers never-probed variables). During
/// the search they are refined per node with the observations along that
/// node's own ancestor chain — never with cross-tree state — so a branching
/// decision is a pure function of tree position and the serial and parallel
/// drivers grow identical trees.
struct PseudoCosts {
  bool active = false;
  double fallback = 1.0;            // per-unit degradation when unobserved
  std::vector<double> down_sum, up_sum;
  std::vector<int> down_n, up_n;

  void init(int vars) {
    active = true;
    down_sum.assign(static_cast<std::size_t>(vars), 0.0);
    up_sum.assign(static_cast<std::size_t>(vars), 0.0);
    down_n.assign(static_cast<std::size_t>(vars), 0);
    up_n.assign(static_cast<std::size_t>(vars), 0);
  }
  void observe(int var, bool down, double per_unit) {
    const auto j = static_cast<std::size_t>(var);
    (down ? down_sum : up_sum)[j] += per_unit;
    ++(down ? down_n : up_n)[j];
  }
};

/// Immutable per-search context shared by the serial and parallel drivers.
struct Search {
  const Model& model;
  const BranchBoundOptions& opt;
  bool maximize;
  std::vector<int> int_vars;
  std::int64_t start_us;  // obs::now_us() when the search began
  PseudoCosts pc;
  /// Root relaxation already solved by prepare_root on the search model
  /// (final cut rows and probe-proven bounds included), with work counters
  /// zeroed (the prep pass accounts its own LP work). Non-null only when
  /// the tree warm-starts: the root expansion adopts it instead of
  /// re-solving from the very basis that produced it.
  const Solution* root_relax = nullptr;

  double to_min(double v) const { return maximize ? -v : v; }
  bool out_of_time() const {
    if (opt.time_limit_seconds <= 0.0) return false;
    return static_cast<double>(obs::now_us() - start_us) * 1e-6 >
           opt.time_limit_seconds;
  }
};

/// Everything one node expansion produces; the driver merges it into the
/// search state (the parallel driver under its queue lock).
struct Expansion {
  Solution relax;
  double bound_min = kInfinity;
  bool warm_used = false;
  bool integer_feasible = false;
  bool pc_branched = false;  // branching variable chosen by pseudo-cost score
  long deltas = 0;
  std::vector<std::shared_ptr<const Node>> children;
};

/// What the root preparation pass (cuts + strong branching) hands the tree
/// search: the final root basis on the (possibly cut-augmented) model, and
/// the LP work it spent, folded into the returned solution's totals.
struct RootPrep {
  Basis basis;
  /// The final root relaxation on the prepared model (kOptimal only when
  /// the root solved cleanly); `basis` is exactly its final basis.
  Solution relax;
  long iters = 0;
  long pivots = 0;
  long dual_pivots = 0;
};

/// Runs the root cut-and-resolve loop and strong branching on `work` (the
/// search's private model copy — cut rows are appended to it, and bounds
/// proven impossible by a one-sided infeasible probe are tightened in
/// place). `root_warm`, when set, seeds the first root solve and receives
/// that solve's basis back immediately — before any cut row lands — so the
/// caller's handle keeps the pre-cut shape its postsolve mapping expects.
RootPrep prepare_root(Model& work, const BranchBoundOptions& opt,
                      const std::vector<int>& int_vars, bool maximize,
                      WarmStart* root_warm, BranchBoundStats& st,
                      PseudoCosts& pc) {
  BATE_TRACE_SPAN("solver.bnb_root_prep");
  RootPrep prep;
  const auto to_min = [maximize](double v) { return maximize ? -v : v; };

  WarmStart root_basis;  // warm-start handle chained through every re-solve
  if (root_warm != nullptr && !root_warm->basis.empty() &&
      root_warm->basis.compatible_with(work)) {
    root_basis.basis = root_warm->basis;
  }
  Solution relax = solve_lp(work, opt.lp, &root_basis);
  prep.iters += relax.iterations;
  prep.pivots += relax.pivots;
  prep.dual_pivots += relax.dual_pivots;
  if (root_warm != nullptr) {
    root_warm->basis = root_basis.basis;
    root_warm->used = root_basis.used;
  }
  if (relax.status != SolveStatus::kOptimal) {
    // Infeasible / unbounded / limit roots: nothing to cut or probe. The
    // driver's root node re-solves and reports the verdict as before.
    prep.basis = std::move(root_basis.basis);
    prep.relax = std::move(relax);
    return prep;
  }

  const auto fractionality = [&](int j) {
    const double v = relax.x[static_cast<std::size_t>(j)];
    return std::abs(v - std::round(v));
  };
  const auto has_fractional = [&] {
    for (int j : int_vars) {
      if (fractionality(j) > opt.integer_tol) return true;
    }
    return false;
  };

  const double integer_share =
      work.variable_count() > 0
          ? static_cast<double>(int_vars.size()) /
                static_cast<double>(work.variable_count())
          : 0.0;
  if (opt.root_cuts && work.constraint_count() > 0 &&
      integer_share >= opt.min_cut_integer_share) {
    CutOptions copt;
    copt.integer_tol = opt.integer_tol;
    CutPool cut_pool(opt.max_cuts, copt.min_violation, 0.95);
    double bound_min = to_min(relax.objective);
    for (int round = 0; round < opt.max_cut_rounds; ++round) {
      if (!has_fractional()) break;  // integral root: cuts have no target
      long gomory = 0;
      long cover = 0;
      for (Cut& cut : separate_gomory(work, root_basis.basis, relax.x, copt)) {
        if (cut_pool.add(std::move(cut))) ++gomory;
      }
      for (Cut& cut : separate_cover(work, relax.x, copt)) {
        if (cut_pool.add(std::move(cut))) ++cover;
      }
      std::vector<Cut> fresh = cut_pool.drain();
      if (fresh.empty()) break;
      // Append the accepted rows and extend the basis with their slacks
      // basic: the new slacks are negative at the separating point (the cut
      // is violated there), so the re-solve below is exactly the
      // primal-infeasible / dual-feasible case the dual simplex serves.
      for (const Cut& cut : fresh) {
        work.add_constraint(cut.terms, cut.relation, cut.rhs);
        const int row = work.constraint_count() - 1;
        root_basis.basis.basic.push_back(work.variable_count() + row);
        root_basis.basis.status.push_back(VarStatus::kBasic);
        root_basis.basis.constraint_count = work.constraint_count();
      }
      st.gomory_cuts += gomory;
      st.cover_cuts += cover;
      ++st.cut_rounds;
      relax = solve_lp(work, opt.lp, &root_basis);
      prep.iters += relax.iterations;
      prep.pivots += relax.pivots;
      prep.dual_pivots += relax.dual_pivots;
      if (relax.status != SolveStatus::kOptimal) break;
      // Tail-off: a round that barely moved the bound predicts the next
      // one won't either, and its rows tax every node re-solve below.
      const double new_bound = to_min(relax.objective);
      const double gain = new_bound - bound_min;
      bound_min = new_bound;
      if (gain <
          opt.min_cut_improvement * std::max(1.0, std::abs(bound_min))) {
        break;
      }
    }
  }

  if (opt.pseudo_cost_branching && relax.status == SolveStatus::kOptimal) {
    pc.init(work.variable_count());
    // Probe the most fractional candidates with one warm child solve per
    // direction; a one-sided infeasible probe proves the complementary
    // bound for every feasible point and tightens the root in place.
    std::vector<int> candidates;
    for (int j : int_vars) {
      if (fractionality(j) > opt.integer_tol) candidates.push_back(j);
    }
    std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
      const double fa = fractionality(a);
      const double fb = fractionality(b);
      if (fa != fb) return fa > fb;
      return a < b;
    });
    if (static_cast<int>(candidates.size()) > opt.strong_branch_candidates) {
      candidates.resize(static_cast<std::size_t>(opt.strong_branch_candidates));
    }
    const double root_min = to_min(relax.objective);
    bool bounds_fixed = false;
    double obs_sum = 0.0;
    long obs_n = 0;
    for (int j : candidates) {
      Variable& var = work.variable(j);
      const double v = relax.x[static_cast<std::size_t>(j)];
      const double f = v - std::floor(v);
      const double saved_lower = var.lower;
      const double saved_upper = var.upper;
      // A side whose rounded bound crosses the variable's own bound is
      // vacuously infeasible (same guard as the child construction in
      // expand); never hand the LP a crossed bound pair.
      bool down_infeasible = std::floor(v) < saved_lower - 1e-12;
      bool up_infeasible = std::ceil(v) > saved_upper + 1e-12;
      for (const bool down : {true, false}) {
        if (down ? down_infeasible : up_infeasible) continue;
        if (down) {
          var.upper = std::floor(v);
        } else {
          var.lower = std::ceil(v);
        }
        WarmStart probe_warm;
        probe_warm.basis = root_basis.basis;
        const Solution child = solve_lp(work, opt.lp, &probe_warm);
        var.lower = saved_lower;
        var.upper = saved_upper;
        ++st.strong_branch_solves;
        prep.iters += child.iterations;
        prep.pivots += child.pivots;
        prep.dual_pivots += child.dual_pivots;
        const double step = down ? f : 1.0 - f;
        if (child.status == SolveStatus::kOptimal) {
          const double per_unit = std::max(0.0, to_min(child.objective) -
                                                    root_min) /
                                  std::max(step, 1e-6);
          pc.observe(j, down, per_unit);
          obs_sum += per_unit;
          ++obs_n;
        } else if (child.status == SolveStatus::kInfeasible) {
          (down ? down_infeasible : up_infeasible) = true;
        }
      }
      // Exactly one side impossible: every feasible point satisfies the
      // other side's bound, and that bound cannot cross (the surviving
      // side's guard held). A doubly-infeasible variable gets no fix and
      // leaves the search to certify infeasibility.
      if (down_infeasible && !up_infeasible) {
        var.lower = std::ceil(v);
        bounds_fixed = true;
      } else if (up_infeasible && !down_infeasible) {
        var.upper = std::floor(v);
        bounds_fixed = true;
      }
    }
    if (obs_n > 0) {
      pc.fallback = std::max(1e-3, obs_sum / static_cast<double>(obs_n));
    }
    if (bounds_fixed) {
      relax = solve_lp(work, opt.lp, &root_basis);
      prep.iters += relax.iterations;
      prep.pivots += relax.pivots;
      prep.dual_pivots += relax.dual_pivots;
    }
  }

  prep.basis = std::move(root_basis.basis);
  prep.relax = std::move(relax);
  return prep;
}

/// Deterministic incumbent acceptance: a strictly better objective wins;
/// equal objectives break ties lexicographically on x, so the final
/// incumbent of a run-to-optimality search does not depend on the order in
/// which workers complete nodes.
bool better_incumbent(double cand_min, const std::vector<double>& cand_x,
                      double best_min, const Solution& best) {
  if (cand_min != best_min) return cand_min < best_min;
  return std::lexicographical_compare(cand_x.begin(), cand_x.end(),
                                      best.x.begin(), best.x.end());
}

/// Applies the node's bound chain to `work`, solves the relaxation
/// (warm-started from the parent basis when enabled), restores `work`, and
/// builds the children. Touches no shared search state beyond the immutable
/// context and the `incumbent_min` snapshot, so expansions of distinct
/// nodes run concurrently on per-worker `work` copies.
Expansion expand(const Search& s, Model& work,
                 const std::shared_ptr<const Node>& node, double incumbent_min,
                 WarmStart* root_warm) {
  Expansion out;

  // Apply the chain root-first so deeper deltas override ancestors.
  std::vector<const Node*> chain;
  for (const Node* p = node.get(); p != nullptr && p->var >= 0;
       p = p->parent.get()) {
    chain.push_back(p);
  }
  std::vector<std::pair<int, std::pair<double, double>>> saved;
  saved.reserve(chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    Variable& v = work.variable((*it)->var);
    saved.push_back({(*it)->var, {v.lower, v.upper}});
    v.lower = (*it)->lower;
    v.upper = (*it)->upper;
  }

  const bool is_root = node->var < 0;
  WarmStart ws;
  if (is_root && root_warm != nullptr) {
    ws.basis = root_warm->basis;
  } else if (s.opt.warm_start_nodes && node->warm != nullptr) {
    ws.basis = *node->warm;
  }
  const bool track_basis =
      s.opt.warm_start_nodes || (is_root && root_warm != nullptr);
  if (is_root && s.root_relax != nullptr && node->warm != nullptr) {
    // prepare_root already solved this exact model from this exact basis;
    // re-solving would install the optimal basis only to price it and
    // conclude it is optimal. Adopt the prep result (ws.basis already holds
    // the root basis for the children).
    out.relax = *s.root_relax;
    out.warm_used = true;
  } else {
    out.relax = solve_lp(work, s.opt.lp, track_basis ? &ws : nullptr);
    out.warm_used = ws.used;
  }

  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
    work.variable(it->first).lower = it->second.first;
    work.variable(it->first).upper = it->second.second;
  }

  if (is_root && root_warm != nullptr) {
    // Hand the root relaxation's final basis back to the caller, who chains
    // it into the next related solve (admission re-checks, recovery).
    root_warm->basis = ws.basis;
    root_warm->used = ws.used;
  }

  if (out.relax.status != SolveStatus::kOptimal) return out;
  out.bound_min = s.to_min(out.relax.objective);
  if (out.bound_min >= incumbent_min - s.opt.gap_tol) return out;  // pruned

  int branch_var = -1;
  if (s.pc.active) {
    // Pseudo-cost selection: the frozen root tables refined with the
    // observed per-unit degradations along this node's own ancestor chain
    // (child realized bound minus parent bound over |pc_step|). Chain-local
    // by design — the choice is a pure function of tree position, so the
    // serial and parallel drivers branch identically.
    struct ChainObs {
      int var;
      bool down;
      double per_unit;
    };
    std::vector<ChainObs> chain_obs;
    chain_obs.reserve(chain.size());
    double realized = out.bound_min;
    for (const Node* p : chain) {  // node first, then ancestors
      if (p->pc_step != 0.0 && std::isfinite(realized) &&
          std::isfinite(p->lp_bound)) {
        chain_obs.push_back({p->var, p->pc_step > 0.0,
                             std::max(0.0, realized - p->lp_bound) /
                                 std::abs(p->pc_step)});
      }
      realized = p->lp_bound;
    }
    const auto estimate = [&](int j, bool down) {
      const auto idx = static_cast<std::size_t>(j);
      double sum = down ? s.pc.down_sum[idx] : s.pc.up_sum[idx];
      int n = down ? s.pc.down_n[idx] : s.pc.up_n[idx];
      for (const ChainObs& o : chain_obs) {
        if (o.var == j && o.down == down) {
          sum += o.per_unit;
          ++n;
        }
      }
      return n > 0 ? sum / n : s.pc.fallback;
    };
    double best_score = -1.0;
    for (int j : s.int_vars) {
      const double v = out.relax.x[static_cast<std::size_t>(j)];
      const double f = v - std::floor(v);
      if (std::min(f, 1.0 - f) <= s.opt.integer_tol) continue;
      const double score = std::max(1e-6, estimate(j, true) * f) *
                           std::max(1e-6, estimate(j, false) * (1.0 - f));
      if (score > best_score) {  // ties keep the smallest variable index
        best_score = score;
        branch_var = j;
      }
    }
    out.pc_branched = branch_var >= 0;
  } else {
    // Most fractional integer variable.
    double best_frac = s.opt.integer_tol;
    for (int j : s.int_vars) {
      const double v = out.relax.x[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac > best_frac) {
        best_frac = frac;
        branch_var = j;
      }
    }
  }

  if (branch_var < 0) {
    // Integer feasible: round off tolerance noise and offer as incumbent.
    for (int j : s.int_vars) {
      out.relax.x[static_cast<std::size_t>(j)] =
          std::round(out.relax.x[static_cast<std::size_t>(j)]);
    }
    // Rounding may only absorb tolerance noise, never move the point off
    // the feasible set the relaxation certified.
    BATE_DCHECK_MSG(s.model.feasible(out.relax.x, 1e-4),
                    "branch_bound: rounded incumbent infeasible");
    out.integer_feasible = true;
    return out;
  }

  // Branch within the bounds active at this node. The nearest ancestor
  // delta on branch_var already carries the whole path's intersection.
  double lo = s.model.variable(branch_var).lower;
  double hi = s.model.variable(branch_var).upper;
  for (const Node* p = node.get(); p != nullptr && p->var >= 0;
       p = p->parent.get()) {
    if (p->var == branch_var) {
      lo = p->lower;
      hi = p->upper;
      break;
    }
  }

  std::shared_ptr<const Basis> child_basis;
  if (s.opt.warm_start_nodes) {
    child_basis = std::make_shared<const Basis>(std::move(ws.basis));
  }
  const double v = out.relax.x[static_cast<std::size_t>(branch_var)];
  const double branch_frac = v - std::floor(v);
  auto make_child = [&](double clo, double chi, std::uint64_t salt,
                        double pc_step) {
    auto child = std::make_shared<Node>();
    child->parent = node;
    child->warm = child_basis;
    child->lp_bound = out.bound_min;
    child->tie = mix64(node->tie ^ salt);
    child->var = branch_var;
    child->lower = clo;
    child->upper = chi;
    child->pc_step = pc_step;
    child->depth = node->depth + 1;
    ++out.deltas;
    out.children.push_back(std::move(child));
  };
  if (std::floor(v) >= lo - 1e-12) {
    make_child(lo, std::floor(v), 0x2545f491ull, branch_frac);
  }
  if (std::ceil(v) <= hi + 1e-12) {
    make_child(std::ceil(v), hi, 0x9d2c5681ull, -(1.0 - branch_frac));
  }
  return out;
}

/// Final bound accounting shared by both drivers. `lost_bound_min` is the
/// weakest (smallest, minimization sense) bound of any subtree the search
/// did not close — kInfinity when the tree was fully explored, which is
/// exactly when the verdict is proven.
void finish_bound_stats(const Search& s, BranchBoundStats& st,
                        double lost_bound_min, double incumbent_min) {
  st.proven = lost_bound_min == kInfinity;
  const double bound_min = std::min(lost_bound_min, incumbent_min);
  st.best_bound = s.maximize ? -bound_min : bound_min;
  if (st.proven) {
    st.mip_gap = 0.0;
  } else if (incumbent_min < kInfinity) {
    st.mip_gap =
        (incumbent_min - bound_min) / std::max(1.0, std::abs(incumbent_min));
  } else {
    st.mip_gap = 1.0;
  }
}

Solution run_serial(const Search& s, std::shared_ptr<const Node> root,
                    WarmStart* root_warm, BranchBoundStats& st) {
  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_min = kInfinity;

  OpenQueue open;
  open.push(std::move(root));
  st.nodes_created = 1;
  st.open_peak = 1;

  Model work = s.model;  // mutated bounds per node, restored afterwards
  long popped = 0;
  long iters = 0;
  long pivots = 0;
  long dual_pivots = 0;
  bool budget_hit = false;
  // Weakest bound whose subtree the search failed to close (budget break,
  // LP iteration limit, early stop); kInfinity while the tree stays tight.
  double lost_bound_min = kInfinity;

  while (!open.empty()) {
    const auto node = open.top();
    open.pop();
    if (node->lp_bound >= incumbent_min - s.opt.gap_tol) {  // pruned
      ++st.nodes_pruned;
      continue;
    }
    if (++popped > s.opt.node_limit || s.out_of_time()) {
      budget_hit = true;
      lost_bound_min = std::min(lost_bound_min, node->lp_bound);
      break;
    }

    Expansion e = expand(s, work, node, incumbent_min, root_warm);
    ++st.nodes_solved;
    if (e.warm_used) ++st.warm_started_nodes;
    if (e.pc_branched) ++st.pseudo_cost_branches;
    st.max_depth = std::max(st.max_depth, node->depth);
    iters += e.relax.iterations;
    pivots += e.relax.pivots;
    dual_pivots += e.relax.dual_pivots;

    if (e.relax.status == SolveStatus::kInfeasible) continue;
    if (e.relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation makes the MILP unbounded or infeasible;
      // report it directly (our models never hit this in practice).
      e.relax.iterations = iters;
      e.relax.pivots = pivots;
      e.relax.dual_pivots = dual_pivots;
      e.relax.nodes = st.nodes_solved;
      st.proven = true;
      st.mip_gap = 0.0;
      return e.relax;
    }
    if (e.relax.status == SolveStatus::kIterationLimit) {
      budget_hit = true;
      lost_bound_min = std::min(lost_bound_min, node->lp_bound);
      continue;
    }
    if (e.integer_feasible) {
      if (better_incumbent(e.bound_min, e.relax.x, incumbent_min, incumbent)) {
        incumbent_min = e.bound_min;
        incumbent = std::move(e.relax);
        incumbent.status = SolveStatus::kOptimal;
        ++st.incumbent_updates;
      }
      if (s.opt.stop_at_first_incumbent) break;
      continue;
    }
    st.nodes_created += static_cast<long>(e.children.size());
    st.bound_deltas_allocated += e.deltas;
    for (auto& c : e.children) open.push(std::move(c));
    st.open_peak = std::max(st.open_peak, static_cast<long>(open.size()));
  }

  if (budget_hit) {
    // kIterationLimit either carries the best incumbent (x non-empty) or,
    // with no incumbent found, reports that neither feasibility nor
    // infeasibility was established within the budget (x empty).
    incumbent.status = SolveStatus::kIterationLimit;
  }
  if (!open.empty()) {
    lost_bound_min = std::min(lost_bound_min, open.top()->lp_bound);
  }
  finish_bound_stats(s, st, lost_bound_min, incumbent_min);
  incumbent.iterations = iters;
  incumbent.pivots = pivots;
  incumbent.dual_pivots = dual_pivots;
  incumbent.nodes = st.nodes_solved;
  return incumbent;
}

Solution run_parallel(const Search& s, std::shared_ptr<const Node> root,
                      WarmStart* root_warm, BranchBoundStats& st,
                      ThreadPool& pool) {
  // Shared best-bound search state. Workers pop the globally best open
  // node, expand it unlocked on a worker-local model copy, and merge the
  // result back under `mu`. `inflight` counts popped-but-unmerged nodes so
  // idle workers know whether more work can still appear; while waiting
  // they drain unrelated pool tasks via run_one() instead of sleeping.
  struct SharedState {
    Mutex mu{LockRank::kSolver, "bnb shared"};
    CondVar cv;
    OpenQueue open BATE_GUARDED_BY(mu);
    int inflight BATE_GUARDED_BY(mu) = 0;
    long popped BATE_GUARDED_BY(mu) = 0;
    bool stop BATE_GUARDED_BY(mu) = false;
    bool budget_hit BATE_GUARDED_BY(mu) = false;
    bool unbounded BATE_GUARDED_BY(mu) = false;
    Solution unbounded_sol BATE_GUARDED_BY(mu);
    double incumbent_min BATE_GUARDED_BY(mu) = kInfinity;
    Solution incumbent BATE_GUARDED_BY(mu);
    long iters BATE_GUARDED_BY(mu) = 0;
    long pivots BATE_GUARDED_BY(mu) = 0;
    long dual_pivots BATE_GUARDED_BY(mu) = 0;
    double lost_bound_min BATE_GUARDED_BY(mu) = kInfinity;
  } sh;
  sh.incumbent.status = SolveStatus::kInfeasible;
  sh.open.push(std::move(root));
  st.nodes_created = 1;
  st.open_peak = 1;

  const int workers = pool.thread_count() + 1;  // caller participates
  pool.parallel_for(workers, [&](int) {
    Model work = s.model;
    MutexLock lk(sh.mu);
    for (;;) {
      while (!sh.stop && sh.open.empty() && sh.inflight > 0) {
        lk.unlock();
        const bool ran = pool.run_one();
        lk.lock();
        if (!ran && !sh.stop && sh.open.empty() && sh.inflight > 0) {
          sh.cv.wait_for(sh.mu, std::chrono::microseconds(200));
        }
      }
      if (sh.stop || sh.open.empty()) return;  // empty implies inflight == 0
      auto node = sh.open.top();
      sh.open.pop();
      if (node->lp_bound >= sh.incumbent_min - s.opt.gap_tol) {
        ++st.nodes_pruned;
        continue;
      }
      if (++sh.popped > s.opt.node_limit || s.out_of_time()) {
        sh.budget_hit = true;
        sh.lost_bound_min = std::min(sh.lost_bound_min, node->lp_bound);
        sh.stop = true;
        sh.cv.notify_all();
        return;
      }
      ++sh.inflight;
      const double incumbent_snapshot = sh.incumbent_min;
      lk.unlock();

      Expansion e;
      try {
        e = expand(s, work, node, incumbent_snapshot, root_warm);
      } catch (...) {
        // Unblock the other workers before parallel_for rethrows this on
        // the caller; a worker that exits without merging would hang them.
        lk.lock();
        --sh.inflight;
        sh.stop = true;
        sh.cv.notify_all();
        throw;
      }

      lk.lock();
      --sh.inflight;
      ++st.nodes_solved;
      if (e.warm_used) ++st.warm_started_nodes;
      if (e.pc_branched) ++st.pseudo_cost_branches;
      st.max_depth = std::max(st.max_depth, node->depth);
      sh.iters += e.relax.iterations;
      sh.pivots += e.relax.pivots;
      sh.dual_pivots += e.relax.dual_pivots;
      switch (e.relax.status) {
        case SolveStatus::kInfeasible:
          break;
        case SolveStatus::kUnbounded:
          sh.unbounded = true;
          sh.unbounded_sol = std::move(e.relax);
          sh.stop = true;
          break;
        case SolveStatus::kIterationLimit:
          sh.budget_hit = true;
          sh.lost_bound_min = std::min(sh.lost_bound_min, node->lp_bound);
          break;
        case SolveStatus::kOptimal:
          if (e.integer_feasible) {
            if (better_incumbent(e.bound_min, e.relax.x, sh.incumbent_min,
                                 sh.incumbent)) {
              sh.incumbent_min = e.bound_min;
              sh.incumbent = std::move(e.relax);
              sh.incumbent.status = SolveStatus::kOptimal;
              ++st.incumbent_updates;
            }
            if (s.opt.stop_at_first_incumbent) sh.stop = true;
          } else {
            st.nodes_created += static_cast<long>(e.children.size());
            st.bound_deltas_allocated += e.deltas;
            for (auto& c : e.children) sh.open.push(std::move(c));
            st.open_peak =
                std::max(st.open_peak, static_cast<long>(sh.open.size()));
          }
          break;
      }
      sh.cv.notify_all();
      if (sh.stop) return;
    }
  });

  Solution out;
  if (sh.unbounded) {
    out = std::move(sh.unbounded_sol);
    st.proven = true;
    st.mip_gap = 0.0;
  } else {
    out = std::move(sh.incumbent);
    if (sh.budget_hit) out.status = SolveStatus::kIterationLimit;
    if (!sh.open.empty()) {
      sh.lost_bound_min =
          std::min(sh.lost_bound_min, sh.open.top()->lp_bound);
    }
    finish_bound_stats(s, st, sh.lost_bound_min, sh.incumbent_min);
  }
  out.iterations = sh.iters;
  out.pivots = sh.pivots;
  out.dual_pivots = sh.dual_pivots;
  out.nodes = st.nodes_solved;
  return out;
}

/// The branch & bound search itself, on whatever model it is given (the
/// presolved reduction or, when presolve is off, the original).
Solution run_search(const Model& model, const BranchBoundOptions& options,
                    WarmStart* root_warm, BranchBoundStats& st) {
  const bool maximize = model.sense() == Sense::kMaximize;
  std::vector<int> int_vars;
  for (int j = 0; j < model.variable_count(); ++j) {
    if (model.variable(j).integer) int_vars.push_back(j);
  }

  auto root = std::make_shared<Node>();
  root->tie = mix64(options.tie_break_seed ^ 0x6a09e667f3bcc908ull);

  // Root preparation: cuts and strong branching run on a private augmented
  // copy (the search then explores that copy — children inherit the cut
  // rows through their re-solves). Reference mode keeps the plain
  // relaxation tree as the oracle.
  const bool prep_on = !options.lp.reference_mode && !int_vars.empty() &&
                       (options.root_cuts || options.pseudo_cost_branching);
  Model augmented;
  const Model* search_model = &model;
  PseudoCosts pc;
  RootPrep prep;
  WarmStart* driver_warm = root_warm;
  if (prep_on) {
    augmented = model;
    prep = prepare_root(augmented, options, int_vars, maximize, root_warm, st,
                        pc);
    search_model = &augmented;
    // The caller's handle already received the pre-cut root basis inside
    // prepare_root; the tree itself restarts from the post-cut basis held
    // by the root node, so the drivers must not touch the handle again.
    driver_warm = nullptr;
    if (!prep.basis.empty()) {
      root->warm = std::make_shared<const Basis>(std::move(prep.basis));
    }
  }

  Search s{*search_model, options,    maximize,
           std::move(int_vars),       obs::now_us(), std::move(pc)};
  if (prep_on && options.warm_start_nodes &&
      prep.relax.status == SolveStatus::kOptimal) {
    // Hand the already-solved root relaxation to the drivers. Work counters
    // are zeroed — the prep pass's totals are folded into `sol` below, and
    // the adopted copy must not count them twice. The cold configuration
    // (warm_start_nodes off) keeps re-solving the root from scratch: its
    // whole point is measuring cold per-node solves.
    prep.relax.iterations = prep.relax.pivots = prep.relax.dual_pivots = 0;
    prep.relax.refactorizations = prep.relax.pricing_resets = 0;
    prep.relax.nodes = 0;
    prep.relax.rows_removed = prep.relax.cols_removed = 0;
    prep.relax.presolve_us = 0;
    s.root_relax = &prep.relax;
  }

  ThreadPool* pool = options.pool;
  if (pool != nullptr && pool->current_worker() >= 0) {
    pool = nullptr;  // already inside the pool: serial fallback (no nesting)
  }
  if (pool != nullptr &&
      search_model->constraint_count() < options.parallel_min_rows) {
    pool = nullptr;  // small tree: the queue lock costs more than it buys
  }
  st.used_parallel = pool != nullptr;
  Solution sol =
      pool != nullptr
          ? run_parallel(s, std::move(root), driver_warm, st, *pool)
          : run_serial(s, std::move(root), driver_warm, st);
  sol.iterations += prep.iters;
  sol.pivots += prep.pivots;
  sol.dual_pivots += prep.dual_pivots;
  return sol;
}

/// One registry flush per MILP solve; the node loops only bump the plain
/// BranchBoundStats fields (serial, or under the queue lock in parallel).
void record_milp_solve(const BranchBoundStats& st, std::int64_t total_us) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  static obs::Counter& solves = reg.counter("bate_bnb_solves_total");
  static obs::Counter& created = reg.counter("bate_bnb_nodes_created_total");
  static obs::Counter& solved = reg.counter("bate_bnb_nodes_solved_total");
  static obs::Counter& pruned = reg.counter("bate_bnb_nodes_pruned_total");
  static obs::Counter& incumbents =
      reg.counter("bate_bnb_incumbent_updates_total");
  static obs::Counter& warm = reg.counter("bate_bnb_warm_started_nodes_total");
  static obs::Counter& gomory = reg.counter("bate_bnb_gomory_cuts_total");
  static obs::Counter& cover = reg.counter("bate_bnb_cover_cuts_total");
  static obs::Counter& cut_rounds = reg.counter("bate_bnb_cut_rounds_total");
  static obs::Counter& strong =
      reg.counter("bate_bnb_strong_branch_solves_total");
  static obs::Counter& pc_branches =
      reg.counter("bate_bnb_pseudo_cost_branches_total");
  static obs::Gauge& open_peak = reg.gauge("bate_bnb_open_peak");
  static obs::Histogram& solve_us = reg.histogram("bate_bnb_solve_us");
  solves.inc();
  created.inc(st.nodes_created);
  solved.inc(st.nodes_solved);
  pruned.inc(st.nodes_pruned);
  incumbents.inc(st.incumbent_updates);
  warm.inc(st.warm_started_nodes);
  gomory.inc(st.gomory_cuts);
  cover.inc(st.cover_cuts);
  cut_rounds.inc(st.cut_rounds);
  strong.inc(st.strong_branch_solves);
  pc_branches.inc(st.pseudo_cost_branches);
  open_peak.max_of(static_cast<double>(st.open_peak));
  solve_us.record(total_us);
}

Solution solve_milp_impl(const Model& model, const BranchBoundOptions& options,
                         WarmStart* root_warm, BranchBoundStats& st) {
  if (!model.has_integers()) {
    Solution sol = solve_lp(model, options.lp, root_warm);
    st.proven = sol.status == SolveStatus::kOptimal ||
                sol.status == SolveStatus::kInfeasible ||
                sol.status == SolveStatus::kUnbounded;
    st.best_bound = sol.objective;
    st.mip_gap = st.proven ? 0.0 : 1.0;
    return sol;
  }

  // Presolve once at the root (MILP mode: integer bounds rounded inward,
  // continuous-only reductions skipped) and search the reduced model; the
  // per-node bound deltas compose on top of the reduction because branching
  // only ever touches integer columns that survived it. Nodes solve with
  // presolve off — the root reduction already covers them.
  if (!options.lp.presolve || options.lp.reference_mode) {
    return run_search(model, options, root_warm, st);
  }
  const std::int64_t t0 = obs::now_us();
  PresolveOptions popt;
  popt.for_milp = true;
  PresolveResult pre = [&] {
    BATE_TRACE_SPAN("solver.presolve");
    return presolve_model(model, popt);
  }();
  const long pus = static_cast<long>(obs::now_us() - t0);
  if (pre.infeasible) {
    st.proven = true;
    st.mip_gap = 0.0;
    Solution sol;
    sol.status = SolveStatus::kInfeasible;
    sol.x.resize(static_cast<std::size_t>(model.variable_count()));
    for (int j = 0; j < model.variable_count(); ++j) {
      sol.x[static_cast<std::size_t>(j)] = model.variable(j).lower;
    }
    sol.rows_removed = pre.stats.rows_removed;
    sol.cols_removed = pre.stats.cols_removed;
    sol.presolve_us = pus;
    if (root_warm) {
      // Same contract as solve_lp: the handle keeps a full-shape basis even
      // when presolve settles the verdict before the engine runs.
      root_warm->used = false;
      root_warm->basis = slack_basis(model);
    }
    return sol;
  }
  BranchBoundOptions inner = options;
  inner.lp.presolve = false;
  if (pre.post.trivial()) {
    Solution sol = run_search(model, inner, root_warm, st);
    sol.presolve_us = pus;
    return sol;
  }
  WarmStart reduced_warm;
  WarmStart* rw = nullptr;
  if (root_warm) {
    root_warm->used = false;
    if (!root_warm->basis.empty() && root_warm->basis.compatible_with(model)) {
      reduced_warm.basis = pre.post.to_reduced(root_warm->basis);
    }
    rw = &reduced_warm;
  }
  // Search even when every integer column was fixed by the reduction: the
  // root node still counts in the stats contract (nodes_created >= 1 with
  // bound_deltas_allocated == nodes_created - 1), and an integer-free root
  // relaxation is immediately integer-feasible anyway.
  Solution red = run_search(pre.reduced, inner, rw, st);
  red.duals.clear();  // branch & bound returns no duals (Solution contract)
  // The search proved its bound on the reduced model; shift it by the
  // removed variables' objective contribution, the same translation expand
  // applies to the objective itself. The relative gap is unchanged only up
  // to the offset, so recompute it against the full-model incumbent.
  st.best_bound += pre.post.objective_offset();
  Solution sol = pre.post.expand(model, red);
  if (!st.proven && sol.status != SolveStatus::kInfeasible &&
      !sol.x.empty() && std::isfinite(sol.objective)) {
    const double inc_min =
        model.sense() == Sense::kMaximize ? -sol.objective : sol.objective;
    const double bb_min =
        model.sense() == Sense::kMaximize ? -st.best_bound : st.best_bound;
    st.mip_gap = (inc_min - bb_min) / std::max(1.0, std::abs(inc_min));
  }
  sol.rows_removed = pre.stats.rows_removed;
  sol.cols_removed = pre.stats.cols_removed;
  sol.presolve_us = pus;
  if (root_warm) {
    root_warm->used = rw->used;
    root_warm->basis = pre.post.to_full(rw->basis, red.x);
  }
  return sol;
}

}  // namespace

Solution solve_milp(const Model& model, const BranchBoundOptions& options,
                    WarmStart* root_warm, BranchBoundStats* stats) {
  BATE_ASSERT_MSG(options.node_limit > 0, "branch_bound: node_limit <= 0");
  BATE_ASSERT_MSG(options.integer_tol > 0.0 && options.integer_tol < 0.5,
                  "branch_bound: integer_tol outside (0, 0.5)");
  BATE_TRACE_SPAN("solver.solve_milp");
  BranchBoundStats local;
  BranchBoundStats& st = stats != nullptr ? *stats : local;
  st = BranchBoundStats{};
  const std::int64_t t0 = obs::now_us();
  Solution sol = solve_milp_impl(model, options, root_warm, st);
  record_milp_solve(st, obs::now_us() - t0);
  return sol;
}

}  // namespace bate
