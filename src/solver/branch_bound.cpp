#include "solver/branch_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/presolve.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace bate {

namespace {

/// splitmix64 finalizer. Node tie keys are derived from the parent's key
/// and the branch direction, so a node's key depends only on its position
/// in the tree (and the seed) — never on scheduling or insertion order.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One open node: a single bound delta against the parent; the node's full
/// bound set is its chain to the root. Children share the parent
/// relaxation's final basis (one heap copy per expanded node, not per
/// child) for warm starts.
struct Node {
  std::shared_ptr<const Node> parent;
  std::shared_ptr<const Basis> warm;  // parent relaxation's final basis
  double lp_bound = -kInfinity;       // parent bound (minimization sense)
  std::uint64_t tie = 0;              // deterministic order tie-break key
  double lower = 0.0;                 // the delta: var's bounds at this node
  double upper = 0.0;
  int var = -1;                       // -1: root (no delta)
  int depth = 0;
};

// A node must stay one flat bound delta — no per-node containers. If this
// fires, someone re-introduced accumulated bound copies (the pre-PR 3 Node
// duplicated the whole path's bound vector into every child).
static_assert(sizeof(Node) <= 2 * sizeof(std::shared_ptr<const Node>) + 48,
              "branch_bound: Node grew past a single bound delta");

struct NodeOrder {
  bool operator()(const std::shared_ptr<const Node>& a,
                  const std::shared_ptr<const Node>& b) const {
    if (a->lp_bound != b->lp_bound) {
      return a->lp_bound > b->lp_bound;  // best (smallest) bound first
    }
    return a->tie > b->tie;  // seeded, position-derived: deterministic
  }
};

using OpenQueue =
    std::priority_queue<std::shared_ptr<const Node>,
                        std::vector<std::shared_ptr<const Node>>, NodeOrder>;

/// Immutable per-search context shared by the serial and parallel drivers.
struct Search {
  const Model& model;
  const BranchBoundOptions& opt;
  bool maximize;
  std::vector<int> int_vars;
  std::int64_t start_us;  // obs::now_us() when the search began

  double to_min(double v) const { return maximize ? -v : v; }
  bool out_of_time() const {
    if (opt.time_limit_seconds <= 0.0) return false;
    return static_cast<double>(obs::now_us() - start_us) * 1e-6 >
           opt.time_limit_seconds;
  }
};

/// Everything one node expansion produces; the driver merges it into the
/// search state (the parallel driver under its queue lock).
struct Expansion {
  Solution relax;
  double bound_min = kInfinity;
  bool warm_used = false;
  bool integer_feasible = false;
  long deltas = 0;
  std::vector<std::shared_ptr<const Node>> children;
};

/// Deterministic incumbent acceptance: a strictly better objective wins;
/// equal objectives break ties lexicographically on x, so the final
/// incumbent of a run-to-optimality search does not depend on the order in
/// which workers complete nodes.
bool better_incumbent(double cand_min, const std::vector<double>& cand_x,
                      double best_min, const Solution& best) {
  if (cand_min != best_min) return cand_min < best_min;
  return std::lexicographical_compare(cand_x.begin(), cand_x.end(),
                                      best.x.begin(), best.x.end());
}

/// Applies the node's bound chain to `work`, solves the relaxation
/// (warm-started from the parent basis when enabled), restores `work`, and
/// builds the children. Touches no shared search state beyond the immutable
/// context and the `incumbent_min` snapshot, so expansions of distinct
/// nodes run concurrently on per-worker `work` copies.
Expansion expand(const Search& s, Model& work,
                 const std::shared_ptr<const Node>& node, double incumbent_min,
                 WarmStart* root_warm) {
  Expansion out;

  // Apply the chain root-first so deeper deltas override ancestors.
  std::vector<const Node*> chain;
  for (const Node* p = node.get(); p != nullptr && p->var >= 0;
       p = p->parent.get()) {
    chain.push_back(p);
  }
  std::vector<std::pair<int, std::pair<double, double>>> saved;
  saved.reserve(chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    Variable& v = work.variable((*it)->var);
    saved.push_back({(*it)->var, {v.lower, v.upper}});
    v.lower = (*it)->lower;
    v.upper = (*it)->upper;
  }

  const bool is_root = node->var < 0;
  WarmStart ws;
  if (is_root && root_warm != nullptr) {
    ws.basis = root_warm->basis;
  } else if (s.opt.warm_start_nodes && node->warm != nullptr) {
    ws.basis = *node->warm;
  }
  const bool track_basis =
      s.opt.warm_start_nodes || (is_root && root_warm != nullptr);
  out.relax = solve_lp(work, s.opt.lp, track_basis ? &ws : nullptr);
  out.warm_used = ws.used;

  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
    work.variable(it->first).lower = it->second.first;
    work.variable(it->first).upper = it->second.second;
  }

  if (is_root && root_warm != nullptr) {
    // Hand the root relaxation's final basis back to the caller, who chains
    // it into the next related solve (admission re-checks, recovery).
    root_warm->basis = ws.basis;
    root_warm->used = ws.used;
  }

  if (out.relax.status != SolveStatus::kOptimal) return out;
  out.bound_min = s.to_min(out.relax.objective);
  if (out.bound_min >= incumbent_min - s.opt.gap_tol) return out;  // pruned

  // Most fractional integer variable.
  int branch_var = -1;
  double best_frac = s.opt.integer_tol;
  for (int j : s.int_vars) {
    const double v = out.relax.x[static_cast<std::size_t>(j)];
    const double frac = std::abs(v - std::round(v));
    if (frac > best_frac) {
      best_frac = frac;
      branch_var = j;
    }
  }

  if (branch_var < 0) {
    // Integer feasible: round off tolerance noise and offer as incumbent.
    for (int j : s.int_vars) {
      out.relax.x[static_cast<std::size_t>(j)] =
          std::round(out.relax.x[static_cast<std::size_t>(j)]);
    }
    // Rounding may only absorb tolerance noise, never move the point off
    // the feasible set the relaxation certified.
    BATE_DCHECK_MSG(s.model.feasible(out.relax.x, 1e-4),
                    "branch_bound: rounded incumbent infeasible");
    out.integer_feasible = true;
    return out;
  }

  // Branch within the bounds active at this node. The nearest ancestor
  // delta on branch_var already carries the whole path's intersection.
  double lo = s.model.variable(branch_var).lower;
  double hi = s.model.variable(branch_var).upper;
  for (const Node* p = node.get(); p != nullptr && p->var >= 0;
       p = p->parent.get()) {
    if (p->var == branch_var) {
      lo = p->lower;
      hi = p->upper;
      break;
    }
  }

  std::shared_ptr<const Basis> child_basis;
  if (s.opt.warm_start_nodes) {
    child_basis = std::make_shared<const Basis>(std::move(ws.basis));
  }
  const double v = out.relax.x[static_cast<std::size_t>(branch_var)];
  auto make_child = [&](double clo, double chi, std::uint64_t salt) {
    auto child = std::make_shared<Node>();
    child->parent = node;
    child->warm = child_basis;
    child->lp_bound = out.bound_min;
    child->tie = mix64(node->tie ^ salt);
    child->var = branch_var;
    child->lower = clo;
    child->upper = chi;
    child->depth = node->depth + 1;
    ++out.deltas;
    out.children.push_back(std::move(child));
  };
  if (std::floor(v) >= lo - 1e-12) make_child(lo, std::floor(v), 0x2545f491ull);
  if (std::ceil(v) <= hi + 1e-12) make_child(std::ceil(v), hi, 0x9d2c5681ull);
  return out;
}

Solution run_serial(const Search& s, std::shared_ptr<const Node> root,
                    WarmStart* root_warm, BranchBoundStats& st) {
  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_min = kInfinity;

  OpenQueue open;
  open.push(std::move(root));
  st.nodes_created = 1;
  st.open_peak = 1;

  Model work = s.model;  // mutated bounds per node, restored afterwards
  long popped = 0;
  long iters = 0;
  long pivots = 0;
  bool budget_hit = false;

  while (!open.empty()) {
    const auto node = open.top();
    open.pop();
    if (node->lp_bound >= incumbent_min - s.opt.gap_tol) {  // pruned
      ++st.nodes_pruned;
      continue;
    }
    if (++popped > s.opt.node_limit || s.out_of_time()) {
      budget_hit = true;
      break;
    }

    Expansion e = expand(s, work, node, incumbent_min, root_warm);
    ++st.nodes_solved;
    if (e.warm_used) ++st.warm_started_nodes;
    st.max_depth = std::max(st.max_depth, node->depth);
    iters += e.relax.iterations;
    pivots += e.relax.pivots;

    if (e.relax.status == SolveStatus::kInfeasible) continue;
    if (e.relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation makes the MILP unbounded or infeasible;
      // report it directly (our models never hit this in practice).
      e.relax.iterations = iters;
      e.relax.pivots = pivots;
      e.relax.nodes = st.nodes_solved;
      return e.relax;
    }
    if (e.relax.status == SolveStatus::kIterationLimit) {
      budget_hit = true;
      continue;
    }
    if (e.integer_feasible) {
      if (better_incumbent(e.bound_min, e.relax.x, incumbent_min, incumbent)) {
        incumbent_min = e.bound_min;
        incumbent = std::move(e.relax);
        incumbent.status = SolveStatus::kOptimal;
        ++st.incumbent_updates;
      }
      if (s.opt.stop_at_first_incumbent) break;
      continue;
    }
    st.nodes_created += static_cast<long>(e.children.size());
    st.bound_deltas_allocated += e.deltas;
    for (auto& c : e.children) open.push(std::move(c));
    st.open_peak = std::max(st.open_peak, static_cast<long>(open.size()));
  }

  if (budget_hit) {
    // kIterationLimit either carries the best incumbent (x non-empty) or,
    // with no incumbent found, reports that neither feasibility nor
    // infeasibility was established within the budget (x empty).
    incumbent.status = SolveStatus::kIterationLimit;
  }
  incumbent.iterations = iters;
  incumbent.pivots = pivots;
  incumbent.nodes = st.nodes_solved;
  return incumbent;
}

Solution run_parallel(const Search& s, std::shared_ptr<const Node> root,
                      WarmStart* root_warm, BranchBoundStats& st,
                      ThreadPool& pool) {
  // Shared best-bound search state. Workers pop the globally best open
  // node, expand it unlocked on a worker-local model copy, and merge the
  // result back under `mu`. `inflight` counts popped-but-unmerged nodes so
  // idle workers know whether more work can still appear; while waiting
  // they drain unrelated pool tasks via run_one() instead of sleeping.
  struct SharedState {
    Mutex mu{LockRank::kSolver, "bnb shared"};
    CondVar cv;
    OpenQueue open BATE_GUARDED_BY(mu);
    int inflight BATE_GUARDED_BY(mu) = 0;
    long popped BATE_GUARDED_BY(mu) = 0;
    bool stop BATE_GUARDED_BY(mu) = false;
    bool budget_hit BATE_GUARDED_BY(mu) = false;
    bool unbounded BATE_GUARDED_BY(mu) = false;
    Solution unbounded_sol BATE_GUARDED_BY(mu);
    double incumbent_min BATE_GUARDED_BY(mu) = kInfinity;
    Solution incumbent BATE_GUARDED_BY(mu);
    long iters BATE_GUARDED_BY(mu) = 0;
    long pivots BATE_GUARDED_BY(mu) = 0;
  } sh;
  sh.incumbent.status = SolveStatus::kInfeasible;
  sh.open.push(std::move(root));
  st.nodes_created = 1;
  st.open_peak = 1;

  const int workers = pool.thread_count() + 1;  // caller participates
  pool.parallel_for(workers, [&](int) {
    Model work = s.model;
    MutexLock lk(sh.mu);
    for (;;) {
      while (!sh.stop && sh.open.empty() && sh.inflight > 0) {
        lk.unlock();
        const bool ran = pool.run_one();
        lk.lock();
        if (!ran && !sh.stop && sh.open.empty() && sh.inflight > 0) {
          sh.cv.wait_for(sh.mu, std::chrono::microseconds(200));
        }
      }
      if (sh.stop || sh.open.empty()) return;  // empty implies inflight == 0
      auto node = sh.open.top();
      sh.open.pop();
      if (node->lp_bound >= sh.incumbent_min - s.opt.gap_tol) {
        ++st.nodes_pruned;
        continue;
      }
      if (++sh.popped > s.opt.node_limit || s.out_of_time()) {
        sh.budget_hit = true;
        sh.stop = true;
        sh.cv.notify_all();
        return;
      }
      ++sh.inflight;
      const double incumbent_snapshot = sh.incumbent_min;
      lk.unlock();

      Expansion e;
      try {
        e = expand(s, work, node, incumbent_snapshot, root_warm);
      } catch (...) {
        // Unblock the other workers before parallel_for rethrows this on
        // the caller; a worker that exits without merging would hang them.
        lk.lock();
        --sh.inflight;
        sh.stop = true;
        sh.cv.notify_all();
        throw;
      }

      lk.lock();
      --sh.inflight;
      ++st.nodes_solved;
      if (e.warm_used) ++st.warm_started_nodes;
      st.max_depth = std::max(st.max_depth, node->depth);
      sh.iters += e.relax.iterations;
      sh.pivots += e.relax.pivots;
      switch (e.relax.status) {
        case SolveStatus::kInfeasible:
          break;
        case SolveStatus::kUnbounded:
          sh.unbounded = true;
          sh.unbounded_sol = std::move(e.relax);
          sh.stop = true;
          break;
        case SolveStatus::kIterationLimit:
          sh.budget_hit = true;
          break;
        case SolveStatus::kOptimal:
          if (e.integer_feasible) {
            if (better_incumbent(e.bound_min, e.relax.x, sh.incumbent_min,
                                 sh.incumbent)) {
              sh.incumbent_min = e.bound_min;
              sh.incumbent = std::move(e.relax);
              sh.incumbent.status = SolveStatus::kOptimal;
              ++st.incumbent_updates;
            }
            if (s.opt.stop_at_first_incumbent) sh.stop = true;
          } else {
            st.nodes_created += static_cast<long>(e.children.size());
            st.bound_deltas_allocated += e.deltas;
            for (auto& c : e.children) sh.open.push(std::move(c));
            st.open_peak =
                std::max(st.open_peak, static_cast<long>(sh.open.size()));
          }
          break;
      }
      sh.cv.notify_all();
      if (sh.stop) return;
    }
  });

  Solution out;
  if (sh.unbounded) {
    out = std::move(sh.unbounded_sol);
  } else {
    out = std::move(sh.incumbent);
    if (sh.budget_hit) out.status = SolveStatus::kIterationLimit;
  }
  out.iterations = sh.iters;
  out.pivots = sh.pivots;
  out.nodes = st.nodes_solved;
  return out;
}

/// The branch & bound search itself, on whatever model it is given (the
/// presolved reduction or, when presolve is off, the original).
Solution run_search(const Model& model, const BranchBoundOptions& options,
                    WarmStart* root_warm, BranchBoundStats& st) {
  Search s{model,
           options,
           model.sense() == Sense::kMaximize,
           {},
           obs::now_us()};
  for (int j = 0; j < model.variable_count(); ++j) {
    if (model.variable(j).integer) s.int_vars.push_back(j);
  }

  auto root = std::make_shared<Node>();
  root->tie = mix64(options.tie_break_seed ^ 0x6a09e667f3bcc908ull);

  ThreadPool* pool = options.pool;
  if (pool != nullptr && pool->current_worker() >= 0) {
    pool = nullptr;  // already inside the pool: serial fallback (no nesting)
  }
  return pool != nullptr ? run_parallel(s, std::move(root), root_warm, st, *pool)
                         : run_serial(s, std::move(root), root_warm, st);
}

/// One registry flush per MILP solve; the node loops only bump the plain
/// BranchBoundStats fields (serial, or under the queue lock in parallel).
void record_milp_solve(const BranchBoundStats& st, std::int64_t total_us) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  static obs::Counter& solves = reg.counter("bate_bnb_solves_total");
  static obs::Counter& created = reg.counter("bate_bnb_nodes_created_total");
  static obs::Counter& solved = reg.counter("bate_bnb_nodes_solved_total");
  static obs::Counter& pruned = reg.counter("bate_bnb_nodes_pruned_total");
  static obs::Counter& incumbents =
      reg.counter("bate_bnb_incumbent_updates_total");
  static obs::Counter& warm = reg.counter("bate_bnb_warm_started_nodes_total");
  static obs::Gauge& open_peak = reg.gauge("bate_bnb_open_peak");
  static obs::Histogram& solve_us = reg.histogram("bate_bnb_solve_us");
  solves.inc();
  created.inc(st.nodes_created);
  solved.inc(st.nodes_solved);
  pruned.inc(st.nodes_pruned);
  incumbents.inc(st.incumbent_updates);
  warm.inc(st.warm_started_nodes);
  open_peak.max_of(static_cast<double>(st.open_peak));
  solve_us.record(total_us);
}

Solution solve_milp_impl(const Model& model, const BranchBoundOptions& options,
                         WarmStart* root_warm, BranchBoundStats& st) {
  if (!model.has_integers()) return solve_lp(model, options.lp, root_warm);

  // Presolve once at the root (MILP mode: integer bounds rounded inward,
  // continuous-only reductions skipped) and search the reduced model; the
  // per-node bound deltas compose on top of the reduction because branching
  // only ever touches integer columns that survived it. Nodes solve with
  // presolve off — the root reduction already covers them.
  if (!options.lp.presolve || options.lp.reference_mode) {
    return run_search(model, options, root_warm, st);
  }
  const std::int64_t t0 = obs::now_us();
  PresolveOptions popt;
  popt.for_milp = true;
  PresolveResult pre = [&] {
    BATE_TRACE_SPAN("solver.presolve");
    return presolve_model(model, popt);
  }();
  const long pus = static_cast<long>(obs::now_us() - t0);
  if (pre.infeasible) {
    Solution sol;
    sol.status = SolveStatus::kInfeasible;
    sol.x.resize(static_cast<std::size_t>(model.variable_count()));
    for (int j = 0; j < model.variable_count(); ++j) {
      sol.x[static_cast<std::size_t>(j)] = model.variable(j).lower;
    }
    sol.rows_removed = pre.stats.rows_removed;
    sol.cols_removed = pre.stats.cols_removed;
    sol.presolve_us = pus;
    if (root_warm) {
      // Same contract as solve_lp: the handle keeps a full-shape basis even
      // when presolve settles the verdict before the engine runs.
      root_warm->used = false;
      root_warm->basis = slack_basis(model);
    }
    return sol;
  }
  BranchBoundOptions inner = options;
  inner.lp.presolve = false;
  if (pre.post.trivial()) {
    Solution sol = run_search(model, inner, root_warm, st);
    sol.presolve_us = pus;
    return sol;
  }
  WarmStart reduced_warm;
  WarmStart* rw = nullptr;
  if (root_warm) {
    root_warm->used = false;
    if (!root_warm->basis.empty() && root_warm->basis.compatible_with(model)) {
      reduced_warm.basis = pre.post.to_reduced(root_warm->basis);
    }
    rw = &reduced_warm;
  }
  // Search even when every integer column was fixed by the reduction: the
  // root node still counts in the stats contract (nodes_created >= 1 with
  // bound_deltas_allocated == nodes_created - 1), and an integer-free root
  // relaxation is immediately integer-feasible anyway.
  Solution red = run_search(pre.reduced, inner, rw, st);
  red.duals.clear();  // branch & bound returns no duals (Solution contract)
  Solution sol = pre.post.expand(model, red);
  sol.rows_removed = pre.stats.rows_removed;
  sol.cols_removed = pre.stats.cols_removed;
  sol.presolve_us = pus;
  if (root_warm) {
    root_warm->used = rw->used;
    root_warm->basis = pre.post.to_full(rw->basis, red.x);
  }
  return sol;
}

}  // namespace

Solution solve_milp(const Model& model, const BranchBoundOptions& options,
                    WarmStart* root_warm, BranchBoundStats* stats) {
  BATE_ASSERT_MSG(options.node_limit > 0, "branch_bound: node_limit <= 0");
  BATE_ASSERT_MSG(options.integer_tol > 0.0 && options.integer_tol < 0.5,
                  "branch_bound: integer_tol outside (0, 0.5)");
  BATE_TRACE_SPAN("solver.solve_milp");
  BranchBoundStats local;
  BranchBoundStats& st = stats != nullptr ? *stats : local;
  st = BranchBoundStats{};
  const std::int64_t t0 = obs::now_us();
  Solution sol = solve_milp_impl(model, options, root_warm, st);
  record_milp_solve(st, obs::now_us() - t0);
  return sol;
}

}  // namespace bate
