#include "solver/branch_bound.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "util/check.h"

namespace bate {

namespace {

struct Node {
  // Variable-bound overrides accumulated along the branch.
  std::vector<std::pair<int, std::pair<double, double>>> bounds;
  double lp_bound;  // objective of parent relaxation (minimization sense)
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->lp_bound > b->lp_bound;  // best (smallest) bound first
  }
};

}  // namespace

Solution solve_milp(const Model& model, const BranchBoundOptions& options) {
  BATE_ASSERT_MSG(options.node_limit > 0, "branch_bound: node_limit <= 0");
  BATE_ASSERT_MSG(options.integer_tol > 0.0 && options.integer_tol < 0.5,
                  "branch_bound: integer_tol outside (0, 0.5)");
  if (!model.has_integers()) return solve_lp(model, options.lp);

  const bool maximize = model.sense() == Sense::kMaximize;
  auto to_min = [&](double v) { return maximize ? -v : v; };

  std::vector<int> int_vars;
  for (int j = 0; j < model.variable_count(); ++j) {
    if (model.variable(j).integer) int_vars.push_back(j);
  }

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_min = kInfinity;

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  open.push(std::make_shared<Node>(Node{{}, -kInfinity}));

  Model work = model;  // mutated bounds per node, restored afterwards
  int nodes = 0;
  long total_iterations = 0;
  long total_pivots = 0;
  bool budget_hit = false;
  const auto start = std::chrono::steady_clock::now();

  while (!open.empty()) {
    const auto node = open.top();
    open.pop();
    if (node->lp_bound >= incumbent_min - options.gap_tol) continue;  // pruned
    if (++nodes > options.node_limit) {
      budget_hit = true;
      break;
    }
    if (options.time_limit_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() > options.time_limit_seconds) {
      budget_hit = true;
      break;
    }

    // Apply node bounds.
    std::vector<std::pair<int, std::pair<double, double>>> saved;
    saved.reserve(node->bounds.size());
    for (const auto& [var, bound] : node->bounds) {
      saved.push_back({var, {work.variable(var).lower, work.variable(var).upper}});
      work.variable(var).lower = bound.first;
      work.variable(var).upper = bound.second;
    }

    Solution relax = solve_lp(work, options.lp);
    total_iterations += relax.iterations;
    total_pivots += relax.pivots;

    // Restore bounds.
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      work.variable(it->first).lower = it->second.first;
      work.variable(it->first).upper = it->second.second;
    }

    if (relax.status == SolveStatus::kInfeasible) continue;
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation makes the MILP unbounded or infeasible;
      // report it directly (our models never hit this in practice).
      relax.iterations = total_iterations;
      relax.pivots = total_pivots;
      return relax;
    }
    if (relax.status == SolveStatus::kIterationLimit) {
      budget_hit = true;
      continue;
    }
    const double bound_min = to_min(relax.objective);
    if (bound_min >= incumbent_min - options.gap_tol) continue;

    // Find most fractional integer variable.
    int branch_var = -1;
    double best_frac = options.integer_tol;
    for (int j : int_vars) {
      const double v = relax.x[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac > best_frac) {
        best_frac = frac;
        branch_var = j;
      }
    }

    if (branch_var < 0) {
      // Integer feasible: round off tolerance noise and accept as incumbent.
      for (int j : int_vars) {
        relax.x[static_cast<std::size_t>(j)] =
            std::round(relax.x[static_cast<std::size_t>(j)]);
      }
      // Rounding may only absorb tolerance noise, never move the point off
      // the feasible set the relaxation certified.
      BATE_DCHECK_MSG(model.feasible(relax.x, 1e-4),
                      "branch_bound: rounded incumbent infeasible");
      if (bound_min < incumbent_min) {
        incumbent = relax;
        incumbent.status = SolveStatus::kOptimal;
        incumbent_min = bound_min;
      }
      if (options.stop_at_first_incumbent) break;
      continue;
    }

    const double v = relax.x[static_cast<std::size_t>(branch_var)];
    // Branch within the bounds active at this node (they may have been
    // tightened by an ancestor).
    double lo = model.variable(branch_var).lower;
    double hi = model.variable(branch_var).upper;
    for (const auto& [var, bound] : node->bounds) {
      if (var == branch_var) {
        lo = std::max(lo, bound.first);
        hi = std::min(hi, bound.second);
      }
    }

    if (std::floor(v) >= lo - 1e-12) {
      auto down = std::make_shared<Node>(*node);
      down->lp_bound = bound_min;
      down->bounds.push_back({branch_var, {lo, std::floor(v)}});
      open.push(std::move(down));
    }
    if (std::ceil(v) <= hi + 1e-12) {
      auto up = std::make_shared<Node>(*node);
      up->lp_bound = bound_min;
      up->bounds.push_back({branch_var, {std::ceil(v), hi}});
      open.push(std::move(up));
    }
  }

  if (budget_hit) {
    // kIterationLimit either carries the best incumbent (x non-empty) or,
    // with no incumbent found, reports that neither feasibility nor
    // infeasibility was established within the budget (x empty).
    incumbent.status = SolveStatus::kIterationLimit;
  }
  incumbent.iterations = total_iterations;
  incumbent.pivots = total_pivots;
  return incumbent;
}

}  // namespace bate
