// LP / MILP presolve and postsolve.
//
// Shrinks a Model before it reaches the simplex (simplex.h) or branch &
// bound (branch_bound.h). The reductions are the classical, dual-safe set:
//
//  * fixed variables (lower == upper) are substituted into the rows;
//  * empty rows are checked and dropped; singleton rows fold into variable
//    bounds (equality singletons fix the variable outright);
//  * bounds are tightened by constraint propagation, and rows made
//    redundant by the (tightened) bounds are dropped;
//  * rows whose activity is bounded by a scalar multiple of another row
//    plus bound terms are dropped (dominated rows);
//  * variables whose objective and column signs all push toward one finite
//    bound are fixed there (dual fixing; also removes empty columns);
//  * zero-cost columns with a free upper bound appearing in a single
//    inequality row absorb that row (the column acts as a free surplus);
//  * optionally (PresolveOptions::scale) the reduced model is geometric-
//    mean scaled — powers of two, so solutions map back exactly, and
//    integer-marked columns keep scale 1. Off by default: the scheduling
//    LPs solve in ~10% fewer iterations unscaled (EXPERIMENTS.md).
//
// Every reduction appends an entry to a Postsolve record that maps the
// reduced solution back to a FULL primal x and a FULL dual vector for the
// original model: dropped rows get dual 0 (they are implied by what
// remains), folded singleton rows and propagation-tightened bounds transfer
// the variable's reduced cost onto the generating row when the solution
// ends up pinned at the implied bound, and fixed variables are sign-safe by
// the dual-fixing argument (DESIGN.md Sec 5 "Presolve & postsolve"). The
// recovered duals satisfy the shadow-price invariant of tests/solver_test.cpp
// and the strong-duality check of tests/simplex_equivalence_test.cpp.
//
// Infeasibility is only declared when a violation exceeds the simplex's own
// Phase-1 threshold (1e-6, scaled by the rhs), so a presolved solve never
// disagrees with the un-presolved verdict on borderline instances.
#pragma once

#include <vector>

#include "solver/model.h"
#include "solver/simplex.h"

namespace bate {

struct PresolveOptions {
  /// Numerical zero for coefficients / improvement thresholds.
  double tol = 1e-9;
  /// Geometric-mean scale the reduced model (powers of two, exactly
  /// invertible). Off by default: the scheduling LPs carry a wide but
  /// benign coefficient spread (probability terms vs capacity terms), and
  /// equilibrating it was measured to disturb the pricing order for ~10%
  /// extra iterations (EXPERIMENTS.md). Turn on for models whose spread
  /// actually causes basis-factor instability.
  bool scale = false;
  /// Tighten variable bounds by constraint propagation (min/max row
  /// activity). Redundant-row and infeasibility detection from activities
  /// stay on regardless; this only gates rewriting the bounds themselves.
  bool tighten_bounds = true;
  /// Lift LOWER bounds during propagation. Off by default: the simplex
  /// cold start sits at x = lower, so every lifted lower bound moves the
  /// Phase-1 start point and (measured on the scheduling LPs) costs ~10%
  /// extra iterations while enabling no further reductions. Upper-bound
  /// tightening keeps the start point and stays on. MILP presolves turn
  /// this on (for_milp) because branch & bound prunes by bound boxes.
  bool tighten_lower = false;
  /// Reduction passes before giving up on reaching a fixed point.
  int max_passes = 10;
  /// MILP mode: round tightened integer bounds inward, declare integer
  /// variables fixed at fractional values infeasible, and skip reductions
  /// that are only valid for continuous relaxations. No dual recovery is
  /// performed (branch & bound returns no duals).
  bool for_milp = false;
};

struct PresolveStats {
  int rows_removed = 0;
  int cols_removed = 0;
  int bounds_tightened = 0;
  int passes = 0;
  /// Per-rule reduction counts (sub-breakdown of the totals above; exposed
  /// through the obs registry as bate_presolve_<rule>_total). redundant_rows
  /// covers empty rows and rows implied by activity bounds; singleton_rows
  /// counts rows folded into a variable bound or fixing their variable;
  /// tightens counts constraint-propagation bound hits only (singleton
  /// folds count toward bounds_tightened but not here).
  int redundant_rows = 0;
  int singleton_rows = 0;
  int dominated_rows = 0;
  int fixed_vars = 0;
  int dual_fixed_vars = 0;
  int free_slack_cols = 0;
  int tightens = 0;
};

/// The record that maps a reduced-model solution back to the original
/// model. Built by presolve_model; consumed by solve_lp / solve_milp.
class Postsolve {
 public:
  /// True when presolve found nothing to do (no reductions, no scaling):
  /// the caller should solve the original model directly.
  bool trivial() const { return actions_.empty() && !scaled_; }

  /// Maps a solution of the reduced model to a solution of `original`
  /// (which must be the exact model that was presolved): full primal x,
  /// full duals (when the reduced solution carries duals and the presolve
  /// was not for_milp), objective including the fixed-variable offset.
  /// Status and work counters pass through.
  Solution expand(const Model& original, const Solution& reduced) const;

  /// Translates a reduced-model basis to a full-model basis: kept columns
  /// and rows copy their status, removed rows become slack-basic (block
  /// triangular with the kept basis, hence always nonsingular), removed
  /// variables sit at their recorded bound. `reduced_x` (the reduced primal
  /// solution) synthesizes statuses when `reduced` is empty (a reduced
  /// model with no rows solves without a basis).
  Basis to_full(const Basis& reduced, const std::vector<double>& reduced_x) const;

  /// Translates a full-model basis to the reduced space: statuses of kept
  /// columns/rows are copied; reduced rows whose full basic column was
  /// presolved away fall back to their own slack. The result may be
  /// rejected by the warm-start install (duplicate basic column) — that is
  /// the normal stale-basis cold fallback.
  Basis to_reduced(const Basis& full) const;

  int original_vars() const { return orig_vars_; }
  int original_rows() const { return orig_rows_; }
  /// Model-sense objective contribution of the removed variables: a value
  /// or bound proven on the reduced model translates to the full model by
  /// adding this (exactly what `expand` does to the objective).
  double objective_offset() const { return obj_offset_; }

 private:
  friend class Presolver;

  enum class Act : unsigned char {
    kFixVar,      // variable fixed at `value` (bounds / dual fixing); no row
    kFixedByRow,  // equality singleton row fixed the variable; row dropped
    kDropRow,     // redundant / empty / dominated row; dual 0
    kSingletonRow,  // inequality singleton folded into a variable bound
    kTighten,       // bound tightened by propagation from `row` (row kept)
    kFreeSlack,     // zero-cost free-upper column absorbed its only row
  };
  struct Action {
    Act kind;
    bool at_upper = false;  // which bound kSingletonRow / kTighten touched
    int var = -1;
    int row = -1;
    double coef = 0.0;       // coefficient of `var` in `row`
    double new_bound = 0.0;  // bound after the action
    double old_bound = 0.0;  // bound before the action
    double lo_at_drop = 0.0;  // kFreeSlack: the column's lower bound then
  };

  int orig_vars_ = 0;
  int orig_rows_ = 0;
  bool scaled_ = false;
  bool milp_ = false;  // no dual recovery
  double obj_offset_ = 0.0;   // model-sense objective of the removed vars
  std::vector<int> var_map_;  // original var -> reduced var, -1 if removed
  std::vector<int> row_map_;  // original row -> reduced row, -1 if removed
  std::vector<int> red_var_;  // reduced var -> original var
  std::vector<int> red_row_;  // reduced row -> original row
  std::vector<double> fixed_value_;      // per original var; kept vars 0
  std::vector<VarStatus> fixed_status_;  // bound side for removed vars
  std::vector<double> col_scale_, row_scale_;  // reduced space; powers of 2
  std::vector<double> red_lo_, red_hi_;  // reduced (scaled) bounds
  std::vector<Action> actions_;
};

struct PresolveResult {
  /// Presolve proved infeasibility (beyond the simplex Phase-1 margin);
  /// `reduced` / `post` are not meaningful.
  bool infeasible = false;
  Model reduced;
  Postsolve post;
  PresolveStats stats;
};

/// Runs the reduction passes on `model`. The model must satisfy the
/// solve_lp entry contract (finite lower bounds); callers validate first.
PresolveResult presolve_model(const Model& model,
                              const PresolveOptions& options = {});

/// The cold-start basis of `model`: every slack basic, every structural
/// column at its lower bound. Used to keep the warm-start contract — the
/// handle always holds a full-shape basis after a solve — on paths where
/// presolve settles the verdict before any simplex engine runs.
Basis slack_basis(const Model& model);

}  // namespace bate
