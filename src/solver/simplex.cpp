#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/check.h"

namespace bate {

namespace {

/// Tableau-consistency contract (check.h): every row must reference declared
/// variables with finite coefficients, and no bound or rhs may be NaN. A
/// model violating this produced out-of-bounds column indexing (UB) before;
/// it now aborts through BATE_ASSERT instead of returning garbage.
void validate_model(const Model& model) {
  const int n = model.variable_count();
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    BATE_ASSERT_MSG(!std::isnan(v.lower) && !std::isnan(v.upper),
                    "simplex: NaN variable bound");
    BATE_ASSERT_MSG(!std::isnan(v.objective), "simplex: NaN objective");
  }
  for (int r = 0; r < model.constraint_count(); ++r) {
    const Constraint& c = model.constraint(r);
    BATE_ASSERT_MSG(!std::isnan(c.rhs), "simplex: NaN constraint rhs");
    for (const Term& t : c.terms) {
      BATE_ASSERT_MSG(t.var >= 0 && t.var < n,
                      "simplex: constraint references unknown variable");
      BATE_ASSERT_MSG(std::isfinite(t.coef),
                      "simplex: non-finite constraint coefficient");
    }
  }
}

/// Column-wise sparse matrix of the normalized problem (structural columns
/// only; slack/artificial columns are unit vectors handled implicitly).
struct SparseColumns {
  std::vector<std::vector<Term>> cols;  // per structural var: (row, coef)
};

class SimplexEngine {
 public:
  SimplexEngine(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options) {
    build();
  }

  Solution run() {
    // Phase 1: minimize total artificial infeasibility if any artificials
    // carry nonzero value.
    double art_total = 0.0;
    for (int j = first_artificial_; j < ncols_; ++j) art_total += x_[sz(j)];
    if (art_total > opt_.tol) {
      set_phase1_objective();
      const SolveStatus st = iterate();
      if (st == SolveStatus::kIterationLimit) return finish(st);
      double infeas = 0.0;
      for (int j = first_artificial_; j < ncols_; ++j) infeas += x_[sz(j)];
      if (infeas > 1e-6) return finish(SolveStatus::kInfeasible);
    }
    // Freeze artificials at zero and run Phase 2 with the real objective.
    for (int j = first_artificial_; j < ncols_; ++j) {
      upper_[sz(j)] = 0.0;
      x_[sz(j)] = std::max(0.0, std::min(x_[sz(j)], 0.0));
    }
    set_phase2_objective();
    return finish(iterate());
  }

 private:
  static std::size_t sz(int i) { return static_cast<std::size_t>(i); }

  void build() {
    m_ = model_.constraint_count();
    nstruct_ = model_.variable_count();
    // Column layout: [0, nstruct) structural, [nstruct, nstruct+m) slacks,
    // [first_artificial_, ncols_) artificials (added lazily below).
    lower_.resize(sz(nstruct_ + m_));
    upper_.resize(sz(nstruct_ + m_));
    cols_.cols.resize(sz(nstruct_));

    const bool maximize = model_.sense() == Sense::kMaximize;
    obj_struct_.resize(sz(nstruct_));
    for (int j = 0; j < nstruct_; ++j) {
      const Variable& v = model_.variable(j);
      if (!std::isfinite(v.lower)) {
        throw std::invalid_argument("simplex: finite lower bounds required");
      }
      if (v.lower > v.upper) {
        throw std::invalid_argument("simplex: lower bound exceeds upper");
      }
      lower_[sz(j)] = v.lower;
      upper_[sz(j)] = v.upper;
      obj_struct_[sz(j)] = maximize ? -v.objective : v.objective;
    }

    // Normalize rows to <= / = by flipping >= rows; attach slack bounds.
    rhs_.resize(sz(m_));
    row_flip_.assign(sz(m_), 1.0);
    for (int r = 0; r < m_; ++r) {
      const Constraint& c = model_.constraint(r);
      double flip = 1.0;
      if (c.relation == Relation::kGreaterEqual) flip = -1.0;
      row_flip_[sz(r)] = flip;
      rhs_[sz(r)] = flip * c.rhs;
      for (const Term& t : c.terms) {
        cols_.cols[sz(t.var)].push_back({r, flip * t.coef});
      }
      const int slack = nstruct_ + r;
      lower_[sz(slack)] = 0.0;
      upper_[sz(slack)] =
          (c.relation == Relation::kEqual) ? 0.0 : kInfinity;
    }

    // Initial point: structural nonbasic at lower bound; slacks basic.
    ncols_ = nstruct_ + m_;
    x_.assign(sz(ncols_), 0.0);
    at_upper_.assign(sz(ncols_), 0);
    in_basis_.assign(sz(ncols_), 0);
    for (int j = 0; j < nstruct_; ++j) x_[sz(j)] = lower_[sz(j)];

    std::vector<double> activity(sz(m_), 0.0);
    for (int j = 0; j < nstruct_; ++j) {
      if (x_[sz(j)] == 0.0) continue;
      for (const Term& t : cols_.cols[sz(j)]) {
        activity[sz(t.var)] += t.coef * x_[sz(j)];
      }
    }

    basis_.resize(sz(m_));
    first_artificial_ = ncols_;
    std::vector<int> art_rows;
    for (int r = 0; r < m_; ++r) {
      const double resid = rhs_[sz(r)] - activity[sz(r)];
      const int slack = nstruct_ + r;
      const bool slack_ok = resid >= lower_[sz(slack)] - opt_.tol &&
                            resid <= upper_[sz(slack)] + opt_.tol;
      if (slack_ok) {
        basis_[sz(r)] = slack;
        in_basis_[sz(slack)] = 1;
        x_[sz(slack)] = std::max(resid, lower_[sz(slack)]);
        if (upper_[sz(slack)] != kInfinity) {
          x_[sz(slack)] = std::min(x_[sz(slack)], upper_[sz(slack)]);
        }
      } else {
        // Slack pinned to its nearest bound; an artificial absorbs the rest.
        const double s =
            resid < lower_[sz(slack)] ? lower_[sz(slack)] : upper_[sz(slack)];
        x_[sz(slack)] = s;
        at_upper_[sz(slack)] =
            (s == upper_[sz(slack)] && s != lower_[sz(slack)]) ? 1 : 0;
        art_rows.push_back(r);
        art_sign_.push_back(resid - s >= 0.0 ? 1.0 : -1.0);
      }
    }

    // Artificial columns: +/-1 in their row, bounds [0, inf), basic.
    for (const int r : art_rows) {
      const int col = ncols_++;
      lower_.push_back(0.0);
      upper_.push_back(kInfinity);
      x_.push_back(0.0);
      at_upper_.push_back(0);
      in_basis_.push_back(1);
      basis_[sz(r)] = col;
    }
    art_row_.assign(sz(ncols_), -1);
    {
      std::size_t a = 0;
      for (int col = first_artificial_; col < ncols_; ++col, ++a) {
        art_row_[sz(col)] = art_rows[a];
      }
    }

    // Basis validity: every row owns exactly one basic column in range.
    for (int r = 0; r < m_; ++r) {
      BATE_ASSERT_MSG(basis_[sz(r)] >= 0 && basis_[sz(r)] < ncols_ &&
                          in_basis_[sz(basis_[sz(r)])] == 1,
                      "simplex: invalid initial basis");
    }

    // Basis inverse starts as identity (slack/artificial unit columns,
    // artificial sign folded into the inverse row).
    binv_.assign(sz(m_) * sz(m_), 0.0);
    for (int r = 0; r < m_; ++r) {
      double diag = 1.0;
      const int bcol = basis_[sz(r)];
      if (bcol >= first_artificial_) {
        diag = 1.0 / art_sign_[sz(bcol - first_artificial_)];
      }
      binv_[sz(r) * sz(m_) + sz(r)] = diag;
    }
    recompute_basics();
  }

  /// Column of the full constraint matrix (structural, slack or artificial)
  /// as sparse (row, coef) terms.
  void column_terms(int col, std::vector<Term>& out) const {
    out.clear();
    if (col < nstruct_) {
      out = cols_.cols[sz(col)];
    } else if (col < nstruct_ + m_) {
      out.push_back({col - nstruct_, 1.0});
    } else {
      out.push_back({art_row_[sz(col)], art_sign_[sz(col - first_artificial_)]});
    }
  }

  void set_phase1_objective() {
    c_.assign(sz(ncols_), 0.0);
    for (int j = first_artificial_; j < ncols_; ++j) c_[sz(j)] = 1.0;
  }

  void set_phase2_objective() {
    c_.assign(sz(ncols_), 0.0);
    for (int j = 0; j < nstruct_; ++j) c_[sz(j)] = obj_struct_[sz(j)];
  }

  /// Recomputes basic variable values exactly: x_B = B^-1 (b - N x_N).
  void recompute_basics() {
    std::vector<double> resid = rhs_;
    std::vector<Term> terms;
    for (int j = 0; j < ncols_; ++j) {
      if (in_basis_[sz(j)] || x_[sz(j)] == 0.0) continue;
      column_terms(j, terms);
      for (const Term& t : terms) resid[sz(t.var)] -= t.coef * x_[sz(j)];
    }
    for (int r = 0; r < m_; ++r) {
      double v = 0.0;
      const double* row = &binv_[sz(r) * sz(m_)];
      for (int i = 0; i < m_; ++i) v += row[sz(i)] * resid[sz(i)];
      x_[sz(basis_[sz(r)])] = v;
    }
  }

  SolveStatus iterate() {
    int degenerate_run = 0;
    std::vector<double> y(sz(m_));
    std::vector<double> w(sz(m_));
    std::vector<Term> terms;

    while (iterations_ < opt_.iteration_limit) {
      ++iterations_;
      if (iterations_ % opt_.recompute_every == 0) recompute_basics();

      // BTRAN: y = c_B^T B^-1.
      for (int i = 0; i < m_; ++i) {
        double v = 0.0;
        for (int r = 0; r < m_; ++r) {
          const double cb = c_[sz(basis_[sz(r)])];
          if (cb != 0.0) v += cb * binv_[sz(r) * sz(m_) + sz(i)];
        }
        y[sz(i)] = v;
      }

      // Pricing.
      const bool bland = degenerate_run >= opt_.degenerate_switch;
      int enter = -1;
      double best = opt_.tol;
      double enter_dir = 0.0;
      for (int j = 0; j < ncols_; ++j) {
        if (in_basis_[sz(j)]) continue;
        if (lower_[sz(j)] == upper_[sz(j)]) continue;  // fixed
        column_terms(j, terms);
        double d = c_[sz(j)];
        for (const Term& t : terms) d -= y[sz(t.var)] * t.coef;
        double score = 0.0;
        double dir = 0.0;
        if (!at_upper_[sz(j)] && d < -opt_.tol) {
          score = -d;
          dir = 1.0;
        } else if (at_upper_[sz(j)] && d > opt_.tol) {
          score = d;
          dir = -1.0;
        } else {
          continue;
        }
        if (bland) {
          enter = j;
          enter_dir = dir;
          break;
        }
        if (score > best) {
          best = score;
          enter = j;
          enter_dir = dir;
        }
      }
      if (enter < 0) return SolveStatus::kOptimal;

      // FTRAN: w = B^-1 A_enter.
      column_terms(enter, terms);
      std::fill(w.begin(), w.end(), 0.0);
      for (const Term& t : terms) {
        const double coef = t.coef;
        const std::size_t col = sz(t.var);
        for (int r = 0; r < m_; ++r) {
          w[sz(r)] += binv_[sz(r) * sz(m_) + col] * coef;
        }
      }

      // Ratio test. Entering var moves by t*enter_dir; basic r moves at rate
      // -enter_dir * w[r].
      double t_max = upper_[sz(enter)] - lower_[sz(enter)];  // bound flip
      int leave_row = -1;
      double leave_pivot = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double rate = -enter_dir * w[sz(r)];
        if (std::abs(rate) <= opt_.pivot_tol) continue;
        const int b = basis_[sz(r)];
        double limit;
        if (rate > 0.0) {
          if (upper_[sz(b)] == kInfinity) continue;
          limit = (upper_[sz(b)] - x_[sz(b)]) / rate;
        } else {
          limit = (x_[sz(b)] - lower_[sz(b)]) / (-rate);
        }
        limit = std::max(limit, 0.0);
        if (limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 &&
             (leave_row < 0 || std::abs(w[sz(r)]) > std::abs(leave_pivot)))) {
          t_max = limit;
          leave_row = r;
          leave_pivot = w[sz(r)];
        }
      }

      if (t_max == kInfinity || (leave_row < 0 && t_max == kInfinity)) {
        return SolveStatus::kUnbounded;
      }
      if (leave_row < 0 && !std::isfinite(t_max)) {
        return SolveStatus::kUnbounded;
      }

      degenerate_run = (t_max <= opt_.tol) ? degenerate_run + 1 : 0;

      if (leave_row < 0) {
        // Bound flip: entering variable crosses to its other bound.
        const double step = t_max * enter_dir;
        x_[sz(enter)] += step;
        at_upper_[sz(enter)] = at_upper_[sz(enter)] ? 0 : 1;
        for (int r = 0; r < m_; ++r) {
          x_[sz(basis_[sz(r)])] -= step * w[sz(r)];
        }
        continue;
      }

      // Pivot.
      const double step = t_max * enter_dir;
      for (int r = 0; r < m_; ++r) {
        x_[sz(basis_[sz(r)])] -= step * w[sz(r)];
      }
      const int leave = basis_[sz(leave_row)];
      BATE_DCHECK_MSG(std::abs(leave_pivot) > opt_.pivot_tol,
                      "simplex: pivot below tolerance");
      const double rate = -enter_dir * leave_pivot;
      // Pin the leaving variable to the bound it reached.
      x_[sz(leave)] = (rate > 0.0) ? upper_[sz(leave)] : lower_[sz(leave)];
      at_upper_[sz(leave)] = (rate > 0.0) ? 1 : 0;
      in_basis_[sz(leave)] = 0;
      x_[sz(enter)] += step;
      in_basis_[sz(enter)] = 1;
      at_upper_[sz(enter)] = 0;
      basis_[sz(leave_row)] = enter;

      // Update B^-1: row ops making column `enter` the unit vector e_r.
      const double alpha = leave_pivot;
      double* prow = &binv_[sz(leave_row) * sz(m_)];
      for (int i = 0; i < m_; ++i) prow[sz(i)] /= alpha;
      for (int r = 0; r < m_; ++r) {
        if (r == leave_row) continue;
        const double f = w[sz(r)];
        if (f == 0.0) continue;
        double* row = &binv_[sz(r) * sz(m_)];
        for (int i = 0; i < m_; ++i) row[sz(i)] -= f * prow[sz(i)];
      }
    }
    return SolveStatus::kIterationLimit;
  }

  Solution finish(SolveStatus status) {
    recompute_basics();
    Solution sol;
    sol.status = status;
    sol.x.assign(sz(nstruct_), 0.0);
    for (int j = 0; j < nstruct_; ++j) sol.x[sz(j)] = x_[sz(j)];
    double obj = 0.0;
    for (int j = 0; j < nstruct_; ++j) obj += obj_struct_[sz(j)] * x_[sz(j)];
    const bool maximize = model_.sense() == Sense::kMaximize;
    sol.objective = maximize ? -obj : obj;

    if (status == SolveStatus::kOptimal) {
      // Duals y = c_B^T B^-1 of the internal minimization problem, mapped
      // back through the row flips and the sense negation so that each
      // dual is the shadow price d(objective)/d(rhs) in the model's sense.
      sol.duals.assign(sz(m_), 0.0);
      for (int i = 0; i < m_; ++i) {
        double y = 0.0;
        for (int r = 0; r < m_; ++r) {
          const double cb = c_[sz(basis_[sz(r)])];
          if (cb != 0.0) y += cb * binv_[sz(r) * sz(m_) + sz(i)];
        }
        sol.duals[sz(i)] = y * row_flip_[sz(i)] * (maximize ? -1.0 : 1.0);
      }
    }
    return sol;
  }

  const Model& model_;
  SimplexOptions opt_;

  int m_ = 0;        // rows
  int nstruct_ = 0;  // structural columns
  int ncols_ = 0;    // total columns
  int first_artificial_ = 0;

  SparseColumns cols_;
  std::vector<double> obj_struct_;  // minimization-sense structural costs
  std::vector<double> rhs_;
  std::vector<double> row_flip_;
  std::vector<double> lower_, upper_, x_, c_;
  std::vector<char> at_upper_, in_basis_;
  std::vector<int> basis_;
  std::vector<int> art_row_;
  std::vector<double> art_sign_;
  std::vector<double> binv_;
  long iterations_ = 0;
};

}  // namespace

Solution solve_lp(const Model& model, const SimplexOptions& options) {
  validate_model(model);
  BATE_ASSERT_MSG(options.iteration_limit > 0 && options.tol > 0.0 &&
                      options.pivot_tol > 0.0,
                  "simplex: nonsensical options");
  if (model.constraint_count() == 0) {
    // Pure bound problem: each variable sits at its best bound.
    Solution sol;
    sol.status = SolveStatus::kOptimal;
    sol.x.resize(static_cast<std::size_t>(model.variable_count()));
    double obj = 0.0;
    for (int j = 0; j < model.variable_count(); ++j) {
      const Variable& v = model.variable(j);
      const double cost =
          model.sense() == Sense::kMaximize ? -v.objective : v.objective;
      double xv = cost >= 0.0 ? v.lower : v.upper;
      if (!std::isfinite(xv)) {
        sol.status = SolveStatus::kUnbounded;
        xv = v.lower;
      }
      sol.x[static_cast<std::size_t>(j)] = xv;
      obj += v.objective * xv;
    }
    sol.objective = obj;
    return sol;
  }
  SimplexEngine engine(model, options);
  return engine.run();
}

}  // namespace bate
