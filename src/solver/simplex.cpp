#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/presolve.h"
#include "util/check.h"

namespace bate {

namespace {

/// Tableau-consistency contract (check.h): every row must reference declared
/// variables with finite coefficients, and no bound or rhs may be NaN. A
/// model violating this produced out-of-bounds column indexing (UB) before;
/// it now aborts through BATE_ASSERT instead of returning garbage.
void validate_model(const Model& model) {
  const int n = model.variable_count();
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    BATE_ASSERT_MSG(!std::isnan(v.lower) && !std::isnan(v.upper),
                    "simplex: NaN variable bound");
    BATE_ASSERT_MSG(!std::isnan(v.objective), "simplex: NaN objective");
  }
  for (int r = 0; r < model.constraint_count(); ++r) {
    const Constraint& c = model.constraint(r);
    BATE_ASSERT_MSG(!std::isnan(c.rhs), "simplex: NaN constraint rhs");
    for (const Term& t : c.terms) {
      BATE_ASSERT_MSG(t.var >= 0 && t.var < n,
                      "simplex: constraint references unknown variable");
      BATE_ASSERT_MSG(std::isfinite(t.coef),
                      "simplex: non-finite constraint coefficient");
    }
  }
}

/// Column-wise sparse matrix of the normalized problem (structural columns
/// only; slack/artificial columns are unit vectors handled implicitly).
struct SparseColumns {
  std::vector<std::vector<Term>> cols;  // per structural var: (row, coef)
};

/// One PFI factor: pivoting column w into row `row` multiplies B^-1 from the
/// left by E^-1, the identity with column `row` replaced by
/// eta = (1/w_r at r; -w_i/w_r elsewhere). Off-pivot entries live in a flat
/// shared arena ([begin, end) into eta_terms_) to keep FTRAN/BTRAN streaming
/// cache-friendly.
struct EtaHeader {
  int row;
  double pivot;  // 1 / w_row
  int begin;
  int end;
};

class SimplexEngine {
 public:
  SimplexEngine(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options) {
    build_common();
    install_cold_basis();
  }

  /// Warm construction: restart from a caller-supplied basis. Check
  /// `warm_ok()` — a malformed basis (duplicate basic column, status
  /// mismatch) leaves the engine unusable and the caller must rebuild cold.
  SimplexEngine(const Model& model, const SimplexOptions& options,
                const Basis& warm)
      : model_(model), opt_(options) {
    build_common();
    warm_ok_ = install_warm_basis(warm);
  }

  bool warm_ok() const { return warm_ok_; }
  bool gave_up() const { return gave_up_; }

  Solution run() {
    // Phase 1: minimize total artificial infeasibility if any artificials
    // carry nonzero value.
    double art_total = 0.0;
    for (int j = first_artificial_; j < ncols_; ++j) art_total += x_[sz(j)];
    if (art_total > opt_.tol) {
      set_phase1_objective();
      const SolveStatus st = iterate();
      if (st == SolveStatus::kIterationLimit) return finish(st);
      double infeas = 0.0;
      for (int j = first_artificial_; j < ncols_; ++j) infeas += x_[sz(j)];
      if (infeas > 1e-6) return finish(SolveStatus::kInfeasible);
    }
    // Freeze artificials at zero and run Phase 2 with the real objective.
    for (int j = first_artificial_; j < ncols_; ++j) {
      upper_[sz(j)] = 0.0;
      x_[sz(j)] = std::max(0.0, std::min(x_[sz(j)], 0.0));
    }
    set_phase2_objective();
    return finish(iterate());
  }

  /// Warm path: no artificial columns. Dispatch on what the restarted basis
  /// actually is:
  ///
  ///  * primal feasible — straight to the primal Phase 2 (the PR 3 path);
  ///  * primal infeasible but DUAL feasible (the branch & bound child case:
  ///    the parent's optimal basis with one bound tightened keeps its
  ///    reduced-cost signs) — dual simplex pivots (dual_iterate) restore
  ///    primal feasibility while preserving dual feasibility, then the
  ///    primal loop confirms optimality against exact reduced costs;
  ///  * otherwise, or when the dual loop stalls — the composite-bound
  ///    Phase 1 repair (run_warm_composite), which is sound from any basis.
  ///
  /// The dual loop never declares a verdict on its own: "no entering
  /// column" (a dual-unboundedness certificate under exact arithmetic) and
  /// degenerate stalls both hand over to the composite repair, whose
  /// infeasibility argument does not depend on cached reduced costs.
  Solution run_warm() {
    set_phase2_objective();
    if (primal_feasible()) return finish(iterate());
    if (dual_feasible()) {
      switch (dual_iterate()) {
        case DualResult::kPrimalFeasible:
          return finish(iterate());
        case DualResult::kIterationLimit:
          return finish(SolveStatus::kIterationLimit);
        case DualResult::kStall:
          break;  // fall through to the composite repair
      }
    }
    return run_warm_composite();
  }

  /// Composite-bound Phase 1 repair — each round relaxes the
  /// violated bound of every out-of-range basic variable to its current
  /// value, prices a +/-1 cost on it to drive it back inside, re-solves, and
  /// snaps variables that re-entered their true range. Soundness of the
  /// infeasibility verdict: the composite problem relaxes the true feasible
  /// region, and any true-feasible point scores strictly better on the
  /// composite objective than a point where every shifted variable still
  /// violates — so such a composite *optimum* proves the true region empty.
  /// A composite phase that diverges (unbounded ray, or more rounds than
  /// rows) sets gave_up(); the caller re-solves cold, which is always sound.
  Solution run_warm_composite() {
    struct Shift {
      int col;
      double lo, hi;  // true bounds, restored after the round
    };
    std::vector<Shift> shifts;
    for (int round = 0; round <= m_ + 1; ++round) {
      shifts.clear();
      c_.assign(sz(ncols_), 0.0);
      for (int r = 0; r < m_; ++r) {
        const int b = basis_[sz(r)];
        if (x_[sz(b)] < lower_[sz(b)] - opt_.tol) {
          shifts.push_back({b, lower_[sz(b)], upper_[sz(b)]});
          lower_[sz(b)] = x_[sz(b)];
          c_[sz(b)] = -1.0;  // minimize: drive up toward the true lower bound
        } else if (x_[sz(b)] > upper_[sz(b)] + opt_.tol) {
          shifts.push_back({b, lower_[sz(b)], upper_[sz(b)]});
          upper_[sz(b)] = x_[sz(b)];
          c_[sz(b)] = 1.0;  // drive down toward the true upper bound
        }
      }
      if (shifts.empty()) {
        // Primal feasible: straight to Phase 2 on the real objective.
        set_phase2_objective();
        return finish(iterate());
      }
      recompute_reduced_costs();
      const SolveStatus st = iterate();
      for (const Shift& s : shifts) {
        lower_[sz(s.col)] = s.lo;
        upper_[sz(s.col)] = s.hi;
      }
      if (st == SolveStatus::kIterationLimit) return finish(st);
      if (st == SolveStatus::kUnbounded) break;  // composite diverged
      // A shifted variable that left the basis was pinned at its *relaxed*
      // bound; snap it to the nearest true bound before the next round
      // re-checks the basic values against it.
      bool snapped_nonbasic = false;
      for (const Shift& s : shifts) {
        if (in_basis_[sz(s.col)]) continue;
        const double xv = x_[sz(s.col)];
        if (xv < s.lo) {
          x_[sz(s.col)] = s.lo;
          at_upper_[sz(s.col)] = 0;
          snapped_nonbasic = true;
        } else if (s.hi != kInfinity && xv > s.hi) {
          x_[sz(s.col)] = s.hi;
          at_upper_[sz(s.col)] = 1;
          snapped_nonbasic = true;
        }
      }
      if (snapped_nonbasic) recompute_basics();
      int still_violating = 0;
      for (const Shift& s : shifts) {
        if (!in_basis_[sz(s.col)]) continue;
        const double xv = x_[sz(s.col)];
        if (xv < s.lo - opt_.tol || xv > s.hi + opt_.tol) ++still_violating;
      }
      if (!snapped_nonbasic &&
          still_violating == static_cast<int>(shifts.size())) {
        return finish(SolveStatus::kInfeasible);
      }
    }
    gave_up_ = true;
    Solution sol;
    sol.status = SolveStatus::kIterationLimit;  // discarded by the caller
    return sol;
  }

  /// Snapshot of the final basis for warm-starting a related solve. A basic
  /// artificial (unit column +/-e_a) is exported as the slack of its row
  /// (e_a — a parallel unit column, so the swap keeps the basis nonsingular
  /// and that slack cannot already be basic elsewhere).
  Basis export_basis() const {
    Basis b;
    b.structural_count = nstruct_;
    b.constraint_count = m_;
    b.basic.resize(sz(m_));
    b.status.assign(sz(nstruct_ + m_), VarStatus::kAtLower);
    for (int j = 0; j < nstruct_ + m_; ++j) {
      if (in_basis_[sz(j)]) {
        b.status[sz(j)] = VarStatus::kBasic;
      } else if (at_upper_[sz(j)]) {
        b.status[sz(j)] = VarStatus::kAtUpper;
      }
    }
    for (int r = 0; r < m_; ++r) {
      int col = basis_[sz(r)];
      if (col >= first_artificial_) {
        const int slack = nstruct_ + art_row_[sz(col)];
        if (b.status[sz(slack)] == VarStatus::kBasic) return {};  // defensive
        b.status[sz(slack)] = VarStatus::kBasic;
        col = slack;
      }
      b.basic[sz(r)] = col;
    }
    return b;
  }

 private:
  static std::size_t sz(int i) { return static_cast<std::size_t>(i); }

  void build_common() {
    m_ = model_.constraint_count();
    nstruct_ = model_.variable_count();
    // Column layout: [0, nstruct) structural, [nstruct, nstruct+m) slacks,
    // [first_artificial_, ncols_) artificials (added lazily below).
    lower_.resize(sz(nstruct_ + m_));
    upper_.resize(sz(nstruct_ + m_));
    cols_.cols.resize(sz(nstruct_));

    const bool maximize = model_.sense() == Sense::kMaximize;
    obj_struct_.resize(sz(nstruct_));
    for (int j = 0; j < nstruct_; ++j) {
      const Variable& v = model_.variable(j);
      if (!std::isfinite(v.lower)) {
        throw std::invalid_argument("simplex: finite lower bounds required");
      }
      if (v.lower > v.upper) {
        throw std::invalid_argument("simplex: lower bound exceeds upper");
      }
      lower_[sz(j)] = v.lower;
      upper_[sz(j)] = v.upper;
      obj_struct_[sz(j)] = maximize ? -v.objective : v.objective;
    }

    // Normalize rows to <= / = by flipping >= rows; attach slack bounds.
    rhs_.resize(sz(m_));
    row_flip_.assign(sz(m_), 1.0);
    for (int r = 0; r < m_; ++r) {
      const Constraint& c = model_.constraint(r);
      double flip = 1.0;
      if (c.relation == Relation::kGreaterEqual) flip = -1.0;
      row_flip_[sz(r)] = flip;
      rhs_[sz(r)] = flip * c.rhs;
      for (const Term& t : c.terms) {
        cols_.cols[sz(t.var)].push_back({r, flip * t.coef});
      }
      const int slack = nstruct_ + r;
      lower_[sz(slack)] = 0.0;
      upper_[sz(slack)] =
          (c.relation == Relation::kEqual) ? 0.0 : kInfinity;
    }

    // Row-wise adjacency of the structural columns (term.var is the COLUMN
    // here), used to form the pivot row alpha = rho^T A sparsely when
    // updating the cached reduced costs.
    rows_.resize(sz(m_));
    for (int j = 0; j < nstruct_; ++j) {
      for (const Term& t : cols_.cols[sz(j)]) {
        rows_[sz(t.var)].push_back({j, t.coef});
      }
    }
  }

  void init_workspaces() {
    d_.assign(sz(ncols_), 0.0);
    alpha_.assign(sz(ncols_), 0.0);
    alpha_seen_.assign(sz(ncols_), 0);
    w_.assign(sz(m_), 0.0);
    rho_.assign(sz(m_), 0.0);
    ywork_.assign(sz(m_), 0.0);
  }

  void install_cold_basis() {
    // Initial point: structural nonbasic at lower bound; slacks basic.
    ncols_ = nstruct_ + m_;
    x_.assign(sz(ncols_), 0.0);
    at_upper_.assign(sz(ncols_), 0);
    in_basis_.assign(sz(ncols_), 0);
    for (int j = 0; j < nstruct_; ++j) x_[sz(j)] = lower_[sz(j)];

    std::vector<double> activity(sz(m_), 0.0);
    for (int j = 0; j < nstruct_; ++j) {
      if (x_[sz(j)] == 0.0) continue;
      for (const Term& t : cols_.cols[sz(j)]) {
        activity[sz(t.var)] += t.coef * x_[sz(j)];
      }
    }

    basis_.resize(sz(m_));
    first_artificial_ = ncols_;
    std::vector<int> art_rows;
    for (int r = 0; r < m_; ++r) {
      const double resid = rhs_[sz(r)] - activity[sz(r)];
      const int slack = nstruct_ + r;
      const bool slack_ok = resid >= lower_[sz(slack)] - opt_.tol &&
                            resid <= upper_[sz(slack)] + opt_.tol;
      if (slack_ok) {
        basis_[sz(r)] = slack;
        in_basis_[sz(slack)] = 1;
        x_[sz(slack)] = std::max(resid, lower_[sz(slack)]);
        if (upper_[sz(slack)] != kInfinity) {
          x_[sz(slack)] = std::min(x_[sz(slack)], upper_[sz(slack)]);
        }
      } else {
        // Slack pinned to its nearest bound; an artificial absorbs the rest.
        const double s =
            resid < lower_[sz(slack)] ? lower_[sz(slack)] : upper_[sz(slack)];
        x_[sz(slack)] = s;
        at_upper_[sz(slack)] =
            (s == upper_[sz(slack)] && s != lower_[sz(slack)]) ? 1 : 0;
        art_rows.push_back(r);
        art_sign_.push_back(resid - s >= 0.0 ? 1.0 : -1.0);
      }
    }

    // Artificial columns: +/-1 in their row, bounds [0, inf), basic.
    for (const int r : art_rows) {
      const int col = ncols_++;
      lower_.push_back(0.0);
      upper_.push_back(kInfinity);
      x_.push_back(0.0);
      at_upper_.push_back(0);
      in_basis_.push_back(1);
      basis_[sz(r)] = col;
    }
    art_row_.assign(sz(ncols_), -1);
    {
      std::size_t a = 0;
      for (int col = first_artificial_; col < ncols_; ++col, ++a) {
        art_row_[sz(col)] = art_rows[a];
      }
    }

    // Basis validity: every row owns exactly one basic column in range.
    for (int r = 0; r < m_; ++r) {
      BATE_ASSERT_MSG(basis_[sz(r)] >= 0 && basis_[sz(r)] < ncols_ &&
                          in_basis_[sz(basis_[sz(r)])] == 1,
                      "simplex: invalid initial basis");
    }

    // The initial basis is diagonal (slack/artificial unit columns, the
    // artificial sign folded into base_diag_); the eta file starts empty.
    base_diag_.assign(sz(m_), 1.0);
    for (int r = 0; r < m_; ++r) {
      const int bcol = basis_[sz(r)];
      if (bcol >= first_artificial_) {
        base_diag_[sz(r)] = 1.0 / art_sign_[sz(bcol - first_artificial_)];
      }
    }

    init_workspaces();
    recompute_basics();
  }

  /// Installs a caller-supplied basis: no artificial columns, nonbasic
  /// statuses repaired by bound-flipping (kAtUpper on an infinite upper
  /// bound, or a kBasic column no row references, falls back to the lower
  /// bound), then a fresh factorization — refactorize() also evicts
  /// numerically dependent columns to a bound and hands their rows to the
  /// slacks. Returns false on a malformed basis (caller rebuilds cold).
  bool install_warm_basis(const Basis& warm) {
    ncols_ = nstruct_ + m_;
    first_artificial_ = ncols_;
    x_.assign(sz(ncols_), 0.0);
    at_upper_.assign(sz(ncols_), 0);
    in_basis_.assign(sz(ncols_), 0);
    basis_.assign(sz(m_), -1);
    for (int r = 0; r < m_; ++r) {
      const int col = warm.basic[sz(r)];
      if (col < 0 || col >= ncols_ || in_basis_[sz(col)] ||
          warm.status[sz(col)] != VarStatus::kBasic) {
        return false;
      }
      basis_[sz(r)] = col;
      in_basis_[sz(col)] = 1;
    }
    for (int j = 0; j < ncols_; ++j) {
      if (in_basis_[sz(j)]) continue;
      const bool to_upper = warm.status[sz(j)] == VarStatus::kAtUpper &&
                            upper_[sz(j)] != kInfinity;
      x_[sz(j)] = to_upper ? upper_[sz(j)] : lower_[sz(j)];
      at_upper_[sz(j)] = to_upper ? 1 : 0;
    }
    art_row_.assign(sz(ncols_), -1);
    art_sign_.clear();
    base_diag_.assign(sz(m_), 1.0);
    init_workspaces();
    c_.assign(sz(ncols_), 0.0);  // real objective set by run_warm()
    refactorize();
    return true;
  }

  /// Column of the full constraint matrix as sparse (row, coef) terms.
  /// Structural columns are borrowed views into the column store; unit
  /// (slack / artificial) columns are synthesized into the caller's
  /// one-element buffer — no per-column vector copies on the hot path.
  std::span<const Term> column(int col, Term& unit) const {
    if (col < nstruct_) return cols_.cols[sz(col)];
    if (col < nstruct_ + m_) {
      unit = {col - nstruct_, 1.0};
    } else {
      unit = {art_row_[sz(col)], art_sign_[sz(col - first_artificial_)]};
    }
    return {&unit, 1};
  }

  // --- PFI basis representation --------------------------------------------

  /// FTRAN: v := B^-1 v, streaming the eta file forward.
  void ftran(std::vector<double>& v) const {
    for (int i = 0; i < m_; ++i) v[sz(i)] *= base_diag_[sz(i)];
    for (const EtaHeader& e : etas_) {
      const double vr = v[sz(e.row)];
      if (vr == 0.0) continue;
      v[sz(e.row)] = e.pivot * vr;
      for (int k = e.begin; k < e.end; ++k) {
        v[sz(eta_terms_[sz(k)].var)] += eta_terms_[sz(k)].coef * vr;
      }
    }
  }

  /// BTRAN: v := B^-T v, streaming the eta file backward.
  void btran(std::vector<double>& v) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const EtaHeader& e = *it;
      double acc = e.pivot * v[sz(e.row)];
      for (int k = e.begin; k < e.end; ++k) {
        acc += eta_terms_[sz(k)].coef * v[sz(eta_terms_[sz(k)].var)];
      }
      v[sz(e.row)] = acc;
    }
    for (int i = 0; i < m_; ++i) v[sz(i)] *= base_diag_[sz(i)];
  }

  /// Appends the eta factor for pivoting column `w` (= B^-1 A_enter) into
  /// row `row`.
  void append_eta(int row, const std::vector<double>& w) {
    const double inv = 1.0 / w[sz(row)];
    const int begin = static_cast<int>(eta_terms_.size());
    for (int i = 0; i < m_; ++i) {
      if (i == row || w[sz(i)] == 0.0) continue;
      eta_terms_.push_back({i, -w[sz(i)] * inv});
    }
    etas_.push_back({row, inv, begin, static_cast<int>(eta_terms_.size())});
  }

  /// Rebuilds the eta file from the current basis columns (reinversion),
  /// then refreshes basic values and reduced costs. Unit basis columns fold
  /// into the diagonal base; structural columns pivot greedily on the
  /// largest available magnitude. A numerically dependent structural column
  /// (|pivot| below tolerance — drift, not a property of a valid basis) is
  /// evicted and its row handed back to the slack.
  void refactorize() {
    ++refactorizations_;
    etas_.clear();
    eta_terms_.clear();
    base_diag_.assign(sz(m_), 1.0);
    std::vector<char> pivoted(sz(m_), 0);
    std::vector<int> new_basis(sz(m_), -1);
    std::vector<int> structural;
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[sz(r)];
      if (b < nstruct_) {
        structural.push_back(b);
        continue;
      }
      int row = b - nstruct_;
      double coef = 1.0;
      if (b >= first_artificial_) {
        row = art_row_[sz(b)];
        coef = art_sign_[sz(b - first_artificial_)];
      }
      BATE_ASSERT_MSG(!pivoted[sz(row)],
                      "simplex: duplicate unit column in basis");
      base_diag_[sz(row)] = 1.0 / coef;
      pivoted[sz(row)] = 1;
      new_basis[sz(row)] = b;
    }
    for (const int c : structural) {
      std::fill(w_.begin(), w_.end(), 0.0);
      for (const Term& t : cols_.cols[sz(c)]) w_[sz(t.var)] = t.coef;
      ftran(w_);
      int best_row = -1;
      double best = 1e-10;
      for (int r = 0; r < m_; ++r) {
        if (pivoted[sz(r)]) continue;
        if (std::abs(w_[sz(r)]) > best) {
          best = std::abs(w_[sz(r)]);
          best_row = r;
        }
      }
      if (best_row < 0) {
        // Evict: pin to the nearest bound; the slack takes its row below.
        in_basis_[sz(c)] = 0;
        const double lo = lower_[sz(c)];
        const double hi = upper_[sz(c)];
        const double xv = x_[sz(c)];
        const bool to_upper = hi != kInfinity && std::abs(hi - xv) < std::abs(xv - lo);
        x_[sz(c)] = to_upper ? hi : lo;
        at_upper_[sz(c)] = to_upper ? 1 : 0;
        continue;
      }
      append_eta(best_row, w_);
      pivoted[sz(best_row)] = 1;
      new_basis[sz(best_row)] = c;
    }
    for (int r = 0; r < m_; ++r) {
      if (pivoted[sz(r)]) continue;
      const int slack = nstruct_ + r;
      new_basis[sz(r)] = slack;
      in_basis_[sz(slack)] = 1;
    }
    basis_ = new_basis;
    pivots_since_refactor_ = 0;
    recompute_basics();
    recompute_reduced_costs();
  }

  // --- Objectives and reduced costs ----------------------------------------

  void set_phase1_objective() {
    c_.assign(sz(ncols_), 0.0);
    for (int j = first_artificial_; j < ncols_; ++j) c_[sz(j)] = 1.0;
    recompute_reduced_costs();
  }

  void set_phase2_objective() {
    c_.assign(sz(ncols_), 0.0);
    for (int j = 0; j < nstruct_; ++j) c_[sz(j)] = obj_struct_[sz(j)];
    recompute_reduced_costs();
  }

  /// Exact reduced costs for every column: d_j = c_j - y^T A_j with
  /// y = c_B^T B^-1 (one BTRAN, then one pass over the column nonzeros).
  void recompute_reduced_costs() {
    for (int r = 0; r < m_; ++r) ywork_[sz(r)] = c_[sz(basis_[sz(r)])];
    btran(ywork_);
    Term unit;
    for (int j = 0; j < ncols_; ++j) {
      if (in_basis_[sz(j)]) {
        d_[sz(j)] = 0.0;
        continue;
      }
      double d = c_[sz(j)];
      for (const Term& t : column(j, unit)) d -= ywork_[sz(t.var)] * t.coef;
      d_[sz(j)] = d;
    }
    d_exact_ = true;
  }

  /// Updates the cached reduced costs across a basis change from the pivot
  /// row: with rho = e_r^T B^-1 (old basis) and mu = d_enter / w_r,
  /// d_j' = d_j - mu * (rho^T A_j). The pivot row is formed sparsely from
  /// the row-wise adjacency, touching only columns with support in rho.
  void update_reduced_costs(int enter, int leave_row, double pivot_w) {
    std::fill(rho_.begin(), rho_.end(), 0.0);
    rho_[sz(leave_row)] = 1.0;
    btran(rho_);
    const double mu = d_[sz(enter)] / pivot_w;
    alpha_touched_.clear();
    auto touch = [&](int j, double v) {
      if (!alpha_seen_[sz(j)]) {
        alpha_seen_[sz(j)] = 1;
        alpha_touched_.push_back(j);
      }
      alpha_[sz(j)] += v;
    };
    for (int i = 0; i < m_; ++i) {
      const double rv = rho_[sz(i)];
      if (rv == 0.0) continue;
      for (const Term& t : rows_[sz(i)]) touch(t.var, rv * t.coef);
      touch(nstruct_ + i, rv);  // slack column e_i
    }
    for (int a = first_artificial_; a < ncols_; ++a) {
      const double rv = rho_[sz(art_row_[sz(a)])];
      if (rv != 0.0) touch(a, rv * art_sign_[sz(a - first_artificial_)]);
    }
    for (const int j : alpha_touched_) {
      d_[sz(j)] -= mu * alpha_[sz(j)];
      alpha_[sz(j)] = 0.0;
      alpha_seen_[sz(j)] = 0;
    }
    d_[sz(enter)] = 0.0;  // entering column becomes basic
    d_exact_ = false;
  }

  // --- Pricing --------------------------------------------------------------

  bool eligible(int j, double& score, double& dir) const {
    if (in_basis_[sz(j)]) return false;
    if (lower_[sz(j)] == upper_[sz(j)]) return false;  // fixed
    const double d = d_[sz(j)];
    if (!at_upper_[sz(j)] && d < -opt_.tol) {
      score = -d;
      dir = 1.0;
      return true;
    }
    if (at_upper_[sz(j)] && d > opt_.tol) {
      score = d;
      dir = -1.0;
      return true;
    }
    return false;
  }

  int pricing_window() const {
    if (opt_.pricing_window > 0) return opt_.pricing_window;
    return std::max(64, ncols_ / 8);
  }

  /// Partial pricing against the cached reduced costs: scan from the
  /// rotating cursor, Dantzig-best within the window, extending the scan
  /// until a candidate appears or the rotation completes. Bland mode scans
  /// all columns in index order and takes the first eligible one.
  int price(bool bland, double& enter_dir) {
    if (bland || opt_.reference_mode) {
      int best_j = -1;
      double best = opt_.tol;
      for (int j = 0; j < ncols_; ++j) {
        double score = 0.0;
        double dir = 0.0;
        if (!eligible(j, score, dir)) continue;
        if (bland) {
          enter_dir = dir;
          return j;
        }
        if (score > best) {
          best = score;
          best_j = j;
          enter_dir = dir;
        }
      }
      return best_j;
    }
    const int window = pricing_window();
    int best_j = -1;
    double best = opt_.tol;
    int j = price_cursor_;
    for (int scanned = 1; scanned <= ncols_; ++scanned) {
      double score = 0.0;
      double dir = 0.0;
      if (eligible(j, score, dir) && score > best) {
        best = score;
        best_j = j;
        enter_dir = dir;
      }
      ++j;
      if (j == ncols_) j = 0;
      if (best_j >= 0 && scanned >= window) break;
    }
    price_cursor_ = j;
    return best_j;
  }

  // --- Main loop -------------------------------------------------------------

  /// Recomputes basic variable values exactly: x_B = B^-1 (b - N x_N).
  void recompute_basics() {
    std::vector<double> resid = rhs_;
    Term unit;
    for (int j = 0; j < ncols_; ++j) {
      if (in_basis_[sz(j)] || x_[sz(j)] == 0.0) continue;
      for (const Term& t : column(j, unit)) {
        resid[sz(t.var)] -= t.coef * x_[sz(j)];
      }
    }
    ftran(resid);
    for (int r = 0; r < m_; ++r) x_[sz(basis_[sz(r)])] = resid[sz(r)];
    iters_since_recompute_ = 0;
  }

  // --- Dual simplex ----------------------------------------------------------

  /// Basic values all inside their bounds (tolerance opt_.tol)?
  bool primal_feasible() const {
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[sz(r)];
      if (x_[sz(b)] < lower_[sz(b)] - opt_.tol ||
          x_[sz(b)] > upper_[sz(b)] + opt_.tol) {
        return false;
      }
    }
    return true;
  }

  /// Nonbasic reduced-cost signs all optimal (at-lower d >= -tol, at-upper
  /// d <= tol)? Requires exact reduced costs (set_phase2_objective). Fixed
  /// columns (lower == upper) are dual-feasible at any sign.
  bool dual_feasible() const {
    for (int j = 0; j < ncols_; ++j) {
      if (in_basis_[sz(j)]) continue;
      if (lower_[sz(j)] == upper_[sz(j)]) continue;
      const double d = d_[sz(j)];
      if (at_upper_[sz(j)]) {
        if (d > opt_.tol) return false;
      } else if (d < -opt_.tol) {
        return false;
      }
    }
    return true;
  }

  enum class DualResult { kPrimalFeasible, kIterationLimit, kStall };

  /// Dual simplex loop: while some basic variable violates a bound, choose
  /// the most-violating row as the leaving row, form its pivot row
  /// alpha = e_r^T B^-1 A sparsely (one BTRAN + the row-wise adjacency, the
  /// same machinery as the primal reduced-cost update), and run the
  /// bounded-variable dual ratio test: among nonbasic columns whose feasible
  /// movement (up from lower, down from upper) drives the leaving variable
  /// toward its violated bound, enter the one minimizing |d_j / alpha_j| —
  /// the largest dual step that keeps every reduced-cost sign valid. Each
  /// pivot appends one eta factor; reduced costs update from the same alpha
  /// row (d' = d - mu * alpha, mu = d_q / alpha_q, which also leaves the
  /// leaving column at its correct new reduced cost -mu).
  ///
  /// Returns kPrimalFeasible when no basic bound violation remains (the
  /// caller confirms optimality through the primal loop's exact-recompute
  /// path), kStall on a tiny pivot, a no-entering-column row, or a long
  /// degenerate run (the caller falls back to the composite repair — always
  /// sound, so the dual loop never has to certify infeasibility itself).
  DualResult dual_iterate() {
    Term unit;
    int degenerate_run = 0;
    auto reset_alpha = [&] {
      for (const int j : alpha_touched_) {
        alpha_[sz(j)] = 0.0;
        alpha_seen_[sz(j)] = 0;
      }
    };
    while (iterations_ < opt_.iteration_limit) {
      ++iterations_;
      ++iters_since_recompute_;
      if (pivots_since_refactor_ >= opt_.recompute_every) {
        refactorize();
      } else if (iters_since_recompute_ >= opt_.recompute_every) {
        recompute_basics();
      }

      // Leaving row: most-violating basic (Dantzig-style dual pricing).
      int r = -1;
      double viol = opt_.tol;
      bool below = false;
      for (int i = 0; i < m_; ++i) {
        const int b = basis_[sz(i)];
        const double lo_gap = lower_[sz(b)] - x_[sz(b)];
        if (lo_gap > viol) {
          viol = lo_gap;
          r = i;
          below = true;
          continue;
        }
        if (upper_[sz(b)] != kInfinity) {
          const double hi_gap = x_[sz(b)] - upper_[sz(b)];
          if (hi_gap > viol) {
            viol = hi_gap;
            r = i;
            below = false;
          }
        }
      }
      if (r < 0) return DualResult::kPrimalFeasible;

      // Pivot row of the leaving row: alpha_j = e_r^T B^-1 A_j, formed
      // sparsely from the row-wise adjacency (the warm path never has
      // artificial columns, so structural + slack coverage is complete).
      std::fill(rho_.begin(), rho_.end(), 0.0);
      rho_[sz(r)] = 1.0;
      btran(rho_);
      alpha_touched_.clear();
      auto touch = [&](int j, double v) {
        if (!alpha_seen_[sz(j)]) {
          alpha_seen_[sz(j)] = 1;
          alpha_touched_.push_back(j);
        }
        alpha_[sz(j)] += v;
      };
      for (int i = 0; i < m_; ++i) {
        const double rv = rho_[sz(i)];
        if (rv == 0.0) continue;
        for (const Term& t : rows_[sz(i)]) touch(t.var, rv * t.coef);
        touch(nstruct_ + i, rv);  // slack column e_i
      }

      // Bounded dual ratio test. The leaving variable must travel `delta`
      // to reach its violated bound; a nonbasic j moving in its feasible
      // direction changes it at rate `eff` per unit, so only sign-matching
      // columns are eligible, and among them the smallest |d_j / alpha_j|
      // bounds the dual step that keeps every reduced cost sign-valid.
      const int leave = basis_[sz(r)];
      const double target = below ? lower_[sz(leave)] : upper_[sz(leave)];
      const double delta = target - x_[sz(leave)];
      int q = -1;
      double best_ratio = kInfinity;
      double best_alpha = 0.0;
      for (const int j : alpha_touched_) {
        if (in_basis_[sz(j)]) continue;
        if (lower_[sz(j)] == upper_[sz(j)]) continue;  // fixed: cannot move
        const double a = alpha_[sz(j)];
        if (std::abs(a) <= opt_.pivot_tol) continue;
        const double eff = at_upper_[sz(j)] ? a : -a;
        if ((delta > 0.0 && eff <= 0.0) || (delta < 0.0 && eff >= 0.0)) {
          continue;
        }
        const double ratio = std::abs(d_[sz(j)]) / std::abs(a);
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 &&
             std::abs(a) > std::abs(best_alpha))) {
          best_ratio = ratio;
          best_alpha = a;
          q = j;
        }
      }
      if (q < 0) {
        // Dual unbounded under exact arithmetic = primal infeasible; with
        // cached reduced costs it may also be drift. Hand over either way.
        reset_alpha();
        return DualResult::kStall;
      }

      // FTRAN the entering column for the basis update and primal step.
      std::fill(w_.begin(), w_.end(), 0.0);
      for (const Term& t : column(q, unit)) w_[sz(t.var)] = t.coef;
      ftran(w_);
      const double pivot = w_[sz(r)];
      if (std::abs(pivot) <= opt_.pivot_tol) {
        reset_alpha();
        if (pivots_since_refactor_ > 0) {
          refactorize();  // retry the row on a fresh factorization
          continue;
        }
        return DualResult::kStall;
      }

      // Reduced-cost update from the alpha row already in hand (the dual
      // twin of update_reduced_costs; the leaving column is touched with
      // alpha_leave = 1, landing on its new reduced cost -mu).
      const double mu = d_[sz(q)] / pivot;
      for (const int j : alpha_touched_) {
        d_[sz(j)] -= mu * alpha_[sz(j)];
        alpha_[sz(j)] = 0.0;
        alpha_seen_[sz(j)] = 0;
      }
      d_[sz(q)] = 0.0;
      d_exact_ = false;

      // Primal step: the leaving variable lands exactly on its violated
      // bound; the entering variable absorbs the movement. An entering
      // value beyond its own far bound is just primal infeasibility for a
      // later dual iteration — dual feasibility is what the loop maintains.
      const double dt = -delta / pivot;
      for (int i = 0; i < m_; ++i) {
        x_[sz(basis_[sz(i)])] -= dt * w_[sz(i)];
      }
      x_[sz(leave)] = target;
      at_upper_[sz(leave)] = below ? 0 : 1;
      in_basis_[sz(leave)] = 0;
      x_[sz(q)] += dt;
      in_basis_[sz(q)] = 1;
      at_upper_[sz(q)] = 0;
      basis_[sz(r)] = q;
      append_eta(r, w_);
      ++pivots_;
      ++dual_pivots_;
      ++pivots_since_refactor_;

      // Anti-cycling: a long run of zero-length dual steps could cycle;
      // the composite repair (Bland-guarded primal) takes over instead.
      degenerate_run =
          (best_ratio <= opt_.tol && std::abs(dt) <= opt_.tol)
              ? degenerate_run + 1
              : 0;
      if (degenerate_run >= opt_.degenerate_switch) return DualResult::kStall;
    }
    return DualResult::kIterationLimit;
  }

  // --- Primal main loop ------------------------------------------------------

  SolveStatus iterate() {
    int degenerate_run = 0;
    Term unit;

    while (iterations_ < opt_.iteration_limit) {
      ++iterations_;
      ++iters_since_recompute_;
      if (opt_.reference_mode) {
        refactorize();
      } else if (pivots_since_refactor_ >= opt_.recompute_every) {
        refactorize();
      } else if (iters_since_recompute_ >= opt_.recompute_every) {
        // Long bound-flip runs append no etas but still drift x.
        recompute_basics();
      }

      const bool bland = degenerate_run >= opt_.degenerate_switch;
      // Bland's anti-cycling argument needs exact reduced-cost signs.
      if (bland && !d_exact_) recompute_reduced_costs();

      double enter_dir = 0.0;
      int enter = price(bland, enter_dir);
      if (enter < 0) {
        // The cached reduced costs priced out; confirm against exact ones
        // before declaring optimality.
        if (d_exact_) return SolveStatus::kOptimal;
        ++pricing_resets_;
        recompute_reduced_costs();
        enter = price(bland, enter_dir);
        if (enter < 0) return SolveStatus::kOptimal;
      }

      // FTRAN: w = B^-1 A_enter.
      std::fill(w_.begin(), w_.end(), 0.0);
      for (const Term& t : column(enter, unit)) w_[sz(t.var)] = t.coef;
      ftran(w_);

      // Ratio test. Entering var moves by t*enter_dir; basic r moves at rate
      // -enter_dir * w[r].
      double t_max = upper_[sz(enter)] - lower_[sz(enter)];  // bound flip
      int leave_row = -1;
      double leave_pivot = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double rate = -enter_dir * w_[sz(r)];
        if (std::abs(rate) <= opt_.pivot_tol) continue;
        const int b = basis_[sz(r)];
        double limit;
        if (rate > 0.0) {
          if (upper_[sz(b)] == kInfinity) continue;
          limit = (upper_[sz(b)] - x_[sz(b)]) / rate;
        } else {
          limit = (x_[sz(b)] - lower_[sz(b)]) / (-rate);
        }
        limit = std::max(limit, 0.0);
        if (limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 &&
             (leave_row < 0 || std::abs(w_[sz(r)]) > std::abs(leave_pivot)))) {
          t_max = limit;
          leave_row = r;
          leave_pivot = w_[sz(r)];
        }
      }

      // Unbounded iff nothing blocks the entering direction: no basic limit
      // and no opposite bound to flip to. (t_max finite implies a blocking
      // row or a bound flip, so this single check suffices; the old second
      // leave_row < 0 branch was unreachable.)
      if (t_max == kInfinity) return SolveStatus::kUnbounded;

      degenerate_run = (t_max <= opt_.tol) ? degenerate_run + 1 : 0;

      if (leave_row < 0) {
        // Bound flip: entering variable crosses to its other bound.
        const double step = t_max * enter_dir;
        x_[sz(enter)] += step;
        at_upper_[sz(enter)] = at_upper_[sz(enter)] ? 0 : 1;
        for (int r = 0; r < m_; ++r) {
          x_[sz(basis_[sz(r)])] -= step * w_[sz(r)];
        }
        continue;
      }

      // Pivot.
      ++pivots_;
      ++pivots_since_refactor_;
      BATE_DCHECK_MSG(std::abs(leave_pivot) > opt_.pivot_tol,
                      "simplex: pivot below tolerance");
      // Reduced-cost update needs the pivot row of the OLD basis inverse;
      // do it before the eta append changes the file. The reference mode
      // recomputes everything next iteration instead.
      if (!opt_.reference_mode) {
        update_reduced_costs(enter, leave_row, leave_pivot);
      }

      const double step = t_max * enter_dir;
      for (int r = 0; r < m_; ++r) {
        x_[sz(basis_[sz(r)])] -= step * w_[sz(r)];
      }
      const int leave = basis_[sz(leave_row)];
      const double rate = -enter_dir * leave_pivot;
      // Pin the leaving variable to the bound it reached.
      x_[sz(leave)] = (rate > 0.0) ? upper_[sz(leave)] : lower_[sz(leave)];
      at_upper_[sz(leave)] = (rate > 0.0) ? 1 : 0;
      in_basis_[sz(leave)] = 0;
      x_[sz(enter)] += step;
      in_basis_[sz(enter)] = 1;
      at_upper_[sz(enter)] = 0;
      basis_[sz(leave_row)] = enter;
      append_eta(leave_row, w_);
    }
    return SolveStatus::kIterationLimit;
  }

  Solution finish(SolveStatus status) {
    recompute_basics();
    Solution sol;
    sol.status = status;
    sol.iterations = iterations_;
    sol.pivots = pivots_;
    sol.dual_pivots = dual_pivots_;
    // Reference mode refactorizes every iteration by design; reporting
    // that would drown the fast-path signal.
    sol.refactorizations = opt_.reference_mode ? 0 : refactorizations_;
    sol.pricing_resets = pricing_resets_;
    sol.x.assign(sz(nstruct_), 0.0);
    for (int j = 0; j < nstruct_; ++j) sol.x[sz(j)] = x_[sz(j)];
    double obj = 0.0;
    for (int j = 0; j < nstruct_; ++j) obj += obj_struct_[sz(j)] * x_[sz(j)];
    const bool maximize = model_.sense() == Sense::kMaximize;
    sol.objective = maximize ? -obj : obj;

    if (status == SolveStatus::kOptimal) {
      // Duals y = c_B^T B^-1 of the internal minimization problem, mapped
      // back through the row flips and the sense negation so that each
      // dual is the shadow price d(objective)/d(rhs) in the model's sense.
      for (int r = 0; r < m_; ++r) ywork_[sz(r)] = c_[sz(basis_[sz(r)])];
      btran(ywork_);
      sol.duals.assign(sz(m_), 0.0);
      for (int i = 0; i < m_; ++i) {
        sol.duals[sz(i)] =
            ywork_[sz(i)] * row_flip_[sz(i)] * (maximize ? -1.0 : 1.0);
      }
    }
    return sol;
  }

  const Model& model_;
  SimplexOptions opt_;

  int m_ = 0;        // rows
  int nstruct_ = 0;  // structural columns
  int ncols_ = 0;    // total columns
  int first_artificial_ = 0;

  SparseColumns cols_;
  std::vector<std::vector<Term>> rows_;  // row-wise structural adjacency
  std::vector<double> obj_struct_;  // minimization-sense structural costs
  std::vector<double> rhs_;
  std::vector<double> row_flip_;
  std::vector<double> lower_, upper_, x_, c_;
  std::vector<char> at_upper_, in_basis_;
  std::vector<int> basis_;
  std::vector<int> art_row_;
  std::vector<double> art_sign_;

  // PFI basis representation.
  std::vector<double> base_diag_;
  std::vector<EtaHeader> etas_;
  std::vector<Term> eta_terms_;
  int pivots_since_refactor_ = 0;
  int iters_since_recompute_ = 0;

  // Cached reduced costs + pivot-row workspace.
  std::vector<double> d_;
  bool d_exact_ = false;
  std::vector<double> alpha_;
  std::vector<char> alpha_seen_;
  std::vector<int> alpha_touched_;
  int price_cursor_ = 0;

  std::vector<double> w_, rho_, ywork_;

  long iterations_ = 0;
  long pivots_ = 0;
  long dual_pivots_ = 0;
  long refactorizations_ = 0;
  long pricing_resets_ = 0;
  bool warm_ok_ = false;
  bool gave_up_ = false;
};

/// The simplex proper, after presolve (or directly when presolve is off).
Solution solve_lp_core(const Model& model, const SimplexOptions& options,
                       WarmStart* warm) {
  BATE_TRACE_SPAN("solver.simplex");
  if (warm) warm->used = false;
  if (model.constraint_count() == 0) {
    // Pure bound problem: each variable sits at its best bound.
    Solution sol;
    sol.status = SolveStatus::kOptimal;
    sol.x.resize(static_cast<std::size_t>(model.variable_count()));
    double obj = 0.0;
    for (int j = 0; j < model.variable_count(); ++j) {
      const Variable& v = model.variable(j);
      const double cost =
          model.sense() == Sense::kMaximize ? -v.objective : v.objective;
      double xv = cost >= 0.0 ? v.lower : v.upper;
      if (!std::isfinite(xv)) {
        sol.status = SolveStatus::kUnbounded;
        xv = v.lower;
      }
      sol.x[static_cast<std::size_t>(j)] = xv;
      obj += v.objective * xv;
    }
    sol.objective = obj;
    if (warm) warm->basis = Basis{};  // nothing to restart from
    return sol;
  }
  // Warm restart: shape-compatible basis, not in reference mode (the
  // equivalence baseline must be byte-for-byte the pre-overhaul path).
  if (warm && !options.reference_mode && !warm->basis.empty() &&
      warm->basis.compatible_with(model)) {
    SimplexEngine engine(model, options, warm->basis);
    if (engine.warm_ok()) {
      Solution sol = engine.run_warm();
      if (!engine.gave_up()) {
        warm->used = true;
        warm->basis = engine.export_basis();
        return sol;
      }
    }
    // Malformed basis content or a diverged composite phase: solve cold.
  }
  SimplexEngine engine(model, options);
  Solution sol = engine.run();
  if (warm) warm->basis = engine.export_basis();
  return sol;
}

/// One registry flush per completed solve — hot loops only bump engine-
/// local counters, so enabling metrics costs a handful of relaxed atomic
/// adds per solve_lp call (DESIGN.md Sec 9 overhead budget).
void record_lp_solve(const Solution& sol, std::int64_t total_us) {
  if (!obs::enabled()) return;
  static obs::Counter& solves =
      obs::Registry::global().counter("bate_solver_solves_total");
  static obs::Counter& iterations =
      obs::Registry::global().counter("bate_solver_iterations_total");
  static obs::Counter& pivots =
      obs::Registry::global().counter("bate_solver_pivots_total");
  static obs::Counter& dual_pivots =
      obs::Registry::global().counter("bate_solver_dual_pivots_total");
  static obs::Counter& refactorizations =
      obs::Registry::global().counter("bate_solver_refactorizations_total");
  static obs::Counter& pricing_resets =
      obs::Registry::global().counter("bate_solver_pricing_resets_total");
  static obs::Histogram& solve_us =
      obs::Registry::global().histogram("bate_solver_solve_us");
  solves.inc();
  iterations.inc(sol.iterations);
  pivots.inc(sol.pivots);
  dual_pivots.inc(sol.dual_pivots);
  refactorizations.inc(sol.refactorizations);
  pricing_resets.inc(sol.pricing_resets);
  solve_us.record(total_us);
}

Solution solve_lp_impl(const Model& model, const SimplexOptions& options,
                       WarmStart* warm) {
  validate_model(model);
  BATE_ASSERT_MSG(options.iteration_limit > 0 && options.tol > 0.0 &&
                      options.pivot_tol > 0.0,
                  "simplex: nonsensical options");
  // Reference mode bypasses presolve the same way it bypasses pricing and
  // warm starts: it is the pre-overhaul baseline, byte for byte.
  if (!options.presolve || options.reference_mode) {
    return solve_lp_core(model, options, warm);
  }
  const std::int64_t t0 = obs::now_us();
  PresolveResult pre = [&] {
    BATE_TRACE_SPAN("solver.presolve");
    return presolve_model(model);
  }();
  const long pus = static_cast<long>(obs::now_us() - t0);
  if (pre.infeasible) {
    Solution sol;
    sol.status = SolveStatus::kInfeasible;
    sol.x.resize(static_cast<std::size_t>(model.variable_count()));
    for (int j = 0; j < model.variable_count(); ++j) {
      sol.x[static_cast<std::size_t>(j)] = model.variable(j).lower;
    }
    sol.rows_removed = pre.stats.rows_removed;
    sol.cols_removed = pre.stats.cols_removed;
    sol.presolve_us = pus;
    if (warm) {
      // The handle must hold a full-shape basis after every solve (the
      // engine exports one even for infeasible models); with no engine run,
      // hand back the cold-start slack basis.
      warm->used = false;
      warm->basis = slack_basis(model);
    }
    return sol;
  }
  if (pre.post.trivial()) {
    Solution sol = solve_lp_core(model, options, warm);
    sol.presolve_us = pus;
    return sol;
  }
  // Warm bases live in full-model space (the external contract is
  // unchanged); translate through the reduction both ways.
  WarmStart reduced_warm;
  WarmStart* rw = nullptr;
  if (warm) {
    warm->used = false;
    if (!warm->basis.empty() && warm->basis.compatible_with(model)) {
      reduced_warm.basis = pre.post.to_reduced(warm->basis);
    }
    rw = &reduced_warm;
  }
  const Solution red = solve_lp_core(pre.reduced, options, rw);
  Solution sol = [&] {
    BATE_TRACE_SPAN("solver.postsolve");
    return pre.post.expand(model, red);
  }();
  sol.rows_removed = pre.stats.rows_removed;
  sol.cols_removed = pre.stats.cols_removed;
  sol.presolve_us = pus;
  if (warm) {
    warm->used = rw->used;
    warm->basis = pre.post.to_full(rw->basis, red.x);
  }
  return sol;
}

}  // namespace

Solution solve_lp(const Model& model, const SimplexOptions& options,
                  WarmStart* warm) {
  BATE_TRACE_SPAN("solver.solve_lp");
  const std::int64_t t0 = obs::now_us();
  Solution sol = solve_lp_impl(model, options, warm);
  record_lp_solve(sol, obs::now_us() - t0);
  return sol;
}

}  // namespace bate
