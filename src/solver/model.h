// LP / MILP model container.
//
// The paper solves its traffic-scheduling LP and the admission / recovery
// MILPs with Gurobi; Gurobi is not available offline, so src/solver is a
// from-scratch replacement: this model class, a bounded-variable revised
// primal simplex (simplex.h) and branch & bound (branch_bound.h). The optima
// are identical by LP duality; only absolute solve times differ, and the
// paper's timing claims are ratios that survive the solver swap (DESIGN.md
// Sec 3).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "util/check.h"

namespace bate {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One nonzero of a constraint row: coefficient `coef` on variable `var`.
struct Term {
  int var;
  double coef;
};

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool integer = false;
  std::string name;
};

struct Constraint {
  std::vector<Term> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

class Model {
 public:
  /// Adds a variable; returns its index. Throws std::invalid_argument when
  /// lower > upper.
  int add_variable(double lower, double upper, double objective,
                   std::string name = "");
  /// Adds a 0/1 integer variable.
  int add_binary(double objective, std::string name = "");
  /// Marks an existing variable integral (for branch & bound).
  void set_integer(int var);

  /// Adds a constraint; duplicate vars in `terms` are accumulated.
  void add_constraint(std::vector<Term> terms, Relation rel, double rhs);

  void set_sense(Sense sense) { sense_ = sense; }
  Sense sense() const { return sense_; }

  int variable_count() const { return static_cast<int>(variables_.size()); }
  int constraint_count() const { return static_cast<int>(constraints_.size()); }
  // Hot-path accessors: the solver and the model builders index these in
  // inner loops, so bounds are a debug-build contract (BATE_DCHECK), not a
  // per-call branch + throw.
  const Variable& variable(int i) const {
    BATE_DCHECK(i >= 0 && i < variable_count());
    return variables_[static_cast<std::size_t>(i)];
  }
  Variable& variable(int i) {
    BATE_DCHECK(i >= 0 && i < variable_count());
    return variables_[static_cast<std::size_t>(i)];
  }
  const Constraint& constraint(int i) const {
    BATE_DCHECK(i >= 0 && i < constraint_count());
    return constraints_[static_cast<std::size_t>(i)];
  }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  bool has_integers() const;

  /// Evaluates a constraint row at the point x.
  double row_activity(int row, const std::vector<double>& x) const;
  /// Objective value at x, in the model's sense.
  double objective_value(const std::vector<double>& x) const;
  /// True when x satisfies all bounds and rows within tolerance.
  bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  Sense sense_ = Sense::kMinimize;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;        // in the model's sense
  std::vector<double> x;         // structural variable values
  /// Dual value per constraint row (LP solves only; empty from branch &
  /// bound). Sign convention: in the model's own sense, so for a
  /// minimization problem a binding >= row has a nonnegative dual. By
  /// strong duality, sum_i dual_i * rhs_i + (bound contributions) equals
  /// the objective; tests/solver_test.cpp checks the usable invariant
  /// directly.
  std::vector<double> duals;
  /// Solver work counters: simplex iterations (including bound flips) and
  /// basis-changing pivots. Accumulated across nodes for MILP solves.
  long iterations = 0;
  long pivots = 0;
  /// Pivots taken by the dual simplex (warm restarts whose basis was primal-
  /// infeasible but dual-feasible — the branch & bound child case). A subset
  /// of `pivots`; zero for cold solves and in reference mode.
  long dual_pivots = 0;
  /// Basis refactorizations (eta-file rebuilds) and partial-pricing window
  /// resets (exact reduced-cost recomputations). Zero in reference mode,
  /// which refactorizes every iteration by design.
  long refactorizations = 0;
  long pricing_resets = 0;
  /// Branch & bound nodes whose relaxation was solved (0 for plain LPs).
  long nodes = 0;
  /// Presolve work counters (solver/presolve.h): rows/columns removed from
  /// the model before the simplex saw it, and the time the reduction took.
  /// All zero when presolve was off, trivial, or in reference mode.
  int rows_removed = 0;
  int cols_removed = 0;
  long presolve_us = 0;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

const char* to_string(SolveStatus status);

}  // namespace bate
