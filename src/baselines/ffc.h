// FFC — Traffic Engineering with Forward Fault Correction (Liu et al.,
// SIGCOMM'14), the paper's conservative baseline (Fig 2b).
//
// FFC guarantees the granted bandwidth under ANY l concurrent link failures:
// for every failure set F with |F| <= l, the tunnels untouched by F must
// still carry the grant. The paper evaluates l = 1. The LP maximizes total
// granted bandwidth sum_d b_d s_d with grants s_d <= 1.
#pragma once

#include "baselines/te.h"
#include "solver/simplex.h"

namespace bate {

class FfcScheme final : public TeScheme {
 public:
  /// References are retained; topo/catalog must outlive the scheme.
  FfcScheme(const Topology& topo, const TunnelCatalog& catalog,
            int max_link_failures = 1, SimplexOptions lp = {});

  std::string name() const override { return "FFC"; }
  const TunnelCatalog& tunnel_catalog() const override { return *catalog_; }
  std::vector<Allocation> allocate(
      std::span<const Demand> demands) const override;

 private:
  const Topology* topo_;
  const TunnelCatalog* catalog_;
  int max_link_failures_;
  SimplexOptions lp_;
};

}  // namespace bate
