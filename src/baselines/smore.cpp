#include "baselines/smore.h"

#include <algorithm>

#include "baselines/teavar.h"  // max_common_grant
#include "solver/model.h"

namespace bate {

SmoreScheme::SmoreScheme(const Topology& topo, const TunnelCatalog& catalog,
                         SimplexOptions lp)
    : topo_(&topo), catalog_(&catalog), lp_(lp) {}

std::vector<Allocation> SmoreScheme::allocate(
    std::span<const Demand> demands) const {
  std::vector<Allocation> allocs;
  allocs.reserve(demands.size());
  for (const Demand& d : demands) {
    allocs.push_back(zero_allocation(*catalog_, d));
  }
  if (demands.empty()) return allocs;

  // Stage 1: per-demand grants maximizing carried volume (SMORE adapts
  // rates per flow; a single concurrent-flow factor would let one
  // bottleneck commodity starve everyone).
  std::vector<double> grant(demands.size(), 0.0);
  {
    Model tput;
    tput.set_sense(Sense::kMaximize);
    struct PairVars {
      int first_var = -1;
      int tunnel_count = 0;
    };
    std::vector<int> svar(demands.size());
    std::vector<std::vector<PairVars>> gv(demands.size());
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const Demand& d = demands[i];
      svar[i] = tput.add_variable(0.0, 1.0, d.total_mbps());
      gv[i].resize(d.pairs.size());
      for (std::size_t p = 0; p < d.pairs.size(); ++p) {
        const auto& tunnels = catalog_->tunnels(d.pairs[p].pair);
        gv[i][p] = {tput.variable_count(), static_cast<int>(tunnels.size())};
        std::vector<Term> row{{svar[i], -1.0}};
        for (std::size_t t = 0; t < tunnels.size(); ++t) {
          // Tiny volume penalty keeps cost-indifferent splits concentrated.
          row.push_back(
              {tput.add_variable(0.0, kInfinity, -1e-4 * d.pairs[p].mbps),
               1.0});
        }
        tput.add_constraint(std::move(row), Relation::kGreaterEqual, 0.0);
      }
    }
    std::vector<std::vector<Term>> rows(
        static_cast<std::size_t>(topo_->link_count()));
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const Demand& d = demands[i];
      for (std::size_t p = 0; p < d.pairs.size(); ++p) {
        const auto& tunnels = catalog_->tunnels(d.pairs[p].pair);
        for (std::size_t t = 0; t < tunnels.size(); ++t) {
          for (LinkId e : tunnels[t].links) {
            rows[static_cast<std::size_t>(e)].push_back(
                {gv[i][p].first_var + static_cast<int>(t), d.pairs[p].mbps});
          }
        }
      }
    }
    for (LinkId e = 0; e < topo_->link_count(); ++e) {
      auto& row = rows[static_cast<std::size_t>(e)];
      if (row.empty()) continue;
      const double cap = topo_->link(e).capacity;
      for (Term& term : row) term.coef /= std::max(cap, 1e-9);
      tput.add_constraint(std::move(row), Relation::kLessEqual, 1.0);
    }
    const Solution ts = solve_lp(tput, lp_);
    if (!ts.optimal()) return allocs;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      grant[i] =
          std::clamp(ts.x[static_cast<std::size_t>(svar[i])], 0.0, 1.0);
      for (std::size_t p = 0; p < demands[i].pairs.size(); ++p) {
        for (int t = 0; t < gv[i][p].tunnel_count; ++t) {
          allocs[i][p][static_cast<std::size_t>(t)] =
              std::max(0.0,
                       ts.x[static_cast<std::size_t>(gv[i][p].first_var +
                                                     t)]) *
              demands[i].pairs[p].mbps;
        }
      }
    }
  }
  // SMORE's load balancing comes from the oblivious tunnel choice itself;
  // the rate adaptation maximizes carried volume over those tunnels.
  (void)grant;
  return allocs;
}

}  // namespace bate