#include "baselines/swan.h"

#include <algorithm>

#include "solver/model.h"

namespace bate {

SwanScheme::SwanScheme(const Topology& topo, const TunnelCatalog& catalog,
                       SimplexOptions lp)
    : topo_(&topo), catalog_(&catalog), lp_(lp) {}

std::vector<Allocation> SwanScheme::allocate(
    std::span<const Demand> demands) const {
  Model model;
  model.set_sense(Sense::kMaximize);

  struct PairVars {
    int first_var = -1;
    int tunnel_count = 0;
  };
  std::vector<std::vector<PairVars>> gvars(demands.size());

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    const int s = model.add_variable(0.0, 1.0, d.total_mbps());
    gvars[i].resize(d.pairs.size());
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog_->tunnels(d.pairs[p].pair);
      gvars[i][p] = {model.variable_count(), static_cast<int>(tunnels.size())};
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        model.add_variable(0.0, kInfinity, 0.0);
      }
      std::vector<Term> row{{s, -1.0}};
      for (int t = 0; t < gvars[i][p].tunnel_count; ++t) {
        row.push_back({gvars[i][p].first_var + t, 1.0});
      }
      model.add_constraint(std::move(row), Relation::kGreaterEqual, 0.0);
    }
  }

  std::vector<std::vector<Term>> rows(
      static_cast<std::size_t>(topo_->link_count()));
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog_->tunnels(d.pairs[p].pair);
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        for (LinkId e : tunnels[t].links) {
          rows[static_cast<std::size_t>(e)].push_back(
              {gvars[i][p].first_var + static_cast<int>(t), d.pairs[p].mbps});
        }
      }
    }
  }
  for (LinkId e = 0; e < topo_->link_count(); ++e) {
    auto& row = rows[static_cast<std::size_t>(e)];
    if (row.empty()) continue;
    const double cap = topo_->link(e).capacity;
    for (Term& term : row) term.coef /= std::max(cap, 1e-9);
    model.add_constraint(std::move(row), Relation::kLessEqual, 1.0);
  }

  const Solution sol = solve_lp(model, lp_);

  std::vector<Allocation> allocs;
  allocs.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    Allocation a = zero_allocation(*catalog_, demands[i]);
    if (sol.optimal()) {
      for (std::size_t p = 0; p < demands[i].pairs.size(); ++p) {
        for (int t = 0; t < gvars[i][p].tunnel_count; ++t) {
          a[p][static_cast<std::size_t>(t)] =
              std::max(0.0,
                       sol.x[static_cast<std::size_t>(gvars[i][p].first_var +
                                                      t)]) *
              demands[i].pairs[p].mbps;
        }
      }
    }
    allocs.push_back(std::move(a));
  }
  return allocs;
}

}  // namespace bate
