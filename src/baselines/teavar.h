// TEAVAR — availability-aware TE via Conditional Value at Risk (Bogle et
// al., SIGCOMM'19), the paper's risk-aware but one-size-fits-all baseline
// (Fig 2c): every demand gets the SAME availability level beta.
//
// Adaptation (DESIGN.md Sec 3/5): TEAVAR's scenario set is projected onto
// per-demand tunnel patterns (exact transformation) and the CVaR is applied
// per flow — the per-flow variant of the TEAVAR paper — at a single global
// beta (the paper's simulations use beta = 99.9%, the largest user target).
// Two LPs: (1) a common grant factor gamma* maximizing admitted volume,
// (2) CVaR_beta minimization of the per-flow fractional loss at grant
// gamma*.
#pragma once

#include "baselines/te.h"
#include "scenario/pattern.h"
#include "solver/simplex.h"

namespace bate {

class TeavarScheme final : public TeScheme {
 public:
  TeavarScheme(const Topology& topo, const TunnelCatalog& catalog,
               double beta = 0.999, SimplexOptions lp = {});

  std::string name() const override { return "TEAVAR"; }
  const TunnelCatalog& tunnel_catalog() const override { return *catalog_; }
  std::vector<Allocation> allocate(
      std::span<const Demand> demands) const override;

  double beta() const { return beta_; }

 private:
  const Topology* topo_;
  const TunnelCatalog* catalog_;
  double beta_;
  SimplexOptions lp_;
  std::vector<PatternDistribution> patterns_;  // per pair, reference model
};

/// Shared helper (also used by SMORE): the largest common grant factor
/// gamma <= 1 such that gamma * b_d is routable for every demand at once.
/// Returns 0 on solver failure.
double max_common_grant(const Topology& topo, const TunnelCatalog& catalog,
                        std::span<const Demand> demands,
                        const SimplexOptions& lp);

}  // namespace bate
