#include "baselines/b4.h"

#include <algorithm>
#include <stdexcept>

#include "solver/model.h"  // kInfinity

namespace bate {

B4Scheme::B4Scheme(const Topology& topo, const TunnelCatalog& catalog,
                   double fill_step)
    : topo_(&topo), catalog_(&catalog), fill_step_(fill_step) {
  if (fill_step <= 0.0 || fill_step > 1.0) {
    throw std::invalid_argument("B4Scheme: fill_step must be in (0,1]");
  }
}

std::vector<Allocation> B4Scheme::allocate(
    std::span<const Demand> demands) const {
  std::vector<Allocation> allocs;
  allocs.reserve(demands.size());
  for (const Demand& d : demands) {
    allocs.push_back(zero_allocation(*catalog_, d));
  }

  std::vector<double> residual(static_cast<std::size_t>(topo_->link_count()));
  for (LinkId e = 0; e < topo_->link_count(); ++e) {
    residual[static_cast<std::size_t>(e)] = topo_->link(e).capacity;
  }

  // Progressive filling: every round each unfrozen demand receives one
  // fair-share quantum (fill_step * b) routed over its tunnels in catalog
  // (shortest-first) order; demands freeze when the quantum no longer fits.
  std::vector<char> frozen(demands.size(), 0);
  std::vector<double> granted(demands.size(), 0.0);  // fraction of demand
  const int rounds = static_cast<int>(1.0 / fill_step_ + 0.5);

  for (int round = 0; round < rounds; ++round) {
    bool any_active = false;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (frozen[i] || granted[i] >= 1.0 - 1e-9) continue;
      const Demand& d = demands[i];
      const double quantum = std::min(fill_step_, 1.0 - granted[i]);

      // Tentatively route the quantum on every pair; roll back on failure.
      std::vector<double> scratch = residual;
      Allocation delta = zero_allocation(*catalog_, d);
      bool ok = true;
      for (std::size_t p = 0; p < d.pairs.size() && ok; ++p) {
        const auto& tunnels = catalog_->tunnels(d.pairs[p].pair);
        double need = quantum * d.pairs[p].mbps;
        for (std::size_t t = 0; t < tunnels.size() && need > 1e-9; ++t) {
          double cap = kInfinity;
          for (LinkId e : tunnels[t].links) {
            cap = std::min(cap, scratch[static_cast<std::size_t>(e)]);
          }
          const double f = std::min(cap, need);
          if (f <= 1e-9) continue;
          delta[p][t] = f;
          need -= f;
          for (LinkId e : tunnels[t].links) {
            scratch[static_cast<std::size_t>(e)] -= f;
          }
        }
        ok = need <= 1e-9;
      }
      if (!ok) {
        frozen[i] = 1;
        continue;
      }
      residual = std::move(scratch);
      for (std::size_t p = 0; p < d.pairs.size(); ++p) {
        for (std::size_t t = 0; t < delta[p].size(); ++t) {
          allocs[i][p][t] += delta[p][t];
        }
      }
      granted[i] += quantum;
      any_active = true;
    }
    if (!any_active) break;
  }
  return allocs;
}

}  // namespace bate
