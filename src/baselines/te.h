// Common interface for traffic-engineering schemes (BATE and the five
// baselines of Sec 5: FFC, TEAVAR, SWAN, SMORE, B4).
//
// A scheme maps a demand set to per-demand tunnel allocations over its own
// tunnel catalog. Schemes other than BATE may grant less than the demanded
// bandwidth (a scale factor <= 1); the evaluation then counts the demand's
// availability target as unmet, which is exactly how the paper's
// satisfaction metric behaves.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "routing/tunnels.h"
#include "topology/graph.h"
#include "workload/demand.h"

namespace bate {

class TeScheme {
 public:
  virtual ~TeScheme() = default;
  virtual std::string name() const = 0;
  virtual const TunnelCatalog& tunnel_catalog() const = 0;
  /// Allocates bandwidth for the demand set. alloc[i] matches demands[i];
  /// shapes follow the scheme's tunnel catalog.
  virtual std::vector<Allocation> allocate(
      std::span<const Demand> demands) const = 0;
};

/// Zero allocation shaped for a demand under a catalog.
Allocation zero_allocation(const TunnelCatalog& catalog, const Demand& demand);

}  // namespace bate
