// B4 — Google's software-defined WAN (Jain et al., SIGCOMM'13). B4
// allocates bandwidth with max-min fairness via progressive filling over
// preferred tunnels; this implementation reproduces the greedy filling
// procedure (quantized fair-share steps, shortest tunnels preferred)
// without B4's hierarchy of flow groups, which the paper's evaluation does
// not exercise.
#pragma once

#include "baselines/te.h"

namespace bate {

class B4Scheme final : public TeScheme {
 public:
  B4Scheme(const Topology& topo, const TunnelCatalog& catalog,
           double fill_step = 0.05);

  std::string name() const override { return "B4"; }
  const TunnelCatalog& tunnel_catalog() const override { return *catalog_; }
  std::vector<Allocation> allocate(
      std::span<const Demand> demands) const override;

 private:
  const Topology* topo_;
  const TunnelCatalog* catalog_;
  double fill_step_;  // fair-share quantum as a fraction of each demand
};

}  // namespace bate
