#include "baselines/ffc.h"

#include <algorithm>

#include "scenario/pattern.h"
#include "solver/model.h"

namespace bate {

Allocation zero_allocation(const TunnelCatalog& catalog,
                           const Demand& demand) {
  Allocation a(demand.pairs.size());
  for (std::size_t p = 0; p < demand.pairs.size(); ++p) {
    a[p].assign(catalog.tunnels(demand.pairs[p].pair).size(), 0.0);
  }
  return a;
}

FfcScheme::FfcScheme(const Topology& topo, const TunnelCatalog& catalog,
                     int max_link_failures, SimplexOptions lp)
    : topo_(&topo),
      catalog_(&catalog),
      max_link_failures_(max_link_failures),
      lp_(lp) {}

std::vector<Allocation> FfcScheme::allocate(
    std::span<const Demand> demands) const {
  Model model;
  model.set_sense(Sense::kMaximize);

  struct PairVars {
    int first_var = -1;
    int tunnel_count = 0;
  };
  std::vector<std::vector<PairVars>> gvars(demands.size());
  std::vector<int> svar(demands.size());

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    svar[i] = model.add_variable(0.0, 1.0, d.total_mbps());
    gvars[i].resize(d.pairs.size());
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog_->tunnels(d.pairs[p].pair);
      gvars[i][p] = {model.variable_count(), static_cast<int>(tunnels.size())};
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        // Tiny negative weight keeps the allocation minimal for the chosen
        // grant instead of absorbing arbitrary spare capacity.
        model.add_variable(0.0, kInfinity, -1e-4 * d.pairs[p].mbps);
      }
      // No-failure grant: sum_t g >= s.
      std::vector<Term> base{{svar[i], -1.0}};
      for (int t = 0; t < gvars[i][p].tunnel_count; ++t) {
        base.push_back({gvars[i][p].first_var + t, 1.0});
      }
      model.add_constraint(std::move(base), Relation::kGreaterEqual, 0.0);

      // Knockout constraints: enumerate failure sets F (|F| <= l) over the
      // links this pair's tunnels traverse.
      const auto uni = tunnel_link_union(tunnels);
      std::vector<std::vector<LinkId>> failure_sets;
      for (LinkId e : uni) failure_sets.push_back({e});
      if (max_link_failures_ >= 2) {
        for (std::size_t a = 0; a < uni.size(); ++a) {
          for (std::size_t b = a + 1; b < uni.size(); ++b) {
            failure_sets.push_back({uni[a], uni[b]});
          }
        }
      }
      for (const auto& fs : failure_sets) {
        std::vector<Term> row{{svar[i], -1.0}};
        bool all_tunnels_dead = true;
        for (std::size_t t = 0; t < tunnels.size(); ++t) {
          bool survives = true;
          for (LinkId e : fs) {
            if (tunnels[t].uses(e)) {
              survives = false;
              break;
            }
          }
          if (survives) {
            row.push_back({gvars[i][p].first_var + static_cast<int>(t), 1.0});
            all_tunnels_dead = false;
          }
        }
        if (all_tunnels_dead) {
          // This failure set kills every tunnel; FFC forces s = 0 for it
          // only if the set is within the protection level, which would
          // zero the demand. Matching FFC practice, single points of
          // failure shared by all tunnels are exempted (otherwise no
          // traffic could ever be admitted on single-homed pairs).
          continue;
        }
        model.add_constraint(std::move(row), Relation::kGreaterEqual, 0.0);
      }
    }
  }

  // Capacity.
  std::vector<std::vector<Term>> rows(
      static_cast<std::size_t>(topo_->link_count()));
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog_->tunnels(d.pairs[p].pair);
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        for (LinkId e : tunnels[t].links) {
          rows[static_cast<std::size_t>(e)].push_back(
              {gvars[i][p].first_var + static_cast<int>(t), d.pairs[p].mbps});
        }
      }
    }
  }
  for (LinkId e = 0; e < topo_->link_count(); ++e) {
    auto& row = rows[static_cast<std::size_t>(e)];
    if (row.empty()) continue;
    const double cap = topo_->link(e).capacity;
    for (Term& term : row) term.coef /= std::max(cap, 1e-9);
    model.add_constraint(std::move(row), Relation::kLessEqual, 1.0);
  }

  // Two-stage solve: FFC shares the protected capacity fairly (the even
  // split of Fig 2b). Stage 1 maximizes a common grant floor; stage 2
  // maximizes total granted volume above that floor.
  {
    Model fair = model;
    for (int v = 0; v < fair.variable_count(); ++v) {
      fair.variable(v).objective = 0.0;
    }
    const int s_common = fair.add_variable(0.0, 1.0, 1.0);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      fair.add_constraint({{svar[i], 1.0}, {s_common, -1.0}},
                          Relation::kGreaterEqual, 0.0);
    }
    const Solution floor_sol = solve_lp(fair, lp_);
    if (floor_sol.optimal()) {
      const double floor = std::clamp(
          floor_sol.x[static_cast<std::size_t>(s_common)] - 1e-9, 0.0, 1.0);
      for (std::size_t i = 0; i < demands.size(); ++i) {
        model.variable(svar[i]).lower = floor;
      }
    }
  }
  const Solution sol = solve_lp(model, lp_);

  std::vector<Allocation> allocs;
  allocs.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    Allocation a = zero_allocation(*catalog_, demands[i]);
    if (sol.optimal()) {
      const double grant =
          std::clamp(sol.x[static_cast<std::size_t>(svar[i])], 0.0, 1.0);
      for (std::size_t p = 0; p < demands[i].pairs.size(); ++p) {
        double reserved = 0.0;
        for (int t = 0; t < gvars[i][p].tunnel_count; ++t) {
          reserved += std::max(
              0.0, sol.x[static_cast<std::size_t>(gvars[i][p].first_var + t)]);
        }
        // The LP reserves enough on each tunnel subset to survive any l
        // failures; the data plane sends the GRANTED rate s*b spread over
        // the reservations (Fig 2b's 1.67/1.67 + 3.33/3.33 even split).
        const double scale =
            reserved > 1e-12 ? std::min(1.0, grant / reserved) : 0.0;
        for (int t = 0; t < gvars[i][p].tunnel_count; ++t) {
          a[p][static_cast<std::size_t>(t)] =
              std::max(0.0,
                       sol.x[static_cast<std::size_t>(gvars[i][p].first_var +
                                                      t)]) *
              scale * demands[i].pairs[p].mbps;
        }
      }
    }
    allocs.push_back(std::move(a));
  }
  return allocs;
}

}  // namespace bate
