// SMORE — Semi-Oblivious Traffic Engineering (Kumar et al., NSDI'18).
// Oblivious-style tunnel selection (routing/oblivious.h) combined with
// dynamic rate adaptation: maximize the common grant factor, then minimize
// the maximum link utilization at that grant (low congestion stretch).
#pragma once

#include "baselines/te.h"
#include "solver/simplex.h"

namespace bate {

class SmoreScheme final : public TeScheme {
 public:
  /// `catalog` is expected to be built with RoutingScheme::kOblivious (the
  /// scheme works with any catalog, but that is SMORE's defining choice).
  SmoreScheme(const Topology& topo, const TunnelCatalog& catalog,
              SimplexOptions lp = {});

  std::string name() const override { return "SMORE"; }
  const TunnelCatalog& tunnel_catalog() const override { return *catalog_; }
  std::vector<Allocation> allocate(
      std::span<const Demand> demands) const override;

 private:
  const Topology* topo_;
  const TunnelCatalog* catalog_;
  SimplexOptions lp_;
};

}  // namespace bate
