#include "baselines/teavar.h"

#include <algorithm>
#include <map>

#include "scenario/pattern.h"
#include "solver/model.h"

namespace bate {

namespace {

struct PairVars {
  int first_var = -1;
  int tunnel_count = 0;
};

/// Adds g variables per (demand, pair, tunnel) plus normalized capacity rows.
std::vector<std::vector<PairVars>> add_flow_structure(
    Model& model, const Topology& topo, const TunnelCatalog& catalog,
    std::span<const Demand> demands) {
  std::vector<std::vector<PairVars>> gvars(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    gvars[i].resize(d.pairs.size());
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog.tunnels(d.pairs[p].pair);
      gvars[i][p] = {model.variable_count(), static_cast<int>(tunnels.size())};
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        model.add_variable(0.0, kInfinity, 0.0);
      }
    }
  }
  std::vector<std::vector<Term>> rows(
      static_cast<std::size_t>(topo.link_count()));
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog.tunnels(d.pairs[p].pair);
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        for (LinkId e : tunnels[t].links) {
          rows[static_cast<std::size_t>(e)].push_back(
              {gvars[i][p].first_var + static_cast<int>(t), d.pairs[p].mbps});
        }
      }
    }
  }
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    auto& row = rows[static_cast<std::size_t>(e)];
    if (row.empty()) continue;
    const double cap = topo.link(e).capacity;
    for (Term& term : row) term.coef /= std::max(cap, 1e-9);
    model.add_constraint(std::move(row), Relation::kLessEqual, 1.0);
  }
  return gvars;
}

}  // namespace

double max_common_grant(const Topology& topo, const TunnelCatalog& catalog,
                        std::span<const Demand> demands,
                        const SimplexOptions& lp) {
  Model model;
  model.set_sense(Sense::kMaximize);
  const int gamma = model.add_variable(0.0, 1.0, 1.0);
  const auto gvars = add_flow_structure(model, topo, catalog, demands);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    for (std::size_t p = 0; p < demands[i].pairs.size(); ++p) {
      std::vector<Term> row{{gamma, -1.0}};
      for (int t = 0; t < gvars[i][p].tunnel_count; ++t) {
        row.push_back({gvars[i][p].first_var + t, 1.0});
      }
      model.add_constraint(std::move(row), Relation::kGreaterEqual, 0.0);
    }
  }
  const Solution sol = solve_lp(model, lp);
  if (!sol.optimal()) return 0.0;
  return std::clamp(sol.x[static_cast<std::size_t>(gamma)], 0.0, 1.0);
}

TeavarScheme::TeavarScheme(const Topology& topo, const TunnelCatalog& catalog,
                           double beta, SimplexOptions lp)
    : topo_(&topo), catalog_(&catalog), beta_(beta), lp_(lp) {
  patterns_.reserve(static_cast<std::size_t>(catalog.pair_count()));
  for (int k = 0; k < catalog.pair_count(); ++k) {
    patterns_.push_back(reference_patterns_for(topo, catalog.tunnels(k)));
  }
}

std::vector<Allocation> TeavarScheme::allocate(
    std::span<const Demand> demands) const {
  if (demands.empty()) return {};
  const double gamma = max_common_grant(*topo_, *catalog_, demands, lp_);
  std::vector<Allocation> allocs;
  allocs.reserve(demands.size());
  for (const Demand& d : demands) {
    allocs.push_back(zero_allocation(*catalog_, d));
  }
  if (gamma <= 0.0) return allocs;

  // TEAVAR aggregates all traffic of one s-d pair into a single commodity
  // (it routes the traffic matrix, not individual users), which is
  // precisely why it cannot differentiate user availability targets
  // (Fig 2c). Aggregate, solve the CVaR LP on pair flows, and hand every
  // user its proportional share of each tunnel.
  std::map<int, double> pair_volume;  // pair -> total demanded Mbps
  for (const Demand& d : demands) {
    for (const PairDemand& pd : d.pairs) pair_volume[pd.pair] += pd.mbps;
  }

  Model model;
  model.set_sense(Sense::kMinimize);
  const double tail = 1.0 / std::max(1e-6, 1.0 - beta_);

  // Flow variables g_{k,t} normalized to the aggregate volume of pair k:
  // sum_t g = gamma exactly (TEAVAR routes the granted traffic, no more).
  std::map<int, int> first_var;
  for (const auto& [pair, volume] : pair_volume) {
    const auto& tunnels = catalog_->tunnels(pair);
    first_var[pair] = model.variable_count();
    std::vector<Term> route;
    for (std::size_t t = 0; t < tunnels.size(); ++t) {
      route.push_back({model.add_variable(0.0, kInfinity, 0.0), 1.0});
    }
    model.add_constraint(std::move(route), Relation::kEqual, gamma);

    // Per-pair CVaR of the fractional loss, weighted by volume.
    const PatternDistribution* dist =
        &patterns_[static_cast<std::size_t>(pair)];
    const int alpha = model.add_variable(-1.0, 1.0, volume);
    const auto pattern_count = static_cast<PatternMask>(dist->prob.size());
    for (PatternMask s = 0; s < pattern_count; ++s) {
      const double prob = dist->prob[s];
      if (prob <= 0.0) continue;
      const int u = model.add_variable(0.0, kInfinity, volume * tail * prob);
      // u >= gamma - sum_{t in S} g - alpha  (loss under pattern S).
      std::vector<Term> row{{u, 1.0}, {alpha, 1.0}};
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        if ((s >> t) & 1u) {
          row.push_back({first_var[pair] + static_cast<int>(t), 1.0});
        }
      }
      model.add_constraint(std::move(row), Relation::kGreaterEqual, gamma);
    }
    const double resid = dist->residual();
    if (resid > 0.0) {
      const int u = model.add_variable(0.0, kInfinity, volume * tail * resid);
      model.add_constraint({{u, 1.0}, {alpha, 1.0}}, Relation::kGreaterEqual,
                           gamma);
    }
  }

  // Capacity rows over aggregated flows.
  std::vector<std::vector<Term>> rows(
      static_cast<std::size_t>(topo_->link_count()));
  for (const auto& [pair, volume] : pair_volume) {
    const auto& tunnels = catalog_->tunnels(pair);
    for (std::size_t t = 0; t < tunnels.size(); ++t) {
      for (LinkId e : tunnels[t].links) {
        rows[static_cast<std::size_t>(e)].push_back(
            {first_var[pair] + static_cast<int>(t), volume});
      }
    }
  }
  for (LinkId e = 0; e < topo_->link_count(); ++e) {
    auto& row = rows[static_cast<std::size_t>(e)];
    if (row.empty()) continue;
    const double cap = topo_->link(e).capacity;
    for (Term& term : row) term.coef /= std::max(cap, 1e-9);
    model.add_constraint(std::move(row), Relation::kLessEqual, 1.0);
  }

  const Solution sol = solve_lp(model, lp_);
  if (!sol.optimal()) return allocs;

  // Proportional shares: user d gets (b_d / volume_k) of pair k's flow.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog_->tunnels(d.pairs[p].pair);
      const int fv = first_var[d.pairs[p].pair];
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        const double g = std::max(
            0.0, sol.x[static_cast<std::size_t>(fv + static_cast<int>(t))]);
        allocs[i][p][t] = g * d.pairs[p].mbps;
      }
    }
  }
  return allocs;
}

}  // namespace bate
