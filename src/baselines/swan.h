// SWAN — Software-driven WAN (Hong et al., SIGCOMM'13). The paper's
// evaluation "lets SWAN maximize the total throughput of all users"
// (Sec 5.2), so the baseline is a throughput-maximizing LP with per-demand
// grants s_d <= 1 over the pre-computed tunnels.
#pragma once

#include "baselines/te.h"
#include "solver/simplex.h"

namespace bate {

class SwanScheme final : public TeScheme {
 public:
  SwanScheme(const Topology& topo, const TunnelCatalog& catalog,
             SimplexOptions lp = {});

  std::string name() const override { return "SWAN"; }
  const TunnelCatalog& tunnel_catalog() const override { return *catalog_; }
  std::vector<Allocation> allocate(
      std::span<const Demand> demands) const override;

 private:
  const Topology* topo_;
  const TunnelCatalog* catalog_;
  SimplexOptions lp_;
};

}  // namespace bate
