// RAII socket primitives for the controller/broker control channel
// (Sec 4: long-lived TCP sessions between the controller and the brokers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace bate {

/// Move-only owner of a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Releases ownership (caller must close).
  int release();
  void close();
  /// Shuts down both directions; unblocks a thread sleeping in recv()
  /// (closing alone does not). Safe to call from another thread.
  void shutdown();

  void set_nonblocking(bool enable);
  void set_nodelay(bool enable);

  /// Writes the whole buffer (blocking socket). Throws std::system_error.
  void write_all(std::span<const std::uint8_t> data);
  /// Reads up to buffer.size() bytes; returns 0 on orderly shutdown, -1 when
  /// a nonblocking read would block. Throws std::system_error on error.
  long read_some(std::span<std::uint8_t> buffer);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds to loopback. Port 0 picks an ephemeral port (see port()).
  explicit TcpListener(std::uint16_t port);

  std::uint16_t port() const { return port_; }
  int fd() const { return socket_.fd(); }
  /// Accepts one connection; nullopt when nonblocking and none pending.
  std::optional<Socket> accept();
  void set_nonblocking(bool enable) { socket_.set_nonblocking(enable); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Blocking loopback connect. Throws std::system_error on failure.
Socket connect_tcp(std::uint16_t port);

}  // namespace bate
