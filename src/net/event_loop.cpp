#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdint>
#include <system_error>
#include <utility>
#include <vector>

#include "util/check.h"

namespace bate {

namespace {

/// Marks the current thread as the loop thread for the dispatch scope;
/// aborts if another thread is already inside run()/run_once().
class LoopThreadScope {
 public:
  explicit LoopThreadScope(std::atomic<std::thread::id>& slot) : slot_(slot) {
    const auto self = std::this_thread::get_id();
    const auto prev = slot_.exchange(self, std::memory_order_acq_rel);
    BATE_ASSERT_MSG(prev == std::thread::id{} || prev == self,
                    "EventLoop: run_once from two threads");
    nested_ = prev == self;
  }
  ~LoopThreadScope() {
    if (!nested_) {
      slot_.store(std::thread::id{}, std::memory_order_release);
    }
  }
  LoopThreadScope(const LoopThreadScope&) = delete;
  LoopThreadScope& operator=(const LoopThreadScope&) = delete;

 private:
  std::atomic<std::thread::id>& slot_;
  bool nested_ = false;
};

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::system_error(errno, std::generic_category(), "eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    const int err = errno;
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw std::system_error(err, std::generic_category(), "epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // Best effort: a full eventfd counter already guarantees a wakeup.
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::apply(PendingOp op) {
  if (op.add) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = op.fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, op.fd, &ev) < 0) {
      // EEXIST: watcher replaced (callback swap); anything else is fatal
      // when applied synchronously, logged-and-dropped when deferred (the
      // fd may have been closed while the op sat in the queue).
      if (errno != EEXIST) {
        throw std::system_error(errno, std::generic_category(),
                                "epoll_ctl(ADD)");
      }
    }
    readers_[op.fd] = std::move(op.cb);
  } else {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, op.fd, nullptr);
    readers_.erase(op.fd);
  }
}

void EventLoop::drain_pending() {
  std::vector<PendingOp> ops;
  {
    MutexLock lock(pending_mu_);
    ops.swap(pending_);
  }
  for (PendingOp& op : ops) {
    try {
      apply(std::move(op));
    } catch (const std::system_error&) {
      // Deferred op raced with fd closure; watching a dead fd is a no-op.
    }
  }
}

void EventLoop::add_reader(int fd, Callback on_readable) {
  if (in_loop_thread()) {
    apply(PendingOp{fd, true, std::move(on_readable)});
    return;
  }
  {
    MutexLock lock(pending_mu_);
    pending_.push_back(PendingOp{fd, true, std::move(on_readable)});
  }
  wake();
}

void EventLoop::remove(int fd) {
  if (in_loop_thread()) {
    apply(PendingOp{fd, false, {}});
    return;
  }
  {
    MutexLock lock(pending_mu_);
    // Cancel any queued add for the same fd first: the pair must not
    // reorder into (remove, stale add).
    std::erase_if(pending_, [fd](const PendingOp& op) { return op.fd == fd; });
    pending_.push_back(PendingOp{fd, false, {}});
  }
  wake();
}

void EventLoop::stop() {
  stopped_ = true;
  wake();
}

int EventLoop::run_once(int timeout_ms) {
  LoopThreadScope scope(loop_thread_);
  drain_pending();

  std::array<epoll_event, 32> events{};
  const int n =
      ::epoll_wait(epoll_fd_, events.data(), events.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  // Collect fds first: a callback may add/remove watchers.
  std::vector<int> ready;
  ready.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t count = 0;
      [[maybe_unused]] const auto r = ::read(wake_fd_, &count, sizeof(count));
      continue;
    }
    ready.push_back(fd);
  }
  // A wakeup means queued mutations may be waiting; apply them before
  // dispatch so a cross-thread remove() suppresses a pending event.
  drain_pending();
  int dispatched = 0;
  for (int fd : ready) {
    const auto it = readers_.find(fd);
    if (it == readers_.end()) continue;
    const Callback cb = it->second;  // copy: callback may remove itself
    cb();
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::run(int tick_ms, const Callback& on_tick) {
  // stop() is sticky: a stop that lands before the loop thread enters run()
  // must not be lost (start/stop churn), so stopped_ is never reset here.
  while (!stopped_) {
    run_once(tick_ms);
    if (on_tick) on_tick();
  }
}

}  // namespace bate
