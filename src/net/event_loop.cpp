#include "net/event_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <system_error>
#include <vector>

namespace bate {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_reader(int fd, Callback on_readable) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl(ADD)");
  }
  readers_[fd] = std::move(on_readable);
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  readers_.erase(fd);
}

int EventLoop::run_once(int timeout_ms) {
  std::array<epoll_event, 32> events{};
  const int n =
      ::epoll_wait(epoll_fd_, events.data(), events.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  // Collect fds first: a callback may add/remove watchers.
  std::vector<int> ready;
  ready.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ready.push_back(events[static_cast<std::size_t>(i)].data.fd);
  int dispatched = 0;
  for (int fd : ready) {
    const auto it = readers_.find(fd);
    if (it == readers_.end()) continue;
    const Callback cb = it->second;  // copy: callback may remove itself
    cb();
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::run(int tick_ms, const Callback& on_tick) {
  stopped_ = false;
  while (!stopped_) {
    run_once(tick_ms);
    if (on_tick) on_tick();
  }
}

}  // namespace bate
