// Minimal epoll-based event loop driving the controller and broker I/O.
//
// Threading contract
// ------------------
// Exactly one thread may execute run()/run_once() at a time (the "loop
// thread"; enforced with BATE_ASSERT). Watcher mutation is safe from any
// thread:
//   * from the loop thread (i.e. inside a callback), add_reader()/remove()
//     apply immediately — a callback may remove itself;
//   * from any other thread (including before the loop thread starts), the
//     operation is queued and applied at the top of the next run_once(); a
//     wakeup fd interrupts a blocking epoll_wait so the change takes effect
//     promptly.
// remove() from a non-loop thread therefore does NOT guarantee the callback
// is not currently executing; join the loop thread (or call from a callback)
// before destroying callback-captured state. stop() is safe from any thread
// and wakes a blocked loop.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace bate {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watches a file descriptor for readability (see threading contract).
  void add_reader(int fd, Callback on_readable);
  /// Stops watching `fd` (see threading contract).
  void remove(int fd);

  /// Runs one poll iteration with the given timeout (ms; -1 blocks).
  /// Returns the number of events dispatched.
  int run_once(int timeout_ms);
  /// Loops until stop() is called (polling at `tick_ms`, invoking
  /// `on_tick`, when provided, between polls). stop() is sticky: if it was
  /// already called — even before run() began — run() returns immediately.
  void run(int tick_ms = 50, const Callback& on_tick = {});
  /// Thread-safe; interrupts a blocking epoll_wait.
  void stop();
  bool stopped() const { return stopped_; }

  /// True when called from inside run()/run_once() on the loop thread.
  bool in_loop_thread() const {
    return loop_thread_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

 private:
  struct PendingOp {
    int fd = -1;
    bool add = false;  // false: remove
    Callback cb;       // only for add
  };

  /// Applies one watcher mutation on the loop thread (or pre-loop).
  void apply(PendingOp op);
  /// Drains queued mutations; called at the top of run_once().
  void drain_pending();
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::map<int, Callback> readers_;  // loop-thread state
  std::atomic<std::thread::id> loop_thread_{};
  std::atomic<bool> stopped_{false};

  Mutex pending_mu_{LockRank::kEventLoop, "event loop pending"};
  std::vector<PendingOp> pending_ BATE_GUARDED_BY(pending_mu_);
};

}  // namespace bate
