// Minimal epoll-based event loop driving the controller and broker I/O.
#pragma once

#include <atomic>
#include <functional>
#include <map>

namespace bate {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watches a file descriptor for readability.
  void add_reader(int fd, Callback on_readable);
  void remove(int fd);

  /// Runs one poll iteration with the given timeout (ms; -1 blocks).
  /// Returns the number of events dispatched.
  int run_once(int timeout_ms);
  /// Loops until stop() is called (polling at `tick_ms`, invoking
  /// `on_tick`, when provided, between polls).
  void run(int tick_ms = 50, const Callback& on_tick = {});
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

 private:
  int epoll_fd_ = -1;
  std::map<int, Callback> readers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace bate
