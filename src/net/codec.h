// Little-endian binary encoder/decoder for the control-channel protocol.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bate {

class BufferWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void f64_vec(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) f64(x);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return std::string(b.begin(), b.end());
  }
  std::vector<double> f64_vec() {
    const std::uint32_t n = u32();
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }
  bool exhausted() const { return offset_ == data_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (offset_ + n > data_.size()) {
      throw std::out_of_range("BufferReader: truncated message");
    }
    auto s = data_.subspan(offset_, n);
    offset_ += n;
    return s;
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace bate
