// Length-prefixed message framing over a byte stream. Frames carry a 4-byte
// little-endian length followed by the payload; a size cap guards against
// corrupted peers.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace bate {

inline constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Serializes a payload into a framed buffer.
std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload);

/// Accumulates many framed payloads into one contiguous buffer so a
/// pipelined sender (the controller's per-tick reply flush, UserClient's
/// submit_many) hands the kernel a single write per flush instead of one
/// per frame. The byte stream is identical to a sequence of encode_frame
/// outputs; any FrameReader decodes it.
class FrameBatch {
 public:
  /// Appends one framed payload. Throws std::length_error beyond
  /// kMaxFrameBytes.
  void add(std::span<const std::uint8_t> payload);

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::size_t frame_count() const { return frames_; }
  bool empty() const { return frames_ == 0; }
  void clear() {
    buffer_.clear();
    frames_ = 0;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t frames_ = 0;
};

/// Incremental frame decoder: feed stream bytes, pop complete frames.
class FrameReader {
 public:
  /// Appends bytes from the stream. Throws std::length_error when a frame
  /// announces a length beyond kMaxFrameBytes.
  void feed(std::span<const std::uint8_t> data);
  /// Pops the next complete frame payload, if any.
  std::optional<std::vector<std::uint8_t>> next();

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace bate
