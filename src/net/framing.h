// Length-prefixed message framing over a byte stream. Frames carry a 4-byte
// little-endian length followed by the payload; a size cap guards against
// corrupted peers.
//
// Trace-context extension (DESIGN.md Sec 9.6): kMaxFrameBytes < 2^24
// leaves the length word's top bits free, so bit 31 flags an optional
// 16-byte trace-context header (trace_id, span_id as little-endian u64s)
// between the length word and the payload:
//
//   [len | kFrameTraceFlag : u32 LE] [trace_id : u64 LE] [span_id : u64 LE]
//   [payload : len bytes]
//
// `len` counts ONLY the payload, never the 16 context bytes. Plain frames
// (flag clear) are byte-identical to the pre-context format, so old and
// new endpoints interoperate: a flag-less frame decodes to a zero
// (invalid) SpanContext, and encoders only set the flag when they have a
// context to send.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace bate {

inline constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Length-word bit flagging the 16-byte trace-context header. Safe because
/// kMaxFrameBytes fits in 24 bits.
inline constexpr std::uint32_t kFrameTraceFlag = 0x80000000u;

/// Trace identity carried in the optional frame header. trace_id == 0
/// means "none" (the flag is not sent). Mirrors obs::SpanContext without
/// dragging the obs headers into the net layer.
struct FrameContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const noexcept { return trace_id != 0; }
};

/// A decoded frame: payload plus the (possibly zero) trace context.
struct Frame {
  std::vector<std::uint8_t> payload;
  FrameContext context;
};

/// Serializes a payload into a framed buffer; attaches the trace-context
/// header when `ctx.valid()`.
std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload,
                                       const FrameContext& ctx = {});

/// Accumulates many framed payloads into one contiguous buffer so a
/// pipelined sender (the controller's per-tick reply flush, UserClient's
/// submit_many) hands the kernel a single write per flush instead of one
/// per frame. The byte stream is identical to a sequence of encode_frame
/// outputs; any FrameReader decodes it.
class FrameBatch {
 public:
  /// Appends one framed payload (with a trace-context header when
  /// `ctx.valid()`). Throws std::length_error beyond kMaxFrameBytes.
  void add(std::span<const std::uint8_t> payload, const FrameContext& ctx = {});

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::size_t frame_count() const { return frames_; }
  bool empty() const { return frames_ == 0; }
  void clear() {
    buffer_.clear();
    frames_ = 0;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t frames_ = 0;
};

/// Incremental frame decoder: feed stream bytes, pop complete frames.
class FrameReader {
 public:
  /// Appends bytes from the stream. Throws std::length_error when a frame
  /// announces a length beyond kMaxFrameBytes.
  void feed(std::span<const std::uint8_t> data);
  /// Pops the next complete frame payload, if any — discarding any trace
  /// context (legacy callers that don't trace).
  std::optional<std::vector<std::uint8_t>> next();
  /// Pops the next complete frame with its trace context (zero when the
  /// frame carried none).
  std::optional<Frame> next_frame();

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace bate
