#include "net/framing.h"

#include <cstring>
#include <stdexcept>

namespace bate {

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload,
                                       const FrameContext& ctx) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::length_error("encode_frame: payload too large");
  }
  const bool traced = ctx.valid();
  std::vector<std::uint8_t> out;
  out.reserve(4 + (traced ? 16 : 0) + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  append_u32(out, traced ? (len | kFrameTraceFlag) : len);
  if (traced) {
    append_u64(out, ctx.trace_id);
    append_u64(out, ctx.span_id);
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameBatch::add(std::span<const std::uint8_t> payload,
                     const FrameContext& ctx) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::length_error("FrameBatch: payload too large");
  }
  const bool traced = ctx.valid();
  const auto len = static_cast<std::uint32_t>(payload.size());
  buffer_.reserve(buffer_.size() + 4 + (traced ? 16 : 0) + payload.size());
  append_u32(buffer_, traced ? (len | kFrameTraceFlag) : len);
  if (traced) {
    append_u64(buffer_, ctx.trace_id);
    append_u64(buffer_, ctx.span_id);
  }
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  ++frames_;
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  if (buffer_.size() >= 4) {
    // Mask the trace flag before the size check: the length field proper
    // is the low bits only.
    const std::uint32_t len = read_u32(buffer_.data()) & ~kFrameTraceFlag;
    if (len > kMaxFrameBytes) {
      throw std::length_error("FrameReader: oversized frame");
    }
  }
}

std::optional<Frame> FrameReader::next_frame() {
  if (buffer_.size() < 4) return std::nullopt;
  const std::uint32_t word = read_u32(buffer_.data());
  const bool traced = (word & kFrameTraceFlag) != 0;
  const std::uint32_t len = word & ~kFrameTraceFlag;
  if (len > kMaxFrameBytes) {
    throw std::length_error("FrameReader: oversized frame");
  }
  const std::size_t header = 4 + (traced ? 16 : 0);
  if (buffer_.size() < header + static_cast<std::size_t>(len)) {
    return std::nullopt;
  }
  Frame frame;
  if (traced) {
    frame.context.trace_id = read_u64(buffer_.data() + 4);
    frame.context.span_id = read_u64(buffer_.data() + 12);
  }
  frame.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(header),
                       buffer_.begin() +
                           static_cast<std::ptrdiff_t>(header + len));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(header + len));
  return frame;
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  auto frame = next_frame();
  if (!frame) return std::nullopt;
  return std::move(frame->payload);
}

}  // namespace bate
