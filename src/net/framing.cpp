#include "net/framing.h"

#include <cstring>
#include <stdexcept>

namespace bate {

std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::length_error("encode_frame: payload too large");
  }
  std::vector<std::uint8_t> out(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  out[0] = static_cast<std::uint8_t>(len & 0xFF);
  out[1] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
  out[2] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
  out[3] = static_cast<std::uint8_t>((len >> 24) & 0xFF);
  std::memcpy(out.data() + 4, payload.data(), payload.size());
  return out;
}

void FrameBatch::add(std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::length_error("FrameBatch: payload too large");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  buffer_.reserve(buffer_.size() + 4 + payload.size());
  buffer_.push_back(static_cast<std::uint8_t>(len & 0xFF));
  buffer_.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
  buffer_.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
  buffer_.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  ++frames_;
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  if (buffer_.size() >= 4) {
    const std::uint32_t len = static_cast<std::uint32_t>(buffer_[0]) |
                              (static_cast<std::uint32_t>(buffer_[1]) << 8) |
                              (static_cast<std::uint32_t>(buffer_[2]) << 16) |
                              (static_cast<std::uint32_t>(buffer_[3]) << 24);
    if (len > kMaxFrameBytes) {
      throw std::length_error("FrameReader: oversized frame");
    }
  }
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(buffer_[0]) |
                            (static_cast<std::uint32_t>(buffer_[1]) << 8) |
                            (static_cast<std::uint32_t>(buffer_[2]) << 16) |
                            (static_cast<std::uint32_t>(buffer_[3]) << 24);
  if (len > kMaxFrameBytes) {
    throw std::length_error("FrameReader: oversized frame");
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  std::vector<std::uint8_t> payload(buffer_.begin() + 4,
                                    buffer_.begin() + 4 + len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + len);
  return payload;
}

}  // namespace bate
