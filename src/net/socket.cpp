#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace bate {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

int Socket::release() { return std::exchange(fd_, -1); }

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_nonblocking(bool enable) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int updated = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, updated) < 0) throw_errno("fcntl(F_SETFL)");
}

void Socket::set_nodelay(bool enable) {
  const int value = enable ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &value, sizeof(value)) < 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

void Socket::write_all(std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto n = ::send(fd_, data.data() + sent, data.size() - sent,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

long Socket::read_some(std::span<std::uint8_t> buffer) {
  while (true) {
    const auto n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("recv");
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  socket_ = Socket(fd);

  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd, 16) < 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

std::optional<Socket> TcpListener::accept() {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return std::nullopt;
    }
    throw_errno("accept");
  }
  return Socket(fd);
}

Socket connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("connect");
  }
  return sock;
}

}  // namespace bate
