#include "system/broker.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/log.h"

namespace bate {

namespace {

struct BrokerMetrics {
  obs::Counter& frames_in;
  obs::Counter& bytes_in;
  obs::Counter& updates;
  obs::Counter& backup_updates;
  obs::Counter& link_reports;
  obs::Counter& dropped_reports;

  static BrokerMetrics& get() {
    auto& reg = obs::Registry::global();
    static BrokerMetrics m{
        reg.counter("bate_broker_frames_in_total"),
        reg.counter("bate_broker_bytes_in_total"),
        reg.counter("bate_broker_allocation_updates_total"),
        reg.counter("bate_broker_backup_updates_total"),
        reg.counter("bate_broker_link_reports_total"),
        reg.counter("bate_broker_dropped_reports_total"),
    };
    return m;
  }
};

}  // namespace

Broker::Broker(int dc_id, std::uint16_t controller_port,
               double report_rate_per_sec, double report_burst)
    : dc_(dc_id), port_(controller_port) {
  if (report_rate_per_sec > 0.0) {
    report_bucket_.emplace(report_rate_per_sec,
                           report_burst > 0.0
                               ? report_burst
                               : std::max(report_rate_per_sec, 1.0));
    report_refill_us_ = obs::now_us();
  }
}

Broker::~Broker() { stop(); }

void Broker::start() {
  BATE_ASSERT_MSG(!thread_.joinable(), "broker started twice");
  const auto hello = encode_frame(encode_message(HelloMsg{"broker", dc_}));
  {
    MutexLock lock(write_mu_);
    socket_ = connect_tcp(port_);
    socket_.set_nodelay(true);
    socket_.write_all(hello);
  }
  running_ = true;
  thread_ = std::thread([this] { receive_loop(); });
}

void Broker::stop() {
  if (!thread_.joinable()) return;
  {
    // Under write_mu_ so no report_link write can interleave with the
    // shutdown; writers observing running_ == false drop their frame.
    MutexLock lock(write_mu_);
    running_ = false;
    // shutdown() (not close()) wakes the receive thread blocked in recv.
    socket_.shutdown();
  }
  thread_.join();
  // Close only after join: the receive loop can no longer touch the fd, and
  // report_link sees running_ == false, so nobody can race the close (or a
  // kernel reuse of the fd number).
  MutexLock lock(write_mu_);
  socket_.close();
}

// Reader side of socket_ deliberately takes no lock (the function is outside
// the thread-safety analysis, declared so in broker.h): stop() shuts the
// socket down under write_mu_ and joins this thread before close(), so the
// fd stays valid for the loop's whole lifetime.
void Broker::receive_loop() {
  FrameReader reader;
  std::array<std::uint8_t, 4096> buf{};
  while (running_) {
    long n = 0;
    try {
      n = socket_.read_some(buf);
    } catch (const std::system_error&) {
      break;
    }
    if (n <= 0) break;  // peer closed or socket shut down
    if (obs::enabled()) BrokerMetrics::get().bytes_in.inc(n);
    reader.feed({buf.data(), static_cast<std::size_t>(n)});
    while (auto frame = reader.next_frame()) {
      if (obs::enabled()) BrokerMetrics::get().frames_in.inc();
      Message msg;
      try {
        msg = decode_message(frame->payload);
      } catch (const std::exception& e) {
        BATE_LOG_EVERY_N(kWarn, "broker", 1024) << "bad message: " << e.what();
        continue;
      }
      if (const auto* update = std::get_if<AllocationUpdateMsg>(&msg)) {
        if (obs::enabled()) {
          auto& m = BrokerMetrics::get();
          m.updates.inc();
          if (update->backup) m.backup_updates.inc();
        }
        // Adopt the frame's trace context (the controller.broadcast span)
        // so the apply span joins the demand's cross-process trace.
        obs::ScopedTraceContext adopt(obs::SpanContext{
            frame->context.trace_id, frame->context.span_id});
        BATE_TRACE_SPAN("broker.apply");
        apply_update(*update);
      }
    }
  }
}

void Broker::apply_update(const AllocationUpdateMsg& update) {
  {
    MutexLock lock(mu_);
    rates_[{update.id, update.pair}] = update.tunnel_mbps;
    enforcer_.update(update.id, update.pair, update.tunnel_mbps);
    backup_active_ = update.backup;
    ++updates_;
  }
  cv_.notify_all();
}

std::vector<double> Broker::enforced_rates(DemandId id, int pair) const {
  ReaderMutexLock lock(mu_);
  const auto it = rates_.find({id, pair});
  return it == rates_.end() ? std::vector<double>{} : it->second;
}

double Broker::enforced_total(DemandId id, int pair) const {
  double total = 0.0;
  for (double r : enforced_rates(id, pair)) total += r;
  return total;
}

int Broker::updates_received() const {
  ReaderMutexLock lock(mu_);
  return updates_;
}

int Broker::wait_updates_past(int count, int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  MutexLock lock(mu_);
  // wait_until returns false once the deadline passed; spurious wakeups
  // loop back to recheck the predicate.
  while (updates_ <= count && cv_.wait_until(mu_, deadline)) {
  }
  return updates_;
}

bool Broker::backup_active() const {
  ReaderMutexLock lock(mu_);
  return backup_active_;
}

double Broker::shape(DemandId id, int pair, std::size_t tunnel,
                     double megabits) {
  MutexLock lock(mu_);
  return enforcer_.shape(id, pair, tunnel, megabits);
}

void Broker::advance_enforcer(double seconds) {
  MutexLock lock(mu_);
  enforcer_.advance(seconds);
}

int Broker::reports_dropped() const {
  ReaderMutexLock lock(write_mu_);
  return reports_dropped_;
}

void Broker::report_link(LinkId link, bool up) {
  const auto framed = encode_frame(encode_message(LinkStatusMsg{link, up}));
  MutexLock lock(write_mu_);
  if (!running_) {
    ++reports_dropped_;
    if (obs::enabled()) BrokerMetrics::get().dropped_reports.inc();
    BATE_LOG_EVERY_N(kWarn, "broker", 256)
        << "dropping link report: broker stopped";
    return;
  }
  if (report_bucket_) {
    // Each status change costs one token; the controller replans (and
    // rebroadcasts) per report, so a flapping agent must be clipped here.
    const std::int64_t now = obs::now_us();
    if (now > report_refill_us_) {
      report_bucket_->advance(
          static_cast<double>(now - report_refill_us_) * 1e-6);
      report_refill_us_ = now;
    }
    if (!report_bucket_->try_consume(1.0)) {
      ++reports_dropped_;
      if (obs::enabled()) BrokerMetrics::get().dropped_reports.inc();
      BATE_LOG_EVERY_N(kWarn, "broker", 256)
          << "dropping link report: over report rate";
      return;
    }
  }
  try {
    socket_.write_all(framed);
    if (obs::enabled()) BrokerMetrics::get().link_reports.inc();
  } catch (const std::system_error& e) {
    // Controller went away (EPIPE/ECONNRESET); the agent keeps running and
    // the report is dropped, matching the paper's fail-static stance.
    ++reports_dropped_;
    if (obs::enabled()) BrokerMetrics::get().dropped_reports.inc();
    BATE_LOG_EVERY_N(kWarn, "broker", 256)
        << "dropping link report: " << e.what();
  }
}

}  // namespace bate
