#include "system/labels.h"

#include <set>

namespace bate {

std::uint32_t VxlanLabel::encode() const {
  if (demand > kMax || tunnel > kMax) {
    throw std::invalid_argument("VxlanLabel: field exceeds 12 bits");
  }
  return (static_cast<std::uint32_t>(demand) << 12) |
         static_cast<std::uint32_t>(tunnel);
}

VxlanLabel VxlanLabel::decode(std::uint32_t vni) {
  if (vni > 0xFFFFFF) {
    throw std::invalid_argument("VxlanLabel: VNI exceeds 24 bits");
  }
  VxlanLabel label;
  label.demand = static_cast<std::uint16_t>((vni >> 12) & kMax);
  label.tunnel = static_cast<std::uint16_t>(vni & kMax);
  return label;
}

void SwitchTable::install(const FlowRule& rule) {
  rules_[rule.label.encode()] = rule.out_link;
}

void SwitchTable::remove(const VxlanLabel& label) {
  rules_.erase(label.encode());
}

std::optional<LinkId> SwitchTable::lookup(const VxlanLabel& label) const {
  const auto it = rules_.find(label.encode());
  if (it == rules_.end()) return std::nullopt;
  return it->second;
}

void SwitchTable::set_group(std::uint16_t demand,
                            std::vector<GroupBucket> buckets) {
  if (demand > VxlanLabel::kMax) {
    throw std::invalid_argument("SwitchTable: demand exceeds 12 bits");
  }
  groups_[demand] = std::move(buckets);
}

const std::vector<GroupBucket>* SwitchTable::group(
    std::uint16_t demand) const {
  const auto it = groups_.find(demand);
  return it == groups_.end() ? nullptr : &it->second;
}

ForwardingPlan compile_forwarding(const Topology& topo,
                                  const TunnelCatalog& catalog,
                                  std::span<const Demand> demands,
                                  std::span<const Allocation> allocs) {
  ForwardingPlan plan;
  plan.switches.resize(static_cast<std::size_t>(topo.node_count()));

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    if (d.id < 0 || d.id > static_cast<int>(VxlanLabel::kMax)) {
      throw std::invalid_argument(
          "compile_forwarding: demand id exceeds the 12-bit label space");
    }
    // Tunnel labels are global per demand across its pairs (pair-major).
    std::uint16_t tunnel_label = 0;
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog.tunnels(d.pairs[p].pair);
      double total_rate = 0.0;
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        total_rate += allocs[i][p][t];
      }
      std::vector<GroupBucket> buckets;
      for (std::size_t t = 0; t < tunnels.size(); ++t, ++tunnel_label) {
        const double rate = allocs[i][p][t];
        if (rate <= 1e-9) continue;
        const VxlanLabel label{static_cast<std::uint16_t>(d.id),
                               tunnel_label};
        // Transit rules: at every hop's switch, label -> next link.
        for (LinkId e : tunnels[t].links) {
          plan.switches[static_cast<std::size_t>(topo.link(e).src)].install(
              {label, e});
          ++plan.rules_installed;
        }
        buckets.push_back({label, rate / total_rate});
      }
      if (!buckets.empty()) {
        plan.switches[static_cast<std::size_t>(tunnels[0].src)].set_group(
            static_cast<std::uint16_t>(d.id), std::move(buckets));
        ++plan.groups_installed;
      }
    }
  }
  return plan;
}

std::optional<std::vector<LinkId>> trace_label(const Topology& topo,
                                               const ForwardingPlan& plan,
                                               NodeId ingress,
                                               const VxlanLabel& label) {
  std::vector<LinkId> path;
  std::set<NodeId> visited;
  NodeId node = ingress;
  while (true) {
    if (!visited.insert(node).second) return std::nullopt;  // loop
    const auto next =
        plan.switches[static_cast<std::size_t>(node)].lookup(label);
    if (!next) {
      // No rule: either we've reached the egress (done) or the rule chain
      // is broken (path empty => broken at ingress).
      if (path.empty()) return std::nullopt;
      return path;
    }
    path.push_back(*next);
    node = topo.link(*next).dst;
  }
}

}  // namespace bate
