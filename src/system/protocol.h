// Control-channel wire protocol between users, the controller and the
// brokers (Sec 4). Messages are framed (net/framing.h) and binary-encoded
// (net/codec.h) with a leading type byte.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "topology/graph.h"
#include "workload/demand.h"

namespace bate {

enum class MsgType : std::uint8_t {
  kHello = 1,            // peer introduction (role + DC id)
  kSubmitDemand = 2,     // user -> controller
  kAdmissionReply = 3,   // controller -> user
  kAllocationUpdate = 4, // controller -> broker: per-demand tunnel rates
  kWithdrawDemand = 5,   // user -> controller: demand ended
  kLinkStatus = 6,       // broker -> controller: link up/down
  kStatsRequest = 7,     // any peer -> controller: scrape the obs registry
  kStatsReply = 8,       // controller -> peer: rendered snapshot
  kSloRequest = 9,       // any peer -> controller: SLO ledger / time-series
  kSloReply = 10,        // controller -> peer: rendered SLO payload
};

struct HelloMsg {
  std::string role;  // "broker" | "user"
  int dc = -1;
};

struct SubmitDemandMsg {
  Demand demand;
  /// Correlates this submit with its AdmissionReplyMsg so a connection can
  /// pipeline many requests. 0 marks a legacy single-shot submit (the reply
  /// is then matched by demand id and duplicate detection is skipped).
  std::uint64_t request_id = 0;
};

enum class AdmissionStatus : std::uint8_t {
  kRejected = 0,   // infeasible under the admission strategy
  kAdmitted = 1,
  kShed = 2,       // backpressure: queue full or tenant over rate; retry
  kDuplicate = 3,  // request_id already in flight on this connection
};

struct AdmissionReplyMsg {
  std::uint64_t request_id = 0;  // echoes the submit's request_id
  DemandId id = -1;
  AdmissionStatus status = AdmissionStatus::kRejected;
  /// For kShed: suggested client backoff before resubmitting.
  double retry_after_ms = 0.0;

  bool admitted() const { return status == AdmissionStatus::kAdmitted; }
};

/// One (demand, pair) row of the bandwidth-enforcement table: rates per
/// tunnel in Mbps. `backup` marks rows coming from an activated backup plan.
struct AllocationUpdateMsg {
  DemandId id = -1;
  int pair = -1;
  std::vector<double> tunnel_mbps;
  bool backup = false;
};

struct WithdrawDemandMsg {
  DemandId id = -1;
};

struct LinkStatusMsg {
  LinkId link = -1;
  bool up = true;
};

/// Scrapes the controller's metrics registry (src/obs). `format` selects
/// the exposition: "prometheus" (default when empty) or "json".
struct StatsRequestMsg {
  std::string format;
};

/// The rendered registry snapshot. `format` echoes the request.
struct StatsReplyMsg {
  std::string format;
  std::string body;
};

/// Queries the controller's availability-SLO ledger and time-series store
/// (src/obs/slo.h, src/obs/timeseries.h). `format` is "json" (default when
/// empty); `selector` restricts the payload: "" (everything), "ledger", or
/// "series".
struct SloRequestMsg {
  std::string format;
  std::string selector;
};

/// The rendered SLO payload. `format` echoes the request.
struct SloReplyMsg {
  std::string format;
  std::string body;
};

using Message = std::variant<HelloMsg, SubmitDemandMsg, AdmissionReplyMsg,
                             AllocationUpdateMsg, WithdrawDemandMsg,
                             LinkStatusMsg, StatsRequestMsg, StatsReplyMsg,
                             SloRequestMsg, SloReplyMsg>;

/// Encodes a message payload (not yet framed).
std::vector<std::uint8_t> encode_message(const Message& msg);
/// Decodes a payload. Throws std::out_of_range / std::invalid_argument on
/// malformed input.
Message decode_message(std::span<const std::uint8_t> payload);

}  // namespace bate
