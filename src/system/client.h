// Blocking user-side client for the controller: submit a BA demand and wait
// for the admission decision, or withdraw a finished demand (Sec 4 "Users").
// Header-only convenience wrapper over the protocol.
#pragma once

#include <array>
#include <optional>
#include <stdexcept>
#include <string>

#include "net/framing.h"
#include "net/socket.h"
#include "system/protocol.h"

namespace bate {

class UserClient {
 public:
  explicit UserClient(std::uint16_t controller_port)
      : socket_(connect_tcp(controller_port)) {
    socket_.set_nodelay(true);
    socket_.write_all(encode_frame(encode_message(HelloMsg{"user", -1})));
  }

  /// Submits a demand and blocks until the admission reply arrives.
  bool submit(const Demand& demand) {
    socket_.write_all(encode_frame(encode_message(SubmitDemandMsg{demand})));
    while (true) {
      const Message msg = read_message();
      if (const auto* reply = std::get_if<AdmissionReplyMsg>(&msg)) {
        if (reply->id == demand.id) return reply->admitted;
      }
      // Other traffic (e.g. allocation broadcasts) is not expected on user
      // connections; ignore anything else.
    }
  }

  void withdraw(DemandId id) {
    socket_.write_all(encode_frame(encode_message(WithdrawDemandMsg{id})));
  }

  /// Scrapes the controller's metrics registry and blocks for the reply.
  /// `format` is "prometheus" (default) or "json"; returns the rendered
  /// exposition text.
  std::string stats(const std::string& format = "prometheus") {
    socket_.write_all(encode_frame(encode_message(StatsRequestMsg{format})));
    while (true) {
      const Message msg = read_message();
      if (const auto* reply = std::get_if<StatsReplyMsg>(&msg)) {
        return reply->body;
      }
    }
  }

 private:
  Message read_message() {
    std::array<std::uint8_t, 4096> buf{};
    while (true) {
      if (auto frame = reader_.next()) return decode_message(*frame);
      const long n = socket_.read_some(buf);
      if (n == 0) throw std::runtime_error("UserClient: controller closed");
      if (n > 0) reader_.feed({buf.data(), static_cast<std::size_t>(n)});
    }
  }

  Socket socket_;
  FrameReader reader_;
};

}  // namespace bate
