// User-side client for the controller (Sec 4 "Users"). Header-only
// convenience wrapper over the protocol.
//
// Two modes share one connection:
//  * blocking submit()/withdraw()/stats() — the legacy lock-step API;
//  * pipelined submit_async()/submit_many()/wait_reply() — many in-flight
//    requests correlated by request_id, replies consumed in arrival order
//    (which may differ from submission order; wait_reply_for() buffers
//    strays until the wanted one arrives).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/framing.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "system/protocol.h"

namespace bate {

class UserClient {
 public:
  /// `tenant` rides the Hello dc field and keys the controller's per-tenant
  /// rate limiting / drain fairness; -1 makes this connection its own
  /// tenant.
  explicit UserClient(std::uint16_t controller_port, int tenant = -1)
      : socket_(connect_tcp(controller_port)) {
    socket_.set_nodelay(true);
    socket_.write_all(encode_frame(encode_message(HelloMsg{"user", tenant})));
  }

  /// One admission verdict, client-side view.
  struct Reply {
    std::uint64_t request_id = 0;
    DemandId id = -1;
    AdmissionStatus status = AdmissionStatus::kRejected;
    double retry_after_ms = 0.0;

    bool admitted() const { return status == AdmissionStatus::kAdmitted; }
  };

  /// Pipelined submit: writes the frame and returns immediately with the
  /// request_id correlating the eventual reply. The submit is wrapped in a
  /// client.submit trace span whose context rides the frame header, rooting
  /// the demand's cross-process trace (client -> controller -> broker).
  std::uint64_t submit_async(const Demand& demand) {
    const std::uint64_t rid = next_request_id_++;
    obs::Span span("client.submit");
    const obs::SpanContext sc = span.context();
    socket_.write_all(encode_frame(encode_message(SubmitDemandMsg{demand, rid}),
                                   FrameContext{sc.trace_id, sc.span_id}));
    return rid;
  }

  /// Next admission reply in arrival order (out-of-order with respect to
  /// submission is expected on a pipelined connection). Blocks.
  Reply wait_reply() {
    while (ready_.empty()) read_one();
    const Reply r = ready_.front();
    ready_.pop_front();
    return r;
  }

  /// Blocks for the reply to a specific request, buffering any others.
  Reply wait_reply_for(std::uint64_t request_id) {
    while (true) {
      for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (it->request_id == request_id) {
          const Reply r = *it;
          ready_.erase(it);
          return r;
        }
      }
      read_one();
    }
  }

  /// Pipelines every demand and collects all verdicts, indexed like the
  /// input. Submits are batched into single writes and windowed to `window`
  /// outstanding requests so neither side's socket buffer fills with unread
  /// traffic (the controller replies are small; the window mainly bounds
  /// client memory and keeps the controller's reply bursts bounded).
  std::vector<Reply> submit_many(std::span<const Demand> demands,
                                 std::size_t window = 256) {
    if (window == 0) window = 1;
    std::vector<Reply> replies(demands.size());
    std::map<std::uint64_t, std::size_t> index;
    std::size_t next = 0;
    std::size_t received = 0;
    FrameBatch batch;
    while (received < demands.size()) {
      // Refill with hysteresis: top the window back up only once it has
      // half-drained, so each refill is one write of ~window/2 frames
      // instead of degenerating into a one-frame write per reply.
      const std::size_t outstanding = next - received;
      if (next < demands.size() &&
          (outstanding == 0 || outstanding <= window / 2)) {
        batch.clear();
        const std::size_t stop = std::min(demands.size(), received + window);
        for (; next < stop; ++next) {
          const std::uint64_t rid = next_request_id_++;
          index.emplace(rid, next);
          obs::Span span("client.submit");
          const obs::SpanContext sc = span.context();
          batch.add(encode_message(SubmitDemandMsg{demands[next], rid}),
                    FrameContext{sc.trace_id, sc.span_id});
        }
        socket_.write_all(batch.bytes());
        continue;
      }
      const Reply r = wait_reply();
      const auto it = index.find(r.request_id);
      if (it == index.end()) continue;  // stray reply from an earlier call
      replies[it->second] = r;
      index.erase(it);
      ++received;
    }
    return replies;
  }

  /// Submits a demand and blocks until the admission reply arrives.
  bool submit(const Demand& demand) {
    return wait_reply_for(submit_async(demand)).admitted();
  }

  void withdraw(DemandId id) {
    socket_.write_all(encode_frame(encode_message(WithdrawDemandMsg{id})));
  }

  /// Scrapes the controller's metrics registry and blocks for the reply.
  /// `format` is "prometheus" (default) or "json"; returns the rendered
  /// exposition text. Admission replies arriving meanwhile are buffered for
  /// later wait_reply() calls, not dropped.
  std::string stats(const std::string& format = "prometheus") {
    socket_.write_all(encode_frame(encode_message(StatsRequestMsg{format})));
    while (true) {
      const Message msg = read_message();
      if (const auto* reply = std::get_if<StatsReplyMsg>(&msg)) {
        return reply->body;
      }
      buffer_if_admission(msg);
    }
  }

  /// Queries the controller's availability-SLO ledger + time-series store
  /// and blocks for the JSON payload. `selector` is "" (everything),
  /// "ledger", or "series". Admission replies arriving meanwhile are
  /// buffered, as in stats().
  std::string slo(const std::string& selector = "") {
    socket_.write_all(
        encode_frame(encode_message(SloRequestMsg{"json", selector})));
    while (true) {
      const Message msg = read_message();
      if (const auto* reply = std::get_if<SloReplyMsg>(&msg)) {
        return reply->body;
      }
      buffer_if_admission(msg);
    }
  }

 private:
  void read_one() { buffer_if_admission(read_message()); }

  void buffer_if_admission(const Message& msg) {
    if (const auto* reply = std::get_if<AdmissionReplyMsg>(&msg)) {
      ready_.push_back(Reply{reply->request_id, reply->id, reply->status,
                             reply->retry_after_ms});
    }
    // Other traffic (e.g. allocation broadcasts) is not expected on user
    // connections; ignore anything else.
  }

  Message read_message() {
    std::array<std::uint8_t, 4096> buf{};
    while (true) {
      if (auto frame = reader_.next()) return decode_message(*frame);
      const long n = socket_.read_some(buf);
      if (n == 0) throw std::runtime_error("UserClient: controller closed");
      if (n > 0) reader_.feed({buf.data(), static_cast<std::size_t>(n)});
    }
  }

  Socket socket_;
  FrameReader reader_;
  std::deque<Reply> ready_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace bate
