#include "system/protocol.h"

#include <stdexcept>

#include "net/codec.h"

namespace bate {

namespace {

void encode_demand(BufferWriter& w, const Demand& d) {
  w.i32(d.id);
  w.u32(static_cast<std::uint32_t>(d.pairs.size()));
  for (const PairDemand& p : d.pairs) {
    w.i32(p.pair);
    w.f64(p.mbps);
  }
  w.f64(d.availability_target);
  w.f64(d.charge);
  w.f64(d.refund_fraction);
  w.u32(static_cast<std::uint32_t>(d.refund_tiers.size()));
  for (const RefundTier& tier : d.refund_tiers) {
    w.f64(tier.below);
    w.f64(tier.fraction);
  }
  w.f64(d.arrival_minute);
  w.f64(d.duration_minutes);
}

Demand decode_demand(BufferReader& r) {
  Demand d;
  d.id = r.i32();
  const std::uint32_t pairs = r.u32();
  d.pairs.resize(pairs);
  for (auto& p : d.pairs) {
    p.pair = r.i32();
    p.mbps = r.f64();
  }
  d.availability_target = r.f64();
  d.charge = r.f64();
  d.refund_fraction = r.f64();
  const std::uint32_t tiers = r.u32();
  d.refund_tiers.resize(tiers);
  for (auto& tier : d.refund_tiers) {
    tier.below = r.f64();
    tier.fraction = r.f64();
  }
  d.arrival_minute = r.f64();
  d.duration_minutes = r.f64();
  return d;
}

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& msg) {
  BufferWriter w;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, HelloMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kHello));
          w.str(m.role);
          w.i32(m.dc);
        } else if constexpr (std::is_same_v<T, SubmitDemandMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kSubmitDemand));
          w.u64(m.request_id);
          encode_demand(w, m.demand);
        } else if constexpr (std::is_same_v<T, AdmissionReplyMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kAdmissionReply));
          w.u64(m.request_id);
          w.i32(m.id);
          w.u8(static_cast<std::uint8_t>(m.status));
          w.f64(m.retry_after_ms);
        } else if constexpr (std::is_same_v<T, AllocationUpdateMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kAllocationUpdate));
          w.i32(m.id);
          w.i32(m.pair);
          w.f64_vec(m.tunnel_mbps);
          w.u8(m.backup ? 1 : 0);
        } else if constexpr (std::is_same_v<T, WithdrawDemandMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kWithdrawDemand));
          w.i32(m.id);
        } else if constexpr (std::is_same_v<T, LinkStatusMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kLinkStatus));
          w.i32(m.link);
          w.u8(m.up ? 1 : 0);
        } else if constexpr (std::is_same_v<T, StatsRequestMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kStatsRequest));
          w.str(m.format);
        } else if constexpr (std::is_same_v<T, StatsReplyMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kStatsReply));
          w.str(m.format);
          w.str(m.body);
        } else if constexpr (std::is_same_v<T, SloRequestMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kSloRequest));
          w.str(m.format);
          w.str(m.selector);
        } else if constexpr (std::is_same_v<T, SloReplyMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kSloReply));
          w.str(m.format);
          w.str(m.body);
        }
      },
      msg);
  return w.bytes();
}

Message decode_message(std::span<const std::uint8_t> payload) {
  BufferReader r(payload);
  const auto type = static_cast<MsgType>(r.u8());
  switch (type) {
    case MsgType::kHello: {
      HelloMsg m;
      m.role = r.str();
      m.dc = r.i32();
      return m;
    }
    case MsgType::kSubmitDemand: {
      SubmitDemandMsg m;
      m.request_id = r.u64();
      m.demand = decode_demand(r);
      return m;
    }
    case MsgType::kAdmissionReply: {
      AdmissionReplyMsg m;
      m.request_id = r.u64();
      m.id = r.i32();
      const std::uint8_t status = r.u8();
      if (status > static_cast<std::uint8_t>(AdmissionStatus::kDuplicate)) {
        throw std::invalid_argument("decode_message: bad admission status");
      }
      m.status = static_cast<AdmissionStatus>(status);
      m.retry_after_ms = r.f64();
      return m;
    }
    case MsgType::kAllocationUpdate: {
      AllocationUpdateMsg m;
      m.id = r.i32();
      m.pair = r.i32();
      m.tunnel_mbps = r.f64_vec();
      m.backup = r.u8() != 0;
      return m;
    }
    case MsgType::kWithdrawDemand: {
      WithdrawDemandMsg m;
      m.id = r.i32();
      return m;
    }
    case MsgType::kLinkStatus: {
      LinkStatusMsg m;
      m.link = r.i32();
      m.up = r.u8() != 0;
      return m;
    }
    case MsgType::kStatsRequest: {
      StatsRequestMsg m;
      m.format = r.str();
      return m;
    }
    case MsgType::kStatsReply: {
      StatsReplyMsg m;
      m.format = r.str();
      m.body = r.str();
      return m;
    }
    case MsgType::kSloRequest: {
      SloRequestMsg m;
      m.format = r.str();
      m.selector = r.str();
      return m;
    }
    case MsgType::kSloReply: {
      SloReplyMsg m;
      m.format = r.str();
      m.body = r.str();
      return m;
    }
  }
  throw std::invalid_argument("decode_message: unknown type");
}

}  // namespace bate
