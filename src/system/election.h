// Controller master election (Sec 4: "controller failures can be remedied
// by using multiple replications, where the master controller is elected by
// the Paxos algorithm").
//
// Single-decree Paxos as pure state machines — proposer, acceptor and
// learner roles with explicit messages — so the protocol is deterministic
// and unit-testable under arbitrary message loss, duplication and
// reordering. ElectionInstance composes the three roles for one replica;
// a harness (or a transport) moves the messages. The state machines are
// intentionally lock-free and single-threaded: a transport that drives an
// instance from multiple threads must wrap it in a bate::Mutex at
// LockRank::kController (util/mutex.h; DESIGN.md Sec 8.5), never a raw
// std primitive (bate_lint raw-mutex).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace bate {

/// Totally ordered ballot number: (round, proposer id).
struct Ballot {
  int round = -1;
  int node = -1;

  friend auto operator<=>(const Ballot&, const Ballot&) = default;
  bool valid() const { return round >= 0; }
};

/// The value being agreed on: the elected master's replica id.
using MasterId = int;

struct PrepareMsg {
  Ballot ballot;
};
struct PromiseMsg {
  Ballot ballot;            // the ballot being promised
  Ballot accepted_ballot;   // highest ballot previously accepted (or invalid)
  MasterId accepted_value = -1;
  int from = -1;
};
struct AcceptMsg {
  Ballot ballot;
  MasterId value = -1;
};
struct AcceptedMsg {
  Ballot ballot;
  MasterId value = -1;
  int from = -1;
};

/// Acceptor role: promises and accepts ballots, never regressing.
class PaxosAcceptor {
 public:
  explicit PaxosAcceptor(int id) : id_(id) {}

  /// Returns a promise when the ballot is >= anything promised before;
  /// nullopt rejects (stale ballot).
  std::optional<PromiseMsg> on_prepare(const PrepareMsg& msg);
  /// Returns an accepted notification when the ballot is still current.
  std::optional<AcceptedMsg> on_accept(const AcceptMsg& msg);

  const Ballot& promised() const { return promised_; }
  const Ballot& accepted_ballot() const { return accepted_ballot_; }
  MasterId accepted_value() const { return accepted_value_; }

 private:
  int id_;
  Ballot promised_;
  Ballot accepted_ballot_;
  MasterId accepted_value_ = -1;
};

/// Proposer role: runs the two phases for one ballot at a time.
class PaxosProposer {
 public:
  PaxosProposer(int id, int cluster_size)
      : id_(id), cluster_size_(cluster_size) {}

  /// Starts (or restarts, with a higher round) a proposal preferring
  /// `value`; returns the Prepare to broadcast.
  PrepareMsg start(MasterId value);
  /// Feeds a promise; returns the Accept to broadcast once a quorum of
  /// promises for the current ballot has arrived (exactly once).
  std::optional<AcceptMsg> on_promise(const PromiseMsg& msg);
  /// Feeds an accepted notification; returns the chosen value once a
  /// quorum has accepted the current ballot (exactly once).
  std::optional<MasterId> on_accepted(const AcceptedMsg& msg);

  int quorum() const { return cluster_size_ / 2 + 1; }
  const Ballot& ballot() const { return ballot_; }

 private:
  int id_;
  int cluster_size_;
  Ballot ballot_;
  MasterId value_ = -1;
  std::map<int, PromiseMsg> promises_;
  std::map<int, AcceptedMsg> accepts_;
  bool accept_sent_ = false;
  bool decided_ = false;
};

/// One replica: acceptor + proposer + learned outcome.
class ElectionInstance {
 public:
  ElectionInstance(int id, int cluster_size)
      : id_(id), acceptor_(id), proposer_(id, cluster_size) {}

  int id() const { return id_; }
  PaxosAcceptor& acceptor() { return acceptor_; }
  PaxosProposer& proposer() { return proposer_; }

  /// Records a decision (from this node's proposer or a learn broadcast).
  void learn(MasterId master) { master_ = master; }
  std::optional<MasterId> master() const { return master_; }

 private:
  int id_;
  PaxosAcceptor acceptor_;
  PaxosProposer proposer_;
  std::optional<MasterId> master_;
};

}  // namespace bate
