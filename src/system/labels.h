// Label-based forwarding (Sec 4, "Network Agent"):
//
// "the first 12 bits of a VxLAN ID represent different demands, and the
//  last 12 bits represent different tunnels. Therefore, 4096 demands and
//  4096 tunnels can be supported simultaneously. [...] a flow is marked
//  with a label at the ingress switch, and the succeeding switches use
//  this label for forwarding. Group tables [...] are used for flow
//  splitting."
//
// This module implements that scheme: the 24-bit VxLAN label codec, the
// per-switch flow table (label -> next hop), the ingress group table that
// splits a demand's traffic across its tunnels in proportion to the
// enforced rates, and a rule compiler that turns an Allocation into the
// rules each DC's switch needs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "routing/tunnels.h"
#include "topology/graph.h"
#include "workload/demand.h"

namespace bate {

/// 24-bit VxLAN network identifier carrying (demand, tunnel) labels.
struct VxlanLabel {
  std::uint16_t demand = 0;  // 12 bits
  std::uint16_t tunnel = 0;  // 12 bits

  static constexpr std::uint16_t kMax = 0x0FFF;  // 4096 values each

  std::uint32_t encode() const;
  static VxlanLabel decode(std::uint32_t vni);
};

/// One forwarding rule: packets labelled `label` leave on `out_link`.
struct FlowRule {
  VxlanLabel label;
  LinkId out_link = -1;
};

/// One ingress group-table bucket: fraction of the demand's traffic that is
/// labelled with `label` (i.e. sent down that tunnel).
struct GroupBucket {
  VxlanLabel label;
  double weight = 0.0;  // normalized rate share
};

/// The forwarding state of one DC's edge switch.
class SwitchTable {
 public:
  /// Installs or overwrites the rule for a label. Throws
  /// std::invalid_argument for labels out of 12-bit range.
  void install(const FlowRule& rule);
  /// Removes the rule for a label (idempotent).
  void remove(const VxlanLabel& label);
  /// Next hop for a label, if installed.
  std::optional<LinkId> lookup(const VxlanLabel& label) const;

  /// Replaces the ingress group table for a demand.
  void set_group(std::uint16_t demand, std::vector<GroupBucket> buckets);
  const std::vector<GroupBucket>* group(std::uint16_t demand) const;

  std::size_t rule_count() const { return rules_.size(); }
  std::size_t group_count() const { return groups_.size(); }

 private:
  std::map<std::uint32_t, LinkId> rules_;
  std::map<std::uint16_t, std::vector<GroupBucket>> groups_;
};

/// Compiled forwarding state: one SwitchTable per DC.
struct ForwardingPlan {
  std::vector<SwitchTable> switches;  // indexed by NodeId
  int rules_installed = 0;
  int groups_installed = 0;
};

/// Compiles an allocation into per-DC switch rules: for every demand and
/// every tunnel with a positive rate, transit rules along the tunnel and a
/// weighted ingress group bucket. Demand ids must fit 12 bits.
ForwardingPlan compile_forwarding(const Topology& topo,
                                  const TunnelCatalog& catalog,
                                  std::span<const Demand> demands,
                                  std::span<const Allocation> allocs);

/// Follows the rules from a tunnel's ingress to its egress; returns the
/// link path, or nullopt when a rule is missing or a loop is detected
/// (validation helper for tests and the broker's self-checks).
std::optional<std::vector<LinkId>> trace_label(const Topology& topo,
                                               const ForwardingPlan& plan,
                                               NodeId ingress,
                                               const VxlanLabel& label);

}  // namespace bate
