// Token-bucket rate enforcement for the broker's bandwidth enforcer
// (Sec 4: the broker "limits the actual traffic rate in each tunnel in case
// something is wrong on the end hosts").
//
// One TokenBucket per (demand, tunnel): tokens refill at the enforced rate
// and a transmission consumes its size in tokens; bursts up to the bucket
// depth are absorbed, sustained overdrive is clipped to the enforced rate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>

#include "workload/demand.h"

namespace bate {

class TokenBucket {
 public:
  /// rate: tokens (== megabits) added per second; burst: bucket depth.
  TokenBucket(double rate_mbps, double burst_mb)
      : rate_(rate_mbps), burst_(burst_mb), tokens_(burst_mb) {
    if (rate_mbps < 0.0 || burst_mb <= 0.0) {
      throw std::invalid_argument("TokenBucket: rate/burst");
    }
  }

  /// Advances time and refills.
  void advance(double seconds) {
    if (seconds < 0.0) throw std::invalid_argument("TokenBucket: time");
    tokens_ = std::min(burst_, tokens_ + rate_ * seconds);
  }

  /// Tries to send `megabits`; returns true (and consumes) if they fit.
  bool try_consume(double megabits) {
    if (megabits <= tokens_) {
      tokens_ -= megabits;
      return true;
    }
    return false;
  }

  /// Sends as much of `megabits` as the bucket allows; returns the admitted
  /// amount (partial shaping, what a policer's byte counter sees).
  double consume_up_to(double megabits) {
    const double admitted = std::min(megabits, tokens_);
    tokens_ -= admitted;
    return admitted;
  }

  void set_rate(double rate_mbps) {
    if (rate_mbps < 0.0) throw std::invalid_argument("TokenBucket: rate");
    rate_ = rate_mbps;
  }
  double rate() const { return rate_; }
  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
};

/// The enforcer table a broker drives from AllocationUpdate messages: one
/// bucket per (demand, pair, tunnel).
class BandwidthEnforcer {
 public:
  /// Burst window in seconds of the enforced rate (bucket depth).
  explicit BandwidthEnforcer(double burst_seconds = 0.1)
      : burst_seconds_(burst_seconds) {}

  /// Installs/updates the per-tunnel rates for a (demand, pair).
  void update(DemandId demand, int pair, const std::vector<double>& rates) {
    auto& buckets = table_[{demand, pair}];
    buckets.clear();
    for (double rate : rates) {
      buckets.emplace_back(rate,
                           std::max(rate * burst_seconds_, 1e-3));
    }
  }

  void remove(DemandId demand, int pair) { table_.erase({demand, pair}); }

  /// Advances every bucket by `seconds`.
  void advance(double seconds) {
    for (auto& [key, buckets] : table_) {
      for (TokenBucket& b : buckets) b.advance(seconds);
    }
  }

  /// Shapes an offered burst on one tunnel; returns the admitted megabits.
  /// Unknown rows are dropped entirely (no rule => no service).
  double shape(DemandId demand, int pair, std::size_t tunnel,
               double megabits) {
    const auto it = table_.find({demand, pair});
    if (it == table_.end() || tunnel >= it->second.size()) return 0.0;
    return it->second[tunnel].consume_up_to(megabits);
  }

  std::size_t row_count() const { return table_.size(); }

 private:
  double burst_seconds_;
  std::map<std::pair<DemandId, int>, std::vector<TokenBucket>> table_;
};

}  // namespace bate
