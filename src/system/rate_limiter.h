// Token-bucket rate limiting for the system layer (Sec 4).
//
//  * BandwidthEnforcer — the broker "limits the actual traffic rate in each
//    tunnel in case something is wrong on the end hosts": one TokenBucket
//    per (demand, tunnel), tokens refill at the enforced rate, a
//    transmission consumes its size; bursts up to the bucket depth are
//    absorbed, sustained overdrive is clipped.
//  * RequestRateLimiter — per-tenant control-plane limiting at the
//    admission ingress: one token per SubmitDemand, over-rate requests are
//    shed with a retry_after hint (DESIGN.md Sec 10 "Admission pipeline").
//  * Brokers also bucket their own link-status reports so a flapping agent
//    cannot flood the controller with replan work.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>

#include "workload/demand.h"

namespace bate {

class TokenBucket {
 public:
  /// rate: tokens (== megabits) added per second; burst: bucket depth.
  TokenBucket(double rate_mbps, double burst_mb)
      : rate_(rate_mbps), burst_(burst_mb), tokens_(burst_mb) {
    if (rate_mbps < 0.0 || burst_mb <= 0.0) {
      throw std::invalid_argument("TokenBucket: rate/burst");
    }
  }

  /// Advances time and refills.
  void advance(double seconds) {
    if (seconds < 0.0) throw std::invalid_argument("TokenBucket: time");
    tokens_ = std::min(burst_, tokens_ + rate_ * seconds);
  }

  /// Tries to send `megabits`; returns true (and consumes) if they fit.
  bool try_consume(double megabits) {
    if (megabits <= tokens_) {
      tokens_ -= megabits;
      return true;
    }
    return false;
  }

  /// Sends as much of `megabits` as the bucket allows; returns the admitted
  /// amount (partial shaping, what a policer's byte counter sees).
  double consume_up_to(double megabits) {
    const double admitted = std::min(megabits, tokens_);
    tokens_ -= admitted;
    return admitted;
  }

  void set_rate(double rate_mbps) {
    if (rate_mbps < 0.0) throw std::invalid_argument("TokenBucket: rate");
    rate_ = rate_mbps;
  }
  double rate() const { return rate_; }
  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
};

/// Per-tenant request-rate limiter for the admission ingress (one token per
/// SubmitDemand). One TokenBucket per tenant, refilled lazily from the
/// caller-supplied clock, so the limiter itself is clockless and
/// deterministic under test. Single-threaded by design: the controller
/// calls it from the event-loop thread only.
class RequestRateLimiter {
 public:
  /// rate: requests/second granted to each tenant; burst: bucket depth
  /// (<= 0 defaults to max(rate, 1), i.e. roughly one second of headroom).
  explicit RequestRateLimiter(double rate_per_sec, double burst = 0.0)
      : rate_(rate_per_sec),
        burst_(burst > 0.0 ? burst : std::max(rate_per_sec, 1.0)) {
    if (rate_per_sec <= 0.0) {
      throw std::invalid_argument("RequestRateLimiter: rate");
    }
  }

  /// Charges one request to `tenant` at time `now_us` (monotonic). Returns
  /// 0 when the request may proceed, else the suggested backoff in
  /// milliseconds until a token will have refilled.
  double acquire(int tenant, std::int64_t now_us) {
    auto [it, fresh] =
        tenants_.try_emplace(tenant, State{TokenBucket(rate_, burst_), now_us});
    State& s = it->second;
    if (!fresh && now_us > s.last_us) {
      s.bucket.advance(static_cast<double>(now_us - s.last_us) * 1e-6);
      s.last_us = now_us;
    }
    if (s.bucket.try_consume(1.0)) return 0.0;
    return (1.0 - s.bucket.tokens()) / rate_ * 1e3;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }
  std::size_t tenant_count() const { return tenants_.size(); }

 private:
  struct State {
    TokenBucket bucket;
    std::int64_t last_us;
  };
  double rate_;
  double burst_;
  std::map<int, State> tenants_;
};

/// The enforcer table a broker drives from AllocationUpdate messages: one
/// bucket per (demand, pair, tunnel).
class BandwidthEnforcer {
 public:
  /// Burst window in seconds of the enforced rate (bucket depth).
  explicit BandwidthEnforcer(double burst_seconds = 0.1)
      : burst_seconds_(burst_seconds) {}

  /// Installs/updates the per-tunnel rates for a (demand, pair).
  void update(DemandId demand, int pair, const std::vector<double>& rates) {
    auto& buckets = table_[{demand, pair}];
    buckets.clear();
    for (double rate : rates) {
      buckets.emplace_back(rate,
                           std::max(rate * burst_seconds_, 1e-3));
    }
  }

  void remove(DemandId demand, int pair) { table_.erase({demand, pair}); }

  /// Advances every bucket by `seconds`.
  void advance(double seconds) {
    for (auto& [key, buckets] : table_) {
      for (TokenBucket& b : buckets) b.advance(seconds);
    }
  }

  /// Shapes an offered burst on one tunnel; returns the admitted megabits.
  /// Unknown rows are dropped entirely (no rule => no service).
  double shape(DemandId demand, int pair, std::size_t tunnel,
               double megabits) {
    const auto it = table_.find({demand, pair});
    if (it == table_.end() || tunnel >= it->second.size()) return 0.0;
    return it->second[tunnel].consume_up_to(megabits);
  }

  std::size_t row_count() const { return table_.size(); }

 private:
  double burst_seconds_;
  std::map<std::pair<DemandId, int>, std::vector<TokenBucket>> table_;
};

}  // namespace bate
