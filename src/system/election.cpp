#include "system/election.h"

namespace bate {

std::optional<PromiseMsg> PaxosAcceptor::on_prepare(const PrepareMsg& msg) {
  if (msg.ballot < promised_) return std::nullopt;
  promised_ = msg.ballot;
  PromiseMsg promise;
  promise.ballot = msg.ballot;
  promise.accepted_ballot = accepted_ballot_;
  promise.accepted_value = accepted_value_;
  promise.from = id_;
  return promise;
}

std::optional<AcceptedMsg> PaxosAcceptor::on_accept(const AcceptMsg& msg) {
  if (msg.ballot < promised_) return std::nullopt;
  promised_ = msg.ballot;
  accepted_ballot_ = msg.ballot;
  accepted_value_ = msg.value;
  AcceptedMsg accepted;
  accepted.ballot = msg.ballot;
  accepted.value = msg.value;
  accepted.from = id_;
  return accepted;
}

PrepareMsg PaxosProposer::start(MasterId value) {
  ballot_ = Ballot{ballot_.round + 1, id_};
  value_ = value;
  promises_.clear();
  accepts_.clear();
  accept_sent_ = false;
  decided_ = false;
  return PrepareMsg{ballot_};
}

std::optional<AcceptMsg> PaxosProposer::on_promise(const PromiseMsg& msg) {
  if (msg.ballot != ballot_ || accept_sent_) return std::nullopt;
  promises_[msg.from] = msg;
  if (static_cast<int>(promises_.size()) < quorum()) return std::nullopt;

  // Paxos invariant: adopt the value of the highest-ballot prior accept
  // among the promising quorum, else keep the preferred value.
  Ballot best;
  for (const auto& [from, promise] : promises_) {
    if (promise.accepted_ballot.valid() && promise.accepted_ballot > best) {
      best = promise.accepted_ballot;
      value_ = promise.accepted_value;
    }
  }
  accept_sent_ = true;
  return AcceptMsg{ballot_, value_};
}

std::optional<MasterId> PaxosProposer::on_accepted(const AcceptedMsg& msg) {
  if (msg.ballot != ballot_ || decided_) return std::nullopt;
  accepts_[msg.from] = msg;
  if (static_cast<int>(accepts_.size()) < quorum()) return std::nullopt;
  decided_ = true;
  return msg.value;
}

}  // namespace bate
