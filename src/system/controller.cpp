#include "system/controller.h"

#include <algorithm>
#include <array>
#include <iterator>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/log.h"

namespace bate {

namespace {

// Stats-backing counters increment unconditionally (the stats() accessor is
// functional, not diagnostic); the net-layer instrumentation below them is
// gated on obs::enabled(). Handles resolve once — registry lookups lock.
struct ControllerMetrics {
  obs::Counter& offered;
  obs::Counter& admitted;
  obs::Counter& failures;
  obs::Counter& updates;
  obs::Counter& frames_in;
  obs::Counter& frames_out;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& decode_errors;
  obs::Gauge& peers;
  obs::Histogram& fanout_us;
  // Admission-pipeline metrics (DESIGN.md Sec 10).
  obs::Counter& shed;
  obs::Counter& duplicates;
  obs::Counter& dropped_dead;
  obs::Gauge& queue_depth;
  obs::Histogram& batch_size;
  obs::Histogram& reply_latency_us;

  static ControllerMetrics& get() {
    auto& reg = obs::Registry::global();
    static ControllerMetrics m{
        reg.counter("bate_controller_demands_offered_total"),
        reg.counter("bate_controller_demands_admitted_total"),
        reg.counter("bate_controller_link_failures_total"),
        reg.counter("bate_controller_allocation_updates_total"),
        reg.counter("bate_controller_frames_in_total"),
        reg.counter("bate_controller_frames_out_total"),
        reg.counter("bate_controller_bytes_in_total"),
        reg.counter("bate_controller_bytes_out_total"),
        reg.counter("bate_controller_decode_errors_total"),
        reg.gauge("bate_controller_peers"),
        reg.histogram("bate_controller_fanout_us"),
        reg.counter("bate_admission_shed_total"),
        reg.counter("bate_admission_duplicate_total"),
        reg.counter("bate_admission_dropped_dead_total"),
        reg.gauge("bate_admission_queue_depth"),
        reg.histogram("bate_admission_batch_size"),
        reg.histogram("bate_admission_reply_latency_us"),
    };
    return m;
  }
};

}  // namespace

Controller::Controller(const Topology& topo, const TunnelCatalog& catalog,
                       SchedulerConfig scheduler_cfg,
                       AdmissionStrategy admission, ControllerConfig config)
    : scheduler_(topo, catalog, scheduler_cfg),
      admission_(scheduler_, admission),
      planner_(topo, catalog),
      config_(config),
      ledger_(obs::SloLedger::Config{config.slo_max_transitions, 1024}) {
  if (config_.tenant_rate_per_sec > 0.0) {
    limiter_.emplace(config_.tenant_rate_per_sec, config_.tenant_burst);
  }
  auto& m = ControllerMetrics::get();
  base_offered_ = m.offered.value();
  base_admitted_ = m.admitted.value();
  base_shed_ = m.shed.value();
  base_failures_ = m.failures.value();
  base_updates_ = m.updates.value();
}

Controller::~Controller() { stop(); }

void Controller::start() {
  BATE_ASSERT_MSG(!thread_.joinable(), "controller started twice");
  listener_ = std::make_unique<TcpListener>(0);
  port_ = listener_->port();
  listener_->set_nonblocking(true);
  // add_reader from this (non-loop) thread is queued and applied at the top
  // of the loop thread's first run_once (net/event_loop.h contract).
  loop_.add_reader(listener_->fd(), [this] { on_accept(); });
  // The drain runs after every loop iteration — under load a "tick" is one
  // epoll round (so the batch is whatever arrived since the last drain) and
  // tick_ms only bounds latency when the loop is otherwise idle.
  thread_ = std::thread([this] {
    loop_.run(config_.tick_ms, [this] {
      drain_admission_queue();
      sample_slo_series(obs::now_us());
    });
  });
  BATE_LOG(kInfo, "controller") << "listening on port " << port_;
}

void Controller::stop() {
  // Terminal: stop() is sticky on the loop, so a Controller cannot be
  // restarted. Order matters — only after join() owns this thread the
  // loop-thread state (peers_, listener_), so sockets are closed last.
  if (!thread_.joinable()) return;
  loop_.stop();
  thread_.join();
  peers_.clear();
  queue_.clear();
  queued_ = 0;
  listener_.reset();
}

void Controller::on_accept() {
  while (auto sock = listener_->accept()) {
    sock->set_nonblocking(true);
    sock->set_nodelay(true);
    const int fd = sock->fd();
    peers_.emplace(fd, Peer{std::move(*sock), FrameReader{}, "", -1, {}});
    loop_.add_reader(fd, [this, fd] { on_peer_readable(fd); });
  }
  if (obs::enabled()) {
    ControllerMetrics::get().peers.set(static_cast<double>(peers_.size()));
  }
}

void Controller::on_peer_readable(int fd) {
  auto it = peers_.find(fd);
  if (it == peers_.end()) return;
  Peer& peer = it->second;

  std::array<std::uint8_t, 4096> buf{};
  bool closed = false;
  while (true) {
    long n = 0;
    try {
      n = peer.socket.read_some(buf);
    } catch (const std::system_error&) {
      closed = true;
      break;
    }
    if (n == 0) {
      closed = true;
      break;
    }
    if (n < 0) break;  // would block
    if (obs::enabled()) ControllerMetrics::get().bytes_in.inc(n);
    peer.reader.feed({buf.data(), static_cast<std::size_t>(n)});
  }
  while (auto frame = peer.reader.next_frame()) {
    if (obs::enabled()) ControllerMetrics::get().frames_in.inc();
    try {
      const obs::SpanContext trace{frame->context.trace_id,
                                   frame->context.span_id};
      handle_message(peer, decode_message(frame->payload), trace);
    } catch (const std::exception& e) {
      if (obs::enabled()) ControllerMetrics::get().decode_errors.inc();
      BATE_LOG_EVERY_N(kWarn, "controller", 1024)
          << "bad message: " << e.what();
    }
  }
  if (closed) {
    loop_.remove(fd);
    peers_.erase(fd);
    // Queued submits from the departed peer must be dropped, not solved:
    // beyond wasting the batch MILP on a dead requester, the kernel reuses
    // fd numbers, so a stale entry could reply to the wrong peer.
    purge_queue_for_fd(fd);
    if (obs::enabled()) {
      ControllerMetrics::get().peers.set(static_cast<double>(peers_.size()));
    }
  }
}

int Controller::tenant_of(const Peer& peer) const {
  // The Hello dc field doubles as the tenant id for users; anonymous peers
  // fall back to their fd so each connection is its own tenant.
  return peer.dc >= 0 ? peer.dc : peer.socket.fd();
}

void Controller::purge_queue_for_fd(int fd) {
  auto& m = ControllerMetrics::get();
  for (auto it = queue_.begin(); it != queue_.end();) {
    auto& dq = it->second;
    for (auto p = dq.begin(); p != dq.end();) {
      if (p->fd == fd) {
        m.dropped_dead.inc();
        BATE_LOG_EVERY_N(kWarn, "controller", 1024)
            << "dropping queued submit from departed fd " << fd
            << " (dropped so far " << m.dropped_dead.value() << ")";
        --queued_;
        p = dq.erase(p);
      } else {
        ++p;
      }
    }
    it = dq.empty() ? queue_.erase(it) : std::next(it);
  }
  if (obs::enabled()) m.queue_depth.set(static_cast<double>(queued_));
}

void Controller::purge_queue_for_demand(DemandId id) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    auto& dq = it->second;
    for (auto p = dq.begin(); p != dq.end();) {
      if (p->demand.id == id) {
        if (auto peer = peers_.find(p->fd); peer != peers_.end()) {
          peer->second.inflight.erase(p->request_id);
        }
        --queued_;
        p = dq.erase(p);
      } else {
        ++p;
      }
    }
    it = dq.empty() ? queue_.erase(it) : std::next(it);
  }
}

void Controller::send_to(Peer& peer, const Message& msg) {
  const auto framed = encode_frame(encode_message(msg));
  if (obs::enabled()) {
    auto& m = ControllerMetrics::get();
    m.frames_out.inc();
    m.bytes_out.inc(static_cast<std::int64_t>(framed.size()));
  }
  try {
    // Frames are small; a blocking send on a nonblocking socket can still
    // short-write under pressure, which write_all treats as EAGAIN error —
    // acceptable for the control channel sizes used here.
    peer.socket.write_all(framed);
  } catch (const std::system_error& e) {
    BATE_LOG(kWarn, "controller") << "send failed: " << e.what();
  }
}

void Controller::flush_batch(Peer& peer, const FrameBatch& batch) {
  if (batch.empty()) return;
  if (obs::enabled()) {
    auto& m = ControllerMetrics::get();
    m.frames_out.inc(static_cast<std::int64_t>(batch.frame_count()));
    m.bytes_out.inc(static_cast<std::int64_t>(batch.bytes().size()));
  }
  try {
    peer.socket.write_all(batch.bytes());
  } catch (const std::system_error& e) {
    BATE_LOG(kWarn, "controller") << "batched send failed: " << e.what();
  }
}

void Controller::run_scheduling_round() {
  admission_.reschedule();
  std::vector<Allocation> current = admission_.allocations();
  // precompute() rebuilds the planner's plan table, so any previously
  // activated backup plan pointer is stale from here on.
  active_plan_ = nullptr;
  planner_.precompute(admission_.admitted(), current);
}

void Controller::handle_message(Peer& peer, const Message& msg,
                                const obs::SpanContext& trace) {
  if (const auto* hello = std::get_if<HelloMsg>(&msg)) {
    peer.role = hello->role;
    peer.dc = hello->dc;
    // A broker may introduce itself after demands were already admitted and
    // broadcast (its Hello races with the first SubmitDemand on a different
    // connection). Hand the late joiner the current allocation snapshot so
    // its enforcer never starts from a stale void.
    if (peer.role == "broker") send_allocation_snapshot(peer);
    return;
  }
  if (const auto* submit = std::get_if<SubmitDemandMsg>(&msg)) {
    on_submit(peer, *submit, trace);
    return;
  }
  if (const auto* withdraw = std::get_if<WithdrawDemandMsg>(&msg)) {
    // A withdraw racing its own queued submit (pipelined client) cancels
    // the queued entry; without this the admission would land after the
    // withdraw and leak the demand.
    purge_queue_for_demand(withdraw->id);
    const std::int64_t now = obs::now_us();
    ledger_.withdraw(withdraw->id, now);
    admission_.remove(withdraw->id);
    run_scheduling_round();
    broadcast_allocations(false, nullptr);
    refresh_slo(obs::now_us());
    return;
  }
  if (const auto* status = std::get_if<LinkStatusMsg>(&msg)) {
    if (!status->up) {
      ControllerMetrics::get().failures.inc();
      down_links_.insert(status->link);
      active_plan_ = planner_.plan(status->link);
      broadcast_allocations(true, active_plan_);
    } else {
      down_links_.erase(status->link);
      active_plan_ = nullptr;
      broadcast_allocations(false, nullptr);
    }
    refresh_slo(obs::now_us());
    return;
  }
  if (const auto* req = std::get_if<StatsRequestMsg>(&msg)) {
    const std::string format =
        req->format.empty() ? "prometheus" : req->format;
    // single-shot: the stats scrape protocol predates request_id pipelining
    send_to(peer, StatsReplyMsg{format, obs::Registry::global().dump(format)});
    return;
  }
  if (const auto* slo = std::get_if<SloRequestMsg>(&msg)) {
    const std::string format = slo->format.empty() ? "json" : slo->format;
    // single-shot: SLO scrapes are polled, never pipelined
    send_to(peer, SloReplyMsg{format,
                              slo_payload(slo->selector, obs::now_us())});
    return;
  }
}

void Controller::shed(Peer& peer, std::uint64_t request_id, DemandId id,
                      double retry_after_ms) {
  auto& m = ControllerMetrics::get();
  m.shed.inc();
  // Rate-limited: under a 100k/s overload every overflow submit lands
  // here; one line per 1024 sheds keeps the logger out of the hot path.
  BATE_LOG_EVERY_N(kWarn, "controller", 1024)
      << "shedding demand " << id << " (shed so far " << m.shed.value()
      << ", retry_after " << retry_after_ms << "ms)";
  send_to(peer, AdmissionReplyMsg{request_id, id, AdmissionStatus::kShed,
                                  retry_after_ms});
}

void Controller::on_submit(Peer& peer, const SubmitDemandMsg& submit,
                           const obs::SpanContext& trace) {
  auto& m = ControllerMetrics::get();
  const std::uint64_t rid = submit.request_id;
  if (rid != 0 && peer.inflight.count(rid) != 0) {
    m.duplicates.inc();
    BATE_LOG_EVERY_N(kWarn, "controller", 1024)
        << "duplicate request_id " << rid << " (count so far "
        << m.duplicates.value() << ")";
    send_to(peer, AdmissionReplyMsg{rid, submit.demand.id,
                                    AdmissionStatus::kDuplicate, 0.0});
    return;
  }
  const std::int64_t now = obs::now_us();
  if (limiter_) {
    const double retry_ms = limiter_->acquire(tenant_of(peer), now);
    if (retry_ms > 0.0) {
      shed(peer, rid, submit.demand.id, retry_ms);
      return;
    }
  }
  if (!config_.batch_admission) {
    obs::ScopedTraceContext adopt(trace);
    admit_inline(peer, submit, now);
    return;
  }
  if (queued_ >= config_.max_queue) {
    shed(peer, rid, submit.demand.id, static_cast<double>(config_.tick_ms));
    return;
  }
  if (rid != 0) peer.inflight.insert(rid);
  queue_[tenant_of(peer)].push_back(PendingAdmission{
      peer.socket.fd(), rid, submit.demand, now, tenant_of(peer), trace});
  ++queued_;
  if (obs::enabled()) m.queue_depth.set(static_cast<double>(queued_));
}

void Controller::admit_inline(Peer& peer, const SubmitDemandMsg& submit,
                              std::int64_t recv_us) {
  obs::Span span("controller.admit_inline");
  const AdmissionOutcome outcome = admission_.offer(submit.demand);
  auto& m = ControllerMetrics::get();
  m.offered.inc();
  if (outcome.admitted) m.admitted.inc();
  send_to(peer, AdmissionReplyMsg{submit.request_id, submit.demand.id,
                                  outcome.admitted ? AdmissionStatus::kAdmitted
                                                   : AdmissionStatus::kRejected,
                                  0.0});
  if (obs::enabled()) m.reply_latency_us.record(obs::now_us() - recv_us);
  if (outcome.admitted) {
    const std::int64_t now = obs::now_us();
    ledger_.admit(submit.demand.id, tenant_of(peer),
                  submit.demand.availability_target, now);
    ledger_.allocate(submit.demand.id, now);
    run_scheduling_round();
    broadcast_allocations(false, nullptr);
    refresh_slo(obs::now_us());
  }
}

void Controller::drain_admission_queue() {
  if (queued_ == 0) return;
  auto& m = ControllerMetrics::get();

  // Round-robin across tenants: one pending per tenant per lap until the
  // queue empties. The whole queue drains this tick either way; the
  // interleave decides batch position, i.e. FCFS priority for whatever
  // capacity is left, so one chatty tenant cannot starve the others.
  std::vector<PendingAdmission> batch;
  batch.reserve(queued_);
  while (queued_ > 0) {
    for (auto it = queue_.begin(); it != queue_.end();) {
      auto& dq = it->second;
      if (!dq.empty()) {
        batch.push_back(std::move(dq.front()));
        dq.pop_front();
        --queued_;
      }
      it = dq.empty() ? queue_.erase(it) : std::next(it);
    }
  }
  if (obs::enabled()) {
    m.queue_depth.set(0.0);
    m.batch_size.record(static_cast<std::int64_t>(batch.size()));
  }

  // Retroactive queue-wait spans (enqueue -> this drain), parented under
  // each traced submit's client span; the first traced entry's queue-wait
  // becomes the ambient parent of the whole batch solve, so the per-demand
  // client trace connects through to the shared MILP/broadcast spans.
  obs::SpanContext batch_parent{};
  const std::int64_t drain_us = obs::now_us();
  if (obs::enabled()) {
    for (const PendingAdmission& p : batch) {
      if (!p.trace.valid()) continue;
      const obs::SpanContext wait_ctx{p.trace.trace_id, obs::next_span_id()};
      obs::record_span("controller.queue_wait", p.enqueue_us,
                       drain_us - p.enqueue_us, wait_ctx, p.trace.span_id);
      if (!batch_parent.valid()) batch_parent = wait_ctx;
    }
  }
  obs::ScopedTraceContext adopt(batch_parent);
  obs::Span batch_span("controller.batch_admission");

  std::vector<Demand> demands;
  demands.reserve(batch.size());
  for (const PendingAdmission& p : batch) demands.push_back(p.demand);
  const BatchAdmissionOutcome result = admission_.offer_batch(demands);

  // Per-peer reply batches: one write per peer per tick, not per verdict.
  std::map<int, FrameBatch> outboxes;
  bool any_admitted = false;
  const std::int64_t reply_us = obs::now_us();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const bool admitted = result.outcomes[i].admitted;
    m.offered.inc();
    if (admitted) {
      m.admitted.inc();
      any_admitted = true;
      ledger_.admit(batch[i].demand.id, batch[i].tenant,
                    batch[i].demand.availability_target, reply_us);
      ledger_.allocate(batch[i].demand.id, reply_us);
    }
    auto it = peers_.find(batch[i].fd);
    if (it == peers_.end()) continue;  // vanished mid-drain
    it->second.inflight.erase(batch[i].request_id);
    outboxes[batch[i].fd].add(encode_message(AdmissionReplyMsg{
        batch[i].request_id, batch[i].demand.id,
        admitted ? AdmissionStatus::kAdmitted : AdmissionStatus::kRejected,
        0.0}));
    if (obs::enabled()) {
      m.reply_latency_us.record(reply_us - batch[i].enqueue_us);
    }
  }
  for (auto& [fd, outbox] : outboxes) {
    if (auto it = peers_.find(fd); it != peers_.end()) {
      flush_batch(it->second, outbox);
    }
  }

  if (!any_admitted) return;
  bool rescheduled = result.rescheduled;
  if (!rescheduled && config_.reschedule_after_batch) {
    // One scheduling round per batch with admissions — the pre-pipeline
    // behaviour ran one per request.
    admission_.reschedule();
    rescheduled = true;
  }
  if (config_.precompute_backup) {
    active_plan_ = nullptr;  // precompute invalidates plan pointers
    planner_.precompute(admission_.admitted(), admission_.allocations());
  }
  if (rescheduled) {
    // A reschedule may have moved anyone's rates: full broadcast of the
    // primary allocations — any activated backup plan is superseded.
    active_plan_ = nullptr;
    broadcast_allocations(false, nullptr);
  } else {
    // Greedy admissions appended to the tail without touching existing
    // allocations: delta-broadcast just the new rows.
    broadcast_new_allocations(result.first_new_index);
  }
  refresh_slo(obs::now_us());
}

int Controller::send_allocations_to(Peer& peer, bool backup,
                                    std::span<const Demand> demands,
                                    std::span<const Allocation> allocs,
                                    const FrameContext& trace) {
  BATE_DCHECK_MSG(demands.size() == allocs.size(),
                  "controller: demand/allocation desync");
  int sent = 0;
  FrameBatch batch;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    for (std::size_t p = 0; p < demands[i].pairs.size(); ++p) {
      AllocationUpdateMsg update;
      update.id = demands[i].id;
      update.pair = demands[i].pairs[p].pair;
      update.tunnel_mbps = allocs[i][p];
      update.backup = backup;
      batch.add(encode_message(update), trace);
      ++sent;
    }
  }
  flush_batch(peer, batch);
  return sent;
}

void Controller::broadcast_new_allocations(std::size_t first_new) {
  const auto& demands = admission_.admitted();
  const auto& allocs = admission_.allocations();
  if (first_new >= demands.size()) return;
  obs::Span span("controller.broadcast");
  const obs::SpanContext sc = span.context();
  const FrameContext trace{sc.trace_id, sc.span_id};
  const std::int64_t t0 = obs::now_us();
  const std::span<const Demand> tail(demands.data() + first_new,
                                     demands.size() - first_new);
  const std::span<const Allocation> tail_allocs(allocs.data() + first_new,
                                                allocs.size() - first_new);
  int sent = 0;
  for (auto& [fd, peer] : peers_) {
    if (peer.role != "broker") continue;
    sent += send_allocations_to(peer, false, tail, tail_allocs, trace);
  }
  auto& m = ControllerMetrics::get();
  m.updates.inc(sent);
  if (obs::enabled() && sent > 0) m.fanout_us.record(obs::now_us() - t0);
}

void Controller::send_allocation_snapshot(Peer& peer) {
  const int sent = send_allocations_to(peer, false, admission_.admitted(),
                                       admission_.allocations());
  ControllerMetrics::get().updates.inc(sent);
}

void Controller::broadcast_allocations(bool backup,
                                       const RecoveryResult* plan) {
  obs::Span span("controller.broadcast");
  const obs::SpanContext sc = span.context();
  const FrameContext trace{sc.trace_id, sc.span_id};
  const std::int64_t t0 = obs::now_us();
  const auto& demands =
      (backup && plan != nullptr) ? planner_.demands() : admission_.admitted();
  const auto& allocs = (backup && plan != nullptr)
                           ? plan->alloc
                           : admission_.allocations();
  int sent = 0;
  for (auto& [fd, peer] : peers_) {
    if (peer.role != "broker") continue;
    sent += send_allocations_to(peer, backup, demands, allocs, trace);
  }
  auto& m = ControllerMetrics::get();
  m.updates.inc(sent);
  if (obs::enabled() && sent > 0) m.fanout_us.record(obs::now_us() - t0);
}

void Controller::refresh_slo(std::int64_t now_us) {
  // Delivered rate per (demand, pair): the live allocation table (primary,
  // or the activated backup plan) minus every tunnel crossing a down link.
  // This is the controller-side replay of the simulator's deliver_second
  // satisfied rule, through the shared obs::interval_satisfied floor.
  const bool backup = active_plan_ != nullptr;
  const auto& demands = backup ? planner_.demands() : admission_.admitted();
  const auto& allocs = backup ? active_plan_->alloc : admission_.allocations();
  const TunnelCatalog& catalog = scheduler_.catalog();
  const std::size_t n = std::min(demands.size(), allocs.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Demand& d = demands[i];
    bool ok = true;
    for (std::size_t p = 0; p < d.pairs.size() && ok; ++p) {
      if (d.pairs[p].mbps <= 0.0) continue;
      if (p >= allocs[i].size()) {
        ok = false;
        break;
      }
      const std::vector<Tunnel>& tunnels = catalog.tunnels(d.pairs[p].pair);
      const std::vector<double>& rates = allocs[i][p];
      double delivered = 0.0;
      for (std::size_t t = 0; t < rates.size(); ++t) {
        if (!down_links_.empty() && t < tunnels.size()) {
          bool tunnel_up = true;
          for (const LinkId link : tunnels[t].links) {
            if (down_links_.count(link) != 0) {
              tunnel_up = false;
              break;
            }
          }
          if (!tunnel_up) continue;
        }
        delivered += rates[t];
      }
      ok = obs::interval_satisfied(delivered / d.pairs[p].mbps);
    }
    ledger_.set_satisfied(d.id, ok, now_us);
  }
}

void Controller::sample_slo_series(std::int64_t now_us) {
  if (config_.slo_sample_period_ms <= 0 || !obs::enabled()) return;
  if (now_us < next_sample_us_) return;
  next_sample_us_ =
      now_us + static_cast<std::int64_t>(config_.slo_sample_period_ms) * 1000;
  series_.sample(obs::Registry::global().snapshot(), now_us);
}

std::string Controller::slo_payload(const std::string& selector,
                                    std::int64_t now_us) {
  // 60s window: long enough to cover several sampler periods at the
  // default 1s, short enough that the dashboard's rates track load shifts.
  constexpr std::int64_t kWindowUs = 60'000'000;
  if (selector == "ledger") return ledger_.snapshot(now_us).to_json();
  if (selector == "series") return series_.to_json(now_us, kWindowUs);
  std::string out = "{\"now_us\":";
  out += std::to_string(now_us);
  out += ",\"ledger\":";
  out += ledger_.snapshot(now_us).to_json();
  out += ",\"series\":";
  out += series_.to_json(now_us, kWindowUs);
  out += "}";
  return out;
}

ControllerStats Controller::stats() const {
  auto& m = ControllerMetrics::get();
  ControllerStats s;
  s.demands_offered = static_cast<int>(m.offered.value() - base_offered_);
  s.demands_admitted = static_cast<int>(m.admitted.value() - base_admitted_);
  s.demands_shed = static_cast<int>(m.shed.value() - base_shed_);
  s.link_failures_handled =
      static_cast<int>(m.failures.value() - base_failures_);
  s.allocation_updates_sent =
      static_cast<int>(m.updates.value() - base_updates_);
  return s;
}

}  // namespace bate
