#include "system/controller.h"

#include <array>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/log.h"

namespace bate {

namespace {

// Stats-backing counters increment unconditionally (the stats() accessor is
// functional, not diagnostic); the net-layer instrumentation below them is
// gated on obs::enabled(). Handles resolve once — registry lookups lock.
struct ControllerMetrics {
  obs::Counter& offered;
  obs::Counter& admitted;
  obs::Counter& failures;
  obs::Counter& updates;
  obs::Counter& frames_in;
  obs::Counter& frames_out;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& decode_errors;
  obs::Gauge& peers;
  obs::Histogram& fanout_us;

  static ControllerMetrics& get() {
    auto& reg = obs::Registry::global();
    static ControllerMetrics m{
        reg.counter("bate_controller_demands_offered_total"),
        reg.counter("bate_controller_demands_admitted_total"),
        reg.counter("bate_controller_link_failures_total"),
        reg.counter("bate_controller_allocation_updates_total"),
        reg.counter("bate_controller_frames_in_total"),
        reg.counter("bate_controller_frames_out_total"),
        reg.counter("bate_controller_bytes_in_total"),
        reg.counter("bate_controller_bytes_out_total"),
        reg.counter("bate_controller_decode_errors_total"),
        reg.gauge("bate_controller_peers"),
        reg.histogram("bate_controller_fanout_us"),
    };
    return m;
  }
};

}  // namespace

Controller::Controller(const Topology& topo, const TunnelCatalog& catalog,
                       SchedulerConfig scheduler_cfg,
                       AdmissionStrategy admission)
    : scheduler_(topo, catalog, scheduler_cfg),
      admission_(scheduler_, admission),
      planner_(topo, catalog) {
  auto& m = ControllerMetrics::get();
  base_offered_ = m.offered.value();
  base_admitted_ = m.admitted.value();
  base_failures_ = m.failures.value();
  base_updates_ = m.updates.value();
}

Controller::~Controller() { stop(); }

void Controller::start() {
  BATE_ASSERT_MSG(!thread_.joinable(), "controller started twice");
  listener_ = std::make_unique<TcpListener>(0);
  port_ = listener_->port();
  listener_->set_nonblocking(true);
  // add_reader from this (non-loop) thread is queued and applied at the top
  // of the loop thread's first run_once (net/event_loop.h contract).
  loop_.add_reader(listener_->fd(), [this] { on_accept(); });
  thread_ = std::thread([this] { loop_.run(20); });
  BATE_LOG(kInfo, "controller") << "listening on port " << port_;
}

void Controller::stop() {
  // Terminal: stop() is sticky on the loop, so a Controller cannot be
  // restarted. Order matters — only after join() owns this thread the
  // loop-thread state (peers_, listener_), so sockets are closed last.
  if (!thread_.joinable()) return;
  loop_.stop();
  thread_.join();
  peers_.clear();
  listener_.reset();
}

void Controller::on_accept() {
  while (auto sock = listener_->accept()) {
    sock->set_nonblocking(true);
    sock->set_nodelay(true);
    const int fd = sock->fd();
    peers_.emplace(fd, Peer{std::move(*sock), FrameReader{}, "", -1});
    loop_.add_reader(fd, [this, fd] { on_peer_readable(fd); });
  }
  if (obs::enabled()) {
    ControllerMetrics::get().peers.set(static_cast<double>(peers_.size()));
  }
}

void Controller::on_peer_readable(int fd) {
  auto it = peers_.find(fd);
  if (it == peers_.end()) return;
  Peer& peer = it->second;

  std::array<std::uint8_t, 4096> buf{};
  bool closed = false;
  while (true) {
    long n = 0;
    try {
      n = peer.socket.read_some(buf);
    } catch (const std::system_error&) {
      closed = true;
      break;
    }
    if (n == 0) {
      closed = true;
      break;
    }
    if (n < 0) break;  // would block
    if (obs::enabled()) ControllerMetrics::get().bytes_in.inc(n);
    peer.reader.feed({buf.data(), static_cast<std::size_t>(n)});
  }
  while (auto frame = peer.reader.next()) {
    if (obs::enabled()) ControllerMetrics::get().frames_in.inc();
    try {
      handle_message(peer, decode_message(*frame));
    } catch (const std::exception& e) {
      if (obs::enabled()) ControllerMetrics::get().decode_errors.inc();
      BATE_LOG(kWarn, "controller") << "bad message: " << e.what();
    }
  }
  if (closed) {
    loop_.remove(fd);
    peers_.erase(fd);
    if (obs::enabled()) {
      ControllerMetrics::get().peers.set(static_cast<double>(peers_.size()));
    }
  }
}

void Controller::send_to(Peer& peer, const Message& msg) {
  const auto framed = encode_frame(encode_message(msg));
  if (obs::enabled()) {
    auto& m = ControllerMetrics::get();
    m.frames_out.inc();
    m.bytes_out.inc(static_cast<std::int64_t>(framed.size()));
  }
  try {
    // Frames are small; a blocking send on a nonblocking socket can still
    // short-write under pressure, which write_all treats as EAGAIN error —
    // acceptable for the control channel sizes used here.
    peer.socket.write_all(framed);
  } catch (const std::system_error& e) {
    BATE_LOG(kWarn, "controller") << "send failed: " << e.what();
  }
}

void Controller::run_scheduling_round() {
  admission_.reschedule();
  std::vector<Allocation> current = admission_.allocations();
  planner_.precompute(admission_.admitted(), current);
}

void Controller::handle_message(Peer& peer, const Message& msg) {
  if (const auto* hello = std::get_if<HelloMsg>(&msg)) {
    peer.role = hello->role;
    peer.dc = hello->dc;
    // A broker may introduce itself after demands were already admitted and
    // broadcast (its Hello races with the first SubmitDemand on a different
    // connection). Hand the late joiner the current allocation snapshot so
    // its enforcer never starts from a stale void.
    if (peer.role == "broker") send_allocation_snapshot(peer);
    return;
  }
  if (const auto* submit = std::get_if<SubmitDemandMsg>(&msg)) {
    const AdmissionOutcome outcome = admission_.offer(submit->demand);
    auto& m = ControllerMetrics::get();
    m.offered.inc();
    if (outcome.admitted) m.admitted.inc();
    send_to(peer, AdmissionReplyMsg{submit->demand.id, outcome.admitted});
    if (outcome.admitted) {
      run_scheduling_round();
      broadcast_allocations(false, nullptr);
    }
    return;
  }
  if (const auto* withdraw = std::get_if<WithdrawDemandMsg>(&msg)) {
    admission_.remove(withdraw->id);
    run_scheduling_round();
    broadcast_allocations(false, nullptr);
    return;
  }
  if (const auto* status = std::get_if<LinkStatusMsg>(&msg)) {
    if (!status->up) {
      ControllerMetrics::get().failures.inc();
      broadcast_allocations(true, planner_.plan(status->link));
    } else {
      broadcast_allocations(false, nullptr);
    }
    return;
  }
  if (const auto* req = std::get_if<StatsRequestMsg>(&msg)) {
    const std::string format =
        req->format.empty() ? "prometheus" : req->format;
    send_to(peer, StatsReplyMsg{format, obs::Registry::global().dump(format)});
    return;
  }
}

int Controller::send_allocations_to(Peer& peer, bool backup,
                                    std::span<const Demand> demands,
                                    std::span<const Allocation> allocs) {
  BATE_DCHECK_MSG(demands.size() == allocs.size(),
                  "controller: demand/allocation desync");
  int sent = 0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    for (std::size_t p = 0; p < demands[i].pairs.size(); ++p) {
      AllocationUpdateMsg update;
      update.id = demands[i].id;
      update.pair = demands[i].pairs[p].pair;
      update.tunnel_mbps = allocs[i][p];
      update.backup = backup;
      send_to(peer, update);
      ++sent;
    }
  }
  return sent;
}

void Controller::send_allocation_snapshot(Peer& peer) {
  const int sent = send_allocations_to(peer, false, admission_.admitted(),
                                       admission_.allocations());
  ControllerMetrics::get().updates.inc(sent);
}

void Controller::broadcast_allocations(bool backup,
                                       const RecoveryResult* plan) {
  const std::int64_t t0 = obs::now_us();
  const auto& demands =
      (backup && plan != nullptr) ? planner_.demands() : admission_.admitted();
  const auto& allocs = (backup && plan != nullptr)
                           ? plan->alloc
                           : admission_.allocations();
  int sent = 0;
  for (auto& [fd, peer] : peers_) {
    if (peer.role != "broker") continue;
    sent += send_allocations_to(peer, backup, demands, allocs);
  }
  auto& m = ControllerMetrics::get();
  m.updates.inc(sent);
  if (obs::enabled() && sent > 0) m.fanout_us.record(obs::now_us() - t0);
}

ControllerStats Controller::stats() const {
  auto& m = ControllerMetrics::get();
  ControllerStats s;
  s.demands_offered = static_cast<int>(m.offered.value() - base_offered_);
  s.demands_admitted = static_cast<int>(m.admitted.value() - base_admitted_);
  s.link_failures_handled =
      static_cast<int>(m.failures.value() - base_failures_);
  s.allocation_updates_sent =
      static_cast<int>(m.updates.value() - base_updates_);
  return s;
}

}  // namespace bate
