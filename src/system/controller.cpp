#include "system/controller.h"

#include <array>

#include "util/check.h"
#include "util/log.h"

namespace bate {

Controller::Controller(const Topology& topo, const TunnelCatalog& catalog,
                       SchedulerConfig scheduler_cfg,
                       AdmissionStrategy admission)
    : scheduler_(topo, catalog, scheduler_cfg),
      admission_(scheduler_, admission),
      planner_(topo, catalog) {}

Controller::~Controller() { stop(); }

void Controller::start() {
  BATE_ASSERT_MSG(!thread_.joinable(), "controller started twice");
  listener_ = std::make_unique<TcpListener>(0);
  port_ = listener_->port();
  listener_->set_nonblocking(true);
  // add_reader from this (non-loop) thread is queued and applied at the top
  // of the loop thread's first run_once (net/event_loop.h contract).
  loop_.add_reader(listener_->fd(), [this] { on_accept(); });
  thread_ = std::thread([this] { loop_.run(20); });
  log_info("controller", "listening on port " + std::to_string(port_));
}

void Controller::stop() {
  // Terminal: stop() is sticky on the loop, so a Controller cannot be
  // restarted. Order matters — only after join() owns this thread the
  // loop-thread state (peers_, listener_), so sockets are closed last.
  if (!thread_.joinable()) return;
  loop_.stop();
  thread_.join();
  peers_.clear();
  listener_.reset();
}

void Controller::on_accept() {
  while (auto sock = listener_->accept()) {
    sock->set_nonblocking(true);
    sock->set_nodelay(true);
    const int fd = sock->fd();
    peers_.emplace(fd, Peer{std::move(*sock), FrameReader{}, "", -1});
    loop_.add_reader(fd, [this, fd] { on_peer_readable(fd); });
  }
}

void Controller::on_peer_readable(int fd) {
  auto it = peers_.find(fd);
  if (it == peers_.end()) return;
  Peer& peer = it->second;

  std::array<std::uint8_t, 4096> buf{};
  bool closed = false;
  while (true) {
    long n = 0;
    try {
      n = peer.socket.read_some(buf);
    } catch (const std::system_error&) {
      closed = true;
      break;
    }
    if (n == 0) {
      closed = true;
      break;
    }
    if (n < 0) break;  // would block
    peer.reader.feed({buf.data(), static_cast<std::size_t>(n)});
  }
  while (auto frame = peer.reader.next()) {
    try {
      handle_message(peer, decode_message(*frame));
    } catch (const std::exception& e) {
      log_warn("controller", std::string("bad message: ") + e.what());
    }
  }
  if (closed) {
    loop_.remove(fd);
    peers_.erase(fd);
  }
}

void Controller::send_to(Peer& peer, const Message& msg) {
  const auto framed = encode_frame(encode_message(msg));
  try {
    // Frames are small; a blocking send on a nonblocking socket can still
    // short-write under pressure, which write_all treats as EAGAIN error —
    // acceptable for the control channel sizes used here.
    peer.socket.write_all(framed);
  } catch (const std::system_error& e) {
    log_warn("controller", std::string("send failed: ") + e.what());
  }
}

void Controller::run_scheduling_round() {
  admission_.reschedule();
  std::vector<Allocation> current = admission_.allocations();
  planner_.precompute(admission_.admitted(), current);
}

void Controller::handle_message(Peer& peer, const Message& msg) {
  if (const auto* hello = std::get_if<HelloMsg>(&msg)) {
    peer.role = hello->role;
    peer.dc = hello->dc;
    // A broker may introduce itself after demands were already admitted and
    // broadcast (its Hello races with the first SubmitDemand on a different
    // connection). Hand the late joiner the current allocation snapshot so
    // its enforcer never starts from a stale void.
    if (peer.role == "broker") send_allocation_snapshot(peer);
    return;
  }
  if (const auto* submit = std::get_if<SubmitDemandMsg>(&msg)) {
    const AdmissionOutcome outcome = admission_.offer(submit->demand);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.demands_offered;
      stats_.demands_admitted += outcome.admitted ? 1 : 0;
    }
    send_to(peer, AdmissionReplyMsg{submit->demand.id, outcome.admitted});
    if (outcome.admitted) {
      run_scheduling_round();
      broadcast_allocations(false, nullptr);
    }
    return;
  }
  if (const auto* withdraw = std::get_if<WithdrawDemandMsg>(&msg)) {
    admission_.remove(withdraw->id);
    run_scheduling_round();
    broadcast_allocations(false, nullptr);
    return;
  }
  if (const auto* status = std::get_if<LinkStatusMsg>(&msg)) {
    if (!status->up) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.link_failures_handled;
      }
      broadcast_allocations(true, planner_.plan(status->link));
    } else {
      broadcast_allocations(false, nullptr);
    }
    return;
  }
}

int Controller::send_allocations_to(Peer& peer, bool backup,
                                    std::span<const Demand> demands,
                                    std::span<const Allocation> allocs) {
  BATE_DCHECK_MSG(demands.size() == allocs.size(),
                  "controller: demand/allocation desync");
  int sent = 0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    for (std::size_t p = 0; p < demands[i].pairs.size(); ++p) {
      AllocationUpdateMsg update;
      update.id = demands[i].id;
      update.pair = demands[i].pairs[p].pair;
      update.tunnel_mbps = allocs[i][p];
      update.backup = backup;
      send_to(peer, update);
      ++sent;
    }
  }
  return sent;
}

void Controller::send_allocation_snapshot(Peer& peer) {
  const int sent = send_allocations_to(peer, false, admission_.admitted(),
                                       admission_.allocations());
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.allocation_updates_sent += sent;
}

void Controller::broadcast_allocations(bool backup,
                                       const RecoveryResult* plan) {
  const auto& demands =
      (backup && plan != nullptr) ? planner_.demands() : admission_.admitted();
  const auto& allocs = (backup && plan != nullptr)
                           ? plan->alloc
                           : admission_.allocations();
  int sent = 0;
  for (auto& [fd, peer] : peers_) {
    if (peer.role != "broker") continue;
    sent += send_allocations_to(peer, backup, demands, allocs);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.allocation_updates_sent += sent;
}

ControllerStats Controller::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace bate
