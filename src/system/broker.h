// A BATE broker (Sec 4): one per DC. Connects to the controller over a
// long-lived TCP session, receives allocation updates for its bandwidth
// enforcer, and reports link status changes observed by its network agent.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "net/framing.h"
#include "net/socket.h"
#include "system/protocol.h"
#include "system/rate_limiter.h"
#include "util/mutex.h"

namespace bate {

class Broker {
 public:
  /// `report_rate_per_sec` > 0 buckets link-status reports (token bucket,
  /// depth `report_burst`, defaulting to the rate): a flapping network
  /// agent is clipped at the broker instead of flooding the controller
  /// with replan work. 0 (default) reports unthrottled.
  Broker(int dc_id, std::uint16_t controller_port,
         double report_rate_per_sec = 0.0, double report_burst = 0.0);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Connects, sends Hello{role="broker"} and starts the receive thread.
  void start();
  void stop();

  /// Bandwidth-enforcer view: currently enforced per-tunnel rates for a
  /// (demand, pair); empty when unknown.
  std::vector<double> enforced_rates(DemandId id, int pair) const;
  /// Total enforced rate across tunnels for a (demand, pair).
  double enforced_total(DemandId id, int pair) const;
  /// Number of allocation updates received (test/diagnostic hook).
  int updates_received() const;
  /// Blocks until more than `count` allocation updates have been received
  /// or `timeout_ms` elapses; returns the current update count. Event-driven
  /// alternative to sleep/poll loops for callers waiting on enforcer state:
  /// wake-ups ride the receive thread's notification instead of a timer.
  int wait_updates_past(int count, int timeout_ms) const;
  /// True when the latest update for any row came from a backup plan.
  bool backup_active() const;

  /// Network agent: report a link status change to the controller. Safe
  /// from any thread; a report racing stop() (or after it) is dropped, as
  /// is a report exceeding the construction-time report rate.
  void report_link(LinkId link, bool up);
  /// Reports dropped by this broker (stopped socket, send failure, or the
  /// report-rate bucket). Test/diagnostic hook.
  int reports_dropped() const;

  /// Bandwidth enforcer (Sec 4): shapes an offered burst on one tunnel of
  /// an enforced (demand, pair) row; returns the admitted megabits.
  double shape(DemandId id, int pair, std::size_t tunnel, double megabits);
  /// Advances the enforcer's token buckets by `seconds`.
  void advance_enforcer(double seconds);

  int dc() const { return dc_; }

 private:
  /// Receive-thread body. Reads socket_ without write_mu_ by design (see
  /// the stop() ordering proof below), so the analysis is off for it; all
  /// state mutation is delegated to apply_update().
  void receive_loop() BATE_NO_THREAD_SAFETY_ANALYSIS;
  /// Applies one allocation update to the enforcer view (takes mu_).
  void apply_update(const AllocationUpdateMsg& update) BATE_EXCLUDES(mu_);

  int dc_;
  std::uint16_t port_;
  std::thread thread_;
  std::atomic<bool> running_{false};

  // Socket lifetime/ordering (stop()): writers take write_mu_ and check
  // running_ so no send can race the shutdown+close sequence; the receive
  // thread only reads, and shutdown() (under write_mu_) unblocks it before
  // join, after which close() is single-threaded. write_mu_ and mu_ share
  // rank kBroker: they are never held together.
  mutable Mutex write_mu_{LockRank::kBroker, "broker write"};
  Socket socket_ BATE_GUARDED_BY(write_mu_);  // reader side: see receive_loop
  /// Link-report rate bucket (rate_limiter.h), refilled from the wall clock
  /// on each report; disengaged when the ctor rate is 0.
  std::optional<TokenBucket> report_bucket_ BATE_GUARDED_BY(write_mu_);
  std::int64_t report_refill_us_ BATE_GUARDED_BY(write_mu_) = 0;
  int reports_dropped_ BATE_GUARDED_BY(write_mu_) = 0;

  mutable Mutex mu_{LockRank::kBroker, "broker state"};
  mutable CondVar cv_;  // signalled per update, waits on mu_
  BandwidthEnforcer enforcer_ BATE_GUARDED_BY(mu_);
  std::map<std::pair<DemandId, int>, std::vector<double>> rates_
      BATE_GUARDED_BY(mu_);
  int updates_ BATE_GUARDED_BY(mu_) = 0;
  bool backup_active_ BATE_GUARDED_BY(mu_) = false;
};

}  // namespace bate
