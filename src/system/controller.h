// The BATE controller (Sec 4): offline routing (the tunnel catalog it is
// constructed with), admission control, the online scheduler with backup
// pre-computation, and the TCP communication channel to brokers and users.
//
// The controller runs its epoll loop on a dedicated thread. Users connect,
// submit demands and receive admission replies; brokers connect, introduce
// themselves with Hello{role="broker"} and then receive allocation updates
// (normal after every scheduling round, backup when a broker reports a link
// down).
//
// Threading: the controller deliberately owns NO locks — all of its state
// is confined to the event-loop thread (cross-thread mutation goes through
// EventLoop's pending queue). When replication (ROADMAP item 4) adds
// controller-side shared state, its mutexes must be bate::Mutex with
// LockRank::kController — the top of the hierarchy in util/mutex.h, since
// controller paths call into every layer below (DESIGN.md Sec 8.5).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <thread>

#include "core/admission.h"
#include "core/recovery.h"
#include "core/scheduling.h"
#include "net/event_loop.h"
#include "net/framing.h"
#include "net/socket.h"
#include "system/protocol.h"

namespace bate {

/// Snapshot view over the process-wide metrics registry (src/obs), scoped
/// to this controller instance: the constructor records the registry's
/// counter values and stats() reports the growth since then.
struct ControllerStats {
  int demands_offered = 0;
  int demands_admitted = 0;
  int link_failures_handled = 0;
  int allocation_updates_sent = 0;
};

class Controller {
 public:
  /// Topology and catalog must outlive the controller.
  Controller(const Topology& topo, const TunnelCatalog& catalog,
             SchedulerConfig scheduler_cfg = {},
             AdmissionStrategy admission = AdmissionStrategy::kBate);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Binds a loopback port and starts the service thread.
  void start();
  void stop();
  std::uint16_t port() const { return port_; }

  ControllerStats stats() const;

 private:
  struct Peer {
    Socket socket;
    FrameReader reader;
    std::string role;  // set by Hello
    int dc = -1;
  };

  void on_accept();
  void on_peer_readable(int fd);
  void handle_message(Peer& peer, const Message& msg);
  void send_to(Peer& peer, const Message& msg);
  /// Sends one AllocationUpdate per (demand, pair) to `peer`; returns the
  /// number of updates written. Loop thread only.
  int send_allocations_to(Peer& peer, bool backup,
                          std::span<const Demand> demands,
                          std::span<const Allocation> allocs);
  /// Current (non-backup) allocations to a newly introduced broker.
  void send_allocation_snapshot(Peer& peer);
  void broadcast_allocations(bool backup, const RecoveryResult* plan);
  void run_scheduling_round();

  // Loop-thread state: touched only from the epoll thread (callbacks), or
  // before start() / after stop() joins it.
  TrafficScheduler scheduler_;
  AdmissionController admission_;
  BackupPlanner planner_;
  std::unique_ptr<TcpListener> listener_;
  EventLoop loop_;
  std::map<int, Peer> peers_;

  std::thread thread_;
  std::uint16_t port_ = 0;  // written by start() before the thread exists

  // Registry counter values at construction; stats() subtracts these so the
  // accessor stays per-instance even though the registry is process-wide.
  std::int64_t base_offered_ = 0;
  std::int64_t base_admitted_ = 0;
  std::int64_t base_failures_ = 0;
  std::int64_t base_updates_ = 0;
};

}  // namespace bate
