// The BATE controller (Sec 4): offline routing (the tunnel catalog it is
// constructed with), admission control, the online scheduler with backup
// pre-computation, and the TCP communication channel to brokers and users.
//
// The controller runs its epoll loop on a dedicated thread. Users connect,
// submit demands and receive admission replies; brokers connect, introduce
// themselves with Hello{role="broker"} and then receive allocation updates
// (normal after every scheduling round, backup when a broker reports a link
// down).
//
// Admission pipeline (DESIGN.md Sec 10): SubmitDemand frames are enqueued
// (bounded, per-tenant token buckets at ingress, overflow shed with
// retry_after) and the queue drains once per event-loop tick through one
// batched AdmissionController::offer_batch call; per-demand verdict replies
// are flushed as a single batched write per peer, correlated by request_id
// so every connection may pipeline many in-flight submits.
//
// Threading: the controller deliberately owns NO locks — all of its state
// is confined to the event-loop thread (cross-thread mutation goes through
// EventLoop's pending queue). When replication (ROADMAP item 4) adds
// controller-side shared state, its mutexes must be bate::Mutex with
// LockRank::kController — the top of the hierarchy in util/mutex.h, since
// controller paths call into every layer below (DESIGN.md Sec 8.5).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "core/admission.h"
#include "core/recovery.h"
#include "core/scheduling.h"
#include "net/event_loop.h"
#include "net/framing.h"
#include "net/socket.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "system/protocol.h"
#include "system/rate_limiter.h"

namespace bate {

/// Snapshot view over the process-wide metrics registry (src/obs), scoped
/// to this controller instance: the constructor records the registry's
/// counter values and stats() reports the growth since then.
struct ControllerStats {
  int demands_offered = 0;
  int demands_admitted = 0;
  int demands_shed = 0;
  int link_failures_handled = 0;
  int allocation_updates_sent = 0;
};

/// Admission-pipeline tuning (DESIGN.md Sec 10). Defaults keep the
/// low-latency behaviour the tests and demos expect; bench_system raises
/// the knobs for the 100k-arrival churn runs.
struct ControllerConfig {
  /// Event-loop poll timeout; the admission queue drains after every loop
  /// iteration, so this bounds reply latency only on an idle connection.
  /// Also the retry_after hint handed to shed requests.
  int tick_ms = 5;
  /// false = serial baseline: each SubmitDemand is admitted inline with its
  /// own solve and full broadcast (the pre-pipeline behaviour, benched as
  /// the one-solve-per-request baseline in bench_system).
  bool batch_admission = true;
  /// Bounded admission queue across all tenants; overflow is shed with
  /// AdmissionStatus::kShed + retry_after.
  std::size_t max_queue = 8192;
  /// Per-tenant submit rate (requests/sec) enforced at ingress via
  /// RequestRateLimiter; 0 disables.
  double tenant_rate_per_sec = 0.0;
  /// Bucket depth for the tenant limiter; <= 0 defaults to the rate.
  double tenant_burst = 0.0;
  /// Run a full scheduling round (AdmissionController::reschedule) after
  /// every batch containing admissions, amortizing the pre-pipeline
  /// round-per-request cost to one round per tick. When false, all-greedy
  /// batches keep their (feasible, unoptimized) greedy allocations and only
  /// the new rows are delta-broadcast — the high-churn setting, since a
  /// reschedule LP grows with the admitted set (DESIGN.md Sec 10).
  bool reschedule_after_batch = true;
  /// Recompute backup plans after every batch containing admissions.
  /// bench_system disables it: precompute cost grows with the admitted set
  /// and the churn bench measures the admission path, not recovery.
  bool precompute_backup = true;
  /// Period (ms) of the SLO time-series sampler that records the registry
  /// snapshot into the ring-buffer store; <= 0 disables sampling. The
  /// availability ledger itself is always on — it is the product's answer
  /// to "did we keep the beta_d promise", not a diagnostic.
  int slo_sample_period_ms = 1000;
  /// Per-demand transition-log cap in the SLO ledger.
  std::size_t slo_max_transitions = 64;
};

class Controller {
 public:
  /// Topology and catalog must outlive the controller.
  Controller(const Topology& topo, const TunnelCatalog& catalog,
             SchedulerConfig scheduler_cfg = {},
             AdmissionStrategy admission = AdmissionStrategy::kBate,
             ControllerConfig config = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Binds a loopback port and starts the service thread.
  void start();
  void stop();
  std::uint16_t port() const { return port_; }

  ControllerStats stats() const;

 private:
  struct Peer {
    Socket socket;
    FrameReader reader;
    std::string role;  // set by Hello
    int dc = -1;
    /// request_ids submitted but not yet replied to (duplicate detection;
    /// legacy request_id 0 is never tracked).
    std::set<std::uint64_t> inflight;
  };

  /// One queued SubmitDemand awaiting the tick drain.
  struct PendingAdmission {
    int fd = -1;
    std::uint64_t request_id = 0;
    Demand demand;
    std::int64_t enqueue_us = 0;
    int tenant = 0;
    /// Wire trace context of the submit frame (client.submit span); zero
    /// when the client did not trace.
    obs::SpanContext trace;
  };

  void on_accept();
  void on_peer_readable(int fd);
  void handle_message(Peer& peer, const Message& msg,
                      const obs::SpanContext& trace = {});
  /// SubmitDemand ingress: duplicate check, tenant rate limit, then either
  /// enqueue (batch mode) or admit inline (serial baseline).
  void on_submit(Peer& peer, const SubmitDemandMsg& submit,
                 const obs::SpanContext& trace);
  /// Serial-baseline admission: one solve + full broadcast per request.
  void admit_inline(Peer& peer, const SubmitDemandMsg& submit,
                    std::int64_t recv_us);
  /// Tick handler: drains the whole admission queue through
  /// AdmissionController::offer_batch and flushes per-peer reply batches.
  void drain_admission_queue();
  /// Sheds one request with kShed + retry_after and counts it.
  void shed(Peer& peer, std::uint64_t request_id, DemandId id,
            double retry_after_ms);
  /// Drops queued work belonging to a departed peer (dead entries must not
  /// reach the batch solve) and, for withdraw, a tenant's queued demand.
  void purge_queue_for_fd(int fd);
  void purge_queue_for_demand(DemandId id);
  int tenant_of(const Peer& peer) const;

  void send_to(Peer& peer, const Message& msg);
  /// Flushes an accumulated frame batch to `peer` with one write.
  void flush_batch(Peer& peer, const FrameBatch& batch);
  /// Sends one AllocationUpdate per (demand, pair) to `peer` as a single
  /// batched write, stamping `trace` onto every frame; returns the number
  /// of updates. Loop thread only.
  int send_allocations_to(Peer& peer, bool backup,
                          std::span<const Demand> demands,
                          std::span<const Allocation> allocs,
                          const FrameContext& trace = {});
  /// Current (non-backup) allocations to a newly introduced broker.
  void send_allocation_snapshot(Peer& peer);
  void broadcast_allocations(bool backup, const RecoveryResult* plan);
  /// Delta broadcast: only admitted()[first_new..] rows, after a batch that
  /// appended greedy admissions without rescheduling anyone else.
  void broadcast_new_allocations(std::size_t first_new);
  void run_scheduling_round();

  /// Re-derives every admitted demand's satisfied bit from the active
  /// allocation table and the current down-link set, and feeds the SLO
  /// ledger (degrade/recover transitions on change only). Called after
  /// admissions, link events and withdrawals.
  void refresh_slo(std::int64_t now_us);
  /// Samples the registry into the time-series store once per
  /// slo_sample_period_ms (tick handler).
  void sample_slo_series(std::int64_t now_us);
  /// Renders the SLO payload for a kSloRequest selector.
  std::string slo_payload(const std::string& selector, std::int64_t now_us);

  // Loop-thread state: touched only from the epoll thread (callbacks), or
  // before start() / after stop() joins it.
  TrafficScheduler scheduler_;
  AdmissionController admission_;
  BackupPlanner planner_;
  ControllerConfig config_;
  std::optional<RequestRateLimiter> limiter_;
  std::unique_ptr<TcpListener> listener_;
  EventLoop loop_;
  std::map<int, Peer> peers_;
  /// Admission queue, per tenant for round-robin drain fairness. Bounded by
  /// config_.max_queue across all tenants (queued_ tracks the total).
  std::map<int, std::deque<PendingAdmission>> queue_;
  std::size_t queued_ = 0;

  // Availability-SLO state (tentpole of ISSUE 10). The ledger/store carry
  // their own kObsLedger mutexes (safe under the no-locks loop-thread rule:
  // kObsLedger is below every subsystem rank).
  obs::SloLedger ledger_;
  obs::TimeSeriesStore series_;
  /// Links currently reported down by brokers (loop thread only).
  std::set<LinkId> down_links_;
  /// Backup plan currently broadcast, or nullptr when primary allocations
  /// are live. Invalidated (cleared) by every planner_.precompute().
  const RecoveryResult* active_plan_ = nullptr;
  std::int64_t next_sample_us_ = 0;

  std::thread thread_;
  std::uint16_t port_ = 0;  // written by start() before the thread exists

  // Registry counter values at construction; stats() subtracts these so the
  // accessor stays per-instance even though the registry is process-wide.
  std::int64_t base_offered_ = 0;
  std::int64_t base_admitted_ = 0;
  std::int64_t base_shed_ = 0;
  std::int64_t base_failures_ = 0;
  std::int64_t base_updates_ = 0;
};

}  // namespace bate
