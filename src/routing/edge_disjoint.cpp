#include "routing/edge_disjoint.h"

#include "routing/ksp.h"

namespace bate {

std::vector<std::vector<LinkId>> edge_disjoint_paths(const Topology& topo,
                                                     NodeId src, NodeId dst,
                                                     int k) {
  std::vector<std::vector<LinkId>> paths;
  std::vector<char> banned(static_cast<std::size_t>(topo.link_count()), 0);
  while (static_cast<int>(paths.size()) < k) {
    auto path = shortest_path(topo, src, dst, unit_weight, banned);
    if (!path) break;
    for (LinkId id : *path) banned[static_cast<std::size_t>(id)] = 1;
    paths.push_back(std::move(*path));
  }
  return paths;
}

}  // namespace bate
