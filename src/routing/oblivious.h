// Oblivious-style tunnel selection.
//
// SMORE uses Raecke's oblivious routing trees to pick diverse, low-stretch
// tunnels. Building full Raecke decompositions is out of scope; we substitute
// an iterative penalty scheme with the same qualitative property (Fig 18):
// each successive path is the shortest under weights that grow exponentially
// with how often a link was already used, yielding diverse low-stretch paths
// that avoid concentrating load. See DESIGN.md Sec 5.
#pragma once

#include <vector>

#include "topology/graph.h"

namespace bate {

std::vector<std::vector<LinkId>> oblivious_paths(const Topology& topo,
                                                 NodeId src, NodeId dst,
                                                 int k);

}  // namespace bate
