#include "routing/tunnels.h"

#include <algorithm>
#include <stdexcept>

#include "routing/edge_disjoint.h"
#include "routing/ksp.h"
#include "routing/oblivious.h"

namespace bate {

bool Tunnel::uses(LinkId link) const {
  return std::find(links.begin(), links.end(), link) != links.end();
}

double Tunnel::availability(const Topology& topo) const {
  double p = 1.0;
  for (LinkId id : links) p *= 1.0 - topo.link(id).failure_prob;
  return p;
}

std::string Tunnel::to_string(const Topology& topo) const {
  std::string s = topo.node_label(src);
  for (LinkId id : links) {
    s += "->";
    s += topo.node_label(topo.link(id).dst);
  }
  return s;
}

TunnelCatalog TunnelCatalog::build(const Topology& topo,
                                   std::span<const SdPair> pairs,
                                   int tunnels_per_pair,
                                   RoutingScheme scheme) {
  if (tunnels_per_pair <= 0) {
    throw std::invalid_argument("TunnelCatalog: tunnels_per_pair must be > 0");
  }
  TunnelCatalog catalog;
  catalog.pairs_.assign(pairs.begin(), pairs.end());
  catalog.tunnels_.reserve(pairs.size());
  for (const SdPair& pair : pairs) {
    std::vector<std::vector<LinkId>> raw;
    switch (scheme) {
      case RoutingScheme::kKsp:
        raw = k_shortest_paths(topo, pair.src, pair.dst, tunnels_per_pair,
                               unit_weight);
        break;
      case RoutingScheme::kEdgeDisjoint:
        raw = edge_disjoint_paths(topo, pair.src, pair.dst, tunnels_per_pair);
        break;
      case RoutingScheme::kOblivious:
        raw = oblivious_paths(topo, pair.src, pair.dst, tunnels_per_pair);
        break;
    }
    if (raw.empty()) {
      throw std::runtime_error("TunnelCatalog: pair " +
                               topo.node_label(pair.src) + "->" +
                               topo.node_label(pair.dst) + " is disconnected");
    }
    std::vector<Tunnel> tunnels;
    tunnels.reserve(raw.size());
    for (auto& path : raw) {
      tunnels.push_back(Tunnel{pair.src, pair.dst, std::move(path)});
    }
    catalog.tunnels_.push_back(std::move(tunnels));
  }
  return catalog;
}

TunnelCatalog TunnelCatalog::build_all_pairs(const Topology& topo,
                                             int tunnels_per_pair,
                                             RoutingScheme scheme) {
  std::vector<SdPair> pairs;
  for (NodeId s = 0; s < topo.node_count(); ++s) {
    for (NodeId d = 0; d < topo.node_count(); ++d) {
      if (s != d) pairs.push_back({s, d});
    }
  }
  return build(topo, pairs, tunnels_per_pair, scheme);
}

int TunnelCatalog::pair_index(const SdPair& pair) const {
  const auto it = std::find(pairs_.begin(), pairs_.end(), pair);
  if (it == pairs_.end()) return -1;
  return static_cast<int>(it - pairs_.begin());
}

int TunnelCatalog::total_tunnels() const {
  int total = 0;
  for (const auto& t : tunnels_) total += static_cast<int>(t.size());
  return total;
}

}  // namespace bate
