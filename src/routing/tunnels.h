// Tunnels (pre-computed paths) and the per-pair tunnel catalog T_k.
//
// BATE, like SWAN/FFC/TEAVAR, forwards over a small set of pre-computed
// tunnels per source-destination pair (Sec 3.1 "BA provision model"). The
// offline-routing module of the controller builds a TunnelCatalog with one of
// three schemes: k-shortest paths (default, k=4 as in the paper), edge
// disjoint paths, or oblivious-style penalty routing (Fig 18).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "topology/graph.h"

namespace bate {

struct Tunnel {
  NodeId src = -1;
  NodeId dst = -1;
  std::vector<LinkId> links;  // in path order

  bool uses(LinkId link) const;
  /// Product of link availabilities: prod_e (1 - x_e). The paper's p_t.
  double availability(const Topology& topo) const;
  /// Human-readable "DC1->DC2->DC4" string.
  std::string to_string(const Topology& topo) const;
};

enum class RoutingScheme { kKsp, kEdgeDisjoint, kOblivious };

/// Immutable per-pair tunnel sets. Pair indices are positions in `pairs()`.
class TunnelCatalog {
 public:
  /// Builds tunnels for the given pairs with the given scheme; at most
  /// `tunnels_per_pair` tunnels each. Throws std::runtime_error when a pair
  /// is disconnected.
  static TunnelCatalog build(const Topology& topo,
                             std::span<const SdPair> pairs,
                             int tunnels_per_pair,
                             RoutingScheme scheme = RoutingScheme::kKsp);

  /// Convenience: builds for every ordered node pair of the topology.
  static TunnelCatalog build_all_pairs(const Topology& topo,
                                       int tunnels_per_pair,
                                       RoutingScheme scheme =
                                           RoutingScheme::kKsp);

  int pair_count() const { return static_cast<int>(pairs_.size()); }
  const std::vector<SdPair>& pairs() const { return pairs_; }
  const SdPair& pair(int index) const {
    return pairs_.at(static_cast<std::size_t>(index));
  }
  const std::vector<Tunnel>& tunnels(int pair_index) const {
    return tunnels_.at(static_cast<std::size_t>(pair_index));
  }
  /// Index of an s-d pair, or -1 when absent.
  int pair_index(const SdPair& pair) const;

  /// Total number of tunnels across all pairs.
  int total_tunnels() const;

 private:
  std::vector<SdPair> pairs_;
  std::vector<std::vector<Tunnel>> tunnels_;
};

}  // namespace bate
