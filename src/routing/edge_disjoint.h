// Edge-disjoint path routing (the paper cites risk-aware OSPF routing [49]
// as one tunnel-selection option; Fig 18 evaluates it).
#pragma once

#include <vector>

#include "topology/graph.h"

namespace bate {

/// Up to k mutually edge-disjoint paths from src to dst, found greedily by
/// repeated shortest-path with used links removed. Fewer than k paths are
/// returned when the graph runs out of disjoint capacity.
std::vector<std::vector<LinkId>> edge_disjoint_paths(const Topology& topo,
                                                     NodeId src, NodeId dst,
                                                     int k);

}  // namespace bate
