// Shortest path and Yen's k-shortest loopless paths over the WAN graph.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "topology/graph.h"

namespace bate {

/// Per-link weight; must be positive for Dijkstra.
using LinkWeight = std::function<double(const Link&)>;

/// Unit weights => hop-count shortest paths.
double unit_weight(const Link& link);

/// Dijkstra from src to dst. Links listed in `banned_links` and nodes in
/// `banned_nodes` are skipped. Returns the link sequence, or nullopt when dst
/// is unreachable.
std::optional<std::vector<LinkId>> shortest_path(
    const Topology& topo, NodeId src, NodeId dst, const LinkWeight& weight,
    const std::vector<char>& banned_links = {},
    const std::vector<char>& banned_nodes = {});

/// Yen's algorithm: up to k loopless shortest paths in non-decreasing weight
/// order. Deterministic tie-breaking (lexicographic link ids).
std::vector<std::vector<LinkId>> k_shortest_paths(const Topology& topo,
                                                  NodeId src, NodeId dst,
                                                  int k,
                                                  const LinkWeight& weight);

}  // namespace bate
