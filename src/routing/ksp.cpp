#include "routing/ksp.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace bate {

double unit_weight(const Link&) { return 1.0; }

std::optional<std::vector<LinkId>> shortest_path(
    const Topology& topo, NodeId src, NodeId dst, const LinkWeight& weight,
    const std::vector<char>& banned_links,
    const std::vector<char>& banned_nodes) {
  const auto n = static_cast<std::size_t>(topo.node_count());
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= n ||
      static_cast<std::size_t>(dst) >= n) {
    throw std::out_of_range("shortest_path: node out of range");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<LinkId> parent_link(n, -1);

  auto link_banned = [&](LinkId id) {
    return static_cast<std::size_t>(id) < banned_links.size() &&
           banned_links[static_cast<std::size_t>(id)] != 0;
  };
  auto node_banned = [&](NodeId id) {
    return static_cast<std::size_t>(id) < banned_nodes.size() &&
           banned_nodes[static_cast<std::size_t>(id)] != 0;
  };
  if (node_banned(src) || node_banned(dst)) return std::nullopt;

  using Entry = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (LinkId id : topo.out_links(u)) {
      if (link_banned(id)) continue;
      const Link& l = topo.link(id);
      if (node_banned(l.dst)) continue;
      const double w = weight(l);
      if (w <= 0.0) throw std::invalid_argument("shortest_path: weight <= 0");
      const double nd = d + w;
      auto& dv = dist[static_cast<std::size_t>(l.dst)];
      // Strict improvement, or equal-cost tie broken by smaller parent link
      // id for determinism.
      if (nd < dv - 1e-15 ||
          (nd <= dv + 1e-15 &&
           parent_link[static_cast<std::size_t>(l.dst)] > id &&
           dv < kInf)) {
        if (nd < dv - 1e-15) heap.push({nd, l.dst});
        dv = std::min(dv, nd);
        parent_link[static_cast<std::size_t>(l.dst)] = id;
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst)] == kInf) return std::nullopt;
  std::vector<LinkId> path;
  for (NodeId v = dst; v != src;) {
    const LinkId id = parent_link[static_cast<std::size_t>(v)];
    path.push_back(id);
    v = topo.link(id).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

double path_weight(const Topology& topo, const std::vector<LinkId>& path,
                   const LinkWeight& weight) {
  double total = 0.0;
  for (LinkId id : path) total += weight(topo.link(id));
  return total;
}

std::vector<NodeId> path_nodes(const Topology& topo,
                               const std::vector<LinkId>& path, NodeId src) {
  std::vector<NodeId> nodes{src};
  for (LinkId id : path) nodes.push_back(topo.link(id).dst);
  return nodes;
}

}  // namespace

std::vector<std::vector<LinkId>> k_shortest_paths(const Topology& topo,
                                                  NodeId src, NodeId dst,
                                                  int k,
                                                  const LinkWeight& weight) {
  std::vector<std::vector<LinkId>> result;
  if (k <= 0) return result;
  auto first = shortest_path(topo, src, dst, weight);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate set ordered by (weight, links) for deterministic output.
  struct Candidate {
    double w;
    std::vector<LinkId> path;
    bool operator<(const Candidate& o) const {
      if (w != o.w) return w < o.w;
      return path < o.path;
    }
  };
  std::set<Candidate> candidates;

  const auto links_n = static_cast<std::size_t>(topo.link_count());
  const auto nodes_n = static_cast<std::size_t>(topo.node_count());

  while (static_cast<int>(result.size()) < k) {
    const auto& prev = result.back();
    const auto prev_nodes = path_nodes(topo, prev, src);
    // Spur from every node of the previous path.
    for (std::size_t i = 0; i < prev.size(); ++i) {
      const NodeId spur_node = prev_nodes[i];
      std::vector<LinkId> root(prev.begin(),
                               prev.begin() + static_cast<std::ptrdiff_t>(i));

      std::vector<char> banned_links(links_n, 0);
      std::vector<char> banned_nodes(nodes_n, 0);
      // Ban links that would replicate an already-found path with this root.
      for (const auto& found : result) {
        if (found.size() > i &&
            std::equal(root.begin(), root.end(), found.begin())) {
          banned_links[static_cast<std::size_t>(found[i])] = 1;
        }
      }
      // Ban root nodes (except the spur node) to keep paths loopless.
      for (std::size_t j = 0; j < i; ++j) {
        banned_nodes[static_cast<std::size_t>(prev_nodes[j])] = 1;
      }

      auto spur = shortest_path(topo, spur_node, dst, weight, banned_links,
                                banned_nodes);
      if (!spur) continue;
      std::vector<LinkId> total = root;
      total.insert(total.end(), spur->begin(), spur->end());
      Candidate cand{path_weight(topo, total, weight), std::move(total)};
      // Skip duplicates already in results.
      if (std::find(result.begin(), result.end(), cand.path) == result.end()) {
        candidates.insert(std::move(cand));
      }
    }
    if (candidates.empty()) break;
    auto best = candidates.begin();
    result.push_back(best->path);
    candidates.erase(best);
  }
  return result;
}

}  // namespace bate
