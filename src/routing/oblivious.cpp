#include "routing/oblivious.h"

#include <algorithm>
#include <cmath>

#include "routing/ksp.h"

namespace bate {

std::vector<std::vector<LinkId>> oblivious_paths(const Topology& topo,
                                                 NodeId src, NodeId dst,
                                                 int k) {
  std::vector<std::vector<LinkId>> paths;
  std::vector<double> usage(static_cast<std::size_t>(topo.link_count()), 0.0);
  // More attempts than k: the penalty walk can revisit an existing path.
  const int attempts = 4 * std::max(k, 1);
  for (int it = 0; it < attempts && static_cast<int>(paths.size()) < k; ++it) {
    auto weight = [&](const Link& l) {
      // Penalize reuse exponentially, and normalize by capacity so big pipes
      // absorb more paths (low congestion stretch).
      const double reuse = usage[static_cast<std::size_t>(l.id)];
      return std::exp2(reuse) * (1.0 + 1000.0 / l.capacity);
    };
    auto path = shortest_path(topo, src, dst, weight);
    if (!path) break;
    for (LinkId id : *path) usage[static_cast<std::size_t>(id)] += 1.0;
    if (std::find(paths.begin(), paths.end(), *path) == paths.end()) {
      paths.push_back(std::move(*path));
    }
  }
  return paths;
}

}  // namespace bate
