// Pricing and SLA-refund accounting (Sec 3.4).
//
// Serving demand d is charged g_d (Demand::charge). If the BA target is
// violated, a fraction mu_d (Demand::refund_fraction) is refunded, so the
// retained profit is r_d = g_d when satisfied and (1 - mu_d) g_d otherwise.
#pragma once

#include <span>

#include "workload/demand.h"

namespace bate {

inline double demand_profit(const Demand& d, bool satisfied) {
  return satisfied ? d.charge : (1.0 - d.refund_fraction) * d.charge;
}

/// Total retained profit for a demand set given per-demand satisfaction.
inline double total_profit(std::span<const Demand> demands,
                           std::span<const char> satisfied) {
  double total = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    total += demand_profit(demands[i], satisfied[i] != 0);
  }
  return total;
}

/// Profit when every demand is satisfied (the no-failure baseline of
/// Fig 7c).
inline double full_profit(std::span<const Demand> demands) {
  double total = 0.0;
  for (const Demand& d : demands) total += d.charge;
  return total;
}

}  // namespace bate
