#include "core/bate_scheme.h"

#include <algorithm>
#include <numeric>

#include "core/admission.h"

namespace bate {

std::vector<Allocation> BateScheme::allocate(
    std::span<const Demand> demands) const {
  // Demands whose target exceeds what the failure model can prove for
  // their pair — even with every tunnel fully provisioned — would make the
  // joint LP structurally infeasible. Serve them best-effort instead
  // (BATE's admission would have rejected them; a foreign admission policy
  // may still hand them to us).
  std::vector<Demand> adjusted(demands.begin(), demands.end());
  for (Demand& d : adjusted) {
    for (const PairDemand& pd : d.pairs) {
      const auto& dist = scheduler_->lp_patterns(pd.pair);
      std::vector<double> full(
          static_cast<std::size_t>(dist.tunnel_count), pd.mbps);
      if (dist.availability(full, pd.mbps) + 1e-9 < d.availability_target) {
        d.availability_target = 0.0;
        break;
      }
    }
  }

  const ScheduleResult r = scheduler_->schedule(adjusted);
  if (r.feasible) return r.alloc;

  // Fallback: highest availability targets first, then larger demands;
  // whole-demand greedy placement, best-effort for the remainder.
  const Topology& topo = scheduler_->topology();
  const TunnelCatalog& catalog = scheduler_->catalog();
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (demands[a].availability_target != demands[b].availability_target) {
      return demands[a].availability_target >
             demands[b].availability_target;
    }
    return demands[a].total_mbps() > demands[b].total_mbps();
  });

  std::vector<double> residual(static_cast<std::size_t>(topo.link_count()));
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    residual[static_cast<std::size_t>(e)] = topo.link(e).capacity;
  }

  std::vector<Allocation> allocs(demands.size());
  for (std::size_t i : order) {
    auto whole = greedy_allocate(topo, catalog, demands[i], residual);
    allocs[i] = whole ? std::move(*whole)
                      : greedy_allocate_partial(topo, catalog, demands[i],
                                                residual);
  }
  return allocs;
}

}  // namespace bate
