#include "core/recovery.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/pricing.h"
#include "core/scheduling.h"
#include "solver/model.h"
#include "util/check.h"

namespace bate {

namespace {

/// Recovery preconditions (Sec 3.4): failed links must name real links and
/// every demand must reference catalog pairs, or the surviving-tunnel scan
/// indexes out of bounds.
void validate_recovery_inputs(const Topology& topo,
                              const TunnelCatalog& catalog,
                              std::span<const Demand> demands,
                              std::span<const LinkId> failed_links) {
  for (const LinkId e : failed_links) {
    BATE_ASSERT_MSG(e >= 0 && e < topo.link_count(),
                    "recovery: failed link outside topology");
  }
  for (const Demand& d : demands) {
    for (const PairDemand& pd : d.pairs) {
      BATE_ASSERT_MSG(pd.pair >= 0 && pd.pair < catalog.pair_count(),
                      "recovery: demand references unknown pair");
    }
  }
}

bool link_failed(std::span<const LinkId> failed, LinkId id) {
  return std::find(failed.begin(), failed.end(), id) != failed.end();
}

bool tunnel_survives(const Tunnel& tunnel, std::span<const LinkId> failed) {
  for (LinkId e : tunnel.links) {
    if (link_failed(failed, e)) return false;
  }
  return true;
}

Allocation empty_allocation(const TunnelCatalog& catalog, const Demand& d) {
  Allocation a(d.pairs.size());
  for (std::size_t p = 0; p < d.pairs.size(); ++p) {
    a[p].assign(catalog.tunnels(d.pairs[p].pair).size(), 0.0);
  }
  return a;
}

/// Tries to place the whole demand on surviving tunnels within `residual`
/// (consumed on success). Shortest-surviving-tunnel first.
bool place_whole(const Topology& topo, const TunnelCatalog& catalog,
                 const Demand& d, std::span<const LinkId> failed,
                 std::vector<double>& residual, Allocation& out) {
  std::vector<double> scratch = residual;
  Allocation alloc = empty_allocation(catalog, d);
  for (std::size_t p = 0; p < d.pairs.size(); ++p) {
    const auto& tunnels = catalog.tunnels(d.pairs[p].pair);
    double remaining = d.pairs[p].mbps;
    for (std::size_t t = 0; t < tunnels.size() && remaining > 1e-9; ++t) {
      if (!tunnel_survives(tunnels[t], failed)) continue;
      double cap = kInfinity;
      for (LinkId e : tunnels[t].links) {
        cap = std::min(cap, scratch[static_cast<std::size_t>(e)]);
      }
      const double f = std::min(cap, remaining);
      if (f <= 1e-9) continue;
      alloc[p][t] = f;
      remaining -= f;
      for (LinkId e : tunnels[t].links) {
        scratch[static_cast<std::size_t>(e)] -= f;
      }
    }
    if (remaining > 1e-9) return false;
  }
  (void)topo;
  residual = std::move(scratch);
  out = std::move(alloc);
  return true;
}

std::vector<double> surviving_residual(const Topology& topo,
                                       std::span<const LinkId> failed) {
  std::vector<double> residual(static_cast<std::size_t>(topo.link_count()));
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    residual[static_cast<std::size_t>(e)] =
        link_failed(failed, e) ? 0.0 : topo.link(e).capacity;
  }
  return residual;
}

}  // namespace

namespace {

// g = f/b per (demand, pair, surviving tunnel); capped at 1 (allocating
// beyond the demand cannot raise profit).
struct RecoveryPairVars {
  std::vector<int> var;  // -1 for dead tunnels
};

Model build_recovery_model_impl(
    const Topology& topo, const TunnelCatalog& catalog,
    std::span<const Demand> demands, std::span<const LinkId> failed_links,
    std::vector<std::vector<RecoveryPairVars>>* gvars_out,
    std::vector<int>* yvar_out) {
  Model model;
  model.set_sense(Sense::kMaximize);

  std::vector<std::vector<RecoveryPairVars>> gvars(demands.size());
  std::vector<int> yvar(demands.size(), -1);

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    // Objective gain for keeping full profit: mu_d * charge.
    yvar[i] = model.add_binary(d.refund_fraction * d.charge);
    gvars[i].resize(d.pairs.size());
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog.tunnels(d.pairs[p].pair);
      gvars[i][p].var.assign(tunnels.size(), -1);
      std::vector<Term> ratio_row{{yvar[i], -1.0}};
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        if (!tunnel_survives(tunnels[t], failed_links)) continue;
        const int v = model.add_variable(0.0, 1.0, 0.0);
        gvars[i][p].var[t] = v;
        ratio_row.push_back({v, 1.0});
      }
      // (9): R_dk >= y_d  <=>  sum_{surviving t} g - y >= 0.
      model.add_constraint(std::move(ratio_row), Relation::kGreaterEqual, 0.0);
    }
  }

  // (11): capacity on surviving links only.
  std::vector<std::vector<Term>> rows(
      static_cast<std::size_t>(topo.link_count()));
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog.tunnels(d.pairs[p].pair);
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        const int v = gvars[i][p].var[t];
        if (v < 0) continue;
        for (LinkId e : tunnels[t].links) {
          rows[static_cast<std::size_t>(e)].push_back({v, d.pairs[p].mbps});
        }
      }
    }
  }
  for (LinkId e = 0; e < topo.link_count(); ++e) {
    auto& row = rows[static_cast<std::size_t>(e)];
    if (row.empty()) continue;
    const double cap = topo.link(e).capacity;
    for (Term& term : row) term.coef /= std::max(cap, 1e-9);
    model.add_constraint(std::move(row), Relation::kLessEqual, 1.0);
  }
  if (gvars_out) *gvars_out = std::move(gvars);
  if (yvar_out) *yvar_out = std::move(yvar);
  return model;
}

}  // namespace

Model build_recovery_model(const Topology& topo, const TunnelCatalog& catalog,
                           std::span<const Demand> demands,
                           std::span<const LinkId> failed_links) {
  validate_recovery_inputs(topo, catalog, demands, failed_links);
  return build_recovery_model_impl(topo, catalog, demands, failed_links,
                                   nullptr, nullptr);
}

RecoveryTemplate build_recovery_template(const Topology& topo,
                                         const TunnelCatalog& catalog,
                                         std::span<const Demand> demands) {
  validate_recovery_inputs(topo, catalog, demands, {});
  // Identical structure to build_recovery_model_impl with an empty failure
  // set: every tunnel survives, so every tunnel gets a g variable and every
  // used link gets a capacity row. Failure sets are later expressed as
  // bound deltas fixing dead-tunnel g to zero, which yields the same
  // optimum as rebuilding the reduced per-failure model.
  RecoveryTemplate tmpl;
  std::vector<std::vector<RecoveryPairVars>> gvars;
  tmpl.model = build_recovery_model_impl(topo, catalog, demands, {}, &gvars,
                                         &tmpl.yvar);
  tmpl.gvar.resize(gvars.size());
  for (std::size_t i = 0; i < gvars.size(); ++i) {
    tmpl.gvar[i].resize(gvars[i].size());
    for (std::size_t p = 0; p < gvars[i].size(); ++p) {
      tmpl.gvar[i][p] = std::move(gvars[i][p].var);
    }
  }
  return tmpl;
}

InstanceDelta recovery_failure_delta(const RecoveryTemplate& tmpl,
                                     const TunnelCatalog& catalog,
                                     std::span<const Demand> demands,
                                     std::span<const LinkId> failed_links) {
  BATE_ASSERT_MSG(tmpl.gvar.size() == demands.size(),
                  "recovery: template does not match demand set");
  InstanceDelta delta;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog.tunnels(d.pairs[p].pair);
      for (std::size_t t = 0; t < tunnels.size(); ++t) {
        if (tunnel_survives(tunnels[t], failed_links)) continue;
        delta.bounds.push_back({tmpl.gvar[i][p][t], 0.0, 0.0});
      }
    }
  }
  return delta;
}

namespace {

/// Shared extraction for the batched and fallback paths: maps a solution in
/// template space (g per tunnel, y per demand) to a RecoveryResult.
RecoveryResult recovery_result_from(const RecoveryTemplate& tmpl,
                                    const TunnelCatalog& catalog,
                                    std::span<const Demand> demands,
                                    const Solution& sol) {
  RecoveryResult result;
  result.solved = sol.status == SolveStatus::kOptimal ||
                  (sol.status == SolveStatus::kIterationLimit &&
                   !sol.x.empty());
  if (!result.solved) return result;
  result.alloc.reserve(demands.size());
  result.full_profit.resize(demands.size(), 0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    Allocation alloc = empty_allocation(catalog, d);
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      for (std::size_t t = 0; t < tmpl.gvar[i][p].size(); ++t) {
        const int v = tmpl.gvar[i][p][t];
        alloc[p][t] =
            std::max(0.0, sol.x[static_cast<std::size_t>(v)]) * d.pairs[p].mbps;
      }
    }
    result.alloc.push_back(std::move(alloc));
    result.full_profit[i] =
        sol.x[static_cast<std::size_t>(tmpl.yvar[i])] > 0.5 ? 1 : 0;
  }
  result.profit = total_profit(demands, result.full_profit);
  return result;
}

/// True when the LP relaxation already sits on an integral y vertex — that
/// solution is then optimal for the MILP itself (the relaxation bound is
/// attained), so the batched path can keep it without branch & bound.
bool relaxation_integral(const RecoveryTemplate& tmpl, const Solution& sol) {
  if (sol.status != SolveStatus::kOptimal) return false;
  for (const int y : tmpl.yvar) {
    const double v = sol.x[static_cast<std::size_t>(y)];
    if (std::abs(v - std::round(v)) > 1e-6) return false;
  }
  return true;
}

}  // namespace

RecoveryResult recover_with_template(const RecoveryTemplate& tmpl,
                                     const TunnelCatalog& catalog,
                                     std::span<const Demand> demands,
                                     std::span<const LinkId> failed_links,
                                     const BranchBoundOptions& options,
                                     WarmStart* warm) {
  const InstanceDelta delta =
      recovery_failure_delta(tmpl, catalog, demands, failed_links);
  const Model inst = apply_delta(tmpl.model, delta);
  const Solution sol = solve_milp(inst, options, warm);
  return recovery_result_from(tmpl, catalog, demands, sol);
}

RecoveryResult recover_optimal(const Topology& topo,
                               const TunnelCatalog& catalog,
                               std::span<const Demand> demands,
                               std::span<const LinkId> failed_links,
                               const BranchBoundOptions& options,
                               WarmStart* warm) {
  validate_recovery_inputs(topo, catalog, demands, failed_links);
  std::vector<std::vector<RecoveryPairVars>> gvars;
  std::vector<int> yvar;
  const Model model = build_recovery_model_impl(topo, catalog, demands,
                                                failed_links, &gvars, &yvar);

  const Solution sol = solve_milp(model, options, warm);

  RecoveryResult result;
  result.solved = sol.status == SolveStatus::kOptimal ||
                  (sol.status == SolveStatus::kIterationLimit &&
                   !sol.x.empty());
  if (!result.solved) return result;

  result.alloc.reserve(demands.size());
  result.full_profit.resize(demands.size(), 0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    Allocation alloc = empty_allocation(catalog, d);
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      for (std::size_t t = 0; t < gvars[i][p].var.size(); ++t) {
        const int v = gvars[i][p].var[t];
        if (v < 0) continue;
        alloc[p][t] =
            std::max(0.0, sol.x[static_cast<std::size_t>(v)]) * d.pairs[p].mbps;
      }
    }
    result.alloc.push_back(std::move(alloc));
    result.full_profit[i] =
        sol.x[static_cast<std::size_t>(yvar[i])] > 0.5 ? 1 : 0;
  }
  result.profit = total_profit(demands, result.full_profit);
  return result;
}

RecoveryResult recover_greedy(const Topology& topo,
                              const TunnelCatalog& catalog,
                              std::span<const Demand> demands,
                              std::span<const LinkId> failed_links) {
  validate_recovery_inputs(topo, catalog, demands, failed_links);
  RecoveryResult result;
  result.solved = true;
  result.full_profit.assign(demands.size(), 0);
  result.alloc.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    result.alloc[i] = empty_allocation(catalog, demands[i]);
  }

  // Line 1: descending profit density g_d / sum_k b^k_d.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = demands[a].charge / std::max(demands[a].total_mbps(), 1e-9);
    const double db = demands[b].charge / std::max(demands[b].total_mbps(), 1e-9);
    return da > db;
  });

  auto residual = surviving_residual(topo, failed_links);
  std::vector<std::size_t> full_set;  // F
  double full_set_charge = 0.0;

  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const std::size_t i = order[idx];
    const Demand& d = demands[i];
    Allocation placed;
    if (place_whole(topo, catalog, d, failed_links, residual, placed)) {
      result.alloc[i] = std::move(placed);  // lines 5-9
      result.full_profit[i] = 1;
      full_set.push_back(i);
      full_set_charge += d.charge;
      continue;
    }
    // Lines 11-17: a single richer demand may evict the accumulated set.
    if (full_set_charge < d.charge) {
      auto fresh = surviving_residual(topo, failed_links);
      Allocation alone;
      if (place_whole(topo, catalog, d, failed_links, fresh, alone)) {
        for (std::size_t j : full_set) {
          result.alloc[j] = empty_allocation(catalog, demands[j]);
          result.full_profit[j] = 0;
        }
        full_set.assign(1, i);
        full_set_charge = d.charge;
        result.alloc[i] = std::move(alone);
        result.full_profit[i] = 1;
        residual = std::move(fresh);
      }
    }
    break;  // lines 17-19
  }

  // Demands outside F keep best-effort service on whatever surviving
  // capacity remains ("minimizing any possible collateral damage", Sec 3):
  // they forfeit full profit, but their traffic is not blackholed.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (result.full_profit[i]) continue;
    const Demand& d = demands[i];
    for (std::size_t p = 0; p < d.pairs.size(); ++p) {
      const auto& tunnels = catalog.tunnels(d.pairs[p].pair);
      double remaining = d.pairs[p].mbps;
      for (std::size_t t = 0; t < tunnels.size() && remaining > 1e-9; ++t) {
        if (!tunnel_survives(tunnels[t], failed_links)) continue;
        double cap = kInfinity;
        for (LinkId e : tunnels[t].links) {
          cap = std::min(cap, residual[static_cast<std::size_t>(e)]);
        }
        const double f = std::min(cap, remaining);
        if (f <= 1e-9) continue;
        result.alloc[i][p][t] = f;
        remaining -= f;
        for (LinkId e : tunnels[t].links) {
          residual[static_cast<std::size_t>(e)] -= f;
        }
      }
    }
  }

  result.profit = total_profit(demands, result.full_profit);
  return result;
}

namespace {

/// Backup-plan cache outcome (obs: bate_recovery_*). A hit means a failure
/// lookup found a precomputed plan (exact or single-link fallback).
void record_plan_lookup(bool hit) {
  if (!obs::enabled()) return;
  static obs::Counter& hits =
      obs::Registry::global().counter("bate_recovery_plan_hits_total");
  static obs::Counter& misses =
      obs::Registry::global().counter("bate_recovery_plan_misses_total");
  (hit ? hits : misses).inc();
}

void record_precompute(std::size_t plan_count, std::int64_t us) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  static obs::Counter& rounds = reg.counter("bate_recovery_precompute_total");
  static obs::Counter& plans =
      reg.counter("bate_recovery_plans_computed_total");
  static obs::Histogram& hist = reg.histogram("bate_recovery_precompute_us");
  rounds.inc();
  plans.inc(static_cast<std::int64_t>(plan_count));
  hist.record(us);
}

}  // namespace

void BackupPlanner::precompute(std::span<const Demand> demands,
                               std::span<const Allocation> current) {
  BATE_TRACE_SPAN("recovery.precompute");
  const std::int64_t t0 = obs::now_us();
  BATE_ASSERT_MSG(current.size() == demands.size(),
                  "recovery: allocation set does not match demand set");
  validate_recovery_inputs(*topo_, *catalog_, demands, {});
  demands_.assign(demands.begin(), demands.end());
  plans_.clear();  // bases_ survives: it chains rounds (see header)

  // Collect the round's failure sets first: the loaded single links, then
  // the most probable loaded pairs — so the optimal path can hand the whole
  // round to the batched backend at once.
  const auto usage = link_usage(*topo_, *catalog_, demands, current);
  std::vector<LinkId> loaded;
  std::vector<std::vector<LinkId>> failure_sets;
  for (LinkId e = 0; e < topo_->link_count(); ++e) {
    if (usage[static_cast<std::size_t>(e)] <= 1e-9) continue;  // unaffected
    loaded.push_back(e);
    failure_sets.push_back({e});
  }
  if (concurrent_pairs_ > 0) {
    std::vector<std::pair<double, std::vector<LinkId>>> pairs;
    for (std::size_t a = 0; a < loaded.size(); ++a) {
      for (std::size_t b = a + 1; b < loaded.size(); ++b) {
        pairs.push_back({topo_->link(loaded[a]).failure_prob *
                             topo_->link(loaded[b]).failure_prob,
                         {loaded[a], loaded[b]}});
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    const int count = std::min<int>(concurrent_pairs_,
                                    static_cast<int>(pairs.size()));
    for (int i = 0; i < count; ++i) {
      failure_sets.push_back(std::move(pairs[static_cast<std::size_t>(i)].second));
    }
  }

  if (!optimal_) {
    // Algorithm 2 is combinatorial — there is no LP to batch. One greedy
    // pass per failure set.
    for (const auto& failed : failure_sets) {
      plans_.emplace(failed, recover_greedy(*topo_, *catalog_, demands_,
                                            failed));
    }
    record_precompute(plans_.size(), obs::now_us() - t0);
    return;
  }

  // Optimal plans share one build-once template; each failure set is a
  // bound delta against it (the satellite refactor both paths lean on).
  const RecoveryTemplate tmpl =
      build_recovery_template(*topo_, *catalog_, demands_);
  std::vector<const std::vector<LinkId>*> pending;
  if (optimal_options_.lp.backend == SolveBackend::kBatched) {
    // Batch the whole round's LP relaxations through the lockstep backend.
    // A relaxation that lands on an integral y vertex IS the MILP optimum
    // (the bound is attained), so those failure sets finish without branch
    // & bound; fractional roots fall through to the exact MILP below.
    std::vector<InstanceDelta> deltas;
    deltas.reserve(failure_sets.size());
    for (const auto& failed : failure_sets) {
      deltas.push_back(
          recovery_failure_delta(tmpl, *catalog_, demands_, failed));
    }
    const std::vector<Solution> roots =
        solve_lp_batch(tmpl.model, deltas, optimal_options_.lp);
    for (std::size_t i = 0; i < failure_sets.size(); ++i) {
      if (relaxation_integral(tmpl, roots[i])) {
        plans_.emplace(failure_sets[i],
                       recovery_result_from(tmpl, *catalog_, demands_,
                                            roots[i]));
      } else {
        pending.push_back(&failure_sets[i]);
      }
    }
  } else {
    for (const auto& failed : failure_sets) pending.push_back(&failed);
  }

  // serial: branch & bound trees are per-failure-set (each set fixes a
  // different tunnel pattern, and an incumbent from one set proves nothing
  // about another), so MILP fallbacks cannot share lockstep lanes; the
  // batched pass above already retired every integral-root set.
  // cold-start: the *first* round for a failure set has no basis yet; every
  // later round warm-starts from bases_[failed].
  for (const std::vector<LinkId>* failed : pending) {
    plans_.emplace(*failed,
                   recover_with_template(tmpl, *catalog_, demands_, *failed,
                                         optimal_options_, &bases_[*failed]));
  }
  record_precompute(plans_.size(), obs::now_us() - t0);
}

const RecoveryResult* BackupPlanner::plan(LinkId link) const {
  const auto it = plans_.find(std::vector<LinkId>{link});
  const RecoveryResult* r = it == plans_.end() ? nullptr : &it->second;
  record_plan_lookup(r != nullptr);
  return r;
}

const RecoveryResult* BackupPlanner::plan_for(
    std::span<const LinkId> failed) const {
  if (failed.empty()) return nullptr;
  std::vector<LinkId> key(failed.begin(), failed.end());
  std::sort(key.begin(), key.end());
  const auto exact = plans_.find(key);
  if (exact != plans_.end()) {
    record_plan_lookup(true);
    return &exact->second;
  }
  // Fall back to the single-link plan of the most failure-prone member.
  LinkId worst = key.front();
  for (LinkId e : key) {
    if (topo_->link(e).failure_prob > topo_->link(worst).failure_prob) {
      worst = e;
    }
  }
  return plan(worst);
}

}  // namespace bate
